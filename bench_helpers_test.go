package cmfl_test

import (
	"fmt"
	"math"

	"cmfl/internal/experiments"
	"cmfl/internal/fl"
	"cmfl/internal/tensor"
)

// flConfigFor builds the engine config for a bench run.
func flConfigFor(mn experiments.MNISTSetup, fed *experiments.Federation, filter fl.UploadFilter) fl.Config {
	return mn.FLConfig(fed, filter)
}

// firstSaving extracts the first defined saving of a sweep's first point.
func firstSaving(r *experiments.SweepResult) float64 {
	for _, s := range r.Points[0].Savings {
		if !math.IsNaN(s) {
			return s
		}
	}
	return math.NaN()
}

// nnTensor wraps a float slice as a tensor for the LSTM bench.
func nnTensor(data []float64, shape ...int) *tensor.Tensor {
	return tensor.FromSlice(data, shape...)
}

func benchName(prefix string, v int) string { return fmt.Sprintf("%s=%d", prefix, v) }
