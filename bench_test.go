// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Each figure bench runs the
// full experiment once per iteration at the quick preset and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Paper-scale runs are reachable through
// the cmd/ binaries with -scale paper.
package cmfl_test

import (
	"math"
	"testing"

	"cmfl/internal/compress"
	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/experiments"
	"cmfl/internal/fl"
	"cmfl/internal/gaia"
	"cmfl/internal/nn"
	"cmfl/internal/xrand"
)

// BenchmarkFig1ModelDivergence regenerates Fig. 1: the CDF of the
// Normalized Model Divergence (Eq. 7) on both workloads.
func BenchmarkFig1ModelDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(experiments.QuickMNIST(), experiments.QuickNWP())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-r.MNIST.At(1.0)), "mnist-%d_j>1")
		b.ReportMetric(100*(1-r.NWP.At(1.0)), "nwp-%d_j>1")
		b.ReportMetric(r.MNIST.Max(), "mnist-max-d_j")
		b.ReportMetric(r.NWP.Max(), "nwp-max-d_j")
	}
}

// BenchmarkFig2Measures regenerates Fig. 2: Gaia's significance decays over
// rounds while CMFL's relevance stays stable (late/early ratios).
func BenchmarkFig2Measures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(experiments.QuickMNIST())
		if err != nil {
			b.Fatal(err)
		}
		gaiaRatio, cmflRatio := r.StabilityRatios()
		b.ReportMetric(gaiaRatio, "significance-late/early")
		b.ReportMetric(cmflRatio, "relevance-late/early")
	}
}

// BenchmarkFig3DeltaUpdate regenerates Fig. 3: the CDF of the normalized
// difference between sequential global updates (Eq. 8).
func BenchmarkFig3DeltaUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(experiments.QuickMNIST(), experiments.QuickNWP())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MNIST.At(0.5), "mnist-%dU<=0.5")
		b.ReportMetric(100*r.NWP.At(0.5), "nwp-%dU<=0.5")
	}
}

// BenchmarkFig4aMNIST regenerates Fig. 4a: accuracy vs accumulated
// communication rounds for vanilla / Gaia / CMFL on the digit CNN.
func BenchmarkFig4aMNIST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4MNIST(experiments.QuickMNIST())
		if err != nil {
			b.Fatal(err)
		}
		gs, cs := r.Savings()
		b.ReportMetric(gs[len(gs)-1], "gaia-saving")
		b.ReportMetric(cs[len(cs)-1], "cmfl-saving")
	}
}

// BenchmarkFig4bNWP regenerates Fig. 4b on the next-word LSTM.
func BenchmarkFig4bNWP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4NWP(experiments.QuickNWP())
		if err != nil {
			b.Fatal(err)
		}
		gs, cs := r.Savings()
		b.ReportMetric(gs[0], "gaia-saving")
		b.ReportMetric(cs[0], "cmfl-saving")
	}
}

// BenchmarkTable1Saving regenerates Table I: savings of Gaia and CMFL over
// vanilla FL at the target accuracies on both workloads.
func BenchmarkTable1Saving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn, err := experiments.Fig4MNIST(experiments.QuickMNIST())
		if err != nil {
			b.Fatal(err)
		}
		nw, err := experiments.Fig4NWP(experiments.QuickNWP())
		if err != nil {
			b.Fatal(err)
		}
		_, mc := mn.Savings()
		_, nc := nw.Savings()
		b.ReportMetric(mc[0], "cmfl-mnist-lo")
		b.ReportMetric(mc[len(mc)-1], "cmfl-mnist-hi")
		b.ReportMetric(nc[0], "cmfl-nwp-lo")
		b.ReportMetric(nc[len(nc)-1], "cmfl-nwp-hi")
	}
}

// BenchmarkFig5aHAR regenerates Fig. 5a: MOCHA vs MOCHA+CMFL on the HAR
// federation.
func BenchmarkFig5aHAR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.QuickHAR())
		if err != nil {
			b.Fatal(err)
		}
		sv := r.Savings()
		b.ReportMetric(sv[len(sv)-1], "saving")
		b.ReportMetric(r.CMFLBest/r.MochaBest, "accuracy-gain")
	}
}

// BenchmarkFig5bSemeion regenerates Fig. 5b on the Semeion federation.
func BenchmarkFig5bSemeion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.QuickSemeion())
		if err != nil {
			b.Fatal(err)
		}
		sv := r.Savings()
		b.ReportMetric(sv[len(sv)-1], "saving")
		b.ReportMetric(r.CMFLBest/r.MochaBest, "accuracy-gain")
	}
}

// BenchmarkTable2Saving regenerates Table II from both MTL workloads.
func BenchmarkTable2Saving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		har, err := experiments.Fig5(experiments.QuickHAR())
		if err != nil {
			b.Fatal(err)
		}
		sem, err := experiments.Fig5(experiments.QuickSemeion())
		if err != nil {
			b.Fatal(err)
		}
		hs, ss := har.Savings(), sem.Savings()
		b.ReportMetric(hs[0], "har-lo")
		b.ReportMetric(hs[len(hs)-1], "har-hi")
		b.ReportMetric(ss[0], "semeion-lo")
		b.ReportMetric(ss[len(ss)-1], "semeion-hi")
	}
}

// BenchmarkFig6OutlierDivergence regenerates Fig. 6: the divergence split
// between outlier and non-outlier HAR clients, plus how well CMFL's skip
// counts identify the ground-truth outliers.
func BenchmarkFig6OutlierDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig5, err := experiments.Fig5(experiments.QuickHAR())
		if err != nil {
			b.Fatal(err)
		}
		r, err := experiments.Fig6(fig5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-r.Outliers.At(1.0)), "outlier-%d_j>1")
		b.ReportMetric(100*(1-r.NonOutliers.At(1.0)), "inlier-%d_j>1")
		b.ReportMetric(float64(r.Overlap)/float64(len(r.SkipIdentified)), "skip-id-hit-rate")
	}
}

// BenchmarkFig7Emulation regenerates Fig. 7: the TCP master–slave cluster
// comparison, reporting the uplink-byte reduction CMFL achieves at the
// middle accuracy target (Fig. 7b) over the real wire.
func BenchmarkFig7Emulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(experiments.QuickEmulation())
		if err != nil {
			b.Fatal(err)
		}
		mid := len(r.Targets) / 2
		if !math.IsNaN(r.VanillaBytes[mid]) && !math.IsNaN(r.CMFLBytes[mid]) && r.CMFLBytes[mid] > 0 {
			b.ReportMetric(r.VanillaBytes[mid]/r.CMFLBytes[mid], "byte-reduction")
		}
		b.ReportMetric(float64(r.VanillaWire)/float64(r.CMFLWire), "wire-reduction")
	}
}

// BenchmarkRelevanceCheckOverhead regenerates the Sec. V-C micro-benchmark:
// the relevance check must cost a negligible fraction of a local training
// iteration (paper: < 0.13%).
func BenchmarkRelevanceCheckOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Overhead(experiments.QuickMNIST())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.RelevanceCheck.Nanoseconds()), "check-ns")
		b.ReportMetric(100*float64(r.RelevanceCheck)/float64(r.LocalIteration), "check-%of-iter")
	}
}

// ---- Micro-benchmarks of the core primitives ----

func benchVectors(n int) (u, g []float64) {
	rng := xrand.New(1)
	return rng.NormVec(n, 0, 1), rng.NormVec(n, 0, 1)
}

// BenchmarkRelevanceEq9 measures the raw Eq. 9 computation at the paper's
// model sizes.
func BenchmarkRelevanceEq9(b *testing.B) {
	u, g := benchVectors(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Relevance(u, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGaiaSignificance measures the baseline's magnitude metric.
func BenchmarkGaiaSignificance(b *testing.B) {
	u, g := benchVectors(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gaia.Significance(u, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCosineRelevance measures the ablation metric.
func BenchmarkCosineRelevance(b *testing.B) {
	u, g := benchVectors(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CosineRelevance(u, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalTrainCNN measures one client's local round on the digit CNN.
func BenchmarkLocalTrainCNN(b *testing.B) {
	mn := experiments.QuickMNIST()
	fed, err := mn.Build()
	if err != nil {
		b.Fatal(err)
	}
	net := fed.Model()
	params := net.ParamVector()
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := fl.LocalTrain(net, fed.Shards[0], params, 0.1, mn.Epochs, mn.Batch, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSTMForwardBackward measures one training step of the next-word
// model.
func BenchmarkLSTMForwardBackward(b *testing.B) {
	cfg := nn.LSTMConfig{Vocab: 100, Embed: 16, Hidden: 32, Layers: 2}
	net := nn.NewNextWordLSTM(cfg, xrand.New(3))
	rng := xrand.New(4)
	ids := make([]float64, 8*10)
	for i := range ids {
		ids[i] = float64(rng.Intn(100))
	}
	x := nnTensor(ids, 8, 10)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = rng.Intn(100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.TrainBatch(net, x.Clone(), labels, 0.1)
	}
}

// ---- Ablation benches (DESIGN.md §6) ----

// BenchmarkAblationThresholdSchedule compares CMFL with a constant threshold
// against the paper's v0/√t decay on the digit workload.
func BenchmarkAblationThresholdSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		constant, err := experiments.SweepCMFLMNIST(mn, []float64{mn.CMFLThreshold}, false)
		if err != nil {
			b.Fatal(err)
		}
		decay, err := experiments.SweepCMFLMNIST(mn, []float64{0.8}, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(firstSaving(constant), "constant-saving")
		b.ReportMetric(firstSaving(decay), "decay-saving")
	}
}

// BenchmarkAblationStaleFeedback probes the Eq. 8 smoothness assumption by
// letting clients compare against a 5-round-old global update.
func BenchmarkAblationStaleFeedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		fed, err := mn.Build()
		if err != nil {
			b.Fatal(err)
		}
		run := func(stale int) float64 {
			cfg := flConfigFor(mn, fed, core.NewFilter(core.Constant(mn.CMFLThreshold)))
			cfg.FeedbackStaleness = stale
			res, err := fl.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return res.FinalAccuracy()
		}
		b.ReportMetric(run(1), "fresh-accuracy")
		b.ReportMetric(run(5), "stale5-accuracy")
	}
}

// BenchmarkAblationCosineRelevance swaps Eq. 9's sign test for cosine
// similarity.
func BenchmarkAblationCosineRelevance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		fed, err := mn.Build()
		if err != nil {
			b.Fatal(err)
		}
		run := func(useCosine bool, thr float64) float64 {
			f := core.NewFilter(core.Constant(thr))
			f.UseCosine = useCosine
			res, err := fl.Run(flConfigFor(mn, fed, f))
			if err != nil {
				b.Fatal(err)
			}
			return res.FinalAccuracy()
		}
		b.ReportMetric(run(false, mn.CMFLThreshold), "sign-accuracy")
		b.ReportMetric(run(true, mn.CMFLThreshold), "cosine-accuracy")
	}
}

// BenchmarkAblationClientScale sweeps the federation size, probing how the
// filter behaves as the client population grows.
func BenchmarkAblationClientScale(b *testing.B) {
	for _, clients := range []int{10, 20, 40} {
		b.Run(benchName("clients", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mn := experiments.QuickMNIST()
				mn.Clients = clients
				mn.OutlierClients = clients / 4
				mn.Rounds = 40
				fed, err := mn.Build()
				if err != nil {
					b.Fatal(err)
				}
				res, err := fl.Run(flConfigFor(mn, fed, core.NewFilter(core.Constant(mn.CMFLThreshold))))
				if err != nil {
					b.Fatal(err)
				}
				last := res.History[len(res.History)-1]
				b.ReportMetric(float64(last.CumUploads)/float64(clients*len(res.History)), "upload-fraction")
				b.ReportMetric(res.FinalAccuracy(), "accuracy")
			}
		})
	}
}

// BenchmarkAblationCompression compares CMFL's upload-reduction against the
// related work's bit-reduction (8-bit quantisation, top-k sparsification)
// on the digit workload: uplink bytes needed to reach the first accuracy
// target.
func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		fed, err := mn.Build()
		if err != nil {
			b.Fatal(err)
		}
		bytesTo := func(filter fl.UploadFilter, codec fl.UpdateCodec) float64 {
			cfg := flConfigFor(mn, fed, filter)
			cfg.Compressor = codec
			res, err := fl.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			target := mn.AccuracyTargets[0]
			for _, h := range res.History {
				if !math.IsNaN(h.Accuracy) && h.Accuracy >= target {
					return float64(h.CumUplinkBytes)
				}
			}
			return math.NaN()
		}
		vanilla := bytesTo(nil, nil)
		cmflB := bytesTo(core.NewFilter(core.Constant(mn.CMFLThreshold)), nil)
		quant := bytesTo(nil, compress.Uniform8{})
		topk := bytesTo(nil, compress.TopK{K: 200})
		b.ReportMetric(vanilla/cmflB, "cmfl-byte-saving")
		b.ReportMetric(vanilla/quant, "quantize8-byte-saving")
		b.ReportMetric(vanilla/topk, "top200-byte-saving")
		// CMFL composed with quantisation: the approaches are orthogonal.
		both := bytesTo(core.NewFilter(core.Constant(mn.CMFLThreshold)), compress.Uniform8{})
		b.ReportMetric(vanilla/both, "cmfl+quantize8-byte-saving")
	}
}

// BenchmarkAblationClientSampling composes CMFL with FedAvg's partial
// participation (C = 0.5).
func BenchmarkAblationClientSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		fed, err := mn.Build()
		if err != nil {
			b.Fatal(err)
		}
		run := func(fraction float64) (acc, uploads float64) {
			cfg := flConfigFor(mn, fed, core.NewFilter(core.Constant(mn.CMFLThreshold)))
			cfg.ClientFraction = fraction
			res, err := fl.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			last := res.History[len(res.History)-1]
			return res.FinalAccuracy(), float64(last.CumUploads)
		}
		fullAcc, fullUp := run(1)
		halfAcc, halfUp := run(0.5)
		b.ReportMetric(fullAcc, "full-accuracy")
		b.ReportMetric(halfAcc, "sampled-accuracy")
		b.ReportMetric(fullUp/halfUp, "upload-ratio")
	}
}

// BenchmarkAblationAdaptiveThreshold compares the hand-tuned constant
// threshold against the self-tuning AdaptiveFilter extension.
func BenchmarkAblationAdaptiveThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		fed, err := mn.Build()
		if err != nil {
			b.Fatal(err)
		}
		run := func(filter fl.UploadFilter) (acc, frac float64) {
			res, err := fl.Run(flConfigFor(mn, fed, filter))
			if err != nil {
				b.Fatal(err)
			}
			last := res.History[len(res.History)-1]
			return res.FinalAccuracy(),
				float64(last.CumUploads) / float64(len(fed.Shards)*len(res.History))
		}
		tunedAcc, tunedFrac := run(core.NewFilter(core.Constant(mn.CMFLThreshold)))
		adaptAcc, adaptFrac := run(core.NewAdaptiveFilter(0.5, tunedFrac))
		b.ReportMetric(tunedAcc, "tuned-accuracy")
		b.ReportMetric(adaptAcc, "adaptive-accuracy")
		b.ReportMetric(tunedFrac, "tuned-upload-frac")
		b.ReportMetric(adaptFrac, "adaptive-upload-frac")
	}
}

// BenchmarkAblationServerMomentum probes FedAvgM-style server momentum and
// documents a real interaction: under vanilla FL momentum is benign, but
// combined with the CMFL gate it destabilises training — the momentum
// velocity becomes the feedback, the gate then only admits updates aligned
// with that (increasingly stale) direction, and the loop self-reinforces.
func BenchmarkAblationServerMomentum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		fed, err := mn.Build()
		if err != nil {
			b.Fatal(err)
		}
		run := func(momentum float64, filter fl.UploadFilter) float64 {
			cfg := flConfigFor(mn, fed, filter)
			cfg.ServerMomentum = momentum
			// Momentum amplifies the effective step by ~1/(1-μ); rescale
			// the learning rate so the comparison is step-size-fair.
			cfg.LR = core.InvSqrt{V0: mn.Eta0 * (1 - momentum)}
			res, err := fl.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return res.FinalAccuracy()
		}
		cmflFilter := core.NewFilter(core.Constant(mn.CMFLThreshold))
		b.ReportMetric(run(0, nil), "vanilla-accuracy")
		b.ReportMetric(run(0.5, nil), "vanilla+momentum-accuracy")
		b.ReportMetric(run(0, cmflFilter), "cmfl-accuracy")
		b.ReportMetric(run(0.3, cmflFilter), "cmfl+momentum-accuracy")
	}
}

// BenchmarkAblationAsync ports CMFL to the asynchronous extension: vanilla
// async vs async+CMFL, upload share and accuracy under stragglers.
func BenchmarkAblationAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		fed, err := mn.Build()
		if err != nil {
			b.Fatal(err)
		}
		run := func(filter fl.UploadFilter) (acc float64, uploads int, stale float64) {
			res, err := fl.RunAsync(fl.AsyncConfig{
				Model:      fed.Model,
				ClientData: fed.Shards,
				TestData:   fed.Test,
				Epochs:     mn.Epochs,
				Batch:      mn.Batch,
				LR:         core.InvSqrt{V0: mn.Eta0},
				Filter:     filter,
				Updates:    len(fed.Shards) * 40,
				Seed:       mn.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			last := res.Events[len(res.Events)-1]
			return res.FinalAccuracy(), last.CumUploads, res.MeanStaleness
		}
		vAcc, vUp, vStale := run(nil)
		// The sync-tuned constant threshold over-filters against the async
		// EMA feedback; the adaptive controller finds the workable point.
		aAcc, aUp, _ := run(core.NewAdaptiveFilter(0.45, 0.7))
		b.ReportMetric(vAcc, "vanilla-accuracy")
		b.ReportMetric(aAcc, "cmfl-adaptive-accuracy")
		b.ReportMetric(float64(vUp)/float64(aUp), "upload-reduction")
		b.ReportMetric(vStale, "mean-staleness")
	}
}

// BenchmarkAblationWriterHeterogeneity swaps the paper's label-shard
// non-IIDness for feature-level writer styles (FEMNIST-like): CMFL's skip
// counts should concentrate on the extreme-style writers with no label
// corruption at all.
func BenchmarkAblationWriterHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := dataset.DefaultWriterDigitsConfig()
		clients, extreme, err := dataset.WriterDigits(cfg)
		if err != nil {
			b.Fatal(err)
		}
		test, err := dataset.Digits(dataset.DigitsConfig{
			Samples: 300, ImageSize: cfg.ImageSize, Noise: 0.15, MaxShift: 1, Seed: cfg.Seed + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := fl.Run(fl.Config{
			Model: func() *nn.Network {
				return nn.NewCNN(nn.CNNConfig{
					ImageSize: cfg.ImageSize, Kernel: 3, Conv1: 3, Conv2: 6, Hidden: 24, Classes: 10,
				}, xrand.Derive(cfg.Seed, "init", 0))
			},
			ClientData: clients,
			TestData:   test,
			Epochs:     2,
			Batch:      4,
			LR:         core.InvSqrt{V0: 0.15},
			Filter:     core.NewFilter(core.Constant(0.5)),
			Rounds:     40,
			Seed:       cfg.Seed + 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		isExtreme := map[int]bool{}
		for _, c := range extreme {
			isExtreme[c] = true
		}
		var extSkips, normSkips float64
		for c, s := range res.SkipCounts {
			if isExtreme[c] {
				extSkips += float64(s) / float64(len(extreme))
			} else {
				normSkips += float64(s) / float64(cfg.Clients-len(extreme))
			}
		}
		b.ReportMetric(extSkips, "extreme-writer-mean-skips")
		b.ReportMetric(normSkips, "normal-writer-mean-skips")
		b.ReportMetric(res.FinalAccuracy(), "accuracy")
	}
}

// BenchmarkAblationFedProx composes CMFL with FedProx's proximal term:
// limiting client drift raises update alignment, which changes what the
// relevance gate filters.
func BenchmarkAblationFedProx(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		fed, err := mn.Build()
		if err != nil {
			b.Fatal(err)
		}
		run := func(mu float64) (acc, rel float64) {
			cfg := flConfigFor(mn, fed, core.NewFilter(core.Constant(mn.CMFLThreshold)))
			cfg.ProxMu = mu
			res, err := fl.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var s float64
			n := 0
			for _, h := range res.History[1:] {
				if !math.IsNaN(h.MeanRelevance) {
					s += h.MeanRelevance
					n++
				}
			}
			return res.FinalAccuracy(), s / float64(n)
		}
		fedavgAcc, fedavgRel := run(0)
		proxAcc, proxRel := run(0.1)
		b.ReportMetric(fedavgAcc, "fedavg-accuracy")
		b.ReportMetric(proxAcc, "fedprox-accuracy")
		b.ReportMetric(fedavgRel, "fedavg-relevance")
		b.ReportMetric(proxRel, "fedprox-relevance")
	}
}

// BenchmarkAblationPartialUpload compares the paper's all-or-nothing gate
// with the layerwise partial gate: bytes to reach the first accuracy target
// and the achieved accuracy.
func BenchmarkAblationPartialUpload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mn := experiments.QuickMNIST()
		fed, err := mn.Build()
		if err != nil {
			b.Fatal(err)
		}
		target := mn.AccuracyTargets[0]

		full, err := fl.Run(flConfigFor(mn, fed, core.NewFilter(core.Constant(mn.CMFLThreshold))))
		if err != nil {
			b.Fatal(err)
		}
		fullBytes := math.NaN()
		for _, h := range full.History {
			if !math.IsNaN(h.Accuracy) && h.Accuracy >= target {
				fullBytes = float64(h.CumUplinkBytes)
				break
			}
		}

		// The per-segment gate needs a lower operating point than the full
		// gate (segment relevances are noisier and mixing segments from
		// different clients strains cross-layer consistency); 0.42 is the
		// tuned value for this workload.
		partial, err := fl.RunPartial(fl.PartialConfig{
			Config:    flConfigFor(mn, fed, nil),
			Threshold: core.Constant(0.42),
		})
		if err != nil {
			b.Fatal(err)
		}
		partialBytes := math.NaN()
		for _, h := range partial.History {
			if !math.IsNaN(h.Accuracy) && h.Accuracy >= target {
				partialBytes = float64(h.CumUplinkBytes)
				break
			}
		}
		b.ReportMetric(full.FinalAccuracy(), "full-gate-accuracy")
		b.ReportMetric(partial.FinalAccuracy(), "partial-gate-accuracy")
		b.ReportMetric(fullBytes/partialBytes, "partial-byte-advantage")
		b.ReportMetric(partial.SegmentUploadFraction, "segment-upload-frac")
	}
}
