// cmfl-client is one standalone slave of the TCP emulation: it generates its
// private non-IID digit shard, connects to cmfl-server and participates in
// synchronous federated training, optionally gating its uploads with CMFL or
// Gaia. See cmd/cmfl-server for a full launch example.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/emu"
	"cmfl/internal/fl"
	"cmfl/internal/gaia"
	"cmfl/internal/nn"
	"cmfl/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfl-client: ")

	addr := flag.String("addr", "127.0.0.1:7070", "server address")
	id := flag.Int("id", 0, "client id in [0, clients)")
	clients := flag.Int("clients", 4, "total client count (must match server)")
	samples := flag.Int("samples", 30, "private samples per client")
	imageSize := flag.Int("image-size", 12, "digit image side (must match server)")
	epochs := flag.Int("epochs", 4, "local epochs per round (E)")
	batch := flag.Int("batch", 2, "local minibatch size (B)")
	eta0 := flag.Float64("eta0", 0.15, "learning rate eta0 (eta_t = eta0/sqrt(t))")
	filterName := flag.String("filter", "vanilla", "upload filter: vanilla|cmfl|gaia")
	threshold := flag.Float64("threshold", 0.52, "filter threshold")
	decay := flag.Bool("decay", false, "decay the filter threshold as v0/sqrt(t)")
	codecName := flag.String("compress", "none", "update codec: none|quantize8|top<k>|mask<pct>|sign1bit[/<chunk>]|codebook[<k>]|<selector>+<values> (must match the server)")
	errorFeedback := flag.Bool("error-feedback", false, "accumulate the codec's quantization error locally and fold it into the next upload (EF-SGD)")
	seed := flag.Int64("seed", 7, "experiment seed (must match server)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-message network timeout")
	flag.Parse()

	if *id < 0 || *id >= *clients {
		log.Fatalf("-id %d outside [0, %d)", *id, *clients)
	}
	// Build the full federation's data deterministically and keep only this
	// client's shard, so independent processes agree on the partition.
	all, err := dataset.Digits(dataset.DigitsConfig{
		Samples:   *clients * *samples,
		ImageSize: *imageSize,
		Noise:     0.15,
		MaxShift:  1,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	shards, err := dataset.SortedShards(all, *clients, 2, xrand.Derive(*seed, "shards", 0))
	if err != nil {
		log.Fatal(err)
	}

	var filter fl.UploadFilter
	var schedule core.Schedule = core.Constant(*threshold)
	if *decay {
		schedule = core.InvSqrt{V0: *threshold}
	}
	switch *filterName {
	case "vanilla":
		filter = fl.Vanilla{}
	case "cmfl":
		filter = core.NewFilter(schedule)
	case "gaia":
		filter = gaia.NewFilter(schedule)
	default:
		log.Fatalf("unknown -filter %q", *filterName)
	}

	codec, err := compress.ParseName(*codecName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := nn.CNNConfig{ImageSize: *imageSize, Kernel: 3, Conv1: 3, Conv2: 6, Hidden: 24, Classes: 10}
	res, err := emu.RunClient(emu.ClientConfig{
		Addr:          *addr,
		ID:            *id,
		Model:         func() *nn.Network { return nn.NewCNN(cfg, xrand.Derive(*seed, "init", 0)) },
		Data:          shards[*id],
		Epochs:        *epochs,
		Batch:         *batch,
		LR:            core.InvSqrt{V0: *eta0},
		Filter:        filter,
		Compressor:    codec,
		ErrorFeedback: *errorFeedback,
		Seed:          *seed,
		RoundTimeout:  *timeout,
		DialTimeout:   *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client %d: %d rounds, %d uploads, %d skips, %d bytes sent\n",
		*id, res.Rounds, res.Uploads, res.Skips, res.SentWire)
}
