// cmfl-emu regenerates the paper's testbed experiment (Fig. 7): the
// next-word-prediction workload trained by a master and D slaves over real
// TCP connections on localhost, with exact uplink byte accounting.
//
// Usage:
//
//	cmfl-emu -scale quick
//	cmfl-emu -scale paper -clients 30
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"cmfl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfl-emu: ")

	scale := flag.String("scale", "quick", "preset scale: quick|paper")
	clients := flag.Int("clients", 0, "override cluster size (0 = preset)")
	rounds := flag.Int("rounds", 0, "override round budget (0 = preset)")
	csvDir := flag.String("csv", "", "also write the figure's data series as CSV into this directory")
	flag.Parse()

	var setup experiments.EmulationSetup
	switch *scale {
	case "quick":
		setup = experiments.QuickEmulation()
	case "paper":
		setup = experiments.PaperEmulation()
	default:
		log.Fatalf("unknown -scale %q (want quick or paper)", *scale)
	}
	if *clients > 0 {
		setup.Clients = *clients
		setup.NWP.Dialogue.Roles = *clients
	}
	if *rounds > 0 {
		setup.NWP.Rounds = *rounds
	}

	start := time.Now()
	res, err := experiments.Fig7(setup)
	if err != nil {
		log.Fatal(err)
	}
	if *csvDir != "" {
		if err := experiments.WriteCSV(*csvDir, "fig7.csv", res.CSV()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println(res.Render())
	fmt.Fprintf(os.Stderr, "[fig7 finished in %v]\n", time.Since(start).Round(time.Millisecond))
}
