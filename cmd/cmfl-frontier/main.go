// cmfl-frontier sweeps the wire-efficiency stack — CMFL gating composed with
// the codec chain — over the quick workloads and prints the bytes-vs-accuracy
// frontier: for each codec, the total uplink bytes (read back from the
// telemetry counters, the same series /metrics exports) against the final
// test accuracy. This is the generator behind the frontier table in
// EXPERIMENTS.md.
//
// Example:
//
//	cmfl-frontier -workload mnist -codecs none,quantize8,top200,top200+quantize8
//	cmfl-frontier -workload both -markdown
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cmfl/internal/compress"
	"cmfl/internal/core"
	"cmfl/internal/experiments"
	"cmfl/internal/fl"
	"cmfl/internal/report"
	"cmfl/internal/telemetry"
)

// row is one frontier point.
type row struct {
	workload string
	codec    string
	acc      float64
	uplink   int64
	uploads  int64
	perUp    float64
	ratio    float64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfl-frontier: ")

	workload := flag.String("workload", "both", "workload to sweep: mnist|nwp|both")
	codecList := flag.String("codecs", "none,quantize8,sign1bit,codebook16,top200,top200+quantize8,top200+sign1bit",
		"comma-separated codec names to sweep (grammar of the -compress flags)")
	rounds := flag.Int("rounds", 0, "override the preset round budget (0 = preset)")
	gate := flag.Bool("gate", true, "apply the CMFL relevance gate (false = vanilla uploads)")
	errorFeedback := flag.Bool("error-feedback", true, "EF-SGD residual accumulation for lossy codecs")
	markdown := flag.Bool("markdown", false, "emit a Markdown table instead of plain text")
	flag.Parse()

	var rows []row
	for _, wl := range strings.Split(*workload, ",") {
		switch wl {
		case "both":
			rows = append(rows, sweep("mnist", *codecList, *rounds, *gate, *errorFeedback)...)
			rows = append(rows, sweep("nwp", *codecList, *rounds, *gate, *errorFeedback)...)
		case "mnist", "nwp":
			rows = append(rows, sweep(wl, *codecList, *rounds, *gate, *errorFeedback)...)
		default:
			log.Fatalf("unknown -workload %q", wl)
		}
	}
	printRows(rows, *markdown)
}

// sweep runs every codec over one workload and returns the frontier points.
func sweep(workload, codecList string, rounds int, gate, errorFeedback bool) []row {
	var rows []row
	for _, name := range strings.Split(codecList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, err := runOne(workload, name, rounds, gate, errorFeedback)
		if err != nil {
			log.Fatalf("%s/%s: %v", workload, name, err)
		}
		log.Printf("%s/%-18s acc %.3f, uplink %d bytes (%.0f per upload, %.1fx vs raw)",
			workload, name, r.acc, r.uplink, r.perUp, r.ratio)
		rows = append(rows, r)
	}
	return rows
}

// runOne executes one (workload, codec) cell and reads the communication
// totals back from the telemetry registry — the frontier is generated from
// the exported counters, not from ad-hoc accounting.
func runOne(workload, codecName string, rounds int, gate, errorFeedback bool) (row, error) {
	codec, err := compress.ParseName(codecName)
	if err != nil {
		return row{}, err
	}
	reg := telemetry.NewRegistry()
	col := telemetry.NewCollector(reg)

	var cfg fl.Config
	var dim int
	switch workload {
	case "mnist":
		setup := experiments.QuickMNIST()
		if rounds > 0 {
			setup.Rounds = rounds
		}
		fed, err := setup.Build()
		if err != nil {
			return row{}, err
		}
		var filter fl.UploadFilter
		if gate {
			filter = core.NewFilter(core.Constant(setup.CMFLThreshold))
		}
		cfg = setup.FLConfig(fed, filter)
		dim = fed.Model().NumParams()
	case "nwp":
		setup := experiments.QuickNWP()
		if rounds > 0 {
			setup.Rounds = rounds
		}
		fed, err := setup.Build()
		if err != nil {
			return row{}, err
		}
		var filter fl.UploadFilter
		if gate {
			filter = core.NewFilter(core.Constant(setup.CMFLThreshold))
		}
		cfg = setup.FLConfig(fed, filter)
		dim = fed.Model().NumParams()
	default:
		return row{}, fmt.Errorf("unknown workload %q", workload)
	}
	cfg.Compressor = codec
	cfg.ErrorFeedback = errorFeedback
	cfg.Observers = append(cfg.Observers, col)

	res, err := fl.Run(cfg)
	if err != nil {
		return row{}, err
	}
	snap := reg.Snapshot()
	uplink := int64(snap[`cmfl_uplink_bytes_total{engine="fl"}`])
	uploads := int64(snap[`cmfl_uploads_total{engine="fl"}`])
	perUp := 0.0
	ratio := 1.0
	if uploads > 0 {
		// Skip notifications ride the same counter; subtract them to isolate
		// the per-update payload cost.
		skips := int64(snap[`cmfl_skips_total{engine="fl"}`])
		payload := uplink - skips*fl.SkipNotificationBytes
		perUp = float64(payload) / float64(uploads)
		ratio = float64(dim*8) / perUp
	}
	return row{
		workload: workload,
		codec:    codecName,
		acc:      res.FinalAccuracy(),
		uplink:   uplink,
		uploads:  uploads,
		perUp:    perUp,
		ratio:    ratio,
	}, nil
}

func printRows(rows []row, markdown bool) {
	headers := []string{"workload", "codec", "final acc", "uplink bytes", "uploads", "bytes/update", "vs raw"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.workload, r.codec,
			fmt.Sprintf("%.3f", r.acc),
			fmt.Sprintf("%d", r.uplink),
			fmt.Sprintf("%d", r.uploads),
			fmt.Sprintf("%.0f", r.perUp),
			fmt.Sprintf("%.1fx", r.ratio),
		})
	}
	if !markdown {
		fmt.Print(report.Table(headers, cells))
		return
	}
	fmt.Println("| " + strings.Join(headers, " | ") + " |")
	fmt.Println("|" + strings.Repeat("---|", len(headers)))
	for _, c := range cells {
		fmt.Println("| " + strings.Join(c, " | ") + " |")
	}
}
