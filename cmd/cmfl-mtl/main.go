// cmfl-mtl regenerates the paper's federated multi-task experiments
// (Fig. 5, Fig. 6, Table II): MOCHA vs MOCHA+CMFL on the Human Activity
// Recognition and Semeion workloads.
//
// Usage:
//
//	cmfl-mtl -exp all -scale quick
//	cmfl-mtl -exp fig6 -scale paper
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"cmfl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfl-mtl: ")

	exp := flag.String("exp", "all", "experiment: fig5a|fig5b|fig6|table2|all")
	scale := flag.String("scale", "quick", "preset scale: quick|paper")
	rounds := flag.Int("rounds", 0, "override round budget (0 = preset)")
	csvDir := flag.String("csv", "", "also write each figure's data series as CSV into this directory")
	flag.Parse()

	var har, semeion experiments.MTLSetup
	switch *scale {
	case "quick":
		har, semeion = experiments.QuickHAR(), experiments.QuickSemeion()
	case "paper":
		har, semeion = experiments.PaperHAR(), experiments.PaperSemeion()
	default:
		log.Fatalf("unknown -scale %q (want quick or paper)", *scale)
	}
	if *rounds > 0 {
		har.Rounds, semeion.Rounds = *rounds, *rounds
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	known := map[string]bool{"all": true, "fig5a": true, "fig5b": true, "fig6": true, "table2": true}
	if !known[*exp] {
		log.Fatalf("unknown -exp %q", *exp)
	}

	var harRes, semRes *experiments.Fig5Result
	timed := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if want("fig5a") || want("fig6") || want("table2") {
		timed("fig5a", func() error {
			r, err := experiments.Fig5(har)
			if err != nil {
				return err
			}
			harRes = r
			if err := writeCSV(*csvDir, "fig5a.csv", r.CSV()); err != nil {
				return err
			}
			fmt.Println(r.Render())
			return nil
		})
	}
	if want("fig5b") || want("table2") {
		timed("fig5b", func() error {
			r, err := experiments.Fig5(semeion)
			if err != nil {
				return err
			}
			semRes = r
			if err := writeCSV(*csvDir, "fig5b.csv", r.CSV()); err != nil {
				return err
			}
			fmt.Println(r.Render())
			return nil
		})
	}
	if want("table2") && harRes != nil && semRes != nil {
		fmt.Println(experiments.Table2Render(harRes, semRes))
	}
	if want("fig6") && harRes != nil {
		timed("fig6", func() error {
			r, err := experiments.Fig6(harRes)
			if err != nil {
				return err
			}
			if err := writeCSV(*csvDir, "fig6.csv", r.CSV()); err != nil {
				return err
			}
			fmt.Println(r.Render())
			return nil
		})
	}
}

// writeCSV writes a figure's CSV when -csv is set.
func writeCSV(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	return experiments.WriteCSV(dir, name, content)
}
