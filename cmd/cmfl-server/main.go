// cmfl-server is the standalone master of the TCP emulation: it listens for
// the configured number of cmfl-client processes, drives synchronous
// federated rounds over the digit workload, and prints the accuracy and
// communication statistics when training finishes.
//
// Server and clients must be launched with the same -seed and model flags so
// that their architectures agree; the data shards live on the clients, as in
// the paper's master–slave deployment.
//
// Example (one server, four clients):
//
//	cmfl-server -addr 127.0.0.1:7070 -clients 4 -rounds 40 &
//	for i in 0 1 2 3; do cmfl-client -addr 127.0.0.1:7070 -id $i -clients 4 -filter cmfl -threshold 0.52 & done
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/dataset"
	"cmfl/internal/emu"
	"cmfl/internal/nn"
	"cmfl/internal/report"
	"cmfl/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfl-server: ")

	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	clients := flag.Int("clients", 4, "number of clients that will join")
	rounds := flag.Int("rounds", 40, "synchronous training rounds")
	target := flag.Float64("target", 0, "stop early at this test accuracy (0 = run all rounds)")
	testSamples := flag.Int("test-samples", 300, "server-side test set size")
	imageSize := flag.Int("image-size", 12, "digit image side (must match clients)")
	seed := flag.Int64("seed", 7, "experiment seed (must match clients)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-message network timeout")
	roundDeadline := flag.Duration("round-deadline", 0, "per-round aggregation cut-off; stragglers past it are excluded (0 = timeout)")
	minQuorum := flag.Int("min-quorum", 0, "minimum replies to aggregate a round at the deadline (0 = all clients, or 1 with -fault-tolerant)")
	faultTolerant := flag.Bool("fault-tolerant", false, "survive client connection failures and accept rejoins instead of aborting")
	shards := flag.Int("shards", 0, "shard aggregators in the two-tier aggregation tree (0 or 1 = flat; the aggregate is bit-identical either way)")
	codecName := flag.String("compress", "none", "update codec: none|quantize8|top<k>|mask<pct>|sign1bit[/<chunk>]|codebook[<k>]|<selector>+<values> (must match the clients)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and JSON /healthz on this address (e.g. 127.0.0.1:9090; empty = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof debug endpoints on this address (e.g. 127.0.0.1:6060; empty = off)")
	flag.Parse()

	test, err := dataset.Digits(dataset.DigitsConfig{
		Samples:   *testSamples,
		ImageSize: *imageSize,
		Noise:     0.15,
		MaxShift:  1,
		Seed:      *seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	codec, err := compress.ParseName(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := emu.NewServer(emu.ServerConfig{
		Addr:           *addr,
		Clients:        *clients,
		Model:          digitModel(*imageSize, *seed),
		TestData:       test,
		Rounds:         *rounds,
		TargetAccuracy: *target,
		Compressor:     codec,
		Limits: emu.Limits{
			DialTimeout:   *timeout,
			RoundDeadline: *roundDeadline,
			MinQuorum:     *minQuorum,
			FaultTolerant: *faultTolerant,
		},
		Topology:     emu.Topology{Shards: *shards},
		RoundTimeout: *timeout,
		MetricsAddr:  *metricsAddr,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("server close: %v", err)
		}
	}()
	if *pprofAddr != "" {
		stopPprof, err := servePprof(*pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stopPprof()
	}
	// SIGINT/SIGTERM finish the current round, send done to the clients,
	// and let the run return its partial history instead of dying mid-round.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		sig := <-sigs
		log.Printf("caught %v, finishing the current round", sig)
		srv.Shutdown()
	}()
	log.Printf("listening on %s, waiting for %d clients", srv.Addr(), *clients)
	if ma := srv.MetricsAddr(); ma != "" {
		log.Printf("telemetry on http://%s/metrics and /healthz", ma)
	}
	res, err := srv.Run()
	if err != nil {
		log.Fatal(err)
	}

	rows := make([][]string, 0, len(res.History))
	for _, h := range res.History {
		acc := "-"
		if !math.IsNaN(h.Accuracy) {
			acc = fmt.Sprintf("%.3f", h.Accuracy)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", h.Round),
			fmt.Sprintf("%d", h.Uploaded),
			fmt.Sprintf("%d", h.Skipped),
			fmt.Sprintf("%d", h.Dropped),
			fmt.Sprintf("%d", h.CumUploads),
			fmt.Sprintf("%d", h.CumUplinkBytes),
			acc,
		})
	}
	fmt.Print(report.Table([]string{"round", "uploads", "skips", "dropped", "cum uploads", "cum bytes", "accuracy"}, rows))
	fmt.Printf("final accuracy %.3f, uplink wire bytes %d, downlink wire bytes %d\n",
		res.FinalAccuracy(), res.UplinkWireBytes, res.DownlinkWireBytes)
	if res.CodecUpdates > 0 {
		fmt.Printf("codec: %d compressed updates, %d encoded bytes vs %d raw (%.1fx reduction)\n",
			res.CodecUpdates, res.CodecEncodedBytes, res.CodecRawBytes,
			float64(res.CodecRawBytes)/float64(res.CodecEncodedBytes))
	}
}

// servePprof exposes the net/http/pprof handlers on their own mux (the
// default mux would drag them onto any other handler set) and returns a
// closer for the listener.
func servePprof(addr string) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &http.Server{Handler: mux}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("pprof server: %v", err)
		}
	}()
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	return func() {
		if err := hs.Close(); err != nil {
			log.Printf("pprof close: %v", err)
		}
	}, nil
}

// digitModel must match cmd/cmfl-client's model for the same flags.
func digitModel(imageSize int, seed int64) func() *nn.Network {
	cfg := nn.CNNConfig{ImageSize: imageSize, Kernel: 3, Conv1: 3, Conv2: 6, Hidden: 24, Classes: 10}
	return func() *nn.Network { return nn.NewCNN(cfg, xrand.Derive(seed, "init", 0)) }
}
