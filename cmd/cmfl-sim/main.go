// cmfl-sim regenerates the paper's simulation figures and tables
// (Fig. 1-4, Table I) on the vanilla-FL workloads.
//
// Usage:
//
//	cmfl-sim -exp all -scale quick
//	cmfl-sim -exp fig4a -scale paper
//	cmfl-sim -exp overhead
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"cmfl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfl-sim: ")

	exp := flag.String("exp", "all", "experiment: fig1|fig2|fig3|fig4a|fig4b|table1|overhead|all")
	scale := flag.String("scale", "quick", "preset scale: quick|paper")
	rounds := flag.Int("rounds", 0, "override round budget (0 = preset)")
	clients := flag.Int("clients", 0, "override MNIST client count (0 = preset)")
	seed := flag.Int64("seed", 0, "override experiment seed (0 = preset)")
	csvDir := flag.String("csv", "", "also write each figure's data series as CSV into this directory")
	repeat := flag.Int("repeat", 0, "for fig4a/fig4b: rerun across this many seeds and report mean ± std savings")
	flag.Parse()

	var mn experiments.MNISTSetup
	var nw experiments.NWPSetup
	switch *scale {
	case "quick":
		mn, nw = experiments.QuickMNIST(), experiments.QuickNWP()
	case "paper":
		mn, nw = experiments.PaperMNIST(), experiments.PaperNWP()
	default:
		log.Fatalf("unknown -scale %q (want quick or paper)", *scale)
	}
	if *rounds > 0 {
		mn.Rounds, nw.Rounds = *rounds, *rounds
	}
	if *clients > 0 {
		mn.Clients = *clients
	}
	if *seed != 0 {
		mn.Seed, nw.Seed = *seed, *seed
		nw.Dialogue.Seed = *seed + 1
	}

	run := func(name string, f func() (fmt.Stringer, error)) {
		start := time.Now()
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	var fig4a, fig4b *experiments.Fig4Result
	if want("fig1") {
		run("fig1", func() (fmt.Stringer, error) {
			r, err := experiments.Fig1(mn, nw)
			if err != nil {
				return nil, err
			}
			if err := writeCSV(*csvDir, "fig1.csv", r.CSV()); err != nil {
				return nil, err
			}
			return render{r.Render, true}, nil
		})
	}
	if want("fig2") {
		run("fig2", func() (fmt.Stringer, error) {
			r, err := experiments.Fig2(mn)
			if err != nil {
				return nil, err
			}
			if err := writeCSV(*csvDir, "fig2.csv", r.CSV()); err != nil {
				return nil, err
			}
			return render{r.Render, true}, nil
		})
	}
	if want("fig3") {
		run("fig3", func() (fmt.Stringer, error) {
			r, err := experiments.Fig3(mn, nw)
			if err != nil {
				return nil, err
			}
			if err := writeCSV(*csvDir, "fig3.csv", r.CSV()); err != nil {
				return nil, err
			}
			return render{r.Render, true}, nil
		})
	}
	if want("fig4a") || want("table1") {
		run("fig4a", func() (fmt.Stringer, error) {
			r, err := experiments.Fig4MNIST(mn)
			if err != nil {
				return nil, err
			}
			fig4a = r
			if err := writeCSV(*csvDir, "fig4a.csv", r.CSV()); err != nil {
				return nil, err
			}
			return render{r.Render, true}, nil
		})
	}
	if want("fig4b") || want("table1") {
		run("fig4b", func() (fmt.Stringer, error) {
			r, err := experiments.Fig4NWP(nw)
			if err != nil {
				return nil, err
			}
			fig4b = r
			if err := writeCSV(*csvDir, "fig4b.csv", r.CSV()); err != nil {
				return nil, err
			}
			return render{r.Render, true}, nil
		})
	}
	if (want("table1")) && fig4a != nil && fig4b != nil {
		fmt.Println(experiments.Table1Render(fig4a, fig4b))
	}
	if *repeat > 1 {
		seeds := make([]int64, *repeat)
		for i := range seeds {
			seeds[i] = mn.Seed + int64(i)
		}
		if want("fig4a") {
			r, err := experiments.MultiSeedFig4MNIST(mn, seeds)
			if err != nil {
				log.Fatalf("fig4a multiseed: %v", err)
			}
			fmt.Println(r.Render())
		}
		if want("fig4b") {
			r, err := experiments.MultiSeedFig4NWP(nw, seeds)
			if err != nil {
				log.Fatalf("fig4b multiseed: %v", err)
			}
			fmt.Println(r.Render())
		}
	}
	if want("overhead") {
		run("overhead", func() (fmt.Stringer, error) {
			r, err := experiments.Overhead(mn)
			if err != nil {
				return nil, err
			}
			return render{r.Render, true}, nil
		})
	}
	if !anyKnown(*exp) {
		log.Fatalf("unknown -exp %q", *exp)
	}
}

func anyKnown(exp string) bool {
	known := []string{"all", "fig1", "fig2", "fig3", "fig4a", "fig4b", "table1", "overhead"}
	for _, k := range known {
		if exp == k {
			return true
		}
	}
	return false
}

// writeCSV writes a figure's CSV when -csv is set.
func writeCSV(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	return experiments.WriteCSV(dir, name, content)
}

// render adapts a Render method to fmt.Stringer.
type render struct {
	f  func() string
	ok bool
}

func (r render) String() string {
	if !r.ok || r.f == nil {
		return ""
	}
	return strings.TrimRight(r.f(), "\n")
}
