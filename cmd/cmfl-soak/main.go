// cmfl-soak is a sustained-load generator for the discrete-event simulator
// (internal/sim): it builds a synthetic non-IID population, runs CMFL
// training rounds in virtual time, and reports straggler/byte behaviour at
// client counts the TCP emulation cannot reach.
//
// Usage:
//
//	cmfl-soak -clients 100000 -rounds 10 -gate 0.4
//	cmfl-soak -clients 20000 -rounds 3 -deadline 150ms -latency lognormal:50ms,0.6
//	cmfl-soak -clients 1000000 -rounds 2 -samples 4 -codec top16+quantize8
//
// Output is a per-round table followed by a JSON summary, both on stdout.
// Everything on stdout is a pure function of the flags — rerunning the same
// command yields bit-identical bytes (asserted by TestSoakDeterministic).
// Wall-clock timing goes to stderr only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/core"
	"cmfl/internal/fl"
	"cmfl/internal/sim"
	"cmfl/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfl-soak: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// quantiles is the percentile triple the soak report pins for one histogram
// family, read straight off the telemetry registry.
type quantiles struct {
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

func readQuantiles(h *telemetry.Histogram) quantiles {
	return quantiles{P50: h.Quantile(0.5), P99: h.Quantile(0.99), P999: h.Quantile(0.999)}
}

// summary is the JSON report. It deliberately carries no wall-clock fields:
// the whole document is a pure function of the flag set, so reruns are
// bit-identical and diffs in CI mean a real behaviour change.
type summary struct {
	Clients         int     `json:"clients"`
	Rounds          int     `json:"rounds"`
	Seed            int64   `json:"seed"`
	Filter          string  `json:"filter"`
	Codec           string  `json:"codec"`
	Arrival         string  `json:"arrival"`
	Latency         string  `json:"latency"`
	Availability    float64 `json:"availability"`
	Deadline        string  `json:"deadline"`
	MinQuorum       int     `json:"min_quorum"`
	VirtualDuration string  `json:"virtual_duration"`

	CumUploads     int   `json:"cum_uploads"`
	CumUplinkBytes int64 `json:"cum_uplink_bytes"`
	SkippedUploads int   `json:"skipped_uploads"`
	StragglerCuts  int   `json:"straggler_cuts"`
	LateReplies    int   `json:"late_replies"`
	DeadlineRounds int   `json:"deadline_rounds"`

	ReplyLatencySeconds  quantiles `json:"reply_latency_seconds"`
	RoundDurationSeconds quantiles `json:"round_duration_seconds"`
	ReplyBytes           quantiles `json:"reply_bytes"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cmfl-soak", flag.ContinueOnError)
	fs.SetOutput(stderr)

	clients := fs.Int("clients", 10000, "simulated client population")
	rounds := fs.Int("rounds", 10, "synchronous training rounds")
	shards := fs.Int("shards", 0, "worker shards clients are multiplexed onto (0 = GOMAXPROCS); results are identical for any value")
	seed := fs.Int64("seed", 1, "root seed for every random draw")

	features := fs.Int("features", 16, "synthetic workload feature count")
	classes := fs.Int("classes", 4, "synthetic workload class count")
	samples := fs.Int("samples", 8, "training samples per client")

	epochs := fs.Int("epochs", 1, "local epochs per round")
	batch := fs.Int("batch", 8, "local minibatch size")
	lr := fs.Float64("lr", 0.1, "learning-rate v0 (decays as v0/sqrt(t))")
	gate := fs.Float64("gate", 0.4, "CMFL relevance threshold (0 = vanilla FL, upload everything)")
	codecName := fs.String("codec", "none", "update codec spec (compress.ParseName grammar, e.g. top16+quantize8)")

	arrival := fs.String("arrival", "exp:5ms", "per-reply local compute/queuing delay distribution (fixed:<d> | uniform:<lo>,<hi> | lognormal:<med>,<sigma> | exp:<mean>)")
	latency := fs.String("latency", "lognormal:50ms,0.5", "per-reply network latency distribution (same grammar)")
	bandwidth := fs.Float64("bandwidth", 0, "uplink bytes/sec serialising each payload (0 = infinite)")
	availability := fs.Float64("availability", 1, "per-round probability a client receives the broadcast")
	deadline := fs.Duration("deadline", 0, "virtual round deadline cutting off stragglers (0 = wait for all)")
	minQuorum := fs.Int("min-quorum", 1, "minimum accepted replies per round; fewer at the deadline aborts")
	table := fs.Bool("table", true, "print the per-round table before the JSON summary")

	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	// Validate the numeric flag lattice before any work: a bad combination
	// must fail here with the flag's name in the message, not panic three
	// layers down in the engine after minutes of workload synthesis.
	for _, c := range []struct {
		bad bool
		msg string
	}{
		{*clients <= 0, fmt.Sprintf("-clients %d: the population must be positive", *clients)},
		{*rounds <= 0, fmt.Sprintf("-rounds %d: need at least one training round", *rounds)},
		{*shards < 0, fmt.Sprintf("-shards %d: shard count cannot be negative (0 = GOMAXPROCS)", *shards)},
		{*features <= 0, fmt.Sprintf("-features %d: the synthetic workload needs at least one feature", *features)},
		{*classes <= 1, fmt.Sprintf("-classes %d: classification needs at least two classes", *classes)},
		{*samples <= 0, fmt.Sprintf("-samples %d: every client needs at least one training sample", *samples)},
		{*epochs <= 0, fmt.Sprintf("-epochs %d: need at least one local epoch", *epochs)},
		{*batch <= 0, fmt.Sprintf("-batch %d: the minibatch size must be positive", *batch)},
		{*lr <= 0, fmt.Sprintf("-lr %g: the learning rate must be positive", *lr)},
		{*gate < 0 || *gate > 1, fmt.Sprintf("-gate %g: the relevance threshold is a fraction in [0,1]", *gate)},
		{*bandwidth < 0, fmt.Sprintf("-bandwidth %g: bytes/sec cannot be negative (0 = infinite)", *bandwidth)},
		{*availability < 0 || *availability > 1, fmt.Sprintf("-availability %g: a probability must lie in [0,1]", *availability)},
		{*deadline < 0, fmt.Sprintf("-deadline %v: the round deadline cannot be negative (0 = wait for all)", *deadline)},
		{*minQuorum < 0, fmt.Sprintf("-min-quorum %d: the quorum cannot be negative", *minQuorum)},
		{*minQuorum > 1 && *deadline == 0, fmt.Sprintf("-min-quorum %d without -deadline: a quorum only matters when a deadline can cut replies off — set -deadline or drop -min-quorum", *minQuorum)},
		{*minQuorum > *clients, fmt.Sprintf("-min-quorum %d exceeds -clients %d: no round could ever reach quorum", *minQuorum, *clients)},
	} {
		if c.bad {
			return fmt.Errorf("%s", c.msg)
		}
	}

	codec, err := compress.ParseName(*codecName)
	if err != nil {
		return err
	}
	arrivalDist, err := sim.ParseDist(*arrival)
	if err != nil {
		return err
	}
	latencyDist, err := sim.ParseDist(*latency)
	if err != nil {
		return err
	}
	var filter fl.UploadFilter = fl.Vanilla{}
	if *gate > 0 {
		filter = core.NewFilter(core.Constant(*gate))
	}

	buildStart := time.Now()
	wl, err := sim.SyntheticWorkload(*clients, *features, *classes, *samples, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "[workload: %d clients × %d samples built in %v]\n", *clients, *samples, time.Since(buildStart).Round(time.Millisecond))

	reg := telemetry.NewRegistry()
	cfg := sim.Config{
		Model:                wl.Model,
		ClientData:           wl.Shards,
		Epochs:               *epochs,
		Batch:                *batch,
		LR:                   core.InvSqrt{V0: *lr},
		Filter:               filter,
		Compressor:           codec,
		Rounds:               *rounds,
		Seed:                 *seed,
		Shards:               *shards,
		Arrival:              arrivalDist,
		Latency:              latencyDist,
		BandwidthBytesPerSec: *bandwidth,
		Availability:         *availability,
		RoundDeadline:        *deadline,
		MinQuorum:            *minQuorum,
		Registry:             reg,
	}

	simStart := time.Now()
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(simStart)

	if *table {
		fmt.Fprintf(stdout, "%5s %9s %9s %8s %8s %10s %12s %9s %9s\n",
			"round", "expected", "uploaded", "skipped", "dropped", "deadline", "uplink", "loss", "relevance")
		for _, st := range res.History {
			fired := "-"
			if st.DeadlineFired {
				fired = "fired"
			}
			fmt.Fprintf(stdout, "%5d %9d %9d %8d %8d %10s %12s %9.4f %9.4f\n",
				st.Round, st.Participants, st.Uploaded, st.Skipped, st.Dropped, fired,
				formatBytes(st.CumUplinkBytes), st.TrainLoss, st.MeanRelevance)
		}
	}

	fam := sim.MetricFamilies(reg)
	var skipped, cuts int
	for _, s := range res.SkipCounts {
		skipped += s
	}
	for _, s := range res.StragglerCounts {
		cuts += s
	}
	deadlineRounds := 0
	for _, st := range res.History {
		if st.DeadlineFired {
			deadlineRounds++
		}
	}
	last := res.History[len(res.History)-1]
	sum := summary{
		Clients:              *clients,
		Rounds:               *rounds,
		Seed:                 *seed,
		Filter:               res.FilterName,
		Codec:                *codecName,
		Arrival:              arrivalDist.Name(),
		Latency:              latencyDist.Name(),
		Availability:         *availability,
		Deadline:             deadline.String(),
		MinQuorum:            *minQuorum,
		VirtualDuration:      res.VirtualDuration.String(),
		CumUploads:           last.CumUploads,
		CumUplinkBytes:       last.CumUplinkBytes,
		SkippedUploads:       skipped,
		StragglerCuts:        cuts,
		LateReplies:          res.LateReplies,
		DeadlineRounds:       deadlineRounds,
		ReplyLatencySeconds:  readQuantiles(fam.ReplyLatency),
		RoundDurationSeconds: readQuantiles(fam.RoundDuration),
		ReplyBytes:           readQuantiles(fam.ReplyBytes),
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		return err
	}

	cr := float64(*clients) * float64(*rounds)
	fmt.Fprintf(stderr, "[%d clients × %d rounds simulated in %v wall — %.0f client-rounds/s]\n",
		*clients, *rounds, wall.Round(time.Millisecond), cr/wall.Seconds())
	return nil
}

// formatBytes renders a byte count with a binary-prefix unit, fixed to one
// decimal so table columns stay aligned.
func formatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
