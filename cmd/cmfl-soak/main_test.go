package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestSoakDeterministic pins the CLI-level determinism contract: every byte
// on stdout is a pure function of the flag set, so two invocations with the
// same flags produce identical output — table, JSON summary and all.
func TestSoakDeterministic(t *testing.T) {
	args := []string{
		"-clients", "300", "-rounds", "4", "-seed", "42",
		"-deadline", "180ms", "-availability", "0.9",
		"-codec", "top8+quantize8",
	}
	capture := func(shards string) string {
		var out bytes.Buffer
		if err := run(append([]string{"-shards", shards}, args...), &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := capture("1")
	second := capture("1")
	if first != second {
		t.Fatalf("same flags produced different stdout:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	sharded := capture("7")
	if sharded != first {
		t.Fatalf("-shards 7 changed stdout vs -shards 1:\n--- shards=1 ---\n%s\n--- shards=7 ---\n%s", first, sharded)
	}
	for _, want := range []string{`"clients": 300`, `"reply_latency_seconds"`, `"p999"`, `"cum_uplink_bytes"`, "round", "fired"} {
		if !strings.Contains(first, want) {
			t.Fatalf("output missing %q:\n%s", want, first)
		}
	}
}

// TestSoakRejectsBadFlags keeps flag validation honest: malformed specs and
// impossible combinations fail up front, with the offending flag named in
// the error, before any workload synthesis or simulation starts.
func TestSoakRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown latency dist", []string{"-latency", "bogus:1ms"}, "bogus"},
		{"incomplete uniform spec", []string{"-arrival", "uniform:9ms"}, "uniform"},
		{"unknown codec", []string{"-codec", "warp9"}, "warp9"},
		{"zero clients", []string{"-clients", "0"}, "-clients 0"},
		{"negative clients", []string{"-clients", "-5"}, "-clients -5"},
		{"zero rounds", []string{"-rounds", "0"}, "-rounds 0"},
		{"negative shards", []string{"-shards", "-1"}, "-shards -1"},
		{"zero samples", []string{"-samples", "0"}, "-samples 0"},
		{"one class", []string{"-classes", "1"}, "-classes 1"},
		{"zero batch", []string{"-batch", "0"}, "-batch 0"},
		{"negative lr", []string{"-lr", "-0.1"}, "-lr"},
		{"gate above one", []string{"-gate", "1.5"}, "-gate 1.5"},
		{"negative bandwidth", []string{"-bandwidth", "-1"}, "-bandwidth"},
		{"availability above one", []string{"-availability", "1.1"}, "-availability 1.1"},
		{"negative deadline", []string{"-deadline", "-1s"}, "-deadline"},
		{"negative quorum", []string{"-min-quorum", "-2"}, "-min-quorum -2"},
		{"quorum without deadline", []string{"-min-quorum", "3"}, "without -deadline"},
		{"quorum beyond population", []string{"-clients", "10", "-min-quorum", "11", "-deadline", "1s"}, "exceeds -clients"},
		{"positional argument", []string{"positional"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(append([]string{"-rounds", "1"}, tc.args...), io.Discard, io.Discard)
			if err == nil {
				t.Fatalf("args %v: want error containing %q, got nil", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("args %v: error %q does not name the cause %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestSoakDefaultsStayValid guards the validation lattice against rejecting
// the documented defaults (deadline 0 with min-quorum 1 must stay legal).
func TestSoakDefaultsStayValid(t *testing.T) {
	err := run([]string{"-clients", "50", "-rounds", "1", "-samples", "2", "-table=false"}, io.Discard, io.Discard)
	if err != nil {
		t.Fatalf("default flag shape rejected: %v", err)
	}
}
