package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestSoakDeterministic pins the CLI-level determinism contract: every byte
// on stdout is a pure function of the flag set, so two invocations with the
// same flags produce identical output — table, JSON summary and all.
func TestSoakDeterministic(t *testing.T) {
	args := []string{
		"-clients", "300", "-rounds", "4", "-seed", "42",
		"-deadline", "180ms", "-availability", "0.9",
		"-codec", "top8+quantize8",
	}
	capture := func(shards string) string {
		var out bytes.Buffer
		if err := run(append([]string{"-shards", shards}, args...), &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := capture("1")
	second := capture("1")
	if first != second {
		t.Fatalf("same flags produced different stdout:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	sharded := capture("7")
	if sharded != first {
		t.Fatalf("-shards 7 changed stdout vs -shards 1:\n--- shards=1 ---\n%s\n--- shards=7 ---\n%s", first, sharded)
	}
	for _, want := range []string{`"clients": 300`, `"reply_latency_seconds"`, `"p999"`, `"cum_uplink_bytes"`, "round", "fired"} {
		if !strings.Contains(first, want) {
			t.Fatalf("output missing %q:\n%s", want, first)
		}
	}
}

// TestSoakRejectsBadFlags keeps flag validation honest: malformed specs fail
// before any simulation work starts.
func TestSoakRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-latency", "bogus:1ms"},
		{"-arrival", "uniform:9ms"},
		{"-codec", "warp9"},
		{"-clients", "0"},
		{"positional"},
	} {
		if err := run(append([]string{"-rounds", "1"}, args...), io.Discard, io.Discard); err == nil {
			t.Errorf("args %v: want error, got nil", args)
		}
	}
}
