// cmfl-tune reproduces the paper's threshold-tuning procedure: it sweeps a
// set of relevance (CMFL) or significance (Gaia) thresholds on a workload
// and reports the communication saving of each, so the best-performing
// threshold can be selected for the figures — exactly how Sec. V-A tunes
// 0.8/0.05 (MNIST) and 0.7/0.25 (NWP).
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"cmfl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmfl-tune: ")

	workload := flag.String("workload", "mnist", "workload: mnist|nwp")
	alg := flag.String("alg", "cmfl", "algorithm: cmfl|gaia")
	scale := flag.String("scale", "quick", "preset scale: quick|paper")
	decay := flag.Bool("decay", false, "use v0/sqrt(t) decay for the CMFL threshold")
	list := flag.String("thresholds", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.85,0.9",
		"comma-separated threshold values")
	rounds := flag.Int("rounds", 0, "override round budget (0 = preset)")
	flag.Parse()

	thresholds, err := parseList(*list)
	if err != nil {
		log.Fatal(err)
	}

	var res *experiments.SweepResult
	switch *workload {
	case "mnist":
		mn := experiments.QuickMNIST()
		if *scale == "paper" {
			mn = experiments.PaperMNIST()
		}
		if *rounds > 0 {
			mn.Rounds = *rounds
		}
		if *alg == "cmfl" {
			res, err = experiments.SweepCMFLMNIST(mn, thresholds, *decay)
		} else {
			res, err = experiments.SweepGaiaMNIST(mn, thresholds)
		}
	case "nwp":
		nw := experiments.QuickNWP()
		if *scale == "paper" {
			nw = experiments.PaperNWP()
		}
		if *rounds > 0 {
			nw.Rounds = *rounds
		}
		if *alg == "cmfl" {
			res, err = experiments.SweepCMFLNWP(nw, thresholds, *decay)
		} else {
			res, err = experiments.SweepGaiaNWP(nw, thresholds)
		}
	default:
		log.Fatalf("unknown -workload %q", *workload)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	best := res.Best()
	fmt.Printf("best threshold: %.2f (upload fraction %.2f, best accuracy %.3f)\n",
		best.Threshold, best.UploadFraction, best.BestAccuracy)
}

func parseList(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
