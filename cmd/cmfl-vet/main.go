// Command cmfl-vet runs the repo's static-analysis suite (internal/lint):
// repo-specific analyzers that machine-check the invariants the benchmarks
// and telemetry schema rely on — allocation-free hot paths, deterministic
// aggregation order, the cmfl_* metric contract, handled errors, and
// epsilon float comparisons.
//
// Usage:
//
//	cmfl-vet [-json] [-list] [packages]
//
// Packages default to ./... (every buildable package of the module,
// excluding testdata). Directories may be named explicitly — including
// testdata fixture packages, which is how the suite tests itself.
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cmfl/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON document")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cmfl-vet [-json] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-20s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	targets, mod, err := lint.Load(cwd, flag.Args())
	if err != nil {
		fatal(err)
	}
	res := lint.Run(mod, targets, lint.All())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		if len(res.Findings) > 0 || res.Suppressed > 0 {
			fmt.Fprintf(os.Stderr, "cmfl-vet: %d finding(s), %d suppressed\n", len(res.Findings), res.Suppressed)
		}
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmfl-vet:", err)
	os.Exit(2)
}
