// Command cmfl-vet runs the repo's static-analysis suite (internal/lint):
// repo-specific analyzers that machine-check the invariants the benchmarks
// and telemetry schema rely on — allocation-free hot paths (transitively,
// through the call graph), deterministic aggregation order, the cmfl_*
// metric contract, handled errors, epsilon float comparisons, goroutine
// and mutex discipline in the emulated engine, seed-provenance taint,
// client/server wire-protocol duality, lock-acquisition order, exhaustive
// dispatch over the protocol's constant families, and the exported-API
// baseline of the public packages.
//
// Usage:
//
//	cmfl-vet [-json] [-sarif file] [-fix] [-list] [-stats] [-pkg substr]
//	         [-cache dir] [-diff ref] [-write-api-baseline] [-budget file]
//	         [-cpuprofile file] [packages]
//
// Packages default to ./... (every buildable package of the module,
// excluding testdata). Directories may be named explicitly — including
// testdata fixture packages, which is how the suite tests itself.
//
// -fix applies every finding that carries a mechanical rewrite (today:
// wallclock's time.Now/Since/Sleep → package-hook rewrites), re-running
// the suite after each apply round until no fixable findings remain.
// Rewritten files are always gofmt-clean; the findings printed afterwards
// are the unfixable remainder. Caching is bypassed while fixing.
//
// -sarif writes the run's findings as a SARIF 2.1.0 log to the given file
// ("-" for stdout), the format GitHub code scanning ingests.
//
// -diff ref narrows the run to the packages whose files differ from the
// git ref (plus untracked files), extended by their forward and reverse
// transitive import closures — the pre-commit entry point
// (scripts/lint.sh --diff) uses it against the merge base. Within that
// closure the findings match a full run's.
//
// -write-api-baseline regenerates benchmarks/api_baseline.json from the
// run's exported-API facts; do this after an intentional, marker-waived
// //cmfl:api-change.
//
// Results are cached per package under -cache (default .cmflvet-cache at
// the module root, -cache "" to disable): when no file affecting a target
// changed, the run replays findings without type-checking anything. Diff
// runs keep their own records under <cache>-diff.
//
// Exit status: 0 when clean, 1 when findings were reported or the
// suppression budget is exceeded, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"cmfl/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON document")
	sarifOut := flag.String("sarif", "", "write findings as a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	fix := flag.Bool("fix", false, "apply mechanical rewrites for fixable findings, re-running until none remain")
	list := flag.Bool("list", false, "list the analyzers and exit")
	stats := flag.Bool("stats", false, "report per-analyzer wall time and cache behavior")
	pkgFilter := flag.String("pkg", "", "only analyze targets whose import path contains this substring")
	cacheDir := flag.String("cache", lint.DefaultCacheDir, "cache directory (relative to the module root); empty disables caching")
	diffRef := flag.String("diff", "", "analyze only packages affected by files differing from this git ref")
	writeBaseline := flag.Bool("write-api-baseline", false, "regenerate benchmarks/api_baseline.json from this run's exported-API facts")
	budgetFile := flag.String("budget", "", "JSON budget file; fail when suppressions exceed its max_suppressed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cmfl-vet [-json] [-sarif file] [-fix] [-list] [-stats] [-pkg substr] [-cache dir] [-diff ref] [-write-api-baseline] [-budget file] [-cpuprofile file] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-20s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	runOpts := lint.RunOptions{
		CacheDir:         *cacheDir,
		Stats:            *stats || *jsonOut,
		PkgFilter:        *pkgFilter,
		DiffRef:          *diffRef,
		WriteAPIBaseline: *writeBaseline,
	}
	var res lint.Result
	if *fix {
		fixed, sum, err := lint.RunFix(cwd, flag.Args(), lint.All(), runOpts)
		if err != nil {
			fatal(err)
		}
		res = fixed
		if len(sum.FilesChanged) > 0 {
			fmt.Fprintf(os.Stderr, "cmfl-vet: fixed %d file(s) in %d pass(es):\n", len(sum.FilesChanged), sum.Iterations)
			for _, p := range sum.FilesChanged {
				fmt.Fprintf(os.Stderr, "  %s\n", p)
			}
		}
	} else {
		var err error
		res, err = lint.RunModule(cwd, flag.Args(), lint.All(), runOpts)
		if err != nil {
			fatal(err)
		}
	}
	if *sarifOut != "" {
		if err := writeSARIFFile(*sarifOut, cwd, res); err != nil {
			fatal(err)
		}
	}
	if !*stats {
		res.Stats = nil // only attach to -json output when explicitly asked
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		if len(res.Findings) > 0 || res.Suppressed > 0 {
			fmt.Fprintf(os.Stderr, "cmfl-vet: %d finding(s), %d suppressed\n", len(res.Findings), res.Suppressed)
		}
		if *stats && res.Stats != nil {
			printStats(res.Stats)
		}
	}

	exit := 0
	if len(res.Findings) > 0 {
		exit = 1
	}
	if *budgetFile != "" && !checkBudget(*budgetFile, res.Suppressed) {
		exit = 1
	}
	if exit != 0 {
		// os.Exit skips deferred pprof.StopCPUProfile; flush it first.
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(exit)
	}
}

// writeSARIFFile renders res as SARIF 2.1.0 to path ("-" for stdout).
func writeSARIFFile(path, root string, res lint.Result) error {
	if path == "-" {
		return lint.WriteSARIF(os.Stdout, root, lint.All(), res)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := lint.WriteSARIF(f, root, lint.All(), res)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func printStats(s *lint.RunStats) {
	fmt.Fprintf(os.Stderr, "cmfl-vet: load %dms, wall %dms, cache %d hit / %d miss\n",
		s.LoadMS, s.WallMS, s.CacheHits, s.CacheMisses)
	for _, a := range s.Analyzers {
		fmt.Fprintf(os.Stderr, "  %-20s %6dms  %d finding(s)\n", a.Name, a.MS, a.Findings)
	}
}

// lintBudget is benchmarks/lint_budget.json: the ceiling on accepted
// //cmfl:lint-ignore suppressions. Raising it is a reviewed change.
type lintBudget struct {
	MaxSuppressed int `json:"max_suppressed"`
}

func checkBudget(path string, suppressed int) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var b lintBudget
	if err := json.Unmarshal(data, &b); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	if suppressed > b.MaxSuppressed {
		fmt.Fprintf(os.Stderr, "cmfl-vet: %d suppression(s) exceed the budget of %d in %s: fix the findings or raise the budget with justification\n",
			suppressed, b.MaxSuppressed, path)
		return false
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmfl-vet:", err)
	os.Exit(2)
}
