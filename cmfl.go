// Package cmfl is the public API of this repository: a from-scratch Go
// implementation of Communication-Mitigated Federated Learning (Wang, Wang,
// Li — ICDCS 2019) together with every substrate the paper's evaluation
// needs: a neural-network library with manual backprop, synthetic non-IID
// datasets, a synchronous federated-learning engine, the Gaia baseline, a
// MOCHA-style federated multi-task learner, and a TCP master–slave
// emulation with exact wire-byte accounting.
//
// The package re-exports the internal building blocks as type aliases, so a
// downstream user only imports "cmfl":
//
//	shards, _ := cmfl.SortedShards(data, 100, 2, cmfl.NewStream(7))
//	res, _ := cmfl.RunFederated(cmfl.FederatedConfig{
//		Model:      func() *cmfl.Network { return cmfl.NewCNN(cmfl.DefaultCNNConfig(), cmfl.DeriveStream(7, "init", 0)) },
//		ClientData: shards,
//		TestData:   test,
//		Epochs:     4, Batch: 2,
//		LR:     cmfl.InvSqrt{V0: 0.1},
//		Filter: cmfl.NewCMFLFilter(cmfl.InvSqrt{V0: 0.8}),
//		Rounds: 300,
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results of every table and figure.
package cmfl

import (
	"net/http"

	"cmfl/internal/compress"
	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/emu"
	"cmfl/internal/fl"
	"cmfl/internal/gaia"
	"cmfl/internal/mtl"
	"cmfl/internal/nn"
	"cmfl/internal/report"
	"cmfl/internal/secagg"
	"cmfl/internal/stats"
	"cmfl/internal/telemetry"
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// ---- The paper's contribution (internal/core, internal/gaia) ----

// Relevance computes the paper's Eq. 9: the fraction of same-sign
// coordinates between a local update and the (estimated) global update.
func Relevance(local, global []float64) (float64, error) { return core.Relevance(local, global) }

// CosineRelevance is the cosine-similarity ablation variant of Eq. 9.
func CosineRelevance(local, global []float64) (float64, error) {
	return core.CosineRelevance(local, global)
}

// DeltaUpdate computes Eq. 8, the normalized difference of two sequential
// global updates.
func DeltaUpdate(prev, next []float64) (float64, error) { return core.DeltaUpdate(prev, next) }

// Significance computes Gaia's magnitude metric ‖update‖/‖model‖.
func Significance(update, model []float64) (float64, error) {
	return gaia.Significance(update, model)
}

// Schedule maps a 1-based round number to a threshold or learning rate.
type Schedule = core.Schedule

// Constant is a time-invariant Schedule.
type Constant = core.Constant

// InvSqrt decays as V0/√t, the schedule of the paper's Theorem 1 remark.
type InvSqrt = core.InvSqrt

// Step holds V0 for Warm rounds, then switches to After.
type Step = core.Step

// Decision is a filter's verdict for one local update.
type Decision = core.Decision

// CMFLFilter is the paper's client-side relevance gate.
type CMFLFilter = core.Filter

// NewCMFLFilter builds the CMFL upload filter with a relevance-threshold
// schedule v(t).
func NewCMFLFilter(threshold Schedule) *CMFLFilter { return core.NewFilter(threshold) }

// AdaptiveFilter is a CMFL extension that self-tunes its relevance
// threshold to track a target upload fraction.
type AdaptiveFilter = core.AdaptiveFilter

// NewAdaptiveFilter builds the self-tuning CMFL filter.
func NewAdaptiveFilter(start, target float64) *AdaptiveFilter {
	return core.NewAdaptiveFilter(start, target)
}

// GaiaFilter is the magnitude-based baseline filter.
type GaiaFilter = gaia.Filter

// NewGaiaFilter builds the Gaia significance filter.
func NewGaiaFilter(threshold Schedule) *GaiaFilter { return gaia.NewFilter(threshold) }

// ---- Telemetry & observability (internal/telemetry) ----

// RoundEvent is the communication-cost core every engine records per round;
// the per-engine stats types embed it.
type RoundEvent = telemetry.RoundEvent

// ClientEvent records one client's upload/skip decision inside a round.
type ClientEvent = telemetry.ClientEvent

// Observer receives live engine telemetry; attach implementations through
// the Observers field of any engine config.
type Observer = telemetry.Observer

// ObserverFuncs adapts plain functions to the Observer interface.
type ObserverFuncs = telemetry.Funcs

// Registry is the dependency-free metrics registry (counters, gauges,
// fixed-bucket histograms) behind the /metrics endpoint.
type Registry = telemetry.Registry

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// Collector is the bridge from the engine event stream to a Registry: an
// Observer maintaining the standard cmfl_* metric families per engine.
type Collector = telemetry.Collector

// NewCollector creates a Collector writing into reg.
func NewCollector(reg *Registry) *Collector { return telemetry.NewCollector(reg) }

// MetricsHandler exposes a registry over HTTP as a Prometheus-text /metrics
// and JSON /healthz endpoint.
func MetricsHandler(reg *Registry) http.Handler { return telemetry.Handler(reg) }

// MetricsServer is a live /metrics + /healthz endpoint bound to a TCP port.
type MetricsServer = telemetry.MetricsServer

// ServeMetrics binds addr and serves reg in the background until Close.
func ServeMetrics(addr string, reg *Registry) (*MetricsServer, error) {
	return telemetry.Serve(addr, reg)
}

// ---- Federated engine (internal/fl) ----

// UploadFilter gates client uploads; CMFLFilter, GaiaFilter and Vanilla
// implement it.
type UploadFilter = fl.UploadFilter

// FilterFeedback is the optional UploadFilter extension through which the
// engines report each round's upload count back to stateful filters (e.g.
// AdaptiveFilter).
type FilterFeedback = fl.FilterFeedback

// Vanilla always uploads (plain FedAvg-style FL).
type Vanilla = fl.Vanilla

// FederatedConfig configures a synchronous federated training run.
type FederatedConfig = fl.Config

// FederatedResult is the outcome of RunFederated.
type FederatedResult = fl.Result

// RoundStats records one synchronous round; its communication core is the
// embedded RoundEvent.
type RoundStats = fl.RoundStats

// SkipNotificationBytes is the wire cost of a withheld update's status
// message.
const SkipNotificationBytes = fl.SkipNotificationBytes

// RunFederated executes Algorithm 1 over in-process simulated clients.
func RunFederated(cfg FederatedConfig) (*FederatedResult, error) { return fl.Run(cfg) }

// UpdateCodec lossily compresses uploaded updates (the related work's
// bit-reduction approach); set FederatedConfig.Compressor to apply one.
type UpdateCodec = fl.UpdateCodec

// Quantize8 is 8-bit uniform quantisation of updates (a sketched update).
type Quantize8 = compress.Uniform8

// TopKSparsifier keeps only the K largest-magnitude coordinates per upload
// (a structured update).
type TopKSparsifier = compress.TopK

// RandomMaskCodec transmits a seed-determined random subset of coordinates.
type RandomMaskCodec = compress.RandomMask

// SignCodec is 1-bit sign quantisation with a per-chunk mean-magnitude
// scale (signSGD-style).
type SignCodec = compress.Sign1Bit

// CodebookCodec is k-means scalar quantisation: a per-update codebook of
// centroids plus one byte per coordinate.
type CodebookCodec = compress.Codebook

// CodecChain composes a sparsifying selector with a value codec (e.g. top-k
// then 8-bit quantisation) into one UpdateCodec.
type CodecChain = compress.Chain

// NewCodecChain builds a validated selector→values chain.
func NewCodecChain(sel compress.Selector, values compress.Codec) CodecChain {
	return compress.NewChain(sel, values)
}

// ParseCodec resolves a codec name — none|identity|quantize8|top<k>|
// mask<pct>|sign1bit[/<chunk>]|codebook[<k>]|<selector>+<values> — to an
// UpdateCodec (nil for "none"). The same grammar backs the CLIs' -compress
// flags.
func ParseCodec(name string) (UpdateCodec, error) { return compress.ParseName(name) }

// PartialConfig configures the layerwise partial-upload extension: the
// relevance gate runs per parameter tensor and clients upload only their
// aligned segments.
type PartialConfig = fl.PartialConfig

// PartialResult is the outcome of RunPartialFederated.
type PartialResult = fl.PartialResult

// PartialRoundStats records one layerwise-gated round; its communication
// core is the embedded RoundEvent.
type PartialRoundStats = fl.PartialRoundStats

// RunPartialFederated executes synchronous training with layerwise
// relevance gating.
func RunPartialFederated(cfg PartialConfig) (*PartialResult, error) { return fl.RunPartial(cfg) }

// AsyncConfig configures the asynchronous (FedAsync-style) extension with
// simulated stragglers and staleness-damped aggregation.
type AsyncConfig = fl.AsyncConfig

// AsyncResult is the outcome of RunAsyncFederated.
type AsyncResult = fl.AsyncResult

// RunAsyncFederated executes the asynchronous federated simulation; CMFL's
// relevance gate applies against an EMA of recently applied updates.
func RunAsyncFederated(cfg AsyncConfig) (*AsyncResult, error) { return fl.RunAsync(cfg) }

// LocalTrain is the client-side local optimisation step shared by the
// simulation and the TCP emulation.
func LocalTrain(net *Network, data *Set, global []float64, lr float64, epochs, batch int, rng *Stream) (delta []float64, loss float64, err error) {
	return fl.LocalTrain(net, data, global, lr, epochs, batch, rng)
}

// ---- Neural networks (internal/nn) ----

// Network is a sequence of layers with flat parameter-vector views.
type Network = nn.Network

// Layer is one differentiable stage of a Network.
type Layer = nn.Layer

// Tensor is a dense float64 array with a shape.
type Tensor = tensor.Tensor

// NewTensor allocates a zeroed tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// CNNConfig configures the paper's MNIST-style CNN.
type CNNConfig = nn.CNNConfig

// DefaultCNNConfig is the scaled-down digit CNN.
func DefaultCNNConfig() CNNConfig { return nn.DefaultCNNConfig() }

// NewCNN builds the digit-recognition CNN.
func NewCNN(cfg CNNConfig, rng *Stream) *Network { return nn.NewCNN(cfg, rng) }

// LSTMConfig configures the next-word-prediction model.
type LSTMConfig = nn.LSTMConfig

// DefaultLSTMConfig is the scaled-down next-word model.
func DefaultLSTMConfig(vocab int) LSTMConfig { return nn.DefaultLSTMConfig(vocab) }

// NewNextWordLSTM builds embedding → stacked LSTM → vocabulary head.
func NewNextWordLSTM(cfg LSTMConfig, rng *Stream) *Network { return nn.NewNextWordLSTM(cfg, rng) }

// NewMLP builds a ReLU multilayer perceptron over the given widths.
func NewMLP(rng *Stream, widths ...int) *Network { return nn.NewMLP(rng, widths...) }

// Optimizer updates a network from its accumulated gradients (SGD with
// momentum, Adam).
type Optimizer = nn.Optimizer

// NewSGDOptimizer builds plain stochastic gradient descent (set Momentum and
// WeightDecay on the returned value for the richer variants).
func NewSGDOptimizer(lr float64) *nn.SGD { return nn.NewSGD(lr) }

// NewAdamOptimizer builds Adam with standard hyperparameters.
func NewAdamOptimizer(lr float64) *nn.Adam { return nn.NewAdam(lr) }

// NewLogistic builds a linear softmax classifier.
func NewLogistic(in, classes int, rng *Stream) *Network { return nn.NewLogistic(in, classes, rng) }

// NewLogisticFlat builds Flatten → Dense: a linear classifier over samples
// of any shape whose element count is in (e.g. image tensors).
func NewLogisticFlat(in, classes int, rng *Stream) *Network {
	return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(in, classes, rng))
}

// ---- Datasets (internal/dataset) ----

// Set is a supervised dataset (X indexed by sample, integer labels Y).
type Set = dataset.Set

// DigitsConfig configures the synthetic MNIST stand-in.
type DigitsConfig = dataset.DigitsConfig

// Digits generates synthetic handwritten-style digits.
func Digits(cfg DigitsConfig) (*Set, error) { return dataset.Digits(cfg) }

// DefaultDigitsConfig is the scaled-down MNIST stand-in configuration.
func DefaultDigitsConfig() DigitsConfig { return dataset.DefaultDigitsConfig() }

// DialogueConfig configures the synthetic Shakespeare-style corpus.
type DialogueConfig = dataset.DialogueConfig

// Dialogue is the generated multi-role next-word corpus.
type Dialogue = dataset.Dialogue

// GenerateDialogue builds the per-role next-word-prediction federation.
func GenerateDialogue(cfg DialogueConfig) (*Dialogue, error) { return dataset.GenerateDialogue(cfg) }

// DefaultDialogueConfig is the scaled-down Shakespeare stand-in.
func DefaultDialogueConfig() DialogueConfig { return dataset.DefaultDialogueConfig() }

// HARConfig configures the Human-Activity-Recognition stand-in.
type HARConfig = dataset.HARConfig

// HAR is the generated activity-recognition federation.
type HAR = dataset.HAR

// GenerateHAR builds the HAR federation with explicit outlier clients.
func GenerateHAR(cfg HARConfig) (*HAR, error) { return dataset.GenerateHAR(cfg) }

// DefaultHARConfig mirrors the paper's 142-client HAR setup.
func DefaultHARConfig() HARConfig { return dataset.DefaultHARConfig() }

// SemeionConfig configures the Semeion digit stand-in.
type SemeionConfig = dataset.SemeionConfig

// Semeion generates the 256-feature binarised digit dataset.
func Semeion(cfg SemeionConfig) (*Set, error) { return dataset.Semeion(cfg) }

// DefaultSemeionConfig mirrors the paper's Semeion size.
func DefaultSemeionConfig() SemeionConfig { return dataset.DefaultSemeionConfig() }

// WriterDigitsConfig configures the per-writer digit federation with
// feature-level (style) heterogeneity.
type WriterDigitsConfig = dataset.WriterDigitsConfig

// WriterDigits generates a federation of digit "writers" with personal
// rendering styles; the returned indices mark the extreme-style writers.
func WriterDigits(cfg WriterDigitsConfig) (clients []*Set, extremeIdx []int, err error) {
	return dataset.WriterDigits(cfg)
}

// SortedShards partitions label-sorted data into non-IID client shards.
func SortedShards(s *Set, clients, shardsPerClient int, rng *Stream) ([]*Set, error) {
	return dataset.SortedShards(s, clients, shardsPerClient, rng)
}

// IIDSplit partitions data uniformly at random (ablation control).
func IIDSplit(s *Set, clients int, rng *Stream) ([]*Set, error) {
	return dataset.IIDSplit(s, clients, rng)
}

// SplitClients partitions data across clients with random sizes.
func SplitClients(s *Set, clients, minSamples, maxSamples int, rng *Stream) ([]*Set, error) {
	return dataset.SplitClients(s, clients, minSamples, maxSamples, rng)
}

// MergeSets concatenates datasets with identical sample shapes.
func MergeSets(sets []*Set) *Set { return dataset.Merge(sets) }

// ---- Multi-task learning (internal/mtl) ----

// MTLConfig configures a MOCHA-style federated multi-task run.
type MTLConfig = mtl.Config

// MTLResult is the outcome of RunMTL.
type MTLResult = mtl.Result

// MTLRoundStats records one synchronous MTL round; its communication core
// is the embedded RoundEvent.
type MTLRoundStats = mtl.RoundStats

// OmegaMode selects the relationship-matrix strategy.
type OmegaMode = mtl.OmegaMode

// Relationship-matrix modes.
const (
	OmegaMeanRegularized = mtl.OmegaMeanRegularized
	OmegaLearned         = mtl.OmegaLearned
)

// RunMTL executes federated multi-task training (optionally with CMFL).
func RunMTL(cfg MTLConfig) (*MTLResult, error) { return mtl.Run(cfg) }

// ---- TCP emulation (internal/emu) ----

// ServerConfig configures the emulation master; set MetricsAddr to serve
// /metrics and /healthz while the cluster runs.
type ServerConfig = emu.ServerConfig

// Limits bounds an emulation's timing, quorum, and fault posture; it is
// embedded by ServerConfig and ClusterConfig.
type Limits = emu.Limits

// Topology lays out the emulation server's aggregation tree (Shards > 1
// enables the two-tier sharded server; the aggregate is bit-identical to
// the flat one by construction).
type Topology = emu.Topology

// ShardLimit is one shard's local override of the global Limits.
type ShardLimit = emu.ShardLimit

// EmuRoundStats is the emulation master's round record: the shared
// RoundEvent core plus wire-level running totals.
type EmuRoundStats = emu.RoundStats

// Server is the emulation master.
type Server = emu.Server

// NewServer binds the master's listen socket.
func NewServer(cfg ServerConfig) (*Server, error) { return emu.NewServer(cfg) }

// ClientConfig configures one emulation slave.
type ClientConfig = emu.ClientConfig

// RunEmulationClient joins a remote server and trains until done.
func RunEmulationClient(cfg ClientConfig) (*emu.ClientResult, error) { return emu.RunClient(cfg) }

// ClusterConfig configures an in-process localhost cluster.
type ClusterConfig = emu.ClusterConfig

// ClusterResult combines server and client views of a cluster run.
type ClusterResult = emu.ClusterResult

// RunCluster runs a full master+slaves emulation over localhost TCP.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) { return emu.RunCluster(cfg) }

// FaultPlan schedules deterministic transport faults for an emulated
// cluster (at most one per client per round); the same plan value drives
// arbitrarily many runs to bit-identical global models.
type FaultPlan = emu.FaultPlan

// Fault is one scheduled transport failure.
type Fault = emu.Fault

// FaultKind enumerates the injectable failure classes.
type FaultKind = emu.FaultKind

// FaultRates configures RandomFaultPlan's per-cell fault probabilities.
type FaultRates = emu.FaultRates

// Fault classes injectable at the emulated clients' connection layer.
const (
	FaultNone         = emu.FaultNone
	FaultDropUpdate   = emu.FaultDropUpdate
	FaultDelay        = emu.FaultDelay
	FaultDisconnect   = emu.FaultDisconnect
	FaultCrashRejoin  = emu.FaultCrashRejoin
	FaultCorruptFrame = emu.FaultCorruptFrame
)

// NewFaultPlan returns an empty fault plan; populate it with Add.
func NewFaultPlan() *FaultPlan { return emu.NewFaultPlan() }

// RandomFaultPlan draws a reproducible fault plan over clients×rounds from
// a seeded stream.
func RandomFaultPlan(seed int64, clients, rounds int, rates FaultRates) *FaultPlan {
	return emu.RandomFaultPlan(seed, clients, rounds, rates)
}

// ---- Secure aggregation (internal/secagg) ----

// SecureRound is the outcome of one pairwise-mask secure-aggregation round.
type SecureRound = secagg.RoundResult

// SecureMask applies a client's pairwise masks over the announced
// participant set (Bonawitz-style secure aggregation, simulated after key
// agreement).
func SecureMask(session int64, round, client int, participants []int, update []float64) ([]float64, error) {
	return secagg.Mask(session, round, client, participants, update)
}

// SecureAggregate sums masked updates; the pairwise masks cancel.
func SecureAggregate(masked [][]float64) ([]float64, error) { return secagg.Aggregate(masked) }

// SimulateSecureRound runs the two-phase filtered secure-aggregation round
// (CMFL decisions in phase 1, masking over the announced upload set in
// phase 2).
func SimulateSecureRound(session int64, round int, updates [][]float64, decide secagg.UploadDecider) (*SecureRound, error) {
	return secagg.SimulateRound(session, round, updates, decide)
}

// ---- Measurement (internal/stats, internal/report) ----

// CDF is an empirical cumulative distribution.
type CDF = stats.CDF

// NewCDF builds an empirical CDF from samples.
func NewCDF(samples []float64) *CDF { return stats.NewCDF(samples) }

// NormalizedModelDivergence computes Eq. 7 per parameter.
func NormalizedModelDivergence(clientParams [][]float64, global []float64) ([]float64, error) {
	return stats.NormalizedModelDivergence(clientParams, global)
}

// AccuracyTrace is a (cumulative uploads, accuracy) series.
type AccuracyTrace = stats.AccuracyTrace

// Saving computes Φ_vanilla/Φ_alg at a target accuracy (Sec. V).
func Saving(vanilla, alg *AccuracyTrace, target float64) (float64, bool) {
	return stats.Saving(vanilla, alg, target)
}

// RenderTable renders an aligned plain-text table.
func RenderTable(headers []string, rows [][]string) string { return report.Table(headers, rows) }

// PlotSeries is one line of an ASCII plot.
type PlotSeries = report.Series

// RenderPlot renders series on an ASCII grid.
func RenderPlot(title string, width, height int, series ...PlotSeries) string {
	return report.Plot(title, width, height, series...)
}

// ---- Randomness (internal/xrand) ----

// Stream is a deterministic random stream.
type Stream = xrand.Stream

// NewStream seeds a stream directly.
func NewStream(seed int64) *Stream { return xrand.New(seed) }

// DeriveStream derives an independent child stream from (seed, purpose, id).
func DeriveStream(seed int64, purpose string, id int) *Stream {
	return xrand.Derive(seed, purpose, id)
}
