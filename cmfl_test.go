package cmfl_test

import (
	"math"
	"testing"
	"time"

	"cmfl"
)

// TestPublicAPIEndToEnd exercises the facade exactly the way the README's
// quickstart does: generate non-IID shards, train with the CMFL filter, and
// inspect the communication statistics.
func TestPublicAPIEndToEnd(t *testing.T) {
	all, err := cmfl.Digits(cmfl.DigitsConfig{Samples: 200, ImageSize: 10, Noise: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := cmfl.SortedShards(all, 5, 2, cmfl.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	test, err := cmfl.Digits(cmfl.DigitsConfig{Samples: 100, ImageSize: 10, Noise: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cmfl.RunFederated(cmfl.FederatedConfig{
		Model: func() *cmfl.Network {
			return cmfl.NewLogisticFlat(100, 10, cmfl.DeriveStream(4, "init", 0))
		},
		ClientData: shards,
		TestData:   test,
		Epochs:     2,
		Batch:      4,
		LR:         cmfl.Constant(0.15),
		Filter:     cmfl.NewCMFLFilter(cmfl.Constant(0.5)),
		Rounds:     10,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilterName != "cmfl" {
		t.Fatalf("FilterName = %q", res.FilterName)
	}
	if len(res.History) != 10 {
		t.Fatalf("history = %d rounds, want 10", len(res.History))
	}
	if math.IsNaN(res.FinalAccuracy()) {
		t.Fatal("no accuracy evaluated")
	}
}

func TestPublicMetrics(t *testing.T) {
	rel, err := cmfl.Relevance([]float64{1, -1}, []float64{2, -3})
	if err != nil || rel != 1 {
		t.Fatalf("Relevance = %v, %v", rel, err)
	}
	sig, err := cmfl.Significance([]float64{3, 4}, []float64{5, 0})
	if err != nil || sig != 1 {
		t.Fatalf("Significance = %v, %v", sig, err)
	}
	du, err := cmfl.DeltaUpdate([]float64{1, 0}, []float64{1, 0})
	if err != nil || du != 0 {
		t.Fatalf("DeltaUpdate = %v, %v", du, err)
	}
	cos, err := cmfl.CosineRelevance([]float64{1, 0}, []float64{1, 0})
	if err != nil || math.Abs(cos-1) > 1e-12 {
		t.Fatalf("CosineRelevance = %v, %v", cos, err)
	}
}

func TestPublicFiltersAndSchedules(t *testing.T) {
	f := cmfl.NewCMFLFilter(cmfl.InvSqrt{V0: 0.8})
	d, err := f.Check([]float64{1, 1}, nil, []float64{1, 1}, 4)
	if err != nil || !d.Upload {
		t.Fatalf("CMFL filter: %+v, %v", d, err)
	}
	g := cmfl.NewGaiaFilter(cmfl.Constant(0.5))
	d, err = g.Check([]float64{1, 0}, []float64{1, 0}, nil, 1)
	if err != nil || !d.Upload {
		t.Fatalf("Gaia filter: %+v, %v", d, err)
	}
	var v cmfl.Vanilla
	d, err = v.Check(nil, nil, nil, 1)
	if err != nil || !d.Upload {
		t.Fatalf("Vanilla filter: %+v, %v", d, err)
	}
	if got := (cmfl.Step{V0: 1, Warm: 2, After: 0.5}).At(3); got != 0.5 {
		t.Fatalf("Step schedule = %v", got)
	}
}

func TestPublicMTL(t *testing.T) {
	har, err := cmfl.GenerateHAR(cmfl.HARConfig{
		Clients: 6, Outliers: 1, Features: 20,
		MinSamples: 10, MaxSamples: 20,
		ClassSep: 2, PersonalScale: 0.2, OutlierScale: 1.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cmfl.RunMTL(cmfl.MTLConfig{
		Clients: har.Clients,
		Lambda:  0.01,
		LR:      cmfl.Constant(0.05),
		Epochs:  2,
		Batch:   4,
		Rounds:  10,
		Filter:  cmfl.NewCMFLFilter(cmfl.Constant(0.4)),
		Omega:   cmfl.OmegaMeanRegularized,
		Seed:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilterName != "mocha+cmfl" {
		t.Fatalf("FilterName = %q", res.FilterName)
	}
}

func TestPublicCluster(t *testing.T) {
	all, err := cmfl.Digits(cmfl.DigitsConfig{Samples: 90, ImageSize: 10, Noise: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := cmfl.SortedShards(all, 3, 2, cmfl.NewStream(10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cmfl.RunCluster(cmfl.ClusterConfig{
		Model: func() *cmfl.Network {
			return cmfl.NewLogisticFlat(100, 10, cmfl.DeriveStream(11, "init", 0))
		},
		ClientData: shards,
		TestData:   all,
		Epochs:     1,
		Batch:      4,
		LR:         cmfl.Constant(0.1),
		Rounds:     3,
		Seed:       12,
		Limits:     cmfl.Limits{DialTimeout: time.Minute, RoundDeadline: time.Minute},
		Topology:   cmfl.Topology{Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Server.UplinkWireBytes <= 0 {
		t.Fatal("no wire bytes observed")
	}
}

func TestPublicStatsAndReport(t *testing.T) {
	cdf := cmfl.NewCDF([]float64{1, 2, 3})
	if cdf.At(2) != 2.0/3 {
		t.Fatalf("CDF.At = %v", cdf.At(2))
	}
	div, err := cmfl.NormalizedModelDivergence([][]float64{{2}}, []float64{1})
	if err != nil || div[0] != 1 {
		t.Fatalf("divergence = %v, %v", div, err)
	}
	v := &cmfl.AccuracyTrace{CumUploads: []int{10, 20}, Accuracy: []float64{0.5, 0.9}}
	a := &cmfl.AccuracyTrace{CumUploads: []int{5, 10}, Accuracy: []float64{0.5, 0.9}}
	s, ok := cmfl.Saving(v, a, 0.9)
	if !ok || s != 2 {
		t.Fatalf("Saving = %v, %v", s, ok)
	}
	table := cmfl.RenderTable([]string{"a"}, [][]string{{"b"}})
	if table == "" {
		t.Fatal("empty table")
	}
	plot := cmfl.RenderPlot("t", 20, 6, cmfl.PlotSeries{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	if plot == "" {
		t.Fatal("empty plot")
	}
}
