package cmfl_test

import (
	"fmt"

	"cmfl"
)

// The relevance measure (paper Eq. 9) is the fraction of coordinates whose
// signs agree between a local update and the global update.
func ExampleRelevance() {
	local := []float64{+0.3, -0.1, +2.0, -0.4}
	global := []float64{+1.0, -9.0, -0.5, -0.2}
	rel, err := cmfl.Relevance(local, global)
	if err != nil {
		panic(err)
	}
	fmt.Printf("relevance = %.2f\n", rel)
	// Output: relevance = 0.75
}

// Gaia's significance is the update's magnitude relative to the model —
// scale-sensitive and direction-blind, which is why the paper replaces it.
func ExampleSignificance() {
	update := []float64{0.3, 0.4}
	model := []float64{5, 0}
	sig, err := cmfl.Significance(update, model)
	if err != nil {
		panic(err)
	}
	fmt.Printf("significance = %.2f\n", sig)
	// Output: significance = 0.10
}

// A CMFL filter admits an update only when its relevance reaches the
// round's threshold; the first round (no feedback yet) always uploads.
func ExampleNewCMFLFilter() {
	filter := cmfl.NewCMFLFilter(cmfl.Constant(0.6))
	global := []float64{1, 1, 1, 1, 1}

	aligned := []float64{2, 1, 3, -1, 0.5} // 4/5 signs agree
	d, _ := filter.Check(aligned, nil, global, 2)
	fmt.Printf("aligned: upload=%v relevance=%.1f\n", d.Upload, d.Metric)

	opposed := []float64{-2, -1, -3, 1, -0.5} // 1/5 signs agree
	d, _ = filter.Check(opposed, nil, global, 2)
	fmt.Printf("opposed: upload=%v relevance=%.1f\n", d.Upload, d.Metric)
	// Output:
	// aligned: upload=true relevance=0.8
	// opposed: upload=false relevance=0.2
}

// The v0/√t schedule from the paper's convergence theorem decays the
// threshold so early rounds filter aggressively and late rounds admit all.
func ExampleInvSqrt() {
	s := cmfl.InvSqrt{V0: 0.8}
	fmt.Printf("t=1: %.2f  t=4: %.2f  t=16: %.2f\n", s.At(1), s.At(4), s.At(16))
	// Output: t=1: 0.80  t=4: 0.40  t=16: 0.20
}

// DeltaUpdate (paper Eq. 8) quantifies how much two sequential global
// updates differ — the smoothness that justifies using the previous update
// as feedback.
func ExampleDeltaUpdate() {
	prev := []float64{1, 0, 0}
	next := []float64{1, 0.1, 0}
	du, err := cmfl.DeltaUpdate(prev, next)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delta-update = %.1f\n", du)
	// Output: delta-update = 0.1
}

// A full federated run: non-IID shards, a linear model, and the CMFL gate.
func ExampleRunFederated() {
	all, _ := cmfl.Digits(cmfl.DigitsConfig{Samples: 200, ImageSize: 10, Noise: 0.2, Seed: 1})
	shards, _ := cmfl.SortedShards(all, 5, 2, cmfl.NewStream(2))
	res, err := cmfl.RunFederated(cmfl.FederatedConfig{
		Model: func() *cmfl.Network {
			return cmfl.NewLogisticFlat(100, 10, cmfl.DeriveStream(3, "init", 0))
		},
		ClientData: shards,
		TestData:   all,
		Epochs:     2,
		Batch:      4,
		LR:         cmfl.Constant(0.1),
		Filter:     cmfl.NewCMFLFilter(cmfl.Constant(0.5)),
		Rounds:     5,
		Seed:       4,
	})
	if err != nil {
		panic(err)
	}
	last := res.History[len(res.History)-1]
	fmt.Printf("rounds=%d uploads=%d of %d possible\n",
		len(res.History), last.CumUploads, 5*len(res.History))
	// Output: rounds=5 uploads=24 of 25 possible
}

// Secure aggregation composes with CMFL: masks cancel over the announced
// upload set, so the server recovers only the average.
func ExampleSecureAggregate() {
	updates := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	participants := []int{0, 1, 2}
	var masked [][]float64
	for c, u := range updates {
		m, err := cmfl.SecureMask(42, 1, c, participants, u)
		if err != nil {
			panic(err)
		}
		masked = append(masked, m)
	}
	sum, err := cmfl.SecureAggregate(masked)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sum = [%.0f %.0f]\n", sum[0], sum[1])
	// Output: sum = [9 12]
}
