// Async: the FedAsync-style extension — clients train at their own speeds
// (a 6x straggler spread), the server applies each update on arrival with
// staleness damping, and CMFL's relevance gate runs against an EMA of the
// recently applied updates. The adaptive filter self-tunes its threshold to
// a target upload fraction, so no manual sweep is needed.
package main

import (
	"fmt"
	"log"

	"cmfl"
)

func main() {
	const clients = 8
	all, err := cmfl.Digits(cmfl.DigitsConfig{Samples: clients * 30, ImageSize: 10, Noise: 0.2, Seed: 51})
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cmfl.SortedShards(all, clients, 2, cmfl.NewStream(52))
	if err != nil {
		log.Fatal(err)
	}
	test, err := cmfl.Digits(cmfl.DigitsConfig{Samples: 200, ImageSize: 10, Noise: 0.2, Seed: 53})
	if err != nil {
		log.Fatal(err)
	}

	filter := cmfl.NewAdaptiveFilter(0.5, 0.7) // target: 70% of completions upload
	res, err := cmfl.RunAsyncFederated(cmfl.AsyncConfig{
		Model: func() *cmfl.Network {
			return cmfl.NewLogisticFlat(100, 10, cmfl.DeriveStream(54, "init", 0))
		},
		ClientData:      shards,
		TestData:        test,
		Epochs:          2,
		Batch:           4,
		LR:              cmfl.Constant(0.1),
		Filter:          filter,
		StragglerFactor: 6,
		Updates:         clients * 25,
		EvalEvery:       clients * 5,
		Seed:            55,
	})
	if err != nil {
		log.Fatal(err)
	}

	last := res.Events[len(res.Events)-1]
	fmt.Printf("events=%d uploads=%d mean-staleness=%.2f\n",
		len(res.Events), last.CumUploads, res.MeanStaleness)
	fmt.Printf("final accuracy %.3f, final adaptive threshold %.3f\n",
		res.FinalAccuracy(), filter.Threshold())
	fmt.Println("\nper-client skips (slow clients skip stale, irrelevant updates):")
	for c, s := range res.SkipCounts {
		fmt.Printf("  client %d: %d skips\n", c, s)
	}
}
