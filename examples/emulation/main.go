// Emulation: a full master+slaves federated run over real localhost TCP
// connections (the shape of the paper's EC2 testbed), with the uplink
// footprint measured on the wire. Clients reconstruct the CMFL feedback
// from consecutive model broadcasts, so filtering costs no extra downlink.
package main

import (
	"fmt"
	"log"
	"time"

	"cmfl"
)

func main() {
	const clients = 6
	all, err := cmfl.Digits(cmfl.DigitsConfig{Samples: clients * 30, ImageSize: 10, Noise: 0.2, Seed: 41})
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cmfl.SortedShards(all, clients, 2, cmfl.NewStream(42))
	if err != nil {
		log.Fatal(err)
	}
	test, err := cmfl.Digits(cmfl.DigitsConfig{Samples: 200, ImageSize: 10, Noise: 0.2, Seed: 43})
	if err != nil {
		log.Fatal(err)
	}

	res, err := cmfl.RunCluster(cmfl.ClusterConfig{
		Model: func() *cmfl.Network {
			return cmfl.NewLogisticFlat(100, 10, cmfl.DeriveStream(44, "init", 0))
		},
		ClientData: shards,
		TestData:   test,
		Epochs:     3,
		Batch:      4,
		LR:         cmfl.Constant(0.15),
		Filter:     cmfl.NewCMFLFilter(cmfl.Constant(0.5)),
		Rounds:     25,
		Seed:       45,
		Limits:     cmfl.Limits{DialTimeout: time.Minute, RoundDeadline: 2 * time.Minute},
		Topology:   cmfl.Topology{Shards: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := res.Server
	last := srv.History[len(srv.History)-1]
	fmt.Printf("cluster of %d clients over TCP\n", clients)
	fmt.Printf("final accuracy:        %.3f\n", srv.FinalAccuracy())
	fmt.Printf("uploads / possible:    %d / %d\n", last.CumUploads, clients*len(srv.History))
	fmt.Printf("app-level uplink:      %d bytes\n", last.CumUplinkBytes)
	fmt.Printf("wire-level uplink:     %d bytes\n", srv.UplinkWireBytes)
	fmt.Printf("wire-level downlink:   %d bytes\n", srv.DownlinkWireBytes)
	for i, c := range res.Clients {
		fmt.Printf("client %d: %d uploads, %d skips, %d bytes sent\n", i, c.Uploads, c.Skips, c.SentWire)
	}
}
