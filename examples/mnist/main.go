// MNIST-style comparison: trains the digit CNN federation three times —
// vanilla FL, Gaia, CMFL — and prints accuracy against accumulated
// communication rounds plus the savings at two target accuracies, i.e. a
// miniature of the paper's Fig. 4a and Table I.
package main

import (
	"fmt"
	"log"

	"cmfl"
)

func main() {
	const (
		clients = 16
		rounds  = 50
	)
	all, err := cmfl.Digits(cmfl.DigitsConfig{Samples: clients * 30, ImageSize: 12, Noise: 0.15, MaxShift: 1, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cmfl.SortedShards(all, clients, 2, cmfl.NewStream(12))
	if err != nil {
		log.Fatal(err)
	}
	test, err := cmfl.Digits(cmfl.DigitsConfig{Samples: 300, ImageSize: 12, Noise: 0.15, MaxShift: 1, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	model := func() *cmfl.Network {
		cfg := cmfl.CNNConfig{ImageSize: 12, Kernel: 3, Conv1: 3, Conv2: 6, Hidden: 24, Classes: 10}
		return cmfl.NewCNN(cfg, cmfl.DeriveStream(14, "init", 0))
	}

	run := func(name string, filter cmfl.UploadFilter) *cmfl.AccuracyTrace {
		res, err := cmfl.RunFederated(cmfl.FederatedConfig{
			Model:      model,
			ClientData: shards,
			TestData:   test,
			Epochs:     4,
			Batch:      2,
			LR:         cmfl.InvSqrt{V0: 0.15},
			Filter:     filter,
			Rounds:     rounds,
			Seed:       15,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		tr := &cmfl.AccuracyTrace{}
		for _, h := range res.History {
			tr.CumUploads = append(tr.CumUploads, h.CumUploads)
			tr.Accuracy = append(tr.Accuracy, h.Accuracy)
		}
		last := res.History[len(res.History)-1]
		fmt.Printf("%-8s final accuracy %.3f after %d uploads\n", name, res.FinalAccuracy(), last.CumUploads)
		return tr
	}

	vanilla := run("vanilla", nil)
	gaiaTr := run("gaia", cmfl.NewGaiaFilter(cmfl.Constant(0.05)))
	cmflTr := run("cmfl", cmfl.NewCMFLFilter(cmfl.Constant(0.52)))

	fmt.Println()
	for _, target := range []float64{0.5, 0.7} {
		gs, gok := cmfl.Saving(vanilla, gaiaTr, target)
		cs, cok := cmfl.Saving(vanilla, cmflTr, target)
		fmt.Printf("saving at %.0f%% accuracy: gaia %s, cmfl %s\n",
			100*target, fmtSaving(gs, gok), fmtSaving(cs, cok))
	}
}

func fmtSaving(s float64, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", s)
}
