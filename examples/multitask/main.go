// Multi-task: MOCHA-style federated multi-task learning over the synthetic
// Human Activity Recognition federation, with and without CMFL, mirroring
// the paper's Fig. 5a — including the outliers that CMFL learns to mute.
package main

import (
	"fmt"
	"log"
	"sort"

	"cmfl"
)

func main() {
	har, err := cmfl.GenerateHAR(cmfl.HARConfig{
		Clients:       24,
		Outliers:      6,
		Features:      60,
		MinSamples:    15,
		MaxSamples:    50,
		ClassSep:      1.2,
		PersonalScale: 0.2,
		OutlierScale:  1.5,
		Seed:          31,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, filter cmfl.UploadFilter) *cmfl.MTLResult {
		res, err := cmfl.RunMTL(cmfl.MTLConfig{
			Clients: har.Clients,
			Lambda:  0.02,
			LR:      cmfl.Constant(0.005),
			Epochs:  1,
			Batch:   4,
			Rounds:  80,
			Filter:  filter,
			Seed:    32,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		last := res.History[len(res.History)-1]
		fmt.Printf("%-12s accuracy %.3f, uploads %d, bytes %d\n",
			res.FilterName, res.FinalAccuracy(), last.CumUploads, last.CumUplinkBytes)
		return res
	}

	run("mocha", nil)
	withCMFL := run("mocha+cmfl", cmfl.NewCMFLFilter(cmfl.Constant(0.5)))

	// Which clients did CMFL silence? Compare with the generator's ground
	// truth outliers.
	type kc struct{ client, skips int }
	ranked := make([]kc, len(withCMFL.SkipCounts))
	for k, s := range withCMFL.SkipCounts {
		ranked[k] = kc{k, s}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].skips > ranked[j].skips })
	truth := map[int]bool{}
	for _, k := range har.OutlierIdx {
		truth[k] = true
	}
	fmt.Println("\nmost-filtered clients (o = ground-truth outlier):")
	for _, r := range ranked[:6] {
		mark := " "
		if truth[r.client] {
			mark = "o"
		}
		fmt.Printf("  client %2d %s  %d skips\n", r.client, mark, r.skips)
	}
}
