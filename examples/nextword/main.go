// Next-word prediction: a word-level LSTM trained federatedly over a
// multi-role synthetic dialogue corpus — one client per speaking role, as in
// the paper's Shakespeare workload — with CMFL excluding irrelevant updates.
package main

import (
	"fmt"
	"log"

	"cmfl"
)

func main() {
	cfg := cmfl.DialogueConfig{
		Roles:           10,
		Vocab:           40,
		Window:          8,
		SamplesPerRole:  48,
		FavoredPerRole:  8,
		FavoredBoost:    6,
		BranchesPerWord: 3,
		Seed:            21,
	}
	corpus, err := cmfl.GenerateDialogue(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Hold out the tail of each role's stream as the global test set.
	shards := make([]*cmfl.Set, len(corpus.Clients))
	var testParts []*cmfl.Set
	for r, set := range corpus.Clients {
		n := set.Len()
		train := make([]int, 0, n-10)
		hold := make([]int, 0, 10)
		for i := 0; i < n; i++ {
			if i < n-10 {
				train = append(train, i)
			} else {
				hold = append(hold, i)
			}
		}
		shards[r] = set.Subset(train)
		testParts = append(testParts, set.Subset(hold))
	}
	test := cmfl.MergeSets(testParts)

	lstm := cmfl.LSTMConfig{Vocab: cfg.Vocab, Embed: 12, Hidden: 20, Layers: 1}
	res, err := cmfl.RunFederated(cmfl.FederatedConfig{
		Model: func() *cmfl.Network {
			return cmfl.NewNextWordLSTM(lstm, cmfl.DeriveStream(22, "init", 0))
		},
		ClientData: shards,
		TestData:   test,
		Epochs:     1,
		Batch:      4,
		LR:         cmfl.InvSqrt{V0: 1.5},
		Filter:     cmfl.NewCMFLFilter(cmfl.Constant(0.5)),
		Rounds:     120,
		EvalEvery:  10,
		Seed:       23,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  uploads  skipped  relevance  accuracy")
	for _, h := range res.History {
		if h.Round%20 != 0 {
			continue
		}
		fmt.Printf("%5d  %7d  %7d  %9.3f  %8.3f\n",
			h.Round, h.Uploaded, h.Skipped, h.MeanRelevance, h.Accuracy)
	}
	last := res.History[len(res.History)-1]
	fmt.Printf("\nfinal accuracy %.3f with %d of %d possible uploads\n",
		res.FinalAccuracy(), last.CumUploads, len(shards)*len(res.History))
}
