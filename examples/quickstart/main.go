// Quickstart: federated training of a linear digit classifier on ten
// non-IID clients, with CMFL gating the uploads. Shows the three-line core
// of the library: build shards, configure RunFederated, read the history.
package main

import (
	"fmt"
	"log"

	"cmfl"
)

func main() {
	// Synthetic digit data, label-sorted into 10 non-IID client shards.
	all, err := cmfl.Digits(cmfl.DigitsConfig{Samples: 600, ImageSize: 10, Noise: 0.2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	shards, err := cmfl.SortedShards(all, 10, 2, cmfl.NewStream(2))
	if err != nil {
		log.Fatal(err)
	}
	test, err := cmfl.Digits(cmfl.DigitsConfig{Samples: 200, ImageSize: 10, Noise: 0.2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	res, err := cmfl.RunFederated(cmfl.FederatedConfig{
		Model: func() *cmfl.Network {
			return cmfl.NewLogisticFlat(100, 10, cmfl.DeriveStream(4, "init", 0))
		},
		ClientData: shards,
		TestData:   test,
		Epochs:     3,
		Batch:      4,
		LR:         cmfl.Constant(0.15),
		Filter:     cmfl.NewCMFLFilter(cmfl.Constant(0.5)), // Eq. 9 relevance gate
		Rounds:     30,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}

	last := res.History[len(res.History)-1]
	fmt.Printf("filter: %s\n", res.FilterName)
	fmt.Printf("final accuracy:                   %.3f\n", res.FinalAccuracy())
	fmt.Printf("accumulated communication rounds: %d (of %d possible)\n",
		last.CumUploads, 10*len(res.History))
	fmt.Printf("uplink bytes:                     %d\n", last.CumUplinkBytes)
	for c, skips := range res.SkipCounts {
		if skips > 0 {
			fmt.Printf("client %2d skipped %2d irrelevant updates\n", c, skips)
		}
	}
}
