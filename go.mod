module cmfl

go 1.22
