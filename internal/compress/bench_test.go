package compress

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"cmfl/internal/xrand"
)

const benchDim = 100_000

func benchVec() []float64 {
	return xrand.New(1).NormVec(benchDim, 0, 1)
}

func benchPanel() []Codec {
	return []Codec{
		Identity{},
		Uniform8{},
		TopK{K: 1000},
		Sign1Bit{},
		Codebook{K: 16, Iters: 8, Seed: 1},
		NewChain(TopK{K: 1000}, Uniform8{}),
	}
}

// BenchmarkCodecEncode measures EncodeInto steady state with a reused
// destination buffer — allocs/op must be 0 for the hot-path codecs
// (Identity, Uniform8, TopK, Sign1Bit, Chain).
func BenchmarkCodecEncode(b *testing.B) {
	u := benchVec()
	for _, c := range benchPanel() {
		b.Run(c.Name(), func(b *testing.B) {
			var buf []byte
			var err error
			buf, err = c.EncodeInto(buf, u)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err = c.EncodeInto(buf, u)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCodecDecode measures DecodeInto steady state with a reused
// destination vector.
func BenchmarkCodecDecode(b *testing.B) {
	u := benchVec()
	for _, c := range benchPanel() {
		b.Run(c.Name(), func(b *testing.B) {
			payload, err := Encode(c, u)
			if err != nil {
				b.Fatal(err)
			}
			var dst []float64
			dst, err = c.DecodeInto(dst, payload, benchDim)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, err = c.DecodeInto(dst, payload, benchDim)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fullSortSelect is the pre-quickselect TopK selection: sort every index by
// |value| descending, keep the first k. Retained here as the baseline for
// BenchmarkTopKSelect.
func fullSortSelect(u []float64, k int) []uint32 {
	idx := make([]uint32, len(u))
	for i := range idx {
		idx[i] = uint32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(u[idx[a]]) > math.Abs(u[idx[b]])
	})
	idx = idx[:k]
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx
}

// BenchmarkTopKSelect pits quickselect against the old full sort at the
// acceptance point (100k dim, K=1000) and a few other K values.
func BenchmarkTopKSelect(b *testing.B) {
	u := benchVec()
	for _, k := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("quickselect/k=%d", k), func(b *testing.B) {
			c := TopK{K: k}
			var idx []uint32
			var vals []float64
			var err error
			idx, vals, err = c.SelectInto(idx, vals, u)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, vals, err = c.SelectInto(idx, vals, u)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fullsort/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = fullSortSelect(u, k)
			}
		})
	}
}

// TestTopKSelectMatchesFullSortThreshold keeps the benchmark baseline honest:
// both selectors must keep values at or above the same magnitude threshold.
func TestTopKSelectMatchesFullSortThreshold(t *testing.T) {
	u := xrand.New(4).NormVec(5000, 0, 1)
	k := 250
	want := fullSortSelect(u, k)
	idx, _, err := (TopK{K: k}).SelectInto(nil, nil, u)
	if err != nil {
		t.Fatal(err)
	}
	threshold := math.Inf(1)
	for _, i := range want {
		threshold = math.Min(threshold, math.Abs(u[i]))
	}
	for _, i := range idx {
		if math.Abs(u[i]) < threshold {
			t.Fatalf("quickselect kept |u[%d]|=%v below full-sort threshold %v", i, math.Abs(u[i]), threshold)
		}
	}
}
