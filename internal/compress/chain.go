package compress

import (
	"errors"
	"fmt"
)

// Chain composes a sparsifying Selector with a value codec: the Selector
// picks which coordinates travel, the value codec compresses just the kept
// values (e.g. top-k → quantize8 sends k indices plus k bytes instead of k
// float64s). This is the structured-then-sketched composition from the
// related work, and it stacks with CMFL gating: gate → select → quantise.
//
// Payload: [u32 nKept][nKept × u32 ascending index][value-codec payload of
// the kept values].
type Chain struct {
	Selector Selector
	Values   Codec
}

// NewChain builds the common two-stage chain.
func NewChain(sel Selector, values Codec) Chain { return Chain{Selector: sel, Values: values} }

func (c Chain) validate() error {
	if c.Selector == nil || c.Values == nil {
		return errors.New("compress: Chain requires both a Selector and a value codec")
	}
	if _, nested := c.Values.(Chain); nested {
		return errors.New("compress: Chain value codec cannot itself be a Chain")
	}
	return nil
}

// Name implements Codec.
func (c Chain) Name() string {
	if c.Selector == nil || c.Values == nil {
		return "chain(invalid)"
	}
	return c.Selector.Name() + "+" + c.Values.Name()
}

// EncodeInto implements Codec. The selection and kept-value scratch are
// pooled; the interface method calls on Selector/Values are dynamic
// dispatch, so each concrete codec carries its own hot-path annotation.
//
//cmfl:hotpath
func (c Chain) EncodeInto(dst []byte, update []float64) ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	ip := u32Scratch.Get().(*[]uint32)
	vp := f64Scratch.Get().(*[]float64)
	bp := byteScratch.Get().(*[]byte)
	idx, vals, err := c.Selector.SelectInto(*ip, *vp, update)
	*ip, *vp = idx, vals
	if err == nil {
		var payload []byte
		payload, err = c.Values.EncodeInto(*bp, vals)
		if err == nil {
			*bp = payload
			dst = growBytes(dst, 4+len(idx)*4+len(payload))
			putU32(dst[:4], uint32(len(idx)))
			for j, i := range idx {
				putU32(dst[4+j*4:4+(j+1)*4], i)
			}
			copy(dst[4+len(idx)*4:], payload)
		}
	}
	u32Scratch.Put(ip)
	f64Scratch.Put(vp)
	byteScratch.Put(bp)
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// DecodeInto implements Codec.
//
//cmfl:hotpath
func (c Chain) DecodeInto(dst []float64, payload []byte, dim int) ([]float64, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if dim < 0 || len(payload) < 4 {
		return nil, fmt.Errorf("%w: chain payload %d bytes", ErrCorruptPayload, len(payload))
	}
	nKept := int(getU32(payload[:4]))
	if nKept > dim || len(payload) < 4+nKept*4 {
		return nil, fmt.Errorf("%w: chain keeps %d of dim %d in %d bytes", ErrCorruptPayload, nKept, dim, len(payload))
	}
	idxBytes := payload[4 : 4+nKept*4]
	vp := f64Scratch.Get().(*[]float64)
	vals, err := c.Values.DecodeInto(*vp, payload[4+nKept*4:], nKept)
	if err == nil {
		*vp = vals
		dst = growFloats(dst, dim)
		for i := range dst {
			dst[i] = 0
		}
		prev := -1
		for j := 0; j < nKept; j++ {
			i := int(getU32(idxBytes[j*4 : (j+1)*4]))
			if i <= prev || i >= dim {
				err = fmt.Errorf("%w: chain index %d (prev %d, dim %d)", ErrCorruptPayload, i, prev, dim)
				break
			}
			dst[i] = vals[j]
			prev = i
		}
	}
	f64Scratch.Put(vp)
	if err != nil {
		return nil, err
	}
	return dst, nil
}
