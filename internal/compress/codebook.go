package compress

import (
	"fmt"
	"math"

	"cmfl/internal/xrand"
)

// Codebook is the clustered-update codec of Cui et al. (arXiv:2105.04153):
// a per-update 1-D k-means over the coordinate values yields K centroids
// (the codebook), and each coordinate travels as a one-byte centroid index —
// 8 bits per coordinate plus a K×float64 codebook, with the codebook
// adapting to the update's actual value distribution where Uniform8's grid
// cannot.
//
// Initialisation seeds the centroids on an equally-spaced quantile grid and
// breaks exact ties with xrand.Derive(Seed, "codec-codebook", K), so a
// given (update, config) always produces bit-identical payloads — the
// determinism the chaos suite asserts end-to-end. Encoding is O(n·K·Iters),
// deliberately not //cmfl:hotpath: it trades encode CPU for wire bytes and
// is costed in benchmarks rather than pinned allocation-free.
//
// Payload: [u8 K][K × f64 ascending centroids][dim × u8 index].
type Codebook struct {
	// K is the codebook size, in [2, 255]; 0 means DefaultCodebookK.
	K int
	// Iters is the number of Lloyd refinement iterations; 0 means
	// DefaultCodebookIters.
	Iters int
	// Seed feeds the deterministic tie-break stream.
	Seed int64
}

// DefaultCodebookK is the codebook size when Codebook.K is 0.
const DefaultCodebookK = 16

// DefaultCodebookIters is the Lloyd iteration count when Codebook.Iters is 0.
const DefaultCodebookIters = 8

func (c Codebook) k() int {
	if c.K == 0 {
		return DefaultCodebookK
	}
	return c.K
}

func (c Codebook) iters() int {
	if c.Iters == 0 {
		return DefaultCodebookIters
	}
	return c.Iters
}

// Name implements Codec.
func (c Codebook) Name() string { return fmt.Sprintf("codebook%d", c.k()) }

func (c Codebook) validate() error {
	if k := c.k(); k < 2 || k > 255 {
		return fmt.Errorf("compress: Codebook K %d outside [2, 255]", k)
	}
	if c.iters() < 0 {
		return fmt.Errorf("compress: Codebook Iters %d negative", c.Iters)
	}
	return nil
}

// EncodeInto implements Codec. Non-finite coordinates are rejected: one
// NaN/Inf would absorb a centroid and distort every assignment.
func (c Codebook) EncodeInto(dst []byte, update []float64) ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range update {
		if !isFinite(v) {
			return nil, fmt.Errorf("%w: codebook coordinate %d = %v", ErrNonFinite, i, v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	k := c.k()
	if len(update) == 0 {
		lo, hi = 0, 0
	}

	cp := f64Scratch.Get().(*[]float64)
	cents := growFloats(*cp, k)
	// Equally spaced seeds over the value range, nudged by a derived stream
	// when the range collapses so centroids stay distinct and assignments
	// deterministic.
	if hi > lo {
		for j := range cents {
			cents[j] = lo + (hi-lo)*float64(j)/float64(k-1)
		}
	} else {
		rng := xrand.Derive(c.Seed, "codec-codebook", k)
		for j := range cents {
			cents[j] = lo + 1e-12*float64(j)*(1+rng.Float64())
		}
	}

	sp := f64Scratch.Get().(*[]float64)
	np := f64Scratch.Get().(*[]float64)
	sums := growFloats(*sp, k)
	counts := growFloats(*np, k)
	for it := 0; it < c.iters(); it++ {
		for j := range sums {
			sums[j], counts[j] = 0, 0
		}
		for _, v := range update {
			j := nearestCentroid(cents, v)
			sums[j] += v
			counts[j]++
		}
		for j := range cents {
			if counts[j] > 0 {
				cents[j] = sums[j] / counts[j]
			}
		}
		// Keep the codebook sorted: nearestCentroid binary-searches, and a
		// sorted codebook makes the payload canonical.
		sortF64(cents)
	}

	dst = growBytes(dst, 1+k*8+len(update))
	dst[0] = byte(k)
	for j, cv := range cents {
		putU64(dst[1+j*8:1+(j+1)*8], math.Float64bits(cv))
	}
	for i, v := range update {
		dst[1+k*8+i] = byte(nearestCentroid(cents, v))
	}

	*cp, *sp, *np = cents, sums, counts
	f64Scratch.Put(cp)
	f64Scratch.Put(sp)
	f64Scratch.Put(np)
	return dst, nil
}

// DecodeInto implements Codec.
//
//cmfl:hotpath
func (c Codebook) DecodeInto(dst []float64, payload []byte, dim int) ([]float64, error) {
	if dim < 0 || len(payload) < 1 {
		return nil, fmt.Errorf("%w: codebook payload %d bytes", ErrCorruptPayload, len(payload))
	}
	k := int(payload[0])
	if k < 2 || len(payload) != 1+k*8+dim {
		return nil, fmt.Errorf("%w: codebook payload %d bytes for dim %d k %d", ErrCorruptPayload, len(payload), dim, k)
	}
	cents := payload[1 : 1+k*8]
	idx := payload[1+k*8:]
	dst = growFloats(dst, dim)
	for i := range dst {
		j := int(idx[i])
		if j >= k {
			return nil, fmt.Errorf("%w: codebook index %d >= k %d", ErrCorruptPayload, j, k)
		}
		dst[i] = math.Float64frombits(getU64(cents[j*8 : (j+1)*8]))
	}
	return dst, nil
}

// nearestCentroid returns the index of the centroid closest to v in the
// ascending-sorted codebook, lower index winning ties.
func nearestCentroid(cents []float64, v float64) int {
	lo, hi := 0, len(cents)
	for lo < hi {
		mid := (lo + hi) / 2
		if cents[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first centroid >= v; the nearest is lo or lo-1.
	if lo == len(cents) {
		return lo - 1
	}
	if lo == 0 {
		return 0
	}
	if v-cents[lo-1] <= cents[lo]-v {
		return lo - 1
	}
	return lo
}

// sortF64 is an in-place, allocation-free heapsort for small codebooks.
func sortF64(a []float64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownF64(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownF64(a, 0, end)
	}
}

func siftDownF64(a []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
