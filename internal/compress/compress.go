// Package compress implements the update-compression baselines the paper
// positions CMFL against (Sec. II-C "structured updates and sketched
// updates", Konečný et al.): lossy encodings that reduce the bits per
// upload instead of the number of uploads.
//
// Each Codec turns an update vector into a compact byte payload and back.
// The federated engine can apply a Codec to every uploaded update, so the
// footprint-versus-accuracy trade-off of bit-reduction can be compared
// directly against CMFL's upload-reduction on the same workload (the
// BenchmarkAblationCompression bench does exactly that). As the paper
// notes, these schemes lose information on every upload and carry no
// convergence guarantee — the behaviour the benchmarks exhibit.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Codec is a lossy update encoder. Implementations must be safe for
// concurrent use.
type Codec interface {
	Name() string
	// Encode compresses the update into a payload.
	Encode(update []float64) ([]byte, error)
	// Decode reconstructs a (lossy) update of length dim from a payload.
	Decode(payload []byte, dim int) ([]float64, error)
}

// ErrCorruptPayload reports an undecodable payload.
var ErrCorruptPayload = errors.New("compress: corrupt payload")

// Uniform8 quantises each coordinate to 8 bits over the update's own
// [min, max] range (a "sketched update" in the paper's terminology).
// Payload: min, max as float64 followed by one byte per coordinate —
// an 8x reduction over float64.
type Uniform8 struct{}

// Name implements Codec.
func (Uniform8) Name() string { return "quantize8" }

// Encode implements Codec.
func (Uniform8) Encode(update []float64) ([]byte, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range update {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if len(update) == 0 {
		lo, hi = 0, 0
	}
	out := make([]byte, 16+len(update))
	binary.BigEndian.PutUint64(out[:8], math.Float64bits(lo))
	binary.BigEndian.PutUint64(out[8:16], math.Float64bits(hi))
	scale := hi - lo
	for i, v := range update {
		q := 0.0
		if scale > 0 {
			q = (v - lo) / scale * 255
		}
		out[16+i] = byte(math.Round(q))
	}
	return out, nil
}

// Decode implements Codec.
func (Uniform8) Decode(payload []byte, dim int) ([]float64, error) {
	if len(payload) != 16+dim {
		return nil, fmt.Errorf("%w: quantize8 payload %d bytes for dim %d", ErrCorruptPayload, len(payload), dim)
	}
	lo := math.Float64frombits(binary.BigEndian.Uint64(payload[:8]))
	hi := math.Float64frombits(binary.BigEndian.Uint64(payload[8:16]))
	scale := hi - lo
	out := make([]float64, dim)
	for i := range out {
		out[i] = lo + float64(payload[16+i])/255*scale
	}
	return out, nil
}

// TopK keeps only the K largest-magnitude coordinates (a "structured
// update"). Payload: K (index uint32, value float64) pairs; all other
// coordinates decode to zero.
type TopK struct {
	K int
}

// Name implements Codec.
func (c TopK) Name() string { return fmt.Sprintf("top%d", c.K) }

// Encode implements Codec.
func (c TopK) Encode(update []float64) ([]byte, error) {
	if c.K <= 0 {
		return nil, errors.New("compress: TopK requires K > 0")
	}
	k := c.K
	if k > len(update) {
		k = len(update)
	}
	idx := make([]int, len(update))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(update[idx[a]]) > math.Abs(update[idx[b]])
	})
	kept := idx[:k]
	sort.Ints(kept)
	out := make([]byte, 0, k*12)
	var buf [12]byte
	for _, i := range kept {
		binary.BigEndian.PutUint32(buf[:4], uint32(i))
		binary.BigEndian.PutUint64(buf[4:12], math.Float64bits(update[i]))
		out = append(out, buf[:]...)
	}
	return out, nil
}

// Decode implements Codec.
func (c TopK) Decode(payload []byte, dim int) ([]float64, error) {
	if len(payload)%12 != 0 {
		return nil, fmt.Errorf("%w: topk payload %d bytes", ErrCorruptPayload, len(payload))
	}
	out := make([]float64, dim)
	for off := 0; off < len(payload); off += 12 {
		i := int(binary.BigEndian.Uint32(payload[off : off+4]))
		if i < 0 || i >= dim {
			return nil, fmt.Errorf("%w: topk index %d outside dim %d", ErrCorruptPayload, i, dim)
		}
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(payload[off+4 : off+12]))
	}
	return out, nil
}

// RandomMask transmits a pseudo-random Fraction of coordinates chosen by a
// seed shared between encoder and decoder, so only the seed and the kept
// values travel (the random-mask structured update). The mask depends on
// (Seed, dim) and a per-call counter is unnecessary because federated
// updates are idempotent per round.
type RandomMask struct {
	Fraction float64
	Seed     uint64
}

// Name implements Codec.
func (c RandomMask) Name() string { return fmt.Sprintf("mask%.0f%%", c.Fraction*100) }

// maskKeep reproduces the deterministic keep-decision for coordinate i.
func (c RandomMask) maskKeep(i, dim int) bool {
	// SplitMix64 over (seed, i): cheap, stateless, identical on both ends.
	z := c.Seed + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53) < c.Fraction
}

// Encode implements Codec.
func (c RandomMask) Encode(update []float64) ([]byte, error) {
	if c.Fraction <= 0 || c.Fraction > 1 {
		return nil, errors.New("compress: RandomMask fraction must be in (0, 1]")
	}
	out := make([]byte, 0, int(float64(len(update))*c.Fraction)*8+8)
	var buf [8]byte
	for i, v := range update {
		if c.maskKeep(i, len(update)) {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			out = append(out, buf[:]...)
		}
	}
	return out, nil
}

// Decode implements Codec.
func (c RandomMask) Decode(payload []byte, dim int) ([]float64, error) {
	out := make([]float64, dim)
	off := 0
	for i := 0; i < dim; i++ {
		if !c.maskKeep(i, dim) {
			continue
		}
		if off+8 > len(payload) {
			return nil, fmt.Errorf("%w: mask payload too short", ErrCorruptPayload)
		}
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(payload[off : off+8]))
		off += 8
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: mask payload has %d trailing bytes", ErrCorruptPayload, len(payload)-off)
	}
	return out, nil
}

// Identity is the no-compression control (full float64 payload).
type Identity struct{}

// Name implements Codec.
func (Identity) Name() string { return "identity" }

// Encode implements Codec.
func (Identity) Encode(update []float64) ([]byte, error) {
	out := make([]byte, len(update)*8)
	for i, v := range update {
		binary.BigEndian.PutUint64(out[i*8:(i+1)*8], math.Float64bits(v))
	}
	return out, nil
}

// Decode implements Codec.
func (Identity) Decode(payload []byte, dim int) ([]float64, error) {
	if len(payload) != dim*8 {
		return nil, fmt.Errorf("%w: identity payload %d bytes for dim %d", ErrCorruptPayload, len(payload), dim)
	}
	out := make([]float64, dim)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(payload[i*8 : (i+1)*8]))
	}
	return out, nil
}
