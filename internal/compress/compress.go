// Package compress implements the update-compression side of the paper's
// related work (Sec. II-C "structured updates and sketched updates",
// Konečný et al.; clustered-codebook updates, Cui et al.): lossy encodings
// that reduce the bits per upload instead of the number of uploads. CMFL's
// relevance gate decides *whether* an update travels; a Codec decides *how
// many bits* it costs. The two compose — the engines apply a Codec only to
// updates that already passed the gate.
//
// Every Codec exposes a scratch-reusing pair, EncodeInto and DecodeInto:
// the caller passes its previous output back in as dst and the codec reuses
// that buffer's capacity, so the steady-state encode path performs zero
// heap allocations per call (the contract the //cmfl:hotpath annotations
// pin and cmfl-vet's transitive hotpathalloc analyzer enforces). Codecs
// hold no mutable state — all working memory is caller-provided or pooled —
// which is what makes them safe for concurrent use.
//
// Codecs compose through Chain (a sparsifying Selector followed by a value
// codec, e.g. top-k → 8-bit quantisation) and travel self-described over
// the emulation's wire format v2 via the Spec encoding in spec.go.
package compress

import (
	"errors"
	"fmt"
	"math"
)

// Codec turns an update vector into a compact byte payload and back.
//
// Implementations must be safe for concurrent use: codecs are plain values
// with immutable configuration, and all scratch is caller-provided (dst) or
// internally pooled.
type Codec interface {
	Name() string
	// EncodeInto compresses update into dst, reusing dst's capacity when it
	// suffices (the returned slice then aliases dst; its previous contents
	// are overwritten). Callers that feed each call's result back in as the
	// next call's dst reach a zero-allocation steady state.
	EncodeInto(dst []byte, update []float64) ([]byte, error)
	// DecodeInto reconstructs a (lossy) update of length dim from payload
	// into dst, with the same capacity-reuse contract as EncodeInto.
	DecodeInto(dst []float64, payload []byte, dim int) ([]float64, error)
}

// Selector is a Codec that transmits a subset of coordinates (top-k, random
// mask). A Selector can serve as the sparsifying first stage of a Chain,
// which then hands only the kept values to the chain's value codec.
type Selector interface {
	Codec
	// SelectInto writes the kept coordinates into idx (ascending, unique)
	// and their values into vals, reusing both buffers' capacity. The two
	// returned slices have equal length.
	SelectInto(idx []uint32, vals []float64, update []float64) ([]uint32, []float64, error)
}

// Encode is the allocating convenience form of EncodeInto.
func Encode(c Codec, update []float64) ([]byte, error) { return c.EncodeInto(nil, update) }

// Decode is the allocating convenience form of DecodeInto.
func Decode(c Codec, payload []byte, dim int) ([]float64, error) {
	return c.DecodeInto(nil, payload, dim)
}

// ErrCorruptPayload reports an undecodable payload.
var ErrCorruptPayload = errors.New("compress: corrupt payload")

// ErrNonFinite reports a NaN or ±Inf coordinate in an update handed to a
// codec whose encoding would smear the damage across every coordinate
// (range quantisation, chunk scales, codebook fitting). Pass-through codecs
// (Identity, TopK, RandomMask) transmit non-finite values verbatim instead:
// there the damage stays on the coordinate that carried it in.
var ErrNonFinite = errors.New("compress: non-finite coordinate in update")

// Uniform8 quantises each coordinate to 8 bits over the update's own
// [min, max] range (a "sketched update" in the paper's terminology).
// Payload: min, max as float64 followed by one byte per coordinate —
// an 8x reduction over float64.
type Uniform8 struct{}

// Name implements Codec.
func (Uniform8) Name() string { return "quantize8" }

// EncodeInto implements Codec. A non-finite coordinate is rejected with
// ErrNonFinite: it would silently poison lo/hi and thereby every decoded
// value, not just its own.
//
//cmfl:hotpath
func (Uniform8) EncodeInto(dst []byte, update []float64) ([]byte, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range update {
		if !isFinite(v) {
			return nil, fmt.Errorf("%w: quantize8 coordinate %d = %v", ErrNonFinite, i, v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if len(update) == 0 {
		lo, hi = 0, 0
	}
	dst = growBytes(dst, 16+len(update))
	putU64(dst[:8], math.Float64bits(lo))
	putU64(dst[8:16], math.Float64bits(hi))
	scale := hi - lo
	for i, v := range update {
		q := 0.0
		if scale > 0 {
			q = (v - lo) / scale * 255
		}
		dst[16+i] = byte(math.Round(q))
	}
	return dst, nil
}

// DecodeInto implements Codec.
//
//cmfl:hotpath
func (Uniform8) DecodeInto(dst []float64, payload []byte, dim int) ([]float64, error) {
	if dim < 0 || len(payload) != 16+dim {
		return nil, fmt.Errorf("%w: quantize8 payload %d bytes for dim %d", ErrCorruptPayload, len(payload), dim)
	}
	lo := math.Float64frombits(getU64(payload[:8]))
	hi := math.Float64frombits(getU64(payload[8:16]))
	scale := hi - lo
	dst = growFloats(dst, dim)
	for i := range dst {
		dst[i] = lo + float64(payload[16+i])/255*scale
	}
	return dst, nil
}

// TopK keeps only the K largest-magnitude coordinates (a "structured
// update"). Payload: K (index uint32, value float64) pairs in ascending
// index order; all other coordinates decode to zero.
//
// Selection runs in O(n) via an in-place quickselect over a pooled index
// scratch (plus an O(k log k) heapsort of the kept indices) — the previous
// implementation allocated and fully sorted an n-entry index slice per
// call, which dominated encode time whenever K ≪ n.
type TopK struct {
	K int
}

// Name implements Codec.
func (c TopK) Name() string { return fmt.Sprintf("top%d", c.K) }

// EncodeInto implements Codec.
//
//cmfl:hotpath
func (c TopK) EncodeInto(dst []byte, update []float64) ([]byte, error) {
	ip := u32Scratch.Get().(*[]uint32)
	idx, err := c.selectIndices(*ip, update)
	*ip = idx
	if err != nil {
		u32Scratch.Put(ip)
		return nil, err
	}
	dst = growBytes(dst, len(idx)*12)
	off := 0
	for _, i := range idx {
		putU32(dst[off:off+4], i)
		putU64(dst[off+4:off+12], math.Float64bits(update[i]))
		off += 12
	}
	u32Scratch.Put(ip)
	return dst, nil
}

// selectIndices fills idx with the K largest-magnitude coordinate indices
// of update, ascending, reusing idx's capacity.
func (c TopK) selectIndices(idx []uint32, update []float64) ([]uint32, error) {
	if c.K <= 0 {
		return idx, errors.New("compress: TopK requires K > 0")
	}
	k := c.K
	if k > len(update) {
		k = len(update)
	}
	idx = growU32(idx, len(update))
	for i := range idx {
		idx[i] = uint32(i)
	}
	quickselectAbsDesc(idx, update, k)
	idx = idx[:k]
	sortU32(idx)
	return idx, nil
}

// SelectInto implements Selector.
func (c TopK) SelectInto(idx []uint32, vals []float64, update []float64) ([]uint32, []float64, error) {
	idx, err := c.selectIndices(idx, update)
	if err != nil {
		return idx, vals, err
	}
	vals = growFloats(vals, len(idx))
	for j, i := range idx {
		vals[j] = update[i]
	}
	return idx, vals, nil
}

// DecodeInto implements Codec.
//
//cmfl:hotpath
func (c TopK) DecodeInto(dst []float64, payload []byte, dim int) ([]float64, error) {
	if dim < 0 || len(payload)%12 != 0 || len(payload)/12 > dim {
		return nil, fmt.Errorf("%w: topk payload %d bytes for dim %d", ErrCorruptPayload, len(payload), dim)
	}
	dst = growFloats(dst, dim)
	for i := range dst {
		dst[i] = 0
	}
	for off := 0; off < len(payload); off += 12 {
		i := int(getU32(payload[off : off+4]))
		if i < 0 || i >= dim {
			return nil, fmt.Errorf("%w: topk index %d outside dim %d", ErrCorruptPayload, i, dim)
		}
		dst[i] = math.Float64frombits(getU64(payload[off+4 : off+12]))
	}
	return dst, nil
}

// RandomMask transmits a pseudo-random Fraction of coordinates chosen by a
// seed shared between encoder and decoder, so only the kept values travel
// (the random-mask structured update). The mask depends on (Seed, dim) and
// a per-call counter is unnecessary because federated updates are
// idempotent per round.
type RandomMask struct {
	Fraction float64
	Seed     uint64
}

// Name implements Codec.
func (c RandomMask) Name() string { return fmt.Sprintf("mask%.0f%%", c.Fraction*100) }

// maskKeep reproduces the deterministic keep-decision for coordinate i.
func (c RandomMask) maskKeep(i, dim int) bool {
	// SplitMix64 over (seed, i): cheap, stateless, identical on both ends.
	z := c.Seed + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53) < c.Fraction
}

func (c RandomMask) validate() error {
	if c.Fraction <= 0 || c.Fraction > 1 {
		return errors.New("compress: RandomMask fraction must be in (0, 1]")
	}
	return nil
}

// EncodeInto implements Codec.
//
//cmfl:hotpath
func (c RandomMask) EncodeInto(dst []byte, update []float64) ([]byte, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	kept := 0
	for i := range update {
		if c.maskKeep(i, len(update)) {
			kept++
		}
	}
	dst = growBytes(dst, kept*8)
	off := 0
	for i, v := range update {
		if c.maskKeep(i, len(update)) {
			putU64(dst[off:off+8], math.Float64bits(v))
			off += 8
		}
	}
	return dst, nil
}

// SelectInto implements Selector.
func (c RandomMask) SelectInto(idx []uint32, vals []float64, update []float64) ([]uint32, []float64, error) {
	if err := c.validate(); err != nil {
		return idx, vals, err
	}
	kept := 0
	for i := range update {
		if c.maskKeep(i, len(update)) {
			kept++
		}
	}
	idx = growU32(idx, kept)
	vals = growFloats(vals, kept)
	j := 0
	for i, v := range update {
		if c.maskKeep(i, len(update)) {
			idx[j] = uint32(i)
			vals[j] = v
			j++
		}
	}
	return idx, vals, nil
}

// DecodeInto implements Codec.
//
//cmfl:hotpath
func (c RandomMask) DecodeInto(dst []float64, payload []byte, dim int) ([]float64, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if dim < 0 {
		return nil, fmt.Errorf("%w: mask negative dim", ErrCorruptPayload)
	}
	dst = growFloats(dst, dim)
	off := 0
	for i := 0; i < dim; i++ {
		if !c.maskKeep(i, dim) {
			dst[i] = 0
			continue
		}
		if off+8 > len(payload) {
			return nil, fmt.Errorf("%w: mask payload too short", ErrCorruptPayload)
		}
		dst[i] = math.Float64frombits(getU64(payload[off : off+8]))
		off += 8
	}
	if off != len(payload) {
		return nil, fmt.Errorf("%w: mask payload has %d trailing bytes", ErrCorruptPayload, len(payload)-off)
	}
	return dst, nil
}

// Identity is the no-compression control (full float64 payload).
type Identity struct{}

// Name implements Codec.
func (Identity) Name() string { return "identity" }

// EncodeInto implements Codec.
//
//cmfl:hotpath
func (Identity) EncodeInto(dst []byte, update []float64) ([]byte, error) {
	dst = growBytes(dst, len(update)*8)
	for i, v := range update {
		putU64(dst[i*8:(i+1)*8], math.Float64bits(v))
	}
	return dst, nil
}

// DecodeInto implements Codec.
//
//cmfl:hotpath
func (Identity) DecodeInto(dst []float64, payload []byte, dim int) ([]float64, error) {
	if dim < 0 || len(payload) != dim*8 {
		return nil, fmt.Errorf("%w: identity payload %d bytes for dim %d", ErrCorruptPayload, len(payload), dim)
	}
	dst = growFloats(dst, dim)
	for i := range dst {
		dst[i] = math.Float64frombits(getU64(payload[i*8 : (i+1)*8]))
	}
	return dst, nil
}
