package compress

import (
	"math"
	"testing"
	"testing/quick"

	"cmfl/internal/xrand"
)

func TestIdentityRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		u := rng.NormVec(1+rng.Intn(40), 0, 3)
		payload, err := Identity{}.Encode(u)
		if err != nil {
			return false
		}
		got, err := Identity{}.Decode(payload, len(u))
		if err != nil {
			return false
		}
		for i := range u {
			if got[i] != u[i] {
				return false
			}
		}
		return len(payload) == len(u)*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUniform8BoundedError(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		u := rng.NormVec(2+rng.Intn(40), 0, 2)
		payload, err := Uniform8{}.Encode(u)
		if err != nil {
			return false
		}
		got, err := Uniform8{}.Decode(payload, len(u))
		if err != nil {
			return false
		}
		lo, hi := u[0], u[0]
		for _, v := range u {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		step := (hi - lo) / 255
		for i := range u {
			if math.Abs(got[i]-u[i]) > step/2+1e-12 {
				return false
			}
		}
		// 8x compression plus the 16-byte range header.
		return len(payload) == 16+len(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUniform8ConstantVector(t *testing.T) {
	u := []float64{2.5, 2.5, 2.5}
	payload, err := Uniform8{}.Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Uniform8{}.Decode(payload, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 2.5 {
			t.Fatalf("constant vector round trip [%d] = %v", i, v)
		}
	}
}

func TestTopKKeepsLargest(t *testing.T) {
	u := []float64{0.1, -5, 0.2, 3, -0.05}
	c := TopK{K: 2}
	payload, err := c.Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(payload, len(u))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, -5, 0, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK decode = %v, want %v", got, want)
		}
	}
	if len(payload) != 2*12 {
		t.Fatalf("TopK payload = %d bytes, want 24", len(payload))
	}
}

func TestTopKLargerThanDim(t *testing.T) {
	u := []float64{1, 2}
	got, err := TopK{K: 10}.Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := TopK{K: 10}.Decode(got, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0] != 1 || dec[1] != 2 {
		t.Fatalf("TopK over-K decode = %v", dec)
	}
}

func TestTopKInvalid(t *testing.T) {
	if _, err := (TopK{}).Encode([]float64{1}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := (TopK{K: 1}).Decode([]byte{1, 2, 3}, 4); err == nil {
		t.Fatal("expected error for ragged payload")
	}
	bad, _ := TopK{K: 1}.Encode([]float64{9})
	if _, err := (TopK{K: 1}).Decode(bad, 0); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
}

func TestRandomMaskRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		dim := 10 + rng.Intn(100)
		u := rng.NormVec(dim, 0, 1)
		c := RandomMask{Fraction: 0.25, Seed: uint64(seed)}
		payload, err := c.Encode(u)
		if err != nil {
			return false
		}
		got, err := c.Decode(payload, dim)
		if err != nil {
			return false
		}
		for i := range u {
			if got[i] != 0 && got[i] != u[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMaskFractionApprox(t *testing.T) {
	rng := xrand.New(9)
	u := rng.NormVec(10000, 0, 1)
	c := RandomMask{Fraction: 0.25, Seed: 7}
	payload, err := c.Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(payload)/8) / 10000
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("mask kept %.3f of coords, want ~0.25", frac)
	}
}

func TestRandomMaskInvalid(t *testing.T) {
	if _, err := (RandomMask{Fraction: 0}).Encode([]float64{1}); err == nil {
		t.Fatal("expected error for zero fraction")
	}
	c := RandomMask{Fraction: 0.5, Seed: 1}
	if _, err := c.Decode([]byte{1}, 10); err == nil {
		t.Fatal("expected error for short payload")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := (Identity{}).Decode([]byte{1, 2}, 1); err == nil {
		t.Fatal("identity should reject wrong length")
	}
	if _, err := (Uniform8{}).Decode([]byte{1}, 4); err == nil {
		t.Fatal("quantize8 should reject wrong length")
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		codec interface{ Name() string }
		want  string
	}{
		{Identity{}, "identity"},
		{Uniform8{}, "quantize8"},
		{TopK{K: 5}, "top5"},
		{RandomMask{Fraction: 0.25}, "mask25%"},
	}
	for _, c := range cases {
		if got := c.codec.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}
