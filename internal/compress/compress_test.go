package compress

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"cmfl/internal/xrand"
)

func TestIdentityRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		u := rng.NormVec(1+rng.Intn(40), 0, 3)
		payload, err := Encode(Identity{}, u)
		if err != nil {
			return false
		}
		got, err := Decode(Identity{}, payload, len(u))
		if err != nil {
			return false
		}
		for i := range u {
			if got[i] != u[i] {
				return false
			}
		}
		return len(payload) == len(u)*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUniform8BoundedError(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		u := rng.NormVec(2+rng.Intn(40), 0, 2)
		payload, err := Encode(Uniform8{}, u)
		if err != nil {
			return false
		}
		got, err := Decode(Uniform8{}, payload, len(u))
		if err != nil {
			return false
		}
		lo, hi := u[0], u[0]
		for _, v := range u {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		step := (hi - lo) / 255
		for i := range u {
			if math.Abs(got[i]-u[i]) > step/2+1e-12 {
				return false
			}
		}
		// 8x compression plus the 16-byte range header.
		return len(payload) == 16+len(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUniform8ConstantVector(t *testing.T) {
	u := []float64{2.5, 2.5, 2.5}
	payload, err := Encode(Uniform8{}, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(Uniform8{}, payload, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 2.5 {
			t.Fatalf("constant vector round trip [%d] = %v", i, v)
		}
	}
}

// Regression: a single NaN or Inf coordinate used to poison Uniform8's
// lo/hi range silently, decoding every coordinate to NaN. It must be a
// typed error instead.
func TestUniform8RejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		u := []float64{1, 2, bad, 4}
		if _, err := Encode(Uniform8{}, u); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("Uniform8(%v) err = %v, want ErrNonFinite", bad, err)
		}
	}
}

func TestSign1BitCodebookRejectNonFinite(t *testing.T) {
	u := []float64{1, math.Inf(1), 3}
	if _, err := Encode(Sign1Bit{}, u); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Sign1Bit err = %v, want ErrNonFinite", err)
	}
	if _, err := Encode(Codebook{}, u); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Codebook err = %v, want ErrNonFinite", err)
	}
}

// Pass-through codecs transmit non-finite coordinates verbatim: the damage
// stays on the coordinate that carried it in.
func TestTopKPassesNonFiniteThrough(t *testing.T) {
	u := []float64{0.1, math.Inf(1), 0.2}
	payload, err := Encode(TopK{K: 1}, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(TopK{K: 1}, payload, len(u))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got[1], 1) || got[0] != 0 || got[2] != 0 {
		t.Fatalf("TopK non-finite pass-through = %v", got)
	}
}

func TestTopKKeepsLargest(t *testing.T) {
	u := []float64{0.1, -5, 0.2, 3, -0.05}
	c := TopK{K: 2}
	payload, err := Encode(c, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(c, payload, len(u))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, -5, 0, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK decode = %v, want %v", got, want)
		}
	}
	if len(payload) != 2*12 {
		t.Fatalf("TopK payload = %d bytes, want 24", len(payload))
	}
}

// TestTopKMatchesFullSort cross-checks the quickselect selection against a
// reference full sort over random vectors, including ones with heavy ties
// (all-equal magnitudes are quickselect's classic degenerate input).
func TestTopKMatchesFullSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		dim := 1 + rng.Intn(300)
		k := 1 + rng.Intn(dim)
		u := make([]float64, dim)
		for i := range u {
			if rng.Float64() < 0.3 {
				u[i] = 1.5 // force magnitude ties
			} else {
				u[i] = rng.Norm()
			}
		}
		idx, vals, err := (TopK{K: k}).SelectInto(nil, nil, u)
		if err != nil || len(idx) != k || len(vals) != k {
			return false
		}
		// Reference: sort all indices by |value| descending.
		ref := make([]int, dim)
		for i := range ref {
			ref[i] = i
		}
		sort.SliceStable(ref, func(a, b int) bool {
			return math.Abs(u[ref[a]]) > math.Abs(u[ref[b]])
		})
		// The k-th largest magnitude is the selection threshold; every kept
		// value must be >= it (ties make exact index sets ambiguous).
		threshold := math.Abs(u[ref[k-1]])
		if !sort.SliceIsSorted(idx, func(a, b int) bool { return idx[a] < idx[b] }) {
			return false
		}
		for j, i := range idx {
			if vals[j] != u[i] || math.Abs(u[i]) < threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKAllZeroUpdate(t *testing.T) {
	u := make([]float64, 1000) // all-equal input: Lomuto's O(n²) trap
	payload, err := Encode(TopK{K: 10}, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(TopK{K: 10}, payload, len(u))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("all-zero decode [%d] = %v", i, v)
		}
	}
}

func TestTopKLargerThanDim(t *testing.T) {
	u := []float64{1, 2}
	got, err := Encode(TopK{K: 10}, u)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(TopK{K: 10}, got, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0] != 1 || dec[1] != 2 {
		t.Fatalf("TopK over-K decode = %v", dec)
	}
}

func TestTopKInvalid(t *testing.T) {
	if _, err := Encode(TopK{}, []float64{1}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Decode(TopK{K: 1}, []byte{1, 2, 3}, 4); err == nil {
		t.Fatal("expected error for ragged payload")
	}
	bad, _ := Encode(TopK{K: 1}, []float64{9})
	if _, err := Decode(TopK{K: 1}, bad, 0); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
}

func TestRandomMaskRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		dim := 10 + rng.Intn(100)
		u := rng.NormVec(dim, 0, 1)
		c := RandomMask{Fraction: 0.25, Seed: uint64(seed)}
		payload, err := Encode(c, u)
		if err != nil {
			return false
		}
		got, err := Decode(c, payload, dim)
		if err != nil {
			return false
		}
		for i := range u {
			if got[i] != 0 && got[i] != u[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMaskFractionApprox(t *testing.T) {
	rng := xrand.New(9)
	u := rng.NormVec(10000, 0, 1)
	c := RandomMask{Fraction: 0.25, Seed: 7}
	payload, err := Encode(c, u)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(payload)/8) / 10000
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("mask kept %.3f of coords, want ~0.25", frac)
	}
}

func TestRandomMaskInvalid(t *testing.T) {
	if _, err := Encode(RandomMask{Fraction: 0}, []float64{1}); err == nil {
		t.Fatal("expected error for zero fraction")
	}
	c := RandomMask{Fraction: 0.5, Seed: 1}
	if _, err := Decode(c, []byte{1}, 10); err == nil {
		t.Fatal("expected error for short payload")
	}
}

func TestSign1BitRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		dim := 1 + rng.Intn(700)
		u := rng.NormVec(dim, 0, 2)
		c := Sign1Bit{Chunk: 64}
		payload, err := Encode(c, u)
		if err != nil {
			return false
		}
		got, err := Decode(c, payload, dim)
		if err != nil {
			return false
		}
		// Per chunk: decoded values are ±(mean |v| of the chunk) with the
		// original signs.
		for base := 0; base < dim; base += 64 {
			end := base + 64
			if end > dim {
				end = dim
			}
			sum := 0.0
			for i := base; i < end; i++ {
				sum += math.Abs(u[i])
			}
			scale := sum / float64(end-base)
			for i := base; i < end; i++ {
				want := scale
				if u[i] < 0 {
					want = -scale
				}
				if got[i] != want {
					return false
				}
			}
		}
		nChunks := (dim + 63) / 64
		return len(payload) == 4+nChunks*8+(dim+7)/8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCodebookRoundTrip(t *testing.T) {
	rng := xrand.New(42)
	u := rng.NormVec(4000, 0, 1)
	c := Codebook{K: 32, Seed: 5}
	payload, err := Encode(c, u)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 32*8 + 4000; len(payload) != want {
		t.Fatalf("codebook payload = %d bytes, want %d", len(payload), want)
	}
	got, err := Decode(c, payload, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// k-means with K=32 over N(0,1) should reconstruct with small error.
	var mse float64
	for i := range u {
		d := got[i] - u[i]
		mse += d * d
	}
	mse /= float64(len(u))
	if mse > 0.01 {
		t.Fatalf("codebook MSE = %v, want < 0.01", mse)
	}
}

func TestCodebookDeterministic(t *testing.T) {
	rng := xrand.New(3)
	u := rng.NormVec(500, 0, 1)
	c := Codebook{K: 8, Seed: 11}
	a, err := Encode(c, u)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(c, u)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("codebook encode is not deterministic for identical inputs")
	}
}

func TestCodebookConstantVector(t *testing.T) {
	u := []float64{1.5, 1.5, 1.5, 1.5}
	c := Codebook{K: 4, Seed: 1}
	payload, err := Encode(c, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(c, payload, len(u))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Abs(v-1.5) > 1e-9 {
			t.Fatalf("constant codebook decode [%d] = %v", i, v)
		}
	}
}

func TestCodebookInvalidK(t *testing.T) {
	for _, k := range []int{1, 256, -3} {
		if _, err := Encode(Codebook{K: k}, []float64{1, 2}); err == nil {
			t.Fatalf("Codebook K=%d should be rejected", k)
		}
	}
}

func TestChainTopKQuantize(t *testing.T) {
	rng := xrand.New(8)
	u := rng.NormVec(2000, 0, 1)
	c := NewChain(TopK{K: 100}, Uniform8{})
	payload, err := Encode(c, u)
	if err != nil {
		t.Fatal(err)
	}
	// 4-byte count + 100 u32 indices + quantized values (16 + 100).
	if want := 4 + 100*4 + 16 + 100; len(payload) != want {
		t.Fatalf("chain payload = %d bytes, want %d", len(payload), want)
	}
	got, err := Decode(c, payload, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Unkept coordinates decode to zero; kept ones to their quantized value.
	idx, vals, err := (TopK{K: 100}).SelectInto(nil, nil, u)
	if err != nil {
		t.Fatal(err)
	}
	kept := make(map[int]float64, len(idx))
	lo, hi := vals[0], vals[0]
	for j, i := range idx {
		kept[int(i)] = vals[j]
		lo, hi = math.Min(lo, vals[j]), math.Max(hi, vals[j])
	}
	step := (hi - lo) / 255
	for i, v := range got {
		want, isKept := kept[i]
		if !isKept {
			if v != 0 {
				t.Fatalf("chain unkept coord %d = %v, want 0", i, v)
			}
			continue
		}
		if math.Abs(v-want) > step/2+1e-12 {
			t.Fatalf("chain kept coord %d = %v, want ~%v", i, v, want)
		}
	}
}

func TestChainMaskSign1Bit(t *testing.T) {
	rng := xrand.New(15)
	u := rng.NormVec(1000, 0, 1)
	c := NewChain(RandomMask{Fraction: 0.5, Seed: 3}, Sign1Bit{Chunk: 32})
	payload, err := Encode(c, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(c, payload, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("chain decode length = %d", len(got))
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := Encode(Chain{}, []float64{1}); err == nil {
		t.Fatal("empty chain should error")
	}
	nested := Chain{Selector: TopK{K: 1}, Values: Chain{Selector: TopK{K: 1}, Values: Identity{}}}
	if _, err := Encode(nested, []float64{1}); err == nil {
		t.Fatal("nested chain should error")
	}
}

// TestEncodeIntoReusesBuffer pins the scratch contract: feeding a call's
// output back in as dst must reuse its capacity (same backing array) once
// steady state is reached.
func TestEncodeIntoReusesBuffer(t *testing.T) {
	rng := xrand.New(2)
	u := rng.NormVec(512, 0, 1)
	codecs := []Codec{Identity{}, Uniform8{}, TopK{K: 32}, Sign1Bit{Chunk: 64}, NewChain(TopK{K: 32}, Uniform8{})}
	for _, c := range codecs {
		buf, err := c.EncodeInto(nil, u)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		again, err := c.EncodeInto(buf, u)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(buf) > 0 && &again[0] != &buf[0] {
			t.Errorf("%s: EncodeInto did not reuse the caller's buffer", c.Name())
		}
		var dec []float64
		dec, err = c.DecodeInto(dec, again, len(u))
		if err != nil {
			t.Fatalf("%s decode: %v", c.Name(), err)
		}
		dec2, err := c.DecodeInto(dec, again, len(u))
		if err != nil {
			t.Fatalf("%s decode 2: %v", c.Name(), err)
		}
		if &dec2[0] != &dec[0] {
			t.Errorf("%s: DecodeInto did not reuse the caller's buffer", c.Name())
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(Identity{}, []byte{1, 2}, 1); err == nil {
		t.Fatal("identity should reject wrong length")
	}
	if _, err := Decode(Uniform8{}, []byte{1}, 4); err == nil {
		t.Fatal("quantize8 should reject wrong length")
	}
	if _, err := Decode(Sign1Bit{}, []byte{1, 0, 0}, 4); err == nil {
		t.Fatal("sign1bit should reject short payload")
	}
	if _, err := Decode(Codebook{}, []byte{2, 1}, 4); err == nil {
		t.Fatal("codebook should reject short payload")
	}
	if _, err := Decode(NewChain(TopK{K: 1}, Identity{}), []byte{1}, 4); err == nil {
		t.Fatal("chain should reject short payload")
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		codec interface{ Name() string }
		want  string
	}{
		{Identity{}, "identity"},
		{Uniform8{}, "quantize8"},
		{TopK{K: 5}, "top5"},
		{RandomMask{Fraction: 0.25}, "mask25%"},
		{Sign1Bit{}, "sign1bit/256"},
		{Codebook{}, "codebook16"},
		{NewChain(TopK{K: 9}, Uniform8{}), "top9+quantize8"},
	}
	for _, c := range cases {
		if got := c.codec.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	codecs := []Codec{
		Identity{},
		Uniform8{},
		TopK{K: 123},
		RandomMask{Fraction: 0.25, Seed: 99},
		Sign1Bit{Chunk: 128},
		Sign1Bit{}, // defaults must canonicalize
		Codebook{K: 32, Iters: 4, Seed: 7},
		Codebook{},
		NewChain(TopK{K: 50}, Uniform8{}),
		NewChain(RandomMask{Fraction: 0.1, Seed: 2}, Sign1Bit{Chunk: 32}),
	}
	for _, c := range codecs {
		spec, err := EncodeSpec(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, rest, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d trailing spec bytes", c.Name(), len(rest))
		}
		if got.Name() != c.Name() {
			t.Fatalf("spec round trip = %s, want %s", got.Name(), c.Name())
		}
		// Canonicalization: re-encoding the parsed codec must be byte-equal.
		spec2, err := EncodeSpec(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(spec) != string(spec2) {
			t.Fatalf("%s: spec not canonical: %x vs %x", c.Name(), spec, spec2)
		}
	}
}

func TestSpecDefaultsCanonical(t *testing.T) {
	a, err := EncodeSpec(Sign1Bit{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSpec(Sign1Bit{Chunk: DefaultSignChunk})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("zero-value and explicit-default Sign1Bit specs differ")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{99},
		{specTopK},                              // truncated K
		{specTopK, 0, 0, 0, 0},                  // K = 0
		{specChain, specUniform8, specIdentity}, // first stage not a selector
		{specChain, specChain, specChain, specChain, specChain}, // too deep
	}
	for _, b := range cases {
		if _, _, err := ParseSpec(b); err == nil {
			t.Fatalf("ParseSpec(%x) should error", b)
		}
	}
}

func TestParseName(t *testing.T) {
	cases := map[string]string{
		"identity":         "identity",
		"quantize8":        "quantize8",
		"top500":           "top500",
		"mask25":           "mask25%",
		"sign1bit":         "sign1bit/256",
		"sign1bit/64":      "sign1bit/64",
		"codebook":         "codebook16",
		"codebook32":       "codebook32",
		"top100+quantize8": "top100+quantize8",
		"top50+sign1bit":   "top50+sign1bit/256",
	}
	for in, want := range cases {
		c, err := ParseName(in)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", in, err)
		}
		if c.Name() != want {
			t.Errorf("ParseName(%q) = %s, want %s", in, c.Name(), want)
		}
	}
	if c, err := ParseName("none"); err != nil || c != nil {
		t.Fatalf("ParseName(none) = %v, %v; want nil, nil", c, err)
	}
	for _, bad := range []string{"top0", "topx", "codebook1", "quantize8+top3", "mask0", "mask200", "bogus"} {
		if _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q) should error", bad)
		}
	}
}

func TestQuickselectThreshold(t *testing.T) {
	// Directed edge cases the property test might miss.
	cases := []struct {
		u []float64
		k int
	}{
		{[]float64{1}, 1},
		{[]float64{1, 1, 1, 1}, 2},
		{[]float64{-4, 3, -2, 1}, 3},
		{[]float64{0, 0, 0, 5}, 1},
		{[]float64{5, 4, 3, 2, 1}, 5},
	}
	for _, tc := range cases {
		idx, vals, err := (TopK{K: tc.k}).SelectInto(nil, nil, tc.u)
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) != tc.k || len(vals) != tc.k {
			t.Fatalf("SelectInto(%v, k=%d) kept %d", tc.u, tc.k, len(idx))
		}
		for j, i := range idx {
			if vals[j] != tc.u[i] {
				t.Fatalf("SelectInto(%v, k=%d): vals[%d]=%v != u[%d]=%v", tc.u, tc.k, j, vals[j], i, tc.u[i])
			}
		}
	}
}

func TestSortU32(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		a := make([]uint32, rng.Intn(200))
		for i := range a {
			a[i] = uint32(rng.Intn(50))
		}
		sortU32(a)
		return sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
