package compress

import (
	"errors"
	"math"
	"testing"

	"cmfl/internal/xrand"
)

// fuzzCodecs is the panel every fuzz input is run through. Codebook rides
// along with small K/Iters so the k-means loop stays cheap per input.
func fuzzCodecs() []Codec {
	return []Codec{
		Identity{},
		Uniform8{},
		TopK{K: 3},
		RandomMask{Fraction: 0.5, Seed: 9},
		Sign1Bit{Chunk: 8},
		Codebook{K: 4, Iters: 2, Seed: 1},
		NewChain(TopK{K: 3}, Uniform8{}),
		NewChain(RandomMask{Fraction: 0.5, Seed: 9}, Sign1Bit{Chunk: 8}),
	}
}

// FuzzCodecRoundTrip drives every codec with arbitrary float vectors derived
// from the fuzz input: encode must either fail cleanly (ErrNonFinite on
// non-finite input for range-sensitive codecs) or produce a payload that
// decodes without error into a finite-damage vector of the right length.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(8), false)
	f.Add(int64(42), uint8(100), false)
	f.Add(int64(7), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, dimByte uint8, injectNaN bool) {
		dim := int(dimByte)
		if dim == 0 {
			return
		}
		rng := xrand.New(seed)
		u := rng.NormVec(dim, 0, 5)
		if injectNaN {
			u[rng.Intn(dim)] = math.NaN()
		}
		for _, c := range fuzzCodecs() {
			payload, err := Encode(c, u)
			if err != nil {
				if injectNaN && errors.Is(err, ErrNonFinite) {
					continue
				}
				t.Fatalf("%s: encode(%v): %v", c.Name(), u, err)
			}
			got, err := Decode(c, payload, dim)
			if err != nil {
				t.Fatalf("%s: decode own payload: %v", c.Name(), err)
			}
			if len(got) != dim {
				t.Fatalf("%s: decode length %d, want %d", c.Name(), len(got), dim)
			}
		}
	})
}

// FuzzCodecDecode feeds arbitrary bytes to every decoder: they must reject
// or accept, never panic or read out of bounds.
func FuzzCodecDecode(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0}, uint8(4))
	seed, _ := Encode(NewChain(TopK{K: 2}, Uniform8{}), []float64{1, -2, 3, -4})
	f.Add(seed, uint8(4))
	f.Fuzz(func(t *testing.T, payload []byte, dimByte uint8) {
		dim := int(dimByte)
		for _, c := range fuzzCodecs() {
			got, err := Decode(c, payload, dim)
			if err == nil && len(got) != dim {
				t.Fatalf("%s: accepted garbage but returned %d coords, want %d", c.Name(), len(got), dim)
			}
		}
	})
}

// TestCodecDecodersNeverPanic is the deterministic smoke slice of
// FuzzCodecDecode that runs in plain `go test`.
func TestCodecDecodersNeverPanic(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		for _, c := range fuzzCodecs() {
			_, _ = Decode(c, b, rng.Intn(16))
		}
		_, _, _ = ParseSpec(b)
	}
}
