package compress

import (
	"encoding/binary"
	"math"
	"sync"
)

// This file holds the scratch-management primitives behind the package's
// zero-allocation contract. The grow* helpers implement overwrite reuse:
// when the caller's buffer capacity suffices they re-slice it (free);
// otherwise they allocate once with headroom, an amortized grow-only cost
// that the //cmfl:lint-ignore markers justify to cmfl-vet so it does not
// re-surface at every //cmfl:hotpath caller. The sync.Pools cover scratch
// the Codec interface cannot route through the caller (TopK's index
// permutation, Chain's intermediate selections).

// growBytes returns a length-n byte slice reusing dst's capacity. Contents
// are unspecified — callers overwrite every element.
func growBytes(dst []byte, n int) []byte {
	if cap(dst) >= n {
		return dst[:n]
	}
	//cmfl:lint-ignore hotpathalloc amortized grow-only resize; steady state reuses caller capacity
	return make([]byte, n)
}

// growFloats is growBytes for float64 scratch.
func growFloats(dst []float64, n int) []float64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	//cmfl:lint-ignore hotpathalloc amortized grow-only resize; steady state reuses caller capacity
	return make([]float64, n)
}

// growU32 is growBytes for uint32 scratch.
func growU32(dst []uint32, n int) []uint32 {
	if cap(dst) >= n {
		return dst[:n]
	}
	//cmfl:lint-ignore hotpathalloc amortized grow-only resize; steady state reuses caller capacity
	return make([]uint32, n)
}

// Pools hold pointers to slices (not slices) so Get/Put stay off the heap
// in steady state; the New closures live at package level because a func
// literal inside a hot body would itself be an allocation.
var (
	u32Scratch  = sync.Pool{New: newU32Scratch}
	f64Scratch  = sync.Pool{New: newF64Scratch}
	byteScratch = sync.Pool{New: newByteScratch}
)

func newU32Scratch() any { return new([]uint32) }

func newF64Scratch() any { return new([]float64) }

func newByteScratch() any { return new([]byte) }

// isFinite reports whether v is neither NaN nor ±Inf. For any finite v,
// v-v is exactly 0; NaN and ±Inf both yield NaN, which compares unequal.
//
//cmfl:lint-ignore floateq v-v == 0 is the bit-exact IEEE-754 finiteness test
func isFinite(v float64) bool { return v-v == 0 }

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// quickselectAbsDesc partially orders idx so its first k entries index the
// k largest |vals[i]| coordinates, in expected O(n): Hoare partition with
// median-of-three pivoting, which stays linear on the all-equal inputs
// (e.g. all-zero deltas) that degrade a Lomuto scheme to O(n²). Ties are
// broken arbitrarily — callers re-sort the kept prefix by index, so the
// wire encoding stays deterministic either way.
func quickselectAbsDesc(idx []uint32, vals []float64, k int) {
	lo, hi := 0, len(idx)-1
	for lo < hi {
		p := hoarePartition(idx, vals, lo, hi)
		// Hoare: [lo, p] holds magnitudes >= everything in [p+1, hi].
		left := p - lo + 1
		if k <= left {
			hi = p
		} else {
			k -= left
			lo = p + 1
		}
	}
}

// hoarePartition partitions idx[lo..hi] around a median-of-three pivot by
// descending |vals|, returning j such that every element of idx[lo..j]
// compares >= every element of idx[j+1..hi].
func hoarePartition(idx []uint32, vals []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	a, b, c := absAt(vals, idx[lo]), absAt(vals, idx[mid]), absAt(vals, idx[hi])
	// Move the median of (a, b, c) to lo to serve as the pivot.
	if (a < b) != (a < c) { // a is the median
		// already at lo
	} else if (b < a) != (b < c) { // b is the median
		idx[lo], idx[mid] = idx[mid], idx[lo]
	} else {
		idx[lo], idx[hi] = idx[hi], idx[lo]
	}
	pivot := absAt(vals, idx[lo])
	i, j := lo-1, hi+1
	for {
		for {
			i++
			if absAt(vals, idx[i]) <= pivot {
				break
			}
		}
		for {
			j--
			if absAt(vals, idx[j]) >= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		idx[i], idx[j] = idx[j], idx[i]
	}
}

// absAt returns the selection magnitude of vals[i]: |v|, with NaN mapped to
// +Inf. NaN compares false against everything, which would let the Hoare
// sweeps run past the slice bounds; promoting it to +Inf keeps the order
// total (a NaN coordinate simply ranks as largest and is transmitted
// verbatim — TopK passes damage through, it never launders it).
func absAt(vals []float64, i uint32) float64 {
	v := vals[i]
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	if v < 0 {
		return -v
	}
	return v
}

// sortU32 sorts in place via heapsort: O(k log k), zero allocation, and no
// recursion — sort.Slice would force the slice header and comparator onto
// the heap on every call.
func sortU32(a []uint32) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownU32(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownU32(a, 0, end)
	}
}

func siftDownU32(a []uint32, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
