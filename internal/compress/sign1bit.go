package compress

import (
	"fmt"
	"math"
)

// Sign1Bit transmits one bit per coordinate (the sign) plus a float64 scale
// per chunk of Chunk coordinates — the mean |value| over the chunk — so a
// coordinate decodes to ±scale. This is the 1-bit SGD / signSGD family of
// sketched updates: 64.something× smaller than raw float64 at Chunk=256
// (1 bit + 64/256 scale bits per coordinate), with the per-chunk scale
// retaining coarse magnitude structure that a single global scale loses.
//
// Payload: [u32 chunk][nChunks × f64 scale][ceil(dim/8) sign bitmap], where
// nChunks = ceil(dim/chunk). A set bit means negative.
type Sign1Bit struct {
	// Chunk is the number of coordinates sharing one scale; 0 means
	// DefaultSignChunk.
	Chunk int
}

// DefaultSignChunk is the scale-sharing granularity when Sign1Bit.Chunk is 0.
const DefaultSignChunk = 256

func (c Sign1Bit) chunk() int {
	if c.Chunk <= 0 {
		return DefaultSignChunk
	}
	return c.Chunk
}

// Name implements Codec.
func (c Sign1Bit) Name() string { return fmt.Sprintf("sign1bit/%d", c.chunk()) }

// EncodeInto implements Codec. Non-finite coordinates are rejected: a NaN
// would poison its whole chunk's scale, an Inf every coordinate in it.
//
//cmfl:hotpath
func (c Sign1Bit) EncodeInto(dst []byte, update []float64) ([]byte, error) {
	chunk := c.chunk()
	n := len(update)
	nChunks := (n + chunk - 1) / chunk
	need := 4 + nChunks*8 + (n+7)/8
	dst = growBytes(dst, need)
	putU32(dst[:4], uint32(chunk))

	bitmap := dst[4+nChunks*8:]
	for i := range bitmap {
		bitmap[i] = 0
	}
	for base := 0; base < n; base += chunk {
		end := base + chunk
		if end > n {
			end = n
		}
		sum := 0.0
		for i := base; i < end; i++ {
			v := update[i]
			if !isFinite(v) {
				return nil, fmt.Errorf("%w: sign1bit coordinate %d = %v", ErrNonFinite, i, v)
			}
			if v < 0 {
				sum -= v
				bitmap[i>>3] |= 1 << (i & 7)
			} else {
				sum += v
			}
		}
		scale := sum / float64(end-base)
		off := 4 + (base/chunk)*8
		putU64(dst[off:off+8], math.Float64bits(scale))
	}
	return dst, nil
}

// DecodeInto implements Codec.
//
//cmfl:hotpath
func (c Sign1Bit) DecodeInto(dst []float64, payload []byte, dim int) ([]float64, error) {
	if dim < 0 || len(payload) < 4 {
		return nil, fmt.Errorf("%w: sign1bit payload %d bytes", ErrCorruptPayload, len(payload))
	}
	chunk := int(getU32(payload[:4]))
	if chunk <= 0 {
		return nil, fmt.Errorf("%w: sign1bit chunk %d", ErrCorruptPayload, chunk)
	}
	nChunks := (dim + chunk - 1) / chunk
	if len(payload) != 4+nChunks*8+(dim+7)/8 {
		return nil, fmt.Errorf("%w: sign1bit payload %d bytes for dim %d chunk %d", ErrCorruptPayload, len(payload), dim, chunk)
	}
	bitmap := payload[4+nChunks*8:]
	dst = growFloats(dst, dim)
	for i := range dst {
		off := 4 + (i/chunk)*8
		scale := math.Float64frombits(getU64(payload[off : off+8]))
		if bitmap[i>>3]&(1<<(i&7)) != 0 {
			dst[i] = -scale
		} else {
			dst[i] = scale
		}
	}
	return dst, nil
}
