package compress

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Wire codec specs: a self-describing binary encoding of a codec's identity
// and parameters, negotiated once per connection in the emulation's hello
// frame (wire format v2) so per-update frames carry no codec metadata at
// all. IDs are append-only — reusing or renumbering one would silently
// mis-pair old clients with new servers.
//
// A spec encodes the codec's *effective* parameters (defaults resolved),
// so two configurations that behave identically serialize identically and
// the server's byte-equality compatibility check cannot be defeated by a
// zero-vs-default mismatch.
const (
	specIdentity   = 1 // no params
	specUniform8   = 2 // no params
	specTopK       = 3 // u32 K
	specRandomMask = 4 // f64 fraction bits, u64 seed
	specSign1Bit   = 5 // u32 chunk
	specCodebook   = 6 // u8 K, u32 iters, u64 seed
	specChain      = 7 // selector spec ++ value spec
)

// AppendSpec appends c's wire spec to dst. It errors on codecs with invalid
// parameters or types outside the registry.
func AppendSpec(dst []byte, c Codec) ([]byte, error) {
	switch c := c.(type) {
	case Identity:
		return append(dst, specIdentity), nil
	case Uniform8:
		return append(dst, specUniform8), nil
	case TopK:
		if c.K <= 0 {
			return nil, fmt.Errorf("compress: spec for TopK requires K > 0, got %d", c.K)
		}
		dst = append(dst, specTopK)
		return appendU32(dst, uint32(c.K)), nil
	case RandomMask:
		if err := c.validate(); err != nil {
			return nil, err
		}
		dst = append(dst, specRandomMask)
		dst = appendU64(dst, math.Float64bits(c.Fraction))
		return appendU64(dst, c.Seed), nil
	case Sign1Bit:
		dst = append(dst, specSign1Bit)
		return appendU32(dst, uint32(c.chunk())), nil
	case Codebook:
		if err := c.validate(); err != nil {
			return nil, err
		}
		dst = append(dst, specCodebook, byte(c.k()))
		dst = appendU32(dst, uint32(c.iters()))
		return appendU64(dst, uint64(c.Seed)), nil
	case Chain:
		if err := c.validate(); err != nil {
			return nil, err
		}
		dst = append(dst, specChain)
		dst, err := AppendSpec(dst, c.Selector)
		if err != nil {
			return nil, err
		}
		return AppendSpec(dst, c.Values)
	case nil:
		return nil, fmt.Errorf("compress: cannot encode spec for nil codec")
	default:
		return nil, fmt.Errorf("compress: no wire spec for codec type %T (%s)", c, c.Name())
	}
}

// EncodeSpec is the allocating convenience form of AppendSpec.
func EncodeSpec(c Codec) ([]byte, error) { return AppendSpec(nil, c) }

// ParseSpec decodes one codec spec from the front of b, returning the codec
// and the unconsumed remainder. Unknown IDs and truncated params error.
func ParseSpec(b []byte) (Codec, []byte, error) {
	return parseSpec(b, 0)
}

// parseSpec bounds chain nesting so a hostile spec cannot recurse deeply.
func parseSpec(b []byte, depth int) (Codec, []byte, error) {
	if depth > 2 {
		return nil, nil, fmt.Errorf("%w: codec spec nests too deep", ErrCorruptPayload)
	}
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("%w: empty codec spec", ErrCorruptPayload)
	}
	id, b := b[0], b[1:]
	switch id {
	case specIdentity:
		return Identity{}, b, nil
	case specUniform8:
		return Uniform8{}, b, nil
	case specTopK:
		if len(b) < 4 {
			return nil, nil, fmt.Errorf("%w: truncated topk spec", ErrCorruptPayload)
		}
		k := int(getU32(b[:4]))
		if k <= 0 {
			return nil, nil, fmt.Errorf("%w: topk spec K %d", ErrCorruptPayload, k)
		}
		return TopK{K: k}, b[4:], nil
	case specRandomMask:
		if len(b) < 16 {
			return nil, nil, fmt.Errorf("%w: truncated mask spec", ErrCorruptPayload)
		}
		c := RandomMask{Fraction: math.Float64frombits(getU64(b[:8])), Seed: getU64(b[8:16])}
		if err := c.validate(); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorruptPayload, err)
		}
		return c, b[16:], nil
	case specSign1Bit:
		if len(b) < 4 {
			return nil, nil, fmt.Errorf("%w: truncated sign1bit spec", ErrCorruptPayload)
		}
		chunk := int(getU32(b[:4]))
		if chunk <= 0 {
			return nil, nil, fmt.Errorf("%w: sign1bit spec chunk %d", ErrCorruptPayload, chunk)
		}
		return Sign1Bit{Chunk: chunk}, b[4:], nil
	case specCodebook:
		if len(b) < 13 {
			return nil, nil, fmt.Errorf("%w: truncated codebook spec", ErrCorruptPayload)
		}
		c := Codebook{K: int(b[0]), Iters: int(getU32(b[1:5])), Seed: int64(getU64(b[5:13]))}
		if err := c.validate(); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorruptPayload, err)
		}
		return c, b[13:], nil
	case specChain:
		selC, rest, err := parseSpec(b, depth+1)
		if err != nil {
			return nil, nil, err
		}
		sel, ok := selC.(Selector)
		if !ok {
			return nil, nil, fmt.Errorf("%w: chain spec first stage %s is not a selector", ErrCorruptPayload, selC.Name())
		}
		values, rest, err := parseSpec(rest, depth+1)
		if err != nil {
			return nil, nil, err
		}
		c := Chain{Selector: sel, Values: values}
		if err := c.validate(); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorruptPayload, err)
		}
		return c, rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown codec spec id %d", ErrCorruptPayload, id)
	}
}

// ParseName resolves the CLI/config spelling of a codec. Grammar:
//
//	none | identity | quantize8 | top<K> | mask<pct> | sign1bit[/<chunk>] |
//	codebook[<K>] | <selector>+<value>   (a chain, e.g. top1000+quantize8)
//
// "none" (and "") yield a nil codec: raw float64 updates, no codec frame.
func ParseName(name string) (Codec, error) {
	name = strings.TrimSpace(name)
	if name == "" || name == "none" {
		return nil, nil
	}
	if sel, values, ok := strings.Cut(name, "+"); ok {
		sc, err := ParseName(sel)
		if err != nil {
			return nil, err
		}
		s, ok := sc.(Selector)
		if !ok {
			return nil, fmt.Errorf("compress: chain stage %q is not a selector (want top<K> or mask<pct>)", sel)
		}
		vc, err := ParseName(values)
		if err != nil {
			return nil, err
		}
		c := Chain{Selector: s, Values: vc}
		if err := c.validate(); err != nil {
			return nil, err
		}
		return c, nil
	}
	switch {
	case name == "identity":
		return Identity{}, nil
	case name == "quantize8":
		return Uniform8{}, nil
	case name == "sign1bit":
		return Sign1Bit{}, nil
	case strings.HasPrefix(name, "sign1bit/"):
		chunk, err := strconv.Atoi(name[len("sign1bit/"):])
		if err != nil || chunk <= 0 {
			return nil, fmt.Errorf("compress: bad sign1bit chunk in %q", name)
		}
		return Sign1Bit{Chunk: chunk}, nil
	case name == "codebook":
		return Codebook{}, nil
	case strings.HasPrefix(name, "codebook"):
		k, err := strconv.Atoi(name[len("codebook"):])
		if err != nil {
			return nil, fmt.Errorf("compress: bad codebook size in %q", name)
		}
		c := Codebook{K: k}
		if err := c.validate(); err != nil {
			return nil, err
		}
		return c, nil
	case strings.HasPrefix(name, "top"):
		k, err := strconv.Atoi(name[len("top"):])
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("compress: bad top-k count in %q", name)
		}
		return TopK{K: k}, nil
	case strings.HasPrefix(name, "mask"):
		pct, err := strconv.ParseFloat(name[len("mask"):], 64)
		if err != nil || pct <= 0 || pct > 100 {
			return nil, fmt.Errorf("compress: bad mask percentage in %q", name)
		}
		return RandomMask{Fraction: pct / 100, Seed: 1}, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
