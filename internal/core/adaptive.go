package core

import "sync"

// AdaptiveFilter is a CMFL extension: instead of a hand-tuned threshold
// schedule, it controls the relevance threshold to track a target upload
// fraction, removing the paper's per-workload threshold sweep. After every
// round the server reports how many clients uploaded; the filter nudges the
// threshold up when too many uploaded and down when too few
// (an integral controller with gain Gain, clamped to [Min, Max]).
//
// It is safe for concurrent Check calls; ObserveRound must be called from
// the engine between rounds (the fl engine does this automatically for any
// filter implementing its FilterFeedback interface).
type AdaptiveFilter struct {
	// Target is the desired upload fraction in (0, 1).
	Target float64
	// Gain is the per-round adjustment step (default 0.05).
	Gain float64
	// Min and Max clamp the threshold (defaults 0.05 and 0.95).
	Min, Max float64

	mu        sync.Mutex
	threshold float64
}

// NewAdaptiveFilter creates an adaptive CMFL filter starting at threshold
// start and tracking the target upload fraction.
func NewAdaptiveFilter(start, target float64) *AdaptiveFilter {
	return &AdaptiveFilter{
		Target:    target,
		Gain:      0.05,
		Min:       0.05,
		Max:       0.95,
		threshold: start,
	}
}

// Name implements the fl.UploadFilter interface.
func (f *AdaptiveFilter) Name() string { return "cmfl-adaptive" }

// Threshold returns the current threshold (for tracing).
func (f *AdaptiveFilter) Threshold() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.threshold
}

// Check implements the fl.UploadFilter interface.
func (f *AdaptiveFilter) Check(local, model, prevGlobal []float64, t int) (Decision, error) {
	if AllZero(prevGlobal) {
		return Decision{Upload: true, Metric: 1}, nil
	}
	rel, err := Relevance(local, prevGlobal)
	if err != nil {
		return Decision{}, err
	}
	f.mu.Lock()
	thr := f.threshold
	f.mu.Unlock()
	return Decision{Upload: rel >= thr, Metric: rel}, nil
}

// ObserveRound implements the fl engine's FilterFeedback hook: it adjusts
// the threshold toward the target upload fraction.
func (f *AdaptiveFilter) ObserveRound(round, uploaded, participants int) {
	if participants == 0 {
		return
	}
	frac := float64(uploaded) / float64(participants)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.threshold += f.Gain * (frac - f.Target)
	if f.threshold < f.Min {
		f.threshold = f.Min
	}
	if f.threshold > f.Max {
		f.threshold = f.Max
	}
}
