package core

import "math"

// Float comparison helpers. The floateq analyzer (internal/lint) bans raw
// ==/!= on floats outside tests; these are the sanctioned alternatives.
// The two bit-exact loops below are the audited exceptions: the "no
// feedback yet" sentinel is *defined* as the all-exact-zeros vector, so an
// epsilon there would misclassify genuinely tiny first-round updates.

// DefaultTol is a practical tolerance for comparing accumulated float64
// quantities (losses, accuracies, relevance fractions): large enough to
// absorb reassociation noise, far below any decision threshold.
const DefaultTol = 1e-9

// ApproxEqual reports |a-b| <= tol, scaled by the magnitude of the larger
// operand once values leave the unit range (mixed absolute/relative
// tolerance). NaN compares unequal to everything, matching IEEE intent.
//
//cmfl:hotpath
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //cmfl:lint-ignore floateq bit-exact shortcut also catches equal infinities
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// AllZero reports whether every coordinate of v is exactly zero. This is
// the engines' shared "no feedback yet" test: the bootstrap feedback
// vector is all zeros by construction, so the comparison is bit-exact on
// purpose.
//
//cmfl:hotpath
func AllZero(v []float64) bool {
	for _, x := range v {
		if x != 0 { //cmfl:lint-ignore floateq the bootstrap sentinel is defined as exact zeros
			return false
		}
	}
	return true
}
