package core

import (
	"math"
	"testing"
	"testing/quick"

	"cmfl/internal/xrand"
)

func TestSign(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{
		{1.5, 1}, {-2, -1}, {0, 0}, {1e-300, 1}, {-1e-300, -1},
	}
	for _, c := range cases {
		if got := Sign(c.in); got != c.want {
			t.Errorf("Sign(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRelevanceKnownValues(t *testing.T) {
	cases := []struct {
		name          string
		local, global []float64
		want          float64
	}{
		{"identical", []float64{1, -2, 3}, []float64{2, -1, 5}, 1},
		{"opposed", []float64{1, -2, 3}, []float64{-1, 2, -3}, 0},
		{"half", []float64{1, 1, -1, -1}, []float64{1, -1, -1, 1}, 0.5},
		{"zeros-align", []float64{0, 1}, []float64{0, 2}, 1},
		{"zero-vs-nonzero", []float64{0, 1}, []float64{1, 1}, 0.5},
	}
	for _, c := range cases {
		got, err := Relevance(c.local, c.global)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: Relevance = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRelevanceLengthMismatch(t *testing.T) {
	if _, err := Relevance([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestRelevanceEmpty(t *testing.T) {
	got, err := Relevance(nil, nil)
	if err != nil || got != 0 {
		t.Fatalf("Relevance(nil, nil) = %v, %v; want 0, nil", got, err)
	}
}

// TestRelevanceScaleInvariance verifies the paper's central robustness
// claim: relevance is invariant to positive rescaling of either update
// (learning rate, dataset size), unlike Gaia's magnitude test.
func TestRelevanceScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(50)
		u := rng.NormVec(n, 0, 1)
		g := rng.NormVec(n, 0, 1)
		alpha := 0.01 + 100*rng.Float64()
		su := make([]float64, n)
		for i := range u {
			su[i] = alpha * u[i]
		}
		r1, err1 := Relevance(u, g)
		r2, err2 := Relevance(su, g)
		return err1 == nil && err2 == nil && r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRelevanceSelfIsOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(50)
		u := rng.NormVec(n, 0, 1)
		r, err := Relevance(u, u)
		return err == nil && r == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRelevanceSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(30)
		u := rng.NormVec(n, 0, 1)
		g := rng.NormVec(n, 0, 1)
		a, _ := Relevance(u, g)
		b, _ := Relevance(g, u)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRelevanceBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(30)
		r, err := Relevance(rng.NormVec(n, 0, 5), rng.NormVec(n, 0, 5))
		return err == nil && r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineRelevance(t *testing.T) {
	got, err := CosineRelevance([]float64{1, 0}, []float64{1, 0})
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("aligned cosine relevance = %v, %v; want 1", got, err)
	}
	got, err = CosineRelevance([]float64{1, 0}, []float64{-1, 0})
	if err != nil || math.Abs(got) > 1e-12 {
		t.Fatalf("opposed cosine relevance = %v, %v; want 0", got, err)
	}
	got, err = CosineRelevance([]float64{1, 0}, []float64{0, 1})
	if err != nil || math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("orthogonal cosine relevance = %v, %v; want 0.5", got, err)
	}
	got, err = CosineRelevance([]float64{0, 0}, []float64{1, 1})
	if err != nil || got != 0.5 {
		t.Fatalf("zero-vector cosine relevance = %v, %v; want 0.5", got, err)
	}
}

func TestDeltaUpdate(t *testing.T) {
	got, err := DeltaUpdate([]float64{3, 4}, []float64{3, 4})
	if err != nil || got != 0 {
		t.Fatalf("identical updates: ΔUpdate = %v, %v; want 0", got, err)
	}
	got, err = DeltaUpdate([]float64{1, 0}, []float64{0, 1})
	if err != nil || math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("orthogonal unit updates: ΔUpdate = %v; want √2", got)
	}
	got, err = DeltaUpdate([]float64{0, 0}, []float64{1, 1})
	if err != nil || !math.IsInf(got, 1) {
		t.Fatalf("zero prev: ΔUpdate = %v; want +Inf", got)
	}
	if _, err = DeltaUpdate([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestSchedules(t *testing.T) {
	c := Constant(0.8)
	if c.At(1) != 0.8 || c.At(1000) != 0.8 {
		t.Fatal("Constant schedule must not vary")
	}
	s := InvSqrt{V0: 0.8}
	if s.At(1) != 0.8 {
		t.Fatalf("InvSqrt.At(1) = %v, want 0.8", s.At(1))
	}
	if got := s.At(4); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("InvSqrt.At(4) = %v, want 0.4", got)
	}
	if s.At(0) != 0.8 {
		t.Fatalf("InvSqrt.At(0) should clamp to t=1")
	}
	st := Step{V0: 0.9, Warm: 3, After: 0.5}
	if st.At(3) != 0.9 || st.At(4) != 0.5 {
		t.Fatal("Step schedule boundary wrong")
	}
}

func TestInvSqrtMonotoneDecreasing(t *testing.T) {
	f := func(raw uint16) bool {
		t1 := int(raw%1000) + 1
		s := InvSqrt{V0: 1}
		return s.At(t1+1) <= s.At(t1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterFirstRoundAlwaysUploads(t *testing.T) {
	f := NewFilter(Constant(0.99))
	d, err := f.Check([]float64{1, -1}, []float64{0, 0}, []float64{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Upload {
		t.Fatal("first round (zero feedback) must upload")
	}
	d, err = f.Check([]float64{1, -1}, []float64{0, 0}, nil, 1)
	if err != nil || !d.Upload {
		t.Fatalf("nil feedback must upload: %+v, %v", d, err)
	}
}

func TestFilterThresholding(t *testing.T) {
	f := NewFilter(Constant(0.6))
	global := []float64{1, 1, 1, 1, 1}
	// 3/5 aligned -> 0.6 >= 0.6 -> upload.
	d, err := f.Check([]float64{1, 1, 1, -1, -1}, nil, global, 2)
	if err != nil || !d.Upload || d.Metric != 0.6 {
		t.Fatalf("relevance 0.6 at threshold 0.6: %+v, %v; want upload", d, err)
	}
	// 2/5 aligned -> 0.4 < 0.6 -> skip.
	d, err = f.Check([]float64{1, 1, -1, -1, -1}, nil, global, 2)
	if err != nil || d.Upload || d.Metric != 0.4 {
		t.Fatalf("relevance 0.4 at threshold 0.6: %+v, %v; want skip", d, err)
	}
}

func TestFilterDecayAdmitsMoreOverTime(t *testing.T) {
	f := NewFilter(InvSqrt{V0: 0.8})
	global := []float64{1, 1, 1, 1, 1}
	local := []float64{1, 1, -1, -1, -1} // relevance 0.4
	d1, err := f.Check(local, nil, global, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Upload {
		t.Fatal("round 1: 0.4 < 0.8 must skip")
	}
	d16, err := f.Check(local, nil, global, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !d16.Upload { // threshold 0.8/4 = 0.2 <= 0.4
		t.Fatal("round 16: 0.4 >= 0.2 must upload")
	}
}

func TestFilterCosineMode(t *testing.T) {
	f := NewFilter(Constant(0.6))
	f.UseCosine = true
	if f.Name() != "cmfl-cosine" {
		t.Fatalf("Name = %q, want cmfl-cosine", f.Name())
	}
	d, err := f.Check([]float64{1, 0}, nil, []float64{1, 0}, 2)
	if err != nil || !d.Upload {
		t.Fatalf("aligned cosine must upload: %+v, %v", d, err)
	}
}

func TestFilterLengthMismatchError(t *testing.T) {
	f := NewFilter(Constant(0.5))
	if _, err := f.Check([]float64{1}, nil, []float64{1, 2}, 2); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestFilterName(t *testing.T) {
	if got := NewFilter(Constant(0.5)).Name(); got != "cmfl" {
		t.Fatalf("Name = %q, want cmfl", got)
	}
}

func TestAdaptiveFilterTracksTarget(t *testing.T) {
	f := NewAdaptiveFilter(0.5, 0.4)
	if f.Name() != "cmfl-adaptive" {
		t.Fatalf("Name = %q", f.Name())
	}
	// Everyone uploading drives the threshold up; nobody uploading drives
	// it down.
	start := f.Threshold()
	f.ObserveRound(1, 10, 10)
	if f.Threshold() <= start {
		t.Fatal("threshold should rise when upload fraction exceeds target")
	}
	up := f.Threshold()
	f.ObserveRound(2, 0, 10)
	if f.Threshold() >= up {
		t.Fatal("threshold should fall when upload fraction is below target")
	}
}

func TestAdaptiveFilterClamps(t *testing.T) {
	f := NewAdaptiveFilter(0.9, 0.1)
	for i := 0; i < 1000; i++ {
		f.ObserveRound(i, 10, 10) // always over target -> pushes up
	}
	if f.Threshold() > f.Max {
		t.Fatalf("threshold %v exceeded Max %v", f.Threshold(), f.Max)
	}
	for i := 0; i < 1000; i++ {
		f.ObserveRound(i, 0, 10)
	}
	if f.Threshold() < f.Min {
		t.Fatalf("threshold %v below Min %v", f.Threshold(), f.Min)
	}
}

func TestAdaptiveFilterCheck(t *testing.T) {
	f := NewAdaptiveFilter(0.6, 0.5)
	global := []float64{1, 1, 1, 1, 1}
	d, err := f.Check([]float64{1, 1, 1, 1, -1}, nil, global, 2) // rel 0.8
	if err != nil || !d.Upload {
		t.Fatalf("relevance 0.8 vs threshold 0.6: %+v, %v", d, err)
	}
	d, err = f.Check([]float64{1, 1, -1, -1, -1}, nil, global, 2) // rel 0.4
	if err != nil || d.Upload {
		t.Fatalf("relevance 0.4 vs threshold 0.6: %+v, %v", d, err)
	}
	d, err = f.Check([]float64{1}, nil, []float64{0}, 1)
	if err != nil || !d.Upload {
		t.Fatalf("bootstrap round must upload: %+v, %v", d, err)
	}
	f.ObserveRound(1, 0, 0) // must not divide by zero
}
