package core

// Decision is the outcome of a client-side upload check: whether to upload
// and the metric value that produced the decision (relevance for CMFL,
// significance for Gaia), recorded for the Fig. 2 traces.
type Decision struct {
	Upload bool
	Metric float64
}

// Filter is CMFL's client-side upload gate (paper Algorithm 1,
// CheckRelevance with the prose semantics: exclude when e(u, ū) < v(t)).
//
// The zero value is unusable; construct with NewFilter. Filter is stateless
// across rounds and safe for concurrent use by multiple clients.
type Filter struct {
	threshold Schedule
	// UseCosine switches to the cosine-relevance ablation metric.
	UseCosine bool
}

// NewFilter builds a CMFL filter with the given relevance-threshold
// schedule.
func NewFilter(threshold Schedule) *Filter {
	return &Filter{threshold: threshold}
}

// Name implements the fl.UploadFilter interface.
func (f *Filter) Name() string {
	if f.UseCosine {
		return "cmfl-cosine"
	}
	return "cmfl"
}

// Check decides whether a local update should be uploaded in round t.
//
// prevGlobal is the previous round's global update (the feedback estimate of
// the current global update, Sec. IV-A). In the very first round there is no
// feedback yet — prevGlobal is all zeros or empty — and every update is
// uploaded, matching the paper's bootstrap.
//
//cmfl:hotpath
func (f *Filter) Check(local, model, prevGlobal []float64, t int) (Decision, error) {
	if AllZero(prevGlobal) {
		return Decision{Upload: true, Metric: 1}, nil
	}
	var (
		rel float64
		err error
	)
	if f.UseCosine {
		rel, err = CosineRelevance(local, prevGlobal)
	} else {
		rel, err = Relevance(local, prevGlobal)
	}
	if err != nil {
		return Decision{}, err
	}
	return Decision{Upload: rel >= f.threshold.At(t), Metric: rel}, nil
}
