package core

import (
	"math"
	"testing"
	"testing/quick"

	"cmfl/internal/xrand"
)

// Property-based suite for the Eq. 9 relevance measure (stdlib testing/quick
// only). Each property is quantified over seeded random update vectors —
// mixed signs, exact zeros, and a wide magnitude range — rather than a
// handful of fixtures, because the filter's correctness argument (paper
// Sec. III-B) is stated as algebraic properties of the measure, not as
// example values.

// randVector draws a length-n vector with positive, negative, and exactly
// zero coordinates, magnitudes spanning several orders.
func randVector(rng *xrand.Stream, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		switch rng.Intn(5) {
		case 0:
			v[i] = 0
		default:
			mag := math.Pow(10, float64(rng.Intn(7)-3)) * (rng.Float64() + 1e-9)
			if rng.Intn(2) == 0 {
				mag = -mag
			}
			v[i] = mag
		}
	}
	return v
}

func quickCfg() *quick.Config { return &quick.Config{MaxCount: 300} }

// TestPropRelevanceRange: e(u, v) ∈ [0, 1] for every same-length pair.
func TestPropRelevanceRange(t *testing.T) {
	f := func(seed int64, lenRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(lenRaw % 64)
		u, v := randVector(rng, n), randVector(rng, n)
		rel, err := Relevance(u, v)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return rel >= 0 && rel <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestPropRelevanceSignFlipSymmetry: flipping the sign of *both* arguments
// leaves the measure unchanged — e(-u, -v) = e(u, v). Agreement is about
// relative direction, so a global reflection is invisible to it.
func TestPropRelevanceSignFlipSymmetry(t *testing.T) {
	f := func(seed int64, lenRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(lenRaw % 64)
		u, v := randVector(rng, n), randVector(rng, n)
		nu, nv := make([]float64, n), make([]float64, n)
		for i := range u {
			nu[i], nv[i] = -u[i], -v[i]
		}
		a, err1 := Relevance(u, v)
		b, err2 := Relevance(nu, nv)
		if err1 != nil || err2 != nil {
			t.Fatalf("unexpected error: %v %v", err1, err2)
		}
		return a == b //cmfl:lint-ignore floateq both sides are exact ratios of the same integers
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestPropRelevanceSelfIsOne: e(u, u) = 1 for every non-empty u — a vector
// fully agrees with itself, zero coordinates included (zero matches zero,
// the "no change" direction).
func TestPropRelevanceSelfIsOne(t *testing.T) {
	f := func(seed int64, lenRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(lenRaw%64) + 1
		u := randVector(rng, n)
		rel, err := Relevance(u, u)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		return rel == 1 //cmfl:lint-ignore floateq matches/len is exactly 1 when all coordinates agree
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestPropRelevanceScaleInvariance: multiplying either argument by positive
// per-coordinate scales leaves the measure unchanged — the property that
// makes Eq. 9 robust to learning-rate and dataset-size skew, unlike a
// magnitude test (paper Sec. III-B).
func TestPropRelevanceScaleInvariance(t *testing.T) {
	f := func(seed int64, lenRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(lenRaw % 64)
		u, v := randVector(rng, n), randVector(rng, n)
		su, sv := make([]float64, n), make([]float64, n)
		for i := range u {
			su[i] = u[i] * (rng.Float64()*100 + 1e-6)
			sv[i] = v[i] * (rng.Float64()*100 + 1e-6)
		}
		a, err1 := Relevance(u, v)
		b, err2 := Relevance(su, sv)
		if err1 != nil || err2 != nil {
			t.Fatalf("unexpected error: %v %v", err1, err2)
		}
		return a == b //cmfl:lint-ignore floateq positive scaling cannot change any sign, so the ratio is identical
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestPropSignAgreementMatchesRelevance: the precomputed-sign fast path is
// exactly Eq. 9 — SignAgreement(u, SignsInto(nil, v)) = Relevance(u, v).
func TestPropSignAgreementMatchesRelevance(t *testing.T) {
	f := func(seed int64, lenRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(lenRaw % 64)
		u, v := randVector(rng, n), randVector(rng, n)
		want, err1 := Relevance(u, v)
		got, err2 := SignAgreement(u, SignsInto(nil, v))
		if err1 != nil || err2 != nil {
			t.Fatalf("unexpected error: %v %v", err1, err2)
		}
		return got == want //cmfl:lint-ignore floateq both paths compute the identical integer ratio
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestPropZeroLengthEdges pins the zero-parameter edge across both paths:
// empty vectors have relevance 0 (nothing aligns, never upload on merit)
// and mismatched lengths fail loudly rather than guessing.
func TestPropZeroLengthEdges(t *testing.T) {
	if rel, err := Relevance(nil, nil); err != nil || rel != 0 {
		t.Fatalf("Relevance(nil, nil) = %v, %v; want 0, nil", rel, err)
	}
	if rel, err := SignAgreement(nil, nil); err != nil || rel != 0 {
		t.Fatalf("SignAgreement(nil, nil) = %v, %v; want 0, nil", rel, err)
	}
	if _, err := Relevance([]float64{1}, nil); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := SignAgreement([]float64{1}, []int8{1, -1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}
