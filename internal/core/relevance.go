// Package core implements the paper's contribution: the CMFL relevance
// metric (Eq. 9), its threshold schedules, and the client-side upload filter
// that excludes irrelevant updates from communication.
//
// An update's relevance against the previous global update is the fraction
// of parameters whose signs agree. A client uploads its local update only if
// the relevance reaches the round's threshold v(t); otherwise it sends a
// tiny skip notification instead of the full gradient vector. Theorem 1 of
// the paper guarantees convergence for decaying η_t and v_t (e.g. both
// ∝ 1/√t), which the InvSqrt schedule provides.
package core

import (
	"errors"
	"math"
)

// ErrLengthMismatch reports that two update vectors being compared have
// different dimensionality.
var ErrLengthMismatch = errors.New("core: update vectors have different lengths")

// Sign returns -1, 0 or +1. Exact zeros are their own sign class: a zero
// coordinate agrees only with another zero ("no change" direction).
func Sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Relevance computes Eq. 9: the fraction of coordinates of local whose sign
// matches the corresponding coordinate of global.
//
// An empty pair of vectors has relevance 0 (nothing aligns). The measure is
// invariant to positive per-coordinate scaling of either argument — the
// property that makes it robust to learning-rate and dataset-size skew,
// unlike Gaia's magnitude test (paper Sec. III-B).
func Relevance(local, global []float64) (float64, error) {
	if len(local) != len(global) {
		return 0, ErrLengthMismatch
	}
	if len(local) == 0 {
		return 0, nil
	}
	matches := 0
	for i, v := range local {
		if Sign(v) == Sign(global[i]) {
			matches++
		}
	}
	return float64(matches) / float64(len(local)), nil
}

// CosineRelevance is an ablation alternative to Eq. 9: the cosine similarity
// between local and global mapped from [-1, 1] to [0, 1] so the same
// thresholds apply. Zero vectors yield 0.5 (no information).
func CosineRelevance(local, global []float64) (float64, error) {
	if len(local) != len(global) {
		return 0, ErrLengthMismatch
	}
	var dot, nl, ng float64
	for i, v := range local {
		dot += v * global[i]
		nl += v * v
		ng += global[i] * global[i]
	}
	//cmfl:lint-ignore floateq exact-zero norm guard against division by zero
	if nl == 0 || ng == 0 {
		return 0.5, nil
	}
	cos := dot / math.Sqrt(nl*ng)
	return (cos + 1) / 2, nil
}

// DeltaUpdate computes Eq. 8: the normalized difference between two
// sequential global updates, ‖next − prev‖ / ‖prev‖. It returns +Inf when
// prev is the zero vector, matching the mathematical definition.
func DeltaUpdate(prev, next []float64) (float64, error) {
	if len(prev) != len(next) {
		return 0, ErrLengthMismatch
	}
	var diff, norm float64
	for i, p := range prev {
		d := next[i] - p
		diff += d * d
		norm += p * p
	}
	//cmfl:lint-ignore floateq exact-zero norm guard: +Inf is the defined result for a zero prev
	if norm == 0 {
		return math.Inf(1), nil
	}
	return math.Sqrt(diff / norm), nil
}
