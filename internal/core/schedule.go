package core

import "math"

// Schedule maps a 1-based round number to a threshold (or learning-rate)
// value. The paper's convergence guarantee (Theorem 1) requires both the
// learning rate and the relevance threshold to decay over time; v_t = v0/√t
// is the concrete choice evaluated in Sec. V.
type Schedule interface {
	// At returns the scheduled value for round t (t >= 1).
	At(t int) float64
}

// Constant is a time-invariant schedule.
type Constant float64

// At implements Schedule.
func (c Constant) At(int) float64 { return float64(c) }

// InvSqrt decays as v0/√t.
type InvSqrt struct {
	V0 float64
}

// At implements Schedule.
func (s InvSqrt) At(t int) float64 {
	if t < 1 {
		t = 1
	}
	return s.V0 / math.Sqrt(float64(t))
}

// Step keeps V0 for the first Warm rounds, then switches to After.
// Useful for ablations that delay filtering until the global direction has
// stabilised.
type Step struct {
	V0    float64
	Warm  int
	After float64
}

// At implements Schedule.
func (s Step) At(t int) float64 {
	if t <= s.Warm {
		return s.V0
	}
	return s.After
}
