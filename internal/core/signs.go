package core

// Precomputed-sign fast path for the relevance check.
//
// Eq. 9 only consumes the signs of the feedback update, yet the feedback is
// shared by every client in a round: recomputing Sign(global[i]) per client
// is O(clients·dim) of redundant work. SignsInto folds the feedback to a
// compact []int8 once per round; SignAgreement then compares a local update
// against it. SignAgreement(local, signs) is exactly Relevance(local, v) for
// signs = SignsInto(nil, v) — a property test pins this.

// SignsInto writes the sign (-1, 0, +1) of every coordinate of v into dst,
// growing dst as needed, and returns the resized slice. Pass dst[:0] (or
// nil) to reuse a buffer across rounds.
//
//cmfl:hotpath
func SignsInto(dst []int8, v []float64) []int8 {
	if cap(dst) < len(v) {
		//cmfl:lint-ignore hotpathalloc amortized grow: runs only when the caller-supplied buffer is too small
		dst = make([]int8, len(v))
	}
	dst = dst[:len(v)]
	for i, x := range v {
		switch {
		case x > 0:
			dst[i] = 1
		case x < 0:
			dst[i] = -1
		default:
			dst[i] = 0
		}
	}
	return dst
}

// SignAgreement computes Eq. 9 against a precomputed feedback sign vector:
// the fraction of coordinates of local whose sign equals signs[i]. It equals
// Relevance(local, v) when signs was built from v.
//
//cmfl:hotpath
func SignAgreement(local []float64, signs []int8) (float64, error) {
	if len(local) != len(signs) {
		return 0, ErrLengthMismatch
	}
	if len(local) == 0 {
		return 0, nil
	}
	matches := 0
	for i, v := range local {
		var s int8
		switch {
		case v > 0:
			s = 1
		case v < 0:
			s = -1
		}
		if s == signs[i] {
			matches++
		}
	}
	return float64(matches) / float64(len(local)), nil
}

// CheckSigns is Filter.Check on the precomputed-sign fast path. Empty signs
// mean "no feedback yet" (bootstrap: always upload). The second return is
// false when this filter cannot use the fast path (cosine ablation needs
// feedback magnitudes) and the caller must fall back to Check.
//
//cmfl:hotpath
func (f *Filter) CheckSigns(local []float64, feedbackSigns []int8, t int) (Decision, bool, error) {
	if f.UseCosine {
		return Decision{}, false, nil
	}
	if len(feedbackSigns) == 0 {
		return Decision{Upload: true, Metric: 1}, true, nil
	}
	rel, err := SignAgreement(local, feedbackSigns)
	if err != nil {
		return Decision{}, true, err
	}
	return Decision{Upload: rel >= f.threshold.At(t), Metric: rel}, true, nil
}

// CheckSigns is AdaptiveFilter.Check on the precomputed-sign fast path.
//
//cmfl:hotpath
func (f *AdaptiveFilter) CheckSigns(local []float64, feedbackSigns []int8, t int) (Decision, bool, error) {
	if len(feedbackSigns) == 0 {
		return Decision{Upload: true, Metric: 1}, true, nil
	}
	rel, err := SignAgreement(local, feedbackSigns)
	if err != nil {
		return Decision{}, true, err
	}
	f.mu.Lock()
	thr := f.threshold
	f.mu.Unlock()
	return Decision{Upload: rel >= thr, Metric: rel}, true, nil
}
