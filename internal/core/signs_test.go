package core

import (
	"math/rand"
	"testing"
)

// randUpdate mixes positive, negative and exact-zero coordinates — zeros are
// their own sign class in Eq. 9, so they must be exercised explicitly.
func randUpdate(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		switch rng.Intn(4) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = -rng.Float64()
		default:
			v[i] = rng.Float64()
		}
	}
	return v
}

// TestSignAgreementMatchesRelevance is the property test of ISSUE 1: the
// precomputed-sign fast path must equal Relevance exactly (same float64,
// not within tolerance — both count integer matches).
func TestSignAgreementMatchesRelevance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		local := randUpdate(rng, n)
		global := randUpdate(rng, n)
		signs := SignsInto(nil, global)

		want, err := Relevance(local, global)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SignAgreement(local, signs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: SignAgreement %v != Relevance %v", trial, got, want)
		}
	}
}

func TestSignsIntoReusesBuffer(t *testing.T) {
	buf := SignsInto(nil, []float64{1, -2, 0, 3})
	want := []int8{1, -1, 0, 1}
	for i, s := range want {
		if buf[i] != s {
			t.Fatalf("signs[%d] = %d, want %d", i, buf[i], s)
		}
	}
	// Shrinking reuse must not reallocate.
	buf2 := SignsInto(buf[:0], []float64{-1, 0})
	if &buf2[0] != &buf[0] {
		t.Fatal("SignsInto reallocated despite sufficient capacity")
	}
	if buf2[0] != -1 || buf2[1] != 0 {
		t.Fatalf("reused signs wrong: %v", buf2)
	}
}

func TestSignAgreementLengthMismatch(t *testing.T) {
	if _, err := SignAgreement([]float64{1, 2}, []int8{1}); err != ErrLengthMismatch {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
	if v, err := SignAgreement(nil, nil); err != nil || v != 0 {
		t.Fatalf("empty vectors: got %v, %v", v, err)
	}
}

// TestCheckSignsMatchesCheck verifies the filter fast path decides exactly
// like the general path, for both the fixed-schedule and adaptive filters,
// including the no-feedback bootstrap.
func TestCheckSignsMatchesCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	filter := NewFilter(Constant(0.5))
	adaptive := NewAdaptiveFilter(0.5, 0.3)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		local := randUpdate(rng, n)
		feedback := randUpdate(rng, n)
		if trial%10 == 0 { // bootstrap rounds: all-zero feedback
			for i := range feedback {
				feedback[i] = 0
			}
		}
		var signs []int8
		if !AllZero(feedback) {
			signs = SignsInto(nil, feedback)
		}
		tRound := 1 + rng.Intn(50)

		want, err := filter.Check(local, nil, feedback, tRound)
		if err != nil {
			t.Fatal(err)
		}
		got, handled, err := filter.CheckSigns(local, signs, tRound)
		if err != nil || !handled {
			t.Fatalf("CheckSigns handled=%v err=%v", handled, err)
		}
		if got != want {
			t.Fatalf("trial %d: CheckSigns %+v != Check %+v", trial, got, want)
		}

		wantA, err := adaptive.Check(local, nil, feedback, tRound)
		if err != nil {
			t.Fatal(err)
		}
		gotA, handled, err := adaptive.CheckSigns(local, signs, tRound)
		if err != nil || !handled {
			t.Fatalf("adaptive CheckSigns handled=%v err=%v", handled, err)
		}
		if gotA != wantA {
			t.Fatalf("trial %d: adaptive CheckSigns %+v != Check %+v", trial, gotA, wantA)
		}
	}

	// The cosine ablation cannot use signs and must report handled=false.
	cos := NewFilter(Constant(0.5))
	cos.UseCosine = true
	if _, handled, _ := cos.CheckSigns([]float64{1}, []int8{1}, 1); handled {
		t.Fatal("cosine filter must decline the sign fast path")
	}
}
