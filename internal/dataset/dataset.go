// Package dataset generates the synthetic workloads used to reproduce the
// paper's four evaluation datasets, and partitions them across federated
// clients with the same non-IID structure the paper relies on.
//
// Real MNIST, Shakespeare, Human-Activity-Recognition and Semeion files are
// not available offline, so each generator builds the closest synthetic
// equivalent (see DESIGN.md §2). The property that matters for CMFL — that
// each client's local gradient is a biased, partially tangential view of the
// collaborative optimum — is reproduced structurally: label-sorted shards
// for MNIST, per-role vocabulary bias for the dialogue corpus, per-client
// mean offsets (with explicit outliers) for HAR.
package dataset

import (
	"fmt"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// Set is a supervised dataset: X's first dimension indexes samples, Y holds
// integer class labels aligned with it.
type Set struct {
	X *tensor.Tensor
	Y []int
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.Y) }

// SampleShape returns the shape of one sample (X's shape without the leading
// sample dimension).
func (s *Set) SampleShape() []int { return s.X.Shape[1:] }

// sampleLen returns the flat length of one sample.
func (s *Set) sampleLen() int { return s.X.Len() / s.Len() }

// Minibatch is a reusable destination for gathered samples. Its buffers are
// grown on demand and reused across GatherInto calls, so steady-state
// training gathers minibatches without allocating.
//
// Aliasing rules: X and Y are owned by the Minibatch and are overwritten by
// the next GatherInto; callers that retain them across gathers must copy.
type Minibatch struct {
	X *tensor.Tensor
	Y []int
}

// GatherInto copies the samples at the given indices into mb, resizing its
// buffers only when capacity is insufficient. This is the single copier
// behind Subset and Batch.
func (s *Set) GatherInto(mb *Minibatch, idx []int) {
	sampleLen := s.sampleLen()
	n := len(idx) * sampleLen
	if mb.X == nil || cap(mb.X.Data) < n {
		mb.X = &tensor.Tensor{Data: make([]float64, n)}
	}
	mb.X.Data = mb.X.Data[:n]
	mb.X.Shape = append(append(mb.X.Shape[:0], len(idx)), s.SampleShape()...)
	if cap(mb.Y) < len(idx) {
		mb.Y = make([]int, len(idx))
	}
	mb.Y = mb.Y[:len(idx)]
	for i, src := range idx {
		copy(mb.X.Data[i*sampleLen:(i+1)*sampleLen], s.X.Data[src*sampleLen:(src+1)*sampleLen])
		mb.Y[i] = s.Y[src]
	}
}

// Subset copies the samples at the given indices into a new Set.
func (s *Set) Subset(idx []int) *Set {
	var mb Minibatch
	s.GatherInto(&mb, idx)
	return &Set{X: mb.X, Y: mb.Y}
}

// Batch copies samples [lo, hi) into a fresh (X, Y) minibatch. Hot paths
// that only read the batch should prefer BatchView, which does not copy.
func (s *Set) Batch(lo, hi int) (*tensor.Tensor, []int) {
	sampleLen := s.sampleLen()
	shape := append([]int{hi - lo}, s.SampleShape()...)
	x := tensor.New(shape...)
	copy(x.Data, s.X.Data[lo*sampleLen:hi*sampleLen])
	y := make([]int, hi-lo)
	copy(y, s.Y[lo:hi])
	return x, y
}

// BatchView returns samples [lo, hi) as zero-copy views: the tensor shares
// s.X's backing array and the label slice aliases s.Y. Callers must treat
// both as read-only and must not retain them past mutations of s.
func (s *Set) BatchView(lo, hi int) (*tensor.Tensor, []int) {
	sampleLen := s.sampleLen()
	shape := append([]int{hi - lo}, s.SampleShape()...)
	return tensor.FromSlice(s.X.Data[lo*sampleLen:hi*sampleLen], shape...), s.Y[lo:hi]
}

// Shuffled returns a copy of the set with sample order permuted by rng.
func (s *Set) Shuffled(rng *xrand.Stream) *Set {
	return s.Subset(rng.Perm(s.Len()))
}

// Merge concatenates several sets with identical sample shapes.
func Merge(sets []*Set) *Set {
	if len(sets) == 0 {
		return &Set{X: tensor.New(0), Y: nil}
	}
	total := 0
	for _, s := range sets {
		total += s.Len()
	}
	shape := append([]int{total}, sets[0].SampleShape()...)
	out := &Set{X: tensor.New(shape...), Y: make([]int, 0, total)}
	off := 0
	for _, s := range sets {
		copy(out.X.Data[off:], s.X.Data)
		off += s.X.Len()
		out.Y = append(out.Y, s.Y...)
	}
	return out
}

// SortedShards partitions a dataset across clients the way the paper
// prepares MNIST: samples are sorted by label, cut into
// clients×shardsPerClient contiguous shards, and each client receives
// shardsPerClient shards chosen at random. With shardsPerClient=2 most
// clients see only one or two digit classes — a strongly non-IID split.
func SortedShards(s *Set, clients, shardsPerClient int, rng *xrand.Stream) ([]*Set, error) {
	n := s.Len()
	totalShards := clients * shardsPerClient
	if totalShards == 0 || n < totalShards {
		return nil, fmt.Errorf("dataset: cannot cut %d samples into %d shards", n, totalShards)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Stable sort by label, preserving generation order within a class.
	byLabel := make([][]int, 0)
	maxLabel := 0
	for _, y := range s.Y {
		if y > maxLabel {
			maxLabel = y
		}
	}
	byLabel = make([][]int, maxLabel+1)
	for i, y := range s.Y {
		byLabel[y] = append(byLabel[y], i)
	}
	order = order[:0]
	for _, idx := range byLabel {
		order = append(order, idx...)
	}

	shardSize := n / totalShards
	shardOrder := rng.Perm(totalShards)
	out := make([]*Set, clients)
	for c := 0; c < clients; c++ {
		var idx []int
		for s2 := 0; s2 < shardsPerClient; s2++ {
			shard := shardOrder[c*shardsPerClient+s2]
			idx = append(idx, order[shard*shardSize:(shard+1)*shardSize]...)
		}
		out[c] = s.Subset(idx)
	}
	return out, nil
}

// CorruptLabels replaces the given fraction of s's labels with uniform
// random classes in [0, classes), in place. It models outlier clients whose
// updates are tangential to the collaborative optimum: real federated
// populations contain such clients (the paper finds 37 of 142 HAR clients
// account for 84.5% of CMFL's eliminations), while clean synthetic data
// would not.
func CorruptLabels(s *Set, fraction float64, classes int, rng *xrand.Stream) {
	if fraction <= 0 || classes <= 0 {
		return
	}
	for i := range s.Y {
		if rng.Float64() < fraction {
			s.Y[i] = rng.Intn(classes)
		}
	}
}

// IIDSplit partitions a dataset uniformly at random into equal client sets,
// used as a control in ablations.
func IIDSplit(s *Set, clients int, rng *xrand.Stream) ([]*Set, error) {
	if clients <= 0 || s.Len() < clients {
		return nil, fmt.Errorf("dataset: cannot split %d samples across %d clients", s.Len(), clients)
	}
	perm := rng.Perm(s.Len())
	per := s.Len() / clients
	out := make([]*Set, clients)
	for c := 0; c < clients; c++ {
		out[c] = s.Subset(perm[c*per : (c+1)*per])
	}
	return out, nil
}
