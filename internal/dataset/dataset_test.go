package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"cmfl/internal/xrand"
)

func TestSubsetCopies(t *testing.T) {
	s, err := Digits(DigitsConfig{Samples: 20, ImageSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subset([]int{3, 7})
	if sub.Len() != 2 {
		t.Fatalf("Subset Len = %d, want 2", sub.Len())
	}
	if sub.Y[0] != s.Y[3] || sub.Y[1] != s.Y[7] {
		t.Fatalf("Subset labels = %v, want [%d %d]", sub.Y, s.Y[3], s.Y[7])
	}
	sub.X.Data[0] = 99
	if s.X.Data[3*100] == 99 {
		t.Fatal("Subset must copy, not alias")
	}
}

func TestBatchContents(t *testing.T) {
	s, err := Digits(DigitsConfig{Samples: 10, ImageSize: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x, y := s.Batch(2, 5)
	if x.Dim(0) != 3 || len(y) != 3 {
		t.Fatalf("Batch size = %d/%d, want 3", x.Dim(0), len(y))
	}
	for i := 0; i < 3; i++ {
		if y[i] != s.Y[2+i] {
			t.Fatalf("Batch label %d = %d, want %d", i, y[i], s.Y[2+i])
		}
	}
}

func TestMergePreservesCount(t *testing.T) {
	a, _ := Digits(DigitsConfig{Samples: 10, ImageSize: 8, Seed: 1})
	b, _ := Digits(DigitsConfig{Samples: 14, ImageSize: 8, Seed: 2})
	m := Merge([]*Set{a, b})
	if m.Len() != 24 {
		t.Fatalf("Merge Len = %d, want 24", m.Len())
	}
	if m.Y[10] != b.Y[0] {
		t.Fatalf("Merge misaligned labels")
	}
}

func TestSortedShardsNonIID(t *testing.T) {
	s, err := Digits(DigitsConfig{Samples: 1000, ImageSize: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	clients, err := SortedShards(s, 50, 2, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != 50 {
		t.Fatalf("clients = %d, want 50", len(clients))
	}
	// Each client should see at most ~3 distinct labels (2 shards, shard
	// boundaries may straddle one label change each).
	for c, cs := range clients {
		seen := map[int]bool{}
		for _, y := range cs.Y {
			seen[y] = true
		}
		if len(seen) > 4 {
			t.Fatalf("client %d sees %d labels; sorted sharding should be non-IID", c, len(seen))
		}
	}
}

func TestSortedShardsCoversAllLabels(t *testing.T) {
	s, _ := Digits(DigitsConfig{Samples: 1000, ImageSize: 8, Seed: 1})
	clients, err := SortedShards(s, 20, 2, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, cs := range clients {
		for _, y := range cs.Y {
			seen[y] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("union of client labels = %d classes, want 10", len(seen))
	}
}

func TestSortedShardsErrors(t *testing.T) {
	s, _ := Digits(DigitsConfig{Samples: 10, ImageSize: 8, Seed: 1})
	if _, err := SortedShards(s, 100, 2, xrand.New(1)); err == nil {
		t.Fatal("expected error when shards exceed samples")
	}
}

func TestIIDSplitBalanced(t *testing.T) {
	s, _ := Digits(DigitsConfig{Samples: 1000, ImageSize: 8, Seed: 1})
	clients, err := IIDSplit(s, 10, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for c, cs := range clients {
		if cs.Len() != 100 {
			t.Fatalf("client %d has %d samples, want 100", c, cs.Len())
		}
		seen := map[int]bool{}
		for _, y := range cs.Y {
			seen[y] = true
		}
		if len(seen) < 8 {
			t.Fatalf("IID client %d sees only %d labels", c, len(seen))
		}
	}
}

func TestDigitsLabelsBalanced(t *testing.T) {
	s, err := Digits(DigitsConfig{Samples: 1000, ImageSize: 12, Noise: 0.1, MaxShift: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for _, y := range s.Y {
		counts[y]++
	}
	for d, c := range counts {
		if c != 100 {
			t.Fatalf("digit %d has %d samples, want 100", d, c)
		}
	}
}

func TestDigitsClassesAreSeparable(t *testing.T) {
	// Mean image of class 1 (two vertical strokes) must differ from class 8
	// (all segments) by a wide margin in pixel mass.
	s, err := Digits(DigitsConfig{Samples: 500, ImageSize: 12, Noise: 0.1, MaxShift: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mass := func(label int) float64 {
		var sum float64
		var n int
		size := 144
		for i, y := range s.Y {
			if y != label {
				continue
			}
			for _, v := range s.X.Data[i*size : (i+1)*size] {
				sum += v
			}
			n++
		}
		return sum / float64(n)
	}
	if m1, m8 := mass(1), mass(8); m8 < 1.5*m1 {
		t.Fatalf("digit 8 mass %v should far exceed digit 1 mass %v", m8, m1)
	}
}

func TestDigitsDeterministic(t *testing.T) {
	cfg := DigitsConfig{Samples: 50, ImageSize: 10, Noise: 0.2, MaxShift: 1, Seed: 5}
	a, _ := Digits(cfg)
	b, _ := Digits(cfg)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same-seed digit sets differ")
		}
	}
}

func TestDigitsInvalidConfig(t *testing.T) {
	if _, err := Digits(DigitsConfig{Samples: 0, ImageSize: 10}); err == nil {
		t.Fatal("expected error for zero samples")
	}
	if _, err := Digits(DigitsConfig{Samples: 10, ImageSize: 4}); err == nil {
		t.Fatal("expected error for tiny image")
	}
}

func TestSemeionShapeAndLabels(t *testing.T) {
	s, err := Semeion(SemeionConfig{Samples: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.X.Dim(1) != 256 {
		t.Fatalf("Semeion feature dim = %d, want 256", s.X.Dim(1))
	}
	pos := 0
	for _, y := range s.Y {
		if y != 0 && y != 1 {
			t.Fatalf("Semeion label %d outside {0,1}", y)
		}
		pos += y
	}
	if pos == 0 || pos == s.Len() {
		t.Fatalf("Semeion labels degenerate: %d positives of %d", pos, s.Len())
	}
	for _, v := range s.X.Data {
		if v != 0 && v != 1 {
			t.Fatalf("Semeion feature %v not binary", v)
		}
	}
}

func TestDialogueStructure(t *testing.T) {
	cfg := DefaultDialogueConfig()
	cfg.Roles = 5
	cfg.SamplesPerRole = 20
	d, err := GenerateDialogue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Clients) != 5 {
		t.Fatalf("roles = %d, want 5", len(d.Clients))
	}
	for r, set := range d.Clients {
		if set.Len() != 20 {
			t.Fatalf("role %d has %d samples, want 20", r, set.Len())
		}
		if set.X.Dim(1) != cfg.Window {
			t.Fatalf("window = %d, want %d", set.X.Dim(1), cfg.Window)
		}
		for _, id := range set.X.Data {
			if id < 0 || int(id) >= cfg.Vocab {
				t.Fatalf("word id %v outside vocab", id)
			}
		}
		for _, y := range set.Y {
			if y < 0 || y >= cfg.Vocab {
				t.Fatalf("label %d outside vocab", y)
			}
		}
	}
}

func TestDialogueWindowsAreConsecutive(t *testing.T) {
	cfg := DefaultDialogueConfig()
	cfg.Roles = 2
	cfg.SamplesPerRole = 10
	d, err := GenerateDialogue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sample i's window shifted by one must equal sample i+1's window prefix.
	set := d.Clients[0]
	w := cfg.Window
	for i := 0; i+1 < set.Len(); i++ {
		for j := 0; j+1 < w; j++ {
			if set.X.Data[i*w+j+1] != set.X.Data[(i+1)*w+j] {
				t.Fatalf("windows %d and %d are not consecutive slices", i, i+1)
			}
		}
		if float64(set.Y[i]) != set.X.Data[(i+1)*w+w-1] {
			t.Fatalf("label of window %d should be last word of window %d", i, i+1)
		}
	}
}

func TestDialogueRolesDiffer(t *testing.T) {
	cfg := DefaultDialogueConfig()
	cfg.Roles = 2
	cfg.SamplesPerRole = 50
	d, err := GenerateDialogue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Word histograms of two roles should differ substantially.
	hist := func(s *Set) []float64 {
		h := make([]float64, cfg.Vocab)
		for _, id := range s.X.Data {
			h[int(id)]++
		}
		total := float64(len(s.X.Data))
		for i := range h {
			h[i] /= total
		}
		return h
	}
	h0, h1 := hist(d.Clients[0]), hist(d.Clients[1])
	var l1 float64
	for i := range h0 {
		diff := h0[i] - h1[i]
		if diff < 0 {
			diff = -diff
		}
		l1 += diff
	}
	if l1 < 0.3 {
		t.Fatalf("role word distributions too similar (L1=%v); non-IIDness lost", l1)
	}
}

func TestGenerateHARStructure(t *testing.T) {
	cfg := DefaultHARConfig()
	cfg.Clients = 20
	cfg.Outliers = 5
	cfg.Features = 30
	h, err := GenerateHAR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Clients) != 20 || len(h.OutlierIdx) != 5 {
		t.Fatalf("clients/outliers = %d/%d, want 20/5", len(h.Clients), len(h.OutlierIdx))
	}
	for c, set := range h.Clients {
		if set.Len() < cfg.MinSamples || set.Len() > cfg.MaxSamples {
			t.Fatalf("client %d has %d samples outside [%d,%d]", c, set.Len(), cfg.MinSamples, cfg.MaxSamples)
		}
	}
}

func TestGenerateHARInvalid(t *testing.T) {
	cfg := DefaultHARConfig()
	cfg.Outliers = cfg.Clients + 1
	if _, err := GenerateHAR(cfg); err == nil {
		t.Fatal("expected error for outliers > clients")
	}
	cfg = DefaultHARConfig()
	cfg.MaxSamples = cfg.MinSamples - 1
	if _, err := GenerateHAR(cfg); err == nil {
		t.Fatal("expected error for inverted sample bounds")
	}
}

func TestSplitClientsRespectsBounds(t *testing.T) {
	s, _ := Semeion(SemeionConfig{Samples: 1593, Seed: 7})
	clients, err := SplitClients(s, 15, 10, 200, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c, cs := range clients {
		if cs.Len() < 10 {
			t.Fatalf("client %d has %d < 10 samples", c, cs.Len())
		}
		total += cs.Len()
	}
	if total > s.Len() {
		t.Fatalf("split produced %d samples from %d", total, s.Len())
	}
}

func TestSplitClientsErrors(t *testing.T) {
	s, _ := Semeion(SemeionConfig{Samples: 50, Seed: 8})
	if _, err := SplitClients(s, 10, 10, 20, xrand.New(1)); err == nil {
		t.Fatal("expected error when samples cannot cover minimums")
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		s, err := Digits(DigitsConfig{Samples: 30, ImageSize: 8, Seed: 1})
		if err != nil {
			return false
		}
		sh := s.Shuffled(xrand.New(seed))
		counts := map[int]int{}
		for _, y := range s.Y {
			counts[y]++
		}
		for _, y := range sh.Y {
			counts[y]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterDigitsStructure(t *testing.T) {
	cfg := DefaultWriterDigitsConfig()
	clients, extreme, err := WriterDigits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != cfg.Clients || len(extreme) != cfg.ExtremeWriters {
		t.Fatalf("clients/extreme = %d/%d", len(clients), len(extreme))
	}
	for c, set := range clients {
		if set.Len() != cfg.SamplesPerClient {
			t.Fatalf("writer %d has %d samples", c, set.Len())
		}
		labels := map[int]bool{}
		for _, y := range set.Y {
			labels[y] = true
		}
		if len(labels) > cfg.ClassesPerClient {
			t.Fatalf("writer %d sees %d classes, want <= %d", c, len(labels), cfg.ClassesPerClient)
		}
	}
}

func TestWriterDigitsExtremeStylesDiffer(t *testing.T) {
	cfg := DefaultWriterDigitsConfig()
	clients, extreme, err := WriterDigits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	isExtreme := map[int]bool{}
	for _, c := range extreme {
		isExtreme[c] = true
	}
	// Extreme writers are feature-space outliers: their mean image must sit
	// farther from the population mean image than normal writers'.
	size := clients[0].X.Len() / clients[0].Len()
	meanImage := func(set *Set) []float64 {
		m := make([]float64, size)
		for i := 0; i < set.Len(); i++ {
			for j, v := range set.X.Data[i*size : (i+1)*size] {
				m[j] += v
			}
		}
		for j := range m {
			m[j] /= float64(set.Len())
		}
		return m
	}
	means := make([][]float64, len(clients))
	global := make([]float64, size)
	for c, set := range clients {
		means[c] = meanImage(set)
		for j, v := range means[c] {
			global[j] += v / float64(len(clients))
		}
	}
	dist := func(m []float64) float64 {
		var s float64
		for j := range m {
			d := m[j] - global[j]
			s += d * d
		}
		return math.Sqrt(s)
	}
	var ext, norm float64
	var ne, nn2 int
	for c := range clients {
		if isExtreme[c] {
			ext += dist(means[c])
			ne++
		} else {
			norm += dist(means[c])
			nn2++
		}
	}
	if ext/float64(ne) <= norm/float64(nn2) {
		t.Fatalf("extreme writers' mean-image distance %.3f should exceed normal %.3f",
			ext/float64(ne), norm/float64(nn2))
	}
}

func TestWriterDigitsInvalid(t *testing.T) {
	cfg := DefaultWriterDigitsConfig()
	cfg.ExtremeWriters = cfg.Clients + 1
	if _, _, err := WriterDigits(cfg); err == nil {
		t.Fatal("expected error for too many extreme writers")
	}
	cfg = DefaultWriterDigitsConfig()
	cfg.Clients = 0
	if _, _, err := WriterDigits(cfg); err == nil {
		t.Fatal("expected error for zero clients")
	}
}
