package dataset

import (
	"fmt"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// DialogueConfig controls the synthetic multi-role dialogue corpus that
// stands in for the Shakespeare next-word-prediction workload. Each client
// is one speaking role; roles share a vocabulary and a global bigram
// language model but strongly prefer their own favoured words, which makes
// the per-client next-word gradients non-IID exactly as in the paper.
type DialogueConfig struct {
	Roles           int     // number of speaking roles (= clients)
	Vocab           int     // vocabulary size (paper: 1675)
	Window          int     // input length in words (paper: 10)
	SamplesPerRole  int     // next-word samples generated per role
	FavoredPerRole  int     // how many words each role favours
	FavoredBoost    float64 // multiplicative preference for favoured words
	BranchesPerWord int     // candidate successors per word in the global bigram
	Seed            int64
}

// DefaultDialogueConfig is the scaled-down Shakespeare stand-in.
func DefaultDialogueConfig() DialogueConfig {
	return DialogueConfig{
		Roles:           30,
		Vocab:           150,
		Window:          10,
		SamplesPerRole:  40,
		FavoredPerRole:  20,
		FavoredBoost:    6,
		BranchesPerWord: 8,
		Seed:            3,
	}
}

// Dialogue holds the generated corpus: one Set per role plus the shared
// vocabulary size.
type Dialogue struct {
	Clients []*Set
	Vocab   int
	Window  int
}

// All merges every role's samples into one Set (used for server-side
// evaluation of the global model).
func (d *Dialogue) All() *Set { return Merge(d.Clients) }

// GenerateDialogue builds the synthetic next-word corpus. Each sample is a
// Window-length sequence of word ids (X row, stored as float64 ids) and the
// id of the following word (label).
func GenerateDialogue(cfg DialogueConfig) (*Dialogue, error) {
	if cfg.Roles <= 0 || cfg.Vocab < 10 || cfg.Window < 2 || cfg.SamplesPerRole <= 0 {
		return nil, fmt.Errorf("dataset: invalid dialogue config %+v", cfg)
	}
	gRng := xrand.Derive(cfg.Seed, "dialogue-global", 0)

	// Global bigram model: each word has BranchesPerWord candidate
	// successors with random positive weights. All roles share it.
	succ := make([][]int, cfg.Vocab)
	succW := make([][]float64, cfg.Vocab)
	for w := 0; w < cfg.Vocab; w++ {
		succ[w] = make([]int, cfg.BranchesPerWord)
		succW[w] = make([]float64, cfg.BranchesPerWord)
		for b := 0; b < cfg.BranchesPerWord; b++ {
			succ[w][b] = gRng.Intn(cfg.Vocab)
			succW[w][b] = 0.2 + gRng.Float64()
		}
	}

	d := &Dialogue{Clients: make([]*Set, cfg.Roles), Vocab: cfg.Vocab, Window: cfg.Window}
	for r := 0; r < cfg.Roles; r++ {
		rRng := xrand.Derive(cfg.Seed, "dialogue-role", r)
		favored := make(map[int]bool, cfg.FavoredPerRole)
		for len(favored) < cfg.FavoredPerRole {
			favored[rRng.Intn(cfg.Vocab)] = true
		}
		n := cfg.SamplesPerRole
		set := &Set{X: tensor.New(n, cfg.Window), Y: make([]int, n)}
		// Generate one long role-specific stream and slice windows from it.
		streamLen := n + cfg.Window
		words := make([]int, streamLen)
		words[0] = rRng.Intn(cfg.Vocab)
		weights := make([]float64, cfg.BranchesPerWord)
		for i := 1; i < streamLen; i++ {
			prev := words[i-1]
			for b, cand := range succ[prev] {
				w := succW[prev][b]
				if favored[cand] {
					w *= cfg.FavoredBoost
				}
				weights[b] = w
			}
			words[i] = succ[prev][rRng.Categorical(weights)]
		}
		for i := 0; i < n; i++ {
			row := set.X.Data[i*cfg.Window : (i+1)*cfg.Window]
			for j := 0; j < cfg.Window; j++ {
				row[j] = float64(words[i+j])
			}
			set.Y[i] = words[i+cfg.Window]
		}
		d.Clients[r] = set
	}
	return d, nil
}
