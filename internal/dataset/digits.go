package dataset

import (
	"fmt"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// DigitsConfig controls the synthetic handwritten-digit generator that
// stands in for MNIST (and, binarised at 16×16, for Semeion).
type DigitsConfig struct {
	Samples   int     // total samples
	ImageSize int     // square image side
	Noise     float64 // stddev of additive pixel noise
	MaxShift  int     // max |translation| jitter in pixels
	Seed      int64
}

// DefaultDigitsConfig is the scaled-down MNIST stand-in.
func DefaultDigitsConfig() DigitsConfig {
	return DigitsConfig{Samples: 2000, ImageSize: 14, Noise: 0.15, MaxShift: 1, Seed: 1}
}

// segment encodes one stroke of a seven-segment digit glyph in unit
// coordinates (0..1 across the glyph's bounding box).
type segment struct{ x0, y0, x1, y1 float64 }

// Seven-segment layout: A top, B upper-right, C lower-right, D bottom,
// E lower-left, F upper-left, G middle.
var segments = map[byte]segment{
	'A': {0.15, 0.1, 0.85, 0.1},
	'B': {0.85, 0.1, 0.85, 0.5},
	'C': {0.85, 0.5, 0.85, 0.9},
	'D': {0.15, 0.9, 0.85, 0.9},
	'E': {0.15, 0.5, 0.15, 0.9},
	'F': {0.15, 0.1, 0.15, 0.5},
	'G': {0.15, 0.5, 0.85, 0.5},
}

// digitSegments maps each digit to its lit segments (standard 7-segment).
var digitSegments = [10]string{
	0: "ABCDEF",
	1: "BC",
	2: "ABGED",
	3: "ABGCD",
	4: "FGBC",
	5: "AFGCD",
	6: "AFGECD",
	7: "ABC",
	8: "ABCDEFG",
	9: "ABCDFG",
}

// Digits generates a synthetic digit-classification dataset with labels 0-9.
// Each sample is a jittered, noisy seven-segment rendering of its digit, so
// class structure is learnable but samples within a class vary.
func Digits(cfg DigitsConfig) (*Set, error) {
	if cfg.Samples <= 0 || cfg.ImageSize < 8 {
		return nil, fmt.Errorf("dataset: invalid digits config %+v", cfg)
	}
	rng := xrand.Derive(cfg.Seed, "digits", 0)
	s := cfg.ImageSize
	set := &Set{X: tensor.New(cfg.Samples, 1, s, s), Y: make([]int, cfg.Samples)}
	for i := 0; i < cfg.Samples; i++ {
		d := i % 10
		set.Y[i] = d
		img := set.X.Data[i*s*s : (i+1)*s*s]
		renderDigit(img, s, d, cfg, rng)
	}
	return set, nil
}

func renderDigit(img []float64, s, digit int, cfg DigitsConfig, rng *xrand.Stream) {
	dx, dy := 0, 0
	if cfg.MaxShift > 0 {
		dx = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		dy = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
	}
	intensity := 0.8 + 0.2*rng.Float64()
	// Per-sample slight skew of the glyph box.
	scale := 0.85 + 0.1*rng.Float64()
	for _, name := range []byte(digitSegments[digit]) {
		seg := segments[name]
		drawLine(img, s, seg, dx, dy, scale, intensity)
	}
	if cfg.Noise > 0 {
		for j := range img {
			img[j] += cfg.Noise * rng.Norm()
			if img[j] < 0 {
				img[j] = 0
			}
			if img[j] > 1.5 {
				img[j] = 1.5
			}
		}
	}
}

// drawLine rasterises a unit-coordinate segment onto the image with simple
// supersampling along the stroke.
func drawLine(img []float64, s int, seg segment, dx, dy int, scale, intensity float64) {
	steps := 2 * s
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		x := seg.x0 + t*(seg.x1-seg.x0)
		y := seg.y0 + t*(seg.y1-seg.y0)
		px := int(x*scale*float64(s-1)) + dx
		py := int(y*scale*float64(s-1)) + dy
		if px < 0 || px >= s || py < 0 || py >= s {
			continue
		}
		idx := py*s + px
		if img[idx] < intensity {
			img[idx] = intensity
		}
	}
}

// SemeionConfig controls the Semeion stand-in: 16×16 binarised digit images
// flattened to 256 features, with a binary label (digit 0 vs. the rest), as
// in the paper's one-vs-rest task.
type SemeionConfig struct {
	Samples int
	// FlipProb flips each binary pixel with this probability after
	// binarisation, controlling task difficulty (0 = clean).
	FlipProb float64
	Seed     int64
}

// DefaultSemeionConfig mirrors the paper's dataset size (1593 samples).
func DefaultSemeionConfig() SemeionConfig { return SemeionConfig{Samples: 1593, Seed: 2} }

// Semeion generates the binarised 256-feature digit dataset. Labels are
// 1 for digit zero, 0 otherwise.
func Semeion(cfg SemeionConfig) (*Set, error) {
	digits, err := Digits(DigitsConfig{
		Samples:   cfg.Samples,
		ImageSize: 16,
		Noise:     0.25,
		MaxShift:  1,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	const dim = 256
	flip := xrand.Derive(cfg.Seed, "semeion-flip", 0)
	out := &Set{X: tensor.New(cfg.Samples, dim), Y: make([]int, cfg.Samples)}
	for i := 0; i < cfg.Samples; i++ {
		src := digits.X.Data[i*dim : (i+1)*dim]
		dst := out.X.Data[i*dim : (i+1)*dim]
		for j, v := range src {
			if v > 0.5 {
				dst[j] = 1
			}
			if cfg.FlipProb > 0 && flip.Float64() < cfg.FlipProb {
				dst[j] = 1 - dst[j]
			}
		}
		if digits.Y[i] == 0 {
			out.Y[i] = 1
		}
	}
	return out, nil
}
