package dataset

import (
	"fmt"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// HARConfig controls the Human-Activity-Recognition stand-in: a binary task
// ("sitting" vs. all other activities) over 561-dimensional feature vectors,
// split across clients with 10-100 samples each. A configurable subset of
// clients are *outliers* whose personal feature offset is much larger — the
// population structure the paper observes empirically in Fig. 6 (37 of 142
// clients account for 84.5% of CMFL's eliminated updates).
type HARConfig struct {
	Clients       int
	Outliers      int     // number of clients with large personal offsets
	Features      int     // paper: 561
	MinSamples    int     // per client (paper: 10)
	MaxSamples    int     // per client (paper: 100)
	ClassSep      float64 // distance between the two class means
	PersonalScale float64 // offset stddev for normal clients
	OutlierScale  float64 // offset stddev for outlier clients
	Seed          int64
}

// DefaultHARConfig mirrors the paper's 142-client HAR setup.
func DefaultHARConfig() HARConfig {
	return HARConfig{
		Clients:       142,
		Outliers:      37,
		Features:      561,
		MinSamples:    10,
		MaxSamples:    100,
		ClassSep:      2.0,
		PersonalScale: 0.25,
		OutlierScale:  1.6,
		Seed:          4,
	}
}

// HAR holds the generated per-client activity data and which clients were
// constructed as outliers (ground truth for validating Fig. 6).
type HAR struct {
	Clients    []*Set
	OutlierIdx []int
}

// All merges every client's samples.
func (h *HAR) All() *Set { return Merge(h.Clients) }

// GenerateHAR builds the synthetic activity-recognition federation.
// Label 1 = sitting, 0 = other activities (roughly 1/3 positives).
func GenerateHAR(cfg HARConfig) (*HAR, error) {
	if cfg.Clients <= 0 || cfg.Outliers < 0 || cfg.Outliers > cfg.Clients || cfg.Features <= 0 {
		return nil, fmt.Errorf("dataset: invalid HAR config %+v", cfg)
	}
	if cfg.MinSamples <= 0 || cfg.MaxSamples < cfg.MinSamples {
		return nil, fmt.Errorf("dataset: invalid HAR sample bounds [%d, %d]", cfg.MinSamples, cfg.MaxSamples)
	}
	gRng := xrand.Derive(cfg.Seed, "har-global", 0)
	d := cfg.Features
	// Shared population structure: a base mean and a class-separation
	// direction. Normal clients separate their two classes along (a lightly
	// perturbed copy of) the shared direction; outlier clients separate
	// along a mostly independent direction, which makes their hinge-loss
	// gradients tangential to the collaborative optimum — the behaviour the
	// paper observes for the 37 heavy-skip HAR clients (Fig. 6).
	base := gRng.NormVec(d, 0, 1)
	sharedDir := unit(gRng.NormVec(d, 0, 1))

	outliers := gRng.Perm(cfg.Clients)[:cfg.Outliers]
	isOutlier := make([]bool, cfg.Clients)
	for _, c := range outliers {
		isOutlier[c] = true
	}

	h := &HAR{Clients: make([]*Set, cfg.Clients), OutlierIdx: append([]int(nil), outliers...)}
	for c := 0; c < cfg.Clients; c++ {
		rng := xrand.Derive(cfg.Seed, "har-client", c)
		dir := make([]float64, d)
		if isOutlier[c] {
			// Mostly independent separation direction.
			indep := rng.NormVec(d, 0, 1)
			for j := range dir {
				dir[j] = 0.2*sharedDir[j] + indep[j]
			}
		} else {
			perturb := rng.NormVec(d, 0, cfg.PersonalScale)
			for j := range dir {
				dir[j] = sharedDir[j] + perturb[j]/float64(4)
			}
		}
		dir = unit(dir)
		scale := cfg.PersonalScale
		if isOutlier[c] {
			scale = cfg.OutlierScale
		}
		offset := rng.NormVec(d, 0, scale)
		n := cfg.MinSamples + rng.Intn(cfg.MaxSamples-cfg.MinSamples+1)
		set := &Set{X: tensor.New(n, d), Y: make([]int, n)}
		for i := 0; i < n; i++ {
			sign := -1.0
			if rng.Float64() < 0.35 {
				set.Y[i] = 1
				sign = 1.0
			}
			row := set.X.Data[i*d : (i+1)*d]
			for j := 0; j < d; j++ {
				row[j] = base[j] + offset[j] + sign*cfg.ClassSep/2*dir[j] + 0.5*rng.Norm()
			}
		}
		h.Clients[c] = set
	}
	return h, nil
}

// unit normalises v to Euclidean length 1 in place and returns it.
func unit(v []float64) []float64 {
	n := tensor.Norm2(v)
	//cmfl:lint-ignore floateq exact-zero norm guard against division by zero
	if n == 0 {
		return v
	}
	for j := range v {
		v[j] /= n
	}
	return v
}

// SplitClients partitions an arbitrary Set across clients with random sizes
// drawn uniformly from [minSamples, maxSamples], sampling without
// replacement until the pool is exhausted. Used for the Semeion federation
// (paper: 15 clients with 10-200 samples each).
func SplitClients(s *Set, clients, minSamples, maxSamples int, rng *xrand.Stream) ([]*Set, error) {
	if clients <= 0 || minSamples <= 0 || maxSamples < minSamples {
		return nil, fmt.Errorf("dataset: invalid split parameters clients=%d min=%d max=%d", clients, minSamples, maxSamples)
	}
	if s.Len() < clients*minSamples {
		return nil, fmt.Errorf("dataset: %d samples cannot give %d clients at least %d each", s.Len(), clients, minSamples)
	}
	perm := rng.Perm(s.Len())
	out := make([]*Set, clients)
	pos := 0
	for c := 0; c < clients; c++ {
		remaining := s.Len() - pos
		clientsLeft := clients - c
		maxTake := remaining - (clientsLeft-1)*minSamples
		take := minSamples + rng.Intn(maxSamples-minSamples+1)
		if take > maxTake {
			take = maxTake
		}
		out[c] = s.Subset(perm[pos : pos+take])
		pos += take
	}
	return out, nil
}
