package dataset

import (
	"fmt"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// WriterDigitsConfig generates a federation where each client is one
// "writer" with a personal rendering style — the feature-level non-IIDness
// of real handwriting datasets (FEMNIST-style), complementary to the
// label-shard split the paper uses. Style parameters (glyph scale, stroke
// intensity, offset bias, noise level) are drawn once per client; a
// configurable subset of writers get extreme styles and act as natural
// outliers without any label corruption.
type WriterDigitsConfig struct {
	Clients          int
	SamplesPerClient int
	ImageSize        int
	// ClassesPerClient limits each writer's label support (0 = all ten
	// digits), composing writer style with label skew.
	ClassesPerClient int
	// ExtremeWriters is the number of clients with far-out styles.
	ExtremeWriters int
	Seed           int64
}

// DefaultWriterDigitsConfig is a moderate 20-writer federation.
func DefaultWriterDigitsConfig() WriterDigitsConfig {
	return WriterDigitsConfig{
		Clients:          20,
		SamplesPerClient: 30,
		ImageSize:        12,
		ClassesPerClient: 4,
		ExtremeWriters:   4,
		Seed:             8,
	}
}

// writerStyle is one client's rendering personality.
type writerStyle struct {
	scale     float64 // glyph size multiplier
	intensity float64 // stroke brightness
	noise     float64 // additive noise stddev
	shift     int     // max translation jitter
}

// WriterDigits generates the per-writer federation. It returns the client
// shards and the indices of the extreme-style writers.
func WriterDigits(cfg WriterDigitsConfig) (clients []*Set, extremeIdx []int, err error) {
	if cfg.Clients <= 0 || cfg.SamplesPerClient <= 0 || cfg.ImageSize < 8 {
		return nil, nil, fmt.Errorf("dataset: invalid writer config %+v", cfg)
	}
	if cfg.ExtremeWriters < 0 || cfg.ExtremeWriters > cfg.Clients {
		return nil, nil, fmt.Errorf("dataset: %d extreme writers of %d clients", cfg.ExtremeWriters, cfg.Clients)
	}
	gRng := xrand.Derive(cfg.Seed, "writers", 0)
	extreme := gRng.Perm(cfg.Clients)[:cfg.ExtremeWriters]
	isExtreme := make([]bool, cfg.Clients)
	for _, c := range extreme {
		isExtreme[c] = true
	}

	s := cfg.ImageSize
	clients = make([]*Set, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		rng := xrand.Derive(cfg.Seed, "writer", c)
		style := writerStyle{
			scale:     0.85 + 0.1*rng.Float64(),
			intensity: 0.8 + 0.2*rng.Float64(),
			noise:     0.1 + 0.1*rng.Float64(),
			shift:     1,
		}
		if isExtreme[c] {
			style = writerStyle{
				scale:     0.55 + 0.15*rng.Float64(), // tiny cramped glyphs
				intensity: 0.35 + 0.15*rng.Float64(), // faint strokes
				noise:     0.4 + 0.2*rng.Float64(),   // smudged background
				shift:     3,
			}
		}
		// Label support: a random subset of digits for this writer.
		support := make([]int, 10)
		for i := range support {
			support[i] = i
		}
		if cfg.ClassesPerClient > 0 && cfg.ClassesPerClient < 10 {
			perm := rng.Perm(10)
			support = perm[:cfg.ClassesPerClient]
		}

		set := &Set{X: tensor.New(cfg.SamplesPerClient, 1, s, s), Y: make([]int, cfg.SamplesPerClient)}
		for i := 0; i < cfg.SamplesPerClient; i++ {
			d := support[i%len(support)]
			set.Y[i] = d
			img := set.X.Data[i*s*s : (i+1)*s*s]
			renderStyled(img, s, d, style, rng)
		}
		clients[c] = set
	}
	return clients, append([]int(nil), extreme...), nil
}

// renderStyled rasterises one digit with a writer's personal style.
func renderStyled(img []float64, s, digit int, style writerStyle, rng *xrand.Stream) {
	dx := rng.Intn(2*style.shift+1) - style.shift
	dy := rng.Intn(2*style.shift+1) - style.shift
	for _, name := range []byte(digitSegments[digit]) {
		seg := segments[name]
		drawLine(img, s, seg, dx, dy, style.scale, style.intensity)
	}
	if style.noise > 0 {
		for j := range img {
			img[j] += style.noise * rng.Norm()
			if img[j] < 0 {
				img[j] = 0
			}
			if img[j] > 1.5 {
				img[j] = 1.5
			}
		}
	}
}
