package emu

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/telemetry"
)

// chaosClusterSharded is chaosCluster with an explicit shard count: same
// clients, same plan, same quorum — only the aggregation tree layout differs.
func chaosClusterSharded(t *testing.T, clients, rounds int, deadline time.Duration, minQuorum int, plan *FaultPlan, shards int) *ClusterResult {
	t.Helper()
	cfg := clusterConfig(t, clients, rounds, nil)
	cfg.DialTimeout = 10 * time.Second
	cfg.RoundDeadline = deadline
	cfg.MinQuorum = minQuorum
	cfg.Faults = plan
	cfg.Topology = Topology{Shards: shards}
	cfg.Registry = telemetry.NewRegistry()
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("sharded chaos cluster (%d shards): %v", shards, err)
	}
	return res
}

// assertShardParity requires two runs of the same workload under different
// shard layouts to agree on everything the flat server's contract pins:
// bit-identical final model, exact wire/fault/codec accounting, and the
// per-round history core. Late-frame ROUND attribution may legally shift
// (a frame drained by shard i during round r+1's gather was drained by the
// flat inbox at the same wall-clock moment but possibly across a round
// boundary), so per-round wire/late columns are checked as run totals only.
func assertShardParity(t *testing.T, label string, a, b *ServerResult) {
	t.Helper()
	if len(a.FinalParams) != len(b.FinalParams) {
		t.Fatalf("%s: param dims differ: %d vs %d", label, len(a.FinalParams), len(b.FinalParams))
	}
	for j := range a.FinalParams {
		if math.Float64bits(a.FinalParams[j]) != math.Float64bits(b.FinalParams[j]) {
			t.Fatalf("%s: param %d differs: %v vs %v", label, j, a.FinalParams[j], b.FinalParams[j])
		}
	}
	if a.UplinkWireBytes != b.UplinkWireBytes || a.DownlinkWireBytes != b.DownlinkWireBytes {
		t.Fatalf("%s: wire bytes differ: up %d/%d down %d/%d",
			label, a.UplinkWireBytes, b.UplinkWireBytes, a.DownlinkWireBytes, b.DownlinkWireBytes)
	}
	if a.LateFrames != b.LateFrames || a.DupFrames != b.DupFrames || a.Rejoins != b.Rejoins {
		t.Fatalf("%s: drain accounting differs: late %d/%d dup %d/%d rejoin %d/%d",
			label, a.LateFrames, b.LateFrames, a.DupFrames, b.DupFrames, a.Rejoins, b.Rejoins)
	}
	if a.CodecUpdates != b.CodecUpdates || a.CodecEncodedBytes != b.CodecEncodedBytes || a.CodecRawBytes != b.CodecRawBytes {
		t.Fatalf("%s: codec accounting differs: %d/%d/%d vs %d/%d/%d", label,
			a.CodecUpdates, a.CodecEncodedBytes, a.CodecRawBytes,
			b.CodecUpdates, b.CodecEncodedBytes, b.CodecRawBytes)
	}
	for i := range a.SkipCounts {
		if a.SkipCounts[i] != b.SkipCounts[i] {
			t.Fatalf("%s: client %d skips differ: %d vs %d", label, i, a.SkipCounts[i], b.SkipCounts[i])
		}
	}
	for i := range a.StragglerCounts {
		if a.StragglerCounts[i] != b.StragglerCounts[i] {
			t.Fatalf("%s: client %d straggler rounds differ: %d vs %d", label, i, a.StragglerCounts[i], b.StragglerCounts[i])
		}
	}
	if len(a.DroppedClients) != len(b.DroppedClients) {
		t.Fatalf("%s: dropped clients differ: %v vs %v", label, a.DroppedClients, b.DroppedClients)
	}
	for id, r := range a.DroppedClients {
		if b.DroppedClients[id] != r {
			t.Fatalf("%s: client %d first-drop round differs: %d vs %d", label, id, r, b.DroppedClients[id])
		}
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history lengths differ: %d vs %d", label, len(a.History), len(b.History))
	}
	for i := range a.History {
		ha, hb := a.History[i], b.History[i]
		if ha.Round != hb.Round || ha.Participants != hb.Participants ||
			ha.Uploaded != hb.Uploaded || ha.Skipped != hb.Skipped ||
			ha.Dropped != hb.Dropped || ha.CumUploads != hb.CumUploads ||
			ha.CumUplinkBytes != hb.CumUplinkBytes {
			t.Fatalf("%s: round %d core differs:\n%+v\nvs\n%+v", label, ha.Round, ha.RoundEvent, hb.RoundEvent)
		}
		if math.Float64bits(ha.Accuracy) != math.Float64bits(hb.Accuracy) {
			t.Fatalf("%s: round %d accuracy differs: %v vs %v", label, ha.Round, ha.Accuracy, hb.Accuracy)
		}
		if math.Float64bits(ha.MeanRelevance) != math.Float64bits(hb.MeanRelevance) {
			t.Fatalf("%s: round %d mean relevance differs: %v vs %v", label, ha.Round, ha.MeanRelevance, hb.MeanRelevance)
		}
		if len(ha.Stragglers) != len(hb.Stragglers) {
			t.Fatalf("%s: round %d stragglers differ: %v vs %v", label, ha.Round, ha.Stragglers, hb.Stragglers)
		}
		for j := range ha.Stragglers {
			if ha.Stragglers[j] != hb.Stragglers[j] {
				t.Fatalf("%s: round %d stragglers differ: %v vs %v", label, ha.Round, ha.Stragglers, hb.Stragglers)
			}
		}
	}
}

// assertRegistryParity requires every non-shard-scoped counter family to
// carry identical values across layouts. The cmfl_shard_* families are the
// only legal difference between a flat and a sharded run's registry.
func assertRegistryParity(t *testing.T, label string, a, b *telemetry.Registry) {
	t.Helper()
	sa, sb := a.Snapshot(), b.Snapshot()
	checked := 0
	for k, v := range sa {
		if strings.HasPrefix(k, "cmfl_shard_") {
			continue
		}
		if sb[k] != v {
			t.Fatalf("%s: counter %s differs: %v vs %v", label, k, v, sb[k])
		}
		checked++
	}
	for k := range sb {
		if !strings.HasPrefix(k, "cmfl_shard_") {
			if _, ok := sa[k]; !ok {
				t.Fatalf("%s: counter %s only present in sharded run", label, k)
			}
		}
	}
	if checked == 0 {
		t.Fatalf("%s: no global counters compared", label)
	}
}

// TestChaosSharded is the tentpole oracle: every chaos fault class runs under
// the flat layout and under 3- and 8-shard aggregation trees, and the shard
// layout must be unobservable — bit-identical global model, identical wire,
// straggler, fault, and codec accounting, identical telemetry families. The
// fault targets deliberately span shard boundaries of both layouts
// (8 clients split [0-2][3-5][6-7] at 3 shards, singletons at 8).
func TestChaosSharded(t *testing.T) {
	const (
		clients  = 8
		rounds   = 4
		deadline = 1200 * time.Millisecond
	)
	cases := []struct {
		name string
		plan *FaultPlan
	}{
		{
			name: "drop-update stragglers",
			plan: NewFaultPlan().
				Add(1, 2, Fault{Kind: FaultDropUpdate}).
				Add(4, 2, Fault{Kind: FaultDropUpdate}).
				Add(7, 3, Fault{Kind: FaultDropUpdate}),
		},
		{
			name: "delay past deadline straggles then drains late",
			plan: NewFaultPlan().
				Add(0, 2, Fault{Kind: FaultDelay, Delay: 1800 * time.Millisecond}),
		},
		{
			name: "disconnect resends after rejoin",
			plan: NewFaultPlan().
				Add(1, 2, Fault{Kind: FaultDisconnect}).
				Add(6, 3, Fault{Kind: FaultDisconnect}),
		},
		{
			name: "crash then rejoin within the deadline",
			plan: NewFaultPlan().
				Add(2, 3, Fault{Kind: FaultCrashRejoin, Delay: 60 * time.Millisecond}),
		},
		{
			name: "corrupt frame kills the conn",
			plan: NewFaultPlan().
				Add(0, 2, Fault{Kind: FaultCorruptFrame}),
		},
		{
			name: "mixed plan",
			plan: NewFaultPlan().
				Add(0, 2, Fault{Kind: FaultDropUpdate}).
				Add(3, 3, Fault{Kind: FaultCrashRejoin, Delay: 50 * time.Millisecond}).
				Add(5, 2, Fault{Kind: FaultDelay, Delay: 100 * time.Millisecond}).
				Add(7, 2, Fault{Kind: FaultDisconnect}),
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			flat := chaosClusterSharded(t, clients, rounds, deadline, 1, tc.plan, 1)
			for _, shards := range []int{3, 8} {
				sharded := chaosClusterSharded(t, clients, rounds, deadline, 1, tc.plan, shards)
				label := fmt.Sprintf("%d shards", shards)
				assertShardParity(t, label, flat.Server, sharded.Server)
				assertRegistryParity(t, label, flat.Registry, sharded.Registry)
			}
		})
	}
}

// TestChaosShardedCodecChain reruns the full wire-efficiency stack (codec
// chain + error feedback) under a fault plan across layouts: compression,
// fault machinery, and the aggregation tree must compose without perturbing
// each other's determinism.
func TestChaosShardedCodecChain(t *testing.T) {
	plan := NewFaultPlan().
		Add(0, 2, Fault{Kind: FaultDropUpdate}).
		Add(2, 3, Fault{Kind: FaultDisconnect}).
		Add(5, 2, Fault{Kind: FaultDelay, Delay: 100 * time.Millisecond})
	run := func(shards int) *ClusterResult {
		cfg := clusterConfig(t, 6, 4, nil)
		cfg.DialTimeout = 10 * time.Second
		cfg.RoundDeadline = 1200 * time.Millisecond
		cfg.MinQuorum = 1
		cfg.Faults = plan
		cfg.Compressor = compress.NewChain(compress.TopK{K: 50}, compress.Uniform8{})
		cfg.ErrorFeedback = true
		cfg.Topology = Topology{Shards: shards}
		cfg.Registry = telemetry.NewRegistry()
		res, err := RunCluster(cfg)
		if err != nil {
			t.Fatalf("sharded codec chaos cluster (%d shards): %v", shards, err)
		}
		return res
	}
	flat, sharded := run(1), run(3)
	assertShardParity(t, "codec chain, 3 shards", flat.Server, sharded.Server)
	assertRegistryParity(t, "codec chain, 3 shards", flat.Registry, sharded.Registry)
	if flat.Server.CodecUpdates == 0 {
		t.Fatal("codec chaos run recorded zero compressed updates")
	}
}

// TestChaosShardedShuffleAssignment pins the seeded shard layout: Shuffle
// derives the client permutation from the topology seed, the same seed must
// reproduce the run bit for bit, and — exact aggregation being layout-blind —
// even a different permutation must land on the identical global model.
func TestChaosShardedShuffleAssignment(t *testing.T) {
	plan := NewFaultPlan().Add(1, 2, Fault{Kind: FaultDropUpdate})
	run := func(topo Topology) *ClusterResult {
		cfg := clusterConfig(t, 6, 3, nil)
		cfg.DialTimeout = 10 * time.Second
		cfg.RoundDeadline = 1200 * time.Millisecond
		cfg.MinQuorum = 1
		cfg.Faults = plan
		cfg.Topology = topo
		cfg.Registry = telemetry.NewRegistry()
		res, err := RunCluster(cfg)
		if err != nil {
			t.Fatalf("shuffled sharded cluster: %v", err)
		}
		return res
	}
	contiguous := run(Topology{Shards: 3})
	shuffledA := run(Topology{Shards: 3, Shuffle: true, Seed: 7})
	shuffledB := run(Topology{Shards: 3, Shuffle: true, Seed: 7})
	assertShardParity(t, "same shuffle seed", shuffledA.Server, shuffledB.Server)
	assertRegistryParity(t, "same shuffle seed", shuffledA.Registry, shuffledB.Registry)
	assertShardParity(t, "shuffled vs contiguous", contiguous.Server, shuffledA.Server)
}

// TestChaosShardedPerShardLimits gives one shard a local quorum floor and a
// tighter local deadline: with no faults the extensions must stay invisible
// (parity with the flat run), and the per-shard floor must fail loudly when
// that shard's clients go silent.
func TestChaosShardedPerShardLimits(t *testing.T) {
	t.Run("invisible when met", func(t *testing.T) {
		t.Parallel()
		flat := chaosClusterSharded(t, 6, 3, 1200*time.Millisecond, 1, NewFaultPlan(), 1)
		cfg := clusterConfig(t, 6, 3, nil)
		cfg.DialTimeout = 10 * time.Second
		cfg.RoundDeadline = 1200 * time.Millisecond
		cfg.MinQuorum = 1
		cfg.Faults = NewFaultPlan()
		cfg.Topology = Topology{
			Shards:      3,
			ShardLimits: []ShardLimit{{MinQuorum: 2}, {MinQuorum: 1}},
		}
		cfg.Registry = telemetry.NewRegistry()
		res, err := RunCluster(cfg)
		if err != nil {
			t.Fatalf("per-shard limits cluster: %v", err)
		}
		assertShardParity(t, "per-shard limits", flat.Server, res.Server)
	})
	t.Run("local floor fails loudly", func(t *testing.T) {
		t.Parallel()
		// Shard 0 owns clients 0-1 at 6 clients / 3 shards; silence both
		// from round 2 on and demand 2 local replies.
		plan := NewFaultPlan()
		for r := 2; r <= 3; r++ {
			plan.Add(0, r, Fault{Kind: FaultDropUpdate})
			plan.Add(1, r, Fault{Kind: FaultDropUpdate})
		}
		cfg := clusterConfig(t, 6, 3, nil)
		cfg.DialTimeout = 10 * time.Second
		cfg.RoundDeadline = 700 * time.Millisecond
		cfg.MinQuorum = 1
		cfg.Faults = plan
		cfg.Topology = Topology{
			Shards:      3,
			ShardLimits: []ShardLimit{{MinQuorum: 2}},
		}
		_, err := RunCluster(cfg)
		if err == nil || !strings.Contains(err.Error(), "quorum") {
			t.Fatalf("starved per-shard quorum must fail with a quorum error, got: %v", err)
		}
		if !strings.Contains(err.Error(), "shard 0") {
			t.Fatalf("per-shard quorum failure must name the shard, got: %v", err)
		}
	})
}

// TestShardedScale64 is the scale acceptance check: a 64-client round over an
// 8-shard tree completes, and the per-shard counter families sum back to the
// global accounting (the invariant the dashboards rely on).
func TestShardedScale64(t *testing.T) {
	cfg := clusterConfig(t, 64, 1, nil)
	cfg.DialTimeout = 30 * time.Second
	cfg.RoundDeadline = 30 * time.Second
	cfg.Topology = Topology{Shards: 8}
	cfg.Registry = telemetry.NewRegistry()
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("64-client sharded cluster: %v", err)
	}
	srv := res.Server
	if len(srv.History) != 1 {
		t.Fatalf("history = %d rounds, want 1", len(srv.History))
	}
	if got := srv.History[0].Participants; got != 64 {
		t.Fatalf("participants = %d, want 64", got)
	}
	snap := res.Registry.Snapshot()
	var shardRounds, shardAccepted, shardStragglers float64
	for i := 0; i < 8; i++ {
		shardRounds += snap[fmt.Sprintf(`cmfl_shard_rounds_total{shard="%d"}`, i)]
		shardAccepted += snap[fmt.Sprintf(`cmfl_shard_accepted_replies_total{shard="%d"}`, i)]
		shardStragglers += snap[fmt.Sprintf(`cmfl_shard_stragglers_total{shard="%d"}`, i)]
	}
	if shardRounds != 8 {
		t.Fatalf("shard rounds counters sum to %v, want 8 (one aggregated gather per shard)", shardRounds)
	}
	accepted := 0
	for _, h := range srv.History {
		accepted += h.Uploaded + h.Skipped
	}
	if shardAccepted != float64(accepted) {
		t.Fatalf("shard accepted counters sum to %v, history says %d", shardAccepted, accepted)
	}
	if shardStragglers != float64(sumStragglers(srv)) {
		t.Fatalf("shard straggler counters sum to %v, result says %d", shardStragglers, sumStragglers(srv))
	}
}

// TestServerShutdownMidRun drives the graceful-shutdown contract: Shutdown
// after round 1 finishes the in-flight round, sends the done frames, and
// returns the partial history cleanly — clients exit without errors.
func TestServerShutdownMidRun(t *testing.T) {
	cfg := clusterConfig(t, 2, 50, nil)
	var srv *Server
	stop := telemetry.Funcs{Round: func(e telemetry.RoundEvent) {
		if e.Round == 1 {
			srv.Shutdown()
		}
	}}
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		Clients:      2,
		Model:        cfg.Model,
		TestData:     cfg.TestData,
		Rounds:       50,
		RoundTimeout: 10 * time.Second,
		Limits:       Limits{DialTimeout: 10 * time.Second},
		Topology:     Topology{Shards: 2},
		Observers:    []telemetry.Observer{stop},
	})
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := srv.Run()
		done <- out{res, err}
	}()
	clientErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := RunClient(ClientConfig{
				Addr:   srv.Addr(),
				ID:     i,
				Model:  cfg.Model,
				Data:   cfg.ClientData[i],
				Epochs: cfg.Epochs,
				Batch:  cfg.Batch,
				LR:     cfg.LR,
				Seed:   cfg.Seed,
			})
			clientErrs <- err
		}(i)
	}
	o := <-done
	if o.err != nil {
		t.Fatalf("graceful shutdown returned error: %v", o.err)
	}
	if len(o.res.History) != 1 {
		t.Fatalf("shutdown after round 1 left %d rounds of history, want 1", len(o.res.History))
	}
	for i := 0; i < 2; i++ {
		if err := <-clientErrs; err != nil {
			t.Fatalf("client did not exit cleanly on shutdown: %v", err)
		}
	}
	// Idempotent and safe post-Run.
	srv.Shutdown()
}

// TestRunClusterFastFailReleasesServer pins the strict-mode leak fix: when a
// client dies before the accept barrier completes, RunCluster must cancel the
// server instead of letting it burn the whole DialTimeout.
func TestRunClusterFastFailReleasesServer(t *testing.T) {
	cfg := clusterConfig(t, 2, 3, nil)
	cfg.ClientData[1] = nil // client 1 fails validation before dialing
	cfg.DialTimeout = 60 * time.Second
	start := now()
	_, err := RunCluster(cfg)
	elapsed := now().Sub(start)
	if err == nil || !strings.Contains(err.Error(), "clients") {
		t.Fatalf("cluster with an unstartable client must fail with a client error, got: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("fast client failure took %v to surface — server sat out its accept barrier", elapsed)
	}
}
