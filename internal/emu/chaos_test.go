package emu

import (
	"math"
	"strings"
	"testing"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/telemetry"
)

// chaosCluster runs one cluster under the given plan with a fresh registry,
// failing the test on server-side errors. Faulty clients may legitimately
// end mid-recovery, so client errors are returned for per-case inspection.
func chaosCluster(t *testing.T, clients, rounds int, deadline time.Duration, minQuorum int, plan *FaultPlan) *ClusterResult {
	t.Helper()
	cfg := clusterConfig(t, clients, rounds, nil)
	cfg.DialTimeout = 10 * time.Second
	cfg.RoundDeadline = deadline
	cfg.MinQuorum = minQuorum
	cfg.Faults = plan
	cfg.Registry = telemetry.NewRegistry()
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("chaos cluster: %v", err)
	}
	return res
}

// faultCounters extracts the cmfl_fault_* / cmfl_straggler_* families from
// a registry snapshot — the values the acceptance criteria pin across runs.
func faultCounters(reg *telemetry.Registry) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range reg.Snapshot() {
		if strings.HasPrefix(k, "cmfl_fault_") || strings.HasPrefix(k, "cmfl_straggler_") {
			out[k] = v
		}
	}
	return out
}

func sumStragglers(res *ServerResult) int {
	n := 0
	for _, c := range res.StragglerCounts {
		n += c
	}
	return n
}

// TestChaos drives a full CMFL round schedule under each fault class (and a
// mixture), asserting quorum math, straggler exclusion, and — by running
// every scenario twice — that a fixed FaultPlan yields bit-identical global
// models and identical fault/straggler counter values.
func TestChaos(t *testing.T) {
	const (
		clients  = 3
		rounds   = 4
		deadline = 900 * time.Millisecond
	)
	cases := []struct {
		name  string
		plan  *FaultPlan
		check func(t *testing.T, res *ClusterResult)
	}{
		{
			name: "drop-update stragglers",
			plan: NewFaultPlan().
				Add(1, 2, Fault{Kind: FaultDropUpdate}).
				Add(1, 3, Fault{Kind: FaultDropUpdate}),
			check: func(t *testing.T, res *ClusterResult) {
				srv := res.Server
				if got := srv.StragglerCounts[1]; got != 2 {
					t.Fatalf("client 1 straggled %d rounds, want 2", got)
				}
				if n := sumStragglers(srv); n != 2 {
					t.Fatalf("total straggler rounds = %d, want 2", n)
				}
				// A swallowed upload is not a transport fault: the
				// connection stays healthy, the server just never hears.
				if len(srv.DroppedClients) != 0 || srv.Rejoins != 0 {
					t.Fatalf("drop-update must not register conn faults: dropped=%v rejoins=%d",
						srv.DroppedClients, srv.Rejoins)
				}
				for _, h := range srv.History {
					wantDropped := 0
					if h.Round == 2 || h.Round == 3 {
						wantDropped = 1
					}
					if h.Dropped != wantDropped || len(h.Stragglers) != wantDropped {
						t.Fatalf("round %d: Dropped=%d Stragglers=%v, want %d", h.Round, h.Dropped, h.Stragglers, wantDropped)
					}
					if h.Participants+h.Dropped != clients {
						t.Fatalf("round %d: participants %d + dropped %d != %d clients",
							h.Round, h.Participants, h.Dropped, clients)
					}
				}
			},
		},
		{
			name: "delay within deadline is absorbed",
			plan: NewFaultPlan().
				Add(2, 2, Fault{Kind: FaultDelay, Delay: 120 * time.Millisecond}),
			check: func(t *testing.T, res *ClusterResult) {
				srv := res.Server
				if n := sumStragglers(srv); n != 0 {
					t.Fatalf("short delay produced %d straggler rounds, want 0", n)
				}
				if last := srv.History[rounds-1]; last.CumUploads != clients*rounds {
					t.Fatalf("cum uploads = %d, want %d (no round lost anything)", last.CumUploads, clients*rounds)
				}
			},
		},
		{
			name: "delay past deadline straggles then drains late",
			plan: NewFaultPlan().
				Add(0, 2, Fault{Kind: FaultDelay, Delay: 1400 * time.Millisecond}),
			check: func(t *testing.T, res *ClusterResult) {
				srv := res.Server
				if got := srv.StragglerCounts[0]; got != 1 {
					t.Fatalf("client 0 straggled %d rounds, want 1", got)
				}
				if srv.LateFrames != 1 {
					t.Fatalf("late frames = %d, want 1 (the delayed round-2 reply)", srv.LateFrames)
				}
				if len(srv.DroppedClients) != 0 {
					t.Fatalf("a slow client is not a dead client: %v", srv.DroppedClients)
				}
			},
		},
		{
			name: "disconnect mid-message resends after rejoin",
			plan: NewFaultPlan().
				Add(1, 2, Fault{Kind: FaultDisconnect}),
			check: func(t *testing.T, res *ClusterResult) {
				srv := res.Server
				if n := sumStragglers(srv); n != 0 {
					t.Fatalf("disconnect with resend straggled %d rounds, want 0", n)
				}
				if srv.Rejoins != 1 {
					t.Fatalf("rejoins = %d, want 1", srv.Rejoins)
				}
				if srv.DroppedClients[1] != 2 {
					t.Fatalf("DroppedClients = %v, want {1:2}", srv.DroppedClients)
				}
				if last := srv.History[rounds-1]; last.CumUploads != clients*rounds {
					t.Fatalf("cum uploads = %d, want %d (resend preserved the round)", last.CumUploads, clients*rounds)
				}
				if res.Clients[1] == nil || res.Clients[1].Reconnects != 1 {
					t.Fatalf("client 1 result = %+v, want 1 reconnect", res.Clients[1])
				}
			},
		},
		{
			name: "crash then rejoin within the deadline",
			plan: NewFaultPlan().
				Add(2, 3, Fault{Kind: FaultCrashRejoin, Delay: 60 * time.Millisecond}),
			check: func(t *testing.T, res *ClusterResult) {
				srv := res.Server
				if n := sumStragglers(srv); n != 0 {
					t.Fatalf("fast crash-rejoin straggled %d rounds, want 0", n)
				}
				if srv.Rejoins != 1 {
					t.Fatalf("rejoins = %d, want 1", srv.Rejoins)
				}
				if last := srv.History[rounds-1]; last.CumUploads != clients*rounds {
					t.Fatalf("cum uploads = %d, want %d", last.CumUploads, clients*rounds)
				}
			},
		},
		{
			name: "corrupt frame kills the conn and straggles the round",
			plan: NewFaultPlan().
				Add(0, 2, Fault{Kind: FaultCorruptFrame}),
			check: func(t *testing.T, res *ClusterResult) {
				srv := res.Server
				if got := srv.StragglerCounts[0]; got != 1 {
					t.Fatalf("client 0 straggled %d rounds, want 1 (corrupted reply never counts)", got)
				}
				if srv.Rejoins != 1 {
					t.Fatalf("rejoins = %d, want 1", srv.Rejoins)
				}
				if srv.DroppedClients[0] != 2 {
					t.Fatalf("DroppedClients = %v, want {0:2}", srv.DroppedClients)
				}
				// Round 2 aggregated exactly the two clean updates.
				r2 := srv.History[1]
				if r2.Uploaded != 2 || r2.Dropped != 1 {
					t.Fatalf("round 2: uploaded=%d dropped=%d, want 2/1", r2.Uploaded, r2.Dropped)
				}
			},
		},
		{
			name: "mixed plan",
			plan: NewFaultPlan().
				Add(0, 2, Fault{Kind: FaultDropUpdate}).
				Add(1, 3, Fault{Kind: FaultCrashRejoin, Delay: 50 * time.Millisecond}).
				Add(2, 2, Fault{Kind: FaultDelay, Delay: 100 * time.Millisecond}),
			check: func(t *testing.T, res *ClusterResult) {
				srv := res.Server
				if got := srv.StragglerCounts[0]; got != 1 {
					t.Fatalf("client 0 straggled %d rounds, want 1", got)
				}
				if got := srv.StragglerCounts[1] + srv.StragglerCounts[2]; got != 0 {
					t.Fatalf("clients 1/2 straggled %d rounds, want 0", got)
				}
				if srv.Rejoins != 1 {
					t.Fatalf("rejoins = %d, want 1", srv.Rejoins)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			first := chaosCluster(t, clients, rounds, deadline, 1, tc.plan)
			tc.check(t, first)

			// Determinism: the same immutable plan must reproduce the run
			// bit for bit — global model, wire accounting, and every
			// cmfl_fault_*/cmfl_straggler_* counter value.
			second := chaosCluster(t, clients, rounds, deadline, 1, tc.plan)
			a, b := first.Server, second.Server
			if len(a.FinalParams) != len(b.FinalParams) {
				t.Fatalf("param dims differ: %d vs %d", len(a.FinalParams), len(b.FinalParams))
			}
			for j := range a.FinalParams {
				if math.Float64bits(a.FinalParams[j]) != math.Float64bits(b.FinalParams[j]) {
					t.Fatalf("param %d differs between runs: %v vs %v", j, a.FinalParams[j], b.FinalParams[j])
				}
			}
			if a.UplinkWireBytes != b.UplinkWireBytes || a.DownlinkWireBytes != b.DownlinkWireBytes {
				t.Fatalf("wire bytes differ: up %d/%d down %d/%d",
					a.UplinkWireBytes, b.UplinkWireBytes, a.DownlinkWireBytes, b.DownlinkWireBytes)
			}
			ca, cb := faultCounters(first.Registry), faultCounters(second.Registry)
			if len(ca) == 0 {
				t.Fatal("no cmfl_fault_*/cmfl_straggler_* counters registered")
			}
			for k, v := range ca {
				if cb[k] != v {
					t.Fatalf("counter %s differs between runs: %v vs %v", k, v, cb[k])
				}
			}
			// The registry's straggler/fault families must agree with the
			// result's own accounting (the /metrics contract).
			if got, want := ca["cmfl_straggler_clients_total{engine=\"emu\"}"], float64(sumStragglers(a)); got != want {
				t.Fatalf("straggler counter = %v, want %v", got, want)
			}
			if got, want := ca["cmfl_fault_rejoins_total"], float64(a.Rejoins); got != want {
				t.Fatalf("rejoin counter = %v, want %v", got, want)
			}
			if got, want := ca["cmfl_straggler_late_frames_total"], float64(a.LateFrames); got != want {
				t.Fatalf("late-frame counter = %v, want %v", got, want)
			}
			// Wire counters are pinned bit-for-bit to the result totals.
			snap := first.Registry.Snapshot()
			if got := snap["cmfl_emu_uplink_wire_bytes_total"]; got != float64(a.UplinkWireBytes) {
				t.Fatalf("uplink wire counter = %v, want %d", got, a.UplinkWireBytes)
			}
			if got := snap["cmfl_emu_downlink_wire_bytes_total"]; got != float64(a.DownlinkWireBytes) {
				t.Fatalf("downlink wire counter = %v, want %d", got, a.DownlinkWireBytes)
			}
		})
	}
}

// TestChaosWithCodecChainDeterministic reruns a mixed fault plan with the
// full wire-efficiency stack (CMFL gate absent here, codec chain + error
// feedback present) and requires bit-identical final models and identical
// codec counters across runs: compression must not perturb the fault
// machinery's determinism, and vice versa.
func TestChaosWithCodecChainDeterministic(t *testing.T) {
	plan := NewFaultPlan().
		Add(0, 2, Fault{Kind: FaultDropUpdate}).
		Add(1, 3, Fault{Kind: FaultDisconnect}).
		Add(2, 2, Fault{Kind: FaultDelay, Delay: 100 * time.Millisecond})
	run := func() *ClusterResult {
		cfg := clusterConfig(t, 3, 4, nil)
		cfg.DialTimeout = 10 * time.Second
		cfg.RoundDeadline = 900 * time.Millisecond
		cfg.MinQuorum = 1
		cfg.Faults = plan
		cfg.Compressor = compress.NewChain(compress.TopK{K: 50}, compress.Uniform8{})
		cfg.ErrorFeedback = true
		cfg.Registry = telemetry.NewRegistry()
		res, err := RunCluster(cfg)
		if err != nil {
			t.Fatalf("chaos codec cluster: %v", err)
		}
		return res
	}
	first, second := run(), run()
	a, b := first.Server, second.Server
	for j := range a.FinalParams {
		if math.Float64bits(a.FinalParams[j]) != math.Float64bits(b.FinalParams[j]) {
			t.Fatalf("param %d differs between codec chaos runs: %v vs %v", j, a.FinalParams[j], b.FinalParams[j])
		}
	}
	if a.CodecUpdates != b.CodecUpdates || a.CodecEncodedBytes != b.CodecEncodedBytes || a.CodecRawBytes != b.CodecRawBytes {
		t.Fatalf("codec accounting differs: %d/%d/%d vs %d/%d/%d",
			a.CodecUpdates, a.CodecEncodedBytes, a.CodecRawBytes,
			b.CodecUpdates, b.CodecEncodedBytes, b.CodecRawBytes)
	}
	if a.CodecUpdates == 0 {
		t.Fatal("codec chaos run recorded zero compressed updates")
	}
	// The resend path must reuse the same encoded bytes: a disconnected
	// client that rejoins re-sends its staged frame, and the codec counters
	// count each accepted update exactly once.
	if a.UplinkWireBytes != b.UplinkWireBytes {
		t.Fatalf("wire bytes differ: %d vs %d", a.UplinkWireBytes, b.UplinkWireBytes)
	}
	snap := first.Registry.Snapshot()
	if got := snap["cmfl_codec_updates_total"]; got != float64(a.CodecUpdates) {
		t.Fatalf("codec updates counter = %v, result says %d", got, a.CodecUpdates)
	}
	if got := snap["cmfl_codec_encoded_bytes_total"]; got != float64(a.CodecEncodedBytes) {
		t.Fatalf("codec encoded counter = %v, result says %d", got, a.CodecEncodedBytes)
	}
	if got := snap["cmfl_codec_raw_bytes_total"]; got != float64(a.CodecRawBytes) {
		t.Fatalf("codec raw counter = %v, result says %d", got, a.CodecRawBytes)
	}
}

// TestChaosHungClientCompletesAtDeadline is the acceptance scenario: a
// permanently silent client must cost ~RoundDeadline per round — not the
// old flat 120s timeout — with the straggler excluded and reported.
func TestChaosHungClientCompletesAtDeadline(t *testing.T) {
	const (
		clients  = 3
		rounds   = 3
		deadline = 700 * time.Millisecond
	)
	plan := NewFaultPlan()
	for r := 1; r <= rounds; r++ {
		plan.Add(2, r, Fault{Kind: FaultDropUpdate})
	}
	start := now()
	res := chaosCluster(t, clients, rounds, deadline, 2, plan)
	elapsed := now().Sub(start)

	srv := res.Server
	if len(srv.History) != rounds {
		t.Fatalf("history = %d rounds, want %d", len(srv.History), rounds)
	}
	for _, h := range srv.History {
		if len(h.Stragglers) != 1 || h.Stragglers[0] != 2 {
			t.Fatalf("round %d stragglers = %v, want [2]", h.Round, h.Stragglers)
		}
		if h.Uploaded != 2 {
			t.Fatalf("round %d uploaded = %d, want 2 (quorum aggregation)", h.Round, h.Uploaded)
		}
	}
	if got := srv.StragglerCounts[2]; got != rounds {
		t.Fatalf("client 2 straggler count = %d, want %d", got, rounds)
	}
	// Every round must wait out its deadline (the hung client never
	// replies), and nothing should wait much longer than that.
	if min := time.Duration(rounds) * deadline; elapsed < min {
		t.Fatalf("run finished in %v, before %d deadlines (%v) could elapse — straggler exclusion broken", elapsed, rounds, min)
	}
	if max := time.Duration(rounds)*deadline + 20*time.Second; elapsed > max {
		t.Fatalf("run took %v, want ≲ rounds×deadline (old flat-timeout behaviour?)", elapsed)
	}
}

// TestChaosQuorumFailureAborts pins the other side of MinQuorum: when the
// deadline fires with fewer replies than the quorum, the run fails loudly
// instead of aggregating a hollow round.
func TestChaosQuorumFailureAborts(t *testing.T) {
	plan := NewFaultPlan().Add(0, 2, Fault{Kind: FaultDropUpdate}).Add(1, 2, Fault{Kind: FaultDropUpdate})
	cfg := clusterConfig(t, 2, 4, nil)
	cfg.DialTimeout = 10 * time.Second
	cfg.RoundDeadline = 500 * time.Millisecond
	cfg.MinQuorum = 1
	cfg.Faults = plan
	_, err := RunCluster(cfg)
	if err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("run with zero possible replies must fail with a quorum error, got: %v", err)
	}
}
