package emu

import (
	"errors"
	"fmt"
	"net"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/xrand"
)

// ClientConfig describes one slave of the emulation.
type ClientConfig struct {
	// Addr of the server to connect to.
	Addr string
	// ID identifies this client in [0, Clients).
	ID int

	// Model builds the local model architecture (must match the server's).
	Model func() *nn.Network
	// Data is this client's private shard.
	Data *dataset.Set

	// Epochs (E) and Batch (B) control the local solver.
	Epochs int
	Batch  int
	// LR is the learning-rate schedule η_t.
	LR core.Schedule
	// Filter gates uploads; nil means vanilla (always upload).
	Filter fl.UploadFilter
	// Compressor lossily encodes uploads. Its wire spec is declared in the
	// hello (wire v2): a server with no codec adopts it, a server configured
	// with its own codec requires the specs to match byte-for-byte. Must be
	// one of the internal/compress codecs (the spec registry cannot describe
	// foreign implementations). Nil sends raw float64 updates.
	Compressor fl.UpdateCodec
	// ErrorFeedback accumulates the compression residual client-side
	// (EF-SGD): each upload encodes update+residual and keeps what the codec
	// discarded for the next round. Residuals are untouched on skipped
	// rounds. Ignored when Compressor is nil.
	ErrorFeedback bool

	// Seed drives the client's batch shuffling; the reconnect jitter uses a
	// separate stream derived from the same seed, so fault timing never
	// perturbs the training draws.
	Seed int64
	// DialTimeout bounds the initial connect and each redial (default 30s).
	DialTimeout time.Duration
	// RoundTimeout bounds any single read/write (default 120s).
	RoundTimeout time.Duration

	// Faults injects this client's share of a deterministic FaultPlan into
	// the connection's write path; nil runs fault-free. A non-nil plan
	// implies Reconnect.
	Faults *FaultPlan
	// Reconnect redials with capped exponential backoff after a connection
	// failure, re-greets, and resends the reply that was in flight (the
	// server deduplicates). Off by default to keep strict tests strict.
	Reconnect bool
	// MaxRedials bounds consecutive failed dial attempts per recovery, and
	// the number of recovery cycles without an intervening successful read
	// (default 5).
	MaxRedials int
	// BackoffBase / BackoffMax shape the reconnect backoff: attempt k waits
	// min(BackoffBase<<k, BackoffMax) scaled by a jitter factor in
	// [0.5, 1.5) drawn from (Seed, "emu-backoff", ID). Defaults 10ms / 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// ClientResult summarises one client's participation.
type ClientResult struct {
	Rounds   int
	Uploads  int
	Skips    int
	SentWire int64 // bytes this client wrote on the wire (hellos + updates/skips)
	// Reconnects counts successful redial+hello recoveries.
	Reconnects int
	// FaultsInjected counts FaultPlan entries this client executed.
	FaultsInjected int
}

// RunClient connects to the server and participates until the server sends
// the done message. It derives the feedback update locally from two
// consecutive model broadcasts — no extra downlink traffic, as in the paper.
//
//cmfl:deterministic
func RunClient(cfg ClientConfig) (*ClientResult, error) {
	if err := validateClient(&cfg); err != nil {
		return nil, err
	}
	filter := cfg.Filter
	if filter == nil {
		filter = fl.Vanilla{}
	}
	res := &ClientResult{}
	sess := &clientSession{
		cfg: &cfg,
		res: res,
		inj: newFaultInjector(cfg.Faults, cfg.ID),
		rng: xrand.Derive(cfg.Seed, "emu-backoff", cfg.ID),
	}
	if cfg.Compressor != nil {
		spec, err := compress.EncodeSpec(cfg.Compressor)
		if err != nil {
			return nil, fmt.Errorf("emu: client %d codec: %w", cfg.ID, err)
		}
		sess.spec = spec
	}
	if err := sess.connect(); err != nil {
		return nil, err
	}
	defer sess.close()

	network := cfg.Model()
	rng := fl.ClientStream(cfg.Seed, cfg.ID)

	// Codec scratch, reused across rounds: encodeUpdate2 copies the encoded
	// payload into the staged frame, so overwriting encBuf next round can
	// never corrupt a pending (resendable) reply.
	var encBuf []byte
	var decBuf []float64
	var residual []float64 // EF-SGD residual; nil until first compressed upload

	var prevParams, feedback []float64
	for {
		f, err := sess.nextFrame()
		if err != nil {
			return nil, fmt.Errorf("emu: client %d receive: %w", cfg.ID, err)
		}
		switch f.kind {
		case msgDone:
			res.FaultsInjected = sess.faultsInjected()
			return res, nil
		case msgModel:
			round, params, err := decodeModel(f.payload)
			if err != nil {
				return nil, fmt.Errorf("emu: client %d: frame kind %d on conn gen %d: %w", cfg.ID, f.kind, sess.res.Reconnects, err)
			}
			// Feedback is the previous global update, reconstructed as the
			// difference between consecutive broadcasts (Sec. IV-A). Keep
			// the last non-zero difference: a fully skipped round leaves
			// the model unchanged and carries no new direction information.
			if prevParams != nil {
				diff := make([]float64, len(params))
				for j := range params {
					diff[j] = params[j] - prevParams[j]
				}
				if !core.AllZero(diff) {
					feedback = diff
				}
			}
			if feedback == nil {
				feedback = make([]float64, len(params))
			}
			prevParams = params

			sess.inj.beginRound(round)
			delta, _, err := fl.LocalTrain(network, cfg.Data, params, cfg.LR.At(round), cfg.Epochs, cfg.Batch, rng)
			if err != nil {
				return nil, fmt.Errorf("emu: client %d local training: %w", cfg.ID, err)
			}
			dec, err := filter.Check(delta, params, feedback, round)
			if err != nil {
				return nil, fmt.Errorf("emu: client %d filter: %w", cfg.ID, err)
			}
			if dec.Upload {
				if cfg.Compressor != nil {
					if cfg.ErrorFeedback {
						// Fold the accumulated compression residual into the
						// update post-gate: the upload decision saw the raw
						// delta, the wire carries the corrected one.
						if residual == nil {
							residual = make([]float64, len(delta))
						}
						for j := range delta {
							delta[j] += residual[j]
						}
					}
					payload, err := cfg.Compressor.EncodeInto(encBuf, delta)
					if err != nil {
						return nil, fmt.Errorf("emu: client %d encode: %w", cfg.ID, err)
					}
					encBuf = payload
					if cfg.ErrorFeedback {
						decoded, err := cfg.Compressor.DecodeInto(decBuf, payload, len(delta))
						if err != nil {
							return nil, fmt.Errorf("emu: client %d residual decode: %w", cfg.ID, err)
						}
						decBuf = decoded
						for j := range residual {
							residual[j] = delta[j] - decoded[j]
						}
					}
					sess.stage(msgUpdate2, encodeUpdate2(cfg.ID, round, dec.Metric, len(delta), payload))
				} else {
					sess.stage(msgUpdate, encodeUpdate(cfg.ID, round, dec.Metric, delta))
				}
				res.Uploads++
			} else {
				sess.stage(msgSkip, encodeSkip(cfg.ID, round, dec.Metric))
				res.Skips++
			}
			if err := sess.flush(); err != nil {
				return nil, fmt.Errorf("emu: client %d send round %d: %w", cfg.ID, round, err)
			}
			res.Rounds++
		default:
			return nil, fmt.Errorf("emu: client %d: unexpected frame kind %d on conn gen %d", cfg.ID, f.kind, sess.res.Reconnects)
		}
	}
}

// pendingReply is the staged round reply, held until a write succeeds so a
// reconnect can resend it (at-least-once; the server deduplicates).
type pendingReply struct {
	kind    byte
	payload []byte
}

// clientSession owns the client's connection lifecycle: dial, hello,
// injector wrapping, and reconnect-with-resend.
type clientSession struct {
	cfg  *ClientConfig
	res  *ClientResult
	inj  *faultInjector
	rng  *xrand.Stream // backoff jitter — separate from the training stream
	spec []byte        // codec wire spec declared in every hello; nil = raw

	conn    net.Conn // injector-wrapped
	pending *pendingReply
}

func (s *clientSession) close() {
	if s.conn != nil {
		closeQuietly(s.conn)
	}
}

func (s *clientSession) faultsInjected() int {
	if s.inj == nil {
		return 0
	}
	return s.inj.injected
}

// connect dials and greets for the first time.
func (s *clientSession) connect() error {
	conn, err := net.DialTimeout("tcp", s.cfg.Addr, s.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("emu: dial %s: %w", s.cfg.Addr, err)
	}
	s.conn = s.inj.wrap(conn)
	return s.hello()
}

// hello introduces this client on the current connection.
func (s *clientSession) hello() error {
	// I/O deadline only; read through the package clock hook.
	if err := s.conn.SetWriteDeadline(now().Add(s.cfg.RoundTimeout)); err != nil {
		return err
	}
	n, err := writeFrame(s.conn, msgHello, encodeHello(s.cfg.ID, s.spec))
	if err != nil {
		return err
	}
	s.res.SentWire += n
	return nil
}

// stage records the round's reply for flush (and any resend after a fault).
func (s *clientSession) stage(kind byte, payload []byte) {
	s.pending = &pendingReply{kind: kind, payload: payload}
}

// flush writes the staged reply, recovering the connection on failure.
func (s *clientSession) flush() error {
	for cycle := 0; ; cycle++ {
		err := s.writePending()
		if err == nil {
			return nil
		}
		if rerr := s.recover(err, cycle); rerr != nil {
			return rerr
		}
	}
}

// writePending sends the staged reply on the current connection; the stage
// is cleared only on success.
func (s *clientSession) writePending() error {
	if s.pending == nil {
		return nil
	}
	// I/O deadline only; read through the package clock hook.
	if err := s.conn.SetWriteDeadline(now().Add(s.cfg.RoundTimeout)); err != nil {
		return err
	}
	n, err := writeFrame(s.conn, s.pending.kind, s.pending.payload)
	if err != nil {
		return err
	}
	s.res.SentWire += n
	s.pending = nil
	return nil
}

// nextFrame reads the next server frame, transparently recovering the
// connection (and resending any pending reply) when reconnection is on.
func (s *clientSession) nextFrame() (*frame, error) {
	for cycle := 0; ; cycle++ {
		// I/O deadline only; read through the package clock hook.
		if err := s.conn.SetReadDeadline(now().Add(s.cfg.RoundTimeout)); err != nil {
			if rerr := s.recover(err, cycle); rerr != nil {
				return nil, rerr
			}
			continue
		}
		f, err := readFrame(s.conn)
		if err == nil {
			return f, nil
		}
		if rerr := s.recover(err, cycle); rerr != nil {
			return nil, rerr
		}
	}
}

// recover redials with capped exponential backoff and jitter, re-greets,
// and resends the pending reply. cycle caps repeated recoveries without an
// intervening successful operation.
func (s *clientSession) recover(cause error, cycle int) error {
	if !s.cfg.Reconnect || cycle >= s.cfg.MaxRedials {
		return cause
	}
	closeQuietly(s.conn)
	// A crash fault's downtime is served before the first redial attempt.
	if d := s.inj.takeRejoinDelay(); d > 0 {
		sleep(d)
	}
	lastErr := cause
	for attempt := 0; attempt < s.cfg.MaxRedials; attempt++ {
		sleep(s.backoff(attempt))
		conn, err := net.DialTimeout("tcp", s.cfg.Addr, s.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		s.conn = s.inj.wrap(conn)
		if err := s.hello(); err != nil {
			lastErr = err
			closeQuietly(s.conn)
			continue
		}
		s.res.Reconnects++
		if s.pending != nil {
			if err := s.writePending(); err != nil {
				lastErr = err
				closeQuietly(s.conn)
				continue
			}
		}
		return nil
	}
	return fmt.Errorf("emu: client %d reconnect gave up after %d attempts: %w",
		s.cfg.ID, s.cfg.MaxRedials, errors.Join(cause, lastErr))
}

// backoff is the capped exponential delay before dial attempt k, jittered
// by the session's seeded stream.
func (s *clientSession) backoff(attempt int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 0; i < attempt && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	return time.Duration(float64(d) * (0.5 + s.rng.Float64()))
}

func validateClient(cfg *ClientConfig) error {
	switch {
	case cfg.Addr == "":
		return errors.New("emu: client Addr is required")
	case cfg.ID < 0:
		return errors.New("emu: client ID must be non-negative")
	case cfg.Model == nil:
		return errors.New("emu: client Model factory is required")
	case cfg.Data == nil || cfg.Data.Len() == 0:
		return errors.New("emu: client Data is required")
	case cfg.Epochs <= 0:
		return errors.New("emu: client Epochs must be positive")
	case cfg.Batch <= 0:
		return errors.New("emu: client Batch must be positive")
	case cfg.LR == nil:
		return errors.New("emu: client LR schedule is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 120 * time.Second
	}
	if cfg.Faults != nil {
		cfg.Reconnect = true
	}
	if cfg.MaxRedials <= 0 {
		cfg.MaxRedials = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	return nil
}
