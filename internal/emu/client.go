package emu

import (
	"errors"
	"fmt"
	"net"
	"time"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/xrand"
)

// ClientConfig describes one slave of the emulation.
type ClientConfig struct {
	// Addr of the server to connect to.
	Addr string
	// ID identifies this client in [0, Clients).
	ID int

	// Model builds the local model architecture (must match the server's).
	Model func() *nn.Network
	// Data is this client's private shard.
	Data *dataset.Set

	// Epochs (E) and Batch (B) control the local solver.
	Epochs int
	Batch  int
	// LR is the learning-rate schedule η_t.
	LR core.Schedule
	// Filter gates uploads; nil means vanilla (always upload).
	Filter fl.UploadFilter
	// Compressor lossily encodes uploads (must match the server's codec);
	// nil sends raw float64 updates.
	Compressor fl.UpdateCodec

	// Seed drives the client's batch shuffling.
	Seed int64
	// DialTimeout bounds the initial connect (default 30s).
	DialTimeout time.Duration
	// RoundTimeout bounds any single read/write (default 120s).
	RoundTimeout time.Duration
}

// ClientResult summarises one client's participation.
type ClientResult struct {
	Rounds   int
	Uploads  int
	Skips    int
	SentWire int64 // bytes this client wrote on the wire (hello + updates/skips)
}

// RunClient connects to the server and participates until the server sends
// the done message. It derives the feedback update locally from two
// consecutive model broadcasts — no extra downlink traffic, as in the paper.
//
//cmfl:deterministic
func RunClient(cfg ClientConfig) (*ClientResult, error) {
	if err := validateClient(&cfg); err != nil {
		return nil, err
	}
	filter := cfg.Filter
	if filter == nil {
		filter = fl.Vanilla{}
	}
	conn, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("emu: dial %s: %w", cfg.Addr, err)
	}
	defer closeQuietly(conn)

	res := &ClientResult{}
	//cmfl:lint-ignore deterministicorder I/O deadline only; wall-clock never enters training or accumulation
	if err := conn.SetWriteDeadline(time.Now().Add(cfg.RoundTimeout)); err != nil {
		return nil, err
	}
	n, err := writeFrame(conn, msgHello, encodeHello(cfg.ID))
	if err != nil {
		return nil, err
	}
	res.SentWire += n

	network := cfg.Model()
	rng := xrand.Derive(cfg.Seed, "fl-client", cfg.ID)

	var prevParams, feedback []float64
	for {
		//cmfl:lint-ignore deterministicorder I/O deadline only; wall-clock never enters training or accumulation
		if err := conn.SetReadDeadline(time.Now().Add(cfg.RoundTimeout)); err != nil {
			return nil, err
		}
		f, err := readFrame(conn)
		if err != nil {
			return nil, fmt.Errorf("emu: client %d receive: %w", cfg.ID, err)
		}
		switch f.kind {
		case msgDone:
			return res, nil
		case msgModel:
			round, params, err := decodeModel(f.payload)
			if err != nil {
				return nil, err
			}
			// Feedback is the previous global update, reconstructed as the
			// difference between consecutive broadcasts (Sec. IV-A). Keep
			// the last non-zero difference: a fully skipped round leaves
			// the model unchanged and carries no new direction information.
			if prevParams != nil {
				diff := make([]float64, len(params))
				for j := range params {
					diff[j] = params[j] - prevParams[j]
				}
				if !core.AllZero(diff) {
					feedback = diff
				}
			}
			if feedback == nil {
				feedback = make([]float64, len(params))
			}
			prevParams = params

			delta, _, err := fl.LocalTrain(network, cfg.Data, params, cfg.LR.At(round), cfg.Epochs, cfg.Batch, rng)
			if err != nil {
				return nil, fmt.Errorf("emu: client %d local training: %w", cfg.ID, err)
			}
			dec, err := filter.Check(delta, params, feedback, round)
			if err != nil {
				return nil, fmt.Errorf("emu: client %d filter: %w", cfg.ID, err)
			}
			//cmfl:lint-ignore deterministicorder I/O deadline only; wall-clock never enters training or accumulation
			if err := conn.SetWriteDeadline(time.Now().Add(cfg.RoundTimeout)); err != nil {
				return nil, err
			}
			var sent int64
			if dec.Upload {
				if cfg.Compressor != nil {
					var payload []byte
					payload, err = cfg.Compressor.Encode(delta)
					if err != nil {
						return nil, fmt.Errorf("emu: client %d encode: %w", cfg.ID, err)
					}
					sent, err = writeFrame(conn, msgUpdateC,
						encodeCompressedUpdate(cfg.ID, round, dec.Metric, len(delta), cfg.Compressor.Name(), payload))
				} else {
					sent, err = writeFrame(conn, msgUpdate, encodeUpdate(cfg.ID, round, dec.Metric, delta))
				}
				res.Uploads++
			} else {
				sent, err = writeFrame(conn, msgSkip, encodeSkip(cfg.ID, round, dec.Metric))
				res.Skips++
			}
			if err != nil {
				return nil, fmt.Errorf("emu: client %d send round %d: %w", cfg.ID, round, err)
			}
			res.SentWire += sent
			res.Rounds++
		default:
			return nil, fmt.Errorf("emu: client %d: unexpected frame kind %d", cfg.ID, f.kind)
		}
	}
}

func validateClient(cfg *ClientConfig) error {
	switch {
	case cfg.Addr == "":
		return errors.New("emu: client Addr is required")
	case cfg.ID < 0:
		return errors.New("emu: client ID must be non-negative")
	case cfg.Model == nil:
		return errors.New("emu: client Model factory is required")
	case cfg.Data == nil || cfg.Data.Len() == 0:
		return errors.New("emu: client Data is required")
	case cfg.Epochs <= 0:
		return errors.New("emu: client Epochs must be positive")
	case cfg.Batch <= 0:
		return errors.New("emu: client Batch must be positive")
	case cfg.LR == nil:
		return errors.New("emu: client LR schedule is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 120 * time.Second
	}
	return nil
}
