package emu

import (
	"time"

	"cmfl/internal/vclock"
)

// clock is the package's single time source. Every round-timing read in
// emu — I/O deadlines, elapsed-time assertions in the chaos suite — goes
// through now() instead of calling time.Now directly, so the emulation and
// the discrete-event simulation (internal/sim) share one time abstraction
// (vclock.Clock) and no wall-clock read can sneak into aggregation
// unaudited. The production clock is the wall clock; only tests swap it.
var clock vclock.Clock = vclock.Wall{}

// now reads the package clock.
func now() time.Time { return clock.Now() }

// setClock swaps the package clock and returns a restore func. Test-only:
// the swap is not synchronized against concurrently running servers, so
// callers must install the fake before starting any cluster.
func setClock(c vclock.Clock) (restore func()) {
	prev := clock
	clock = c
	return func() { clock = prev }
}
