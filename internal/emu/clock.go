package emu

import (
	"time"

	"cmfl/internal/vclock"
)

// clock is the package's single time source. Every round-timing read in
// emu — I/O deadlines, elapsed-time assertions in the chaos suite — goes
// through now() instead of calling time.Now directly, so the emulation and
// the discrete-event simulation (internal/sim) share one time abstraction
// (vclock.Clock) and no wall-clock read can sneak into aggregation
// unaudited. The production clock is the wall clock; only tests swap it.
var clock vclock.Clock = vclock.Wall{}

// now reads the package clock.
func now() time.Time { return clock.Now() }

// newTimer arms a single-shot timer on the package clock. Clocks without
// timer support (test fakes that only answer Now) fall back to wall timers:
// the fake still controls every Now read, and deadlines keep firing.
func newTimer(d time.Duration) vclock.Timer {
	if tc, ok := clock.(vclock.TimerClock); ok {
		return tc.NewTimer(d)
	}
	return vclock.Wall{}.NewTimer(d)
}

// sleep blocks for d on the package clock, so injected delays and retry
// backoffs are steered by the same time source as every deadline.
func sleep(d time.Duration) {
	t := newTimer(d)
	<-t.C()
}

// setClock swaps the package clock and returns a restore func. Test-only:
// the swap is not synchronized against concurrently running servers, so
// callers must install the fake before starting any cluster.
func setClock(c vclock.Clock) (restore func()) {
	prev := clock
	clock = c
	return func() { clock = prev }
}
