package emu

import (
	"testing"
	"time"

	"cmfl/internal/vclock"
)

// TestClockHookRoutesTimingReads pins the satellite contract of the sim PR:
// every round-timing read in emu goes through the package clock hook, so a
// swapped clock is what now() reports. Behavioural equivalence of the wall
// default is asserted by the whole chaos suite (elapsed-time bounds there
// read the same hook they are timing).
func TestClockHookRoutesTimingReads(t *testing.T) {
	base := time.Unix(42, 0)
	fake := vclock.NewFixed(base)
	restore := setClock(fake)
	defer restore()

	if got := now(); !got.Equal(base) {
		t.Fatalf("now() = %v, want the fake clock's %v", got, base)
	}
	fake.Advance(7 * time.Second)
	if got := now(); !got.Equal(base.Add(7 * time.Second)) {
		t.Fatalf("now() = %v after Advance, want %v", got, base.Add(7*time.Second))
	}

	restore()
	wall := now()
	if wall.Before(time.Now().Add(-time.Minute)) || wall.After(time.Now().Add(time.Minute)) {
		t.Fatalf("restored clock reads %v, want wall time", wall)
	}
}
