package emu

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
)

// ClusterConfig runs a complete master+slaves emulation in one process over
// localhost TCP — the shape of the paper's 30-node EC2 benchmark, with the
// network stack real and the machines collapsed onto one host.
type ClusterConfig struct {
	Model      func() *nn.Network
	ClientData []*dataset.Set
	TestData   *dataset.Set

	Epochs     int
	Batch      int
	LR         core.Schedule
	Filter     fl.UploadFilter
	Compressor fl.UpdateCodec
	// ErrorFeedback enables client-side EF-SGD residual accumulation for
	// compressed uploads (see ClientConfig.ErrorFeedback).
	ErrorFeedback bool

	Rounds         int
	TargetAccuracy float64
	EvalEvery      int

	Seed int64

	// Limits bounds timing, quorum, and fault posture (see emu.Limits):
	// DialTimeout defaults to 30s, RoundDeadline to 60s, MinQuorum to all
	// clients (or 1 when FaultTolerant/Faults are set), and FaultTolerant
	// is implied by Faults.
	Limits
	// Topology lays out the server's aggregation tree (see emu.Topology).
	// The zero value is the flat server. When Shuffle is set and
	// Topology.Seed is zero, the cluster Seed keys the shard assignment.
	Topology Topology
	// Faults wires a deterministic FaultPlan into every client, enables
	// client reconnection, and implies FaultTolerant. Client errors are
	// then collected into ClusterResult.ClientErrs instead of failing
	// RunCluster (a faulty run may legitimately end with a client
	// mid-recovery).
	Faults *FaultPlan

	// Observers receive the master's live telemetry (see ServerConfig).
	Observers []telemetry.Observer
	// MetricsAddr serves /metrics and /healthz while the cluster runs; the
	// endpoint is torn down before RunCluster returns (use NewServer
	// directly to keep scraping after training ends). The final registry
	// remains readable via ClusterResult.Registry.
	MetricsAddr string
	// Registry receives the master's metrics (optional; see ServerConfig).
	Registry *telemetry.Registry
}

// ClusterResult combines the server view and the per-client views.
type ClusterResult struct {
	Server  *ServerResult
	Clients []*ClientResult
	// ClientErrs holds per-client terminal errors when a FaultPlan was
	// active (nil entries for clean exits). Without a plan, any client
	// error fails RunCluster instead.
	ClientErrs []error
	// Registry is the master's metrics registry (nil unless MetricsAddr or
	// Registry was configured).
	Registry *telemetry.Registry
}

// RunCluster starts a server on an ephemeral localhost port, launches one
// goroutine per client, and returns when training completes.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if len(cfg.ClientData) == 0 {
		return nil, errors.New("emu: cluster needs at least one client shard")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.RoundDeadline <= 0 {
		cfg.RoundDeadline = 60 * time.Second
	}
	if cfg.Faults != nil {
		cfg.FaultTolerant = true
	}
	if cfg.Topology.Shuffle && cfg.Topology.Seed == 0 {
		cfg.Topology.Seed = cfg.Seed
	}
	// The raw I/O safety net sits well above the aggregation deadline so it
	// only ever fires on a truly wedged transport.
	roundTimeout := 2 * cfg.RoundDeadline
	srv, err := NewServer(ServerConfig{
		Addr:           "127.0.0.1:0",
		Clients:        len(cfg.ClientData),
		Model:          cfg.Model,
		TestData:       cfg.TestData,
		EvalEvery:      cfg.EvalEvery,
		Rounds:         cfg.Rounds,
		TargetAccuracy: cfg.TargetAccuracy,
		Compressor:     cfg.Compressor,
		Limits:         cfg.Limits,
		Topology:       cfg.Topology,
		RoundTimeout:   roundTimeout,
		Observers:      cfg.Observers,
		MetricsAddr:    cfg.MetricsAddr,
		Registry:       cfg.Registry,
	})
	if err != nil {
		return nil, err
	}
	defer closeQuietly(srv)

	type serverOut struct {
		res *ServerResult
		err error
	}
	srvCh := make(chan serverOut, 1)
	go func() {
		res, err := srv.Run()
		srvCh <- serverOut{res: res, err: err}
	}()

	// cancel aborts the server early in strict mode: a failed client means
	// the cohort can never complete, so waiting out the accept barrier (or
	// the round deadline) would only leak time. Once-guarded because several
	// client goroutines may fail concurrently.
	var cancelOnce sync.Once
	cancel := func() { cancelOnce.Do(func() { closeQuietly(srv) }) }

	clients := make([]*ClientResult, len(cfg.ClientData))
	clientErrs := make([]error, len(cfg.ClientData))
	var wg sync.WaitGroup
	for i, data := range cfg.ClientData {
		wg.Add(1)
		go func(i int, data *dataset.Set) {
			defer wg.Done()
			res, err := RunClient(ClientConfig{
				Addr:          srv.Addr(),
				ID:            i,
				Model:         cfg.Model,
				Data:          data,
				Epochs:        cfg.Epochs,
				Batch:         cfg.Batch,
				LR:            cfg.LR,
				Filter:        cfg.Filter,
				Compressor:    cfg.Compressor,
				ErrorFeedback: cfg.ErrorFeedback,
				Seed:          cfg.Seed,
				RoundTimeout:  roundTimeout,
				DialTimeout:   cfg.DialTimeout,
				Faults:        cfg.Faults,
			})
			clients[i], clientErrs[i] = res, err
			if err != nil && cfg.Faults == nil {
				cancel()
			}
		}(i, data)
	}
	wg.Wait()
	cliErr := errors.Join(clientErrs...)
	out := <-srvCh
	if cfg.Faults == nil && cliErr != nil {
		return nil, fmt.Errorf("emu: clients: %w", cliErr)
	}
	if out.err != nil {
		return nil, fmt.Errorf("emu: server: %w", out.err)
	}
	if cfg.Faults == nil {
		clientErrs = nil
	}
	return &ClusterResult{Server: out.res, Clients: clients, ClientErrs: clientErrs, Registry: srv.Registry()}, nil
}
