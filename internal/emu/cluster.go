package emu

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
)

// ClusterConfig runs a complete master+slaves emulation in one process over
// localhost TCP — the shape of the paper's 30-node EC2 benchmark, with the
// network stack real and the machines collapsed onto one host.
type ClusterConfig struct {
	Model      func() *nn.Network
	ClientData []*dataset.Set
	TestData   *dataset.Set

	Epochs     int
	Batch      int
	LR         core.Schedule
	Filter     fl.UploadFilter
	Compressor fl.UpdateCodec

	Rounds         int
	TargetAccuracy float64
	EvalEvery      int

	Seed    int64
	Timeout time.Duration // per-message bound for the whole cluster (default 120s)

	// Observers receive the master's live telemetry (see ServerConfig).
	Observers []telemetry.Observer
	// MetricsAddr serves /metrics and /healthz while the cluster runs; the
	// endpoint is torn down before RunCluster returns (use NewServer
	// directly to keep scraping after training ends). The final registry
	// remains readable via ClusterResult.Registry.
	MetricsAddr string
	// Registry receives the master's metrics (optional; see ServerConfig).
	Registry *telemetry.Registry
}

// ClusterResult combines the server view and the per-client views.
type ClusterResult struct {
	Server  *ServerResult
	Clients []*ClientResult
	// Registry is the master's metrics registry (nil unless MetricsAddr or
	// Registry was configured).
	Registry *telemetry.Registry
}

// RunCluster starts a server on an ephemeral localhost port, launches one
// goroutine per client, and returns when training completes.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if len(cfg.ClientData) == 0 {
		return nil, errors.New("emu: cluster needs at least one client shard")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	srv, err := NewServer(ServerConfig{
		Addr:           "127.0.0.1:0",
		Clients:        len(cfg.ClientData),
		Model:          cfg.Model,
		TestData:       cfg.TestData,
		EvalEvery:      cfg.EvalEvery,
		Rounds:         cfg.Rounds,
		TargetAccuracy: cfg.TargetAccuracy,
		Compressor:     cfg.Compressor,
		RoundTimeout:   cfg.Timeout,
		AcceptTimeout:  cfg.Timeout,
		Observers:      cfg.Observers,
		MetricsAddr:    cfg.MetricsAddr,
		Registry:       cfg.Registry,
	})
	if err != nil {
		return nil, err
	}
	defer closeQuietly(srv)

	type serverOut struct {
		res *ServerResult
		err error
	}
	srvCh := make(chan serverOut, 1)
	go func() {
		res, err := srv.Run()
		srvCh <- serverOut{res: res, err: err}
	}()

	clients := make([]*ClientResult, len(cfg.ClientData))
	clientErrs := make([]error, len(cfg.ClientData))
	var wg sync.WaitGroup
	for i, data := range cfg.ClientData {
		wg.Add(1)
		go func(i int, data *dataset.Set) {
			defer wg.Done()
			res, err := RunClient(ClientConfig{
				Addr:         srv.Addr(),
				ID:           i,
				Model:        cfg.Model,
				Data:         data,
				Epochs:       cfg.Epochs,
				Batch:        cfg.Batch,
				LR:           cfg.LR,
				Filter:       cfg.Filter,
				Compressor:   cfg.Compressor,
				Seed:         cfg.Seed,
				RoundTimeout: cfg.Timeout,
				DialTimeout:  cfg.Timeout,
			})
			clients[i], clientErrs[i] = res, err
		}(i, data)
	}
	wg.Wait()
	out := <-srvCh
	if out.err != nil {
		return nil, fmt.Errorf("emu: server: %w", out.err)
	}
	if err := errors.Join(clientErrs...); err != nil {
		return nil, fmt.Errorf("emu: clients: %w", err)
	}
	return &ClusterResult{Server: out.res, Clients: clients, Registry: srv.Registry()}, nil
}
