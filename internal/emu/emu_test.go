package emu

import (
	"bytes"
	"math"
	"net"
	"testing"
	"testing/quick"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/xrand"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	n, err := writeFrame(&buf, msgModel, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(frameOverhead+3) {
		t.Fatalf("wire size = %d, want %d", n, frameOverhead+3)
	}
	f, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.kind != msgModel || !bytes.Equal(f.payload, []byte{1, 2, 3}) {
		t.Fatalf("frame round trip = %+v", f)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, msgDone, nil); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.kind != msgDone || len(f.payload) != 0 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, msgModel})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("expected ErrFrameTooLarge")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, msgModel, 1, 2}) // claims 10 bytes, has 2
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestModelCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		params := rng.NormVec(1+rng.Intn(50), 0, 3)
		round := rng.Intn(10000)
		got, gotParams, err := decodeModel(encodeModel(round, params))
		if err != nil || got != round || len(gotParams) != len(params) {
			return false
		}
		for i := range params {
			if params[i] != gotParams[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		delta := rng.NormVec(1+rng.Intn(50), 0, 3)
		id, round, metric := rng.Intn(100), rng.Intn(1000), rng.Float64()
		gid, gr, gm, gd, err := decodeUpdate(encodeUpdate(id, round, metric, delta))
		if err != nil || gid != id || gr != round || gm != metric || len(gd) != len(delta) {
			return false
		}
		for i := range delta {
			if delta[i] != gd[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipCodecRoundTrip(t *testing.T) {
	id, round, metric, err := decodeSkip(encodeSkip(7, 42, 0.375))
	if err != nil || id != 7 || round != 42 || metric != 0.375 {
		t.Fatalf("skip round trip = %d %d %v %v", id, round, metric, err)
	}
}

func TestHelloCodec(t *testing.T) {
	// v1 (raw) form: 4 bytes, nil spec.
	id, spec, err := decodeHello(encodeHello(29, nil))
	if err != nil || id != 29 || spec != nil {
		t.Fatalf("hello v1 round trip = %d, %v, %v", id, spec, err)
	}
	// v2 form carries the codec spec verbatim.
	wantSpec, err := compress.EncodeSpec(compress.NewChain(compress.TopK{K: 5}, compress.Uniform8{}))
	if err != nil {
		t.Fatal(err)
	}
	id, spec, err = decodeHello(encodeHello(3, wantSpec))
	if err != nil || id != 3 || !bytes.Equal(spec, wantSpec) {
		t.Fatalf("hello v2 round trip = %d, %x, %v (want spec %x)", id, spec, err, wantSpec)
	}
	if _, _, err := decodeHello([]byte{1, 2}); err == nil {
		t.Fatal("expected error for short hello")
	}
	// Bad version tag.
	bad := encodeHello(3, wantSpec)
	bad[4] = 9
	if _, _, err := decodeHello(bad); err == nil {
		t.Fatal("expected error for unknown hello version")
	}
	// Spec length disagreeing with the payload.
	bad = encodeHello(3, wantSpec)
	if _, _, err := decodeHello(bad[:len(bad)-1]); err == nil {
		t.Fatal("expected error for truncated hello spec")
	}
}

func TestDecodeErrorsOnShortPayloads(t *testing.T) {
	if _, _, err := decodeModel([]byte{1}); err == nil {
		t.Fatal("decodeModel should reject short payload")
	}
	if _, _, _, _, err := decodeUpdate([]byte{1, 2, 3}); err == nil {
		t.Fatal("decodeUpdate should reject short payload")
	}
	if _, _, _, err := decodeSkip([]byte{1}); err == nil {
		t.Fatal("decodeSkip should reject short payload")
	}
	// Declared dim larger than payload.
	p := encodeModel(1, []float64{1, 2})
	if _, _, err := decodeModel(p[:len(p)-8]); err == nil {
		t.Fatal("decodeModel should reject inconsistent dim")
	}
}

// clusterConfig builds a small linear-model cluster over synthetic digits.
func clusterConfig(t *testing.T, clients, rounds int, filter fl.UploadFilter) ClusterConfig {
	t.Helper()
	all, err := dataset.Digits(dataset.DigitsConfig{Samples: 300, ImageSize: 10, Noise: 0.2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := dataset.SortedShards(all, clients, 2, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.Digits(dataset.DigitsConfig{Samples: 100, ImageSize: 10, Noise: 0.2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	return ClusterConfig{
		Model: func() *nn.Network {
			return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(100, 10, xrand.Derive(44, "init", 0)))
		},
		ClientData: shards,
		TestData:   test,
		Epochs:     2,
		Batch:      4,
		LR:         core.Constant(0.15),
		Filter:     filter,
		Rounds:     rounds,
		Seed:       45,
		Limits: Limits{
			DialTimeout:   30 * time.Second,
			RoundDeadline: 30 * time.Second,
		},
	}
}

func TestClusterVanillaTrains(t *testing.T) {
	res, err := RunCluster(clusterConfig(t, 4, 10, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Server.History) != 10 {
		t.Fatalf("server history = %d rounds, want 10", len(res.Server.History))
	}
	last := res.Server.History[9]
	if last.CumUploads != 40 {
		t.Fatalf("vanilla uploads = %d, want 40", last.CumUploads)
	}
	if acc := res.Server.FinalAccuracy(); acc < 0.5 {
		t.Fatalf("cluster accuracy = %v, want >= 0.5", acc)
	}
	for i, c := range res.Clients {
		if c.Rounds != 10 || c.Uploads != 10 || c.Skips != 0 {
			t.Fatalf("client %d participation = %+v", i, c)
		}
	}
}

func TestClusterCMFLSkips(t *testing.T) {
	res, err := RunCluster(clusterConfig(t, 6, 12, core.NewFilter(core.Constant(0.5))))
	if err != nil {
		t.Fatal(err)
	}
	last := res.Server.History[len(res.Server.History)-1]
	if last.CumUploads >= 6*len(res.Server.History) {
		t.Fatal("CMFL cluster never skipped an upload")
	}
	totalSkips := 0
	for _, c := range res.Clients {
		totalSkips += c.Skips
	}
	serverSkips := 0
	for _, s := range res.Server.SkipCounts {
		serverSkips += s
	}
	if totalSkips != serverSkips {
		t.Fatalf("client-side skips %d != server-side skips %d", totalSkips, serverSkips)
	}
}

func TestClusterByteAccountingConsistency(t *testing.T) {
	res, err := RunCluster(clusterConfig(t, 3, 5, core.NewFilter(core.Constant(0.4))))
	if err != nil {
		t.Fatal(err)
	}
	// Server-observed uplink wire bytes must equal the sum of what clients
	// sent, minus their hello frames.
	var clientSent int64
	for _, c := range res.Clients {
		clientSent += c.SentWire
	}
	helloBytes := int64(len(res.Clients)) * int64(frameOverhead+4)
	if res.Server.UplinkWireBytes != clientSent-helloBytes {
		t.Fatalf("uplink accounting: server saw %d, clients sent %d (incl. %d hello)",
			res.Server.UplinkWireBytes, clientSent, helloBytes)
	}
	// Application-level bytes (paper metric) must be below wire bytes.
	last := res.Server.History[len(res.Server.History)-1]
	if last.CumUplinkBytes >= res.Server.UplinkWireBytes {
		t.Fatalf("app bytes %d should be < wire bytes %d", last.CumUplinkBytes, res.Server.UplinkWireBytes)
	}
}

func TestClusterEarlyStop(t *testing.T) {
	cfg := clusterConfig(t, 4, 50, nil)
	cfg.TargetAccuracy = 0.4
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Server.History) == 50 {
		t.Fatal("cluster did not stop early")
	}
}

// TestClusterMatchesSimulation verifies the TCP path and the in-process
// simulation compute identical models under vanilla FL (same seeds, same
// aggregation, no filtering).
func TestClusterMatchesSimulation(t *testing.T) {
	ccfg := clusterConfig(t, 4, 6, nil)
	cres, err := RunCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := fl.Run(fl.Config{
		Model:      ccfg.Model,
		ClientData: ccfg.ClientData,
		TestData:   ccfg.TestData,
		Epochs:     ccfg.Epochs,
		Batch:      ccfg.Batch,
		LR:         ccfg.LR,
		Rounds:     6,
		Seed:       ccfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Server.FinalParams) != len(sres.FinalParams) {
		t.Fatal("dimension mismatch")
	}
	for i := range sres.FinalParams {
		if math.Abs(cres.Server.FinalParams[i]-sres.FinalParams[i]) > 1e-12 {
			t.Fatalf("param %d: cluster %v vs simulation %v", i, cres.Server.FinalParams[i], sres.FinalParams[i])
		}
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Clients: 0, Model: nil, Rounds: 1}); err == nil {
		t.Fatal("expected error for zero clients")
	}
	model := func() *nn.Network { return nn.NewLogistic(2, 2, xrand.New(1)) }
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Clients: 1, Model: model, Rounds: 0}); err == nil {
		t.Fatal("expected error for zero rounds")
	}
}

func TestClientValidation(t *testing.T) {
	model := func() *nn.Network { return nn.NewLogistic(2, 2, xrand.New(1)) }
	data, _ := dataset.Digits(dataset.DigitsConfig{Samples: 10, ImageSize: 8, Seed: 1})
	base := ClientConfig{Addr: "x", ID: 0, Model: model, Data: data, Epochs: 1, Batch: 1, LR: core.Constant(0.1)}
	cases := []struct {
		name   string
		mutate func(*ClientConfig)
	}{
		{"no addr", func(c *ClientConfig) { c.Addr = "" }},
		{"negative id", func(c *ClientConfig) { c.ID = -1 }},
		{"nil model", func(c *ClientConfig) { c.Model = nil }},
		{"nil data", func(c *ClientConfig) { c.Data = nil }},
		{"zero epochs", func(c *ClientConfig) { c.Epochs = 0 }},
		{"zero batch", func(c *ClientConfig) { c.Batch = 0 }},
		{"nil lr", func(c *ClientConfig) { c.LR = nil }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := validateClient(&cfg); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestFaultToleranceSurvivesDeadClient(t *testing.T) {
	cfg := clusterConfig(t, 3, 6, nil)
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		Clients:      3,
		Model:        cfg.Model,
		TestData:     cfg.TestData,
		Rounds:       6,
		RoundTimeout: 5 * time.Second,
		Limits:       Limits{DialTimeout: 10 * time.Second, FaultTolerant: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := srv.Run()
		done <- out{res, err}
	}()

	// Two healthy clients; their errors are asserted after the server run.
	clientErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := RunClient(ClientConfig{
				Addr:   srv.Addr(),
				ID:     i,
				Model:  cfg.Model,
				Data:   cfg.ClientData[i],
				Epochs: cfg.Epochs,
				Batch:  cfg.Batch,
				LR:     cfg.LR,
				Seed:   cfg.Seed,
			})
			clientErrs <- err
		}(i)
	}
	// One client that says hello and immediately dies.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(conn, msgHello, encodeHello(2, nil)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	o := <-done
	if o.err != nil {
		t.Fatalf("fault-tolerant server failed: %v", o.err)
	}
	if len(o.res.DroppedClients) != 1 {
		t.Fatalf("dropped clients = %v, want exactly client 2", o.res.DroppedClients)
	}
	if _, ok := o.res.DroppedClients[2]; !ok {
		t.Fatalf("dropped clients = %v, want client 2", o.res.DroppedClients)
	}
	if len(o.res.History) != 6 {
		t.Fatalf("training stopped after %d rounds, want 6", len(o.res.History))
	}
	// Later rounds should proceed with the two survivors.
	last := o.res.History[5]
	if last.Uploaded != 2 {
		t.Fatalf("final round uploads = %d, want 2 survivors", last.Uploaded)
	}
	// The healthy clients must have finished cleanly.
	for i := 0; i < 2; i++ {
		if err := <-clientErrs; err != nil {
			t.Fatalf("healthy client failed: %v", err)
		}
	}
}

func TestStrictModeAbortsOnDeadClient(t *testing.T) {
	cfg := clusterConfig(t, 2, 4, nil)
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		Clients:      2,
		Model:        cfg.Model,
		TestData:     cfg.TestData,
		Rounds:       4,
		RoundTimeout: 3 * time.Second,
		Limits:       Limits{DialTimeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run()
		done <- err
	}()
	clientErr := make(chan error, 1)
	go func() {
		_, err := RunClient(ClientConfig{
			Addr:   srv.Addr(),
			ID:     0,
			Model:  cfg.Model,
			Data:   cfg.ClientData[0],
			Epochs: cfg.Epochs,
			Batch:  cfg.Batch,
			LR:     cfg.LR,
			Seed:   cfg.Seed,
		})
		clientErr <- err
	}()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(conn, msgHello, encodeHello(1, nil)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := <-done; err == nil {
		t.Fatal("strict server should abort when a client dies")
	}
	// The surviving client's connection dies with the aborting server; it
	// must observe that as an error, not a clean finish.
	if err := <-clientErr; err == nil {
		t.Fatal("client finished cleanly although the server aborted mid-run")
	}
}

func TestUpdate2CodecRoundTrip(t *testing.T) {
	payload := []byte{9, 8, 7}
	p := encodeUpdate2(3, 14, 0.25, 100, payload)
	id, round, metric, dim, got, err := decodeUpdate2(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 || round != 14 || metric != 0.25 || dim != 100 {
		t.Fatalf("header round trip: %d %d %v %d", id, round, metric, dim)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %v", got)
	}
	if _, _, _, _, _, err := decodeUpdate2([]byte{1, 2}); err == nil {
		t.Fatal("expected error for short payload")
	}
}

func TestParseReplyHeader(t *testing.T) {
	cases := []struct {
		kind    byte
		payload []byte
	}{
		{msgUpdate, encodeUpdate(7, 42, 0.5, []float64{1, 2})},
		{msgUpdate2, encodeUpdate2(7, 42, 0.5, 2, []byte{1})},
		{msgSkip, encodeSkip(7, 42, 0.5)},
	}
	for _, tc := range cases {
		id, round, err := parseReplyHeader(&frame{kind: tc.kind, payload: tc.payload})
		if err != nil || id != 7 || round != 42 {
			t.Fatalf("kind %d: parseReplyHeader = %d, %d, %v", tc.kind, id, round, err)
		}
	}
	if _, _, err := parseReplyHeader(&frame{kind: msgUpdateCRetired, payload: make([]byte, 24)}); err == nil {
		t.Fatal("retired wire-v1 compressed update must be rejected")
	}
	if _, _, err := parseReplyHeader(&frame{kind: msgModel, payload: make([]byte, 24)}); err == nil {
		t.Fatal("non-reply frame kind must be rejected")
	}
	if _, _, err := parseReplyHeader(&frame{kind: msgSkip, payload: []byte{1}}); err == nil {
		t.Fatal("short reply payload must be rejected")
	}
}

func TestClusterWithCompression(t *testing.T) {
	cfg := clusterConfig(t, 4, 8, nil)
	cfg.Compressor = compress.Uniform8{}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The app-level bytes must reflect the 8-bit encoding (~dim bytes per
	// update instead of dim*8).
	last := res.Server.History[len(res.Server.History)-1]
	dim := len(res.Server.FinalParams)
	raw := int64(last.CumUploads) * int64(dim) * 8
	if last.CumUplinkBytes >= raw/4 {
		t.Fatalf("compressed app bytes %d should be well under raw %d", last.CumUplinkBytes, raw)
	}
	// And the quantised training must still learn.
	if acc := res.Server.FinalAccuracy(); acc < 0.4 {
		t.Fatalf("compressed cluster accuracy = %v, want >= 0.4", acc)
	}
	// Wire bytes shrink too (the real footprint win).
	plain, err := RunCluster(clusterConfig(t, 4, 8, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Server.UplinkWireBytes >= plain.Server.UplinkWireBytes/2 {
		t.Fatalf("compressed wire bytes %d should be far below plain %d",
			res.Server.UplinkWireBytes, plain.Server.UplinkWireBytes)
	}
}

func TestServerRejectsCodecMismatch(t *testing.T) {
	cfg := clusterConfig(t, 2, 3, nil)
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		Clients:      2,
		Model:        cfg.Model,
		TestData:     cfg.TestData,
		Rounds:       3,
		RoundTimeout: 5 * time.Second,
		Limits:       Limits{DialTimeout: 10 * time.Second},
		// Server pins quantize8; clients negotiate top-k below.
		Compressor: compress.Uniform8{},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run()
		done <- err
	}()
	clientErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := RunClient(ClientConfig{
				Addr:       srv.Addr(),
				ID:         i,
				Model:      cfg.Model,
				Data:       cfg.ClientData[i],
				Epochs:     1,
				Batch:      4,
				LR:         cfg.LR,
				Compressor: compress.TopK{K: 10}, // mismatch
				Seed:       cfg.Seed,
			})
			clientErrs <- err
		}(i)
	}
	if err := <-done; err == nil {
		t.Fatal("server should reject mismatched codec")
	}
	// Both clients lose their connection when the server rejects the codec;
	// neither may report a clean finish.
	for i := 0; i < 2; i++ {
		if err := <-clientErrs; err == nil {
			t.Fatal("client finished cleanly although the server rejected its codec")
		}
	}
}

// TestServerAdoptsClientCodec covers the other negotiation branch: a server
// with no pinned codec parses each client's hello spec and decodes whatever
// that client declared, so mixed raw/compressed fleets work.
func TestServerAdoptsClientCodec(t *testing.T) {
	cfg := clusterConfig(t, 2, 3, nil)
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		Clients:      2,
		Model:        cfg.Model,
		TestData:     cfg.TestData,
		Rounds:       3,
		RoundTimeout: 10 * time.Second,
		Limits:       Limits{DialTimeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	type out struct {
		res *ServerResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := srv.Run()
		done <- out{res, err}
	}()
	codecs := []fl.UpdateCodec{nil, compress.NewChain(compress.TopK{K: 20}, compress.Uniform8{})}
	clientErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := RunClient(ClientConfig{
				Addr:       srv.Addr(),
				ID:         i,
				Model:      cfg.Model,
				Data:       cfg.ClientData[i],
				Epochs:     1,
				Batch:      4,
				LR:         cfg.LR,
				Compressor: codecs[i],
				Seed:       cfg.Seed,
			})
			clientErrs <- err
		}(i)
	}
	o := <-done
	if o.err != nil {
		t.Fatalf("mixed-fleet server failed: %v", o.err)
	}
	for i := 0; i < 2; i++ {
		if err := <-clientErrs; err != nil {
			t.Fatalf("mixed-fleet client failed: %v", err)
		}
	}
	// Only client 1's updates are compressed: 3 rounds x 1 client.
	if o.res.CodecUpdates != 3 {
		t.Fatalf("codec updates = %d, want 3", o.res.CodecUpdates)
	}
	if o.res.CodecRawBytes != 3*int64(len(o.res.FinalParams))*8 {
		t.Fatalf("codec raw bytes = %d, want %d", o.res.CodecRawBytes, 3*int64(len(o.res.FinalParams))*8)
	}
	if o.res.CodecEncodedBytes <= 0 || o.res.CodecEncodedBytes >= o.res.CodecRawBytes {
		t.Fatalf("codec encoded bytes = %d, want in (0, %d)", o.res.CodecEncodedBytes, o.res.CodecRawBytes)
	}
}

// TestClusterWithChainCodec runs the flagship wire-v2 stack — CMFL gate +
// top-k selection + 8-bit quantization + error feedback — and checks both
// that training still converges and that the codec telemetry is exact.
func TestClusterWithChainCodec(t *testing.T) {
	cfg := clusterConfig(t, 4, 10, core.NewFilter(core.Constant(0.4)))
	cfg.Compressor = compress.NewChain(compress.TopK{K: 200}, compress.Uniform8{})
	cfg.ErrorFeedback = true
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Server.FinalAccuracy(); acc < 0.4 {
		t.Fatalf("chain-codec cluster accuracy = %v, want >= 0.4", acc)
	}
	last := res.Server.History[len(res.Server.History)-1]
	// Every upload went through the codec; raw bytes are dim*8 per update.
	if res.Server.CodecUpdates != last.CumUploads {
		t.Fatalf("codec updates %d != uploads %d", res.Server.CodecUpdates, last.CumUploads)
	}
	dim := int64(len(res.Server.FinalParams))
	if res.Server.CodecRawBytes != int64(last.CumUploads)*dim*8 {
		t.Fatalf("codec raw bytes = %d, want %d", res.Server.CodecRawBytes, int64(last.CumUploads)*dim*8)
	}
	// App-level accounting counts exactly the encoded payload bytes.
	if last.CumUplinkBytes != res.Server.CodecEncodedBytes+16*int64(cumSkips(res.Server)) {
		t.Fatalf("app bytes %d != encoded %d + skip frames", last.CumUplinkBytes, res.Server.CodecEncodedBytes)
	}
	// The chain payload per update is 4 + 200*4 + 16 + 200 bytes.
	perUpdate := int64(4 + 200*4 + 16 + 200)
	if res.Server.CodecEncodedBytes != int64(last.CumUploads)*perUpdate {
		t.Fatalf("encoded bytes = %d, want %d per update x %d", res.Server.CodecEncodedBytes, perUpdate, last.CumUploads)
	}
}

func cumSkips(res *ServerResult) int {
	n := 0
	for _, s := range res.SkipCounts {
		n += s
	}
	return n
}

// TestErrorFeedbackImprovesAggression: with an extremely lossy codec, EF-SGD
// must at minimum keep the run healthy and produce different (residual-
// corrected) bytes than the no-feedback run.
func TestErrorFeedbackChangesUploads(t *testing.T) {
	base := clusterConfig(t, 3, 5, nil)
	base.Compressor = compress.TopK{K: 20}
	plain, err := RunCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	withEF := clusterConfig(t, 3, 5, nil)
	withEF.Compressor = compress.TopK{K: 20}
	withEF.ErrorFeedback = true
	ef, err := RunCluster(withEF)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range plain.Server.FinalParams {
		if plain.Server.FinalParams[i] != ef.Server.FinalParams[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("error feedback produced bit-identical params to no feedback; residuals are not being applied")
	}
}
