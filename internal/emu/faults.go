package emu

import (
	"errors"
	"net"
	"sort"
	"time"

	"cmfl/internal/xrand"
)

// FaultKind enumerates the failure classes the injector can emulate. Each
// one is applied at the net.Conn layer of the client, so both ends of the
// emulation see realistic transport behaviour rather than a mocked error.
type FaultKind uint8

const (
	// FaultNone is the zero value: no fault.
	FaultNone FaultKind = iota
	// FaultDropUpdate silently swallows the client's reply for the round.
	// The client believes the upload succeeded; the server sees a connected
	// but silent peer — the canonical straggler.
	FaultDropUpdate
	// FaultDelay sleeps for Fault.Delay before the reply leaves the client.
	// Delays shorter than the server's RoundDeadline are absorbed; longer
	// ones turn the client into a straggler whose reply is drained late.
	FaultDelay
	// FaultDisconnect severs the connection mid-frame: part of the reply's
	// header is written, then the socket closes. The server reads a
	// malformed stream; the client reconnects and resends.
	FaultDisconnect
	// FaultCrashRejoin closes the connection before the reply is written,
	// waits Fault.Delay (the downtime), then the client redials, re-greets,
	// and resends the pending reply.
	FaultCrashRejoin
	// FaultCorruptFrame replaces the reply's length prefix with an absurd
	// value (the server rejects it as ErrFrameTooLarge and kills the
	// connection) while the client believes the send succeeded.
	FaultCorruptFrame
)

// String names the fault kind for test output and plan dumps.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDropUpdate:
		return "drop-update"
	case FaultDelay:
		return "delay"
	case FaultDisconnect:
		return "disconnect"
	case FaultCrashRejoin:
		return "crash-rejoin"
	case FaultCorruptFrame:
		return "corrupt-frame"
	}
	return "unknown"
}

// Fault is one scheduled failure.
type Fault struct {
	Kind FaultKind
	// Delay is the sleep before the reply (FaultDelay) or the downtime
	// before redialing (FaultCrashRejoin); ignored by the other kinds.
	Delay time.Duration
}

// FaultEvent is a plan entry in exportable form.
type FaultEvent struct {
	Client int
	Round  int
	Fault  Fault
}

// FaultPlan schedules at most one fault per (client, round) cell. A plan is
// immutable once built and holds no consumed-state, so the *same* plan value
// drives arbitrarily many cluster runs — the determinism contract ("two runs
// of one plan produce bit-identical global models") depends on that.
type FaultPlan struct {
	faults map[uint64]Fault
}

// NewFaultPlan returns an empty plan; populate it with Add.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{faults: make(map[uint64]Fault)}
}

func planKey(client, round int) uint64 {
	return uint64(uint32(client))<<32 | uint64(uint32(round))
}

// Add schedules f for the given client and 1-based round, replacing any
// earlier entry for that cell. It returns the plan for chaining.
func (p *FaultPlan) Add(client, round int, f Fault) *FaultPlan {
	if client >= 0 && round >= 0 && f.Kind != FaultNone {
		p.faults[planKey(client, round)] = f
	}
	return p
}

// At reports the fault scheduled for (client, round), if any.
func (p *FaultPlan) At(client, round int) (Fault, bool) {
	if p == nil || client < 0 || round < 0 {
		return Fault{}, false
	}
	f, ok := p.faults[planKey(client, round)]
	return f, ok
}

// Len returns the number of scheduled faults.
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.faults)
}

// Events lists the plan sorted by (client, round) — for logs and tests.
func (p *FaultPlan) Events() []FaultEvent {
	if p == nil {
		return nil
	}
	out := make([]FaultEvent, 0, len(p.faults))
	for k, f := range p.faults {
		out = append(out, FaultEvent{Client: int(uint32(k >> 32)), Round: int(uint32(k)), Fault: f})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Round < out[j].Round
	})
	return out
}

// FaultRates configures RandomFaultPlan: independent per-cell probabilities
// for each fault class (their sum must stay ≤ 1) and the magnitude of the
// injected latencies.
type FaultRates struct {
	Drop, Delay, Disconnect, Crash, Corrupt float64
	// MeanDelay scales FaultDelay sleeps and FaultCrashRejoin downtimes;
	// actual values are drawn uniformly from [0.5, 1.5)×MeanDelay.
	MeanDelay time.Duration
}

// RandomFaultPlan draws a plan over clients×rounds (1-based rounds) from a
// dedicated seeded stream. Cells are visited in (client, round) order with
// fixed draws per cell, so a (seed, clients, rounds, rates) tuple always
// yields the identical plan.
func RandomFaultPlan(seed int64, clients, rounds int, rates FaultRates) *FaultPlan {
	p := NewFaultPlan()
	rng := xrand.Derive(seed, "emu-faults", 0)
	for c := 0; c < clients; c++ {
		for r := 1; r <= rounds; r++ {
			u := rng.Float64()
			scale := 0.5 + rng.Float64() // always drawn: keeps the stream aligned per cell
			d := time.Duration(float64(rates.MeanDelay) * scale)
			switch {
			case u < rates.Drop:
				p.Add(c, r, Fault{Kind: FaultDropUpdate})
			case u < rates.Drop+rates.Delay:
				p.Add(c, r, Fault{Kind: FaultDelay, Delay: d})
			case u < rates.Drop+rates.Delay+rates.Disconnect:
				p.Add(c, r, Fault{Kind: FaultDisconnect})
			case u < rates.Drop+rates.Delay+rates.Disconnect+rates.Crash:
				p.Add(c, r, Fault{Kind: FaultCrashRejoin, Delay: d})
			case u < rates.Drop+rates.Delay+rates.Disconnect+rates.Crash+rates.Corrupt:
				p.Add(c, r, Fault{Kind: FaultCorruptFrame})
			}
		}
	}
	return p
}

// injectorMode is the injector's per-round write-path state.
type injectorMode uint8

const (
	modePass    injectorMode = iota // no armed fault: writes pass through
	modeArmed                       // fault armed, fires on the next write
	modeSwallow                     // rest of the current frame is discarded
)

// faultInjector executes one client's share of a FaultPlan. All consumed
// state lives here (never in the plan), and everything runs on the client
// goroutine, so no locking is needed.
type faultInjector struct {
	plan   *FaultPlan
	client int

	mode  injectorMode
	fault Fault
	// swallowLeft counts the writes left to discard in modeSwallow. The
	// swallow is scoped to the faulted frame only (writeFrame is exactly two
	// writes: header, payload) — it must never outlive the frame, or it
	// would eat the hello of a reconnect triggered by the fault itself.
	swallowLeft int
	// rejoinDelay is the crash downtime handed to the reconnect path.
	rejoinDelay time.Duration
	// injected counts faults actually fired (reported via ClientResult).
	injected int
}

// newFaultInjector returns nil when there is no plan; all methods tolerate a
// nil receiver so the fault-free path stays untouched.
func newFaultInjector(plan *FaultPlan, client int) *faultInjector {
	if plan == nil || plan.Len() == 0 {
		return nil
	}
	return &faultInjector{plan: plan, client: client}
}

// beginRound arms the fault scheduled for this round (if any) and clears any
// leftover swallow state from the previous round.
func (in *faultInjector) beginRound(round int) {
	if in == nil {
		return
	}
	in.mode = modePass
	in.swallowLeft = 0
	if f, ok := in.plan.At(in.client, round); ok {
		in.mode = modeArmed
		in.fault = f
	}
}

// takeRejoinDelay returns and clears the pending crash downtime.
func (in *faultInjector) takeRejoinDelay() time.Duration {
	if in == nil {
		return 0
	}
	d := in.rejoinDelay
	in.rejoinDelay = 0
	return d
}

// wrap interposes the injector on conn's write path. Nil injectors return
// conn unchanged.
func (in *faultInjector) wrap(conn net.Conn) net.Conn {
	if in == nil {
		return conn
	}
	return &faultConn{Conn: conn, in: in}
}

// faultConn is the net.Conn wrapper that realises the armed fault on the
// first write of the round. writeFrame issues two writes per frame (header,
// then payload), so "first write" is the frame's length prefix — exactly
// where real transport failures bite hardest.
type faultConn struct {
	net.Conn
	in *faultInjector
}

func (c *faultConn) Write(b []byte) (int, error) {
	in := c.in
	switch in.mode {
	case modePass:
		return c.Conn.Write(b)
	case modeSwallow:
		in.swallowLeft--
		if in.swallowLeft <= 0 {
			in.mode = modePass
		}
		return len(b), nil
	case modeArmed:
		// Fall through to the kind dispatch below: fire exactly once per
		// round.
	}
	in.injected++
	switch in.fault.Kind {
	case FaultNone:
		// Armed with no fault: disarm below and write through.
	case FaultDropUpdate:
		in.mode = modeSwallow
		in.swallowLeft = 1 // this header is gone; one payload write follows
		return len(b), nil
	case FaultDelay:
		in.mode = modePass
		sleep(in.fault.Delay)
		return c.Conn.Write(b)
	case FaultDisconnect:
		in.mode = modePass
		n := len(b) / 2
		if n > 0 {
			if wn, err := c.Conn.Write(b[:n]); err != nil {
				n = wn
			}
		}
		closeQuietly(c.Conn)
		return n, errors.New("emu: injected disconnect mid-frame")
	case FaultCrashRejoin:
		in.mode = modePass
		in.rejoinDelay = in.fault.Delay
		closeQuietly(c.Conn)
		return 0, errors.New("emu: injected crash before reply")
	case FaultCorruptFrame:
		// Corrupt the length prefix, then swallow the rest of the frame while
		// reporting success: the client moves on convinced it replied, the
		// server rejects the frame and severs the connection.
		in.mode = modeSwallow
		in.swallowLeft = 1 // the frame's payload write
		hdr := append([]byte(nil), b...)
		if len(hdr) >= 4 {
			hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0xFF
		}
		if _, err := c.Conn.Write(hdr); err != nil {
			return len(b), nil // connection already dying; the swallow story holds
		}
		return len(b), nil
	}
	in.mode = modePass
	return c.Conn.Write(b)
}
