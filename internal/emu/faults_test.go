package emu

import (
	"net"
	"reflect"
	"testing"
	"time"
)

func TestFaultPlanAddAtAndLen(t *testing.T) {
	p := NewFaultPlan().
		Add(0, 1, Fault{Kind: FaultDropUpdate}).
		Add(2, 3, Fault{Kind: FaultDelay, Delay: 50 * time.Millisecond}).
		Add(2, 3, Fault{Kind: FaultCrashRejoin, Delay: time.Millisecond}) // replaces

	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (same-cell Add replaces)", p.Len())
	}
	if f, ok := p.At(2, 3); !ok || f.Kind != FaultCrashRejoin {
		t.Fatalf("At(2,3) = %v, %v; want crash-rejoin", f, ok)
	}
	if _, ok := p.At(1, 1); ok {
		t.Fatal("At(1,1) should be empty")
	}
	if _, ok := p.At(-1, 1); ok {
		t.Fatal("negative client must never match")
	}
	// FaultNone entries are ignored rather than stored.
	p.Add(4, 4, Fault{})
	if p.Len() != 2 {
		t.Fatalf("Len after no-op Add = %d, want 2", p.Len())
	}
}

func TestFaultPlanNilSafe(t *testing.T) {
	var p *FaultPlan
	if p.Len() != 0 {
		t.Fatal("nil plan Len != 0")
	}
	if _, ok := p.At(0, 1); ok {
		t.Fatal("nil plan At matched")
	}
	if p.Events() != nil {
		t.Fatal("nil plan Events != nil")
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	rates := FaultRates{Drop: 0.1, Delay: 0.1, Disconnect: 0.05, Crash: 0.05, Corrupt: 0.05, MeanDelay: 20 * time.Millisecond}
	a := RandomFaultPlan(7, 8, 20, rates)
	b := RandomFaultPlan(7, 8, 20, rates)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different plans")
	}
	if a.Len() == 0 {
		t.Fatal("rates ~0.35 over 160 cells produced an empty plan — generator broken")
	}
	c := RandomFaultPlan(8, 8, 20, rates)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestFaultPlanEventsSorted(t *testing.T) {
	p := NewFaultPlan().
		Add(3, 1, Fault{Kind: FaultDropUpdate}).
		Add(0, 5, Fault{Kind: FaultDropUpdate}).
		Add(0, 2, Fault{Kind: FaultDelay}).
		Add(3, 4, Fault{Kind: FaultCorruptFrame})
	ev := p.Events()
	want := []struct{ c, r int }{{0, 2}, {0, 5}, {3, 1}, {3, 4}}
	if len(ev) != len(want) {
		t.Fatalf("Events len = %d, want %d", len(ev), len(want))
	}
	for i, w := range want {
		if ev[i].Client != w.c || ev[i].Round != w.r {
			t.Fatalf("Events[%d] = (%d,%d), want (%d,%d)", i, ev[i].Client, ev[i].Round, w.c, w.r)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	kinds := map[FaultKind]string{
		FaultNone:         "none",
		FaultDropUpdate:   "drop-update",
		FaultDelay:        "delay",
		FaultDisconnect:   "disconnect",
		FaultCrashRejoin:  "crash-rejoin",
		FaultCorruptFrame: "corrupt-frame",
		FaultKind(99):     "unknown",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Fatalf("FaultKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestInjectorFiresOncePerRound(t *testing.T) {
	plan := NewFaultPlan().Add(1, 2, Fault{Kind: FaultDropUpdate})
	in := newFaultInjector(plan, 1)
	if in == nil {
		t.Fatal("non-empty plan produced nil injector")
	}

	in.beginRound(1)
	if in.mode != modePass {
		t.Fatalf("round 1 mode = %v, want pass", in.mode)
	}
	in.beginRound(2)
	if in.mode != modeArmed {
		t.Fatalf("round 2 mode = %v, want armed", in.mode)
	}
	// Re-arming the same round (e.g. never reached a write) is harmless;
	// the next round clears it.
	in.beginRound(3)
	if in.mode != modePass {
		t.Fatalf("round 3 mode = %v, want pass", in.mode)
	}
}

func TestInjectorNilForEmptyPlan(t *testing.T) {
	if in := newFaultInjector(nil, 0); in != nil {
		t.Fatal("nil plan should yield nil injector")
	}
	if in := newFaultInjector(NewFaultPlan(), 0); in != nil {
		t.Fatal("empty plan should yield nil injector")
	}
	// Nil-receiver methods must all be safe.
	var in *faultInjector
	in.beginRound(1)
	if d := in.takeRejoinDelay(); d != 0 {
		t.Fatal("nil injector rejoin delay != 0")
	}
	var c net.Conn = &countingConn{}
	if in.wrap(c) != c {
		t.Fatal("nil injector wrap must be identity")
	}
}

// TestInjectorWriteSemantics drives the faultConn write path for each kind
// against an in-memory conn and checks the transport-visible outcome.
func TestInjectorWriteSemantics(t *testing.T) {
	t.Run("drop swallows whole round", func(t *testing.T) {
		in := newFaultInjector(NewFaultPlan().Add(0, 1, Fault{Kind: FaultDropUpdate}), 0)
		raw := &countingConn{}
		conn := in.wrap(raw)
		in.beginRound(1)
		if _, err := writeFrame(conn, msgSkip, encodeSkip(0, 1, 0.5)); err != nil {
			t.Fatalf("dropped write must report success, got %v", err)
		}
		if len(raw.writes) != 0 {
			t.Fatalf("drop leaked %d writes to the socket", len(raw.writes))
		}
		in.beginRound(2)
		if _, err := writeFrame(conn, msgSkip, encodeSkip(0, 2, 0.5)); err != nil {
			t.Fatal(err)
		}
		if len(raw.writes) != 2 { // header + payload
			t.Fatalf("round 2 writes = %d, want 2 (pass-through restored)", len(raw.writes))
		}
	})

	t.Run("corrupt poisons header, swallows payload, reports success", func(t *testing.T) {
		in := newFaultInjector(NewFaultPlan().Add(0, 1, Fault{Kind: FaultCorruptFrame}), 0)
		raw := &countingConn{}
		conn := in.wrap(raw)
		in.beginRound(1)
		if _, err := writeFrame(conn, msgSkip, encodeSkip(0, 1, 0.5)); err != nil {
			t.Fatalf("corrupted write must report success, got %v", err)
		}
		if len(raw.writes) != 1 {
			t.Fatalf("corrupt wrote %d chunks, want 1 (poisoned header only)", len(raw.writes))
		}
		hdr := raw.writes[0]
		if len(hdr) < 4 || hdr[0] != 0xFF || hdr[1] != 0xFF || hdr[2] != 0xFF || hdr[3] != 0xFF {
			t.Fatalf("header not poisoned: % x", hdr)
		}
	})

	t.Run("crash closes before writing and stores downtime", func(t *testing.T) {
		in := newFaultInjector(NewFaultPlan().Add(0, 1, Fault{Kind: FaultCrashRejoin, Delay: 5 * time.Millisecond}), 0)
		raw := &countingConn{}
		conn := in.wrap(raw)
		in.beginRound(1)
		if _, err := writeFrame(conn, msgSkip, encodeSkip(0, 1, 0.5)); err == nil {
			t.Fatal("crash write must error")
		}
		if !raw.closed {
			t.Fatal("crash must close the connection")
		}
		if len(raw.writes) != 0 {
			t.Fatal("crash must not write")
		}
		if d := in.takeRejoinDelay(); d != 5*time.Millisecond {
			t.Fatalf("rejoin delay = %v, want 5ms", d)
		}
		if d := in.takeRejoinDelay(); d != 0 {
			t.Fatal("rejoin delay must clear after take")
		}
	})

	t.Run("disconnect writes a partial header then errors", func(t *testing.T) {
		in := newFaultInjector(NewFaultPlan().Add(0, 1, Fault{Kind: FaultDisconnect}), 0)
		raw := &countingConn{}
		conn := in.wrap(raw)
		in.beginRound(1)
		if _, err := writeFrame(conn, msgSkip, encodeSkip(0, 1, 0.5)); err == nil {
			t.Fatal("disconnect write must error")
		}
		if !raw.closed {
			t.Fatal("disconnect must close the connection")
		}
		if len(raw.writes) != 1 || len(raw.writes[0]) >= frameOverhead {
			t.Fatalf("disconnect should leak a truncated header, got %v", raw.writes)
		}
	})
}

// countingConn is a minimal in-memory net.Conn for injector write tests.
type countingConn struct {
	writes [][]byte
	closed bool
}

func (c *countingConn) Write(b []byte) (int, error) {
	cp := append([]byte(nil), b...)
	c.writes = append(c.writes, cp)
	return len(b), nil
}
func (c *countingConn) Read([]byte) (int, error)         { return 0, nil }
func (c *countingConn) Close() error                     { c.closed = true; return nil }
func (c *countingConn) LocalAddr() net.Addr              { return nil }
func (c *countingConn) RemoteAddr() net.Addr             { return nil }
func (c *countingConn) SetDeadline(time.Time) error      { return nil }
func (c *countingConn) SetReadDeadline(time.Time) error  { return nil }
func (c *countingConn) SetWriteDeadline(time.Time) error { return nil }
