package emu

import (
	"bytes"
	"testing"
	"testing/quick"

	"cmfl/internal/xrand"
)

// TestDecodersNeverPanicOnGarbage feeds random byte soup into every decoder
// (the data arrives from the network, so robustness is mandatory) and
// checks that they return errors instead of panicking or fabricating data.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	f := func(seed int64, lenRaw uint16) bool {
		rng := xrand.New(seed)
		n := int(lenRaw % 512)
		garbage := make([]byte, n)
		for i := range garbage {
			garbage[i] = byte(rng.Intn(256))
		}
		// None of these may panic. Errors are fine; a "successful" decode is
		// also fine when the garbage happens to be structurally valid.
		decodeHello(garbage)
		decodeModel(garbage)
		decodeUpdate(garbage)
		decodeSkip(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReadFrameNeverPanicsOnGarbageStream pushes random bytes through the
// framing layer.
func TestReadFrameNeverPanicsOnGarbageStream(t *testing.T) {
	f := func(seed int64, lenRaw uint16) bool {
		rng := xrand.New(seed)
		n := int(lenRaw % 1024)
		garbage := make([]byte, n)
		for i := range garbage {
			garbage[i] = byte(rng.Intn(256))
		}
		r := bytes.NewReader(garbage)
		for {
			if _, err := readFrame(r); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzProtocol is the native fuzz target behind CI's fuzz-smoke step
// (`go test -fuzz Fuzz -fuzztime 10s ./internal/emu`): raw bytes go through
// the framing layer and every decoder. Nothing may panic or allocate
// proportionally to a lying length field; returning an error is the correct
// answer for garbage. Keep this the only Fuzz* function in the package —
// `go test -fuzz` refuses to run when the pattern matches more than one
// target.
func FuzzProtocol(f *testing.F) {
	f.Add(encodeHello(3))
	f.Add(encodeModel(7, []float64{1, 2, 3}))
	f.Add(encodeUpdate(1, 2, 0.5, []float64{4, 5}))
	f.Add(encodeSkip(2, 9, 0.75))
	f.Add(encodeCompressedUpdate(1, 2, 0.5, 4, "uniform8", []byte{1, 2, 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeHello(data)
		decodeModel(data)
		decodeUpdate(data)
		decodeSkip(data)
		decodeCompressedUpdate(data)
		r := bytes.NewReader(data)
		for {
			if _, err := readFrame(r); err != nil {
				break
			}
		}
	})
}

// TestUpdateDecodeRejectsLyingDim guards against a malicious client
// declaring a huge dim with a short payload.
func TestUpdateDecodeRejectsLyingDim(t *testing.T) {
	p := encodeUpdate(1, 2, 0.5, []float64{1, 2, 3})
	// Truncate the values but keep the declared dim.
	if _, _, _, _, err := decodeUpdate(p[:len(p)-8]); err == nil {
		t.Fatal("expected error for short update payload")
	}
}
