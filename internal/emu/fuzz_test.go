package emu

import (
	"bytes"
	"testing"
	"testing/quick"

	"cmfl/internal/compress"
	"cmfl/internal/xrand"
)

// TestDecodersNeverPanicOnGarbage feeds random byte soup into every decoder
// (the data arrives from the network, so robustness is mandatory) and
// checks that they return errors instead of panicking or fabricating data.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	f := func(seed int64, lenRaw uint16) bool {
		rng := xrand.New(seed)
		n := int(lenRaw % 512)
		garbage := make([]byte, n)
		for i := range garbage {
			garbage[i] = byte(rng.Intn(256))
		}
		// None of these may panic. Errors are fine; a "successful" decode is
		// also fine when the garbage happens to be structurally valid.
		decodeHello(garbage)
		decodeModel(garbage)
		decodeUpdate(garbage)
		decodeSkip(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReadFrameNeverPanicsOnGarbageStream pushes random bytes through the
// framing layer.
func TestReadFrameNeverPanicsOnGarbageStream(t *testing.T) {
	f := func(seed int64, lenRaw uint16) bool {
		rng := xrand.New(seed)
		n := int(lenRaw % 1024)
		garbage := make([]byte, n)
		for i := range garbage {
			garbage[i] = byte(rng.Intn(256))
		}
		r := bytes.NewReader(garbage)
		for {
			if _, err := readFrame(r); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzProtocol is one of the native fuzz targets behind CI's fuzz-smoke
// step: raw bytes go through the framing layer and every decoder. Nothing
// may panic or allocate proportionally to a lying length field; returning
// an error is the correct answer for garbage. The package now has two
// Fuzz* functions (see FuzzQuorum), so `go test -fuzz` needs an anchored
// pattern selecting exactly one: `-fuzz '^FuzzProtocol$'`.
func FuzzProtocol(f *testing.F) {
	f.Add(encodeHello(3, nil))
	spec, err := compress.EncodeSpec(compress.NewChain(compress.TopK{K: 2}, compress.Uniform8{}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(encodeHello(3, spec))
	f.Add(encodeModel(7, []float64{1, 2, 3}))
	f.Add(encodeUpdate(1, 2, 0.5, []float64{4, 5}))
	f.Add(encodeSkip(2, 9, 0.75))
	f.Add(encodeUpdate2(1, 2, 0.5, 4, []byte{1, 2, 3}))

	// Injector-shaped corpus: the wire damage the fault classes actually
	// produce (see faults.go), so the fuzzer starts from realistic wrecks.
	mkFrame := func(kind byte, payload []byte) []byte {
		var buf bytes.Buffer
		if _, err := writeFrame(&buf, kind, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	full := mkFrame(msgUpdate, encodeUpdate(0, 3, 0.9, []float64{1, -2, 3}))
	f.Add(full[:2]) // FaultDisconnect: truncated length prefix, stream ends
	oversize := append([]byte(nil), full...)
	oversize[0], oversize[1], oversize[2], oversize[3] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(oversize) // FaultCorruptFrame: absurd declared length
	flipped := append([]byte(nil), full...)
	flipped[frameOverhead+8] ^= 0x40 // bit-flip inside the payload body
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeHello(data)
		decodeModel(data)
		decodeUpdate(data)
		decodeSkip(data)
		decodeUpdate2(data)
		for _, kind := range []byte{msgUpdate, msgUpdate2, msgSkip, msgUpdateCRetired} {
			parseReplyHeader(&frame{kind: kind, payload: data})
		}
		r := bytes.NewReader(data)
		for {
			if _, err := readFrame(r); err != nil {
				break
			}
		}
	})
}

// FuzzQuorum drives the round-reply state machine with arbitrary operation
// sequences — begin-round with fuzz-chosen expected masks, classify with
// in- and out-of-range client ids and rounds before, at, and past the
// current one — and checks the bookkeeping invariants after every step
// (the same ones TestQuorumInvariants spells out deterministically).
// Run with `go test -fuzz '^FuzzQuorum$'`.
func FuzzQuorum(f *testing.F) {
	f.Add(uint8(3), []byte{0, 0x07, 1, 0x00, 5, 0x01, 9, 0x02})
	f.Add(uint8(1), []byte{0, 0xFF, 4, 0x10, 0, 0x01, 8, 0x00})
	f.Fuzz(func(t *testing.T, nClients uint8, ops []byte) {
		clients := int(nClients%8) + 1
		q := NewQuorum(clients)
		round := 0
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			if op%4 == 0 {
				round++
				expected := make([]bool, clients)
				for j := range expected {
					expected[j] = arg&(1<<(j%8)) != 0
				}
				q.BeginRound(round, expected)
			} else {
				// Client ids straddle [0, clients); rounds straddle the
				// current one in both directions.
				q.Classify(int(arg%16)-4, round+int(op%5)-2)
			}
			checkQuorumInvariants(t, q)
		}
	})
}

// TestUpdateDecodeRejectsLyingDim guards against a malicious client
// declaring a huge dim with a short payload.
func TestUpdateDecodeRejectsLyingDim(t *testing.T) {
	p := encodeUpdate(1, 2, 0.5, []float64{1, 2, 3})
	// Truncate the values but keep the declared dim.
	if _, _, _, _, err := decodeUpdate(p[:len(p)-8]); err == nil {
		t.Fatal("expected error for short update payload")
	}
}
