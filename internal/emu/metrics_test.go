package emu

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cmfl/internal/compress"
	"cmfl/internal/core"
)

// scrapeCounters fetches url and returns every sample line parsed as an
// integer counter value keyed by its full series name.
func scrapeCounters(t *testing.T, url string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseInt(line[i+1:], 10, 64); err == nil {
			out[line[:i]] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterMetricsMatchWireAccounting runs a real TCP cluster with the
// /metrics endpoint enabled and asserts the exported wire-byte counters
// equal the ServerResult's exact accounting bit-for-bit. The endpoint stays
// scrapeable after Run returns (Run only closes the training sockets);
// Close tears it down.
func TestClusterMetricsMatchWireAccounting(t *testing.T) {
	cc := clusterConfig(t, 4, 6, core.NewFilter(core.Constant(0.5)))
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		Clients:      len(cc.ClientData),
		Model:        cc.Model,
		TestData:     cc.TestData,
		Rounds:       cc.Rounds,
		RoundTimeout: cc.RoundDeadline,
		Limits:       Limits{DialTimeout: cc.DialTimeout},
		MetricsAddr:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.MetricsAddr() == "" {
		t.Fatal("metrics endpoint not bound")
	}

	type serverOut struct {
		res *ServerResult
		err error
	}
	srvCh := make(chan serverOut, 1)
	go func() {
		res, err := srv.Run()
		srvCh <- serverOut{res, err}
	}()
	var wg sync.WaitGroup
	for i := range cc.ClientData {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := RunClient(ClientConfig{
				Addr:         srv.Addr(),
				ID:           i,
				Model:        cc.Model,
				Data:         cc.ClientData[i],
				Epochs:       cc.Epochs,
				Batch:        cc.Batch,
				LR:           cc.LR,
				Filter:       core.NewFilter(core.Constant(0.5)),
				Seed:         cc.Seed,
				RoundTimeout: cc.RoundDeadline,
				DialTimeout:  cc.DialTimeout,
			})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	out := <-srvCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	res := out.res

	// Run has returned and the done broadcast is in the totals; the scrape
	// must match the exact wire accounting bit-for-bit.
	counters := scrapeCounters(t, "http://"+srv.MetricsAddr()+"/metrics")
	if got := counters["cmfl_emu_uplink_wire_bytes_total"]; got != res.UplinkWireBytes {
		t.Fatalf("uplink wire counter = %d, ServerResult says %d", got, res.UplinkWireBytes)
	}
	if got := counters["cmfl_emu_downlink_wire_bytes_total"]; got != res.DownlinkWireBytes {
		t.Fatalf("downlink wire counter = %d, ServerResult says %d", got, res.DownlinkWireBytes)
	}

	// Application-level families from the shared collector agree with the
	// history's running totals.
	last := res.History[len(res.History)-1]
	if got := counters[`cmfl_uplink_bytes_total{engine="emu"}`]; got != last.CumUplinkBytes {
		t.Fatalf("app uplink counter = %d, history says %d", got, last.CumUplinkBytes)
	}
	if got := counters[`cmfl_uploads_total{engine="emu"}`]; got != int64(last.CumUploads) {
		t.Fatalf("uploads counter = %d, history says %d", got, last.CumUploads)
	}
	if got := counters[`cmfl_rounds_total{engine="emu"}`]; got != int64(len(res.History)) {
		t.Fatalf("rounds counter = %d, history has %d", got, len(res.History))
	}

	// History must carry the emu-specific wire totals too (the old API
	// reused fl.RoundStats and left these zeroed).
	if last.CumUplinkWireBytes != res.UplinkWireBytes {
		t.Fatalf("history wire bytes = %d, result says %d", last.CumUplinkWireBytes, res.UplinkWireBytes)
	}
	if last.CumDownlinkWireBytes <= 0 || last.CumDownlinkWireBytes > res.DownlinkWireBytes {
		t.Fatalf("history downlink wire bytes = %d, result total %d",
			last.CumDownlinkWireBytes, res.DownlinkWireBytes)
	}

	// Liveness endpoint serves alongside /metrics.
	hresp, err := http.Get("http://" + srv.MetricsAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if payload.Status != "ok" {
		t.Fatalf("healthz status = %q", payload.Status)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.MetricsAddr() + "/metrics"); err == nil {
		t.Fatal("metrics endpoint should be down after Close")
	}
}

// TestRunClusterExposesRegistry checks the one-call API: RunCluster tears the
// endpoint down before returning but hands back the final registry.
func TestRunClusterExposesRegistry(t *testing.T) {
	cc := clusterConfig(t, 3, 4, nil)
	cc.MetricsAddr = "127.0.0.1:0"
	res, err := RunCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Registry == nil {
		t.Fatal("ClusterResult.Registry missing")
	}
	snap := res.Registry.Snapshot()
	if got := int64(snap["cmfl_emu_uplink_wire_bytes_total"]); got != res.Server.UplinkWireBytes {
		t.Fatalf("registry uplink = %d, result says %d", got, res.Server.UplinkWireBytes)
	}
	if got := int64(snap["cmfl_emu_downlink_wire_bytes_total"]); got != res.Server.DownlinkWireBytes {
		t.Fatalf("registry downlink = %d, result says %d", got, res.Server.DownlinkWireBytes)
	}
	// A codec-less run still registers the cmfl_codec_* family, at zero.
	if got := snap["cmfl_codec_updates_total"]; got != 0 {
		t.Fatalf("raw run codec counter = %v, want 0", got)
	}
}

// TestClusterCodecCountersMatchResult pins the exported cmfl_codec_* family
// bit-for-bit to the ServerResult accounting under the chain codec.
func TestClusterCodecCountersMatchResult(t *testing.T) {
	cc := clusterConfig(t, 3, 5, core.NewFilter(core.Constant(0.5)))
	cc.Compressor = compress.NewChain(compress.TopK{K: 40}, compress.Uniform8{})
	cc.ErrorFeedback = true
	cc.MetricsAddr = "127.0.0.1:0"
	res, err := RunCluster(cc)
	if err != nil {
		t.Fatal(err)
	}
	srv := res.Server
	snap := res.Registry.Snapshot()
	if got := int64(snap["cmfl_codec_updates_total"]); got != int64(srv.CodecUpdates) {
		t.Fatalf("codec updates counter = %d, result says %d", got, srv.CodecUpdates)
	}
	if got := int64(snap["cmfl_codec_encoded_bytes_total"]); got != srv.CodecEncodedBytes {
		t.Fatalf("codec encoded counter = %d, result says %d", got, srv.CodecEncodedBytes)
	}
	if got := int64(snap["cmfl_codec_raw_bytes_total"]); got != srv.CodecRawBytes {
		t.Fatalf("codec raw counter = %d, result says %d", got, srv.CodecRawBytes)
	}
	if srv.CodecUpdates == 0 {
		t.Fatal("compressed run recorded zero codec updates")
	}
	// App-level uplink bytes = encoded payload bytes + 16 per skip: the
	// wire-byte accounting stays exact with any codec chain.
	last := srv.History[len(srv.History)-1]
	skips := 0
	for _, s := range srv.SkipCounts {
		skips += s
	}
	if last.CumUplinkBytes != srv.CodecEncodedBytes+int64(skips)*16 {
		t.Fatalf("app uplink bytes %d != encoded %d + %d skips x 16",
			last.CumUplinkBytes, srv.CodecEncodedBytes, skips)
	}
}
