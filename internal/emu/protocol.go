// Package emu emulates the paper's EC2 deployment (Sec. V-C): a master
// (server) and D slaves (clients) exchange models and updates over real TCP
// connections with a compact binary wire protocol, and every byte on the
// wire is accounted. A client whose update is filtered sends a small skip
// notification in place of the full weight vector, exactly as the paper's
// implementation note describes.
//
// The package runs equally as separate processes (cmd/cmfl-server and
// cmd/cmfl-client) or as an in-process localhost cluster (RunCluster) for
// tests, examples and benches.
package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Message types on the wire.
const (
	msgHello   byte = 1 // client -> server: clientID
	msgModel   byte = 2 // server -> client: round, params
	msgUpdate  byte = 3 // client -> server: clientID, round, metric, delta
	msgSkip    byte = 4 // client -> server: clientID, round, metric
	msgDone    byte = 5 // server -> client: training finished
	msgUpdateC byte = 6 // client -> server: compressed update (codec payload)
)

// maxFrame bounds a frame to protect against corrupt length prefixes
// (64 MiB covers ~8.4M float64 parameters).
const maxFrame = 64 << 20

// frameOverhead is the per-frame framing cost: 4-byte length + 1-byte type.
const frameOverhead = 5

// ErrFrameTooLarge reports a frame exceeding maxFrame.
var ErrFrameTooLarge = errors.New("emu: frame exceeds maximum size")

// frame is one decoded protocol message.
type frame struct {
	kind    byte
	payload []byte
}

// wireSize returns the total bytes the frame occupies on the wire.
func (f *frame) wireSize() int64 { return int64(frameOverhead + len(f.payload)) }

// writeFrame sends one frame and returns the bytes written.
func writeFrame(w io.Writer, kind byte, payload []byte) (int64, error) {
	if len(payload) > maxFrame {
		return 0, ErrFrameTooLarge
	}
	var hdr [frameOverhead]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("emu: write frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return 0, fmt.Errorf("emu: write frame payload: %w", err)
		}
	}
	return int64(frameOverhead + len(payload)), nil
}

// readFrame receives one frame.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [frameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("emu: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("emu: read frame payload: %w", err)
	}
	return &frame{kind: hdr[4], payload: payload}, nil
}

// putFloats appends vals as big-endian float64 bits.
func putFloats(buf []byte, vals []float64) []byte {
	for _, v := range vals {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
		buf = append(buf, b[:]...)
	}
	return buf
}

// getFloats decodes n big-endian float64 values.
func getFloats(b []byte, n int) ([]float64, error) {
	if len(b) < n*8 {
		return nil, fmt.Errorf("emu: float payload has %d bytes, need %d", len(b), n*8)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8 : (i+1)*8]))
	}
	return out, nil
}

// encodeHello builds a hello payload.
func encodeHello(clientID int) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(clientID))
	return b[:]
}

func decodeHello(p []byte) (int, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("emu: hello payload has %d bytes, want 4", len(p))
	}
	return int(binary.BigEndian.Uint32(p)), nil
}

// encodeModel builds a model-broadcast payload: round, dim, params.
func encodeModel(round int, params []float64) []byte {
	buf := make([]byte, 8, 8+len(params)*8)
	binary.BigEndian.PutUint32(buf[:4], uint32(round))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(params)))
	return putFloats(buf, params)
}

func decodeModel(p []byte) (round int, params []float64, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("emu: model payload has %d bytes, want >= 8", len(p))
	}
	round = int(binary.BigEndian.Uint32(p[:4]))
	dim := int(binary.BigEndian.Uint32(p[4:8]))
	params, err = getFloats(p[8:], dim)
	return round, params, err
}

// encodeUpdate builds an update payload: clientID, round, metric, dim, delta.
func encodeUpdate(clientID, round int, metric float64, delta []float64) []byte {
	buf := make([]byte, 16, 20+len(delta)*8)
	binary.BigEndian.PutUint32(buf[:4], uint32(clientID))
	binary.BigEndian.PutUint32(buf[4:8], uint32(round))
	binary.BigEndian.PutUint64(buf[8:16], math.Float64bits(metric))
	var dimb [4]byte
	binary.BigEndian.PutUint32(dimb[:], uint32(len(delta)))
	buf = append(buf, dimb[:]...)
	return putFloats(buf, delta)
}

func decodeUpdate(p []byte) (clientID, round int, metric float64, delta []float64, err error) {
	if len(p) < 20 {
		return 0, 0, 0, nil, fmt.Errorf("emu: update payload has %d bytes, want >= 20", len(p))
	}
	clientID = int(binary.BigEndian.Uint32(p[:4]))
	round = int(binary.BigEndian.Uint32(p[4:8]))
	metric = math.Float64frombits(binary.BigEndian.Uint64(p[8:16]))
	dim := int(binary.BigEndian.Uint32(p[16:20]))
	delta, err = getFloats(p[20:], dim)
	return clientID, round, metric, delta, err
}

// encodeSkip builds the skip-notification payload: clientID, round, metric.
// This is the paper's "status information" whose size is negligible next to
// a full update.
func encodeSkip(clientID, round int, metric float64) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint32(buf[:4], uint32(clientID))
	binary.BigEndian.PutUint32(buf[4:8], uint32(round))
	binary.BigEndian.PutUint64(buf[8:16], math.Float64bits(metric))
	return buf
}

func decodeSkip(p []byte) (clientID, round int, metric float64, err error) {
	if len(p) != 16 {
		return 0, 0, 0, fmt.Errorf("emu: skip payload has %d bytes, want 16", len(p))
	}
	clientID = int(binary.BigEndian.Uint32(p[:4]))
	round = int(binary.BigEndian.Uint32(p[4:8]))
	metric = math.Float64frombits(binary.BigEndian.Uint64(p[8:16]))
	return clientID, round, metric, nil
}

// Compressed-update support: a client configured with an UpdateCodec sends
// msgUpdateC instead of msgUpdate. The payload carries the codec name so
// the server can verify both ends agree, the original dimension, and the
// codec's byte payload — the bit-reduction of the paper's related work
// measured on a real wire.

// encodeCompressedUpdate builds the msgUpdateC payload:
// clientID, round, metric, dim, codec-name length, codec name, payload.
func encodeCompressedUpdate(clientID, round int, metric float64, dim int, codec string, payload []byte) []byte {
	buf := make([]byte, 0, 25+len(codec)+len(payload))
	var b4 [4]byte
	var b8 [8]byte
	binary.BigEndian.PutUint32(b4[:], uint32(clientID))
	buf = append(buf, b4[:]...)
	binary.BigEndian.PutUint32(b4[:], uint32(round))
	buf = append(buf, b4[:]...)
	binary.BigEndian.PutUint64(b8[:], math.Float64bits(metric))
	buf = append(buf, b8[:]...)
	binary.BigEndian.PutUint32(b4[:], uint32(dim))
	buf = append(buf, b4[:]...)
	if len(codec) > 255 {
		codec = codec[:255]
	}
	buf = append(buf, byte(len(codec)))
	buf = append(buf, codec...)
	return append(buf, payload...)
}

func decodeCompressedUpdate(p []byte) (clientID, round int, metric float64, dim int, codec string, payload []byte, err error) {
	if len(p) < 21 {
		return 0, 0, 0, 0, "", nil, fmt.Errorf("emu: compressed update payload has %d bytes, want >= 21", len(p))
	}
	clientID = int(binary.BigEndian.Uint32(p[:4]))
	round = int(binary.BigEndian.Uint32(p[4:8]))
	metric = math.Float64frombits(binary.BigEndian.Uint64(p[8:16]))
	dim = int(binary.BigEndian.Uint32(p[16:20]))
	nameLen := int(p[20])
	if len(p) < 21+nameLen {
		return 0, 0, 0, 0, "", nil, fmt.Errorf("emu: compressed update codec name truncated")
	}
	codec = string(p[21 : 21+nameLen])
	payload = p[21+nameLen:]
	return clientID, round, metric, dim, codec, payload, nil
}
