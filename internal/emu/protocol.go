// Package emu emulates the paper's EC2 deployment (Sec. V-C): a master
// (server) and D slaves (clients) exchange models and updates over real TCP
// connections with a compact binary wire protocol, and every byte on the
// wire is accounted. A client whose update is filtered sends a small skip
// notification in place of the full weight vector, exactly as the paper's
// implementation note describes.
//
// The package runs equally as separate processes (cmd/cmfl-server and
// cmd/cmfl-client) or as an in-process localhost cluster (RunCluster) for
// tests, examples and benches.
package emu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Message types on the wire.
const (
	msgHello  byte = 1 // client -> server: clientID [+ codec spec, wire v2]
	msgModel  byte = 2 // server -> client: round, params
	msgUpdate byte = 3 // client -> server: clientID, round, metric, delta
	msgSkip   byte = 4 // client -> server: clientID, round, metric
	msgDone   byte = 5 // server -> client: training finished
	// Kind 6 was msgUpdateC (wire v1): a compressed update whose payload
	// repeated the codec name on every frame. Retired by wire v2 — the codec
	// is negotiated once in the hello — and the id stays reserved so a stale
	// v1 client fails loudly instead of being misparsed.
	msgUpdateCRetired byte = 6
	msgUpdate2        byte = 7 // client -> server: clientID, round, metric, dim, codec payload
)

// helloV2 is the version tag of the extended hello payload. A 4-byte hello
// is the v1 form: raw float64 updates, no codec.
const helloV2 = 2

// maxFrame bounds a frame to protect against corrupt length prefixes
// (64 MiB covers ~8.4M float64 parameters).
const maxFrame = 64 << 20

// frameOverhead is the per-frame framing cost: 4-byte length + 1-byte type.
const frameOverhead = 5

// ErrFrameTooLarge reports a frame exceeding maxFrame.
var ErrFrameTooLarge = errors.New("emu: frame exceeds maximum size")

// frame is one decoded protocol message.
type frame struct {
	kind    byte
	payload []byte
}

// wireSize returns the total bytes the frame occupies on the wire.
func (f *frame) wireSize() int64 { return int64(frameOverhead + len(f.payload)) }

// writeFrame sends one frame and returns the bytes written.
func writeFrame(w io.Writer, kind byte, payload []byte) (int64, error) {
	if len(payload) > maxFrame {
		return 0, ErrFrameTooLarge
	}
	var hdr [frameOverhead]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("emu: write frame header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return 0, fmt.Errorf("emu: write frame payload: %w", err)
		}
	}
	return int64(frameOverhead + len(payload)), nil
}

// readFrame receives one frame.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [frameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("emu: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("emu: read frame payload: %w", err)
	}
	return &frame{kind: hdr[4], payload: payload}, nil
}

// putFloats appends vals as big-endian float64 bits.
func putFloats(buf []byte, vals []float64) []byte {
	for _, v := range vals {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
		buf = append(buf, b[:]...)
	}
	return buf
}

// getFloats decodes n big-endian float64 values.
func getFloats(b []byte, n int) ([]float64, error) {
	if len(b) < n*8 {
		return nil, fmt.Errorf("emu: float payload has %d bytes, need %d", len(b), n*8)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8 : (i+1)*8]))
	}
	return out, nil
}

// encodeHello builds a hello payload. A client sending raw float64 updates
// uses the 4-byte v1 form; a client with a codec appends the v2 extension —
// version tag, spec length, and the codec's self-describing wire spec
// (compress.AppendSpec) — negotiating the codec once per connection so
// update frames never repeat codec metadata.
func encodeHello(clientID int, codecSpec []byte) []byte {
	if len(codecSpec) == 0 {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(clientID))
		return b[:]
	}
	buf := make([]byte, 7+len(codecSpec))
	binary.BigEndian.PutUint32(buf[:4], uint32(clientID))
	buf[4] = helloV2
	binary.BigEndian.PutUint16(buf[5:7], uint16(len(codecSpec)))
	copy(buf[7:], codecSpec)
	return buf
}

// decodeHello parses either hello form; codecSpec is nil for a v1 (raw)
// client.
func decodeHello(p []byte) (clientID int, codecSpec []byte, err error) {
	if len(p) == 4 {
		return int(binary.BigEndian.Uint32(p)), nil, nil
	}
	if len(p) < 7 {
		return 0, nil, fmt.Errorf("emu: hello payload has %d bytes, want 4 or >= 7", len(p))
	}
	if p[4] != helloV2 {
		return 0, nil, fmt.Errorf("emu: hello version %d, want %d", p[4], helloV2)
	}
	n := int(binary.BigEndian.Uint16(p[5:7]))
	if len(p) != 7+n || n == 0 {
		return 0, nil, fmt.Errorf("emu: hello spec has %d bytes, header claims %d", len(p)-7, n)
	}
	return int(binary.BigEndian.Uint32(p[:4])), p[7:], nil
}

// encodeModel builds a model-broadcast payload: round, dim, params.
func encodeModel(round int, params []float64) []byte {
	buf := make([]byte, 8, 8+len(params)*8)
	binary.BigEndian.PutUint32(buf[:4], uint32(round))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(params)))
	return putFloats(buf, params)
}

func decodeModel(p []byte) (round int, params []float64, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("emu: model payload has %d bytes, want >= 8", len(p))
	}
	round = int(binary.BigEndian.Uint32(p[:4]))
	dim := int(binary.BigEndian.Uint32(p[4:8]))
	params, err = getFloats(p[8:], dim)
	return round, params, err
}

// encodeUpdate builds an update payload: clientID, round, metric, dim, delta.
func encodeUpdate(clientID, round int, metric float64, delta []float64) []byte {
	buf := make([]byte, 16, 20+len(delta)*8)
	binary.BigEndian.PutUint32(buf[:4], uint32(clientID))
	binary.BigEndian.PutUint32(buf[4:8], uint32(round))
	binary.BigEndian.PutUint64(buf[8:16], math.Float64bits(metric))
	var dimb [4]byte
	binary.BigEndian.PutUint32(dimb[:], uint32(len(delta)))
	buf = append(buf, dimb[:]...)
	return putFloats(buf, delta)
}

func decodeUpdate(p []byte) (clientID, round int, metric float64, delta []float64, err error) {
	if len(p) < 20 {
		return 0, 0, 0, nil, fmt.Errorf("emu: update payload has %d bytes, want >= 20", len(p))
	}
	clientID = int(binary.BigEndian.Uint32(p[:4]))
	round = int(binary.BigEndian.Uint32(p[4:8]))
	metric = math.Float64frombits(binary.BigEndian.Uint64(p[8:16]))
	dim := int(binary.BigEndian.Uint32(p[16:20]))
	delta, err = getFloats(p[20:], dim)
	return clientID, round, metric, delta, err
}

// encodeSkip builds the skip-notification payload: clientID, round, metric.
// This is the paper's "status information" whose size is negligible next to
// a full update.
func encodeSkip(clientID, round int, metric float64) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint32(buf[:4], uint32(clientID))
	binary.BigEndian.PutUint32(buf[4:8], uint32(round))
	binary.BigEndian.PutUint64(buf[8:16], math.Float64bits(metric))
	return buf
}

func decodeSkip(p []byte) (clientID, round int, metric float64, err error) {
	if len(p) != 16 {
		return 0, 0, 0, fmt.Errorf("emu: skip payload has %d bytes, want 16", len(p))
	}
	clientID = int(binary.BigEndian.Uint32(p[:4]))
	round = int(binary.BigEndian.Uint32(p[4:8]))
	metric = math.Float64frombits(binary.BigEndian.Uint64(p[8:16]))
	return clientID, round, metric, nil
}

// Compressed-update support, wire v2: a client that negotiated a codec in
// its hello sends msgUpdate2 — a fixed 20-byte header plus the codec's raw
// byte payload. No codec metadata travels per frame (the connection's hello
// pinned it), so the wire cost is exactly header + codec bytes: the
// bit-reduction of the paper's related work measured on a real wire.

// encodeUpdate2 builds the msgUpdate2 payload:
// clientID, round, metric, dim, codec payload.
func encodeUpdate2(clientID, round int, metric float64, dim int, payload []byte) []byte {
	buf := make([]byte, 20+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(clientID))
	binary.BigEndian.PutUint32(buf[4:8], uint32(round))
	binary.BigEndian.PutUint64(buf[8:16], math.Float64bits(metric))
	binary.BigEndian.PutUint32(buf[16:20], uint32(dim))
	copy(buf[20:], payload)
	return buf
}

// decodeUpdate2 parses a msgUpdate2 payload; the returned codec payload
// aliases p.
func decodeUpdate2(p []byte) (clientID, round int, metric float64, dim int, payload []byte, err error) {
	if len(p) < 20 {
		return 0, 0, 0, 0, nil, fmt.Errorf("emu: update2 payload has %d bytes, want >= 20", len(p))
	}
	clientID = int(binary.BigEndian.Uint32(p[:4]))
	round = int(binary.BigEndian.Uint32(p[4:8]))
	metric = math.Float64frombits(binary.BigEndian.Uint64(p[8:16]))
	dim = int(binary.BigEndian.Uint32(p[16:20]))
	return clientID, round, metric, dim, p[20:], nil
}

// parseReplyHeader reads the (clientID, round) prefix shared by every
// uplink reply kind (msgUpdate, msgUpdate2, msgSkip) without materializing
// the body. The server classifies a frame against the round's quorum state
// first and decodes only accepted frames, so a late or duplicate frame can
// never touch the per-client decode scratch an accepted update aliases.
func parseReplyHeader(f *frame) (clientID, round int, err error) {
	switch f.kind {
	case msgUpdate, msgUpdate2, msgSkip:
	case msgUpdateCRetired:
		return 0, 0, errors.New("emu: received wire-v1 compressed update (kind 6); this server speaks wire v2 — negotiate the codec in the hello")
	default:
		return 0, 0, fmt.Errorf("emu: unexpected frame kind %d", f.kind)
	}
	if len(f.payload) < 8 {
		return 0, 0, fmt.Errorf("emu: frame kind %d reply payload has %d bytes, want >= 8", f.kind, len(f.payload))
	}
	return int(binary.BigEndian.Uint32(f.payload[:4])), int(binary.BigEndian.Uint32(f.payload[4:8])), nil
}
