package emu

import "sort"

// Verdict classifies one reply frame against the current round.
type Verdict uint8

const (
	// VerdictAccept: a first reply for the current round — aggregate it.
	VerdictAccept Verdict = iota
	// VerdictDuplicate: the client already replied this round (e.g. a
	// resend after reconnect whose original did arrive). Drained, counted,
	// never aggregated twice.
	VerdictDuplicate
	// VerdictLate: a reply to an earlier round whose deadline already cut
	// the sender off. Drained and counted; the aggregate is immutable.
	VerdictLate
	// VerdictFuture: a reply to a round the server has not broadcast yet —
	// a protocol violation, the connection cannot be trusted.
	VerdictFuture
	// VerdictUnknown: client id outside [0, clients).
	VerdictUnknown
)

func (v Verdict) String() string {
	switch v {
	case VerdictAccept:
		return "accept"
	case VerdictDuplicate:
		return "duplicate"
	case VerdictLate:
		return "late"
	case VerdictFuture:
		return "future"
	case VerdictUnknown:
		return "unknown"
	}
	return "invalid"
}

// Quorum is the per-round reply bookkeeping shared by every aggregation
// loop that enforces RoundDeadline/MinQuorum semantics: which clients the
// round's model broadcast reached, which have replied, and what to do with
// frames that arrive outside their round. The TCP emulation's shard
// aggregators drive it with real frames; the discrete-event simulation
// (internal/sim) drives the identical machine with virtual-time arrival
// events, so the two engines cannot diverge on straggler or duplicate
// semantics. It is a pure state machine — no I/O, no clock — so the
// FuzzQuorum target can drive it with arbitrary sequences and check its
// invariants directly.
type Quorum struct {
	clients int
	round   int

	// expected marks clients whose round-t model write succeeded; only they
	// owe a reply. A current-round reply from an unexpected client is
	// promoted into the set (its update is valid) so the accounting
	// invariant accepted ≤ expectedCount always holds.
	expected      []bool
	replied       []bool
	expectedCount int
	accepted      int

	// lateFrames / dupFrames accumulate across rounds: drained frames that
	// were received but never aggregated.
	lateFrames int
	dupFrames  int
}

// NewQuorum builds the reply tracker for a fixed client population.
func NewQuorum(clients int) *Quorum {
	return &Quorum{
		clients:  clients,
		expected: make([]bool, clients),
		replied:  make([]bool, clients),
	}
}

// BeginRound arms the tracker for the given round. expected[i] reports
// whether the model broadcast reached client i (missing entries are false).
func (q *Quorum) BeginRound(round int, expected []bool) {
	q.round = round
	q.expectedCount = 0
	q.accepted = 0
	for i := range q.replied {
		q.replied[i] = false
		q.expected[i] = i < len(expected) && expected[i]
		if q.expected[i] {
			q.expectedCount++
		}
	}
}

// Classify routes one reply frame tagged (client, round).
//
//cmfl:hotpath
func (q *Quorum) Classify(client, round int) Verdict {
	if client < 0 || client >= q.clients {
		return VerdictUnknown
	}
	switch {
	case round < q.round:
		q.lateFrames++
		return VerdictLate
	case round > q.round:
		return VerdictFuture
	}
	if q.replied[client] {
		q.dupFrames++
		return VerdictDuplicate
	}
	if !q.expected[client] {
		q.expected[client] = true
		q.expectedCount++
	}
	q.replied[client] = true
	q.accepted++
	return VerdictAccept
}

// Complete reports whether every expected client has replied — the fast
// path that lets healthy rounds finish without waiting for the deadline.
//
//cmfl:hotpath
func (q *Quorum) Complete() bool { return q.accepted >= q.expectedCount }

// Accepted returns the number of replies aggregated this round.
func (q *Quorum) Accepted() int { return q.accepted }

// Expected returns the number of clients that owe a reply this round
// (broadcast reached plus promotions).
func (q *Quorum) Expected() int { return q.expectedCount }

// StragglerCount returns how many expected clients have not replied,
// without materialising the id list — the million-client simulation reads
// this every round where Stragglers would allocate.
func (q *Quorum) StragglerCount() int { return q.expectedCount - q.accepted }

// Replied reports whether client's reply was accepted this round. Clients
// outside [0, clients) have not replied.
func (q *Quorum) Replied(client int) bool {
	return client >= 0 && client < q.clients && q.replied[client]
}

// DrainCounts returns the cumulative late and duplicate frame tallies.
func (q *Quorum) DrainCounts() (late, dups int) { return q.lateFrames, q.dupFrames }

// Stragglers lists the expected clients that have not replied, ascending —
// the set excluded when the deadline fires.
func (q *Quorum) Stragglers() []int {
	var out []int
	for i := range q.expected {
		if q.expected[i] && !q.replied[i] {
			out = append(out, i)
		}
	}
	sort.Ints(out) // already ascending by construction; keep the contract explicit
	return out
}
