package emu

import "sort"

// frameVerdict classifies one reply frame against the current round.
type frameVerdict uint8

const (
	// verdictAccept: a first reply for the current round — aggregate it.
	verdictAccept frameVerdict = iota
	// verdictDuplicate: the client already replied this round (e.g. a
	// resend after reconnect whose original did arrive). Drained, counted,
	// never aggregated twice.
	verdictDuplicate
	// verdictLate: a reply to an earlier round whose deadline already cut
	// the sender off. Drained and counted; the aggregate is immutable.
	verdictLate
	// verdictFuture: a reply to a round the server has not broadcast yet —
	// a protocol violation, the connection cannot be trusted.
	verdictFuture
	// verdictUnknown: client id outside [0, clients).
	verdictUnknown
)

func (v frameVerdict) String() string {
	switch v {
	case verdictAccept:
		return "accept"
	case verdictDuplicate:
		return "duplicate"
	case verdictLate:
		return "late"
	case verdictFuture:
		return "future"
	case verdictUnknown:
		return "unknown"
	}
	return "invalid"
}

// quorumState is the master's per-round reply bookkeeping: which clients the
// round's model broadcast reached, which have replied, and what to do with
// frames that arrive outside their round. It is a pure state machine — no
// I/O, no clock — so the FuzzQuorum target can drive it with arbitrary
// sequences and check its invariants directly.
type quorumState struct {
	clients int
	round   int

	// expected marks clients whose round-t model write succeeded; only they
	// owe a reply. A current-round reply from an unexpected client is
	// promoted into the set (its update is valid) so the accounting
	// invariant accepted ≤ expectedCount always holds.
	expected      []bool
	replied       []bool
	expectedCount int
	accepted      int

	// lateFrames / dupFrames accumulate across rounds: drained frames that
	// were received but never aggregated.
	lateFrames int
	dupFrames  int
}

func newQuorumState(clients int) *quorumState {
	return &quorumState{
		clients:  clients,
		expected: make([]bool, clients),
		replied:  make([]bool, clients),
	}
}

// beginRound arms the tracker for the given round. expected[i] reports
// whether the model broadcast reached client i (missing entries are false).
func (q *quorumState) beginRound(round int, expected []bool) {
	q.round = round
	q.expectedCount = 0
	q.accepted = 0
	for i := range q.replied {
		q.replied[i] = false
		q.expected[i] = i < len(expected) && expected[i]
		if q.expected[i] {
			q.expectedCount++
		}
	}
}

// classify routes one reply frame tagged (client, round).
func (q *quorumState) classify(client, round int) frameVerdict {
	if client < 0 || client >= q.clients {
		return verdictUnknown
	}
	switch {
	case round < q.round:
		q.lateFrames++
		return verdictLate
	case round > q.round:
		return verdictFuture
	}
	if q.replied[client] {
		q.dupFrames++
		return verdictDuplicate
	}
	if !q.expected[client] {
		q.expected[client] = true
		q.expectedCount++
	}
	q.replied[client] = true
	q.accepted++
	return verdictAccept
}

// complete reports whether every expected client has replied — the fast
// path that lets healthy rounds finish without waiting for the deadline.
func (q *quorumState) complete() bool { return q.accepted >= q.expectedCount }

// stragglers lists the expected clients that have not replied, ascending —
// the set excluded when the deadline fires.
func (q *quorumState) stragglers() []int {
	var out []int
	for i := range q.expected {
		if q.expected[i] && !q.replied[i] {
			out = append(out, i)
		}
	}
	sort.Ints(out) // already ascending by construction; keep the contract explicit
	return out
}
