package emu

import (
	"strings"
	"testing"
	"time"
)

// TestQuorumDeadlineEdges drives the state machine through the reply
// patterns a deadline can cut off, table-driven, and checks the quantities
// tree.go judges the global quorum with: accepted vs the minimum at the
// instant the deadline would fire.
func TestQuorumDeadlineEdges(t *testing.T) {
	cases := []struct {
		name      string
		clients   int
		expected  []int // clients the broadcast reached
		replies   []int // clients that reply in time, in order
		minQuorum int
		wantOK    bool // quorum met when the deadline fires
		wantAcc   int
		wantStrag int
	}{
		{
			name:    "exactly met at deadline",
			clients: 4, expected: []int{0, 1, 2, 3}, replies: []int{0, 2},
			minQuorum: 2, wantOK: true, wantAcc: 2, wantStrag: 2,
		},
		{
			name:    "one short at deadline",
			clients: 4, expected: []int{0, 1, 2, 3}, replies: []int{3},
			minQuorum: 2, wantOK: false, wantAcc: 1, wantStrag: 3,
		},
		{
			name:    "all stragglers",
			clients: 3, expected: []int{0, 1, 2}, replies: nil,
			minQuorum: 1, wantOK: false, wantAcc: 0, wantStrag: 3,
		},
		{
			name:    "promotion lifts accepted to the floor",
			clients: 3, expected: []int{0}, replies: []int{1, 2},
			minQuorum: 2, wantOK: true, wantAcc: 2, wantStrag: 1,
		},
		{
			name:    "full quorum finishes before the deadline",
			clients: 2, expected: []int{0, 1}, replies: []int{1, 0},
			minQuorum: 2, wantOK: true, wantAcc: 2, wantStrag: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := NewQuorum(tc.clients)
			q.BeginRound(7, mask(tc.clients, tc.expected...))
			for _, c := range tc.replies {
				if v := q.Classify(c, 7); v != VerdictAccept {
					t.Fatalf("reply from %d = %v, want accept", c, v)
				}
			}
			if got := q.Accepted() >= tc.minQuorum; got != tc.wantOK {
				t.Fatalf("quorum met = %v (accepted %d, min %d), want %v",
					got, q.Accepted(), tc.minQuorum, tc.wantOK)
			}
			if q.Accepted() != tc.wantAcc {
				t.Fatalf("accepted = %d, want %d", q.Accepted(), tc.wantAcc)
			}
			if q.StragglerCount() != tc.wantStrag {
				t.Fatalf("straggler count = %d, want %d", q.StragglerCount(), tc.wantStrag)
			}
			if got := len(q.Stragglers()); got != tc.wantStrag {
				t.Fatalf("len(Stragglers()) = %d, disagrees with StragglerCount %d", got, tc.wantStrag)
			}
			if full := q.Accepted() == q.Expected(); full != q.Complete() {
				t.Fatalf("Complete() = %v, accepted %d of %d", q.Complete(), q.Accepted(), q.Expected())
			}
		})
	}
}

// TestQuorumDuplicateAtRoundBoundary pins what happens to a resend that
// crosses BeginRound: inside the round it is a duplicate; once the next
// round is armed the same frame is late. Neither is ever aggregated, and
// both drain tallies survive the boundary.
func TestQuorumDuplicateAtRoundBoundary(t *testing.T) {
	cases := []struct {
		name  string
		steps []struct {
			client, round int
			want          Verdict
		}
		wantLate, wantDup int
	}{
		{
			name: "resend after accept, then round advances",
			steps: []struct {
				client, round int
				want          Verdict
			}{
				{0, 1, VerdictAccept},
				{0, 1, VerdictDuplicate}, // resend inside the round
				{1, 1, VerdictAccept},
				{0, 2, VerdictAccept},    // round advanced below
				{0, 1, VerdictLate},      // same resend, now across the boundary
				{0, 2, VerdictDuplicate}, // dup classification resets per round
			},
			wantLate: 1, wantDup: 2,
		},
		{
			name: "duplicate storm straddling the boundary",
			steps: []struct {
				client, round int
				want          Verdict
			}{
				{1, 1, VerdictAccept},
				{1, 1, VerdictDuplicate},
				{1, 1, VerdictDuplicate},
				{1, 2, VerdictAccept}, // round advanced below
				{1, 1, VerdictLate},
				{1, 1, VerdictLate},
			},
			wantLate: 2, wantDup: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := NewQuorum(2)
			q.BeginRound(1, mask(2, 0, 1))
			round := 1
			for i, s := range tc.steps {
				if s.round > round && s.want == VerdictAccept {
					round = s.round
					q.BeginRound(round, mask(2, 0, 1))
				}
				if v := q.Classify(s.client, s.round); v != s.want {
					t.Fatalf("step %d: Classify(%d, %d) = %v, want %v", i, s.client, s.round, v, s.want)
				}
				checkQuorumInvariants(t, q)
			}
			late, dups := q.DrainCounts()
			if late != tc.wantLate || dups != tc.wantDup {
				t.Fatalf("drain counts = %d late / %d dup, want %d/%d", late, dups, tc.wantLate, tc.wantDup)
			}
		})
	}
}

// TestChaosMinQuorumExactlyMetAtDeadline runs a real cluster where the
// deadline fires with accepted == MinQuorum exactly: two of three clients
// drop every reply, the floor is one. The round must aggregate (not abort)
// and the droppers must be recorded as stragglers.
func TestChaosMinQuorumExactlyMetAtDeadline(t *testing.T) {
	plan := NewFaultPlan().
		Add(1, 1, Fault{Kind: FaultDropUpdate}).Add(2, 1, Fault{Kind: FaultDropUpdate}).
		Add(1, 2, Fault{Kind: FaultDropUpdate}).Add(2, 2, Fault{Kind: FaultDropUpdate})
	res := chaosCluster(t, 3, 2, 700*time.Millisecond, 1, plan)
	if got := len(res.Server.History); got != 2 {
		t.Fatalf("aggregated %d rounds, want 2 (quorum exactly met must not abort)", got)
	}
	if res.Server.StragglerCounts[0] != 0 {
		t.Fatalf("client 0 replied every round but has %d straggler rounds", res.Server.StragglerCounts[0])
	}
	for c := 1; c <= 2; c++ {
		if res.Server.StragglerCounts[c] != 2 {
			t.Fatalf("client %d dropped both rounds but has %d straggler rounds", c, res.Server.StragglerCounts[c])
		}
	}
}

// TestChaosAllStragglerAbortMessage runs the all-straggler abort twice and
// asserts the quorum error is (a) the deadline-fired variant with its full
// accounting and (b) stable across runs — downstream tooling greps for it.
func TestChaosAllStragglerAbortMessage(t *testing.T) {
	run := func() error {
		plan := NewFaultPlan().
			Add(0, 1, Fault{Kind: FaultDropUpdate}).Add(1, 1, Fault{Kind: FaultDropUpdate})
		cfg := clusterConfig(t, 2, 3, nil)
		cfg.DialTimeout = 10 * time.Second
		cfg.RoundDeadline = 500 * time.Millisecond
		cfg.MinQuorum = 1
		cfg.Faults = plan
		_, err := RunCluster(cfg)
		return err
	}
	first, second := run(), run()
	if first == nil || second == nil {
		t.Fatalf("all-straggler round must abort, got %v / %v", first, second)
	}
	want := "emu: round 1: quorum not met at deadline 500ms: 0 of 2 replies (minimum 1)"
	if !strings.Contains(first.Error(), want) {
		t.Fatalf("abort error = %q, want it to contain %q", first, want)
	}
	if first.Error() != second.Error() {
		t.Fatalf("abort message unstable across reruns:\n  first:  %q\n  second: %q", first, second)
	}
}
