package emu

import (
	"reflect"
	"testing"
)

func mask(clients int, on ...int) []bool {
	m := make([]bool, clients)
	for _, i := range on {
		m[i] = true
	}
	return m
}

func TestQuorumHappyPath(t *testing.T) {
	q := NewQuorum(3)
	q.BeginRound(1, mask(3, 0, 1, 2))
	if q.Complete() {
		t.Fatal("complete before any reply")
	}
	for i := 0; i < 3; i++ {
		if v := q.Classify(i, 1); v != VerdictAccept {
			t.Fatalf("client %d verdict = %v, want accept", i, v)
		}
	}
	if !q.Complete() {
		t.Fatal("not complete after all replies")
	}
	if got := q.Stragglers(); len(got) != 0 {
		t.Fatalf("stragglers = %v, want none", got)
	}
}

func TestQuorumVerdicts(t *testing.T) {
	q := NewQuorum(4)
	q.BeginRound(2, mask(4, 0, 1, 2)) // client 3's broadcast failed

	if v := q.Classify(0, 2); v != VerdictAccept {
		t.Fatalf("first reply = %v, want accept", v)
	}
	if v := q.Classify(0, 2); v != VerdictDuplicate {
		t.Fatalf("second reply = %v, want duplicate", v)
	}
	if v := q.Classify(1, 1); v != VerdictLate {
		t.Fatalf("old-round reply = %v, want late", v)
	}
	if v := q.Classify(1, 3); v != VerdictFuture {
		t.Fatalf("future-round reply = %v, want future", v)
	}
	if v := q.Classify(-1, 2); v != VerdictUnknown {
		t.Fatalf("negative client = %v, want unknown", v)
	}
	if v := q.Classify(4, 2); v != VerdictUnknown {
		t.Fatalf("out-of-range client = %v, want unknown", v)
	}
	if q.dupFrames != 1 || q.lateFrames != 1 {
		t.Fatalf("dup/late = %d/%d, want 1/1", q.dupFrames, q.lateFrames)
	}

	// An unexpected client replying for the current round is promoted into
	// the expected set and accepted: its update is valid round-2 work.
	if v := q.Classify(3, 2); v != VerdictAccept {
		t.Fatalf("unexpected current-round reply = %v, want accept", v)
	}
	if q.expectedCount != 4 || q.accepted != 2 {
		t.Fatalf("expected/accepted = %d/%d, want 4/2", q.expectedCount, q.accepted)
	}
	if got, want := q.Stragglers(), []int{1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("stragglers = %v, want %v", got, want)
	}
}

func TestQuorumBeginRoundResets(t *testing.T) {
	q := NewQuorum(2)
	q.BeginRound(1, mask(2, 0, 1))
	q.Classify(0, 1)
	q.Classify(0, 1) // dup
	q.BeginRound(2, mask(2, 1))

	if q.expectedCount != 1 || q.accepted != 0 {
		t.Fatalf("after reset expected/accepted = %d/%d, want 1/0", q.expectedCount, q.accepted)
	}
	// Cumulative drain counters survive the reset.
	if q.dupFrames != 1 {
		t.Fatalf("dupFrames reset unexpectedly: %d", q.dupFrames)
	}
	// Client 0 is no longer expected: its round-1 reply is late, a round-2
	// reply is a promotion.
	if v := q.Classify(0, 1); v != VerdictLate {
		t.Fatalf("stale reply after reset = %v, want late", v)
	}
	if got, want := q.Stragglers(), []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("stragglers = %v, want %v", got, want)
	}
}

// TestQuorumInvariants mirrors what FuzzQuorum asserts, as a deterministic
// sanity check that the invariants themselves are satisfiable.
func TestQuorumInvariants(t *testing.T) {
	q := NewQuorum(5)
	q.BeginRound(3, mask(5, 0, 2, 4))
	seq := []struct{ c, r int }{{0, 3}, {0, 3}, {2, 2}, {4, 3}, {1, 3}, {3, 4}, {9, 3}}
	for _, s := range seq {
		q.Classify(s.c, s.r)
		checkQuorumInvariants(t, q)
	}
}

func checkQuorumInvariants(t *testing.T, q *Quorum) {
	t.Helper()
	if q.accepted > q.expectedCount {
		t.Fatalf("accepted %d > expected %d", q.accepted, q.expectedCount)
	}
	if q.expectedCount > q.clients {
		t.Fatalf("expected %d > clients %d", q.expectedCount, q.clients)
	}
	if got := len(q.Stragglers()); got != q.expectedCount-q.accepted {
		t.Fatalf("stragglers %d != expected-accepted %d", got, q.expectedCount-q.accepted)
	}
	for _, id := range q.Stragglers() {
		if q.replied[id] {
			t.Fatalf("straggler %d has replied", id)
		}
	}
	if q.lateFrames < 0 || q.dupFrames < 0 {
		t.Fatal("negative drain counter")
	}
}
