package emu

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
)

// ServerConfig describes the master side of the emulation.
type ServerConfig struct {
	// Addr to listen on, e.g. "127.0.0.1:0".
	Addr string
	// Clients is D, the number of slaves that must connect before training.
	Clients int

	// Model builds the global model architecture.
	Model func() *nn.Network
	// TestData evaluates global accuracy after each round.
	TestData *dataset.Set
	// EvalEvery evaluates accuracy every k rounds (default 1).
	EvalEvery int
	// EvalBatch bounds evaluation forward batches (default 64).
	EvalBatch int

	// Rounds is the number of synchronous iterations.
	Rounds int
	// TargetAccuracy stops early when reached (0 disables).
	TargetAccuracy float64

	// Compressor decodes compressed client uploads; must match the codec
	// the clients were configured with. Nil accepts only raw updates.
	Compressor fl.UpdateCodec

	// RoundTimeout bounds waiting for any single client message
	// (default 60s).
	RoundTimeout time.Duration
	// AcceptTimeout bounds waiting for all clients to connect
	// (default 60s).
	AcceptTimeout time.Duration

	// FaultTolerant makes the server survive client failures: a client
	// whose connection errors or times out is dropped for the rest of the
	// run and its missing updates count as skips. Training aborts only
	// when every client is gone. Without it (the default) any failure
	// aborts the run, which keeps tests strict.
	FaultTolerant bool

	// Observers receive live telemetry: one telemetry.ClientEvent per
	// reply (updates first, then skips, each in client order) followed by
	// one telemetry.RoundEvent per round.
	Observers []telemetry.Observer
	// MetricsAddr, when non-empty (e.g. "127.0.0.1:0"), serves the
	// master's metrics registry as a Prometheus-text /metrics and JSON
	// /healthz endpoint over HTTP while the cluster runs. The endpoint
	// stays up after Run returns — with its counters matching the final
	// ServerResult wire totals exactly — until Close.
	MetricsAddr string
	// Registry receives the master's metrics. Optional: when nil and
	// MetricsAddr is set, the server creates its own. Wire-byte counters
	// (cmfl_emu_uplink_wire_bytes_total, cmfl_emu_downlink_wire_bytes_total)
	// are pinned to the exact TCP payload accounting of ServerResult.
	Registry *telemetry.Registry
}

// RoundStats is the emulation master's round record: the shared
// communication core plus the wire-level running totals only the real
// network stack can observe. It replaces the earlier reuse of fl.RoundStats,
// which left the simulation-only fields (train loss, significance, Eq. 8
// trace) silently zeroed.
type RoundStats struct {
	telemetry.RoundEvent

	// MeanRelevance is the mean reported filter metric across this round's
	// updates and skips (NaN when no client reported).
	MeanRelevance float64
	// CumUplinkWireBytes / CumDownlinkWireBytes are the actual TCP payload
	// bytes (frames incl. framing overhead) observed through this round.
	CumUplinkWireBytes   int64
	CumDownlinkWireBytes int64
}

// ServerResult extends the round history with wire-level byte counts.
type ServerResult struct {
	History []RoundStats
	// FinalParams is the global model after the last round.
	FinalParams []float64
	// UplinkWireBytes / DownlinkWireBytes are the actual bytes observed on
	// the TCP payload stream (frames incl. framing overhead).
	UplinkWireBytes   int64
	DownlinkWireBytes int64
	// SkipCounts per client over the run.
	SkipCounts []int
	// DroppedClients lists clients removed by fault tolerance, with the
	// round in which they failed.
	DroppedClients map[int]int
}

// FinalAccuracy returns the last evaluated accuracy, or NaN.
func (r *ServerResult) FinalAccuracy() float64 {
	for i := len(r.History) - 1; i >= 0; i-- {
		if !math.IsNaN(r.History[i].Accuracy) {
			return r.History[i].Accuracy
		}
	}
	return math.NaN()
}

// Server is the master of Algorithm 1's GlobalOptimization, run over TCP.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	// Telemetry plumbing: observers include any configured Collector; the
	// wire counters mirror ServerResult's exact TCP payload accounting.
	obs          []telemetry.Observer
	reg          *telemetry.Registry
	metrics      *telemetry.MetricsServer
	uplinkWire   *telemetry.Counter
	downlinkWire *telemetry.Counter
	lastUpWire   int64
	lastDownWire int64

	mu    sync.Mutex
	conns []net.Conn
	alive []bool
}

// NewServer validates the configuration and binds the listen socket, so the
// effective address (with a resolved port) is known before Run.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clients <= 0 {
		return nil, errors.New("emu: Clients must be positive")
	}
	if cfg.Model == nil {
		return nil, errors.New("emu: Model factory is required")
	}
	if cfg.Rounds <= 0 {
		return nil, errors.New("emu: Rounds must be positive")
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	if cfg.EvalBatch <= 0 {
		cfg.EvalBatch = 64
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 60 * time.Second
	}
	if cfg.AcceptTimeout <= 0 {
		cfg.AcceptTimeout = 60 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("emu: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln, obs: cfg.Observers}
	if cfg.Registry != nil || cfg.MetricsAddr != "" {
		s.reg = cfg.Registry
		if s.reg == nil {
			s.reg = telemetry.NewRegistry()
		}
		s.obs = append(append([]telemetry.Observer(nil), cfg.Observers...), telemetry.NewCollector(s.reg))
		s.uplinkWire = s.reg.Counter(`cmfl_emu_uplink_wire_bytes_total`, "TCP payload bytes received from clients (frames incl. framing overhead).")
		s.downlinkWire = s.reg.Counter(`cmfl_emu_downlink_wire_bytes_total`, "TCP payload bytes sent to clients (frames incl. framing overhead).")
	}
	if cfg.MetricsAddr != "" {
		ms, err := telemetry.Serve(cfg.MetricsAddr, s.reg)
		if err != nil {
			closeQuietly(ln)
			return nil, err
		}
		s.metrics = ms
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr returns the bound /metrics endpoint address, or "" when
// MetricsAddr was not configured.
func (s *Server) MetricsAddr() string {
	if s.metrics == nil {
		return ""
	}
	return s.metrics.Addr()
}

// Registry returns the server's metrics registry (nil unless MetricsAddr or
// Registry was configured).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Close releases the listener, any client connections, and the metrics
// endpoint.
func (s *Server) Close() error {
	err := s.closeConns()
	if s.metrics != nil {
		if merr := s.metrics.Close(); err == nil {
			err = merr
		}
		s.metrics = nil
	}
	return err
}

// closeQuietly is the audited discard for best-effort teardown: closing a
// socket whose session already failed (or already delivered everything it
// had to) has no caller that could act on the error.
func closeQuietly(c io.Closer) {
	_ = c.Close() //cmfl:lint-ignore errcheck best-effort close on an already-failed or finished path
}

// closeConns releases the listener and client connections, leaving the
// metrics endpoint (if any) scrapeable until Close. Idempotent: Run defers
// it and Close calls it again; secondary net.ErrClosed noise is filtered.
func (s *Server) closeConns() error {
	err := s.ln.Close()
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		if cerr := c.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			err = errors.Join(err, cerr)
		}
	}
	s.conns = nil
	return err
}

// syncWireCounters pins the registry's wire-byte counters to the exact
// accounting in res — bit-for-bit, since both sides add the same deltas.
func (s *Server) syncWireCounters(res *ServerResult) {
	if s.uplinkWire == nil {
		return
	}
	s.uplinkWire.Add(res.UplinkWireBytes - s.lastUpWire)
	s.lastUpWire = res.UplinkWireBytes
	s.downlinkWire.Add(res.DownlinkWireBytes - s.lastDownWire)
	s.lastDownWire = res.DownlinkWireBytes
}

// Run accepts the configured number of clients, drives the synchronous
// training rounds and returns the collected result. It closes all client
// connections before returning; the metrics endpoint (if configured) keeps
// serving the final totals until Close.
//
//cmfl:deterministic
func (s *Server) Run() (res *ServerResult, err error) {
	defer func() {
		// A clean run must also tear down cleanly; surface the close error
		// unless the round loop already failed.
		if cerr := s.closeConns(); cerr != nil && err == nil && res != nil {
			res, err = nil, cerr
		}
	}()
	if err := s.acceptClients(); err != nil {
		return nil, err
	}

	global := s.cfg.Model()
	params := global.ParamVector()
	res = &ServerResult{SkipCounts: make([]int, s.cfg.Clients)}

	cumUploads := 0
	var cumAppBytes int64 // paper-metric bytes: payload sizes only

	for t := 1; t <= s.cfg.Rounds; t++ {
		// Broadcast the model (Algorithm 1: distribute x_{t-1}; clients
		// derive the feedback update from consecutive broadcasts).
		payload := encodeModel(t, params)
		if err := s.broadcast(msgModel, payload, t, res); err != nil {
			return nil, fmt.Errorf("emu: round %d broadcast: %w", t, err)
		}

		// Gather one update or skip from every live client.
		updates, skips, wire, err := s.gather(t, res)
		if err != nil {
			return nil, fmt.Errorf("emu: round %d gather: %w", t, err)
		}
		res.UplinkWireBytes += wire

		globalUpdate := make([]float64, len(params))
		for _, u := range updates {
			if len(u.delta) != len(params) {
				return nil, fmt.Errorf("emu: round %d client %d sent %d params, want %d", t, u.clientID, len(u.delta), len(params))
			}
			for j, v := range u.delta {
				globalUpdate[j] += v
			}
			cumAppBytes += u.appBytes
		}
		for _, sk := range skips {
			res.SkipCounts[sk.clientID]++
			cumAppBytes += fl.SkipNotificationBytes
		}
		if len(updates) > 0 {
			inv := 1.0 / float64(len(updates))
			for j := range globalUpdate {
				globalUpdate[j] *= inv
				params[j] += globalUpdate[j]
			}
		}
		cumUploads += len(updates)

		stats := RoundStats{
			RoundEvent: telemetry.RoundEvent{
				Engine:         telemetry.EngineEmu,
				Round:          t,
				Participants:   len(updates) + len(skips),
				Uploaded:       len(updates),
				Skipped:        len(skips),
				CumUploads:     cumUploads,
				CumUplinkBytes: cumAppBytes,
				Accuracy:       math.NaN(),
			},
			MeanRelevance:        math.NaN(),
			CumUplinkWireBytes:   res.UplinkWireBytes,
			CumDownlinkWireBytes: res.DownlinkWireBytes,
		}
		if n := len(updates) + len(skips); n > 0 {
			var msum float64
			for _, u := range updates {
				msum += u.metric
			}
			for _, sk := range skips {
				msum += sk.metric
			}
			stats.MeanRelevance = msum / float64(n)
		}
		if t%s.cfg.EvalEvery == 0 || t == s.cfg.Rounds {
			if err := global.SetParamVector(params); err != nil {
				return nil, fmt.Errorf("emu: evaluator broadcast: %w", err)
			}
			stats.Accuracy = accuracyOf(global, s.cfg.TestData, s.cfg.EvalBatch)
		}
		res.History = append(res.History, stats)
		s.syncWireCounters(res)
		if len(s.obs) > 0 {
			for _, u := range updates {
				telemetry.EmitClient(s.obs, telemetry.ClientEvent{
					Engine:      telemetry.EngineEmu,
					Round:       t,
					Client:      u.clientID,
					Uploaded:    true,
					Relevance:   u.metric,
					UplinkBytes: u.appBytes,
				})
			}
			for _, sk := range skips {
				telemetry.EmitClient(s.obs, telemetry.ClientEvent{
					Engine:      telemetry.EngineEmu,
					Round:       t,
					Client:      sk.clientID,
					Uploaded:    false,
					Relevance:   sk.metric,
					UplinkBytes: fl.SkipNotificationBytes,
				})
			}
			telemetry.EmitRound(s.obs, stats.RoundEvent)
		}
		if s.cfg.TargetAccuracy > 0 && !math.IsNaN(stats.Accuracy) && stats.Accuracy >= s.cfg.TargetAccuracy {
			break
		}
	}

	// Tell the surviving clients training is over.
	if err := s.broadcast(msgDone, nil, s.cfg.Rounds+1, res); err != nil {
		return nil, fmt.Errorf("emu: final done broadcast: %w", err)
	}
	res.FinalParams = params
	// The done broadcast is downlink traffic too; pin the counters to the
	// final totals so a post-run scrape matches ServerResult bit-for-bit.
	s.syncWireCounters(res)
	return res, nil
}

func (s *Server) acceptClients() error {
	deadline := time.Now().Add(s.cfg.AcceptTimeout)
	byID := make(map[int]net.Conn, s.cfg.Clients)
	for len(byID) < s.cfg.Clients {
		if dl, ok := s.ln.(*net.TCPListener); ok {
			if err := dl.SetDeadline(deadline); err != nil {
				return fmt.Errorf("emu: set accept deadline: %w", err)
			}
		}
		conn, err := s.ln.Accept()
		if err != nil {
			return fmt.Errorf("emu: accept (have %d of %d clients): %w", len(byID), s.cfg.Clients, err)
		}
		if err := conn.SetReadDeadline(deadline); err != nil {
			closeQuietly(conn)
			return fmt.Errorf("emu: set hello deadline: %w", err)
		}
		f, err := readFrame(conn)
		if err != nil || f.kind != msgHello {
			closeQuietly(conn)
			return fmt.Errorf("emu: bad hello (kind %d): %w", f.kindOrZero(), err)
		}
		id, err := decodeHello(f.payload)
		if err != nil {
			closeQuietly(conn)
			return err
		}
		if id < 0 || id >= s.cfg.Clients {
			closeQuietly(conn)
			return fmt.Errorf("emu: client id %d outside [0, %d)", id, s.cfg.Clients)
		}
		if prev, dup := byID[id]; dup {
			closeQuietly(prev)
			closeQuietly(conn)
			return fmt.Errorf("emu: duplicate client id %d", id)
		}
		byID[id] = conn
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns = make([]net.Conn, s.cfg.Clients)
	s.alive = make([]bool, s.cfg.Clients)
	for id, conn := range byID {
		s.conns[id] = conn
		s.alive[id] = true
	}
	return nil
}

// dropClient removes a failed client under fault tolerance. It returns the
// original error when fault tolerance is off or no live client remains.
func (s *Server) dropClient(i, round int, res *ServerResult, err error) error {
	if !s.cfg.FaultTolerant {
		return err
	}
	s.mu.Lock()
	if s.alive[i] {
		s.alive[i] = false
		closeQuietly(s.conns[i])
		if res.DroppedClients == nil {
			res.DroppedClients = make(map[int]int)
		}
		res.DroppedClients[i] = round
	}
	anyAlive := false
	for _, a := range s.alive {
		if a {
			anyAlive = true
			break
		}
	}
	s.mu.Unlock()
	if !anyAlive {
		return fmt.Errorf("emu: all clients failed (last: %w)", err)
	}
	return nil
}

// liveClients snapshots the indices of clients still participating.
func (s *Server) liveClients() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.conns))
	for i, a := range s.alive {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// kindOrZero lets error paths print a frame kind even when f is nil.
func (f *frame) kindOrZero() byte {
	if f == nil {
		return 0
	}
	return f.kind
}

// broadcast writes the same frame to every live client in parallel.
//
//cmfl:deterministic
func (s *Server) broadcast(kind byte, payload []byte, round int, res *ServerResult) error {
	live := s.liveClients()
	var wg sync.WaitGroup
	errs := make([]error, len(live))
	var sent int64
	var mu sync.Mutex
	for li, i := range live {
		conn := s.conns[i]
		wg.Add(1)
		go func(li, i int, conn net.Conn) {
			defer wg.Done()
			//cmfl:lint-ignore deterministicorder I/O deadline only; wall-clock never enters aggregation
			if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.RoundTimeout)); err != nil {
				errs[li] = clientError{client: i, err: err}
				return
			}
			n, err := writeFrame(conn, kind, payload)
			if err != nil {
				errs[li] = clientError{client: i, err: err}
				return
			}
			mu.Lock()
			sent += n
			mu.Unlock()
		}(li, i, conn)
	}
	wg.Wait()
	res.DownlinkWireBytes += sent
	for _, err := range errs {
		if err == nil {
			continue
		}
		ce := err.(clientError)
		if derr := s.dropClient(ce.client, round, res, ce.err); derr != nil {
			return derr
		}
	}
	return nil
}

// clientError tags a transport error with the client it came from.
type clientError struct {
	client int
	err    error
}

func (e clientError) Error() string { return fmt.Sprintf("client %d: %v", e.client, e.err) }

func (e clientError) Unwrap() error { return e.err }

type updateMsg struct {
	clientID int
	metric   float64
	delta    []float64
	// appBytes is the paper-metric payload size: codec bytes for
	// compressed uploads, dim×8 for raw ones.
	appBytes int64
}

type skipMsg struct {
	clientID int
	metric   float64
}

// gather reads exactly one update or skip frame from every live client.
//
//cmfl:deterministic
func (s *Server) gather(round int, res *ServerResult) (updates []updateMsg, skips []skipMsg, wireBytes int64, err error) {
	live := s.liveClients()
	var wg sync.WaitGroup
	type reply struct {
		upd  *updateMsg
		skip *skipMsg
		wire int64
		err  error
	}
	replies := make([]reply, len(s.conns))
	for _, i := range live {
		conn := s.conns[i]
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			//cmfl:lint-ignore deterministicorder I/O deadline only; wall-clock never enters aggregation
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.RoundTimeout)); err != nil {
				replies[i] = reply{err: err}
				return
			}
			f, err := readFrame(conn)
			if err != nil {
				replies[i] = reply{err: err}
				return
			}
			switch f.kind {
			case msgUpdate:
				id, r, metric, delta, err := decodeUpdate(f.payload)
				if err != nil {
					replies[i] = reply{err: err}
					return
				}
				if r != round {
					replies[i] = reply{err: fmt.Errorf("emu: client %d answered round %d during round %d", id, r, round)}
					return
				}
				replies[i] = reply{upd: &updateMsg{clientID: id, metric: metric, delta: delta, appBytes: int64(len(delta)) * 8}, wire: f.wireSize()}
			case msgUpdateC:
				id, r, metric, dim, codec, payload, err := decodeCompressedUpdate(f.payload)
				if err != nil {
					replies[i] = reply{err: err}
					return
				}
				if r != round {
					replies[i] = reply{err: fmt.Errorf("emu: client %d answered round %d during round %d", id, r, round)}
					return
				}
				if s.cfg.Compressor == nil || codec != s.cfg.Compressor.Name() {
					replies[i] = reply{err: fmt.Errorf("emu: client %d used codec %q, server expects %v", id, codec, s.cfg.Compressor)}
					return
				}
				delta, err := s.cfg.Compressor.Decode(payload, dim)
				if err != nil {
					replies[i] = reply{err: fmt.Errorf("emu: client %d payload: %w", id, err)}
					return
				}
				replies[i] = reply{upd: &updateMsg{clientID: id, metric: metric, delta: delta, appBytes: int64(len(payload))}, wire: f.wireSize()}
			case msgSkip:
				id, r, metric, err := decodeSkip(f.payload)
				if err != nil {
					replies[i] = reply{err: err}
					return
				}
				if r != round {
					replies[i] = reply{err: fmt.Errorf("emu: client %d answered round %d during round %d", id, r, round)}
					return
				}
				replies[i] = reply{skip: &skipMsg{clientID: id, metric: metric}, wire: f.wireSize()}
			default:
				replies[i] = reply{err: fmt.Errorf("emu: unexpected frame kind %d in round %d", f.kind, round)}
			}
		}(i, conn)
	}
	wg.Wait()
	for i, r := range replies {
		if r.err != nil {
			if derr := s.dropClient(i, round, res, r.err); derr != nil {
				return nil, nil, 0, derr
			}
			continue
		}
		wireBytes += r.wire
		if r.upd != nil {
			updates = append(updates, *r.upd)
		}
		if r.skip != nil {
			skips = append(skips, *r.skip)
		}
	}
	return updates, skips, wireBytes, nil
}

// accuracyOf evaluates classification accuracy in bounded batches.
func accuracyOf(net *nn.Network, test *dataset.Set, evalBatch int) float64 {
	if test == nil || test.Len() == 0 {
		return math.NaN()
	}
	correct := 0
	for lo := 0; lo < test.Len(); lo += evalBatch {
		hi := lo + evalBatch
		if hi > test.Len() {
			hi = test.Len()
		}
		x, y := test.BatchView(lo, hi)
		pred := nn.Argmax(net.Forward(x))
		for i, p := range pred {
			if p == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(test.Len())
}
