package emu

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
)

// ServerConfig describes the master side of the emulation.
type ServerConfig struct {
	// Addr to listen on, e.g. "127.0.0.1:0".
	Addr string
	// Clients is D, the number of slaves that must connect before training.
	Clients int

	// Model builds the global model architecture.
	Model func() *nn.Network
	// TestData evaluates global accuracy after each round.
	TestData *dataset.Set
	// EvalEvery evaluates accuracy every k rounds (default 1).
	EvalEvery int
	// EvalBatch bounds evaluation forward batches (default 64).
	EvalBatch int

	// Rounds is the number of synchronous iterations.
	Rounds int
	// TargetAccuracy stops early when reached (0 disables).
	TargetAccuracy float64

	// Compressor pins the codec clients must use (wire v2: each client
	// declares its codec's binary spec in its hello). When set, a hello
	// whose spec does not match this codec's spec byte-for-byte is
	// rejected — and aborts startup in strict mode. When nil the server
	// adopts whatever codec each hello declares, building a per-client
	// decoder from the spec. Raw (spec-less) hellos are always accepted.
	Compressor fl.UpdateCodec

	// RoundDeadline is the aggregation cut-off: once it elapses, the round
	// aggregates whatever arrived (if it meets MinQuorum) and marks the
	// missing clients as stragglers. Rounds where every expected client
	// replies finish immediately, so healthy clusters never pay it.
	// Default: RoundTimeout.
	RoundDeadline time.Duration
	// MinQuorum is the minimum number of replies required to aggregate when
	// the deadline fires; below it the round (and the run) fails. Default:
	// 1 when FaultTolerant, else all clients.
	MinQuorum int
	// RoundTimeout is the raw I/O safety net bounding any single write to a
	// client (default 60s, raised to RoundDeadline when the deadline is
	// longer). Reads deliberately carry no deadline: slow or silent clients
	// are the quorum deadline's concern, not a transport fault.
	RoundTimeout time.Duration
	// AcceptTimeout bounds waiting for all clients to connect
	// (default 60s).
	AcceptTimeout time.Duration

	// FaultTolerant makes the server survive client transport failures: a
	// client whose connection errors is marked down, its round counts it as
	// a straggler, and it may redial and rejoin (resent replies are
	// deduplicated). Training aborts only when every client is gone or a
	// round misses MinQuorum. Without it (the default) any failure aborts
	// the run, which keeps tests strict.
	FaultTolerant bool

	// Observers receive live telemetry: one telemetry.ClientEvent per
	// reply (updates first, then skips, each in client order) followed by
	// one telemetry.RoundEvent per round.
	Observers []telemetry.Observer
	// MetricsAddr, when non-empty (e.g. "127.0.0.1:0"), serves the
	// master's metrics registry as a Prometheus-text /metrics and JSON
	// /healthz endpoint over HTTP while the cluster runs. The endpoint
	// stays up after Run returns — with its counters matching the final
	// ServerResult wire totals exactly — until Close.
	MetricsAddr string
	// Registry receives the master's metrics. Optional: when nil and
	// MetricsAddr is set, the server creates its own. Wire-byte counters
	// (cmfl_emu_uplink_wire_bytes_total, cmfl_emu_downlink_wire_bytes_total)
	// are pinned to the exact TCP payload accounting of ServerResult, and
	// the fault families (cmfl_fault_rejoins_total,
	// cmfl_straggler_late_frames_total) to its fault accounting.
	Registry *telemetry.Registry
}

// RoundStats is the emulation master's round record: the shared
// communication core plus the wire-level running totals only the real
// network stack can observe. It replaces the earlier reuse of fl.RoundStats,
// which left the simulation-only fields (train loss, significance, Eq. 8
// trace) silently zeroed.
type RoundStats struct {
	telemetry.RoundEvent

	// MeanRelevance is the mean reported filter metric across this round's
	// updates and skips (NaN when no client reported).
	MeanRelevance float64
	// CumUplinkWireBytes / CumDownlinkWireBytes are the actual TCP payload
	// bytes (frames incl. framing overhead) observed through this round.
	CumUplinkWireBytes   int64
	CumDownlinkWireBytes int64
	// Stragglers lists the clients cut off by this round's deadline,
	// ascending. Their replies, if they ever arrive, are drained as late
	// frames — never aggregated.
	Stragglers []int
	// LateFrames counts frames drained during this round that belonged to
	// an earlier round.
	LateFrames int
}

// ServerResult extends the round history with wire-level byte counts.
type ServerResult struct {
	History []RoundStats
	// FinalParams is the global model after the last round.
	FinalParams []float64
	// UplinkWireBytes / DownlinkWireBytes are the actual bytes observed on
	// the TCP payload stream (frames incl. framing overhead).
	UplinkWireBytes   int64
	DownlinkWireBytes int64
	// SkipCounts per client over the run.
	SkipCounts []int
	// StragglerCounts per client: rounds in which the client was expected
	// to reply but was cut off by the deadline.
	StragglerCounts []int
	// DroppedClients maps clients whose connection failed to the first
	// round in which it happened. With reconnection enabled a listed
	// client may still have rejoined later (see Rejoins).
	DroppedClients map[int]int
	// LateFrames / DupFrames count uplink frames that were received and
	// drained but never aggregated: replies to already-closed rounds and
	// redundant resends.
	LateFrames int
	DupFrames  int
	// Rejoins counts connections re-accepted after training started.
	Rejoins int
	// CodecUpdates counts aggregated updates that arrived codec-encoded
	// (msgUpdate2); CodecEncodedBytes sums their codec payload sizes and
	// CodecRawBytes the dim×8 bytes the same updates would have cost raw —
	// the measured compression ratio is EncodedBytes/RawBytes.
	CodecUpdates      int
	CodecEncodedBytes int64
	CodecRawBytes     int64
}

// FinalAccuracy returns the last evaluated accuracy, or NaN.
func (r *ServerResult) FinalAccuracy() float64 {
	for i := len(r.History) - 1; i >= 0; i-- {
		if !math.IsNaN(r.History[i].Accuracy) {
			return r.History[i].Accuracy
		}
	}
	return math.NaN()
}

// connEvent is what a connection reader hands to the round loop: one frame
// or one terminal error, tagged with the connection generation so stale
// readers can never corrupt a successor's accounting.
type connEvent struct {
	client int
	gen    int
	f      *frame
	wire   int64
	err    error
}

// Server is the master of Algorithm 1's GlobalOptimization, run over TCP.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	// Telemetry plumbing: observers include any configured Collector; the
	// wire counters mirror ServerResult's exact TCP payload accounting.
	obs           []telemetry.Observer
	reg           *telemetry.Registry
	metrics       *telemetry.MetricsServer
	uplinkWire    *telemetry.Counter
	downlinkWire  *telemetry.Counter
	lateFrames    *telemetry.Counter
	rejoins       *telemetry.Counter
	codecUpdates  *telemetry.Counter
	codecEncBytes *telemetry.Counter
	codecRawBytes *telemetry.Counter
	lastUpWire    int64
	lastDownWire  int64
	lastLate      int64
	lastRejoins   int64
	lastCodecUpd  int64
	lastCodecEnc  int64
	lastCodecRaw  int64

	// Wire v2 codec negotiation: serverSpec is the byte spec of
	// cfg.Compressor (nil when unset); helloErrs surfaces pre-barrier spec
	// mismatches so strict startup fails fast instead of timing out.
	serverSpec []byte
	helloErrs  chan error

	// events carries frames and connection errors from the per-connection
	// readers into the round loop; stop unblocks them at teardown.
	events   chan connEvent
	ready    chan struct{} // closed once all Clients completed their first hello
	stop     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	closed  bool
	conns   []net.Conn
	alive   []bool
	gens    []int // connection generation per client (1 = first join)
	downGen []int // highest generation already accounted as down
	joined  int   // distinct clients that ever completed a hello
	started bool  // initial accept barrier passed
	rejoin  int   // hellos accepted after the barrier

	// codecs holds each client's negotiated decoder (nil = raw float64);
	// set in admit under mu, read by the round loop. decBufs is the round
	// loop's per-client decode scratch — only accepted frames are decoded,
	// so the buffer an aggregated update aliases is never overwritten by a
	// late or duplicate frame within the round.
	codecs  []fl.UpdateCodec
	decBufs [][]float64
}

// NewServer validates the configuration and binds the listen socket, so the
// effective address (with a resolved port) is known before Run.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clients <= 0 {
		return nil, errors.New("emu: Clients must be positive")
	}
	if cfg.Model == nil {
		return nil, errors.New("emu: Model factory is required")
	}
	if cfg.Rounds <= 0 {
		return nil, errors.New("emu: Rounds must be positive")
	}
	if cfg.MinQuorum < 0 || cfg.MinQuorum > cfg.Clients {
		return nil, fmt.Errorf("emu: MinQuorum %d outside [0, %d]", cfg.MinQuorum, cfg.Clients)
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	if cfg.EvalBatch <= 0 {
		cfg.EvalBatch = 64
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 60 * time.Second
	}
	if cfg.RoundDeadline <= 0 {
		cfg.RoundDeadline = cfg.RoundTimeout
	}
	if cfg.RoundTimeout < cfg.RoundDeadline {
		// The raw I/O net must never fire before the aggregation deadline.
		cfg.RoundTimeout = cfg.RoundDeadline
	}
	if cfg.AcceptTimeout <= 0 {
		cfg.AcceptTimeout = 60 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("emu: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		obs:       cfg.Observers,
		events:    make(chan connEvent, cfg.Clients*8),
		ready:     make(chan struct{}),
		stop:      make(chan struct{}),
		conns:     make([]net.Conn, cfg.Clients),
		alive:     make([]bool, cfg.Clients),
		gens:      make([]int, cfg.Clients),
		downGen:   make([]int, cfg.Clients),
		codecs:    make([]fl.UpdateCodec, cfg.Clients),
		decBufs:   make([][]float64, cfg.Clients),
		helloErrs: make(chan error, cfg.Clients),
	}
	if cfg.Compressor != nil {
		spec, err := compress.EncodeSpec(cfg.Compressor)
		if err != nil {
			closeQuietly(ln)
			return nil, fmt.Errorf("emu: server codec: %w", err)
		}
		s.serverSpec = spec
	}
	if cfg.Registry != nil || cfg.MetricsAddr != "" {
		s.reg = cfg.Registry
		if s.reg == nil {
			s.reg = telemetry.NewRegistry()
		}
		s.obs = append(append([]telemetry.Observer(nil), cfg.Observers...), telemetry.NewCollector(s.reg))
		s.uplinkWire = s.reg.Counter(`cmfl_emu_uplink_wire_bytes_total`, "TCP payload bytes received from clients (frames incl. framing overhead).")
		s.downlinkWire = s.reg.Counter(`cmfl_emu_downlink_wire_bytes_total`, "TCP payload bytes sent to clients (frames incl. framing overhead).")
		s.lateFrames = s.reg.Counter(`cmfl_straggler_late_frames_total`, "Uplink frames drained after their round's deadline (received, never aggregated).")
		s.rejoins = s.reg.Counter(`cmfl_fault_rejoins_total`, "Client connections re-accepted after training started.")
		s.codecUpdates = s.reg.Counter(`cmfl_codec_updates_total`, "Aggregated updates that arrived codec-encoded (wire v2 msgUpdate2).")
		s.codecEncBytes = s.reg.Counter(`cmfl_codec_encoded_bytes_total`, "Codec payload bytes of aggregated compressed updates.")
		s.codecRawBytes = s.reg.Counter(`cmfl_codec_raw_bytes_total`, "Raw float64 bytes (dim x 8) the same compressed updates would have cost uncompressed.")
	}
	if cfg.MetricsAddr != "" {
		ms, err := telemetry.Serve(cfg.MetricsAddr, s.reg)
		if err != nil {
			closeQuietly(ln)
			return nil, err
		}
		s.metrics = ms
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr returns the bound /metrics endpoint address, or "" when
// MetricsAddr was not configured.
func (s *Server) MetricsAddr() string {
	if s.metrics == nil {
		return ""
	}
	return s.metrics.Addr()
}

// Registry returns the server's metrics registry (nil unless MetricsAddr or
// Registry was configured).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Close releases the listener, any client connections, and the metrics
// endpoint.
func (s *Server) Close() error {
	err := s.closeConns()
	if s.metrics != nil {
		if merr := s.metrics.Close(); err == nil {
			err = merr
		}
		s.metrics = nil
	}
	return err
}

// closeQuietly is the audited discard for best-effort teardown: closing a
// socket whose session already failed (or already delivered everything it
// had to) has no caller that could act on the error.
func closeQuietly(c io.Closer) {
	_ = c.Close() //cmfl:lint-ignore errcheck best-effort close on an already-failed or finished path
}

// closeConns releases the listener and client connections, leaving the
// metrics endpoint (if any) scrapeable until Close. Idempotent: Run defers
// it and Close calls it again; secondary net.ErrClosed noise is filtered.
func (s *Server) closeConns() error {
	s.stopOnce.Do(func() { close(s.stop) })
	err := s.ln.Close()
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for i, c := range s.conns {
		if c == nil {
			continue
		}
		if cerr := c.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			err = errors.Join(err, cerr)
		}
		s.conns[i] = nil
		s.alive[i] = false
	}
	return err
}

// syncCounters pins the registry's wire-byte and fault counters to the
// exact accounting in res — bit-for-bit, since both sides add the same
// deltas.
func (s *Server) syncCounters(res *ServerResult) {
	if s.uplinkWire == nil {
		return
	}
	s.uplinkWire.Add(res.UplinkWireBytes - s.lastUpWire)
	s.lastUpWire = res.UplinkWireBytes
	s.downlinkWire.Add(res.DownlinkWireBytes - s.lastDownWire)
	s.lastDownWire = res.DownlinkWireBytes
	s.lateFrames.Add(int64(res.LateFrames) - s.lastLate)
	s.lastLate = int64(res.LateFrames)
	s.rejoins.Add(int64(res.Rejoins) - s.lastRejoins)
	s.lastRejoins = int64(res.Rejoins)
	s.codecUpdates.Add(int64(res.CodecUpdates) - s.lastCodecUpd)
	s.lastCodecUpd = int64(res.CodecUpdates)
	s.codecEncBytes.Add(res.CodecEncodedBytes - s.lastCodecEnc)
	s.lastCodecEnc = res.CodecEncodedBytes
	s.codecRawBytes.Add(res.CodecRawBytes - s.lastCodecRaw)
	s.lastCodecRaw = res.CodecRawBytes
}

// minQuorum is the effective reply minimum at the deadline.
func (s *Server) minQuorum() int {
	if s.cfg.MinQuorum > 0 {
		return s.cfg.MinQuorum
	}
	if s.cfg.FaultTolerant {
		return 1
	}
	return s.cfg.Clients
}

// Run accepts the configured number of clients, drives the synchronous
// training rounds and returns the collected result. It closes all client
// connections before returning; the metrics endpoint (if configured) keeps
// serving the final totals until Close.
//
//cmfl:deterministic
func (s *Server) Run() (res *ServerResult, err error) {
	defer func() {
		// A clean run must also tear down cleanly; surface the close error
		// unless the round loop already failed.
		if cerr := s.closeConns(); cerr != nil && err == nil && res != nil {
			res, err = nil, cerr
		}
	}()
	go s.acceptLoop()
	if err := s.awaitClients(); err != nil {
		return nil, err
	}

	global := s.cfg.Model()
	params := global.ParamVector()
	res = &ServerResult{
		SkipCounts:      make([]int, s.cfg.Clients),
		StragglerCounts: make([]int, s.cfg.Clients),
	}
	q := newQuorumState(s.cfg.Clients)

	cumUploads := 0
	var cumAppBytes int64 // paper-metric bytes: payload sizes only

	for t := 1; t <= s.cfg.Rounds; t++ {
		// Broadcast the model (Algorithm 1: distribute x_{t-1}; clients
		// derive the feedback update from consecutive broadcasts). Clients
		// the write reached owe this round a reply.
		payload := encodeModel(t, params)
		expected, roundFaults, err := s.broadcast(msgModel, payload, t, res)
		if err != nil {
			return nil, fmt.Errorf("emu: round %d broadcast: %w", t, err)
		}
		q.beginRound(t, expected)

		// Gather replies until every expected client answered or the
		// deadline fires with at least MinQuorum replies in hand.
		box, stragglers, err := s.gather(t, q, res)
		if err != nil {
			return nil, fmt.Errorf("emu: round %d gather: %w", t, err)
		}
		box.faults += roundFaults
		res.UplinkWireBytes += box.wire
		res.LateFrames += box.late
		res.DupFrames += box.dups
		for _, id := range stragglers {
			res.StragglerCounts[id]++
		}

		// Flatten the inbox in ascending client order: float accumulation
		// order is part of the determinism contract.
		var updates []updateMsg
		var skips []skipMsg
		for id := 0; id < s.cfg.Clients; id++ {
			if u := box.updates[id]; u != nil {
				updates = append(updates, *u)
			}
			if sk := box.skips[id]; sk != nil {
				skips = append(skips, *sk)
			}
		}

		globalUpdate := make([]float64, len(params))
		for _, u := range updates {
			if len(u.delta) != len(params) {
				return nil, fmt.Errorf("emu: round %d client %d sent %d params, want %d", t, u.clientID, len(u.delta), len(params))
			}
			for j, v := range u.delta {
				globalUpdate[j] += v
			}
			cumAppBytes += u.appBytes
			if u.encoded {
				res.CodecUpdates++
				res.CodecEncodedBytes += u.appBytes
				res.CodecRawBytes += int64(len(u.delta)) * 8
			}
		}
		for _, sk := range skips {
			res.SkipCounts[sk.clientID]++
			cumAppBytes += fl.SkipNotificationBytes
		}
		if len(updates) > 0 {
			inv := 1.0 / float64(len(updates))
			for j := range globalUpdate {
				globalUpdate[j] *= inv
				params[j] += globalUpdate[j]
			}
		}
		cumUploads += len(updates)

		stats := RoundStats{
			RoundEvent: telemetry.RoundEvent{
				Engine:         telemetry.EngineEmu,
				Round:          t,
				Participants:   len(updates) + len(skips),
				Uploaded:       len(updates),
				Skipped:        len(skips),
				CumUploads:     cumUploads,
				CumUplinkBytes: cumAppBytes,
				Dropped:        len(stragglers),
				Faults:         box.faults,
				Accuracy:       math.NaN(),
			},
			MeanRelevance:        math.NaN(),
			CumUplinkWireBytes:   res.UplinkWireBytes,
			CumDownlinkWireBytes: res.DownlinkWireBytes,
			Stragglers:           stragglers,
			LateFrames:           box.late,
		}
		if n := len(updates) + len(skips); n > 0 {
			var msum float64
			for _, u := range updates {
				msum += u.metric
			}
			for _, sk := range skips {
				msum += sk.metric
			}
			stats.MeanRelevance = msum / float64(n)
		}
		if t%s.cfg.EvalEvery == 0 || t == s.cfg.Rounds {
			if err := global.SetParamVector(params); err != nil {
				return nil, fmt.Errorf("emu: evaluator broadcast: %w", err)
			}
			stats.Accuracy = accuracyOf(global, s.cfg.TestData, s.cfg.EvalBatch)
		}
		res.History = append(res.History, stats)
		res.Rejoins = s.rejoinCount()
		s.syncCounters(res)
		if len(s.obs) > 0 {
			for _, u := range updates {
				telemetry.EmitClient(s.obs, telemetry.ClientEvent{
					Engine:      telemetry.EngineEmu,
					Round:       t,
					Client:      u.clientID,
					Uploaded:    true,
					Relevance:   u.metric,
					UplinkBytes: u.appBytes,
				})
			}
			for _, sk := range skips {
				telemetry.EmitClient(s.obs, telemetry.ClientEvent{
					Engine:      telemetry.EngineEmu,
					Round:       t,
					Client:      sk.clientID,
					Uploaded:    false,
					Relevance:   sk.metric,
					UplinkBytes: fl.SkipNotificationBytes,
				})
			}
			telemetry.EmitRound(s.obs, stats.RoundEvent)
		}
		if s.cfg.TargetAccuracy > 0 && !math.IsNaN(stats.Accuracy) && stats.Accuracy >= s.cfg.TargetAccuracy {
			break
		}
	}

	// Tell the surviving clients training is over. Best-effort: a failure
	// here carries no information the aggregate depends on, and counting it
	// as a fault would make the counters hostage to teardown races.
	s.broadcastBestEffort(msgDone, nil, res)
	res.FinalParams = params
	res.Rejoins = s.rejoinCount()
	// Pin the counters to the final totals so a post-run scrape matches
	// ServerResult bit-for-bit.
	s.syncCounters(res)
	return res, nil
}

// acceptLoop admits connections for the whole run: the initial barrier and
// any rejoins after a fault. It exits when the listener closes.
func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.admit(conn)
	}
}

// admit performs the hello handshake — including the wire-v2 codec
// negotiation — and registers the connection. A bad hello burns that
// connection (the dialer can retry); a codec-spec mismatch additionally
// surfaces on helloErrs so a strict startup fails fast. A valid hello
// replaces any previous connection for the same id (latest wins).
func (s *Server) admit(conn net.Conn) {
	//cmfl:lint-ignore deterministicorder I/O deadline only; wall-clock never enters aggregation
	if err := conn.SetReadDeadline(time.Now().Add(s.cfg.AcceptTimeout)); err != nil {
		closeQuietly(conn)
		return
	}
	f, err := readFrame(conn)
	if err != nil || f.kind != msgHello {
		closeQuietly(conn)
		return
	}
	id, spec, err := decodeHello(f.payload)
	if err != nil || id < 0 || id >= s.cfg.Clients {
		closeQuietly(conn)
		return
	}
	codec, err := s.negotiateCodec(id, spec)
	if err != nil {
		select {
		case s.helloErrs <- err:
		default:
		}
		closeQuietly(conn)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		closeQuietly(conn)
		return
	}
	if prev := s.conns[id]; prev != nil && s.alive[id] {
		// The client redialed; its old connection is stale. Its reader will
		// surface an error that markDown attributes to the old generation.
		closeQuietly(prev)
	}
	s.gens[id]++
	gen := s.gens[id]
	s.conns[id] = conn
	s.alive[id] = true
	s.codecs[id] = codec
	if gen == 1 {
		s.joined++
		if s.joined == s.cfg.Clients {
			close(s.ready)
		}
	} else if s.started {
		s.rejoin++
	}
	s.mu.Unlock()
	go s.readLoop(id, gen, conn)
}

// negotiateCodec resolves a hello's codec declaration against the server's
// configuration: raw hellos are always accepted; with a configured
// Compressor the specs must match byte-for-byte; without one the server
// builds the client's decoder from the declared spec.
func (s *Server) negotiateCodec(id int, spec []byte) (fl.UpdateCodec, error) {
	if spec == nil {
		return nil, nil
	}
	if s.serverSpec != nil {
		if !bytes.Equal(spec, s.serverSpec) {
			return nil, fmt.Errorf("emu: client %d declared codec spec %x, server requires %s (%x)",
				id, spec, s.cfg.Compressor.Name(), s.serverSpec)
		}
		return s.cfg.Compressor, nil
	}
	c, rest, err := compress.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("emu: client %d codec spec: %w", id, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("emu: client %d codec spec has %d trailing bytes", id, len(rest))
	}
	return c, nil
}

// awaitClients blocks until every client completed its first hello, failing
// fast on a codec-spec mismatch instead of burning the whole timeout.
func (s *Server) awaitClients() error {
	timer := time.NewTimer(s.cfg.AcceptTimeout)
	defer timer.Stop()
	select {
	case <-s.ready:
	case err := <-s.helloErrs:
		return err
	case <-timer.C:
		s.mu.Lock()
		have := s.joined
		s.mu.Unlock()
		return fmt.Errorf("emu: accept (have %d of %d clients): timeout after %v", have, s.cfg.Clients, s.cfg.AcceptTimeout)
	}
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	return nil
}

// rejoinCount snapshots the number of post-barrier rejoins.
func (s *Server) rejoinCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejoin
}

// readLoop forwards frames from one connection generation into the round
// loop until the connection dies or the server stops. Reads carry no
// deadline on purpose: a connected client that merely has nothing to say
// (e.g. its reply was lost upstream) can be silent for many rounds without
// being a transport failure — slowness is the quorum deadline's problem,
// not the socket's. Blocked reads are released by closeConns.
func (s *Server) readLoop(id, gen int, conn net.Conn) {
	for {
		f, err := readFrame(conn)
		if err != nil {
			s.post(connEvent{client: id, gen: gen, err: err})
			return
		}
		s.post(connEvent{client: id, gen: gen, f: f, wire: f.wireSize()})
	}
}

// post delivers a reader event unless the server is shutting down.
func (s *Server) post(ev connEvent) {
	select {
	case s.events <- ev:
	case <-s.stop:
	}
}

// markDown accounts one connection death exactly once per generation and
// tears the connection down. It reports whether this call did the
// accounting (callers count a fault then, and only then).
func (s *Server) markDown(id, gen int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen <= s.downGen[id] {
		return false
	}
	s.downGen[id] = gen
	if s.gens[id] == gen && !s.closed {
		s.alive[id] = false
		if s.conns[id] != nil {
			closeQuietly(s.conns[id])
		}
	}
	return true
}

// connDown routes a connection failure through fault accounting: one fault
// per generation, DroppedClients keyed to the first failing round, and an
// abort in strict mode.
func (s *Server) connDown(id, gen, round int, cause error, box *roundInbox, res *ServerResult) error {
	if !s.markDown(id, gen) {
		return nil
	}
	if box != nil {
		box.faults++
	}
	if res.DroppedClients == nil {
		res.DroppedClients = make(map[int]int)
	}
	if _, ok := res.DroppedClients[id]; !ok {
		res.DroppedClients[id] = round
	}
	if !s.cfg.FaultTolerant {
		if cause == nil {
			cause = errors.New("connection down")
		}
		return clientError{client: id, err: cause}
	}
	return nil
}

// kindOrZero lets error paths print a frame kind even when f is nil.
func (f *frame) kindOrZero() byte {
	if f == nil {
		return 0
	}
	return f.kind
}

// broadcast writes the same frame to every live client in parallel and
// reports which clients it reached (by id) plus the number of fresh faults.
//
//cmfl:deterministic
func (s *Server) broadcast(kind byte, payload []byte, round int, res *ServerResult) (expected []bool, faults int, err error) {
	targets := s.liveTargets()
	var wg sync.WaitGroup
	errs := make([]error, len(targets))
	var sent int64
	var mu sync.Mutex
	for li, tgt := range targets {
		wg.Add(1)
		go func(li int, conn net.Conn) {
			defer wg.Done()
			//cmfl:lint-ignore deterministicorder I/O deadline only; wall-clock never enters aggregation
			if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.RoundTimeout)); err != nil {
				errs[li] = err
				return
			}
			n, err := writeFrame(conn, kind, payload)
			if err != nil {
				errs[li] = err
				return
			}
			mu.Lock()
			sent += n
			mu.Unlock()
		}(li, tgt.conn)
	}
	wg.Wait()
	res.DownlinkWireBytes += sent
	expected = make([]bool, s.cfg.Clients)
	for li, tgt := range targets {
		if errs[li] == nil {
			expected[tgt.id] = true
			continue
		}
		if s.markDown(tgt.id, tgt.gen) {
			faults++
			if res.DroppedClients == nil {
				res.DroppedClients = make(map[int]int)
			}
			if _, ok := res.DroppedClients[tgt.id]; !ok {
				res.DroppedClients[tgt.id] = round
			}
			if !s.cfg.FaultTolerant {
				return nil, faults, clientError{client: tgt.id, err: errs[li]}
			}
		}
	}
	if !anyTrue(expected) {
		return nil, faults, errors.New("emu: all clients failed")
	}
	return expected, faults, nil
}

// broadcastBestEffort writes a frame to every live client, counting bytes
// but ignoring failures (used for the final done message).
func (s *Server) broadcastBestEffort(kind byte, payload []byte, res *ServerResult) {
	targets := s.liveTargets()
	var wg sync.WaitGroup
	var sent int64
	var mu sync.Mutex
	for _, tgt := range targets {
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			//cmfl:lint-ignore deterministicorder I/O deadline only; wall-clock never enters aggregation
			if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.RoundTimeout)); err != nil {
				return
			}
			if n, err := writeFrame(conn, kind, payload); err == nil {
				mu.Lock()
				sent += n
				mu.Unlock()
			}
		}(tgt.conn)
	}
	wg.Wait()
	res.DownlinkWireBytes += sent
}

// liveTarget pins (id, generation, conn) at snapshot time so later rejoins
// cannot be blamed for an older connection's failure.
type liveTarget struct {
	id, gen int
	conn    net.Conn
}

// liveTargets snapshots the live connections in ascending client order.
func (s *Server) liveTargets() []liveTarget {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]liveTarget, 0, len(s.conns))
	for i, a := range s.alive {
		if a && s.conns[i] != nil {
			out = append(out, liveTarget{id: i, gen: s.gens[i], conn: s.conns[i]})
		}
	}
	return out
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

type updateMsg struct {
	clientID int
	metric   float64
	delta    []float64
	// appBytes is the paper-metric payload size: codec bytes for
	// compressed uploads, dim×8 for raw ones.
	appBytes int64
	// encoded marks updates that arrived codec-compressed (msgUpdate2);
	// they feed the cmfl_codec_* counters.
	encoded bool
}

type skipMsg struct {
	clientID int
	metric   float64
}

// roundInbox accumulates one round's accepted replies (indexed by client)
// and its drain/fault tallies.
type roundInbox struct {
	updates []*updateMsg
	skips   []*skipMsg
	wire    int64
	faults  int
	late    int
	dups    int
}

// gather consumes reader events until every expected client replied, or the
// round deadline fires with at least MinQuorum replies in hand (the missing
// clients become this round's stragglers). Replies arriving for earlier
// rounds are drained and counted; duplicates are never aggregated twice.
//
//cmfl:deterministic
func (s *Server) gather(round int, q *quorumState, res *ServerResult) (*roundInbox, []int, error) {
	if q.expectedCount == 0 {
		return nil, nil, errors.New("emu: all clients failed")
	}
	box := &roundInbox{
		updates: make([]*updateMsg, s.cfg.Clients),
		skips:   make([]*skipMsg, s.cfg.Clients),
	}
	minQ := s.minQuorum()
	timer := time.NewTimer(s.cfg.RoundDeadline)
	defer timer.Stop()
	for !q.complete() {
		select {
		case ev := <-s.events:
			if err := s.handleEvent(round, ev, q, box, res); err != nil {
				return nil, nil, err
			}
		case <-timer.C:
			if q.accepted >= minQ {
				return box, q.stragglers(), nil
			}
			return nil, nil, fmt.Errorf("emu: round %d: quorum not met at deadline %v: %d of %d replies (minimum %d)",
				round, s.cfg.RoundDeadline, q.accepted, q.expectedCount, minQ)
		}
	}
	if q.accepted < minQ {
		return nil, nil, fmt.Errorf("emu: round %d: only %d replies possible (minimum %d)", round, q.accepted, minQ)
	}
	return box, q.stragglers(), nil
}

// handleEvent processes one reader event inside gather: parse only the
// (client, round) header, classify against the quorum state, and
// materialize the full body for accepted frames alone. Late and duplicate
// frames are never decoded, so they cannot touch the per-client decode
// scratch that this round's accepted updates alias.
func (s *Server) handleEvent(round int, ev connEvent, q *quorumState, box *roundInbox, res *ServerResult) error {
	if ev.err != nil {
		return s.connDown(ev.client, ev.gen, round, ev.err, box, res)
	}
	id, r, err := parseReplyHeader(ev.f)
	if err == nil && id != ev.client {
		err = fmt.Errorf("emu: connection of client %d delivered a frame claiming client %d", ev.client, id)
	}
	if err != nil {
		// A malformed or mis-attributed frame means the stream cannot be
		// trusted; kill the connection (the client may redial).
		return s.connDown(ev.client, ev.gen, round, err, box, res)
	}
	box.wire += ev.wire
	switch q.classify(id, r) {
	case verdictAccept:
		upd, skip, err := s.materializeReply(ev.f, id)
		if err != nil {
			return s.connDown(ev.client, ev.gen, round, err, box, res)
		}
		if upd != nil {
			box.updates[id] = upd
		} else {
			box.skips[id] = skip
		}
	case verdictLate:
		box.late++
	case verdictDuplicate:
		box.dups++
	case verdictFuture:
		return s.connDown(ev.client, ev.gen, round,
			fmt.Errorf("emu: client %d answered future round %d during round %d", id, r, round), box, res)
	case verdictUnknown:
		return s.connDown(ev.client, ev.gen, round,
			fmt.Errorf("emu: reply from unknown client %d", id), box, res)
	}
	return nil
}

// clientCodec snapshots the decoder negotiated by id's latest hello.
func (s *Server) clientCodec(id int) fl.UpdateCodec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.codecs[id]
}

// materializeReply fully decodes an accepted uplink frame into an update or
// a skip. Compressed updates decode through the client's negotiated codec
// into the server's per-client scratch; the returned delta aliases that
// scratch, which the round loop consumes before the client's next accepted
// frame (at most one accept per client per round).
func (s *Server) materializeReply(f *frame, id int) (upd *updateMsg, skip *skipMsg, err error) {
	switch f.kind {
	case msgUpdate:
		_, _, metric, delta, err := decodeUpdate(f.payload)
		if err != nil {
			return nil, nil, err
		}
		return &updateMsg{clientID: id, metric: metric, delta: delta, appBytes: int64(len(delta)) * 8}, nil, nil
	case msgUpdate2:
		_, _, metric, dim, payload, err := decodeUpdate2(f.payload)
		if err != nil {
			return nil, nil, err
		}
		codec := s.clientCodec(id)
		if codec == nil {
			return nil, nil, fmt.Errorf("emu: client %d sent a compressed update without negotiating a codec", id)
		}
		delta, err := codec.DecodeInto(s.decBufs[id], payload, dim)
		if err != nil {
			return nil, nil, fmt.Errorf("emu: client %d payload: %w", id, err)
		}
		s.decBufs[id] = delta
		return &updateMsg{clientID: id, metric: metric, delta: delta, appBytes: int64(len(payload)), encoded: true}, nil, nil
	case msgSkip:
		_, _, metric, err := decodeSkip(f.payload)
		if err != nil {
			return nil, nil, err
		}
		return nil, &skipMsg{clientID: id, metric: metric}, nil
	default:
		return nil, nil, fmt.Errorf("emu: unexpected frame kind %d", f.kind)
	}
}

// clientError tags a transport error with the client it came from.
type clientError struct {
	client int
	err    error
}

func (e clientError) Error() string { return fmt.Sprintf("client %d: %v", e.client, e.err) }

func (e clientError) Unwrap() error { return e.err }

// accuracyOf evaluates classification accuracy in bounded batches.
func accuracyOf(net *nn.Network, test *dataset.Set, evalBatch int) float64 {
	if test == nil || test.Len() == 0 {
		return math.NaN()
	}
	correct := 0
	for lo := 0; lo < test.Len(); lo += evalBatch {
		hi := lo + evalBatch
		if hi > test.Len() {
			hi = test.Len()
		}
		x, y := test.BatchView(lo, hi)
		pred := nn.Argmax(net.Forward(x))
		for i, p := range pred {
			if p == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(test.Len())
}
