package emu

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/dataset"
	"cmfl/internal/emu/shard"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
)

// ServerConfig describes the master side of the emulation.
type ServerConfig struct {
	// Addr to listen on, e.g. "127.0.0.1:0".
	Addr string
	// Clients is D, the number of slaves that must connect before training.
	Clients int

	// Model builds the global model architecture.
	Model func() *nn.Network
	// TestData evaluates global accuracy after each round.
	TestData *dataset.Set
	// EvalEvery evaluates accuracy every k rounds (default 1).
	EvalEvery int
	// EvalBatch bounds evaluation forward batches (default 64).
	EvalBatch int

	// Rounds is the number of synchronous iterations.
	Rounds int
	// TargetAccuracy stops early when reached (0 disables).
	TargetAccuracy float64

	// Compressor pins the codec clients must use (wire v2: each client
	// declares its codec's binary spec in its hello). When set, a hello
	// whose spec does not match this codec's spec byte-for-byte is
	// rejected — and aborts startup in strict mode. When nil the server
	// adopts whatever codec each hello declares, building a per-client
	// decoder from the spec. Raw (spec-less) hellos are always accepted.
	Compressor fl.UpdateCodec

	// Limits bounds timing, quorum, and fault posture (see emu.Limits). On
	// a bare server DialTimeout defaults to 60s and RoundDeadline to
	// RoundTimeout.
	Limits
	// Topology lays out the aggregation tree (see emu.Topology). The zero
	// value is the flat server: one shard owning every client.
	Topology Topology
	// RoundTimeout is the raw I/O safety net bounding any single write to a
	// client (default 60s, raised to RoundDeadline when the deadline is
	// longer). Reads deliberately carry no deadline: slow or silent clients
	// are the quorum deadline's concern, not a transport fault.
	RoundTimeout time.Duration

	// Observers receive live telemetry: one telemetry.ClientEvent per
	// reply (updates first, then skips, each in client order) followed by
	// one telemetry.RoundEvent per round.
	Observers []telemetry.Observer
	// MetricsAddr, when non-empty (e.g. "127.0.0.1:0"), serves the
	// master's metrics registry as a Prometheus-text /metrics and JSON
	// /healthz endpoint over HTTP while the cluster runs. The endpoint
	// stays up after Run returns — with its counters matching the final
	// ServerResult wire totals exactly — until Close.
	MetricsAddr string
	// Registry receives the master's metrics. Optional: when nil and
	// MetricsAddr is set, the server creates its own. Wire-byte counters
	// (cmfl_emu_uplink_wire_bytes_total, cmfl_emu_downlink_wire_bytes_total)
	// are pinned to the exact TCP payload accounting of ServerResult, and
	// the fault families (cmfl_fault_rejoins_total,
	// cmfl_straggler_late_frames_total) to its fault accounting.
	Registry *telemetry.Registry
}

// RoundStats is the emulation master's round record: the shared
// communication core plus the wire-level running totals only the real
// network stack can observe. It replaces the earlier reuse of fl.RoundStats,
// which left the simulation-only fields (train loss, significance, Eq. 8
// trace) silently zeroed.
type RoundStats struct {
	telemetry.RoundEvent

	// MeanRelevance is the mean reported filter metric across this round's
	// updates and skips (NaN when no client reported).
	MeanRelevance float64
	// CumUplinkWireBytes / CumDownlinkWireBytes are the actual TCP payload
	// bytes (frames incl. framing overhead) observed through this round.
	CumUplinkWireBytes   int64
	CumDownlinkWireBytes int64
	// Stragglers lists the clients cut off by this round's deadline,
	// ascending. Their replies, if they ever arrive, are drained as late
	// frames — never aggregated.
	Stragglers []int
	// LateFrames counts frames drained during this round that belonged to
	// an earlier round.
	LateFrames int
}

// ServerResult extends the round history with wire-level byte counts.
type ServerResult struct {
	History []RoundStats
	// FinalParams is the global model after the last round.
	FinalParams []float64
	// UplinkWireBytes / DownlinkWireBytes are the actual bytes observed on
	// the TCP payload stream (frames incl. framing overhead).
	UplinkWireBytes   int64
	DownlinkWireBytes int64
	// SkipCounts per client over the run.
	SkipCounts []int
	// StragglerCounts per client: rounds in which the client was expected
	// to reply but was cut off by the deadline.
	StragglerCounts []int
	// DroppedClients maps clients whose connection failed to the first
	// round in which it happened. With reconnection enabled a listed
	// client may still have rejoined later (see Rejoins).
	DroppedClients map[int]int
	// LateFrames / DupFrames count uplink frames that were received and
	// drained but never aggregated: replies to already-closed rounds and
	// redundant resends.
	LateFrames int
	DupFrames  int
	// Rejoins counts connections re-accepted after training started.
	Rejoins int
	// CodecUpdates counts aggregated updates that arrived codec-encoded
	// (msgUpdate2); CodecEncodedBytes sums their codec payload sizes and
	// CodecRawBytes the dim×8 bytes the same updates would have cost raw —
	// the measured compression ratio is EncodedBytes/RawBytes.
	CodecUpdates      int
	CodecEncodedBytes int64
	CodecRawBytes     int64
}

// FinalAccuracy returns the last evaluated accuracy, or NaN.
func (r *ServerResult) FinalAccuracy() float64 {
	for i := len(r.History) - 1; i >= 0; i-- {
		if !math.IsNaN(r.History[i].Accuracy) {
			return r.History[i].Accuracy
		}
	}
	return math.NaN()
}

// connEvent is what a connection reader hands to the round loop: one frame
// or one terminal error, tagged with the connection generation so stale
// readers can never corrupt a successor's accounting.
type connEvent struct {
	client int
	gen    int
	f      *frame
	wire   int64
	err    error
}

// Server is the master of Algorithm 1's GlobalOptimization, run over TCP.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	// Telemetry plumbing: observers include any configured Collector; the
	// wire counters mirror ServerResult's exact TCP payload accounting.
	obs           []telemetry.Observer
	reg           *telemetry.Registry
	metrics       *telemetry.MetricsServer
	uplinkWire    *telemetry.Counter
	downlinkWire  *telemetry.Counter
	lateFrames    *telemetry.Counter
	rejoins       *telemetry.Counter
	codecUpdates  *telemetry.Counter
	codecEncBytes *telemetry.Counter
	codecRawBytes *telemetry.Counter
	lastUpWire    int64
	lastDownWire  int64
	lastLate      int64
	lastRejoins   int64
	lastCodecUpd  int64
	lastCodecEnc  int64
	lastCodecRaw  int64

	// Wire v2 codec negotiation: serverSpec is the byte spec of
	// cfg.Compressor (nil when unset); helloErrs surfaces pre-barrier spec
	// mismatches so strict startup fails fast instead of timing out.
	serverSpec []byte
	helloErrs  chan error

	ready    chan struct{} // closed once all Clients completed their first hello
	stop     chan struct{}
	stopOnce sync.Once
	// quit asks a running server to wind down after the current round
	// (Shutdown); stop is the hard teardown signal.
	quit     chan struct{}
	quitOnce sync.Once
	// handshakes is the admission semaphore: at most MaxPendingHandshakes
	// hellos are in flight at once, the rest wait their turn.
	handshakes chan struct{}

	// The aggregation tree: shard aggregators in fixed index order, the
	// client-to-shard routing table, the root's merge accumulator and its
	// reusable scratch. All written once in NewServer (shards, shardOf) or
	// only by the round loop (rootAcc, sumBuf, metaScratch, metaHas).
	shards      []*shardAgg
	shardOf     []int
	shardStats  []shardCounters
	rootAcc     *shard.Accumulator
	sumBuf      []float64
	metaScratch []replyMeta
	metaHas     []bool

	// wg tracks every connection-servicing goroutine the server spawns
	// (acceptLoop, admit, readLoop); closeConns waits for all of them after
	// closing the sockets they may be blocked on, so Close returns only
	// once no server goroutine can touch a connection again.
	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  []net.Conn
	alive  []bool
	// pending holds connections inside the admit handshake that are not yet
	// registered in conns; closeConns closes them so a teardown never waits
	// out a handshake read deadline.
	pending map[net.Conn]struct{}
	gens    []int // connection generation per client (1 = first join)
	downGen []int // highest generation already accounted as down
	joined  int   // distinct clients that ever completed a hello
	started bool  // initial accept barrier passed
	rejoin  int   // hellos accepted after the barrier

	// codecs holds each client's negotiated decoder (nil = raw float64);
	// set in admit under mu, read by the shard aggregators.
	codecs []fl.UpdateCodec
}

// NewServer validates the configuration and binds the listen socket, so the
// effective address (with a resolved port) is known before Run.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clients <= 0 {
		return nil, errors.New("emu: Clients must be positive")
	}
	if cfg.Model == nil {
		return nil, errors.New("emu: Model factory is required")
	}
	if cfg.Rounds <= 0 {
		return nil, errors.New("emu: Rounds must be positive")
	}
	if cfg.MinQuorum < 0 || cfg.MinQuorum > cfg.Clients {
		return nil, fmt.Errorf("emu: MinQuorum %d outside [0, %d]", cfg.MinQuorum, cfg.Clients)
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	if cfg.EvalBatch <= 0 {
		cfg.EvalBatch = 64
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 60 * time.Second
	}
	if cfg.RoundDeadline <= 0 {
		cfg.RoundDeadline = cfg.RoundTimeout
	}
	if cfg.RoundTimeout < cfg.RoundDeadline {
		// The raw I/O net must never fire before the aggregation deadline.
		cfg.RoundTimeout = cfg.RoundDeadline
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 60 * time.Second
	}
	if err := cfg.Topology.validate(cfg.Clients); err != nil {
		return nil, err
	}
	queueDepth := cfg.Topology.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 8
	}
	maxHandshakes := cfg.Topology.MaxPendingHandshakes
	if maxHandshakes <= 0 {
		maxHandshakes = 4 * cfg.Topology.shardCount()
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("emu: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:         cfg,
		ln:          ln,
		obs:         cfg.Observers,
		ready:       make(chan struct{}),
		stop:        make(chan struct{}),
		quit:        make(chan struct{}),
		handshakes:  make(chan struct{}, maxHandshakes),
		conns:       make([]net.Conn, cfg.Clients),
		alive:       make([]bool, cfg.Clients),
		gens:        make([]int, cfg.Clients),
		downGen:     make([]int, cfg.Clients),
		pending:     make(map[net.Conn]struct{}),
		codecs:      make([]fl.UpdateCodec, cfg.Clients),
		helloErrs:   make(chan error, cfg.Clients),
		shardOf:     make([]int, cfg.Clients),
		rootAcc:     shard.New(0),
		metaScratch: make([]replyMeta, cfg.Clients),
		metaHas:     make([]bool, cfg.Clients),
	}
	for i, own := range shardAssignment(cfg.Clients, cfg.Topology) {
		deadline, localQ := cfg.RoundDeadline, 0
		if i < len(cfg.Topology.ShardLimits) {
			if sl := cfg.Topology.ShardLimits[i]; sl.RoundDeadline > 0 {
				deadline = sl.RoundDeadline
			}
			localQ = cfg.Topology.ShardLimits[i].MinQuorum
		}
		s.shards = append(s.shards, newShardAgg(s, i, own, deadline, localQ, queueDepth))
		for _, id := range own {
			s.shardOf[id] = i
		}
	}
	if cfg.Compressor != nil {
		spec, err := compress.EncodeSpec(cfg.Compressor)
		if err != nil {
			closeQuietly(ln)
			return nil, fmt.Errorf("emu: server codec: %w", err)
		}
		s.serverSpec = spec
	}
	if cfg.Registry != nil || cfg.MetricsAddr != "" {
		s.reg = cfg.Registry
		if s.reg == nil {
			s.reg = telemetry.NewRegistry()
		}
		s.obs = append(append([]telemetry.Observer(nil), cfg.Observers...), telemetry.NewCollector(s.reg))
		s.uplinkWire = s.reg.Counter(`cmfl_emu_uplink_wire_bytes_total`, "TCP payload bytes received from clients (frames incl. framing overhead).")
		s.downlinkWire = s.reg.Counter(`cmfl_emu_downlink_wire_bytes_total`, "TCP payload bytes sent to clients (frames incl. framing overhead).")
		s.lateFrames = s.reg.Counter(`cmfl_straggler_late_frames_total`, "Uplink frames drained after their round's deadline (received, never aggregated).")
		s.rejoins = s.reg.Counter(`cmfl_fault_rejoins_total`, "Client connections re-accepted after training started.")
		s.codecUpdates = s.reg.Counter(`cmfl_codec_updates_total`, "Aggregated updates that arrived codec-encoded (wire v2 msgUpdate2).")
		s.codecEncBytes = s.reg.Counter(`cmfl_codec_encoded_bytes_total`, "Codec payload bytes of aggregated compressed updates.")
		s.codecRawBytes = s.reg.Counter(`cmfl_codec_raw_bytes_total`, "Raw float64 bytes (dim x 8) the same compressed updates would have cost uncompressed.")
		for i := range s.shards {
			s.shardStats = append(s.shardStats, newShardCounters(s.reg, strconv.Itoa(i)))
		}
	}
	if cfg.MetricsAddr != "" {
		ms, err := telemetry.Serve(cfg.MetricsAddr, s.reg)
		if err != nil {
			closeQuietly(ln)
			return nil, err
		}
		s.metrics = ms
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr returns the bound /metrics endpoint address, or "" when
// MetricsAddr was not configured.
func (s *Server) MetricsAddr() string {
	if s.metrics == nil {
		return ""
	}
	return s.metrics.Addr()
}

// Registry returns the server's metrics registry (nil unless MetricsAddr or
// Registry was configured).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Close releases the listener, any client connections, and the metrics
// endpoint.
func (s *Server) Close() error {
	err := s.closeConns()
	if s.metrics != nil {
		if merr := s.metrics.Close(); err == nil {
			err = merr
		}
		s.metrics = nil
	}
	return err
}

// closeQuietly is the audited discard for best-effort teardown: closing a
// socket whose session already failed (or already delivered everything it
// had to) has no caller that could act on the error.
func closeQuietly(c io.Closer) {
	_ = c.Close() //cmfl:lint-ignore errcheck best-effort close on an already-failed or finished path
}

// closeConns releases the listener and client connections, leaving the
// metrics endpoint (if any) scrapeable until Close. Idempotent: Run defers
// it and Close calls it again; secondary net.ErrClosed noise is filtered.
// It returns only after every connection-servicing goroutine exited:
// closing the listener unblocks acceptLoop, closing registered and pending
// connections errors out blocked reads, and the stop channel releases
// everything parked on a select — so the Wait below cannot hang.
func (s *Server) closeConns() error {
	s.stopOnce.Do(func() { close(s.stop) })
	err := s.ln.Close()
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}
	s.mu.Lock()
	s.closed = true
	for i, c := range s.conns {
		if c == nil {
			continue
		}
		if cerr := c.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			err = errors.Join(err, cerr)
		}
		s.conns[i] = nil
		s.alive[i] = false
	}
	for c := range s.pending {
		closeQuietly(c)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// syncCounters pins the registry's wire-byte and fault counters to the
// exact accounting in res — bit-for-bit, since both sides add the same
// deltas.
func (s *Server) syncCounters(res *ServerResult) {
	if s.uplinkWire == nil {
		return
	}
	s.uplinkWire.Add(res.UplinkWireBytes - s.lastUpWire)
	s.lastUpWire = res.UplinkWireBytes
	s.downlinkWire.Add(res.DownlinkWireBytes - s.lastDownWire)
	s.lastDownWire = res.DownlinkWireBytes
	s.lateFrames.Add(int64(res.LateFrames) - s.lastLate)
	s.lastLate = int64(res.LateFrames)
	s.rejoins.Add(int64(res.Rejoins) - s.lastRejoins)
	s.lastRejoins = int64(res.Rejoins)
	s.codecUpdates.Add(int64(res.CodecUpdates) - s.lastCodecUpd)
	s.lastCodecUpd = int64(res.CodecUpdates)
	s.codecEncBytes.Add(res.CodecEncodedBytes - s.lastCodecEnc)
	s.lastCodecEnc = res.CodecEncodedBytes
	s.codecRawBytes.Add(res.CodecRawBytes - s.lastCodecRaw)
	s.lastCodecRaw = res.CodecRawBytes
}

// minQuorum is the effective reply minimum at the deadline.
func (s *Server) minQuorum() int {
	if s.cfg.MinQuorum > 0 {
		return s.cfg.MinQuorum
	}
	if s.cfg.FaultTolerant {
		return 1
	}
	return s.cfg.Clients
}

// Shutdown asks a running server to finish its current round, send the
// final done frame, and return cleanly with the partial history — the
// graceful counterpart to Close. Safe to call from any goroutine (typically
// a signal handler); calling it repeatedly, or before Run, is harmless.
func (s *Server) Shutdown() {
	s.quitOnce.Do(func() { close(s.quit) })
}

// stopping reports whether Shutdown was requested.
func (s *Server) stopping() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// Run accepts the configured number of clients, drives the synchronous
// training rounds through the aggregation tree and returns the collected
// result. It closes all client connections before returning; the metrics
// endpoint (if configured) keeps serving the final totals until Close.
//
//cmfl:deterministic
func (s *Server) Run() (res *ServerResult, err error) {
	defer func() {
		// A clean run must also tear down cleanly; surface the close error
		// unless the round loop already failed.
		if cerr := s.closeConns(); cerr != nil && err == nil && res != nil {
			res, err = nil, cerr
		}
	}()
	s.wg.Add(1)
	go s.acceptLoop()
	for _, a := range s.shards {
		go a.run()
	}
	if err := s.awaitClients(); err != nil {
		return nil, err
	}

	global := s.cfg.Model()
	params := global.ParamVector()
	res = &ServerResult{
		SkipCounts:      make([]int, s.cfg.Clients),
		StragglerCounts: make([]int, s.cfg.Clients),
	}

	cumUploads := 0
	var cumAppBytes int64 // paper-metric bytes: payload sizes only

	for t := 1; t <= s.cfg.Rounds; t++ {
		if s.stopping() {
			break
		}
		// One tree round (Algorithm 1: distribute x_{t-1}, gather, merge;
		// clients derive the feedback update from consecutive broadcasts).
		out, err := s.runRound(t, params, res)
		if err != nil {
			return nil, err
		}
		res.UplinkWireBytes += out.wire
		res.LateFrames += out.late
		res.DupFrames += out.dups
		for _, id := range out.stragglers {
			res.StragglerCounts[id]++
		}
		for _, u := range out.updates {
			cumAppBytes += u.appBytes
			if u.encoded {
				res.CodecUpdates++
				res.CodecEncodedBytes += u.appBytes
				res.CodecRawBytes += int64(u.dim) * 8
			}
		}
		for _, sk := range out.skips {
			res.SkipCounts[sk.client]++
			cumAppBytes += fl.SkipNotificationBytes
		}
		if len(out.updates) > 0 {
			// Mean-then-apply, same operation order as the flat server:
			// one multiply and one add per coordinate on the exact sum.
			inv := 1.0 / float64(len(out.updates))
			for j, g := range out.globalUpdate {
				params[j] += g * inv
			}
		}
		cumUploads += len(out.updates)

		stats := RoundStats{
			RoundEvent: telemetry.RoundEvent{
				Engine:         telemetry.EngineEmu,
				Round:          t,
				Participants:   len(out.updates) + len(out.skips),
				Uploaded:       len(out.updates),
				Skipped:        len(out.skips),
				CumUploads:     cumUploads,
				CumUplinkBytes: cumAppBytes,
				Dropped:        len(out.stragglers),
				Faults:         out.faults,
				Accuracy:       math.NaN(),
			},
			MeanRelevance:        math.NaN(),
			CumUplinkWireBytes:   res.UplinkWireBytes,
			CumDownlinkWireBytes: res.DownlinkWireBytes,
			Stragglers:           out.stragglers,
			LateFrames:           out.late,
		}
		if n := len(out.updates) + len(out.skips); n > 0 {
			var msum float64
			//cmfl:order-pinned diagnostic mean over the gather's canonical reply order; never compared across engines
			for _, u := range out.updates {
				msum += u.metric
			}
			//cmfl:order-pinned diagnostic mean over the gather's canonical reply order; never compared across engines
			for _, sk := range out.skips {
				msum += sk.metric
			}
			stats.MeanRelevance = msum / float64(n)
		}
		if t%s.cfg.EvalEvery == 0 || t == s.cfg.Rounds {
			if err := global.SetParamVector(params); err != nil {
				return nil, fmt.Errorf("emu: evaluator broadcast: %w", err)
			}
			stats.Accuracy = accuracyOf(global, s.cfg.TestData, s.cfg.EvalBatch)
		}
		res.History = append(res.History, stats)
		res.Rejoins = s.rejoinCount()
		s.syncCounters(res)
		if len(s.obs) > 0 {
			for _, u := range out.updates {
				telemetry.EmitClient(s.obs, telemetry.ClientEvent{
					Engine:      telemetry.EngineEmu,
					Round:       t,
					Client:      u.client,
					Uploaded:    true,
					Relevance:   u.metric,
					UplinkBytes: u.appBytes,
				})
			}
			for _, sk := range out.skips {
				telemetry.EmitClient(s.obs, telemetry.ClientEvent{
					Engine:      telemetry.EngineEmu,
					Round:       t,
					Client:      sk.client,
					Uploaded:    false,
					Relevance:   sk.metric,
					UplinkBytes: fl.SkipNotificationBytes,
				})
			}
			telemetry.EmitRound(s.obs, stats.RoundEvent)
		}
		if s.cfg.TargetAccuracy > 0 && !math.IsNaN(stats.Accuracy) && stats.Accuracy >= s.cfg.TargetAccuracy {
			break
		}
	}

	// Tell the surviving clients training is over.
	s.directDone(res)
	res.FinalParams = params
	res.Rejoins = s.rejoinCount()
	// Pin the counters to the final totals so a post-run scrape matches
	// ServerResult bit-for-bit.
	s.syncCounters(res)
	return res, nil
}

// acceptLoop admits connections for the whole run: the initial barrier and
// any rejoins after a fault. It exits when the listener closes. The wg.Add
// for each admit happens here, while acceptLoop still holds its own wg
// slot, so the count can never hit zero with a spawn in flight.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.admit(conn)
	}
}

// admit performs the hello handshake — including the wire-v2 codec
// negotiation — and registers the connection. A bad hello burns that
// connection (the dialer can retry); a codec-spec mismatch additionally
// surfaces on helloErrs so a strict startup fails fast. A valid hello
// replaces any previous connection for the same id (latest wins).
func (s *Server) admit(conn net.Conn) {
	defer s.wg.Done()
	// Admission backpressure: at most MaxPendingHandshakes hellos in
	// flight; excess connections queue here (each slot is released within
	// DialTimeout by the read deadline below).
	select {
	case s.handshakes <- struct{}{}:
		defer func() { <-s.handshakes }()
	case <-s.stop:
		closeQuietly(conn)
		return
	}
	// Track the handshake connection so closeConns can cut a blocked hello
	// read short instead of waiting out its deadline.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		closeQuietly(conn)
		return
	}
	s.pending[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, conn)
		s.mu.Unlock()
	}()
	// I/O deadline only; read through the package clock hook.
	if err := conn.SetReadDeadline(now().Add(s.cfg.DialTimeout)); err != nil {
		closeQuietly(conn)
		return
	}
	f, err := readFrame(conn)
	if err != nil || f.kind != msgHello {
		closeQuietly(conn)
		return
	}
	id, spec, err := decodeHello(f.payload)
	if err != nil || id < 0 || id >= s.cfg.Clients {
		closeQuietly(conn)
		return
	}
	codec, err := s.negotiateCodec(id, spec)
	if err != nil {
		select {
		case s.helloErrs <- err:
		default:
		}
		closeQuietly(conn)
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		closeQuietly(conn)
		return
	}
	if prev := s.conns[id]; prev != nil && s.alive[id] {
		// The client redialed; its old connection is stale. Its reader will
		// surface an error that markDown attributes to the old generation.
		closeQuietly(prev)
	}
	s.gens[id]++
	gen := s.gens[id]
	s.conns[id] = conn
	s.alive[id] = true
	s.codecs[id] = codec
	if gen == 1 {
		s.joined++
		if s.joined == s.cfg.Clients {
			close(s.ready)
		}
	} else if s.started {
		s.rejoin++
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.readLoop(id, gen, conn)
}

// negotiateCodec resolves a hello's codec declaration against the server's
// configuration: raw hellos are always accepted; with a configured
// Compressor the specs must match byte-for-byte; without one the server
// builds the client's decoder from the declared spec.
func (s *Server) negotiateCodec(id int, spec []byte) (fl.UpdateCodec, error) {
	if spec == nil {
		return nil, nil
	}
	if s.serverSpec != nil {
		if !bytes.Equal(spec, s.serverSpec) {
			return nil, fmt.Errorf("emu: client %d declared codec spec %x, server requires %s (%x)",
				id, spec, s.cfg.Compressor.Name(), s.serverSpec)
		}
		return s.cfg.Compressor, nil
	}
	c, rest, err := compress.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("emu: client %d codec spec: %w", id, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("emu: client %d codec spec has %d trailing bytes", id, len(rest))
	}
	return c, nil
}

// awaitClients blocks until every client completed its first hello, failing
// fast on a codec-spec mismatch — or on server teardown, so a caller that
// learns the cohort can never assemble (RunCluster watching its dialers)
// can cancel the barrier instead of burning the whole timeout.
func (s *Server) awaitClients() error {
	timer := newTimer(s.cfg.DialTimeout)
	defer timer.Stop()
	select {
	case <-s.ready:
	case err := <-s.helloErrs:
		return err
	case <-s.stop:
		return errors.New("emu: server closed before all clients connected")
	case <-timer.C():
		s.mu.Lock()
		have := s.joined
		s.mu.Unlock()
		return fmt.Errorf("emu: accept (have %d of %d clients): timeout after %v", have, s.cfg.Clients, s.cfg.DialTimeout)
	}
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	return nil
}

// rejoinCount snapshots the number of post-barrier rejoins.
func (s *Server) rejoinCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejoin
}

// readLoop forwards frames from one connection generation into the round
// loop until the connection dies or the server stops. Reads carry no
// deadline on purpose: a connected client that merely has nothing to say
// (e.g. its reply was lost upstream) can be silent for many rounds without
// being a transport failure — slowness is the quorum deadline's problem,
// not the socket's. Blocked reads are released by closeConns.
func (s *Server) readLoop(id, gen int, conn net.Conn) {
	defer s.wg.Done()
	agg := s.shards[s.shardOf[id]]
	for {
		f, err := readFrame(conn)
		if err != nil {
			agg.post(connEvent{client: id, gen: gen, err: err})
			return
		}
		agg.post(connEvent{client: id, gen: gen, f: f, wire: f.wireSize()})
	}
}

// markDown accounts one connection death exactly once per generation and
// tears the connection down. It reports whether this call did the
// accounting (callers count a fault then, and only then).
func (s *Server) markDown(id, gen int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen <= s.downGen[id] {
		return false
	}
	s.downGen[id] = gen
	if s.gens[id] == gen && !s.closed {
		s.alive[id] = false
		if s.conns[id] != nil {
			closeQuietly(s.conns[id])
		}
	}
	return true
}

// kindOrZero lets error paths print a frame kind even when f is nil.
func (f *frame) kindOrZero() byte {
	if f == nil {
		return 0
	}
	return f.kind
}

// liveTarget pins (id, generation, conn) at snapshot time so later rejoins
// cannot be blamed for an older connection's failure.
type liveTarget struct {
	id, gen int
	conn    net.Conn
}

// liveTargetsOf snapshots the live connections among the given client ids,
// in the given (ascending) order.
func (s *Server) liveTargetsOf(ids []int) []liveTarget {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]liveTarget, 0, len(ids))
	for _, i := range ids {
		if s.alive[i] && s.conns[i] != nil {
			out = append(out, liveTarget{id: i, gen: s.gens[i], conn: s.conns[i]})
		}
	}
	return out
}

// clientCodec snapshots the decoder negotiated by id's latest hello.
func (s *Server) clientCodec(id int) fl.UpdateCodec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.codecs[id]
}

// clientError tags a transport error with the client it came from.
type clientError struct {
	client int
	err    error
}

func (e clientError) Error() string { return fmt.Sprintf("client %d: %v", e.client, e.err) }

func (e clientError) Unwrap() error { return e.err }

// accuracyOf evaluates classification accuracy in bounded batches.
func accuracyOf(net *nn.Network, test *dataset.Set, evalBatch int) float64 {
	if test == nil || test.Len() == 0 {
		return math.NaN()
	}
	correct := 0
	for lo := 0; lo < test.Len(); lo += evalBatch {
		hi := lo + evalBatch
		if hi > test.Len() {
			hi = test.Len()
		}
		x, y := test.BatchView(lo, hi)
		pred := nn.Argmax(net.Forward(x))
		for i, p := range pred {
			if p == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(test.Len())
}
