package emu

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cmfl/internal/emu/shard"
)

// Directive kinds the root sends down the tree. Each directive produces
// exactly one shardPartial, so the root's alternating direct/collect per
// phase can never deadlock.
const (
	dirBroadcast = iota // write the round's model to the shard's live clients
	dirGather           // drain replies until local completion or deadline
	dirDone             // best-effort final done frame
)

// shardDirective is one phase order from the root to a shard aggregator.
type shardDirective struct {
	kind    int
	round   int
	payload []byte // model frame payload (dirBroadcast)
	dim     int    // model dimension (dirGather)
}

// replyMeta is the root-visible record of one accepted reply. The update's
// delta itself is NOT here: shards fold deltas into their exact partial sum
// as frames arrive, so per-shard memory stays flat in the client count.
type replyMeta struct {
	client   int
	metric   float64
	appBytes int64
	dim      int
	encoded  bool
	skip     bool
}

// droppedClient records one connection death for the root's DroppedClients
// map (first failing round wins there).
type droppedClient struct{ id, round int }

// shardPartial is a shard's answer to one directive.
type shardPartial struct {
	// Broadcast phase.
	expected int   // own clients the model write reached
	sent     int64 // downlink wire bytes written

	// Gather phase. sum aliases the shard's accumulator; the root consumes
	// it before issuing the next directive (strict phase alternation).
	sum           *shard.Accumulator
	replies       []replyMeta // accepted replies, ascending client id
	accepted      int
	expectedEnd   int // quorum expectation after promotions
	deadlineFired bool
	stragglers    []int
	wire          int64
	late, dups    int

	// Both phases.
	faults  int
	dropped []droppedClient
	err     error
}

// shardAgg is one shard aggregator: it owns a fixed ascending set of
// clients and runs the quorum/straggler/fault machinery over them locally,
// one phase per directive. All mutable fields below the channels are
// touched only by the shard's own goroutine (run); everything the root
// needs crosses back through the parts channel.
type shardAgg struct {
	srv         *Server
	idx         int
	clients     []int // owned client ids, ascending
	deadline    time.Duration
	localQuorum int // per-shard reply floor (0 = none; global quorum is the root's)

	// events is the shard's bounded reply queue: connection readers for
	// owned clients post here and block when it is full, which stalls the
	// offending TCP streams — per-shard backpressure by construction.
	events chan connEvent
	dirs   chan shardDirective
	parts  chan *shardPartial

	q        *Quorum
	acc      *shard.Accumulator
	decBuf   []float64 // codec decode scratch; folded before the next decode
	expected []bool    // last broadcast outcome, indexed by global client id
}

// newShardAgg wires one shard over its owned clients. queueDepth is in
// events per owned client.
func newShardAgg(srv *Server, idx int, clients []int, deadline time.Duration, localQuorum, queueDepth int) *shardAgg {
	return &shardAgg{
		srv:         srv,
		idx:         idx,
		clients:     clients,
		deadline:    deadline,
		localQuorum: localQuorum,
		events:      make(chan connEvent, queueDepth*len(clients)),
		dirs:        make(chan shardDirective, 1),
		parts:       make(chan *shardPartial, 1),
		q:           NewQuorum(srv.cfg.Clients),
		acc:         shard.New(0),
		expected:    make([]bool, srv.cfg.Clients),
	}
}

// post delivers a reader event into the shard's queue unless the server is
// shutting down.
func (a *shardAgg) post(ev connEvent) {
	select {
	case a.events <- ev:
	case <-a.srv.stop:
	}
}

// direct hands the shard its next phase order.
func (a *shardAgg) direct(d shardDirective) error {
	select {
	case a.dirs <- d:
		return nil
	case <-a.srv.stop:
		return errors.New("emu: server closed")
	}
}

// collect retrieves the shard's answer to the last directive.
func (a *shardAgg) collect() (*shardPartial, error) {
	select {
	case p := <-a.parts:
		return p, nil
	case <-a.srv.stop:
		return nil, errors.New("emu: server closed")
	}
}

// run is the shard goroutine: one partial per directive until the server
// stops.
func (a *shardAgg) run() {
	for {
		select {
		case <-a.srv.stop:
			return
		case d := <-a.dirs:
			var p *shardPartial
			switch d.kind {
			case dirBroadcast:
				p = a.broadcast(d)
			case dirGather:
				p = a.gather(d)
			case dirDone:
				p = a.done(d)
			default:
				// An unknown directive means the root and this aggregator
				// disagree about the protocol; answering with a partial would
				// desynchronize the strict phase alternation.
				p = &shardPartial{err: fmt.Errorf("emu: shard %d: unknown directive kind %d in round %d", a.idx, d.kind, d.round)}
			}
			select {
			case a.parts <- p:
			case <-a.srv.stop:
				return
			}
		}
	}
}

// broadcast writes the round's model frame to the shard's live clients in
// parallel and records which of them now owe a reply.
//
//cmfl:deterministic
func (a *shardAgg) broadcast(d shardDirective) *shardPartial {
	p := &shardPartial{}
	targets := a.srv.liveTargetsOf(a.clients)
	var wg sync.WaitGroup
	errs := make([]error, len(targets))
	var sent int64
	var mu sync.Mutex
	for li, tgt := range targets {
		wg.Add(1)
		go func(li int, conn net.Conn) {
			defer wg.Done()
			// I/O deadline only; read through the package clock hook, and
			// wall-clock never enters aggregation.
			if err := conn.SetWriteDeadline(now().Add(a.srv.cfg.RoundTimeout)); err != nil {
				errs[li] = err
				return
			}
			n, err := writeFrame(conn, msgModel, d.payload)
			if err != nil {
				errs[li] = err
				return
			}
			mu.Lock()
			sent += n
			mu.Unlock()
		}(li, tgt.conn)
	}
	wg.Wait()
	p.sent = sent
	for i := range a.expected {
		a.expected[i] = false
	}
	for li, tgt := range targets {
		if errs[li] == nil {
			a.expected[tgt.id] = true
			p.expected++
			continue
		}
		if a.srv.markDown(tgt.id, tgt.gen) {
			p.faults++
			p.dropped = append(p.dropped, droppedClient{id: tgt.id, round: d.round})
			if !a.srv.cfg.FaultTolerant {
				p.err = clientError{client: tgt.id, err: errs[li]}
				return p
			}
		}
	}
	return p
}

// done writes the final done frame to the shard's live clients,
// best-effort: a failure here carries no information the aggregate depends
// on, and counting it as a fault would make the counters hostage to
// teardown races.
func (a *shardAgg) done(shardDirective) *shardPartial {
	p := &shardPartial{}
	targets := a.srv.liveTargetsOf(a.clients)
	var wg sync.WaitGroup
	var sent int64
	var mu sync.Mutex
	for _, tgt := range targets {
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			// I/O deadline only; read through the package clock hook.
			if err := conn.SetWriteDeadline(now().Add(a.srv.cfg.RoundTimeout)); err != nil {
				return
			}
			if n, err := writeFrame(conn, msgDone, nil); err == nil {
				mu.Lock()
				sent += n
				mu.Unlock()
			}
		}(tgt.conn)
	}
	wg.Wait()
	p.sent = sent
	return p
}

// gather consumes reader events until every expected owned client replied
// or the shard's deadline fires (the missing clients become stragglers —
// the GLOBAL quorum decision belongs to the root, which sums accepted
// counts across shards). Replies arriving for earlier rounds are drained
// and counted; duplicates are never aggregated twice. Accepted updates are
// folded into the exact partial sum immediately, so the shard never holds
// more than one decoded delta at a time.
//
//cmfl:deterministic
func (a *shardAgg) gather(d shardDirective) *shardPartial {
	a.q.BeginRound(d.round, a.expected)
	a.acc.Reset(d.dim)
	p := &shardPartial{sum: a.acc}
	timer := newTimer(a.deadline)
	defer timer.Stop()
	for !a.q.Complete() {
		select {
		case ev := <-a.events:
			if err := a.handleEvent(d, ev, p); err != nil {
				p.err = err
				return p
			}
		case <-timer.C():
			p.deadlineFired = true
			if a.localQuorum > 0 && a.q.Accepted() < a.localQuorum {
				p.err = fmt.Errorf("emu: shard %d quorum not met at deadline %v: %d of %d replies (minimum %d)",
					a.idx, a.deadline, a.q.Accepted(), a.q.Expected(), a.localQuorum)
				return p
			}
			a.finish(p)
			return p
		}
	}
	a.finish(p)
	return p
}

// finish seals a completed gather partial.
func (a *shardAgg) finish(p *shardPartial) {
	p.accepted = a.q.Accepted()
	p.expectedEnd = a.q.Expected()
	p.stragglers = a.q.Stragglers()
}

// fatalError marks errors that must abort the run even in fault-tolerant
// mode: they indicate misconfiguration, not a transport fault.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

// handleEvent processes one reader event inside gather: parse only the
// (client, round) header, classify against the quorum state, and fold the
// full body for accepted frames alone. Late and duplicate frames are never
// decoded, so they cannot touch the decode scratch.
func (a *shardAgg) handleEvent(d shardDirective, ev connEvent, p *shardPartial) error {
	if ev.err != nil {
		return a.connDown(ev.client, ev.gen, d.round, ev.err, p)
	}
	id, r, err := parseReplyHeader(ev.f)
	if err == nil && id != ev.client {
		err = fmt.Errorf("emu: connection of client %d delivered a frame claiming client %d", ev.client, id)
	}
	if err != nil {
		// A malformed or mis-attributed frame means the stream cannot be
		// trusted; kill the connection (the client may redial).
		return a.connDown(ev.client, ev.gen, d.round, a.frameErr(ev, err), p)
	}
	p.wire += ev.wire
	switch a.q.Classify(id, r) {
	case VerdictAccept:
		if err := a.fold(d, ev.f, id, p); err != nil {
			var fatal fatalError
			if errors.As(err, &fatal) {
				return fatal.err
			}
			return a.connDown(ev.client, ev.gen, d.round, a.frameErr(ev, err), p)
		}
	case VerdictLate:
		p.late++
	case VerdictDuplicate:
		p.dups++
	case VerdictFuture:
		return a.connDown(ev.client, ev.gen, d.round,
			fmt.Errorf("emu: client %d answered future round %d during round %d", id, r, d.round), p)
	default: // VerdictUnknown
		return a.connDown(ev.client, ev.gen, d.round,
			fmt.Errorf("emu: reply from unknown client %d", id), p)
	}
	return nil
}

// frameErr stamps a frame-decode failure with the offending kind byte and
// the connection generation it arrived on: a reconnecting client's stale
// generation and its live one produce distinguishable errors.
func (a *shardAgg) frameErr(ev connEvent, err error) error {
	return fmt.Errorf("emu: shard %d: frame kind %d on client %d conn gen %d: %w",
		a.idx, ev.f.kindOrZero(), ev.client, ev.gen, err)
}

// fold decodes one accepted uplink frame and folds it into the shard's
// exact partial sum (updates) or records it (skips). Compressed updates
// decode through the client's negotiated codec into the shard's scratch;
// the fold copies what it needs, so the scratch is free for the next frame.
func (a *shardAgg) fold(d shardDirective, f *frame, id int, p *shardPartial) error {
	switch f.kind {
	case msgUpdate:
		_, _, metric, delta, err := decodeUpdate(f.payload)
		if err != nil {
			return err
		}
		if len(delta) != d.dim {
			return fatalError{fmt.Errorf("emu: round %d client %d sent %d params, want %d", d.round, id, len(delta), d.dim)}
		}
		a.acc.Add(delta)
		p.replies = append(p.replies, replyMeta{client: id, metric: metric, appBytes: int64(len(delta)) * 8, dim: len(delta)})
	case msgUpdate2:
		_, _, metric, dim, payload, err := decodeUpdate2(f.payload)
		if err != nil {
			return err
		}
		codec := a.srv.clientCodec(id)
		if codec == nil {
			return fmt.Errorf("emu: client %d sent a compressed update without negotiating a codec", id)
		}
		delta, err := codec.DecodeInto(a.decBuf, payload, dim)
		if err != nil {
			return fmt.Errorf("emu: client %d payload: %w", id, err)
		}
		a.decBuf = delta
		if len(delta) != d.dim {
			return fatalError{fmt.Errorf("emu: round %d client %d sent %d params, want %d", d.round, id, len(delta), d.dim)}
		}
		a.acc.Add(delta)
		p.replies = append(p.replies, replyMeta{client: id, metric: metric, appBytes: int64(len(payload)), dim: dim, encoded: true})
	case msgSkip:
		_, _, metric, err := decodeSkip(f.payload)
		if err != nil {
			return err
		}
		p.replies = append(p.replies, replyMeta{client: id, metric: metric, skip: true})
	default:
		return fmt.Errorf("emu: unexpected frame kind %d", f.kind)
	}
	return nil
}

// connDown routes a connection failure through the shard's fault tally: one
// fault per generation, a dropped record for the root, and an abort in
// strict mode.
func (a *shardAgg) connDown(id, gen, round int, cause error, p *shardPartial) error {
	if !a.srv.markDown(id, gen) {
		return nil
	}
	p.faults++
	p.dropped = append(p.dropped, droppedClient{id: id, round: round})
	if !a.srv.cfg.FaultTolerant {
		if cause == nil {
			cause = errors.New("connection down")
		}
		return clientError{client: id, err: cause}
	}
	return nil
}
