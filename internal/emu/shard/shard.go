// Package shard provides the numeric core of the emulator's two-tier
// aggregation tree: an exactly-rounded floating-point accumulator whose
// result is independent of how its inputs were grouped across shard
// aggregators, plus the contiguous client-partition helper.
//
// Floating-point addition is not associative, so naive per-shard partial
// sums merged at the root would drift bitwise from a flat server's
// sequential sum — and from each other as the shard count changes. The
// Accumulator sidesteps the problem entirely: each coordinate's running sum
// is kept as a non-overlapping expansion of floats whose total is EXACT
// (Shewchuk's grow-expansion, the same machinery behind Python's
// math.fsum), and Round returns the correctly rounded float64 of that exact
// value. The correctly rounded value of an exact sum is unique, so any
// grouping of the same update multiset — one shard or eight, merged in any
// order — rounds to identical bits. That is the determinism argument that
// lets `Shards: N` reproduce the flat server's FinalParams bit-for-bit
// under the chaos suite.
//
// Memory: an expansion holds one term per distinct "magnitude band" still
// carrying information, not one term per input, so a shard folding each
// accepted update into its accumulator as it arrives needs O(dim · terms)
// floats with terms staying small (single digits for gradient-scale data) —
// flat in the client count, unlike buffering every client's delta.
package shard

import "math"

// Accumulator sums float64 vectors exactly. The zero value is unusable;
// call New (or Reset on a reused value).
//
// Not safe for concurrent use: in the aggregation tree each shard owns one
// accumulator and the root merges them single-threaded.
type Accumulator struct {
	dim int
	// parts[j] is coordinate j's non-overlapping expansion, ordered by
	// increasing magnitude; its exact real sum equals the exact sum of
	// every value added to coordinate j since the last Reset.
	parts [][]float64
	// maxTerms tracks the widest expansion ever observed (across Resets):
	// the per-coordinate memory high-water mark, exposed so tests can
	// assert shard memory stays flat in the client count.
	maxTerms int
}

// New returns an empty accumulator for dim-dimensional vectors.
func New(dim int) *Accumulator {
	a := &Accumulator{}
	a.Reset(dim)
	return a
}

// Reset empties the accumulator and sets its dimension, retaining the
// per-coordinate term capacity so steady-state reuse does not allocate.
func (a *Accumulator) Reset(dim int) {
	if cap(a.parts) < dim {
		old := a.parts
		a.parts = make([][]float64, dim)
		copy(a.parts, old)
	}
	a.parts = a.parts[:dim]
	for j := range a.parts {
		a.parts[j] = a.parts[j][:0]
	}
	a.dim = dim
}

// Dim returns the accumulator's vector dimension.
func (a *Accumulator) Dim() int { return a.dim }

// MaxTerms returns the largest per-coordinate expansion length observed so
// far — the memory high-water mark in floats per coordinate.
func (a *Accumulator) MaxTerms() int { return a.maxTerms }

// Add folds one vector into the running exact sum. len(vec) must equal Dim.
func (a *Accumulator) Add(vec []float64) {
	if len(vec) != a.dim {
		panic("shard: Add dimension mismatch")
	}
	for j, v := range vec {
		a.add1(j, v)
	}
}

// Merge folds another accumulator's exact sum into this one. Every term of
// an expansion is an ordinary float64 whose re-insertion is exact, so the
// merged accumulator represents precisely the union of both input
// multisets — grouping leaves no trace.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.dim != a.dim {
		panic("shard: Merge dimension mismatch")
	}
	for j, terms := range b.parts {
		for _, v := range terms {
			a.add1(j, v)
		}
	}
}

// add1 grows coordinate j's expansion by x.
func (a *Accumulator) add1(j int, x float64) {
	p := growExpansion(a.parts[j], x)
	a.parts[j] = p
	if len(p) > a.maxTerms {
		a.maxTerms = len(p)
	}
}

// growExpansion folds x into a non-overlapping expansion: the TwoSum
// cascade keeps the invariant that the expansion's exact real sum is
// unchanged while its terms stay non-overlapping in increasing magnitude
// order.
func growExpansion(p []float64, x float64) []float64 {
	i := 0
	for _, y := range p {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		// lo != ±0, compared on bits: exact-zero tests are the point of
		// this algorithm, and bit tests keep them out of float-eq lint
		// territory while treating -0 like 0.
		if math.Float64bits(lo)<<1 != 0 {
			p[i] = lo
			i++
		}
		x = hi
	}
	return append(p[:i], x)
}

// Scalar sums float64 values exactly: the one-component sibling of
// Accumulator, for the scalar round statistics (loss and relevance sums)
// that ride alongside the vector aggregate and must be just as
// grouping-invariant. Unlike Accumulator, the zero value is empty and
// ready to use.
//
// Not safe for concurrent use.
type Scalar struct {
	parts []float64
}

// Add folds one value into the running exact sum.
func (s *Scalar) Add(x float64) { s.parts = growExpansion(s.parts, x) }

// Merge folds another scalar's exact sum into this one; like
// Accumulator.Merge, grouping leaves no trace.
func (s *Scalar) Merge(b *Scalar) {
	for _, v := range b.parts {
		s.parts = growExpansion(s.parts, v)
	}
}

// Round returns the correctly rounded float64 of the exact sum (+0 when
// empty), leaving the scalar untouched.
func (s *Scalar) Round() float64 { return roundExpansion(s.parts) }

// Reset empties the scalar, retaining term capacity.
func (s *Scalar) Reset() { s.parts = s.parts[:0] }

// Round writes the correctly rounded float64 value of each coordinate's
// exact sum into dst (grown as needed) and returns it. An empty coordinate
// rounds to +0. The accumulator is left untouched, so Round may be called
// repeatedly and Merge may continue afterwards.
func (a *Accumulator) Round(dst []float64) []float64 {
	if cap(dst) < a.dim {
		dst = make([]float64, a.dim)
	}
	dst = dst[:a.dim]
	for j, p := range a.parts {
		dst[j] = roundExpansion(p)
	}
	return dst
}

// roundExpansion returns the correctly rounded (nearest-even) float64 of a
// non-overlapping increasing-magnitude expansion: sum from the largest term
// down until the addition goes inexact, then apply the half-even correction
// against the next lower term (the lsparts of math.fsum's final rounding).
func roundExpansion(p []float64) float64 {
	n := len(p)
	if n == 0 {
		return 0
	}
	n--
	hi := p[n]
	var lo float64
	for n > 0 {
		x := hi
		n--
		y := p[n]
		hi = x + y
		yr := hi - x
		lo = y - yr
		if math.Float64bits(lo)<<1 != 0 {
			break
		}
	}
	// Half-way case: the discarded lo sits exactly between hi and its
	// neighbour; a remaining smaller term of the same sign tips it over.
	if n > 0 && ((lo < 0 && p[n-1] < 0) || (lo > 0 && p[n-1] > 0)) {
		y := lo * 2
		x := hi + y
		yr := x - hi
		if math.Float64bits(y) == math.Float64bits(yr) {
			hi = x
		}
	}
	return hi
}

// Range is one shard's contiguous half-open client interval.
type Range struct{ Lo, Hi int }

// Len returns the number of clients in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions n clients into k contiguous balanced ranges: the first
// n%k ranges carry one extra client. k must be in [1, n]; every range is
// non-empty so each shard aggregator owns at least one client.
func Split(n, k int) []Range {
	if k < 1 || k > n {
		panic("shard: Split wants 1 <= k <= n")
	}
	out := make([]Range, k)
	size, rem := n/k, n%k
	lo := 0
	for i := range out {
		hi := lo + size
		if i < rem {
			hi++
		}
		out[i] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}
