package shard

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// refSum computes the correctly rounded sum of xs through math/big at 400
// bits — wide enough that every partial sum of the test inputs is exact —
// as the oracle for the expansion arithmetic.
func refSum(xs []float64) float64 {
	acc := new(big.Float).SetPrec(400)
	term := new(big.Float).SetPrec(400)
	for _, x := range xs {
		acc.Add(acc, term.SetFloat64(x))
	}
	out, _ := acc.Float64()
	return out
}

// testVectors draws n gradient-shaped vectors of the given dim: mixed signs
// and several magnitude decades, the regime where naive summation visibly
// loses associativity.
func testVectors(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
		out[i] = v
	}
	return out
}

func TestRoundMatchesBigFloatReference(t *testing.T) {
	vecs := testVectors(37, 53, 1)
	acc := New(53)
	for _, v := range vecs {
		acc.Add(v)
	}
	got := acc.Round(nil)
	for j := range got {
		col := make([]float64, len(vecs))
		for i, v := range vecs {
			col[i] = v[j]
		}
		want := refSum(col)
		if math.Float64bits(got[j]) != math.Float64bits(want) {
			t.Fatalf("coordinate %d: Round = %x, big.Float reference = %x", j, got[j], want)
		}
	}
}

func TestRoundHandlesCancellation(t *testing.T) {
	// Catastrophic cancellation plus a tiny survivor: naive summation
	// returns 0 or loses the survivor; the exact expansion keeps it.
	acc := New(1)
	inputs := []float64{1e16, 1e-3, -1e16, 1e-3}
	for _, x := range inputs {
		acc.Add([]float64{x})
	}
	got := acc.Round(nil)[0]
	if want := refSum(inputs); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("cancellation sum = %g (%x), want %g (%x)", got, got, want, want)
	}
}

// TestGroupingInvariance is the tree-determinism contract: summing the same
// vectors through 1, 3, or 8 intermediate accumulators merged in any order
// must round to identical bits.
func TestGroupingInvariance(t *testing.T) {
	const n, dim = 64, 101
	vecs := testVectors(n, dim, 2)

	flat := New(dim)
	for _, v := range vecs {
		flat.Add(v)
	}
	want := flat.Round(nil)

	for _, shards := range []int{1, 2, 3, 8, 63} {
		ranges := Split(n, shards)
		parts := make([]*Accumulator, shards)
		for i, r := range ranges {
			parts[i] = New(dim)
			for _, v := range vecs[r.Lo:r.Hi] {
				parts[i].Add(v)
			}
		}
		// Merge in reverse shard order on purpose: grouping AND merge
		// order must both be invisible.
		root := New(dim)
		for i := shards - 1; i >= 0; i-- {
			root.Merge(parts[i])
		}
		got := root.Round(nil)
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("shards=%d coordinate %d: %x != flat %x", shards, j, got[j], want[j])
			}
		}
	}
}

// TestMaxTermsStaysFlat pins the memory model: folding 64 gradient-scale
// clients into one accumulator keeps the per-coordinate expansion in the
// single digits — per-shard memory does not grow with the client count the
// way buffering every delta would.
func TestMaxTermsStaysFlat(t *testing.T) {
	const dim = 101
	acc := New(dim)
	for _, v := range testVectors(64, dim, 3) {
		acc.Add(v)
	}
	if got := acc.MaxTerms(); got > 16 {
		t.Fatalf("MaxTerms = %d after 64 clients, want <= 16 (memory should stay flat)", got)
	}
}

func TestResetReusesCapacityAndClears(t *testing.T) {
	acc := New(4)
	acc.Add([]float64{1, 2, 3, 4})
	acc.Reset(4)
	got := acc.Round(nil)
	for j, v := range got {
		if v != 0 {
			t.Fatalf("after Reset, coordinate %d = %g, want 0", j, v)
		}
	}
	acc.Reset(2)
	if acc.Dim() != 2 {
		t.Fatalf("Dim after Reset(2) = %d", acc.Dim())
	}
	acc.Add([]float64{5, 6})
	if got := acc.Round(nil); got[0] != 5 || got[1] != 6 {
		t.Fatalf("post-shrink Round = %v", got)
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ n, k int }{{1, 1}, {3, 3}, {8, 3}, {64, 8}, {7, 2}, {100, 9}}
	for _, c := range cases {
		ranges := Split(c.n, c.k)
		if len(ranges) != c.k {
			t.Fatalf("Split(%d,%d): %d ranges", c.n, c.k, len(ranges))
		}
		lo, min, max := 0, c.n, 0
		for _, r := range ranges {
			if r.Lo != lo {
				t.Fatalf("Split(%d,%d): range %v not contiguous from %d", c.n, c.k, r, lo)
			}
			if r.Len() <= 0 {
				t.Fatalf("Split(%d,%d): empty range %v", c.n, c.k, r)
			}
			if r.Len() < min {
				min = r.Len()
			}
			if r.Len() > max {
				max = r.Len()
			}
			lo = r.Hi
		}
		if lo != c.n {
			t.Fatalf("Split(%d,%d): covers [0,%d)", c.n, c.k, lo)
		}
		if max-min > 1 {
			t.Fatalf("Split(%d,%d): unbalanced sizes (min %d, max %d)", c.n, c.k, min, max)
		}
	}
}

func TestSplitPanicsOutOfRange(t *testing.T) {
	for _, c := range []struct{ n, k int }{{3, 0}, {3, 4}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split(%d,%d) did not panic", c.n, c.k)
				}
			}()
			Split(c.n, c.k)
		}()
	}
}

// BenchmarkShardMerge is the tree's root-side hot path: 8 shard
// accumulators, each having folded 8 clients of a 100k-dim model, merged
// and rounded. Steady state reuses every expansion's capacity.
func BenchmarkShardMerge(b *testing.B) {
	const shards, clientsPerShard, dim = 8, 8, 100_000
	vecs := testVectors(shards*clientsPerShard, dim, 4)
	parts := make([]*Accumulator, shards)
	for i := range parts {
		parts[i] = New(dim)
	}
	root := New(dim)
	dst := make([]float64, dim)

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i, acc := range parts {
			acc.Reset(dim)
			for c := 0; c < clientsPerShard; c++ {
				acc.Add(vecs[i*clientsPerShard+c])
			}
		}
		root.Reset(dim)
		for _, acc := range parts {
			root.Merge(acc)
		}
		dst = root.Round(dst)
	}
	if dst[0] == math.Inf(1) {
		b.Fatal("unreachable; keeps dst live")
	}
}
