package emu

import (
	"fmt"
	"time"

	"cmfl/internal/emu/shard"
	"cmfl/internal/xrand"
)

// Limits bounds the emulation's timing, quorum, and fault posture. It is
// embedded by ServerConfig and ClusterConfig, so callers read and write the
// fields directly (cfg.RoundDeadline, cfg.MinQuorum, ...). One struct, one
// documentation site — this replaces the retired flat ClusterConfig.Timeout
// shim that used to govern dialing, accepting, and round I/O alike.
type Limits struct {
	// DialTimeout bounds client dials and the server's accept barrier
	// (cluster default 30s; bare servers default 60s).
	DialTimeout time.Duration
	// RoundDeadline is the per-round aggregation cut-off: rounds where
	// every reachable client replies finish immediately, and a hung client
	// costs at most this long before being excluded as a straggler
	// (cluster default 60s; bare servers default to their RoundTimeout).
	RoundDeadline time.Duration
	// MinQuorum is the minimum number of replies required to aggregate
	// when the deadline fires; below it the round (and the run) fails. The
	// quorum is global: replies are summed across every shard and enforced
	// at the tree root, so the shard layout never changes quorum
	// semantics. Default: 1 when FaultTolerant, else all clients.
	MinQuorum int
	// FaultTolerant makes the server survive client transport failures: a
	// client whose connection errors is marked down, its round counts it
	// as a straggler, and it may redial and rejoin (resent replies are
	// deduplicated). Training aborts only when every client is gone or a
	// round misses MinQuorum. Without it (the default) any failure aborts
	// the run, which keeps tests strict.
	FaultTolerant bool
}

// Topology lays out the server's aggregation tree. The zero value is the
// flat server: one aggregator owning every client.
//
// With Shards > 1 the server runs N shard aggregators, each owning a
// contiguous slice of clients and running the quorum/straggler/fault
// machinery locally; per round each shard folds its accepted updates into
// an exact partial sum (internal/emu/shard.Accumulator) and pushes it to
// the root, which merges partials in fixed shard order. Because the
// accumulator's correctly rounded result is independent of grouping,
// FinalParams and every wire/codec counter are bit-identical across shard
// counts — the flat server is simply Shards: 1.
type Topology struct {
	// Shards is the number of shard aggregators between the clients and
	// the root. 0 and 1 both mean flat; it must not exceed the client
	// count (every shard owns at least one client).
	Shards int
	// Shuffle assigns clients to shards by a seeded permutation drawn from
	// xrand.Derive(Seed, "emu-shard-assign", 0) instead of ascending
	// contiguous slices. The aggregate is bit-identical either way (the
	// root re-canonicalizes client order); only which clients share a
	// shard's deadline pool and event queue changes.
	Shuffle bool
	// Seed keys the Shuffle permutation. RunCluster defaults it to the
	// cluster Seed when Shuffle is set and Seed is zero.
	Seed int64
	// ShardLimits optionally overrides limits per shard, indexed by shard;
	// missing or zero entries inherit the global Limits. Overrides are an
	// extension point — the bit-identical parity guarantee is stated for
	// uniform limits.
	ShardLimits []ShardLimit
	// QueueDepth bounds each shard's pending reply queue, in events per
	// owned client (default 8). A full queue blocks that shard's
	// connection readers, which stalls the offending TCP streams —
	// backpressure instead of unbounded buffering.
	QueueDepth int
	// MaxPendingHandshakes bounds concurrently in-flight hello handshakes
	// (default 4 per shard). Excess connections wait their turn — admission
	// backpressure, not rejection, so a thundering-herd dial burst
	// serializes instead of failing — and each slot is held for at most
	// DialTimeout.
	MaxPendingHandshakes int
}

// ShardLimit is one shard's local override of the global Limits.
type ShardLimit struct {
	// RoundDeadline overrides the shard's local gather deadline
	// (0 inherits Limits.RoundDeadline).
	RoundDeadline time.Duration
	// MinQuorum is a local reply floor: if the shard's deadline fires with
	// fewer accepted replies the round fails even when the global quorum
	// is met. 0 disables the local floor.
	MinQuorum int
}

// shardCount normalizes Shards: 0 means flat, i.e. one shard.
func (t Topology) shardCount() int {
	if t.Shards <= 0 {
		return 1
	}
	return t.Shards
}

// validate rejects layouts the tree cannot honour.
func (t Topology) validate(clients int) error {
	if t.Shards < 0 {
		return fmt.Errorf("emu: Topology.Shards %d is negative", t.Shards)
	}
	n := t.shardCount()
	if n > clients {
		return fmt.Errorf("emu: Topology.Shards %d exceeds Clients %d (every shard owns at least one client)", n, clients)
	}
	if len(t.ShardLimits) > n {
		return fmt.Errorf("emu: %d ShardLimits for %d shards", len(t.ShardLimits), n)
	}
	if t.QueueDepth < 0 {
		return fmt.Errorf("emu: Topology.QueueDepth %d is negative", t.QueueDepth)
	}
	if t.MaxPendingHandshakes < 0 {
		return fmt.Errorf("emu: Topology.MaxPendingHandshakes %d is negative", t.MaxPendingHandshakes)
	}
	ranges := shard.Split(clients, n)
	for i, sl := range t.ShardLimits {
		if sl.MinQuorum < 0 || sl.MinQuorum > ranges[i].Len() {
			return fmt.Errorf("emu: ShardLimits[%d].MinQuorum %d outside [0, %d]", i, sl.MinQuorum, ranges[i].Len())
		}
		if sl.RoundDeadline < 0 {
			return fmt.Errorf("emu: ShardLimits[%d].RoundDeadline is negative", i)
		}
	}
	return nil
}

// shardAssignment maps clients onto shards: contiguous balanced ascending
// slices by default, or balanced slices of a seeded permutation with
// Shuffle. Each shard's owned set is returned ascending — the shard's
// canonical internal order — and the union always covers every client
// exactly once.
func shardAssignment(clients int, topo Topology) [][]int {
	order := make([]int, clients)
	for i := range order {
		order[i] = i
	}
	if topo.Shuffle {
		rng := xrand.Derive(topo.Seed, "emu-shard-assign", 0)
		rng.Shuffle(clients, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	ranges := shard.Split(clients, topo.shardCount())
	out := make([][]int, len(ranges))
	for i, r := range ranges {
		own := append([]int(nil), order[r.Lo:r.Hi]...)
		insertionSortInts(own)
		out[i] = own
	}
	return out
}

// insertionSortInts keeps the tiny ascending sort dependency-free (the
// slices are per-shard client lists, a handful of entries each).
func insertionSortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
