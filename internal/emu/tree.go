package emu

import (
	"errors"
	"fmt"
	"sort"

	"cmfl/internal/telemetry"
)

// roundOutcome is the root's merged, canonically ordered view of one round:
// what the old flat round loop derived from its single inbox, rebuilt from
// shard partials so the downstream accounting is layout-blind.
type roundOutcome struct {
	updates []replyMeta // accepted updates, ascending global client id
	skips   []replyMeta // accepted skips, ascending global client id
	// globalUpdate is the correctly rounded exact sum of every accepted
	// delta. Exactness makes it independent of the shard layout — the
	// determinism contract (see internal/emu/shard).
	globalUpdate []float64
	stragglers   []int
	late, dups   int
	faults       int
	wire         int64
}

// runRound drives one synchronous round through the aggregation tree: a
// broadcast phase fanned out to every shard in fixed order, global failure
// checks over the collected broadcast partials, then a gather phase, the
// global quorum decision, and the merge. Directives go out in fixed shard
// order and partials are collected in the same order, so root-side state
// never depends on shard timing.
//
//cmfl:deterministic
func (s *Server) runRound(t int, params []float64, res *ServerResult) (*roundOutcome, error) {
	payload := encodeModel(t, params)
	out := &roundOutcome{}

	// Phase 1: broadcast. Shards run their model writes concurrently; the
	// root waits for all of them so every shard's gather deadline starts
	// only after the whole fleet received the round — same timing contract
	// as the flat server's single broadcast barrier.
	for _, a := range s.shards {
		if err := a.direct(shardDirective{kind: dirBroadcast, round: t, payload: payload}); err != nil {
			return nil, err
		}
	}
	expectedTotal := 0
	var bcastErr error
	for _, a := range s.shards {
		p, err := a.collect()
		if err != nil {
			return nil, err
		}
		res.DownlinkWireBytes += p.sent
		out.faults += p.faults
		s.applyDropped(p.dropped, res)
		expectedTotal += p.expected
		if p.err != nil && bcastErr == nil {
			bcastErr = p.err
		}
	}
	if bcastErr != nil {
		return nil, fmt.Errorf("emu: round %d broadcast: %w", t, bcastErr)
	}
	if expectedTotal == 0 {
		// No shard reached anyone — a global judgement no single shard can
		// make (one shard losing all of its clients is survivable).
		return nil, fmt.Errorf("emu: round %d broadcast: %w", t, errors.New("emu: all clients failed"))
	}

	// Phase 2: gather. Each shard drains its own clients against its own
	// deadline; the root collects the partials in shard order.
	for _, a := range s.shards {
		if err := a.direct(shardDirective{kind: dirGather, round: t, dim: len(params)}); err != nil {
			return nil, err
		}
	}
	parts := make([]*shardPartial, len(s.shards))
	for i, a := range s.shards {
		p, err := a.collect()
		if err != nil {
			return nil, err
		}
		parts[i] = p
	}
	for _, p := range parts {
		if p.err != nil {
			return nil, fmt.Errorf("emu: round %d gather: %w", t, p.err)
		}
	}

	// Merge the drain/fault tallies in fixed shard order.
	accepted, expectedEnd, deadlineFired := 0, 0, false
	for _, p := range parts {
		out.wire += p.wire
		out.late += p.late
		out.dups += p.dups
		out.faults += p.faults
		s.applyDropped(p.dropped, res)
		accepted += p.accepted
		expectedEnd += p.expectedEnd
		deadlineFired = deadlineFired || p.deadlineFired
		out.stragglers = append(out.stragglers, p.stragglers...)
	}
	sort.Ints(out.stragglers)

	// The quorum is GLOBAL: replies are summed across shards and judged
	// here, with the flat server's exact failure modes. Per-shard quorum
	// floors (ShardLimits.MinQuorum) already failed inside gather.
	minQ := s.minQuorum()
	if accepted < minQ {
		if deadlineFired {
			return nil, fmt.Errorf("emu: round %d: quorum not met at deadline %v: %d of %d replies (minimum %d)",
				t, s.cfg.RoundDeadline, accepted, expectedEnd, minQ)
		}
		return nil, fmt.Errorf("emu: round %d: only %d replies possible (minimum %d)", t, accepted, minQ)
	}
	// Only rounds that aggregate advance the per-shard counters, matching
	// how the global families are pinned to ServerResult's accounting.
	for i, p := range parts {
		s.bumpShardCounters(i, p)
	}

	// Merge the exact partial sums in fixed shard order — the order is
	// cosmetic, since exact accumulation is grouping- and order-invariant,
	// but fixing it keeps the loop deterministic to inspection too.
	s.rootAcc.Reset(len(params))
	for _, p := range parts {
		s.rootAcc.Merge(p.sum)
	}
	out.globalUpdate = s.rootAcc.Round(s.sumBuf)
	s.sumBuf = out.globalUpdate

	// Canonicalize reply order by global client id: float accumulation is
	// already layout-proof, but MeanRelevance, telemetry emission, and the
	// history records must read identically too.
	for i := range s.metaHas {
		s.metaHas[i] = false
	}
	for _, p := range parts {
		for _, m := range p.replies {
			s.metaScratch[m.client] = m
			s.metaHas[m.client] = true
		}
	}
	for id := 0; id < s.cfg.Clients; id++ {
		if !s.metaHas[id] {
			continue
		}
		if m := s.metaScratch[id]; m.skip {
			out.skips = append(out.skips, m)
		} else {
			out.updates = append(out.updates, m)
		}
	}
	return out, nil
}

// directDone fans the final best-effort done frame out to every shard and
// folds the written bytes into the result.
func (s *Server) directDone(res *ServerResult) {
	for _, a := range s.shards {
		if a.direct(shardDirective{kind: dirDone}) != nil {
			return
		}
	}
	for _, a := range s.shards {
		p, err := a.collect()
		if err != nil {
			return
		}
		res.DownlinkWireBytes += p.sent
	}
}

// applyDropped folds shard-reported connection deaths into DroppedClients,
// first failing round wins (partials arrive in round order, so the first
// record seen is the first failure).
func (s *Server) applyDropped(dropped []droppedClient, res *ServerResult) {
	if len(dropped) == 0 {
		return
	}
	if res.DroppedClients == nil {
		res.DroppedClients = make(map[int]int)
	}
	for _, d := range dropped {
		if _, ok := res.DroppedClients[d.id]; !ok {
			res.DroppedClients[d.id] = d.round
		}
	}
}

// shardCounters are one shard's labeled telemetry family instances.
type shardCounters struct {
	rounds     *telemetry.Counter
	accepted   *telemetry.Counter
	wire       *telemetry.Counter
	stragglers *telemetry.Counter
}

// newShardCounters registers the cmfl_shard_* families for one shard. The
// shard index arrives as the label value parameter, mirroring the
// collector's engine-label idiom.
func newShardCounters(reg *telemetry.Registry, name string) shardCounters {
	label := `{shard="` + name + `"}`
	return shardCounters{
		rounds:     reg.Counter(`cmfl_shard_rounds_total`+label, "Gather phases this shard aggregated into the global round."),
		accepted:   reg.Counter(`cmfl_shard_accepted_replies_total`+label, "Replies this shard accepted into its exact partial sum."),
		wire:       reg.Counter(`cmfl_shard_uplink_wire_bytes_total`+label, "TCP payload bytes drained from this shard's clients (frames incl. framing overhead)."),
		stragglers: reg.Counter(`cmfl_shard_stragglers_total`+label, "Deadline stragglers among this shard's clients."),
	}
}

// bumpShardCounters folds one successful gather partial into the shard's
// labeled counters. Summing a family across shards reproduces the matching
// global counter (uplink wire bytes, stragglers) for rounds that aggregated.
func (s *Server) bumpShardCounters(i int, p *shardPartial) {
	if s.shardStats == nil {
		return
	}
	c := s.shardStats[i]
	c.rounds.Add(1)
	c.accepted.Add(int64(p.accepted))
	c.wire.Add(p.wire)
	c.stragglers.Add(int64(len(p.stragglers)))
}
