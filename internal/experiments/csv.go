package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"cmfl/internal/report"
	"cmfl/internal/stats"
)

// CSV renders the Fig. 1 divergence CDFs as comma-separated series.
func (r *Fig1Result) CSV() string {
	mx, mp := r.MNIST.Points(100)
	nx, np := r.NWP.Points(100)
	return report.CSV([]string{"mnist_dj", "mnist_cdf", "nwp_dj", "nwp_cdf"}, mx, mp, nx, np)
}

// CSV renders the Fig. 2 per-round measures.
func (r *Fig2Result) CSV() string {
	return report.CSV([]string{"round", "significance", "relevance"}, r.Rounds, r.Significance, r.Relevance)
}

// CSV renders the Fig. 3 ΔUpdate CDFs.
func (r *Fig3Result) CSV() string {
	mx, mp := r.MNIST.Points(100)
	nx, np := r.NWP.Points(100)
	return report.CSV([]string{"mnist_du", "mnist_cdf", "nwp_du", "nwp_cdf"}, mx, mp, nx, np)
}

// traceColumns flattens an accuracy trace into float columns.
func traceColumns(tr *stats.AccuracyTrace) (uploads, acc []float64) {
	uploads = make([]float64, len(tr.CumUploads))
	for i, c := range tr.CumUploads {
		uploads[i] = float64(c)
	}
	return uploads, tr.Accuracy
}

// CSV renders the Fig. 4 three-algorithm traces.
func (r *Fig4Result) CSV() string {
	vu, va := traceColumns(r.Vanilla.Trace)
	gu, ga := traceColumns(r.Gaia.Trace)
	cu, ca := traceColumns(r.CMFL.Trace)
	return report.CSV(
		[]string{"vanilla_uploads", "vanilla_acc", "gaia_uploads", "gaia_acc", "cmfl_uploads", "cmfl_acc"},
		vu, va, gu, ga, cu, ca)
}

// CSV renders the Fig. 5 MOCHA comparison traces.
func (r *Fig5Result) CSV() string {
	mu, ma := traceColumns(r.Mocha.Trace)
	cu, ca := traceColumns(r.WithCMFL.Trace)
	return report.CSV(
		[]string{"mocha_uploads", "mocha_acc", "cmfl_uploads", "cmfl_acc"},
		mu, ma, cu, ca)
}

// CSV renders the Fig. 6 divergence CDFs by population.
func (r *Fig6Result) CSV() string {
	ox, op := r.Outliers.Points(100)
	nx, np := r.NonOutliers.Points(100)
	return report.CSV([]string{"outlier_dj", "outlier_cdf", "inlier_dj", "inlier_cdf"}, ox, op, nx, np)
}

// CSV renders the Fig. 7 cluster traces plus the per-target byte table.
func (r *Fig7Result) CSV() string {
	vu, va := traceColumns(r.Vanilla.Trace)
	gu, ga := traceColumns(r.Gaia.Trace)
	cu, ca := traceColumns(r.CMFL.Trace)
	head := report.CSV(
		[]string{"vanilla_uploads", "vanilla_acc", "gaia_uploads", "gaia_acc", "cmfl_uploads", "cmfl_acc"},
		vu, va, gu, ga, cu, ca)
	bytes := report.CSV(
		[]string{"target", "vanilla_bytes", "gaia_bytes", "cmfl_bytes"},
		r.Targets, r.VanillaBytes, r.GaiaBytes, r.CMFLBytes)
	return head + bytes
}

// WriteCSV writes content into dir/name, creating dir if needed.
func WriteCSV(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: create csv dir: %w", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return fmt.Errorf("experiments: write %s: %w", path, err)
	}
	return nil
}
