package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"cmfl/internal/core"
	"cmfl/internal/emu"
	"cmfl/internal/fl"
	"cmfl/internal/gaia"
	"cmfl/internal/report"
	"cmfl/internal/xrand"
)

// EmulationSetup describes the Fig. 7 testbed: the next-word workload split
// across a TCP master–slave cluster (paper: 30 EC2 nodes, dialogue of 3
// roles per client).
type EmulationSetup struct {
	NWP NWPSetup
	// Clients is the cluster size (paper: 30).
	Clients int
	// CMFLThreshold / GaiaThreshold are the paper-tuned 0.65 / 0.15.
	CMFLThreshold float64
	GaiaThreshold float64
	// AccuracyTargets are the three Fig. 7b bars.
	AccuracyTargets []float64
	Timeout         time.Duration
}

// QuickEmulation is the seconds-scale preset (fewer clients, small LSTM).
func QuickEmulation() EmulationSetup {
	nwp := QuickNWP()
	nwp.Dialogue.Roles = 8
	nwp.OutlierRoles = 2
	nwp.Rounds = 150
	return EmulationSetup{
		NWP:             nwp,
		Clients:         8,
		CMFLThreshold:   0.5,
		GaiaThreshold:   0.02,
		AccuracyTargets: []float64{0.20, 0.24, 0.26},
		Timeout:         120 * time.Second,
	}
}

// PaperEmulation mirrors the paper's 30-client EC2 benchmark shape.
func PaperEmulation() EmulationSetup {
	s := QuickEmulation()
	s.NWP = PaperNWP()
	s.NWP.Dialogue.Roles = 30
	s.Clients = 30
	s.CMFLThreshold = 0.65
	s.GaiaThreshold = 0.15
	s.AccuracyTargets = []float64{0.50, 0.60, 0.70}
	return s
}

// Fig7Result holds the cluster traces and footprint comparison.
type Fig7Result struct {
	Vanilla, Gaia, CMFL AlgorithmTrace
	// BytesAt maps each target accuracy to the application-level uplink
	// bytes each algorithm needed (NaN when unreached).
	Targets      []float64
	VanillaBytes []float64
	GaiaBytes    []float64
	CMFLBytes    []float64
	// WireBytes are the actual TCP payload bytes the server observed.
	VanillaWire, GaiaWire, CMFLWire int64
}

// Fig7 runs the three algorithms over a real localhost TCP cluster.
func Fig7(s EmulationSetup) (*Fig7Result, error) {
	fed, err := s.NWP.Build()
	if err != nil {
		return nil, err
	}
	if len(fed.Shards) < s.Clients {
		return nil, fmt.Errorf("experiments: fig7 needs %d shards, have %d", s.Clients, len(fed.Shards))
	}
	shards := fed.Shards[:s.Clients]
	test, model := fed.Test, fed.Model

	run := func(filter fl.UploadFilter) (*emu.ServerResult, error) {
		res, err := emu.RunCluster(emu.ClusterConfig{
			Model:      model,
			ClientData: shards,
			TestData:   test,
			Epochs:     s.NWP.Epochs,
			Batch:      s.NWP.Batch,
			LR:         core.InvSqrt{V0: s.NWP.Eta0},
			Filter:     filter,
			Rounds:     s.NWP.Rounds,
			Seed:       s.NWP.Seed,
			Limits:     emu.Limits{DialTimeout: s.Timeout, RoundDeadline: s.Timeout},
		})
		if err != nil {
			return nil, err
		}
		return res.Server, nil
	}

	v, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig7 vanilla: %w", err)
	}
	g, err := run(gaia.NewFilter(core.Constant(s.GaiaThreshold)))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig7 gaia: %w", err)
	}
	c, err := run(core.NewFilter(core.Constant(s.CMFLThreshold)))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig7 cmfl: %w", err)
	}

	out := &Fig7Result{
		Vanilla:     AlgorithmTrace{Name: "vanilla", Trace: TraceOf(v.History)},
		Gaia:        AlgorithmTrace{Name: "gaia", Trace: TraceOf(g.History)},
		CMFL:        AlgorithmTrace{Name: "cmfl", Trace: TraceOf(c.History)},
		Targets:     s.AccuracyTargets,
		VanillaWire: v.UplinkWireBytes,
		GaiaWire:    g.UplinkWireBytes,
		CMFLWire:    c.UplinkWireBytes,
	}
	bytesAt := func(history []emu.RoundStats, target float64) float64 {
		for _, h := range history {
			if !math.IsNaN(h.Accuracy) && h.Accuracy >= target {
				return float64(h.CumUplinkBytes)
			}
		}
		return math.NaN()
	}
	for _, target := range s.AccuracyTargets {
		out.VanillaBytes = append(out.VanillaBytes, bytesAt(v.History, target))
		out.GaiaBytes = append(out.GaiaBytes, bytesAt(g.History, target))
		out.CMFLBytes = append(out.CMFLBytes, bytesAt(c.History, target))
	}
	return out, nil
}

// Render plots the Fig. 7a traces and prints the Fig. 7b footprint table.
func (r *Fig7Result) Render() string {
	toSeries := func(at AlgorithmTrace) report.Series {
		xs := make([]float64, len(at.Trace.CumUploads))
		for i, cu := range at.Trace.CumUploads {
			xs[i] = float64(cu)
		}
		return report.Series{Name: at.Name, X: xs, Y: at.Trace.Accuracy}
	}
	var b strings.Builder
	b.WriteString("Fig. 7 — TCP emulation of the EC2 deployment (NWP LSTM)\n")
	b.WriteString(report.Plot("(a) accuracy vs accumulated communication rounds", 64, 14,
		toSeries(r.Vanilla), toSeries(r.Gaia), toSeries(r.CMFL)))
	rows := make([][]string, 0, len(r.Targets))
	for i, target := range r.Targets {
		red := math.NaN()
		if !math.IsNaN(r.VanillaBytes[i]) && !math.IsNaN(r.CMFLBytes[i]) && r.CMFLBytes[i] > 0 {
			red = r.VanillaBytes[i] / r.CMFLBytes[i]
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", 100*target),
			fmtBytes(r.VanillaBytes[i]),
			fmtBytes(r.GaiaBytes[i]),
			fmtBytes(r.CMFLBytes[i]),
			fmtSaving(red, !math.IsNaN(red)),
		})
	}
	b.WriteString("(b) uplink footprint to reach each accuracy\n")
	b.WriteString(report.Table([]string{"accuracy", "vanilla", "gaia", "cmfl", "cmfl reduction"}, rows))
	fmt.Fprintf(&b, "observed wire bytes (whole run): vanilla %s, gaia %s, cmfl %s\n",
		fmtBytes(float64(r.VanillaWire)), fmtBytes(float64(r.GaiaWire)), fmtBytes(float64(r.CMFLWire)))
	return b.String()
}

func fmtBytes(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.1f MiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

// OverheadResult is the Sec. V-C micro-benchmark: time to check one
// update's relevance vs time of one local training iteration.
type OverheadResult struct {
	RelevanceCheck time.Duration
	LocalIteration time.Duration
	Dim            int
}

// Overhead measures both costs on the MNIST workload.
func Overhead(mn MNISTSetup) (*OverheadResult, error) {
	fed, err := mn.Build()
	if err != nil {
		return nil, err
	}
	net := fed.Model()
	params := net.ParamVector()
	dim := len(params)
	// Produce a real update by one local training pass.
	rng := xrand.Derive(mn.Seed, "overhead", 0)
	start := time.Now()
	delta, _, err := fl.LocalTrain(net, fed.Shards[0], params, 0.1, mn.Epochs, mn.Batch, rng)
	if err != nil {
		return nil, err
	}
	localDur := time.Since(start)

	feedback := make([]float64, dim)
	copy(feedback, delta)
	const reps = 1000
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := core.Relevance(delta, feedback); err != nil {
			return nil, err
		}
	}
	checkDur := time.Since(start) / reps
	return &OverheadResult{RelevanceCheck: checkDur, LocalIteration: localDur, Dim: dim}, nil
}

// Render prints the overhead comparison (paper: < 0.13%).
func (r *OverheadResult) Render() string {
	frac := float64(r.RelevanceCheck) / float64(r.LocalIteration) * 100
	return fmt.Sprintf(
		"Sec. V-C — relevance-check overhead (%d params): check %v, local iteration %v (%.4f%%)\n",
		r.Dim, r.RelevanceCheck, r.LocalIteration, frac)
}
