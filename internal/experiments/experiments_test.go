package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmfl/internal/core"
	"cmfl/internal/fl"
	"cmfl/internal/telemetry"
)

// miniMNIST shrinks the quick preset to test scale (a couple of seconds).
func miniMNIST() MNISTSetup {
	s := QuickMNIST()
	s.Clients = 8
	s.SamplesPerClient = 20
	s.TestSamples = 100
	s.Epochs = 2
	s.Batch = 4
	s.Rounds = 10
	s.OutlierClients = 2
	s.AccuracyTargets = []float64{0.2, 0.3}
	return s
}

func miniNWP() NWPSetup {
	s := QuickNWP()
	s.Dialogue.Roles = 6
	s.Dialogue.SamplesPerRole = 24
	s.Rounds = 12
	s.OutlierRoles = 1
	s.TestPerRole = 6
	s.AccuracyTargets = []float64{0.1, 0.15}
	return s
}

func TestMNISTBuildStructure(t *testing.T) {
	s := miniMNIST()
	fed, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Shards) != 8 {
		t.Fatalf("shards = %d, want 8", len(fed.Shards))
	}
	if len(fed.OutlierIdx) != 2 {
		t.Fatalf("outliers = %d, want 2", len(fed.OutlierIdx))
	}
	if fed.Test.Len() != 100 {
		t.Fatalf("test samples = %d, want 100", fed.Test.Len())
	}
	if fed.Model().NumParams() == 0 {
		t.Fatal("model factory produced empty network")
	}
}

func TestMNISTOutliersAreCorrupted(t *testing.T) {
	s := miniMNIST()
	s.OutlierLabelNoise = 1.0
	fed, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild without corruption and compare label distributions of the
	// outlier shards.
	clean := s
	clean.OutlierClients = 0
	cfed, err := clean.Build()
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, c := range fed.OutlierIdx {
		for i, y := range fed.Shards[c].Y {
			if y != cfed.Shards[c].Y[i] {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Fatal("outlier shards should have randomised labels")
	}
}

func TestNWPBuildStructure(t *testing.T) {
	s := miniNWP()
	fed, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Shards) != 6 {
		t.Fatalf("shards = %d, want 6", len(fed.Shards))
	}
	if fed.Test.Len() != 6*6 {
		t.Fatalf("test samples = %d, want 36", fed.Test.Len())
	}
	if len(fed.OutlierIdx) != 1 {
		t.Fatalf("outliers = %d, want 1", len(fed.OutlierIdx))
	}
}

func TestFig2StabilityShape(t *testing.T) {
	s := miniMNIST()
	s.Rounds = 15
	r, err := Fig2(s)
	if err != nil {
		t.Fatal(err)
	}
	gaiaRatio, cmflRatio := r.StabilityRatios()
	if math.IsNaN(gaiaRatio) || math.IsNaN(cmflRatio) {
		t.Fatal("stability ratios undefined")
	}
	// The paper's core observation: significance decays much faster than
	// relevance.
	if gaiaRatio >= cmflRatio {
		t.Fatalf("significance ratio %.3f should decay below relevance ratio %.3f", gaiaRatio, cmflRatio)
	}
	if !strings.Contains(r.Render(), "Fig. 2") {
		t.Fatal("render missing title")
	}
}

func TestFig1AndFig3Run(t *testing.T) {
	mn, nw := miniMNIST(), miniNWP()
	f1, err := Fig1(mn, nw)
	if err != nil {
		t.Fatal(err)
	}
	if f1.MNIST.Len() == 0 || f1.NWP.Len() == 0 {
		t.Fatal("fig1 produced empty divergence CDFs")
	}
	if !strings.Contains(f1.Render(), "Normalized Model Divergence") {
		t.Fatal("fig1 render missing content")
	}
	f3, err := Fig3(mn, nw)
	if err != nil {
		t.Fatal(err)
	}
	if f3.MNIST.Len() == 0 {
		t.Fatal("fig3 produced empty ΔUpdate CDF")
	}
	// Eq. 8 smoothness: the typical ΔUpdate should be bounded.
	if q := f3.MNIST.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("fig3 median ΔUpdate = %v, implausible", q)
	}
	if !strings.Contains(f3.Render(), "ΔUpdate") {
		t.Fatal("fig3 render missing content")
	}
}

func TestFig4RunsAndRenders(t *testing.T) {
	r, err := Fig4MNIST(miniMNIST())
	if err != nil {
		t.Fatal(err)
	}
	if r.Vanilla.Trace == nil || r.Gaia.Trace == nil || r.CMFL.Trace == nil {
		t.Fatal("missing traces")
	}
	out := r.Render()
	if !strings.Contains(out, "accuracy vs uploads") || !strings.Contains(out, "CMFL saving") {
		t.Fatalf("render incomplete:\n%s", out)
	}
	table := Table1Render(r, r)
	if !strings.Contains(table, "Table I") {
		t.Fatal("table render missing title")
	}
}

func TestSweepFindsBest(t *testing.T) {
	s := miniMNIST()
	r, err := SweepCMFLMNIST(s, []float64{0.3, 0.9}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("sweep points = %d, want 2", len(r.Points))
	}
	// 0.9 threshold on this workload blocks almost everything.
	if r.Points[1].UploadFraction >= r.Points[0].UploadFraction {
		t.Fatalf("higher threshold should upload less: %.2f vs %.2f",
			r.Points[1].UploadFraction, r.Points[0].UploadFraction)
	}
	if !strings.Contains(r.Render(), "Threshold sweep") {
		t.Fatal("sweep render missing title")
	}
	best := r.Best()
	if best.Threshold != 0.3 && best.Threshold != 0.9 {
		t.Fatalf("best threshold %v not among swept values", best.Threshold)
	}
}

func miniHAR() MTLSetup {
	s := QuickHAR()
	s.HAR.Clients = 10
	s.HAR.Outliers = 3
	s.HAR.Features = 30
	s.OutlierTasks = 3
	s.Rounds = 15
	s.AccuracyTargets = []float64{0.5, 0.55}
	return s
}

func TestFig5AndFig6(t *testing.T) {
	r, err := Fig5(miniHAR())
	if err != nil {
		t.Fatal(err)
	}
	if r.MochaRun == nil || r.CMFLRun == nil {
		t.Fatal("runs not retained")
	}
	if !strings.Contains(r.Render(), "MOCHA vs MOCHA+CMFL") {
		t.Fatal("fig5 render missing title")
	}
	f6, err := Fig6(r)
	if err != nil {
		t.Fatal(err)
	}
	if f6.Outliers.Len() == 0 || f6.NonOutliers.Len() == 0 {
		t.Fatal("fig6 produced empty populations")
	}
	if len(f6.SkipIdentified) != len(r.OutlierIdx) {
		t.Fatalf("identified %d clients, want %d", len(f6.SkipIdentified), len(r.OutlierIdx))
	}
	if !strings.Contains(f6.Render(), "outlier") {
		t.Fatal("fig6 render missing content")
	}
	if !strings.Contains(Table2Render(r, r), "Table II") {
		t.Fatal("table2 render missing title")
	}
}

func TestFig6RequiresOutlierGroundTruth(t *testing.T) {
	s := QuickSemeion()
	s.OutlierTasks = 0
	s.Rounds = 5
	r, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fig6(r); err == nil {
		t.Fatal("fig6 without outliers should error")
	}
}

func TestFig7SmallCluster(t *testing.T) {
	s := QuickEmulation()
	s.Clients = 3
	s.NWP.Dialogue.Roles = 3
	s.NWP.OutlierRoles = 1
	s.NWP.Rounds = 6
	s.AccuracyTargets = []float64{0.05}
	r, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.VanillaWire <= 0 || r.CMFLWire <= 0 {
		t.Fatal("wire byte counts missing")
	}
	if r.VanillaWire <= r.CMFLWire {
		t.Logf("note: vanilla wire %d vs cmfl %d (filtering may not trigger in 6 rounds)", r.VanillaWire, r.CMFLWire)
	}
	if !strings.Contains(r.Render(), "TCP emulation") {
		t.Fatal("fig7 render missing title")
	}
}

func TestOverheadFractionSmall(t *testing.T) {
	r, err := Overhead(miniMNIST())
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(r.RelevanceCheck) / float64(r.LocalIteration)
	if frac > 0.05 {
		t.Fatalf("relevance check costs %.2f%% of a local iteration, want well under 5%%", 100*frac)
	}
	if !strings.Contains(r.Render(), "overhead") {
		t.Fatal("overhead render missing content")
	}
}

func TestTraceOf(t *testing.T) {
	h := []fl.RoundStats{
		{RoundEvent: telemetry.RoundEvent{Round: 1, CumUploads: 5, Accuracy: 0.3}},
		{RoundEvent: telemetry.RoundEvent{Round: 2, CumUploads: 9, Accuracy: math.NaN()}},
	}
	tr := TraceOf(h)
	if len(tr.CumUploads) != 2 || tr.CumUploads[1] != 9 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestScheduleFor(t *testing.T) {
	if _, ok := scheduleFor(0.5, false).(core.Constant); !ok {
		t.Fatal("expected constant schedule")
	}
	if _, ok := scheduleFor(0.5, true).(core.InvSqrt); !ok {
		t.Fatal("expected decaying schedule")
	}
}

func TestCSVExports(t *testing.T) {
	mn, nw := miniMNIST(), miniNWP()
	f1, err := Fig1(mn, nw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(f1.CSV(), "mnist_dj,mnist_cdf") {
		t.Fatalf("fig1 csv header wrong: %q", f1.CSV()[:40])
	}
	f2, err := Fig2(mn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(f2.CSV(), "round,significance,relevance") {
		t.Fatal("fig2 csv header wrong")
	}
	f4, err := Fig4MNIST(mn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f4.CSV(), "cmfl_uploads") {
		t.Fatal("fig4 csv missing cmfl column")
	}
	f5, err := Fig5(miniHAR())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f5.CSV(), "mocha_uploads") {
		t.Fatal("fig5 csv missing column")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCSV(dir, "x.csv", "a,b\n1,2\n"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Fatalf("written content = %q", data)
	}
}

func TestMultiSeedFig4(t *testing.T) {
	s := miniMNIST()
	s.Rounds = 8
	r, err := MultiSeedFig4MNIST(s, []int64{11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Seeds) != 2 || len(r.CMFL) != len(s.AccuracyTargets) {
		t.Fatalf("multiseed shape wrong: %+v", r)
	}
	out := r.Render()
	if !strings.Contains(out, "across 2 seeds") {
		t.Fatalf("render missing seed count:\n%s", out)
	}
}
