package experiments

import (
	"fmt"
	"math"
	"strings"

	"cmfl/internal/core"
	"cmfl/internal/fl"
	"cmfl/internal/gaia"
	"cmfl/internal/report"
	"cmfl/internal/stats"
)

// Fig1Result holds the Normalized Model Divergence CDFs of Fig. 1.
type Fig1Result struct {
	MNIST *stats.CDF
	NWP   *stats.CDF
}

// Fig1 trains both workloads with vanilla FL and measures the per-parameter
// divergence (Eq. 7) between the final local models and the global model.
func Fig1(mn MNISTSetup, nw NWPSetup) (*Fig1Result, error) {
	out := &Fig1Result{}

	fed, err := mn.Build()
	if err != nil {
		return nil, err
	}
	res, err := fl.Run(mn.FLConfig(fed, nil))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 mnist run: %w", err)
	}
	div, err := stats.NormalizedModelDivergence(res.ClientParams, res.FinalParams)
	if err != nil {
		return nil, err
	}
	out.MNIST = stats.NewCDF(div)

	nfed, err := nw.Build()
	if err != nil {
		return nil, err
	}
	res, err = fl.Run(nw.FLConfig(nfed, nil))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig1 nwp run: %w", err)
	}
	div, err = stats.NormalizedModelDivergence(res.ClientParams, res.FinalParams)
	if err != nil {
		return nil, err
	}
	out.NWP = stats.NewCDF(div)
	return out, nil
}

// Render prints the CDFs and the headline statistics the paper quotes
// (fraction of parameters with divergence > 100%, maximum divergence).
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1 — CDF of Normalized Model Divergence d_j (Eq. 7)\n")
	rows := [][]string{
		{"MNIST CNN", fmt.Sprintf("%.1f%%", 100*(1-r.MNIST.At(1.0))), fmt.Sprintf("%.2f", r.MNIST.Quantile(0.5)), fmt.Sprintf("%.1f", r.MNIST.Max())},
		{"NWP LSTM", fmt.Sprintf("%.1f%%", 100*(1-r.NWP.At(1.0))), fmt.Sprintf("%.2f", r.NWP.Quantile(0.5)), fmt.Sprintf("%.1f", r.NWP.Max())},
	}
	b.WriteString(report.Table([]string{"model", "params with d_j > 100%", "median d_j", "max d_j"}, rows))
	mx, mp := r.MNIST.Points(40)
	nx, np := r.NWP.Points(40)
	b.WriteString(report.Plot("CDF(d_j)", 60, 14,
		report.Series{Name: "MNIST CNN", X: mx, Y: mp},
		report.Series{Name: "NWP LSTM", X: nx, Y: np},
	))
	return b.String()
}

// Fig2Result holds the per-round mean measures of Fig. 2.
type Fig2Result struct {
	Rounds       []float64
	Significance []float64 // Gaia's ‖u‖/‖x‖, expected to decay
	Relevance    []float64 // CMFL's Eq. 9, expected to stay stable
}

// Fig2 trains the MNIST CNN with vanilla FL and records both candidate
// measures every round (paper: 168 clients; scaled presets use fewer).
func Fig2(mn MNISTSetup) (*Fig2Result, error) {
	fed, err := mn.Build()
	if err != nil {
		return nil, err
	}
	res, err := fl.Run(mn.FLConfig(fed, nil))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 run: %w", err)
	}
	out := &Fig2Result{}
	for _, h := range res.History {
		out.Rounds = append(out.Rounds, float64(h.Round))
		out.Significance = append(out.Significance, h.MeanSignificance)
		out.Relevance = append(out.Relevance, h.MeanRelevance)
	}
	return out, nil
}

// StabilityRatios summarises the traces: each measure's late-phase mean
// divided by its early-phase mean. Gaia's ratio should be far below 1
// (decay); CMFL's should stay near 1 (stable).
func (r *Fig2Result) StabilityRatios() (gaiaRatio, cmflRatio float64) {
	third := len(r.Rounds) / 3
	if third == 0 {
		return math.NaN(), math.NaN()
	}
	early := func(v []float64) float64 { return stats.Mean(dropNaN(v[:third])) }
	late := func(v []float64) float64 { return stats.Mean(dropNaN(v[len(v)-third:])) }
	return late(r.Significance) / early(r.Significance), late(r.Relevance) / early(r.Relevance)
}

// Render prints both traces and the stability ratios.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 2 — significance (Gaia) vs relevance (CMFL) over iterations\n")
	gr, cr := r.StabilityRatios()
	fmt.Fprintf(&b, "late/early ratio: significance %.3f (decays), relevance %.3f (stable)\n", gr, cr)
	logSig := make([]float64, len(r.Significance))
	for i, v := range r.Significance {
		logSig[i] = math.Log10(math.Max(v, 1e-12))
	}
	b.WriteString(report.Plot("(a) log10 mean ‖u‖/‖x‖ per round", 60, 10,
		report.Series{Name: "significance", X: r.Rounds, Y: logSig}))
	b.WriteString(report.Plot("(b) mean relevance e(u,ū) per round", 60, 10,
		report.Series{Name: "relevance", X: r.Rounds, Y: r.Relevance}))
	return b.String()
}

// Fig3Result holds the ΔUpdate CDFs of Fig. 3.
type Fig3Result struct {
	MNIST *stats.CDF
	NWP   *stats.CDF
}

// Fig3 trains both workloads with vanilla FL and collects the normalized
// difference between sequential global updates (Eq. 8).
func Fig3(mn MNISTSetup, nw NWPSetup) (*Fig3Result, error) {
	collect := func(history []fl.RoundStats) *stats.CDF {
		var ds []float64
		for _, h := range history {
			if !math.IsNaN(h.DeltaUpdate) && !math.IsInf(h.DeltaUpdate, 0) {
				ds = append(ds, h.DeltaUpdate)
			}
		}
		return stats.NewCDF(ds)
	}
	mfed, err := mn.Build()
	if err != nil {
		return nil, err
	}
	mres, err := fl.Run(mn.FLConfig(mfed, nil))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 mnist run: %w", err)
	}
	nfed, err := nw.Build()
	if err != nil {
		return nil, err
	}
	nres, err := fl.Run(nw.FLConfig(nfed, nil))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 nwp run: %w", err)
	}
	return &Fig3Result{MNIST: collect(mres.History), NWP: collect(nres.History)}, nil
}

// Render prints the ΔUpdate CDFs and the small-difference fractions the
// paper quotes.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3 — CDF of ΔUpdate between sequential global updates (Eq. 8)\n")
	rows := [][]string{
		{"MNIST CNN", fmt.Sprintf("%.1f%%", 100*r.MNIST.At(0.5)), fmt.Sprintf("%.3f", r.MNIST.Max())},
		{"NWP LSTM", fmt.Sprintf("%.1f%%", 100*r.NWP.At(0.5)), fmt.Sprintf("%.3f", r.NWP.Max())},
	}
	b.WriteString(report.Table([]string{"model", "ΔUpdate <= 0.5", "max ΔUpdate"}, rows))
	mx, mp := r.MNIST.Points(40)
	nx, np := r.NWP.Points(40)
	b.WriteString(report.Plot("CDF(ΔUpdate)", 60, 14,
		report.Series{Name: "MNIST CNN", X: mx, Y: mp},
		report.Series{Name: "NWP LSTM", X: nx, Y: np},
	))
	return b.String()
}

// AlgorithmTrace labels one algorithm's accuracy-vs-uploads curve.
type AlgorithmTrace struct {
	Name  string
	Trace *stats.AccuracyTrace
}

// Fig4Result holds the three-algorithm comparison for one workload.
type Fig4Result struct {
	Workload string
	Vanilla  AlgorithmTrace
	Gaia     AlgorithmTrace
	CMFL     AlgorithmTrace
	// Targets are the accuracies summarised in Table I.
	Targets []float64
}

// Fig4MNIST runs vanilla, Gaia and CMFL on the digit CNN.
func Fig4MNIST(mn MNISTSetup) (*Fig4Result, error) {
	fed, err := mn.Build()
	if err != nil {
		return nil, err
	}
	run := func(f fl.UploadFilter) (*stats.AccuracyTrace, error) {
		res, err := fl.Run(mn.FLConfig(fed, f))
		if err != nil {
			return nil, err
		}
		return TraceOf(res.History), nil
	}
	v, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4a vanilla: %w", err)
	}
	g, err := run(gaia.NewFilter(core.Constant(mn.GaiaThreshold)))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4a gaia: %w", err)
	}
	c, err := run(core.NewFilter(scheduleFor(mn.CMFLThreshold, mn.CMFLDecay)))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4a cmfl: %w", err)
	}
	return &Fig4Result{
		Workload: "MNIST CNN",
		Vanilla:  AlgorithmTrace{Name: "vanilla", Trace: v},
		Gaia:     AlgorithmTrace{Name: "gaia", Trace: g},
		CMFL:     AlgorithmTrace{Name: "cmfl", Trace: c},
		Targets:  mn.AccuracyTargets,
	}, nil
}

// Fig4NWP runs vanilla, Gaia and CMFL on the next-word LSTM.
func Fig4NWP(nw NWPSetup) (*Fig4Result, error) {
	fed, err := nw.Build()
	if err != nil {
		return nil, err
	}
	run := func(f fl.UploadFilter) (*stats.AccuracyTrace, error) {
		res, err := fl.Run(nw.FLConfig(fed, f))
		if err != nil {
			return nil, err
		}
		return TraceOf(res.History), nil
	}
	v, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4b vanilla: %w", err)
	}
	g, err := run(gaia.NewFilter(core.Constant(nw.GaiaThreshold)))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4b gaia: %w", err)
	}
	c, err := run(core.NewFilter(scheduleFor(nw.CMFLThreshold, nw.CMFLDecay)))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4b cmfl: %w", err)
	}
	return &Fig4Result{
		Workload: "NWP LSTM",
		Vanilla:  AlgorithmTrace{Name: "vanilla", Trace: v},
		Gaia:     AlgorithmTrace{Name: "gaia", Trace: g},
		CMFL:     AlgorithmTrace{Name: "cmfl", Trace: c},
		Targets:  nw.AccuracyTargets,
	}, nil
}

// Render plots accuracy against accumulated communication rounds.
func (r *Fig4Result) Render() string {
	toSeries := func(at AlgorithmTrace) report.Series {
		xs := make([]float64, len(at.Trace.CumUploads))
		for i, c := range at.Trace.CumUploads {
			xs[i] = float64(c)
		}
		return report.Series{Name: at.Name, X: xs, Y: at.Trace.Accuracy}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — %s: accuracy vs accumulated communication rounds\n", r.Workload)
	b.WriteString(report.Plot("accuracy vs uploads", 64, 16,
		toSeries(r.Vanilla), toSeries(r.Gaia), toSeries(r.CMFL)))
	b.WriteString(r.SavingsTable())
	return b.String()
}

// SavingsTable renders the Table I rows derived from this workload.
func (r *Fig4Result) SavingsTable() string {
	rows := make([][]string, 0, len(r.Targets))
	for _, target := range r.Targets {
		gs, gok := stats.Saving(r.Vanilla.Trace, r.Gaia.Trace, target)
		cs, cok := stats.Saving(r.Vanilla.Trace, r.CMFL.Trace, target)
		rows = append(rows, []string{
			fmt.Sprintf("%s %.0f%% accuracy", r.Workload, 100*target),
			fmtSaving(gs, gok),
			fmtSaving(cs, cok),
		})
	}
	return report.Table([]string{"target", "Gaia saving", "CMFL saving"}, rows)
}

// Savings returns (gaia, cmfl) savings for each target; NaN when a trace
// never reaches the target.
func (r *Fig4Result) Savings() (gaiaS, cmflS []float64) {
	for _, target := range r.Targets {
		gs, gok := stats.Saving(r.Vanilla.Trace, r.Gaia.Trace, target)
		cs, cok := stats.Saving(r.Vanilla.Trace, r.CMFL.Trace, target)
		if !gok {
			gs = math.NaN()
		}
		if !cok {
			cs = math.NaN()
		}
		gaiaS = append(gaiaS, gs)
		cmflS = append(cmflS, cs)
	}
	return gaiaS, cmflS
}

// Table1Render combines both workloads into the paper's Table I.
func Table1Render(mnist, nwp *Fig4Result) string {
	var rows [][]string
	add := func(r *Fig4Result) {
		gs, cs := r.Savings()
		for i, target := range r.Targets {
			rows = append(rows, []string{
				fmt.Sprintf("%s %.0f%% accuracy", r.Workload, 100*target),
				fmtSaving(gs[i], !math.IsNaN(gs[i])),
				fmtSaving(cs[i], !math.IsNaN(cs[i])),
			})
		}
	}
	add(mnist)
	add(nwp)
	return "Table I — communication saving vs vanilla FL\n" +
		report.Table([]string{"target", "Gaia", "CMFL"}, rows)
}

func fmtSaving(s float64, ok bool) string {
	if !ok || math.IsNaN(s) {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", s)
}

func dropNaN(v []float64) []float64 {
	out := make([]float64, 0, len(v))
	for _, x := range v {
		if !math.IsNaN(x) {
			out = append(out, x)
		}
	}
	return out
}
