package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/mtl"
	"cmfl/internal/report"
	"cmfl/internal/stats"
	"cmfl/internal/xrand"
)

// MTLSetup describes one federated multi-task workload (Sec. V-B).
type MTLSetup struct {
	Name string
	// Build materialises the per-task shards (and, for HAR, the ground-
	// truth outlier indices).
	HAR     *dataset.HARConfig
	Semeion *SemeionSplit

	Lambda        float64
	InitScale     float64 // random task-weight initialisation stddev
	LR            float64 // constant, paper: 1e-4
	Epochs        int     // paper: 10
	Batch         int     // paper: 3
	Rounds        int
	CMFLThreshold float64 // paper-tuned: 0.75 (HAR) / 0.2 (Semeion); quick presets re-tuned

	// OutlierTasks / OutlierLabelNoise corrupt some tasks' labels so their
	// updates are tangential to the collaborative trend, reintroducing the
	// outlier population the paper traces in Fig. 6 (for HAR the corrupted
	// tasks coincide with the generator's deviant-direction clients).
	OutlierTasks      int
	OutlierLabelNoise float64

	AccuracyTargets []float64
	Seed            int64
}

// SemeionSplit configures the Semeion federation (15 clients, 10-200
// samples each in the paper).
type SemeionSplit struct {
	Samples    int
	Clients    int
	MinPerTask int
	MaxPerTask int
	// FlipProb is per-pixel binary noise controlling task difficulty.
	FlipProb float64
}

// QuickHAR is the seconds-scale HAR preset.
func QuickHAR() MTLSetup {
	cfg := dataset.HARConfig{
		Clients:       30,
		Outliers:      8,
		Features:      80,
		MinSamples:    15,
		MaxSamples:    60,
		ClassSep:      1.0,
		PersonalScale: 0.2,
		OutlierScale:  1.6,
		Seed:          301,
	}
	return MTLSetup{
		Name:              "HAR",
		HAR:               &cfg,
		Lambda:            0.02,
		LR:                0.004,
		Epochs:            1,
		Batch:             4,
		Rounds:            120,
		CMFLThreshold:     0.45,
		OutlierTasks:      8,
		OutlierLabelNoise: 1.0,
		AccuracyTargets:   []float64{0.62, 0.66},
		Seed:              302,
	}
}

// PaperHAR mirrors the paper's 142-client, 561-feature HAR setup.
func PaperHAR() MTLSetup {
	s := QuickHAR()
	cfg := dataset.DefaultHARConfig()
	s.HAR = &cfg
	s.Epochs = 10
	s.Batch = 3
	s.LR = 0.0001
	s.Rounds = 300
	s.CMFLThreshold = 0.75
	s.AccuracyTargets = []float64{0.85, 0.91}
	return s
}

// QuickSemeion is the seconds-scale Semeion preset.
func QuickSemeion() MTLSetup {
	return MTLSetup{
		Name:              "Semeion",
		Semeion:           &SemeionSplit{Samples: 600, Clients: 10, MinPerTask: 30, MaxPerTask: 100, FlipProb: 0.30},
		Lambda:            0.02,
		InitScale:         0.5,
		LR:                0.01,
		Epochs:            1,
		Batch:             4,
		Rounds:            150,
		CMFLThreshold:     0.55,
		OutlierTasks:      3,
		OutlierLabelNoise: 1.0,
		AccuracyTargets:   []float64{0.69, 0.70},
		Seed:              303,
	}
}

// PaperSemeion mirrors the paper's 15-client, 1593-sample Semeion setup.
func PaperSemeion() MTLSetup {
	s := QuickSemeion()
	s.Semeion = &SemeionSplit{Samples: 1593, Clients: 15, MinPerTask: 10, MaxPerTask: 200}
	s.Epochs = 10
	s.Batch = 3
	s.LR = 0.0001
	s.Rounds = 300
	s.CMFLThreshold = 0.2
	s.AccuracyTargets = []float64{0.75, 0.84}
	return s
}

// Build materialises the task shards and the outlier ground truth.
func (s MTLSetup) Build() (clients []*dataset.Set, outliers []int, err error) {
	switch {
	case s.HAR != nil:
		har, err := dataset.GenerateHAR(*s.HAR)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: har: %w", err)
		}
		// The corrupted tasks coincide with the generator's deviant-
		// direction clients, compounding both outlier mechanisms.
		outliers = har.OutlierIdx
		if s.OutlierTasks < len(outliers) {
			outliers = outliers[:s.OutlierTasks]
		}
		for _, k := range outliers {
			dataset.CorruptLabels(har.Clients[k], s.OutlierLabelNoise, 2, xrand.Derive(s.Seed, "mtl-outlier", k))
		}
		return har.Clients, outliers, nil
	case s.Semeion != nil:
		sem, err := dataset.Semeion(dataset.SemeionConfig{Samples: s.Semeion.Samples, FlipProb: s.Semeion.FlipProb, Seed: s.Seed})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: semeion: %w", err)
		}
		clients, err := dataset.SplitClients(sem, s.Semeion.Clients, s.Semeion.MinPerTask, s.Semeion.MaxPerTask, xrand.Derive(s.Seed, "semeion-split", 0))
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: semeion split: %w", err)
		}
		pick := xrand.Derive(s.Seed, "mtl-outlier-pick", 0).Perm(len(clients))
		for i := 0; i < s.OutlierTasks && i < len(clients); i++ {
			k := pick[i]
			dataset.CorruptLabels(clients[k], s.OutlierLabelNoise, 2, xrand.Derive(s.Seed, "mtl-outlier", k))
			outliers = append(outliers, k)
		}
		return clients, outliers, nil
	default:
		return nil, nil, fmt.Errorf("experiments: MTL setup %q has no workload", s.Name)
	}
}

func (s MTLSetup) mtlConfig(clients []*dataset.Set, filter mtlFilter) mtl.Config {
	return mtl.Config{
		Clients:   clients,
		Lambda:    s.Lambda,
		InitScale: s.InitScale,
		LR:        core.Constant(s.LR),
		Epochs:    s.Epochs,
		Batch:     s.Batch,
		Rounds:    s.Rounds,
		Filter:    filter,
		Seed:      s.Seed,
	}
}

// mtlFilter is the subset of fl.UploadFilter the MTL engine needs; defined
// locally so a nil literal reads clearly at call sites.
type mtlFilter = interface {
	Name() string
	Check(local, model, prevGlobal []float64, t int) (core.Decision, error)
}

// Fig5Result compares plain MOCHA against MOCHA+CMFL on one dataset.
type Fig5Result struct {
	Workload string
	Mocha    AlgorithmTrace
	WithCMFL AlgorithmTrace
	Targets  []float64
	// Accuracy gain the paper highlights: best accuracy with CMFL divided
	// by best accuracy without.
	MochaBest, CMFLBest float64
	// Run results retained for Fig. 6's outlier analysis.
	MochaRun, CMFLRun *mtl.Result
	OutlierIdx        []int
}

// Fig5 runs the multi-task comparison on the given setup.
func Fig5(s MTLSetup) (*Fig5Result, error) {
	clients, outliers, err := s.Build()
	if err != nil {
		return nil, err
	}
	plain, err := mtl.Run(s.mtlConfig(clients, nil))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5 %s mocha: %w", s.Name, err)
	}
	withCMFL, err := mtl.Run(s.mtlConfig(clients, core.NewFilter(core.Constant(s.CMFLThreshold))))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5 %s mocha+cmfl: %w", s.Name, err)
	}
	return &Fig5Result{
		Workload:   s.Name,
		Mocha:      AlgorithmTrace{Name: "mocha", Trace: plain.Trace()},
		WithCMFL:   AlgorithmTrace{Name: "mocha+cmfl", Trace: withCMFL.Trace()},
		Targets:    s.AccuracyTargets,
		MochaBest:  plain.Trace().BestAccuracy(),
		CMFLBest:   withCMFL.Trace().BestAccuracy(),
		MochaRun:   plain,
		CMFLRun:    withCMFL,
		OutlierIdx: outliers,
	}, nil
}

// Savings returns the Table II savings per target.
func (r *Fig5Result) Savings() []float64 {
	out := make([]float64, 0, len(r.Targets))
	for _, target := range r.Targets {
		s, ok := stats.Saving(r.Mocha.Trace, r.WithCMFL.Trace, target)
		if !ok {
			s = math.NaN()
		}
		out = append(out, s)
	}
	return out
}

// Render plots the comparison and prints the savings and accuracy gain.
func (r *Fig5Result) Render() string {
	toSeries := func(at AlgorithmTrace) report.Series {
		xs := make([]float64, len(at.Trace.CumUploads))
		for i, c := range at.Trace.CumUploads {
			xs[i] = float64(c)
		}
		return report.Series{Name: at.Name, X: xs, Y: at.Trace.Accuracy}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — %s: MOCHA vs MOCHA+CMFL\n", r.Workload)
	b.WriteString(report.Plot("accuracy vs uploads", 64, 14, toSeries(r.Mocha), toSeries(r.WithCMFL)))
	rows := make([][]string, 0, len(r.Targets))
	for i, target := range r.Targets {
		rows = append(rows, []string{
			fmt.Sprintf("%s %.0f%% accuracy", r.Workload, 100*target),
			fmtSaving(r.Savings()[i], !math.IsNaN(r.Savings()[i])),
		})
	}
	b.WriteString(report.Table([]string{"target", "MOCHA+CMFL saving"}, rows))
	fmt.Fprintf(&b, "best accuracy: mocha %.4f, mocha+cmfl %.4f (%.2fx)\n",
		r.MochaBest, r.CMFLBest, r.CMFLBest/r.MochaBest)
	return b.String()
}

// Table2Render combines both MTL workloads into the paper's Table II.
func Table2Render(har, semeion *Fig5Result) string {
	var rows [][]string
	add := func(r *Fig5Result) {
		sv := r.Savings()
		for i, target := range r.Targets {
			rows = append(rows, []string{
				fmt.Sprintf("%s %.0f%% accuracy", r.Workload, 100*target),
				fmtSaving(sv[i], !math.IsNaN(sv[i])),
			})
		}
	}
	add(har)
	add(semeion)
	return "Table II — saving of MOCHA+CMFL over plain MOCHA\n" +
		report.Table([]string{"target", "MOCHA with CMFL"}, rows)
}

// Fig6Result splits the per-parameter model divergence by outlier status.
type Fig6Result struct {
	Outliers    *stats.CDF
	NonOutliers *stats.CDF
	// SkipIdentified is the set of clients CMFL filtered most often (same
	// count as the ground-truth outliers), and Overlap is how many of them
	// are true outliers.
	SkipIdentified []int
	Overlap        int
}

// Fig6 analyses the HAR run: it computes Eq. 7 divergence of each task's
// final weights against the mean task model, split into the ground-truth
// outlier and non-outlier populations, and checks that CMFL's skip counts
// identify the same clients.
func Fig6(r *Fig5Result) (*Fig6Result, error) {
	if len(r.OutlierIdx) == 0 {
		return nil, fmt.Errorf("experiments: fig6 needs a workload with outlier ground truth")
	}
	// Divergence is measured on the plain run (everyone's model trained),
	// while the skip identification uses the CMFL run's filter decisions.
	run := r.MochaRun
	m := len(run.Weights)
	dim := len(run.Weights[0])
	mean := make([]float64, dim)
	for _, w := range run.Weights {
		for j, v := range w {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(m)
	}
	isOutlier := make(map[int]bool, len(r.OutlierIdx))
	for _, k := range r.OutlierIdx {
		isOutlier[k] = true
	}
	var outW, inW [][]float64
	for k, w := range run.Weights {
		if isOutlier[k] {
			outW = append(outW, w)
		} else {
			inW = append(inW, w)
		}
	}
	outDiv, err := stats.NormalizedModelDivergence(outW, mean)
	if err != nil {
		return nil, err
	}
	inDiv, err := stats.NormalizedModelDivergence(inW, mean)
	if err != nil {
		return nil, err
	}

	// Rank clients by skip count; take the top |outliers|.
	type kc struct{ k, c int }
	ranked := make([]kc, m)
	for k, c := range r.CMFLRun.SkipCounts {
		ranked[k] = kc{k, c}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].k < ranked[j].k
	})
	identified := make([]int, 0, len(r.OutlierIdx))
	overlap := 0
	for i := 0; i < len(r.OutlierIdx) && i < m; i++ {
		identified = append(identified, ranked[i].k)
		if isOutlier[ranked[i].k] {
			overlap++
		}
	}
	return &Fig6Result{
		Outliers:       stats.NewCDF(outDiv),
		NonOutliers:    stats.NewCDF(inDiv),
		SkipIdentified: identified,
		Overlap:        overlap,
	}, nil
}

// Render prints the divergence split and the outlier-identification hit
// rate.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 6 — model divergence of outlier vs non-outlier clients (HAR)\n")
	rows := [][]string{
		{"outliers", fmt.Sprintf("%.1f%%", 100*(1-r.Outliers.At(1.0))), fmt.Sprintf("%.2f", r.Outliers.Quantile(0.5)), fmt.Sprintf("%.2f", r.Outliers.Max())},
		{"non-outliers", fmt.Sprintf("%.1f%%", 100*(1-r.NonOutliers.At(1.0))), fmt.Sprintf("%.2f", r.NonOutliers.Quantile(0.5)), fmt.Sprintf("%.2f", r.NonOutliers.Max())},
	}
	b.WriteString(report.Table([]string{"population", "params with d_j > 100%", "median d_j", "max d_j"}, rows))
	ox, op := r.Outliers.Points(40)
	nx, np := r.NonOutliers.Points(40)
	b.WriteString(report.Plot("CDF(d_j) by population", 60, 12,
		report.Series{Name: "outliers", X: ox, Y: op},
		report.Series{Name: "non-outliers", X: nx, Y: np},
	))
	fmt.Fprintf(&b, "CMFL's most-skipped clients overlap ground-truth outliers: %d of %d\n",
		r.Overlap, len(r.SkipIdentified))
	return b.String()
}
