package experiments

import (
	"fmt"
	"strings"

	"cmfl/internal/report"
	"cmfl/internal/stats"
)

// MultiSeedResult aggregates a figure's headline savings across independent
// seeds, giving the mean ± std robustness view a single deterministic run
// cannot.
type MultiSeedResult struct {
	Workload string
	Targets  []float64
	Seeds    []int64
	// Gaia and CMFL hold one summary per target accuracy.
	Gaia []stats.Summary
	CMFL []stats.Summary
}

// MultiSeedFig4MNIST repeats the Fig. 4a comparison across seeds.
func MultiSeedFig4MNIST(base MNISTSetup, seeds []int64) (*MultiSeedResult, error) {
	out := &MultiSeedResult{
		Workload: "MNIST CNN",
		Targets:  base.AccuracyTargets,
		Seeds:    seeds,
		Gaia:     make([]stats.Summary, len(base.AccuracyTargets)),
		CMFL:     make([]stats.Summary, len(base.AccuracyTargets)),
	}
	for _, seed := range seeds {
		s := base
		s.Seed = seed
		r, err := Fig4MNIST(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: multiseed fig4a seed %d: %w", seed, err)
		}
		gs, cs := r.Savings()
		for i := range base.AccuracyTargets {
			out.Gaia[i].Add(gs[i])
			out.CMFL[i].Add(cs[i])
		}
	}
	return out, nil
}

// MultiSeedFig4NWP repeats the Fig. 4b comparison across seeds.
func MultiSeedFig4NWP(base NWPSetup, seeds []int64) (*MultiSeedResult, error) {
	out := &MultiSeedResult{
		Workload: "NWP LSTM",
		Targets:  base.AccuracyTargets,
		Seeds:    seeds,
		Gaia:     make([]stats.Summary, len(base.AccuracyTargets)),
		CMFL:     make([]stats.Summary, len(base.AccuracyTargets)),
	}
	for _, seed := range seeds {
		s := base
		s.Seed = seed
		s.Dialogue.Seed = seed + 1
		r, err := Fig4NWP(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: multiseed fig4b seed %d: %w", seed, err)
		}
		gs, cs := r.Savings()
		for i := range base.AccuracyTargets {
			out.Gaia[i].Add(gs[i])
			out.CMFL[i].Add(cs[i])
		}
	}
	return out, nil
}

// Render prints the aggregated savings table. Summaries whose N is below
// the seed count flag how often a target was unreachable.
func (r *MultiSeedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 (%s) across %d seeds — saving vs vanilla FL\n", r.Workload, len(r.Seeds))
	rows := make([][]string, 0, len(r.Targets))
	for i, target := range r.Targets {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%% accuracy", 100*target),
			r.Gaia[i].String(),
			r.CMFL[i].String(),
		})
	}
	b.WriteString(report.Table([]string{"target", "Gaia saving", "CMFL saving"}, rows))
	return b.String()
}
