// Package experiments maps every table and figure of the paper's evaluation
// onto runnable experiment functions. The cmd/ binaries and the top-level
// benchmarks are thin wrappers around this package, so each figure has
// exactly one implementation.
//
// Every setup comes in two presets: Quick (seconds on a laptop; the default
// for tests and benches) and Paper (the paper's client counts and round
// budgets; minutes to hours). Absolute accuracies differ from the paper —
// the substrate is a from-scratch trainer on synthetic data — but the
// comparative shape (CMFL ≫ Gaia > vanilla in communication saving) is the
// reproduction target; see EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/stats"
	"cmfl/internal/telemetry"
	"cmfl/internal/xrand"
)

// MNISTSetup describes the digit-CNN federation (paper Sec. V-A workload 1).
type MNISTSetup struct {
	Clients          int
	SamplesPerClient int
	ShardsPerClient  int
	TestSamples      int
	CNN              nn.CNNConfig

	Epochs int     // E (paper: 4)
	Batch  int     // B (paper: 2)
	Eta0   float64 // η_t = Eta0/√t

	CMFLThreshold float64 // paper-tuned: 0.8; quick preset re-tuned by cmfl-tune
	// CMFLDecay applies v_t = CMFLThreshold/√t instead of a constant
	// threshold (the paper's Theorem 1 schedule; the constant variant is
	// what the quick presets tune best).
	CMFLDecay     bool
	GaiaThreshold float64 // paper-tuned: 0.05

	Rounds int
	// AccuracyTargets are the Table I rows (paper: 0.60 and 0.80).
	AccuracyTargets []float64

	// OutlierClients is the number of clients whose labels are corrupted
	// (fraction OutlierLabelNoise randomised). Real federated populations
	// contain such tangential clients — the paper's Fig. 1 shows per-
	// parameter divergences up to 268 and Fig. 6 traces 84.5% of CMFL's
	// eliminations to 26% of clients — but a clean synthetic generator
	// would not, so the federation builder reintroduces them explicitly.
	OutlierClients    int
	OutlierLabelNoise float64

	Seed        int64
	Parallelism int
}

// QuickMNIST is the seconds-scale preset.
func QuickMNIST() MNISTSetup {
	return MNISTSetup{
		Clients:           20,
		SamplesPerClient:  30,
		ShardsPerClient:   2,
		TestSamples:       300,
		CNN:               nn.CNNConfig{ImageSize: 12, Kernel: 3, Conv1: 3, Conv2: 6, Hidden: 24, Classes: 10},
		Epochs:            4,
		Batch:             2,
		Eta0:              0.15,
		CMFLThreshold:     0.52,
		GaiaThreshold:     0.05,
		Rounds:            80,
		AccuracyTargets:   []float64{0.55, 0.70},
		OutlierClients:    5,
		OutlierLabelNoise: 1.0,
		Seed:              101,
	}
}

// PaperMNIST mirrors the paper's configuration (100 clients × 600 samples,
// 28×28 images, 5×5 kernels, E=4, B=2). Expect a long run.
func PaperMNIST() MNISTSetup {
	s := QuickMNIST()
	s.Clients = 100
	s.SamplesPerClient = 600
	s.TestSamples = 2000
	s.CNN = nn.CNNConfig{ImageSize: 28, Kernel: 5, Conv1: 8, Conv2: 16, Hidden: 64, Classes: 10}
	s.Epochs = 4
	s.Batch = 2
	s.Rounds = 900
	s.CMFLThreshold = 0.8
	s.AccuracyTargets = []float64{0.60, 0.80}
	s.OutlierClients = 26 // same outlier share the paper measures on HAR
	return s
}

// Federation is a materialised federated workload: client shards, a global
// test set, the model factory, and which clients were constructed as
// outliers (ground truth for the divergence analyses).
type Federation struct {
	Shards     []*dataset.Set
	Test       *dataset.Set
	Model      func() *nn.Network
	OutlierIdx []int
}

// Build materialises the shards, test set and model factory.
func (s MNISTSetup) Build() (*Federation, error) {
	all, err := dataset.Digits(dataset.DigitsConfig{
		Samples:   s.Clients * s.SamplesPerClient,
		ImageSize: s.CNN.ImageSize,
		Noise:     0.15,
		MaxShift:  1,
		Seed:      s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: mnist data: %w", err)
	}
	shards, err := dataset.SortedShards(all, s.Clients, s.ShardsPerClient, xrand.Derive(s.Seed, "shards", 0))
	if err != nil {
		return nil, fmt.Errorf("experiments: mnist shards: %w", err)
	}
	outliers := corruptOutliers(shards, s.OutlierClients, s.OutlierLabelNoise, s.CNN.Classes, s.Seed)
	test, err := dataset.Digits(dataset.DigitsConfig{
		Samples:   s.TestSamples,
		ImageSize: s.CNN.ImageSize,
		Noise:     0.15,
		MaxShift:  1,
		Seed:      s.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: mnist test: %w", err)
	}
	cnn := s.CNN
	seed := s.Seed
	model := func() *nn.Network { return nn.NewCNN(cnn, xrand.Derive(seed, "init", 0)) }
	return &Federation{Shards: shards, Test: test, Model: model, OutlierIdx: outliers}, nil
}

// corruptOutliers picks `count` clients deterministically and randomises
// `noise` of their labels. Returns the chosen indices.
func corruptOutliers(shards []*dataset.Set, count int, noise float64, classes int, seed int64) []int {
	if count <= 0 || noise <= 0 {
		return nil
	}
	if count > len(shards) {
		count = len(shards)
	}
	pick := xrand.Derive(seed, "outlier-pick", 0).Perm(len(shards))[:count]
	for _, c := range pick {
		dataset.CorruptLabels(shards[c], noise, classes, xrand.Derive(seed, "outlier-noise", c))
	}
	return pick
}

// FLConfig assembles the engine configuration for this setup.
func (s MNISTSetup) FLConfig(fed *Federation, filter fl.UploadFilter) fl.Config {
	return fl.Config{
		Model:       fed.Model,
		ClientData:  fed.Shards,
		TestData:    fed.Test,
		Epochs:      s.Epochs,
		Batch:       s.Batch,
		LR:          core.InvSqrt{V0: s.Eta0},
		Filter:      filter,
		Rounds:      s.Rounds,
		Seed:        s.Seed,
		Parallelism: s.Parallelism,
	}
}

// NWPSetup describes the next-word-prediction federation (workload 2).
type NWPSetup struct {
	Dialogue dataset.DialogueConfig
	LSTM     nn.LSTMConfig

	Epochs int
	Batch  int
	Eta0   float64

	CMFLThreshold float64 // paper-tuned: 0.7; quick preset re-tuned by cmfl-tune
	CMFLDecay     bool
	GaiaThreshold float64 // paper-tuned: 0.25

	Rounds          int
	AccuracyTargets []float64

	// OutlierRoles / OutlierLabelNoise reintroduce tangential clients, as
	// in MNISTSetup.
	OutlierRoles      int
	OutlierLabelNoise float64

	Seed        int64
	Parallelism int
	// TestPerRole holds out this many of each role's samples for the
	// global evaluation set.
	TestPerRole int
}

// QuickNWP is the seconds-scale preset.
func QuickNWP() NWPSetup {
	dc := dataset.DialogueConfig{
		Roles:           12,
		Vocab:           40,
		Window:          8,
		SamplesPerRole:  48,
		FavoredPerRole:  8,
		FavoredBoost:    6,
		BranchesPerWord: 3,
		Seed:            201,
	}
	return NWPSetup{
		Dialogue:          dc,
		LSTM:              nn.LSTMConfig{Vocab: dc.Vocab, Embed: 12, Hidden: 20, Layers: 1},
		Epochs:            1,
		Batch:             4,
		Eta0:              1.5,
		CMFLThreshold:     0.5,
		GaiaThreshold:     0.05,
		Rounds:            220,
		AccuracyTargets:   []float64{0.22, 0.26},
		OutlierRoles:      2,
		OutlierLabelNoise: 1.0,
		Seed:              202,
		TestPerRole:       12,
	}
}

// PaperNWP approaches the paper's configuration (100 roles, 1675-word
// vocabulary, 10-word window, 2×256 LSTM).
func PaperNWP() NWPSetup {
	s := QuickNWP()
	s.Dialogue.Roles = 100
	s.Dialogue.Vocab = 1675
	s.Dialogue.Window = 10
	s.Dialogue.SamplesPerRole = 66
	s.Dialogue.FavoredPerRole = 150
	s.LSTM = nn.LSTMConfig{Vocab: 1675, Embed: 64, Hidden: 256, Layers: 2}
	s.Epochs = 4
	s.Batch = 2
	s.Rounds = 2000
	s.CMFLThreshold = 0.7
	s.GaiaThreshold = 0.25
	s.AccuracyTargets = []float64{0.60, 0.80}
	s.OutlierRoles = 26
	return s
}

// Build materialises the per-role shards, test set and model factory.
func (s NWPSetup) Build() (*Federation, error) {
	d, err := dataset.GenerateDialogue(s.Dialogue)
	if err != nil {
		return nil, fmt.Errorf("experiments: dialogue: %w", err)
	}
	shards := make([]*dataset.Set, len(d.Clients))
	var testParts []*dataset.Set
	for r, set := range d.Clients {
		n := set.Len()
		hold := s.TestPerRole
		if hold >= n {
			hold = n / 2
		}
		idxTrain := make([]int, 0, n-hold)
		idxTest := make([]int, 0, hold)
		for i := 0; i < n; i++ {
			if i < n-hold {
				idxTrain = append(idxTrain, i)
			} else {
				idxTest = append(idxTest, i)
			}
		}
		shards[r] = set.Subset(idxTrain)
		testParts = append(testParts, set.Subset(idxTest))
	}
	outliers := corruptOutliers(shards, s.OutlierRoles, s.OutlierLabelNoise, s.Dialogue.Vocab, s.Seed)
	test := dataset.Merge(testParts)
	lstm := s.LSTM
	seed := s.Seed
	model := func() *nn.Network { return nn.NewNextWordLSTM(lstm, xrand.Derive(seed, "init", 0)) }
	return &Federation{Shards: shards, Test: test, Model: model, OutlierIdx: outliers}, nil
}

func (s NWPSetup) FLConfig(fed *Federation, filter fl.UploadFilter) fl.Config {
	return fl.Config{
		Model:       fed.Model,
		ClientData:  fed.Shards,
		TestData:    fed.Test,
		Epochs:      s.Epochs,
		Batch:       s.Batch,
		LR:          core.InvSqrt{V0: s.Eta0},
		Filter:      filter,
		Rounds:      s.Rounds,
		Seed:        s.Seed,
		Parallelism: s.Parallelism,
	}
}

// TraceOf converts any engine history into an accuracy trace. It accepts
// every stats type embedding the shared telemetry.RoundEvent core
// (fl.RoundStats, emu.RoundStats, mtl.RoundStats, ...).
func TraceOf[S telemetry.Eventer](history []S) *stats.AccuracyTrace {
	tr := &stats.AccuracyTrace{}
	for _, h := range history {
		e := h.Event()
		tr.CumUploads = append(tr.CumUploads, e.CumUploads)
		tr.Accuracy = append(tr.Accuracy, e.Accuracy)
	}
	return tr
}
