package experiments

import (
	"fmt"
	"math"
	"strings"

	"cmfl/internal/core"
	"cmfl/internal/fl"
	"cmfl/internal/gaia"
	"cmfl/internal/report"
	"cmfl/internal/stats"
)

// SweepPoint is one threshold's outcome in a tuning sweep.
type SweepPoint struct {
	Threshold float64
	// Saving at each accuracy target (NaN when unreached).
	Savings []float64
	// UploadFraction is uploads / (clients × rounds).
	UploadFraction float64
	BestAccuracy   float64
}

// SweepResult is the paper's threshold-tuning procedure (Sec. V-A: "we
// tested a set of 10 threshold values ... and chose the threshold values
// with the best performance").
type SweepResult struct {
	Algorithm string
	Targets   []float64
	Points    []SweepPoint
}

// Best returns the threshold with the highest saving at the last (hardest)
// target, falling back to earlier targets and then best accuracy.
func (r *SweepResult) Best() SweepPoint {
	best := r.Points[0]
	score := func(p SweepPoint) float64 {
		for i := len(p.Savings) - 1; i >= 0; i-- {
			if !math.IsNaN(p.Savings[i]) {
				return float64(i+1)*1000 + p.Savings[i]
			}
		}
		return p.BestAccuracy
	}
	for _, p := range r.Points[1:] {
		if score(p) > score(best) {
			best = p
		}
	}
	return best
}

// Render prints the sweep as a table.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Threshold sweep — %s\n", r.Algorithm)
	headers := []string{"threshold", "upload frac", "best acc"}
	for _, t := range r.Targets {
		headers = append(headers, fmt.Sprintf("saving@%.0f%%", 100*t))
	}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		row := []string{
			fmt.Sprintf("%.2f", p.Threshold),
			fmt.Sprintf("%.2f", p.UploadFraction),
			fmt.Sprintf("%.3f", p.BestAccuracy),
		}
		for _, s := range p.Savings {
			row = append(row, fmtSaving(s, !math.IsNaN(s)))
		}
		rows = append(rows, row)
	}
	b.WriteString(report.Table(headers, rows))
	return b.String()
}

// sweepRunner abstracts "run the workload once with this filter" so MNIST
// and NWP sweeps share the code.
type sweepRunner struct {
	run     func(filter fl.UploadFilter) (*stats.AccuracyTrace, float64, error) // trace, uploadFraction
	targets []float64
	vanilla *stats.AccuracyTrace
}

// SweepCMFLMNIST sweeps CMFL relevance thresholds on the digit workload.
func SweepCMFLMNIST(mn MNISTSetup, thresholds []float64, decay bool) (*SweepResult, error) {
	r, err := mnistRunner(mn)
	if err != nil {
		return nil, err
	}
	return sweep(r, "cmfl on MNIST CNN", thresholds, func(v float64) fl.UploadFilter {
		return core.NewFilter(scheduleFor(v, decay))
	})
}

// SweepGaiaMNIST sweeps Gaia significance thresholds on the digit workload.
func SweepGaiaMNIST(mn MNISTSetup, thresholds []float64) (*SweepResult, error) {
	r, err := mnistRunner(mn)
	if err != nil {
		return nil, err
	}
	return sweep(r, "gaia on MNIST CNN", thresholds, func(v float64) fl.UploadFilter {
		return gaia.NewFilter(core.Constant(v))
	})
}

// SweepCMFLNWP sweeps CMFL relevance thresholds on the next-word workload.
func SweepCMFLNWP(nw NWPSetup, thresholds []float64, decay bool) (*SweepResult, error) {
	r, err := nwpRunner(nw)
	if err != nil {
		return nil, err
	}
	return sweep(r, "cmfl on NWP LSTM", thresholds, func(v float64) fl.UploadFilter {
		return core.NewFilter(scheduleFor(v, decay))
	})
}

// SweepGaiaNWP sweeps Gaia significance thresholds on the next-word
// workload.
func SweepGaiaNWP(nw NWPSetup, thresholds []float64) (*SweepResult, error) {
	r, err := nwpRunner(nw)
	if err != nil {
		return nil, err
	}
	return sweep(r, "gaia on NWP LSTM", thresholds, func(v float64) fl.UploadFilter {
		return gaia.NewFilter(core.Constant(v))
	})
}

func scheduleFor(v float64, decay bool) core.Schedule {
	if decay {
		return core.InvSqrt{V0: v}
	}
	return core.Constant(v)
}

func mnistRunner(mn MNISTSetup) (*sweepRunner, error) {
	fed, err := mn.Build()
	if err != nil {
		return nil, err
	}
	run := func(filter fl.UploadFilter) (*stats.AccuracyTrace, float64, error) {
		res, err := fl.Run(mn.FLConfig(fed, filter))
		if err != nil {
			return nil, 0, err
		}
		last := res.History[len(res.History)-1]
		frac := float64(last.CumUploads) / float64(len(fed.Shards)*len(res.History))
		return TraceOf(res.History), frac, nil
	}
	vanilla, _, err := run(nil)
	if err != nil {
		return nil, err
	}
	return &sweepRunner{run: run, targets: mn.AccuracyTargets, vanilla: vanilla}, nil
}

func nwpRunner(nw NWPSetup) (*sweepRunner, error) {
	fed, err := nw.Build()
	if err != nil {
		return nil, err
	}
	run := func(filter fl.UploadFilter) (*stats.AccuracyTrace, float64, error) {
		res, err := fl.Run(nw.FLConfig(fed, filter))
		if err != nil {
			return nil, 0, err
		}
		last := res.History[len(res.History)-1]
		frac := float64(last.CumUploads) / float64(len(fed.Shards)*len(res.History))
		return TraceOf(res.History), frac, nil
	}
	vanilla, _, err := run(nil)
	if err != nil {
		return nil, err
	}
	return &sweepRunner{run: run, targets: nw.AccuracyTargets, vanilla: vanilla}, nil
}

func sweep(r *sweepRunner, name string, thresholds []float64, mk func(v float64) fl.UploadFilter) (*SweepResult, error) {
	out := &SweepResult{Algorithm: name, Targets: r.targets}
	for _, v := range thresholds {
		trace, frac, err := r.run(mk(v))
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep %s at %v: %w", name, v, err)
		}
		p := SweepPoint{Threshold: v, UploadFraction: frac, BestAccuracy: trace.BestAccuracy()}
		for _, target := range r.targets {
			s, ok := stats.Saving(r.vanilla, trace, target)
			if !ok {
				s = math.NaN()
			}
			p.Savings = append(p.Savings, s)
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}
