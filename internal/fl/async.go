package fl

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
	"cmfl/internal/xrand"
)

// AsyncConfig describes an asynchronous federated run: clients train at
// their own (simulated) speeds and the server applies each update the
// moment it arrives, scaled down by its staleness — a FedAsync-style
// extension of the paper's synchronous Algorithm 1.
//
// CMFL ports directly: a client checks its update's relevance against an
// exponential moving average of recently applied global updates (the async
// analogue of "the previous global update") and withholds irrelevant ones.
type AsyncConfig struct {
	Model      func() *nn.Network
	ClientData []*dataset.Set
	TestData   *dataset.Set

	Epochs int
	Batch  int
	LR     core.Schedule
	Filter UploadFilter

	// MixAlpha is the base server mixing rate: an update with staleness s
	// is applied as x ← x + MixAlpha/√(1+s) · u. Default 0.6.
	MixAlpha float64
	// FeedbackDecay is the EMA coefficient for the feedback update
	// (default 0.5): f ← FeedbackDecay·f + (1−FeedbackDecay)·applied.
	FeedbackDecay float64

	// MeanDuration is the average simulated local-training duration; each
	// client draws a personal speed factor in [0.5, StragglerFactor] so
	// slow clients produce stale updates. Default straggler factor 4.
	MeanDuration    float64
	StragglerFactor float64

	// Updates is the total number of client completions to simulate (the
	// async analogue of Rounds × D).
	Updates int
	// EvalEvery evaluates accuracy every k applied-or-skipped updates
	// (default: number of clients).
	EvalEvery int
	// EvalBatch bounds evaluation batches (default 64).
	EvalBatch int

	TargetAccuracy float64
	Seed           int64

	// Observers receive live telemetry. The asynchronous engine treats
	// each client completion as a one-participant round: it emits one
	// telemetry.ClientEvent followed by one telemetry.RoundEvent per
	// completion, with Round set to the 1-based completion index.
	Observers []telemetry.Observer
}

// AsyncEvent records one client completion in the simulated timeline.
type AsyncEvent struct {
	// Time is the virtual completion time.
	Time float64
	// Client is the finishing client.
	Client int
	// Staleness counts how many global model versions were applied between
	// this client's pull and its completion.
	Staleness int
	// Uploaded reports whether the update passed the filter.
	Uploaded bool
	// Relevance is the CMFL metric at the check (NaN before feedback).
	Relevance float64
	// Accuracy is the global accuracy if evaluated at this event (else NaN).
	Accuracy float64
	// CumUploads / CumUplinkBytes mirror the synchronous accounting.
	CumUploads     int
	CumUplinkBytes int64
}

// AsyncResult is the outcome of RunAsync.
type AsyncResult struct {
	Events      []AsyncEvent
	FinalParams []float64
	SkipCounts  []int
	// MeanStaleness is the average staleness of applied updates.
	MeanStaleness float64
}

// FinalAccuracy returns the last evaluated accuracy, or NaN.
func (r *AsyncResult) FinalAccuracy() float64 {
	for i := len(r.Events) - 1; i >= 0; i-- {
		if !math.IsNaN(r.Events[i].Accuracy) {
			return r.Events[i].Accuracy
		}
	}
	return math.NaN()
}

// completion is a pending client-finish event in the simulation queue.
type completion struct {
	at      float64
	client  int
	version int // global version the client pulled
	seq     int // tie-breaker for determinism
}

type completionQueue []completion

func (q completionQueue) Len() int { return len(q) }
func (q completionQueue) Less(i, j int) bool {
	//cmfl:lint-ignore floateq bit-exact compare keeps the completion heap strictly ordered and deterministic
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q completionQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *completionQueue) Push(x interface{}) { *q = append(*q, x.(completion)) }
func (q *completionQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// RunAsync executes the asynchronous simulation.
//
//cmfl:deterministic
func RunAsync(cfg AsyncConfig) (*AsyncResult, error) {
	if err := validateAsync(&cfg); err != nil {
		return nil, err
	}
	filter := cfg.Filter
	if filter == nil {
		filter = Vanilla{}
	}

	global := cfg.Model()
	params := global.ParamVector()
	dim := len(params)
	version := 0

	d := len(cfg.ClientData)
	nets := make([]*nn.Network, d)
	rngs := make([]*xrand.Stream, d)
	speeds := make([]float64, d)
	pulled := make([][]float64, d) // model snapshot each client trains from
	pulledVersion := make([]int, d)
	durRng := xrand.Derive(cfg.Seed, "fl-async-durations", 0)
	for k := 0; k < d; k++ {
		nets[k] = cfg.Model()
		rngs[k] = ClientStream(cfg.Seed, k)
		speeds[k] = 0.5 + (cfg.StragglerFactor-0.5)*durRng.Float64()
		pulled[k] = append([]float64(nil), params...)
	}

	q := &completionQueue{}
	heap.Init(q)
	seq := 0
	schedule := func(k int, now float64) {
		// Exponential-ish duration: speed factor × mean × U[0.5, 1.5).
		dur := speeds[k] * cfg.MeanDuration * (0.5 + durRng.Float64())
		seq++
		heap.Push(q, completion{at: now + dur, client: k, version: pulledVersion[k], seq: seq})
	}
	for k := 0; k < d; k++ {
		schedule(k, 0)
	}

	feedback := make([]float64, dim)
	res := &AsyncResult{SkipCounts: make([]int, d)}
	cumUploads := 0
	var cumBytes int64
	var staleSum float64
	events := 0

	for events < cfg.Updates && q.Len() > 0 {
		c := heap.Pop(q).(completion)
		events++
		k := c.client
		// The engine charges one "round" of local training computed from
		// the model snapshot the client pulled.
		delta, _, err := LocalTrain(nets[k], cfg.ClientData[k], pulled[k], cfg.LR.At(events), cfg.Epochs, cfg.Batch, rngs[k])
		if err != nil {
			return nil, fmt.Errorf("fl: async client %d: %w", k, err)
		}
		staleness := version - c.version
		dec, err := filter.Check(delta, pulled[k], feedback, events)
		if err != nil {
			return nil, fmt.Errorf("fl: async client %d filter: %w", k, err)
		}
		rel := math.NaN()
		if !core.AllZero(feedback) {
			if r, err := core.Relevance(delta, feedback); err == nil {
				rel = r
			}
		}

		ev := AsyncEvent{
			Time:      c.at,
			Client:    k,
			Staleness: staleness,
			Uploaded:  dec.Upload,
			Relevance: rel,
			Accuracy:  math.NaN(),
		}
		if dec.Upload {
			scale := cfg.MixAlpha / math.Sqrt(1+float64(staleness))
			applied := make([]float64, dim)
			for j, v := range delta {
				applied[j] = scale * v
				params[j] += applied[j]
			}
			version++
			//cmfl:order-pinned completion events pop in deterministic virtual-time order; the event schedule is the algorithm
			staleSum += float64(staleness)
			cumUploads++
			cumBytes += int64(dim) * 8
			for j := range feedback {
				feedback[j] = cfg.FeedbackDecay*feedback[j] + (1-cfg.FeedbackDecay)*applied[j]
			}
		} else {
			res.SkipCounts[k]++
			cumBytes += SkipNotificationBytes
		}
		ev.CumUploads = cumUploads
		ev.CumUplinkBytes = cumBytes

		// The client pulls the latest model and goes again.
		copy(pulled[k], params)
		pulledVersion[k] = version
		schedule(k, c.at)

		if events%cfg.EvalEvery == 0 || events == cfg.Updates {
			if err := global.SetParamVector(params); err != nil {
				return nil, err
			}
			ev.Accuracy = evaluate(global, cfg.TestData, cfg.EvalBatch)
		}
		res.Events = append(res.Events, ev)
		if len(cfg.Observers) > 0 {
			uplink := int64(dim) * 8
			uploadedN := 1
			if !dec.Upload {
				uplink = SkipNotificationBytes
				uploadedN = 0
			}
			telemetry.EmitClient(cfg.Observers, telemetry.ClientEvent{
				Engine:      telemetry.EngineAsync,
				Round:       events,
				Client:      k,
				Uploaded:    dec.Upload,
				Relevance:   rel,
				UplinkBytes: uplink,
			})
			telemetry.EmitRound(cfg.Observers, telemetry.RoundEvent{
				Engine:         telemetry.EngineAsync,
				Round:          events,
				Participants:   1,
				Uploaded:       uploadedN,
				Skipped:        1 - uploadedN,
				CumUploads:     cumUploads,
				CumUplinkBytes: cumBytes,
				Accuracy:       ev.Accuracy,
			})
		}
		if cfg.TargetAccuracy > 0 && !math.IsNaN(ev.Accuracy) && ev.Accuracy >= cfg.TargetAccuracy {
			break
		}
	}
	res.FinalParams = params
	if cumUploads > 0 {
		res.MeanStaleness = staleSum / float64(cumUploads)
	}
	return res, nil
}

func validateAsync(cfg *AsyncConfig) error {
	switch {
	case cfg.Model == nil:
		return errors.New("fl: async Model is required")
	case len(cfg.ClientData) == 0:
		return errors.New("fl: async needs at least one client")
	case cfg.Epochs <= 0:
		return errors.New("fl: async Epochs must be positive")
	case cfg.Batch <= 0:
		return errors.New("fl: async Batch must be positive")
	case cfg.LR == nil:
		return errors.New("fl: async LR schedule is required")
	case cfg.Updates <= 0:
		return errors.New("fl: async Updates must be positive")
	}
	for i, s := range cfg.ClientData {
		if s == nil || s.Len() == 0 {
			return fmt.Errorf("fl: async client %d has no data", i)
		}
	}
	if cfg.MixAlpha <= 0 {
		cfg.MixAlpha = 0.6
	}
	if cfg.FeedbackDecay <= 0 || cfg.FeedbackDecay >= 1 {
		cfg.FeedbackDecay = 0.5
	}
	if cfg.MeanDuration <= 0 {
		cfg.MeanDuration = 1
	}
	if cfg.StragglerFactor < 1 {
		cfg.StragglerFactor = 4
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = len(cfg.ClientData)
	}
	if cfg.EvalBatch <= 0 {
		cfg.EvalBatch = 64
	}
	return nil
}
