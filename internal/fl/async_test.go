package fl

import (
	"math"
	"testing"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/nn"
	"cmfl/internal/xrand"
)

func asyncConfig(t *testing.T, clients int) AsyncConfig {
	t.Helper()
	all, err := dataset.Digits(dataset.DigitsConfig{
		Samples: clients * 30, ImageSize: 10, Noise: 0.2, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := dataset.SortedShards(all, clients, 2, xrand.New(72))
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.Digits(dataset.DigitsConfig{Samples: 150, ImageSize: 10, Noise: 0.2, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	return AsyncConfig{
		Model: func() *nn.Network {
			return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(100, 10, xrand.Derive(74, "init", 0)))
		},
		ClientData: shards,
		TestData:   test,
		Epochs:     2,
		Batch:      4,
		LR:         core.Constant(0.1),
		Updates:    clients * 20,
		Seed:       75,
	}
}

func TestAsyncVanillaLearns(t *testing.T) {
	res, err := RunAsync(asyncConfig(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalAccuracy(); acc < 0.6 {
		t.Fatalf("async accuracy = %v, want >= 0.6", acc)
	}
	if len(res.Events) != 120 {
		t.Fatalf("events = %d, want 120", len(res.Events))
	}
	last := res.Events[len(res.Events)-1]
	if last.CumUploads != 120 {
		t.Fatalf("vanilla async should upload every completion: %d", last.CumUploads)
	}
}

func TestAsyncStalenessObserved(t *testing.T) {
	cfg := asyncConfig(t, 8)
	cfg.StragglerFactor = 6
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanStaleness <= 0 {
		t.Fatalf("mean staleness = %v; stragglers should produce stale updates", res.MeanStaleness)
	}
	maxStale := 0
	for _, ev := range res.Events {
		if ev.Staleness > maxStale {
			maxStale = ev.Staleness
		}
	}
	if maxStale < 3 {
		t.Fatalf("max staleness = %d; straggler factor 6 should create >3", maxStale)
	}
}

func TestAsyncCMFLFiltersAndLearns(t *testing.T) {
	cfg := asyncConfig(t, 8)
	cfg.Filter = core.NewFilter(core.Constant(0.5))
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Events[len(res.Events)-1]
	if last.CumUploads >= len(res.Events) {
		t.Fatal("async CMFL never filtered")
	}
	skips := 0
	for _, s := range res.SkipCounts {
		skips += s
	}
	if skips+last.CumUploads != len(res.Events) {
		t.Fatalf("skips %d + uploads %d != events %d", skips, last.CumUploads, len(res.Events))
	}
	if acc := res.FinalAccuracy(); acc < 0.5 {
		t.Fatalf("async CMFL accuracy = %v, want >= 0.5", acc)
	}
}

func TestAsyncDeterministic(t *testing.T) {
	r1, err := RunAsync(asyncConfig(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunAsync(asyncConfig(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	for j := range r1.FinalParams {
		if r1.FinalParams[j] != r2.FinalParams[j] {
			t.Fatal("async runs with equal seeds diverged")
		}
	}
}

func TestAsyncEarlyStop(t *testing.T) {
	cfg := asyncConfig(t, 5)
	cfg.Updates = 500
	cfg.TargetAccuracy = 0.4
	cfg.EvalEvery = 5
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 500 {
		t.Fatal("async run did not stop early")
	}
	if res.FinalAccuracy() < 0.4 {
		t.Fatalf("stopped below target: %v", res.FinalAccuracy())
	}
}

func TestAsyncStalenessDamping(t *testing.T) {
	// An update with staleness s must be applied with weight α/√(1+s):
	// verify indirectly — fast clients (low staleness) move the model more.
	cfg := asyncConfig(t, 4)
	cfg.Updates = 40
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Events {
		if ev.Staleness < 0 {
			t.Fatal("negative staleness")
		}
	}
	if math.IsNaN(res.FinalAccuracy()) {
		t.Fatal("no evaluation recorded")
	}
}

func TestAsyncValidation(t *testing.T) {
	base := asyncConfig(t, 3)
	cases := []struct {
		name   string
		mutate func(*AsyncConfig)
	}{
		{"nil model", func(c *AsyncConfig) { c.Model = nil }},
		{"no clients", func(c *AsyncConfig) { c.ClientData = nil }},
		{"zero epochs", func(c *AsyncConfig) { c.Epochs = 0 }},
		{"zero batch", func(c *AsyncConfig) { c.Batch = 0 }},
		{"nil lr", func(c *AsyncConfig) { c.LR = nil }},
		{"zero updates", func(c *AsyncConfig) { c.Updates = 0 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := RunAsync(cfg); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}
