package fl

import (
	"math"
	"testing"

	"cmfl/internal/dataset"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// randomSet builds a dataset with normally distributed features — benchmark
// fodder matching a workload's tensor shapes without generator cost.
func randomSet(n int, sampleShape []int, classes int, rng *xrand.Stream) *dataset.Set {
	total := n
	for _, d := range sampleShape {
		total *= d
	}
	x := tensor.FromSlice(rng.NormVec(total, 0, 1), append([]int{n}, sampleShape...)...)
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	return &dataset.Set{X: x, Y: y}
}

// BenchmarkLocalTrainRound measures one client's full local round (E epochs
// of minibatch SGD) on the two reproduction workloads at paper-like shapes:
// the 28×28/5×5 MNIST CNN and the 2-layer next-word LSTM. This is the
// quantity that bounds every experiment's wall-clock.
func BenchmarkLocalTrainRound(b *testing.B) {
	b.Run("mnist-cnn", func(b *testing.B) {
		cfg := nn.CNNConfig{ImageSize: 28, Kernel: 5, Conv1: 16, Conv2: 32, Hidden: 128, Classes: 10}
		net := nn.NewCNN(cfg, xrand.New(1))
		shard := randomSet(20, []int{1, 28, 28}, 10, xrand.New(2))
		params := net.ParamVector()
		rng := xrand.New(3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := LocalTrain(net, shard, params, 0.05, 1, 2, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nextword-lstm", func(b *testing.B) {
		cfg := nn.LSTMConfig{Vocab: 500, Embed: 32, Hidden: 64, Layers: 2}
		net := nn.NewNextWordLSTM(cfg, xrand.New(4))
		rng := xrand.New(5)
		n, window := 20, 10
		ids := make([]float64, n*window)
		for i := range ids {
			ids[i] = float64(rng.Intn(cfg.Vocab))
		}
		shard := &dataset.Set{X: tensor.FromSlice(ids, n, window), Y: make([]int, n)}
		for i := range shard.Y {
			shard.Y[i] = rng.Intn(cfg.Vocab)
		}
		params := net.ParamVector()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := LocalTrain(net, shard, params, 0.05, 1, 5, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInstrumentedLocalRound is BenchmarkLocalTrainRound/mnist-cnn plus
// the full telemetry path: one ClientEvent and one RoundEvent per round
// through a registry-backed Collector. Guards the observability layer's
// zero-allocation budget — the gate is identical ns/op and allocs/op to the
// uninstrumented round.
func BenchmarkInstrumentedLocalRound(b *testing.B) {
	b.Run("mnist-cnn", func(b *testing.B) {
		cfg := nn.CNNConfig{ImageSize: 28, Kernel: 5, Conv1: 16, Conv2: 32, Hidden: 128, Classes: 10}
		net := nn.NewCNN(cfg, xrand.New(1))
		shard := randomSet(20, []int{1, 28, 28}, 10, xrand.New(2))
		params := net.ParamVector()
		rng := xrand.New(3)
		col := telemetry.NewCollector(telemetry.NewRegistry())
		obs := []telemetry.Observer{col}
		dim := int64(len(params))
		// Warm the per-engine handle cache so the loop is steady state.
		col.OnRound(telemetry.RoundEvent{Engine: telemetry.EngineSync, Accuracy: math.NaN()})
		var cumBytes int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := LocalTrain(net, shard, params, 0.05, 1, 2, rng); err != nil {
				b.Fatal(err)
			}
			cumBytes += dim * 8
			telemetry.EmitClient(obs, telemetry.ClientEvent{
				Engine: telemetry.EngineSync, Round: i + 1, Client: 0,
				Uploaded: true, Relevance: 0.5, UplinkBytes: dim * 8,
			})
			telemetry.EmitRound(obs, telemetry.RoundEvent{
				Engine: telemetry.EngineSync, Round: i + 1, Participants: 1,
				Uploaded: 1, CumUploads: i + 1, CumUplinkBytes: cumBytes,
				Accuracy: math.NaN(),
			})
		}
	})
}
