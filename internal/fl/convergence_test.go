package fl

import (
	"math"
	"testing"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/nn"
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// TestTheorem1ConvergenceOnConvexProblem checks the paper's convergence
// guarantee empirically: on a convex problem (softmax regression — the
// assumption of Theorem 1) with the prescribed decaying schedules
// η_t = η0/√t and v_t = v0/√t, CMFL's time-averaged excess loss must shrink
// as training proceeds (lim 1/T·R[x̃] → 0 means late-phase mean loss
// approaches the floor).
func TestTheorem1ConvergenceOnConvexProblem(t *testing.T) {
	const (
		clients = 10
		dim     = 20
		rounds  = 60
	)
	// Linearly separable Gaussian blobs: the convex loss can approach 0.
	gRng := xrand.New(61)
	centers := make([][]float64, 4)
	for c := range centers {
		centers[c] = gRng.NormVec(dim, 0, 3)
	}
	makeSet := func(n int, rng *xrand.Stream) *dataset.Set {
		s := &dataset.Set{X: tensor.New(n, dim), Y: make([]int, n)}
		for i := 0; i < n; i++ {
			c := rng.Intn(4)
			s.Y[i] = c
			row := s.X.Data[i*dim : (i+1)*dim]
			for j := 0; j < dim; j++ {
				row[j] = centers[c][j] + 0.4*rng.Norm()
			}
		}
		return s
	}
	shards := make([]*dataset.Set, clients)
	for k := range shards {
		shards[k] = makeSet(24, xrand.Derive(62, "shard", k))
	}
	res, err := Run(Config{
		Model:      func() *nn.Network { return nn.NewLogistic(dim, 4, xrand.Derive(63, "init", 0)) },
		ClientData: shards,
		TestData:   makeSet(100, xrand.New(64)),
		Epochs:     2,
		Batch:      4,
		LR:         core.InvSqrt{V0: 0.2},
		Filter:     core.NewFilter(core.InvSqrt{V0: 0.8}),
		Rounds:     rounds,
		Seed:       65,
	})
	if err != nil {
		t.Fatal(err)
	}
	third := rounds / 3
	meanLoss := func(h []RoundStats) float64 {
		var s float64
		for _, r := range h {
			s += r.TrainLoss
		}
		return s / float64(len(h))
	}
	early := meanLoss(res.History[:third])
	late := meanLoss(res.History[rounds-third:])
	if late >= early/2 {
		t.Fatalf("time-averaged loss not converging: early %.4f, late %.4f", early, late)
	}
	if acc := res.FinalAccuracy(); acc < 0.95 {
		t.Fatalf("convex CMFL accuracy = %v, want >= 0.95", acc)
	}
	// And the regret trend must be monotone-ish: the last-quarter mean must
	// also beat the second quarter, not just the first.
	q2 := meanLoss(res.History[third : 2*third])
	if late >= q2 {
		t.Fatalf("loss rebounded late: quarter-2 %.4f, late %.4f", q2, late)
	}
}

// TestAggregationIsAverageOfUploads cross-checks Algorithm 1 line 8 against
// a hand-computed average for a tiny deterministic round.
func TestAggregationIsAverageOfUploads(t *testing.T) {
	cfg := digitLogisticConfig(t, 3, false)
	cfg.Rounds = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Re-run the three clients' local training by hand from the same
	// initial model and average their deltas.
	model := cfg.Model()
	start := model.ParamVector()
	want := make([]float64, len(start))
	for k := 0; k < 3; k++ {
		net := cfg.Model()
		delta, _, err := LocalTrain(net, cfg.ClientData[k], start, cfg.LR.At(1), cfg.Epochs, cfg.Batch, ClientStream(cfg.Seed, k))
		if err != nil {
			t.Fatal(err)
		}
		tensor.Axpy(1.0/3, delta, want)
	}
	for j := range want {
		got := res.FinalParams[j] - start[j]
		if math.Abs(got-want[j]) > 1e-12 {
			t.Fatalf("aggregated update[%d] = %v, want %v", j, got, want[j])
		}
	}
}

// TestSeedChangesResults guards against accidentally shared randomness.
func TestSeedChangesResults(t *testing.T) {
	cfg1 := digitLogisticConfig(t, 4, true)
	cfg1.Rounds = 3
	r1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := digitLogisticConfig(t, 4, true)
	cfg2.Rounds = 3
	cfg2.Seed = cfg1.Seed + 1
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range r1.FinalParams {
		if r1.FinalParams[j] != r2.FinalParams[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical models")
	}
}

// dropoutAccuracyBand is the recorded tolerance for convergence under
// client dropout: over 25 rounds of layerwise-CMFL training on the digits
// workload, 20% per-round dropout may cost at most this much final
// accuracy versus full participation. Calibrated empirically (full = 0.78,
// dropout = 0.765 on the pinned seeds); the band leaves room for the
// averaging noise a thinner quorum adds without letting convergence
// regressions hide behind it.
const dropoutAccuracyBand = 0.08

// TestPartialDropoutConvergenceBand is the golden test for quorum-style
// aggregation in the simulation engine: dropping 20% of clients per round
// must not break convergence — per-segment averaging over whoever showed up
// keeps the update unbiased, so accuracy stays within dropoutAccuracyBand
// of the full-participation run.
func TestPartialDropoutConvergenceBand(t *testing.T) {
	run := func(rate float64) float64 {
		cfg := PartialConfig{
			Config:      digitLogisticConfig(t, 8, true),
			Threshold:   core.Constant(0.5),
			DropoutRate: rate,
		}
		cfg.Rounds = 25
		res, err := RunPartial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalAccuracy()
	}
	full := run(0)
	dropped := run(0.2)
	t.Logf("accuracy: full=%v dropout(0.2)=%v band=%v", full, dropped, dropoutAccuracyBand)
	if math.IsNaN(full) || math.IsNaN(dropped) {
		t.Fatal("accuracy missing")
	}
	if dropped < full-dropoutAccuracyBand {
		t.Fatalf("dropout accuracy %v fell more than %v below full participation %v",
			dropped, dropoutAccuracyBand, full)
	}
}
