package fl

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/gaia"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

func nan() float64         { return math.NaN() }
func isNaN(v float64) bool { return math.IsNaN(v) }

// client is one simulated edge device: a model replica, a private shard and
// a private random stream for batch shuffling.
type client struct {
	id   int
	net  *nn.Network
	data *dataset.Set
	rng  *xrand.Stream
}

// localResult is what a client reports back to the engine each round.
type localResult struct {
	delta        []float64
	loss         float64
	upload       bool
	relevance    float64
	significance float64
	err          error
}

// Run executes a synchronous federated training following Algorithm 1.
//
//cmfl:deterministic
func Run(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	filter := cfg.Filter
	if filter == nil {
		filter = Vanilla{}
	}

	global := cfg.Model()
	params := global.ParamVector()
	dim := len(params)

	clients := make([]*client, len(cfg.ClientData))
	for i, data := range cfg.ClientData {
		clients[i] = &client{
			id:   i,
			net:  cfg.Model(),
			data: data,
			rng:  ClientStream(cfg.Seed, i),
		}
	}

	res := &Result{
		SkipCounts:   make([]int, len(clients)),
		ClientParams: make([][]float64, len(clients)),
		FilterName:   filter.Name(),
	}

	// feedback is the latest non-empty global update; feedbackHist keeps a
	// short window for the staleness ablation.
	feedback := make([]float64, dim) // all zeros: "no feedback yet"
	feedbackHist := make([][]float64, 0, cfg.FeedbackStaleness+1)
	var prevGlobalUpdate []float64 // for the Eq. 8 trace

	cumUploads := 0
	var cumBytes int64
	var serverVelocity []float64

	results := make([]localResult, len(clients))
	clientBytes := make([]int64, len(clients)) // per-round uplink cost per client

	// Codec scratch, reused every round: the aggregation loop is sequential
	// and Axpy consumes each decoded update before the next overwrite, so
	// one encode buffer and one decode buffer suffice for all clients.
	var encScratch []byte
	var decScratch []float64
	var residuals [][]float64 // per-client EF-SGD residual, lazily sized
	if cfg.Compressor != nil && cfg.ErrorFeedback {
		residuals = make([][]float64, len(clients))
	}
	sem := make(chan struct{}, cfg.Parallelism)
	sampler := xrand.Derive(cfg.Seed, "fl-sampler", 0)
	var signBuf []int8 // reused feedback sign vector, rebuilt each round

	for t := 1; t <= cfg.Rounds; t++ {
		lr := cfg.LR.At(t)
		staleFeedback := feedback
		if cfg.FeedbackStaleness > 1 && len(feedbackHist) >= cfg.FeedbackStaleness {
			staleFeedback = feedbackHist[len(feedbackHist)-cfg.FeedbackStaleness]
		}
		// Precompute the feedback's sign vector once per round; every client
		// reads it concurrently (read-only) for the Eq. 9 check and trace.
		// nil signs signal "no feedback yet".
		var feedbackSigns []int8
		if !core.AllZero(staleFeedback) {
			signBuf = core.SignsInto(signBuf[:0], staleFeedback)
			feedbackSigns = signBuf
		}

		participants := sampleClients(clients, cfg.ClientFraction, sampler)
		var wg sync.WaitGroup
		for _, i := range participants {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i] = clients[i].trainRound(params, staleFeedback, feedbackSigns, lr, cfg.Epochs, cfg.Batch, filter, t, cfg.DPClip, cfg.DPNoiseSigma, cfg.ProxMu)
			}(i)
		}
		wg.Wait()
		for _, i := range participants {
			if results[i].err != nil {
				return nil, fmt.Errorf("fl: round %d client %d: %w", t, i, results[i].err)
			}
		}

		// Aggregate uploaded updates by averaging (Algorithm 1 line 8),
		// optionally weighted by sample counts (FedAvg's n_k/n).
		globalUpdate := make([]float64, dim)
		uploaded := 0
		var lossSum, relSum, sigSum, weightSum float64
		var uploadBytes int64
		relCount := 0
		//cmfl:order-pinned the ascending-client FedAvg fold IS the parity reference every other engine reproduces bit-for-bit
		for _, i := range participants {
			r := &results[i]
			lossSum += r.loss
			sigSum += r.significance
			if !isNaN(r.relevance) {
				relSum += r.relevance
				relCount++
			}
			if !r.upload {
				res.SkipCounts[i]++
				clientBytes[i] = SkipNotificationBytes
				continue
			}
			delta := r.delta
			if cfg.Compressor != nil {
				if residuals != nil {
					// Error feedback: fold the residual of previous rounds'
					// compression into the update before encoding. Applied
					// post-gate, so the upload decision saw the raw delta.
					if residuals[i] == nil {
						residuals[i] = make([]float64, dim)
					}
					tensor.Axpy(1, residuals[i], delta)
				}
				payload, err := cfg.Compressor.EncodeInto(encScratch, delta)
				if err != nil {
					return nil, fmt.Errorf("fl: round %d client %d encode: %w", t, i, err)
				}
				encScratch = payload
				decoded, err := cfg.Compressor.DecodeInto(decScratch, payload, dim)
				if err != nil {
					return nil, fmt.Errorf("fl: round %d client %d decode: %w", t, i, err)
				}
				decScratch = decoded
				if residuals != nil {
					for j := range residuals[i] {
						residuals[i][j] = delta[j] - decoded[j]
					}
				}
				delta = decoded
				clientBytes[i] = int64(len(payload))
			} else {
				clientBytes[i] = int64(dim) * 8
			}
			uploadBytes += clientBytes[i]
			weight := 1.0
			if cfg.WeightedAggregation {
				weight = float64(clients[i].data.Len())
			}
			tensor.Axpy(weight, delta, globalUpdate)
			weightSum += weight
			uploaded++
		}
		if uploaded > 0 {
			tensor.ScaleVec(1/weightSum, globalUpdate)
			if cfg.ServerMomentum > 0 {
				if serverVelocity == nil {
					serverVelocity = make([]float64, dim)
				}
				for j := range serverVelocity {
					serverVelocity[j] = cfg.ServerMomentum*serverVelocity[j] + globalUpdate[j]
				}
				// The applied update (and the feedback clients see) is the
				// momentum-smoothed velocity.
				copy(globalUpdate, serverVelocity)
			}
			//cmfl:order-pinned rounds apply to the model strictly sequentially; t-order is the algorithm
			tensor.Axpy(1, globalUpdate, params)
		}

		cumUploads += uploaded
		cumBytes += uploadBytes + int64(len(participants)-uploaded)*SkipNotificationBytes

		if obs, ok := filter.(FilterFeedback); ok {
			obs.ObserveRound(t, uploaded, len(participants))
		}

		stats := RoundStats{
			RoundEvent: telemetry.RoundEvent{
				Engine:         telemetry.EngineSync,
				Round:          t,
				Participants:   len(participants),
				Uploaded:       uploaded,
				Skipped:        len(participants) - uploaded,
				CumUploads:     cumUploads,
				CumUplinkBytes: cumBytes,
				Accuracy:       nan(),
			},
			TrainLoss:        lossSum / float64(len(participants)),
			MeanSignificance: sigSum / float64(len(participants)),
			MeanRelevance:    nan(),
			DeltaUpdate:      nan(),
		}
		if relCount > 0 {
			stats.MeanRelevance = relSum / float64(relCount)
		}
		if uploaded > 0 {
			if prevGlobalUpdate != nil {
				if du, err := core.DeltaUpdate(prevGlobalUpdate, globalUpdate); err == nil {
					stats.DeltaUpdate = du
				}
			}
			prevGlobalUpdate = append(prevGlobalUpdate[:0], globalUpdate...)
			// Update feedback only with non-empty aggregates so a fully
			// skipped round does not zero out the global-direction estimate.
			feedback = globalUpdate
			feedbackHist = append(feedbackHist, globalUpdate)
			if len(feedbackHist) > cfg.FeedbackStaleness+1 {
				feedbackHist = feedbackHist[1:]
			}
		}

		if cfg.EvalEvery > 0 && (t%cfg.EvalEvery == 0 || t == cfg.Rounds) {
			if err := global.SetParamVector(params); err != nil {
				return nil, fmt.Errorf("fl: broadcast to evaluator: %w", err)
			}
			stats.Accuracy = evaluate(global, cfg.TestData, cfg.EvalBatch)
		}
		res.History = append(res.History, stats)
		if len(cfg.Observers) > 0 {
			for _, i := range participants {
				telemetry.EmitClient(cfg.Observers, telemetry.ClientEvent{
					Engine:      telemetry.EngineSync,
					Round:       t,
					Client:      i,
					Uploaded:    results[i].upload,
					Relevance:   results[i].relevance,
					UplinkBytes: clientBytes[i],
				})
			}
			telemetry.EmitRound(cfg.Observers, stats.RoundEvent)
		}

		if cfg.TargetAccuracy > 0 && !isNaN(stats.Accuracy) && stats.Accuracy >= cfg.TargetAccuracy {
			break
		}
	}

	res.FinalParams = append([]float64(nil), params...)
	for i, c := range clients {
		res.ClientParams[i] = c.net.ParamVector()
	}
	return res, nil
}

// LocalTrain runs E epochs of minibatch SGD on data starting from the
// broadcast global parameter vector and returns the resulting update delta
// and mean batch loss. It is the single local-optimisation code path shared
// by the in-process simulation and the TCP emulation.
func LocalTrain(net *nn.Network, data *dataset.Set, global []float64, lr float64, epochs, batch int, rng *xrand.Stream) (delta []float64, loss float64, err error) {
	return LocalTrainProx(net, data, global, lr, epochs, batch, 0, rng)
}

// LocalTrainProx is LocalTrain with FedProx's proximal term: every SGD step
// additionally applies the gradient of μ/2·‖w − w_global‖², pulling the
// local solution toward the broadcast model. mu = 0 recovers LocalTrain.
func LocalTrainProx(net *nn.Network, data *dataset.Set, global []float64, lr float64, epochs, batch int, mu float64, rng *xrand.Stream) (delta []float64, loss float64, err error) {
	if err := net.SetParamVector(global); err != nil {
		return nil, 0, err
	}
	var lossSum float64
	batches := 0
	n := data.Len()
	var mb dataset.Minibatch // reused across minibatches: zero steady-state allocs
	for e := 0; e < epochs; e++ {
		order := rng.Perm(n)
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			data.GatherInto(&mb, order[lo:hi])
			//cmfl:order-pinned SGD minibatches fold in schedule order; the seeded permutation is the algorithm
			lossSum += nn.TrainBatch(net, mb.X, mb.Y, lr)
			if mu > 0 {
				// Proximal pull toward the broadcast model, applied in place.
				if err := net.DecayToward(global, lr*mu); err != nil {
					return nil, 0, err
				}
			}
			batches++
		}
	}
	local := net.ParamVector()
	return tensor.Sub(local, global), lossSum / math.Max(1, float64(batches)), nil
}

// privatize applies client-level differential privacy to an update in
// place: clip the L2 norm to clip (if positive), then add per-coordinate
// Gaussian noise with stddev sigma (if positive).
//
//cmfl:hotpath
func privatize(delta []float64, clip, sigma float64, rng *xrand.Stream) {
	if clip > 0 {
		if norm := tensor.Norm2(delta); norm > clip {
			tensor.ScaleVec(clip/norm, delta)
		}
	}
	if sigma > 0 {
		for j := range delta {
			delta[j] += sigma * rng.Norm()
		}
	}
}

// trainRound runs the client's local optimisation from the broadcast global
// parameters and produces its (possibly withheld) update. feedbackSigns is
// the engine's per-round precomputed sign vector of feedback (nil when there
// is no feedback yet).
func (c *client) trainRound(global, feedback []float64, feedbackSigns []int8, lr float64, epochs, batch int, filter UploadFilter, t int, dpClip, dpSigma, proxMu float64) localResult {
	delta, loss, err := LocalTrainProx(c.net, c.data, global, lr, epochs, batch, proxMu, c.rng)
	if err != nil {
		return localResult{err: err}
	}
	privatize(delta, dpClip, dpSigma, c.rng)

	dec, err := CheckUpload(filter, delta, global, feedback, feedbackSigns, t)
	if err != nil {
		return localResult{err: err}
	}
	rel := nan()
	if len(feedbackSigns) > 0 {
		if r, err := core.SignAgreement(delta, feedbackSigns); err == nil {
			rel = r
		}
	}
	sig, err := gaia.Significance(delta, global)
	if err != nil {
		return localResult{err: err}
	}
	return localResult{
		delta:        delta,
		loss:         loss,
		upload:       dec.Upload,
		relevance:    rel,
		significance: sig,
	}
}

// CheckUpload routes the upload decision through the precomputed-sign fast
// path when the filter supports it, falling back to the general Check.
// Exported so the discrete-event simulation (internal/sim) gates uploads
// with the exact decision path the in-process engine uses.
//
//cmfl:hotpath
func CheckUpload(filter UploadFilter, delta, global, feedback []float64, feedbackSigns []int8, t int) (core.Decision, error) {
	if sc, ok := filter.(SignChecker); ok {
		if dec, handled, err := sc.CheckSigns(delta, feedbackSigns, t); handled || err != nil {
			return dec, err
		}
	}
	return filter.Check(delta, global, feedback, t)
}

// evaluate computes test accuracy in bounded-size forward batches.
func evaluate(net *nn.Network, test *dataset.Set, evalBatch int) float64 {
	if test == nil || test.Len() == 0 {
		return nan()
	}
	correct := 0
	for lo := 0; lo < test.Len(); lo += evalBatch {
		hi := lo + evalBatch
		if hi > test.Len() {
			hi = test.Len()
		}
		x, y := test.BatchView(lo, hi)
		pred := nn.Argmax(net.Forward(x))
		for i, p := range pred {
			if p == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(test.Len())
}

// sampleClients returns the participant indices for one round: all clients
// at full participation, otherwise a uniform sample of max(1, fraction·D).
func sampleClients(clients []*client, fraction float64, rng *xrand.Stream) []int {
	d := len(clients)
	if fraction <= 0 || fraction >= 1 {
		all := make([]int, d)
		for i := range all {
			all[i] = i
		}
		return all
	}
	k := int(fraction * float64(d))
	if k < 1 {
		k = 1
	}
	return rng.Perm(d)[:k]
}

func validate(cfg *Config) error {
	switch {
	case cfg.Model == nil:
		return errors.New("fl: Config.Model is required")
	case len(cfg.ClientData) == 0:
		return errors.New("fl: at least one client shard is required")
	case cfg.Epochs <= 0:
		return errors.New("fl: Epochs must be positive")
	case cfg.Batch <= 0:
		return errors.New("fl: Batch must be positive")
	case cfg.LR == nil:
		return errors.New("fl: LR schedule is required")
	case cfg.Rounds <= 0:
		return errors.New("fl: Rounds must be positive")
	}
	for i, d := range cfg.ClientData {
		if d == nil || d.Len() == 0 {
			return fmt.Errorf("fl: client %d has no data", i)
		}
	}
	if cfg.EvalEvery == 0 {
		cfg.EvalEvery = 1
	}
	if cfg.EvalBatch <= 0 {
		cfg.EvalBatch = 64
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = len(cfg.ClientData)
	}
	if cfg.FeedbackStaleness <= 0 {
		cfg.FeedbackStaleness = 1
	}
	return nil
}
