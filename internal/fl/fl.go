// Package fl implements the synchronous federated-learning engine of the
// paper (Sec. II-A): a central server broadcasts the global model, every
// client runs E epochs of local minibatch SGD on its private shard, and the
// server averages the uploaded deltas into a global update.
//
// Communication mitigation plugs in through UploadFilter: vanilla FL always
// uploads, Gaia gates on update magnitude, CMFL gates on sign-alignment
// relevance against the previous global update. The engine accounts for the
// paper's two cost metrics — accumulated communication rounds (Eq. 4) and
// uplink bytes — and records the traces needed for every figure.
package fl

import (
	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
	"cmfl/internal/xrand"
)

// UploadFilter is the client-side gate deciding whether a local update is
// transferred to the server. Implementations must be safe for concurrent
// use; the engine calls Check from one goroutine per client.
//
// local is the client's update (delta of the flat parameter vector), model
// is the global parameter vector the round started from, prevGlobal is the
// most recent non-empty global update (the feedback of Sec. IV-A), and t is
// the 1-based round number.
type UploadFilter interface {
	Name() string
	Check(local, model, prevGlobal []float64, t int) (core.Decision, error)
}

// Vanilla is the no-filter baseline: every client uploads every round.
type Vanilla struct{}

// Name implements UploadFilter.
func (Vanilla) Name() string { return "vanilla" }

// Check implements UploadFilter.
func (Vanilla) Check(local, model, prevGlobal []float64, t int) (core.Decision, error) {
	return core.Decision{Upload: true, Metric: 1}, nil
}

// SignChecker is an optional extension of UploadFilter: filters whose
// decision depends only on the signs of the feedback (CMFL's Eq. 9) can
// check against a sign vector the engine precomputes once per round instead
// of re-deriving signs from the float feedback per client. An empty sign
// slice means "no feedback yet". The bool result reports whether the fast
// path applied; false makes the engine fall back to Check.
type SignChecker interface {
	CheckSigns(local []float64, feedbackSigns []int8, t int) (core.Decision, bool, error)
}

// FilterFeedback is an optional extension of UploadFilter: after every
// synchronous round the engine reports how many of the participants
// uploaded, letting stateful filters (e.g. core.AdaptiveFilter) adjust
// their thresholds. It is the filter-facing feedback channel; the
// telemetry-facing hook is telemetry.Observer (Config.Observers).
type FilterFeedback interface {
	ObserveRound(round, uploaded, participants int)
}

// UpdateCodec lossily compresses uploaded updates; implemented by the
// codecs in internal/compress (it is structurally identical to
// compress.Codec, redeclared here to keep the dependency arrow pointing
// from compress to fl's interface consumers). The Into forms reuse the
// caller's buffer capacity so steady-state encode/decode is allocation-
// free. Must be safe for concurrent use.
type UpdateCodec interface {
	Name() string
	EncodeInto(dst []byte, update []float64) ([]byte, error)
	DecodeInto(dst []float64, payload []byte, dim int) ([]float64, error)
}

// SkipNotificationBytes is the size of the status message a client sends in
// place of a full update when its update is filtered out (client id + round
// + metric), mirroring the paper's EC2 implementation note that this cost is
// negligible next to a full weight vector.
const SkipNotificationBytes = 16

// Config describes one federated training run.
type Config struct {
	// Model builds a fresh network with the experiment's architecture.
	// Called once for the server and once per client; all instances are
	// immediately overwritten with the broadcast global parameters, so the
	// factory's weight initialisation only matters for the server's copy.
	Model func() *nn.Network

	// ClientData holds one private shard per client.
	ClientData []*dataset.Set
	// TestData is the held-out set for global accuracy evaluation.
	TestData *dataset.Set

	// Epochs is E, local passes over the shard per round (paper: 4).
	Epochs int
	// Batch is B, the local minibatch size (paper: 2).
	Batch int
	// LR is the learning-rate schedule η_t (paper: η0/√t for CMFL/Gaia).
	LR core.Schedule
	// Filter gates uploads; nil means Vanilla.
	Filter UploadFilter

	// Compressor lossily encodes every uploaded update (the bit-reduction
	// approach of the paper's related work); nil uploads raw float64
	// vectors. When set, uplink bytes count the encoded payload size and
	// the server aggregates the decoded (lossy) updates. Composes freely
	// with Filter — filtering decides *whether* to upload, compression
	// decides *how many bits* the upload costs.
	Compressor UpdateCodec

	// ErrorFeedback keeps a per-client residual of what lossy compression
	// discarded (EF-SGD, Karimireddy et al.): each round the client adds the
	// accumulated residual to its update before encoding and stores the new
	// encode error afterwards, so dropped mass re-enters later rounds
	// instead of vanishing. Residuals live client-side and are untouched on
	// skipped rounds, which keeps gating and compression composable and the
	// whole pipeline deterministic. Ignored when Compressor is nil.
	ErrorFeedback bool

	// ClientFraction is C from FedAvg: the fraction of clients sampled to
	// participate each round (0 or 1 = full participation). Sampled
	// clients are chosen uniformly per round from the engine seed.
	ClientFraction float64

	// ProxMu adds FedProx's proximal term μ/2·‖w − w_global‖² to every
	// local step, pulling client optima toward the broadcast model. It
	// tames client drift under heavy non-IIDness and composes with CMFL
	// (drift-limited updates align better with the global trend). Zero
	// disables it (plain FedAvg local solver, as in the paper).
	ProxMu float64

	// WeightedAggregation averages uploaded updates weighted by each
	// client's sample count (FedAvg's n_k/n weighting) instead of the
	// paper's plain mean. Off by default to match Algorithm 1 line 8.
	WeightedAggregation bool

	// DPClip bounds each update's L2 norm before upload (client-level
	// differential privacy, Geyer et al. — the privacy line of work the
	// paper builds on). Zero disables clipping.
	DPClip float64
	// DPNoiseSigma adds N(0, σ²) noise to every coordinate of the clipped
	// update before the relevance check and upload. Zero disables noise.
	// Noise is drawn from the client's deterministic stream.
	DPNoiseSigma float64

	// ServerMomentum applies FedAvgM-style momentum to the aggregated
	// global update: v ← μv + ū; x ← x + v. Zero disables it (the paper's
	// plain averaging). Momentum smooths the round-to-round global update,
	// which also stabilises CMFL's Eq. 8 feedback estimate.
	ServerMomentum float64

	// Rounds is the maximum number of synchronous iterations.
	Rounds int
	// TargetAccuracy stops the run early once reached (0 disables).
	TargetAccuracy float64
	// EvalEvery evaluates global accuracy every k rounds (default 1).
	EvalEvery int
	// EvalBatch is the forward-pass batch size during evaluation (default 64).
	EvalBatch int

	// Parallelism bounds concurrent client training goroutines
	// (default: number of clients).
	Parallelism int
	// Seed drives all engine randomness (shuffles), derived per client.
	Seed int64

	// FeedbackStaleness makes clients compare against the global update
	// from k rounds ago instead of the previous round (ablation of the
	// Eq. 8 smoothness assumption). Default 1.
	FeedbackStaleness int

	// Observers receive live telemetry: every round the engine emits one
	// telemetry.ClientEvent per participant (in client order) followed by
	// one telemetry.RoundEvent, synchronously from the engine goroutine.
	// Attach a telemetry.Collector to feed a metrics registry (round-level
	// progress callbacks included — the former Progress shim).
	Observers []telemetry.Observer
}

// RoundStats records one synchronous round. The communication-cost core
// (round, participants, uploads, uplink bytes, accuracy) is the embedded
// telemetry.RoundEvent shared by every engine; the remaining fields are
// specific to the in-process synchronous simulation.
type RoundStats struct {
	telemetry.RoundEvent

	// TrainLoss is the mean local training loss across clients.
	TrainLoss float64

	// MeanSignificance is the client-mean of Gaia's ‖u‖/‖x‖ (Fig. 2a).
	MeanSignificance float64
	// MeanRelevance is the client-mean of CMFL's Eq. 9 against the
	// feedback update (Fig. 2b); NaN while no feedback exists.
	MeanRelevance float64
	// DeltaUpdate is Eq. 8 between this round's and the previous round's
	// global updates (Fig. 3); NaN when undefined.
	DeltaUpdate float64
}

// Result is the outcome of a Run.
type Result struct {
	History []RoundStats
	// FinalParams is the global parameter vector after the last round.
	FinalParams []float64
	// ClientParams holds each client's locally trained parameter vector
	// from the final round, for the Fig. 1 / Fig. 6 divergence analysis.
	ClientParams [][]float64
	// SkipCounts is the number of filtered (not uploaded) updates per
	// client over the whole run.
	SkipCounts []int
	// FilterName echoes the filter used.
	FilterName string
}

// FinalAccuracy returns the last evaluated accuracy, or NaN if none.
func (r *Result) FinalAccuracy() float64 {
	for i := len(r.History) - 1; i >= 0; i-- {
		if !isNaN(r.History[i].Accuracy) {
			return r.History[i].Accuracy
		}
	}
	return nan()
}

// ClientStream derives the engine's per-client randomness. The emulated
// engine calls this too, so both engines draw bit-identical client streams
// from a single derivation site.
func ClientStream(seed int64, client int) *xrand.Stream {
	return xrand.Derive(seed, "fl-client", client)
}
