package fl

import (
	"math"
	"testing"

	"cmfl/internal/compress"
	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/gaia"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// digitLogisticConfig builds a small, fast federated setup: a linear
// classifier on 10×10 synthetic digits split across clients.
func digitLogisticConfig(t *testing.T, clients int, nonIID bool) Config {
	t.Helper()
	all, err := dataset.Digits(dataset.DigitsConfig{
		Samples: 600, ImageSize: 10, Noise: 0.2, MaxShift: 0, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	var shards []*dataset.Set
	if nonIID {
		shards, err = dataset.SortedShards(all, clients, 2, xrand.New(22))
	} else {
		shards, err = dataset.IIDSplit(all, clients, xrand.New(22))
	}
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.Digits(dataset.DigitsConfig{
		Samples: 200, ImageSize: 10, Noise: 0.2, MaxShift: 0, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := func() *nn.Network {
		return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(100, 10, xrand.Derive(24, "init", 0)))
	}
	return Config{
		Model:      model,
		ClientData: shards,
		TestData:   test,
		Epochs:     3,
		Batch:      4,
		LR:         core.Constant(0.15),
		Rounds:     30,
		Seed:       25,
	}
}

func TestVanillaConverges(t *testing.T) {
	cfg := digitLogisticConfig(t, 5, false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalAccuracy(); acc < 0.8 {
		t.Fatalf("vanilla FL accuracy = %v, want >= 0.8", acc)
	}
	last := res.History[len(res.History)-1]
	if last.CumUploads != 5*len(res.History) {
		t.Fatalf("vanilla uploads = %d, want %d (all clients every round)", last.CumUploads, 5*len(res.History))
	}
	if last.Skipped != 0 {
		t.Fatalf("vanilla skipped %d updates", last.Skipped)
	}
}

func TestCMFLSkipsAndStillLearns(t *testing.T) {
	cfg := digitLogisticConfig(t, 10, true)
	cfg.Rounds = 30
	cfg.Filter = core.NewFilter(core.Constant(0.5))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	total := 10 * len(res.History)
	if last.CumUploads >= total {
		t.Fatalf("CMFL uploaded everything (%d of %d); filter had no effect", last.CumUploads, total)
	}
	if acc := res.FinalAccuracy(); acc < 0.6 {
		t.Fatalf("CMFL accuracy = %v, want >= 0.6", acc)
	}
	skips := 0
	for _, s := range res.SkipCounts {
		skips += s
	}
	if skips != total-last.CumUploads {
		t.Fatalf("skip counts %d inconsistent with uploads %d/%d", skips, last.CumUploads, total)
	}
}

func TestFirstRoundNoFeedbackAllUpload(t *testing.T) {
	cfg := digitLogisticConfig(t, 6, true)
	cfg.Rounds = 1
	cfg.Filter = core.NewFilter(core.Constant(0.99))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.History[0].Uploaded != 6 {
		t.Fatalf("round 1 uploads = %d, want all 6 (no feedback yet)", res.History[0].Uploaded)
	}
	if !math.IsNaN(res.History[0].MeanRelevance) {
		t.Fatalf("round 1 relevance should be NaN, got %v", res.History[0].MeanRelevance)
	}
}

func TestGaiaFilterRuns(t *testing.T) {
	cfg := digitLogisticConfig(t, 5, true)
	cfg.Filter = gaia.NewFilter(core.Constant(1e9)) // absurd threshold: skip all after round semantics
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	if last.CumUploads != 0 {
		t.Fatalf("with an enormous Gaia threshold nothing should upload, got %d", last.CumUploads)
	}
	// Model never moved: accuracy equals the untrained model's.
	if res.FilterName != "gaia" {
		t.Fatalf("FilterName = %q, want gaia", res.FilterName)
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	cfg1 := digitLogisticConfig(t, 6, true)
	cfg1.Rounds = 5
	cfg1.Parallelism = 1
	cfg2 := digitLogisticConfig(t, 6, true)
	cfg2.Rounds = 5
	cfg2.Parallelism = 6
	r1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.FinalParams {
		if r1.FinalParams[i] != r2.FinalParams[i] {
			t.Fatalf("parallelism changed results at param %d: %v vs %v", i, r1.FinalParams[i], r2.FinalParams[i])
		}
	}
}

func TestEarlyStopOnTargetAccuracy(t *testing.T) {
	cfg := digitLogisticConfig(t, 5, false)
	cfg.Rounds = 50
	cfg.TargetAccuracy = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 50 {
		t.Fatalf("run did not stop early despite target accuracy")
	}
	if res.FinalAccuracy() < 0.5 {
		t.Fatalf("stopped at accuracy %v below target", res.FinalAccuracy())
	}
}

func TestUplinkByteAccounting(t *testing.T) {
	cfg := digitLogisticConfig(t, 4, true)
	cfg.Rounds = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dim := len(res.FinalParams)
	want := int64(res.History[len(res.History)-1].CumUploads) * int64(dim) * 8
	if got := res.History[len(res.History)-1].CumUplinkBytes; got != want {
		t.Fatalf("vanilla uplink bytes = %d, want %d", got, want)
	}

	// With a filter, skipped clients cost SkipNotificationBytes each.
	cfg = digitLogisticConfig(t, 4, true)
	cfg.Rounds = 5
	cfg.Filter = core.NewFilter(core.Constant(0.7))
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	skipped := 4*len(res.History) - last.CumUploads
	want = int64(last.CumUploads)*int64(dim)*8 + int64(skipped)*SkipNotificationBytes
	if last.CumUplinkBytes != want {
		t.Fatalf("filtered uplink bytes = %d, want %d", last.CumUplinkBytes, want)
	}
}

func TestHistoryTracesPopulated(t *testing.T) {
	cfg := digitLogisticConfig(t, 5, true)
	cfg.Rounds = 6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range res.History {
		if h.Round != i+1 {
			t.Fatalf("round numbering broken at %d", i)
		}
		if h.MeanSignificance <= 0 {
			t.Fatalf("round %d significance = %v, want > 0", h.Round, h.MeanSignificance)
		}
		if h.TrainLoss <= 0 {
			t.Fatalf("round %d train loss = %v, want > 0", h.Round, h.TrainLoss)
		}
		if i >= 1 && math.IsNaN(h.MeanRelevance) {
			t.Fatalf("round %d relevance missing", h.Round)
		}
		if i >= 1 && math.IsNaN(h.DeltaUpdate) {
			t.Fatalf("round %d delta-update missing", h.Round)
		}
	}
}

func TestClientParamsRecorded(t *testing.T) {
	cfg := digitLogisticConfig(t, 4, true)
	cfg.Rounds = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ClientParams) != 4 {
		t.Fatalf("ClientParams holds %d clients, want 4", len(res.ClientParams))
	}
	for c, p := range res.ClientParams {
		if len(p) != len(res.FinalParams) {
			t.Fatalf("client %d params dim %d != global %d", c, len(p), len(res.FinalParams))
		}
	}
}

func TestFeedbackStalenessAblationRuns(t *testing.T) {
	cfg := digitLogisticConfig(t, 5, true)
	cfg.Rounds = 8
	cfg.Filter = core.NewFilter(core.Constant(0.4))
	cfg.FeedbackStaleness = 3
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	base := digitLogisticConfig(t, 3, false)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil model", func(c *Config) { c.Model = nil }},
		{"no clients", func(c *Config) { c.ClientData = nil }},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"zero batch", func(c *Config) { c.Batch = 0 }},
		{"nil lr", func(c *Config) { c.LR = nil }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"empty shard", func(c *Config) { c.ClientData[0] = &dataset.Set{} }},
	}
	for _, tc := range cases {
		cfg := base
		cfg.ClientData = append([]*dataset.Set(nil), base.ClientData...)
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestVanillaCheckAlwaysUploads(t *testing.T) {
	var v Vanilla
	d, err := v.Check(nil, nil, nil, 1)
	if err != nil || !d.Upload {
		t.Fatalf("Vanilla.Check = %+v, %v; want upload", d, err)
	}
	if v.Name() != "vanilla" {
		t.Fatalf("Name = %q", v.Name())
	}
}

// TestNonIIDRelevanceLowerThanIID checks the paper's premise: label-sorted
// shards produce less aligned client updates than IID shards.
func TestNonIIDRelevanceLowerThanIID(t *testing.T) {
	run := func(nonIID bool) float64 {
		cfg := digitLogisticConfig(t, 10, nonIID)
		cfg.Rounds = 10
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		n := 0
		for _, h := range res.History[1:] {
			if !math.IsNaN(h.MeanRelevance) {
				sum += h.MeanRelevance
				n++
			}
		}
		return sum / float64(n)
	}
	iid := run(false)
	noniid := run(true)
	if noniid >= iid {
		t.Fatalf("non-IID mean relevance %v should be below IID %v", noniid, iid)
	}
}

func TestClientSampling(t *testing.T) {
	cfg := digitLogisticConfig(t, 10, false)
	cfg.Rounds = 8
	cfg.ClientFraction = 0.3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.History {
		if h.Participants != 3 {
			t.Fatalf("round %d participants = %d, want 3", h.Round, h.Participants)
		}
		if h.Uploaded != 3 {
			t.Fatalf("vanilla sampled round should upload all participants, got %d", h.Uploaded)
		}
	}
	if acc := res.FinalAccuracy(); acc < 0.5 {
		t.Fatalf("sampled training accuracy = %v, want >= 0.5", acc)
	}
}

func TestClientSamplingMinimumOne(t *testing.T) {
	cfg := digitLogisticConfig(t, 5, false)
	cfg.Rounds = 2
	cfg.ClientFraction = 0.01
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.History[0].Participants != 1 {
		t.Fatalf("participants = %d, want 1", res.History[0].Participants)
	}
}

func TestCompressorReducesBytesAndStillLearns(t *testing.T) {
	cfg := digitLogisticConfig(t, 5, false)
	cfg.Rounds = 15
	cfg.Compressor = compress.Uniform8{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dim := len(res.FinalParams)
	last := res.History[len(res.History)-1]
	raw := int64(last.CumUploads) * int64(dim) * 8
	if last.CumUplinkBytes >= raw/4 {
		t.Fatalf("quantized bytes %d should be well under raw %d", last.CumUplinkBytes, raw)
	}
	if acc := res.FinalAccuracy(); acc < 0.7 {
		t.Fatalf("quantized training accuracy = %v, want >= 0.7", acc)
	}
}

func TestCompressorComposesWithCMFL(t *testing.T) {
	cfg := digitLogisticConfig(t, 6, true)
	cfg.Rounds = 10
	cfg.Filter = core.NewFilter(core.Constant(0.5))
	cfg.Compressor = compress.TopK{K: 50}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	// Each upload costs K*12 bytes; skips cost the notification.
	want := int64(last.CumUploads)*50*12 +
		int64(6*len(res.History)-last.CumUploads)*SkipNotificationBytes
	if last.CumUplinkBytes != want {
		t.Fatalf("bytes = %d, want %d", last.CumUplinkBytes, want)
	}
}

func TestAdaptiveFilterConvergesToTargetFraction(t *testing.T) {
	cfg := digitLogisticConfig(t, 10, true)
	cfg.Rounds = 40
	af := core.NewAdaptiveFilter(0.5, 0.6)
	af.Gain = 0.02
	cfg.Filter = af
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Average upload fraction over the last half of training should be in
	// the neighbourhood of the 0.6 target.
	var sum float64
	n := 0
	for _, h := range res.History[len(res.History)/2:] {
		sum += float64(h.Uploaded) / float64(h.Participants)
		n++
	}
	frac := sum / float64(n)
	if frac < 0.4 || frac > 0.8 {
		t.Fatalf("adaptive upload fraction = %.2f, want near 0.6", frac)
	}
	if res.FilterName != "cmfl-adaptive" {
		t.Fatalf("FilterName = %q", res.FilterName)
	}
}

func TestServerMomentumChangesTrajectoryAndLearns(t *testing.T) {
	base := digitLogisticConfig(t, 5, false)
	base.Rounds = 15
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withM := digitLogisticConfig(t, 5, false)
	withM.Rounds = 15
	withM.ServerMomentum = 0.7
	mres, err := Run(withM)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range plain.FinalParams {
		if plain.FinalParams[j] != mres.FinalParams[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("server momentum had no effect on the trajectory")
	}
	if acc := mres.FinalAccuracy(); acc < 0.7 {
		t.Fatalf("momentum run accuracy = %v, want >= 0.7", acc)
	}
}

func TestServerMomentumSmoothsDeltaUpdate(t *testing.T) {
	mean := func(momentum float64) float64 {
		cfg := digitLogisticConfig(t, 8, true)
		cfg.Rounds = 20
		cfg.ServerMomentum = momentum
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		n := 0
		for _, h := range res.History {
			if !math.IsNaN(h.DeltaUpdate) && !math.IsInf(h.DeltaUpdate, 0) {
				s += h.DeltaUpdate
				n++
			}
		}
		return s / float64(n)
	}
	plain := mean(0)
	smoothed := mean(0.8)
	if smoothed >= plain {
		t.Fatalf("momentum should smooth sequential global updates: ΔUpdate %v vs %v", smoothed, plain)
	}
}

func TestPrivatizeClipsAndNoises(t *testing.T) {
	rng := xrand.New(81)
	delta := []float64{3, 4} // norm 5
	privatize(delta, 1.0, 0, rng)
	if norm := tensor.Norm2(delta); math.Abs(norm-1) > 1e-12 {
		t.Fatalf("clipped norm = %v, want 1", norm)
	}
	// Direction preserved by clipping.
	if math.Abs(delta[0]/delta[1]-3.0/4.0) > 1e-12 {
		t.Fatalf("clipping changed direction: %v", delta)
	}
	small := []float64{0.1, 0.1}
	orig := append([]float64(nil), small...)
	privatize(small, 1.0, 0, rng)
	if small[0] != orig[0] || small[1] != orig[1] {
		t.Fatal("clipping must not touch updates inside the bound")
	}
	privatize(small, 0, 0.5, rng)
	if small[0] == orig[0] && small[1] == orig[1] {
		t.Fatal("noise did not perturb the update")
	}
}

func TestDPTrainingStillLearnsWithModestNoise(t *testing.T) {
	cfg := digitLogisticConfig(t, 5, false)
	cfg.Rounds = 25
	cfg.DPClip = 5
	cfg.DPNoiseSigma = 0.001
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalAccuracy(); acc < 0.7 {
		t.Fatalf("DP accuracy = %v, want >= 0.7", acc)
	}
}

func TestDPNoiseDegradesRelevance(t *testing.T) {
	mean := func(sigma float64) float64 {
		cfg := digitLogisticConfig(t, 8, true)
		cfg.Rounds = 10
		cfg.DPNoiseSigma = sigma
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		n := 0
		for _, h := range res.History[1:] {
			if !math.IsNaN(h.MeanRelevance) {
				s += h.MeanRelevance
				n++
			}
		}
		return s / float64(n)
	}
	clean := mean(0)
	noisy := mean(1.0) // enormous noise: sign alignment collapses to chance
	if noisy >= clean {
		t.Fatalf("heavy DP noise should reduce relevance: %v vs %v", noisy, clean)
	}
	if math.Abs(noisy-0.5) > 0.05 {
		t.Fatalf("pure-noise relevance should be near 0.5, got %v", noisy)
	}
}

func TestProxTermLimitsClientDrift(t *testing.T) {
	cfg := digitLogisticConfig(t, 6, true)
	cfg.Rounds = 1
	model := cfg.Model()
	start := model.ParamVector()
	norm := func(mu float64) float64 {
		net := cfg.Model()
		delta, _, err := LocalTrainProx(net, cfg.ClientData[0], start, 0.15, 4, 4, mu, ClientStream(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		return tensor.Norm2(delta)
	}
	free := norm(0)
	proxed := norm(5.0)
	if proxed >= free {
		t.Fatalf("proximal term should shrink local drift: %v vs %v", proxed, free)
	}
}

func TestProxTrainingStillLearns(t *testing.T) {
	cfg := digitLogisticConfig(t, 5, true)
	cfg.Rounds = 25
	cfg.ProxMu = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalAccuracy(); acc < 0.6 {
		t.Fatalf("FedProx accuracy = %v, want >= 0.6", acc)
	}
}

func TestWeightedAggregation(t *testing.T) {
	// Two clients with very different sizes: weighting must move the
	// aggregate toward the larger client's update.
	all, err := dataset.Digits(dataset.DigitsConfig{Samples: 300, ImageSize: 10, Noise: 0.2, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	big := all.Subset(seqIdx(0, 200))
	small := all.Subset(seqIdx(200, 210))
	cfg := Config{
		Model: func() *nn.Network {
			return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(100, 10, xrand.Derive(92, "init", 0)))
		},
		ClientData: []*dataset.Set{big, small},
		TestData:   all,
		Epochs:     1,
		Batch:      8,
		LR:         core.Constant(0.1),
		Rounds:     1,
		Seed:       93,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WeightedAggregation = true
	weighted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct each client's raw delta and check the weighted aggregate.
	start := cfg.Model().ParamVector()
	d0, _, err := LocalTrain(cfg.Model(), big, start, 0.1, 1, 8, ClientStream(93, 0))
	if err != nil {
		t.Fatal(err)
	}
	d1, _, err := LocalTrain(cfg.Model(), small, start, 0.1, 1, 8, ClientStream(93, 1))
	if err != nil {
		t.Fatal(err)
	}
	for j := range start {
		wantPlain := start[j] + (d0[j]+d1[j])/2
		wantWeighted := start[j] + (200*d0[j]+10*d1[j])/210
		if math.Abs(plain.FinalParams[j]-wantPlain) > 1e-12 {
			t.Fatalf("plain aggregation wrong at %d", j)
		}
		if math.Abs(weighted.FinalParams[j]-wantWeighted) > 1e-12 {
			t.Fatalf("weighted aggregation wrong at %d", j)
		}
	}
}

func seqIdx(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestProgressObserver(t *testing.T) {
	cfg := digitLogisticConfig(t, 3, false)
	cfg.Rounds = 4
	var rounds []int
	cfg.Observers = []telemetry.Observer{
		telemetry.Funcs{Round: func(e telemetry.RoundEvent) { rounds = append(rounds, e.Round) }},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 || rounds[0] != 1 || rounds[3] != 4 {
		t.Fatalf("round observer rounds = %v", rounds)
	}
}
