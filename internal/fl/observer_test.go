package fl

import (
	"math"
	"testing"

	"cmfl/internal/core"
	"cmfl/internal/telemetry"
)

// eventRecorder captures the interleaved observer stream so the tests can
// assert the ordering contract: all ClientEvents of a round arrive before
// that round's RoundEvent, rounds in order.
type eventRecorder struct {
	rounds  []telemetry.RoundEvent
	clients []telemetry.ClientEvent
	// seq logs "c" / "r" markers with round numbers in arrival order.
	seq []int // positive: RoundEvent round; negative: ClientEvent round
}

func (r *eventRecorder) observer() telemetry.Observer {
	return telemetry.Funcs{
		Round: func(e telemetry.RoundEvent) {
			r.rounds = append(r.rounds, e)
			r.seq = append(r.seq, e.Round)
		},
		Client: func(e telemetry.ClientEvent) {
			r.clients = append(r.clients, e)
			r.seq = append(r.seq, -e.Round)
		},
	}
}

// checkOrdering asserts rounds arrive 1..n in order and that every
// ClientEvent for round k lands between round k-1's and round k's RoundEvent.
func (r *eventRecorder) checkOrdering(t *testing.T, engine string) {
	t.Helper()
	lastRound := 0
	for _, s := range r.seq {
		if s > 0 {
			if s != lastRound+1 {
				t.Fatalf("RoundEvent %d after round %d; want in-order rounds", s, lastRound)
			}
			lastRound = s
		} else if -s != lastRound+1 {
			t.Fatalf("ClientEvent for round %d arrived while round %d was current", -s, lastRound)
		}
	}
	for _, e := range r.rounds {
		if e.Engine != engine {
			t.Fatalf("RoundEvent engine = %q, want %q", e.Engine, engine)
		}
	}
	for _, e := range r.clients {
		if e.Engine != engine {
			t.Fatalf("ClientEvent engine = %q, want %q", e.Engine, engine)
		}
	}
}

// checkConsistency asserts the per-client stream adds up to the round totals.
func (r *eventRecorder) checkConsistency(t *testing.T) {
	t.Helper()
	uploads := make(map[int]int)
	bytes := make(map[int]int64)
	count := make(map[int]int)
	for _, e := range r.clients {
		if e.Uploaded {
			uploads[e.Round]++
		}
		bytes[e.Round] += e.UplinkBytes
		count[e.Round]++
	}
	var cumBytes int64
	for _, e := range r.rounds {
		if count[e.Round] != e.Participants {
			t.Fatalf("round %d: %d ClientEvents, %d participants", e.Round, count[e.Round], e.Participants)
		}
		if uploads[e.Round] != e.Uploaded {
			t.Fatalf("round %d: client stream shows %d uploads, RoundEvent says %d",
				e.Round, uploads[e.Round], e.Uploaded)
		}
		if e.Uploaded+e.Skipped != e.Participants {
			t.Fatalf("round %d: uploaded %d + skipped %d != participants %d",
				e.Round, e.Uploaded, e.Skipped, e.Participants)
		}
		cumBytes += bytes[e.Round]
		if e.CumUplinkBytes != cumBytes {
			t.Fatalf("round %d: CumUplinkBytes = %d, client stream sums to %d",
				e.Round, e.CumUplinkBytes, cumBytes)
		}
	}
}

func TestObserverOrderingSync(t *testing.T) {
	cfg := digitLogisticConfig(t, 4, true)
	cfg.Rounds = 5
	cfg.Filter = core.NewFilter(core.Constant(0.5))
	rec := &eventRecorder{}
	var progressRounds []int
	cfg.Observers = []telemetry.Observer{
		rec.observer(),
		telemetry.Funcs{Round: func(e telemetry.RoundEvent) { progressRounds = append(progressRounds, e.Round) }},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec.checkOrdering(t, telemetry.EngineSync)
	rec.checkConsistency(t)
	if len(rec.rounds) != len(res.History) {
		t.Fatalf("observed %d rounds, history has %d", len(rec.rounds), len(res.History))
	}
	for i, e := range rec.rounds {
		if e != res.History[i].RoundEvent {
			t.Fatalf("round %d: observed event %+v != history %+v", i+1, e, res.History[i].RoundEvent)
		}
	}
	// A plain Funcs observer is the progress-callback idiom: one round
	// event per history entry, in order.
	if len(progressRounds) != len(res.History) {
		t.Fatalf("round observer fired %d times, want %d", len(progressRounds), len(res.History))
	}
}

func TestObserverOrderingPartial(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Rounds = 6
	rec := &eventRecorder{}
	cfg.Observers = []telemetry.Observer{rec.observer()}
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec.checkOrdering(t, telemetry.EnginePartial)
	rec.checkConsistency(t)
	for i, e := range rec.rounds {
		if e != res.History[i].RoundEvent {
			t.Fatalf("round %d: observed event %+v != history %+v", i+1, e, res.History[i].RoundEvent)
		}
	}
	// Partial uploads carry no scalar relevance; the stream reports NaN.
	for _, e := range rec.clients {
		if !math.IsNaN(e.Relevance) {
			t.Fatalf("partial ClientEvent relevance = %v, want NaN", e.Relevance)
		}
	}
}

func TestObserverOrderingAsync(t *testing.T) {
	cfg := asyncConfig(t, 4)
	cfg.Updates = 12
	cfg.Filter = core.NewFilter(core.Constant(0.5))
	rec := &eventRecorder{}
	cfg.Observers = []telemetry.Observer{rec.observer()}
	res, err := RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec.checkOrdering(t, telemetry.EngineAsync)
	rec.checkConsistency(t)
	if len(rec.rounds) != len(res.Events) {
		t.Fatalf("observed %d completions, result has %d", len(rec.rounds), len(res.Events))
	}
	for i, e := range rec.rounds {
		if e.Participants != 1 {
			t.Fatalf("async round %d: participants = %d, want 1", i+1, e.Participants)
		}
	}
	last := rec.rounds[len(rec.rounds)-1]
	if want := res.Events[len(res.Events)-1].CumUploads; last.CumUploads != want {
		t.Fatalf("final CumUploads = %d, result says %d", last.CumUploads, want)
	}
}
