package fl

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"cmfl/internal/core"
	"cmfl/internal/telemetry"
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// PartialConfig extends the synchronous engine with *layerwise* CMFL: the
// relevance check (Eq. 9) runs per parameter segment (one segment per
// parameter tensor, from Network.ParamSegments), and a client uploads only
// the segments that align with the global trend. This is a finer-grained
// variant of the paper's all-or-nothing gate — a single tangential layer no
// longer forces a client to withhold its relevant layers.
type PartialConfig struct {
	// Config supplies the workload; its Filter and Compressor are ignored
	// (the partial gate replaces them).
	Config
	// Threshold is the per-segment relevance threshold schedule.
	Threshold core.Schedule
	// MinSegment exempts segments with fewer parameters from gating (they
	// are always uploaded): the sign-agreement percentage of an 8-element
	// bias vector is too quantised to be a meaningful relevance signal,
	// and such segments are negligible in bytes anyway. Default 32.
	MinSegment int
	// DropoutRate is the per-round probability that a client sits the round
	// out entirely — no training, no upload, not even a skip notification —
	// simulating the unreliable mobile population the paper targets (§I).
	// Draws come from a dedicated stream derived from (Seed,
	// "partial-dropout"), one per client per round in client order, so a
	// given seed always drops the same clients. 0 disables; must be < 1.
	DropoutRate float64
}

// segmentUploadBytes is the framing cost of announcing one uploaded
// segment (segment index + length), on top of its float64 payload.
const segmentUploadBytes = 8

// PartialRoundStats extends the shared round record with segment-level
// counts. In the embedded telemetry.RoundEvent, a client counts as
// "uploaded" when it transferred at least one segment this round.
type PartialRoundStats struct {
	telemetry.RoundEvent

	// SegmentsUploaded / SegmentsTotal count segment uploads across all
	// clients this round.
	SegmentsUploaded int
	SegmentsTotal    int
}

// PartialResult is the outcome of RunPartial.
type PartialResult struct {
	History     []PartialRoundStats
	FinalParams []float64
	// SegmentUploadFraction is the overall fraction of segments uploaded.
	SegmentUploadFraction float64
}

// FinalAccuracy returns the last evaluated accuracy, or NaN.
func (r *PartialResult) FinalAccuracy() float64 {
	for i := len(r.History) - 1; i >= 0; i-- {
		if !math.IsNaN(r.History[i].Accuracy) {
			return r.History[i].Accuracy
		}
	}
	return math.NaN()
}

// RunPartial executes synchronous training with layerwise relevance gating.
//
//cmfl:deterministic
func RunPartial(cfg PartialConfig) (*PartialResult, error) {
	if err := validate(&cfg.Config); err != nil {
		return nil, err
	}
	if cfg.Threshold == nil {
		return nil, errors.New("fl: partial Threshold schedule is required")
	}
	if cfg.MinSegment <= 0 {
		cfg.MinSegment = 32
	}
	if cfg.DropoutRate < 0 || cfg.DropoutRate >= 1 {
		return nil, fmt.Errorf("fl: DropoutRate %v outside [0, 1)", cfg.DropoutRate)
	}

	global := cfg.Model()
	params := global.ParamVector()
	dim := len(params)
	segLens := global.ParamSegments()
	segOff := make([]int, len(segLens)+1)
	for i, l := range segLens {
		segOff[i+1] = segOff[i] + l
	}
	if segOff[len(segLens)] != dim {
		return nil, fmt.Errorf("fl: segments cover %d of %d params", segOff[len(segLens)], dim)
	}

	clients := make([]*client, len(cfg.ClientData))
	for i, data := range cfg.ClientData {
		clients[i] = &client{
			id:   i,
			net:  cfg.Model(),
			data: data,
			rng:  ClientStream(cfg.Seed, i),
		}
	}

	feedback := make([]float64, dim)
	res := &PartialResult{}
	var cumBytes int64
	totalSegs, uploadedSegs := 0, 0
	cumUploads := 0

	results := make([]partialResult, len(clients))
	clientBytes := make([]int64, len(clients)) // per-round uplink cost per client
	active := make([]bool, len(clients))
	var dropRng *xrand.Stream
	if cfg.DropoutRate > 0 {
		dropRng = xrand.Derive(cfg.Seed, "partial-dropout", 0)
	}
	sem := make(chan struct{}, cfg.Parallelism)

	for t := 1; t <= cfg.Rounds; t++ {
		lr := cfg.LR.At(t)
		thr := cfg.Threshold.At(t)
		// Dropout draws happen up front in client order: one Float64 per
		// client per round, so the participation pattern is a pure function
		// of the seed regardless of goroutine scheduling.
		activeCount := 0
		for i := range clients {
			active[i] = dropRng == nil || dropRng.Float64() >= cfg.DropoutRate
			if active[i] {
				activeCount++
			}
		}
		var wg sync.WaitGroup
		for i := range clients {
			if !active[i] {
				results[i] = partialResult{}
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i] = partialTrain(clients[i], params, feedback, segOff, lr, thr, cfg.Epochs, cfg.Batch, cfg.MinSegment)
			}(i)
		}
		wg.Wait()
		for i := range results {
			if active[i] && results[i].err != nil {
				return nil, fmt.Errorf("fl: partial round %d client %d: %w", t, i, results[i].err)
			}
		}

		// Per-segment averaging over the active clients that uploaded the
		// segment; dropped clients contribute nothing this round.
		globalUpdate := make([]float64, dim)
		segUp, segTot := 0, 0
		var roundBytes int64
		for i := range clientBytes {
			clientBytes[i] = 0
		}
		for s := 0; s < len(segLens); s++ {
			lo, hi := segOff[s], segOff[s+1]
			count := 0
			for i := range results {
				if !active[i] {
					continue
				}
				r := &results[i]
				segTot++
				if !r.upload[s] {
					continue
				}
				segUp++
				count++
				for j := lo; j < hi; j++ {
					globalUpdate[j] += r.delta[j]
				}
				clientBytes[i] += int64(hi-lo)*8 + segmentUploadBytes
			}
			if count > 0 {
				inv := 1.0 / float64(count)
				for j := lo; j < hi; j++ {
					globalUpdate[j] *= inv
				}
			}
		}
		// Active clients that uploaded nothing still send a skip
		// notification; dropped clients send nothing at all.
		clientsUploaded := 0
		for i := range results {
			if !active[i] {
				continue
			}
			if clientBytes[i] == 0 {
				clientBytes[i] = SkipNotificationBytes
			} else {
				clientsUploaded++
			}
			roundBytes += clientBytes[i]
		}
		//cmfl:order-pinned rounds apply to the model strictly sequentially; t-order is the algorithm
		tensor.Axpy(1, globalUpdate, params)
		if !core.AllZero(globalUpdate) {
			feedback = globalUpdate
		}

		cumBytes += roundBytes
		uploadedSegs += segUp
		totalSegs += segTot
		cumUploads += clientsUploaded
		st := PartialRoundStats{
			RoundEvent: telemetry.RoundEvent{
				Engine:         telemetry.EnginePartial,
				Round:          t,
				Participants:   activeCount,
				Uploaded:       clientsUploaded,
				Skipped:        activeCount - clientsUploaded,
				CumUploads:     cumUploads,
				CumUplinkBytes: cumBytes,
				Dropped:        len(clients) - activeCount,
				Accuracy:       math.NaN(),
			},
			SegmentsUploaded: segUp,
			SegmentsTotal:    segTot,
		}
		if cfg.EvalEvery > 0 && (t%cfg.EvalEvery == 0 || t == cfg.Rounds) {
			if err := global.SetParamVector(params); err != nil {
				return nil, err
			}
			st.Accuracy = evaluate(global, cfg.TestData, cfg.EvalBatch)
		}
		res.History = append(res.History, st)
		if len(cfg.Observers) > 0 {
			for i := range results {
				if !active[i] {
					continue
				}
				uploadedAny := false
				for _, u := range results[i].upload {
					if u {
						uploadedAny = true
						break
					}
				}
				telemetry.EmitClient(cfg.Observers, telemetry.ClientEvent{
					Engine:      telemetry.EnginePartial,
					Round:       t,
					Client:      i,
					Uploaded:    uploadedAny,
					Relevance:   math.NaN(),
					UplinkBytes: clientBytes[i],
				})
			}
			telemetry.EmitRound(cfg.Observers, st.RoundEvent)
		}
		if cfg.TargetAccuracy > 0 && !math.IsNaN(st.Accuracy) && st.Accuracy >= cfg.TargetAccuracy {
			break
		}
	}
	res.FinalParams = params
	if totalSegs > 0 {
		res.SegmentUploadFraction = float64(uploadedSegs) / float64(totalSegs)
	}
	return res, nil
}

// partialResult is one client's gated update: the full delta plus a
// per-segment upload decision.
type partialResult struct {
	delta  []float64
	upload []bool
	err    error
}

// partialTrain runs one client's local round and gates each parameter
// segment independently. The first round (zero feedback) uploads all.
func partialTrain(c *client, global, feedback []float64, segOff []int, lr, thr float64, epochs, batch, minSegment int) partialResult {
	delta, _, err := LocalTrain(c.net, c.data, global, lr, epochs, batch, c.rng)
	if err != nil {
		return partialResult{err: err}
	}
	nSeg := len(segOff) - 1
	upload := make([]bool, nSeg)
	bootstrap := core.AllZero(feedback)
	for s := 0; s < nSeg; s++ {
		lo, hi := segOff[s], segOff[s+1]
		if bootstrap || hi-lo < minSegment {
			upload[s] = true
			continue
		}
		rel, err := core.Relevance(delta[lo:hi], feedback[lo:hi])
		if err != nil {
			return partialResult{err: err}
		}
		upload[s] = rel >= thr
	}
	return partialResult{delta: delta, upload: upload}
}
