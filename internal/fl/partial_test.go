package fl

import (
	"math"
	"testing"

	"cmfl/internal/core"
)

func partialConfig(t *testing.T) PartialConfig {
	return PartialConfig{
		Config:    digitLogisticConfig(t, 8, true),
		Threshold: core.Constant(0.5),
	}
}

func TestPartialUploadLearnsAndFilters(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Rounds = 25
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalAccuracy(); acc < 0.6 {
		t.Fatalf("partial-upload accuracy = %v, want >= 0.6", acc)
	}
	if res.SegmentUploadFraction >= 1 {
		t.Fatal("partial gate never filtered a segment")
	}
	if res.SegmentUploadFraction <= 0 {
		t.Fatal("partial gate filtered everything")
	}
}

func TestPartialFirstRoundUploadsAll(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Rounds = 1
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History[0]
	if h.SegmentsUploaded != h.SegmentsTotal {
		t.Fatalf("round 1 uploaded %d of %d segments; bootstrap must upload all",
			h.SegmentsUploaded, h.SegmentsTotal)
	}
}

func TestPartialBytesBelowFullUploads(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Rounds = 15
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dim := len(res.FinalParams)
	// Full uploads would cost clients × rounds × dim × 8 bytes.
	full := int64(len(cfg.ClientData)) * int64(len(res.History)) * int64(dim) * 8
	last := res.History[len(res.History)-1]
	if last.CumUplinkBytes >= full {
		t.Fatalf("partial bytes %d should be below full-upload bytes %d", last.CumUplinkBytes, full)
	}
}

func TestPartialSegmentsMatchHighThreshold(t *testing.T) {
	// With an impossible threshold nothing uploads after round 1 and the
	// model freezes.
	cfg := partialConfig(t)
	cfg.Rounds = 4
	cfg.Threshold = core.Constant(1.1)
	cfg.MinSegment = 1 // gate everything, including bias segments
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.History[1:] {
		if h.SegmentsUploaded != 0 {
			t.Fatalf("round %d uploaded %d segments despite threshold > 1", h.Round, h.SegmentsUploaded)
		}
	}
	if math.IsNaN(res.FinalAccuracy()) {
		t.Fatal("accuracy missing")
	}
}

func TestPartialValidation(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Threshold = nil
	if _, err := RunPartial(cfg); err == nil {
		t.Fatal("expected error for nil threshold")
	}
	cfg = partialConfig(t)
	cfg.Rounds = 0
	if _, err := RunPartial(cfg); err == nil {
		t.Fatal("expected validation error from embedded config")
	}
	cfg = partialConfig(t)
	cfg.DropoutRate = 1.0
	if _, err := RunPartial(cfg); err == nil {
		t.Fatal("expected error for DropoutRate 1.0 (nobody would ever train)")
	}
	cfg = partialConfig(t)
	cfg.DropoutRate = -0.1
	if _, err := RunPartial(cfg); err == nil {
		t.Fatal("expected error for negative DropoutRate")
	}
}

// TestPartialDropoutDeterministic pins the dropout stream contract: the
// participation pattern is a pure function of the seed (one draw per client
// per round, in client order, from the dedicated "partial-dropout" stream),
// so two runs of the same config produce bit-identical models and identical
// round accounting.
func TestPartialDropoutDeterministic(t *testing.T) {
	run := func() *PartialResult {
		cfg := partialConfig(t)
		cfg.Rounds = 8
		cfg.DropoutRate = 0.3
		res, err := RunPartial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.FinalParams) != len(b.FinalParams) {
		t.Fatalf("param dims differ: %d vs %d", len(a.FinalParams), len(b.FinalParams))
	}
	for j := range a.FinalParams {
		if math.Float64bits(a.FinalParams[j]) != math.Float64bits(b.FinalParams[j]) {
			t.Fatalf("param %d differs between runs: %v vs %v", j, a.FinalParams[j], b.FinalParams[j])
		}
	}
	clients := len(partialConfig(t).ClientData)
	sawDropout := false
	for i, h := range a.History {
		if h.Participants+h.Dropped != clients {
			t.Fatalf("round %d: participants %d + dropped %d != %d clients",
				h.Round, h.Participants, h.Dropped, clients)
		}
		if h.Dropped > 0 {
			sawDropout = true
		}
		if bh := b.History[i]; h.Dropped != bh.Dropped || h.Participants != bh.Participants {
			t.Fatalf("round %d participation differs between runs: %d/%d vs %d/%d",
				h.Round, h.Participants, h.Dropped, bh.Participants, bh.Dropped)
		}
	}
	if !sawDropout {
		t.Fatal("rate 0.3 over 8 rounds × 8 clients never dropped anyone — dropout inert")
	}
}

func TestPartialMinSegmentBypassesSmallTensors(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Rounds = 3
	cfg.Threshold = core.Constant(1.1) // gate blocks every gated segment
	// Default MinSegment (32) exempts the 10-element bias: exactly one
	// segment per client per round still uploads after bootstrap.
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := len(cfg.ClientData)
	for _, h := range res.History[1:] {
		if h.SegmentsUploaded != clients {
			t.Fatalf("round %d uploaded %d segments, want %d (bias bypass only)",
				h.Round, h.SegmentsUploaded, clients)
		}
	}
}
