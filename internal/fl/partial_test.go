package fl

import (
	"math"
	"testing"

	"cmfl/internal/core"
)

func partialConfig(t *testing.T) PartialConfig {
	return PartialConfig{
		Config:    digitLogisticConfig(t, 8, true),
		Threshold: core.Constant(0.5),
	}
}

func TestPartialUploadLearnsAndFilters(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Rounds = 25
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalAccuracy(); acc < 0.6 {
		t.Fatalf("partial-upload accuracy = %v, want >= 0.6", acc)
	}
	if res.SegmentUploadFraction >= 1 {
		t.Fatal("partial gate never filtered a segment")
	}
	if res.SegmentUploadFraction <= 0 {
		t.Fatal("partial gate filtered everything")
	}
}

func TestPartialFirstRoundUploadsAll(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Rounds = 1
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := res.History[0]
	if h.SegmentsUploaded != h.SegmentsTotal {
		t.Fatalf("round 1 uploaded %d of %d segments; bootstrap must upload all",
			h.SegmentsUploaded, h.SegmentsTotal)
	}
}

func TestPartialBytesBelowFullUploads(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Rounds = 15
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dim := len(res.FinalParams)
	// Full uploads would cost clients × rounds × dim × 8 bytes.
	full := int64(len(cfg.ClientData)) * int64(len(res.History)) * int64(dim) * 8
	last := res.History[len(res.History)-1]
	if last.CumUplinkBytes >= full {
		t.Fatalf("partial bytes %d should be below full-upload bytes %d", last.CumUplinkBytes, full)
	}
}

func TestPartialSegmentsMatchHighThreshold(t *testing.T) {
	// With an impossible threshold nothing uploads after round 1 and the
	// model freezes.
	cfg := partialConfig(t)
	cfg.Rounds = 4
	cfg.Threshold = core.Constant(1.1)
	cfg.MinSegment = 1 // gate everything, including bias segments
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.History[1:] {
		if h.SegmentsUploaded != 0 {
			t.Fatalf("round %d uploaded %d segments despite threshold > 1", h.Round, h.SegmentsUploaded)
		}
	}
	if math.IsNaN(res.FinalAccuracy()) {
		t.Fatal("accuracy missing")
	}
}

func TestPartialValidation(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Threshold = nil
	if _, err := RunPartial(cfg); err == nil {
		t.Fatal("expected error for nil threshold")
	}
	cfg = partialConfig(t)
	cfg.Rounds = 0
	if _, err := RunPartial(cfg); err == nil {
		t.Fatal("expected validation error from embedded config")
	}
}

func TestPartialMinSegmentBypassesSmallTensors(t *testing.T) {
	cfg := partialConfig(t)
	cfg.Rounds = 3
	cfg.Threshold = core.Constant(1.1) // gate blocks every gated segment
	// Default MinSegment (32) exempts the 10-element bias: exactly one
	// segment per client per round still uploads after bootstrap.
	res, err := RunPartial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := len(cfg.ClientData)
	for _, h := range res.History[1:] {
		if h.SegmentsUploaded != clients {
			t.Fatalf("round %d uploaded %d segments, want %d (bias bypass only)",
				h.Round, h.SegmentsUploaded, clients)
		}
	}
}
