// Package gaia implements the magnitude-based significance filter of
// Gaia (Hsieh et al., NSDI'17), the baseline the paper compares against.
//
// Gaia uploads a local update iff its magnitude relative to the current
// model, ‖update‖/‖model‖, reaches a threshold. The filter is open-loop: it
// never consults the global optimization direction, which is exactly the
// deficiency CMFL addresses (paper Sec. III-B).
package gaia

import (
	"errors"
	"math"

	"cmfl/internal/core"
)

// ErrLengthMismatch reports mismatched update/model vector lengths.
var ErrLengthMismatch = errors.New("gaia: update and model vectors have different lengths")

// Significance computes ‖update‖ / ‖model‖ (Euclidean norms). A zero model
// (untrained network with zero init) yields +Inf so early updates are always
// significant, matching Gaia's behaviour at cold start.
func Significance(update, model []float64) (float64, error) {
	if len(update) != len(model) {
		return 0, ErrLengthMismatch
	}
	var nu, nm float64
	for i, u := range update {
		nu += u * u
		nm += model[i] * model[i]
	}
	//cmfl:lint-ignore floateq exact-zero norm guard: +Inf significance for a zero model
	if nm == 0 {
		return math.Inf(1), nil
	}
	return math.Sqrt(nu / nm), nil
}

// Filter gates uploads by update significance. Stateless and safe for
// concurrent use.
type Filter struct {
	threshold core.Schedule
}

// NewFilter builds a Gaia filter with the given significance-threshold
// schedule. The paper tunes a fixed threshold per workload; a decaying
// schedule can be supplied for ablations.
func NewFilter(threshold core.Schedule) *Filter {
	return &Filter{threshold: threshold}
}

// Name implements the fl.UploadFilter interface.
func (f *Filter) Name() string { return "gaia" }

// Check decides whether a local update should be uploaded in round t.
// Gaia ignores the global-update feedback entirely.
func (f *Filter) Check(local, model, prevGlobal []float64, t int) (core.Decision, error) {
	sig, err := Significance(local, model)
	if err != nil {
		return core.Decision{}, err
	}
	return core.Decision{Upload: sig >= f.threshold.At(t), Metric: sig}, nil
}
