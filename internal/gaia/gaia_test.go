package gaia

import (
	"math"
	"testing"
	"testing/quick"

	"cmfl/internal/core"
	"cmfl/internal/xrand"
)

func TestSignificanceKnown(t *testing.T) {
	got, err := Significance([]float64{3, 4}, []float64{5, 0})
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("Significance = %v, %v; want 1", got, err)
	}
}

func TestSignificanceZeroModel(t *testing.T) {
	got, err := Significance([]float64{1}, []float64{0})
	if err != nil || !math.IsInf(got, 1) {
		t.Fatalf("Significance with zero model = %v; want +Inf", got)
	}
}

func TestSignificanceLengthMismatch(t *testing.T) {
	if _, err := Significance([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

// TestSignificanceScaleSensitive documents the paper's critique: unlike CMFL
// relevance, Gaia's significance scales linearly with the learning rate.
func TestSignificanceScaleSensitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(30)
		u := rng.NormVec(n, 0, 1)
		m := rng.NormVec(n, 1, 1)
		su := make([]float64, n)
		for i := range u {
			su[i] = 2 * u[i]
		}
		s1, err1 := Significance(u, m)
		s2, err2 := Significance(su, m)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(s2-2*s1) < 1e-9*math.Max(1, s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSignificanceDirectionBlind shows Gaia cannot distinguish an update
// aligned with the global trend from its exact negation — CMFL's core
// argument for the relevance measure.
func TestSignificanceDirectionBlind(t *testing.T) {
	rng := xrand.New(3)
	n := 20
	u := rng.NormVec(n, 0, 1)
	m := rng.NormVec(n, 1, 0.5)
	neg := make([]float64, n)
	for i := range u {
		neg[i] = -u[i]
	}
	a, err := Significance(u, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Significance(neg, m)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("Significance(u)=%v vs Significance(-u)=%v; Gaia should be direction-blind", a, b)
	}
	ra, _ := core.Relevance(u, u)
	rb, _ := core.Relevance(neg, u)
	if ra != 1 || rb != 0 {
		t.Fatalf("Relevance distinguishes direction: got %v and %v, want 1 and 0", ra, rb)
	}
}

func TestFilterThresholding(t *testing.T) {
	f := NewFilter(core.Constant(0.5))
	if f.Name() != "gaia" {
		t.Fatalf("Name = %q, want gaia", f.Name())
	}
	// ||u||/||m|| = 1 >= 0.5 -> upload.
	d, err := f.Check([]float64{3, 4}, []float64{5, 0}, nil, 1)
	if err != nil || !d.Upload {
		t.Fatalf("significant update skipped: %+v, %v", d, err)
	}
	// ||u||/||m|| = 0.1 < 0.5 -> skip.
	d, err = f.Check([]float64{0.3, 0.4}, []float64{5, 0}, nil, 1)
	if err != nil || d.Upload {
		t.Fatalf("insignificant update uploaded: %+v, %v", d, err)
	}
}

func TestFilterIgnoresFeedback(t *testing.T) {
	f := NewFilter(core.Constant(0.5))
	aligned, err := f.Check([]float64{1, 1}, []float64{1, 1}, []float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	opposed, err := f.Check([]float64{1, 1}, []float64{1, 1}, []float64{-1, -1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if aligned.Upload != opposed.Upload || aligned.Metric != opposed.Metric {
		t.Fatal("Gaia must ignore the global-update feedback")
	}
}

func TestFilterErrorPropagation(t *testing.T) {
	f := NewFilter(core.Constant(0.5))
	if _, err := f.Check([]float64{1}, []float64{1, 2}, nil, 1); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}
