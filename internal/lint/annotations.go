package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Annotation and suppression conventions. Both are ordinary //-comments so
// they survive gofmt and need no build-system support:
//
//	//cmfl:hotpath
//	    On a function's doc comment: the body (and module callees one
//	    level deep) must be allocation-free. Checked by hotpathalloc.
//
//	//cmfl:deterministic
//	    On a function's doc comment: the body must not iterate maps, read
//	    wall-clock time, or draw from the global math/rand source — float
//	    accumulation order there is part of the reproducibility contract.
//	    Checked by deterministicorder.
//
//	//cmfl:lint-ignore <analyzer> <reason>
//	    Silences <analyzer>'s findings on the comment's line and the line
//	    below it. The reason is mandatory; a marker without one is itself
//	    reported.
//
//	//cmfl:api-change <reason>
//	    Anywhere in a public package: waives the apicompat baseline for
//	    that package this run, acknowledging an intentional breaking
//	    change. Remove it after regenerating the baseline.
//
//	//cmfl:order-pinned <reason>
//	    On (or directly above) an order-sensitive float accumulation, or on
//	    any of its enclosing loops: asserts the accumulation order is part
//	    of the algorithm's definition (e.g. fl.Run's ascending-client
//	    FedAvg order is the parity reference). floatsum honors the marker
//	    only when it can prove every enclosing loop drains in deterministic
//	    order; a reasonless marker, or one on a nondeterministic drain, is
//	    itself a finding.

const (
	markerHotPath       = "cmfl:hotpath"
	markerDeterministic = "cmfl:deterministic"
	markerIgnore        = "cmfl:lint-ignore"
	markerAPIChange     = "cmfl:api-change"
	markerOrderPinned   = "cmfl:order-pinned"
)

// funcHasMarker reports whether a function declaration's doc comment
// carries the given //cmfl: directive.
func funcHasMarker(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// generatedRe is the Go convention for generated files
// (https://go.dev/s/generatedcode).
var generatedRe = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// isGenerated reports whether the file carries the standard generated-code
// marker; such files are never analyzed.
func isGenerated(f *ast.File) bool {
	for _, group := range f.Comments {
		if group.End() >= f.Package {
			break
		}
		for _, c := range group.List {
			if generatedRe.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// suppressionIndex maps (file, line, analyzer) to lint-ignore markers. It
// also carries the malformed-marker findings discovered while scanning and
// the serializable entry list the cache stores per package.
type suppressionIndex struct {
	byKey     map[suppressionKey]bool
	malformed []Finding
	entries   []SuppressionEntry
}

type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// SuppressionEntry is one well-formed //cmfl:lint-ignore marker in cache
// form.
type SuppressionEntry struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
}

func newSuppressionIndex() *suppressionIndex {
	return &suppressionIndex{byKey: make(map[suppressionKey]bool)}
}

// add records one well-formed marker.
func (s *suppressionIndex) add(e SuppressionEntry) {
	s.byKey[suppressionKey{e.File, e.Line, e.Analyzer}] = true
	s.entries = append(s.entries, e)
}

// addFile scans a file's comments for lint-ignore markers. Malformed
// markers (no analyzer, no reason) become findings under the
// pseudo-analyzer name "lint", carried on the index.
func (s *suppressionIndex) addFile(fset *token.FileSet, f *ast.File) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, markerIgnore)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				s.malformed = append(s.malformed, Finding{
					Analyzer: "lint",
					File:     pos.Filename,
					Line:     pos.Line,
					Column:   pos.Column,
					Message:  "malformed //cmfl:lint-ignore: want `//cmfl:lint-ignore <analyzer> <reason>`",
				})
				continue
			}
			s.add(SuppressionEntry{File: pos.Filename, Line: pos.Line, Analyzer: fields[0]})
		}
	}
}

// matches reports whether a finding is silenced: a marker for its analyzer
// sits on the same line or the line directly above.
func (s *suppressionIndex) matches(f Finding) bool {
	return s.byKey[suppressionKey{f.File, f.Line, f.Analyzer}] ||
		s.byKey[suppressionKey{f.File, f.Line - 1, f.Analyzer}]
}
