package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// APICompat gates the exported surface of the public packages against a
// committed snapshot, benchmarks/api_baseline.json. Removing or changing
// the declaration of a symbol the baseline records is a finding unless the
// package carries a //cmfl:api-change <reason> marker — the PR-7 MIGRATION
// discipline (breaking changes ship with a written migration) turned into
// a gate cmfl-vet enforces instead of reviewers remembering it.
//
// Additions are always fine: the baseline is a floor, not a mirror. To
// accept an intentional break, add the marker to any file of the package
// (with the reason that would otherwise go in MIGRATION.md) and regenerate
// the snapshot with `cmfl-vet -write-api-baseline`.
//
// Declarations are rendered without parameter names, so renaming a
// parameter is not a break; changing its type is.
var APICompat = &Analyzer{
	Name:  "apicompat",
	Doc:   "exported API of public packages must not break the committed baseline without a //cmfl:api-change marker",
	Run:   runAPICompat,
	Merge: mergeAPICompat,
}

// APIPackages are the packages whose exported surface is under contract.
// (Var, not const: the fixture tests extend it.)
var APIPackages = map[string]bool{
	"cmfl":                    true,
	"cmfl/internal/compress":  true,
	"cmfl/internal/emu":       true,
	"cmfl/internal/emu/shard": true,
	"cmfl/internal/fl":        true,
	"cmfl/internal/mtl":       true,
	"cmfl/internal/telemetry": true,
}

// APIBaselinePath locates the snapshot, relative to the module root
// (absolute in tests).
var APIBaselinePath = filepath.Join("benchmarks", "api_baseline.json")

// apiBaseline is the on-disk snapshot schema.
type apiBaseline struct {
	Comment  string                       `json:"comment"`
	Packages map[string]map[string]string `json:"packages"`
}

const apiBaselineComment = "exported API snapshot enforced by cmfl-vet apicompat; regenerate with cmfl-vet -write-api-baseline after an intentional //cmfl:api-change"

func runAPICompat(pass *Pass) {
	if !APIPackages[pass.Pkg.Path] {
		return
	}
	collectAPIChangeMarkers(pass)

	scope := pass.Pkg.Types.Scope()
	qual := types.RelativeTo(pass.Pkg.Types)
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		for _, sym := range renderAPISymbol(obj, qual) {
			position := pass.Fset().Position(sym.pos)
			pass.Facts.API = append(pass.Facts.API, APISymbolFact{
				Sym: sym.key, Decl: sym.decl,
				File: position.Filename, Line: position.Line, Column: position.Column,
			})
		}
	}
}

// apiSym is one rendered surface entry before position resolution.
type apiSym struct {
	key  string
	decl string
	pos  token.Pos
}

// renderAPISymbol flattens one scope object into surface entries: the
// object itself, plus one entry per exported field and method for types
// (so moving a field is attributed to the field, not a whole-struct diff).
func renderAPISymbol(obj types.Object, qual types.Qualifier) []apiSym {
	switch obj := obj.(type) {
	case *types.Const:
		return []apiSym{{obj.Name(), "const " + obj.Name() + " " + types.TypeString(obj.Type(), qual), obj.Pos()}}
	case *types.Var:
		return []apiSym{{obj.Name(), "var " + obj.Name() + " " + types.TypeString(obj.Type(), qual), obj.Pos()}}
	case *types.Func:
		sig, _ := obj.Type().(*types.Signature)
		return []apiSym{{obj.Name(), "func " + obj.Name() + sigString(sig, qual), obj.Pos()}}
	case *types.TypeName:
		if obj.IsAlias() {
			return []apiSym{{obj.Name(), "type " + obj.Name() + " = " + types.TypeString(obj.Type(), qual), obj.Pos()}}
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return nil
		}
		var out []apiSym
		switch u := named.Underlying().(type) {
		case *types.Struct:
			out = append(out, apiSym{obj.Name(), "type " + obj.Name() + " struct", obj.Pos()})
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if !f.Exported() {
					continue
				}
				out = append(out, apiSym{
					obj.Name() + "." + f.Name(),
					f.Name() + " " + types.TypeString(f.Type(), qual),
					f.Pos(),
				})
			}
		case *types.Interface:
			out = append(out, apiSym{obj.Name(), "type " + obj.Name() + " interface", obj.Pos()})
			for i := 0; i < u.NumMethods(); i++ {
				m := u.Method(i)
				if !m.Exported() {
					continue
				}
				sig, _ := m.Type().(*types.Signature)
				out = append(out, apiSym{
					obj.Name() + "." + m.Name(),
					m.Name() + sigString(sig, qual),
					m.Pos(),
				})
			}
			return out // interface methods are the method set; skip NumMethods below
		default:
			out = append(out, apiSym{obj.Name(), "type " + obj.Name() + " " + types.TypeString(named.Underlying(), qual), obj.Pos()})
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if !m.Exported() {
				continue
			}
			sig, _ := m.Type().(*types.Signature)
			out = append(out, apiSym{
				obj.Name() + "." + m.Name(),
				"func (" + obj.Name() + ") " + m.Name() + sigString(sig, qual),
				m.Pos(),
			})
		}
		return out
	}
	return nil
}

// sigString renders a signature without parameter names: renames are not
// API breaks, type changes are.
func sigString(sig *types.Signature, qual types.Qualifier) string {
	if sig == nil {
		return "(?)"
	}
	var b strings.Builder
	b.WriteByte('(')
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		t := params.At(i).Type()
		if sig.Variadic() && i == params.Len()-1 {
			if sl, ok := t.(*types.Slice); ok {
				b.WriteString("...")
				t = sl.Elem()
			}
		}
		b.WriteString(types.TypeString(t, qual))
	}
	b.WriteByte(')')
	res := sig.Results()
	switch {
	case res.Len() == 1:
		b.WriteString(" " + types.TypeString(res.At(0).Type(), qual))
	case res.Len() > 1:
		b.WriteString(" (")
		for i := 0; i < res.Len(); i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(types.TypeString(res.At(i).Type(), qual))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// collectAPIChangeMarkers records //cmfl:api-change markers (which waive
// this package's baseline for the run) and reports reasonless ones: the
// marker exists to carry the migration story.
func collectAPIChangeMarkers(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+markerAPIChange)
				if !ok {
					continue
				}
				reason := strings.TrimSpace(text)
				if reason == "" {
					pass.Reportf(c.Pos(), "cmfl:api-change marker without a reason: state what breaks and how callers migrate")
					continue
				}
				position := pass.Fset().Position(c.Pos())
				pass.Facts.APIChanges = append(pass.Facts.APIChanges, APIChangeFact{
					Reason: reason,
					File:   position.Filename, Line: position.Line, Column: position.Column,
				})
			}
		}
	}
}

// mergeAPICompat diffs every package's recorded surface against the
// committed baseline. Packages absent from the baseline (new public
// packages), packages with no recorded facts (filtered out of this run),
// and packages carrying an api-change marker are skipped.
func mergeAPICompat(mp *MergePass) {
	base, baselineFile, err := loadAPIBaseline(mp.RootDir)
	if err != nil {
		mp.Reportf(baselineFile, 1, 1, "cannot read API baseline: %v", err)
		return
	}
	if base == nil {
		return // no baseline committed yet: nothing to enforce
	}
	for _, t := range mp.Targets {
		want, ok := base.Packages[t.Path]
		if !ok || len(t.Facts.API) == 0 || len(t.Facts.APIChanges) > 0 {
			continue
		}
		got := make(map[string]*APISymbolFact, len(t.Facts.API))
		for i := range t.Facts.API {
			got[t.Facts.API[i].Sym] = &t.Facts.API[i]
		}
		var syms []string
		for sym := range want {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			cur, present := got[sym]
			switch {
			case !present:
				mp.Reportf(baselineFile, 1, 1,
					"%s: exported symbol %s was removed (baseline: %q): breaking change needs //cmfl:api-change <reason> and a regenerated baseline",
					t.Path, sym, want[sym])
			case cur.Decl != want[sym]:
				mp.Reportf(cur.File, cur.Line, cur.Column,
					"%s: exported symbol %s changed from %q to %q: breaking change needs //cmfl:api-change <reason> and a regenerated baseline",
					t.Path, sym, want[sym], cur.Decl)
			}
		}
	}
}

// loadAPIBaseline reads the snapshot; a missing file is (nil, path, nil).
func loadAPIBaseline(rootDir string) (*apiBaseline, string, error) {
	path := APIBaselinePath
	if !filepath.IsAbs(path) {
		path = filepath.Join(rootDir, path)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, path, nil
	}
	if err != nil {
		return nil, path, err
	}
	var base apiBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, path, fmt.Errorf("%s: %w", path, err)
	}
	return &base, path, nil
}

// WriteAPIBaseline snapshots the API facts of a run into the baseline
// file. Packages with no recorded surface are omitted (they were not in
// the run's targets) — regenerate from a full run.
func WriteAPIBaseline(rootDir string, tf []*TargetFacts) error {
	base := apiBaseline{Comment: apiBaselineComment, Packages: make(map[string]map[string]string)}
	for _, t := range tf {
		if len(t.Facts.API) == 0 {
			continue
		}
		m := make(map[string]string, len(t.Facts.API))
		for _, s := range t.Facts.API {
			m[s.Sym] = s.Decl
		}
		base.Packages[t.Path] = m
	}
	path := APIBaselinePath
	if !filepath.IsAbs(path) {
		path = filepath.Join(rootDir, path)
	}
	data, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
