package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/build"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// The cache makes cmfl-vet cheap enough to run on every edit: per-target
// JSON records under .cmflvet-cache/ hold the pass-level findings (before
// suppression), the package's suppression markers, and its merge facts.
// When every target's record is valid, the run replays from the records
// without parsing or type-checking a single file — Load dominates a cold
// run, so a warm run is close to free. Merge-phase conclusions (duplicate
// metric families, stream-purpose collisions) are deliberately NOT cached:
// they are recomputed from the cached facts, which is what keeps them
// correct when the set of packages contributing facts changes.
//
// A record's key hashes the target's own file contents plus the content
// hashes of its transitive in-module dependencies AND its transitive
// reverse importers. The reverse direction is load-bearing: concsafety's
// verdict on a telemetry field depends on which emu goroutines write it,
// so an emu edit must invalidate telemetry's record even though telemetry
// imports nothing from emu. Any package whose code can reach a target's
// functions transitively imports it, so the two closures bound every
// cross-package input to the target's analysis. The key also folds in the
// analyzer list and the full target set, because merge facts and origin
// contexts are only comparable between runs over the same scope.
//
// Invalidation is per-record, re-analysis is whole-run: a single stale
// record forces a full cold run. Partial replay is unsound in general —
// the call graph and origin sets are module-wide — and the repo is small
// enough that the all-or-nothing policy costs little.

// cacheSchemaVersion invalidates every record when analyzer semantics or
// the record layout change. Bump it alongside such changes.
// v2: protostate/lockorder/exhaustive/apicompat facts joined the record.
const cacheSchemaVersion = "cmflvet-cache-v3"

// DefaultCacheDir is the conventional cache location, relative to the
// module root.
const DefaultCacheDir = ".cmflvet-cache"

// RunOptions configures RunModule.
type RunOptions struct {
	// CacheDir is the cache directory (relative paths resolve against the
	// module root). Empty disables caching.
	CacheDir string
	// Stats attaches a RunStats to the Result.
	Stats bool
	// PkgFilter, when non-empty, keeps only targets whose import path
	// contains it as a substring.
	PkgFilter string
	// DiffRef, when non-empty, narrows the targets to the forward+reverse
	// import closure of the packages whose files differ from the given git
	// ref (plus untracked files). Diff runs cache under a separate
	// directory: their target set, and therefore their keys, differ from
	// full runs.
	DiffRef string
	// WriteAPIBaseline regenerates benchmarks/api_baseline.json from this
	// run's apicompat facts after analysis.
	WriteAPIBaseline bool
}

// cacheRecord is one target package's serialized analysis. File paths are
// stored module-root-relative (slash-separated) so records survive a
// checkout moving — CI restores the cache into a fresh workspace.
type cacheRecord struct {
	Version      string             `json:"version"`
	Key          string             `json:"key"`
	Path         string             `json:"path"`
	Findings     []Finding          `json:"findings,omitempty"`
	Malformed    []Finding          `json:"malformed,omitempty"`
	Suppressions []SuppressionEntry `json:"suppressions,omitempty"`
	Facts        *PackageFacts      `json:"facts"`
}

// RunModule is the cmfl-vet entry point: scan the module, consult the
// cache, and either replay warm or load-and-analyze cold. Findings are
// identical either way.
func RunModule(dir string, patterns []string, analyzers []*Analyzer, opts RunOptions) (Result, error) {
	wallStart := time.Now()
	scan, err := scanModule(dir, patterns)
	if err != nil {
		return Result{}, err
	}
	targets := scan.targets
	if opts.PkgFilter != "" {
		kept := targets[:0:0]
		for _, t := range targets {
			if strings.Contains(t, opts.PkgFilter) {
				kept = append(kept, t)
			}
		}
		targets = kept
	}
	if opts.DiffRef != "" {
		changed, err := gitChangedFiles(scan.root, opts.DiffRef)
		if err != nil {
			return Result{}, err
		}
		targets = affectedTargets(scan, targets, changed)
	}
	stats := &RunStats{}
	attach := func(res Result) Result {
		if opts.Stats {
			stats.WallMS = int64(time.Since(wallStart) / time.Millisecond)
			res.Stats = stats
		}
		return res
	}
	if len(targets) == 0 {
		return attach(finish(nil, newSuppressionIndex(), nil)), nil
	}

	version := cacheSchemaVersion + "|" + strings.Join(analyzerNames(analyzers), ",")
	keys := scan.keys(version, targets)

	cacheDir := ""
	if opts.CacheDir != "" {
		cacheDir = opts.CacheDir
		if !filepath.IsAbs(cacheDir) {
			cacheDir = filepath.Join(scan.root, cacheDir)
		}
		if opts.DiffRef != "" {
			// Diff runs hash a narrower target set; give them their own
			// records instead of churning the full run's.
			cacheDir += "-diff"
		}
		records := readCacheRecords(cacheDir, scan, targets, version, keys)
		stats.CacheHits = len(records)
		stats.CacheMisses = len(targets) - len(records)
		if len(records) == len(targets) {
			res, tf := replayWarm(targets, analyzers, records, stats, scan.root)
			if opts.WriteAPIBaseline {
				if err := WriteAPIBaseline(scan.root, tf); err != nil {
					return Result{}, err
				}
			}
			return attach(res), nil
		}
	}

	loadStart := time.Now()
	pkgs, mod, err := Load(dir, targets)
	if err != nil {
		return Result{}, err
	}
	stats.LoadMS = int64(time.Since(loadStart) / time.Millisecond)

	perPkg, merged, tf := runPasses(mod, pkgs, analyzers, stats)
	supp := mod.Suppressions()
	if cacheDir != "" {
		writeCacheRecords(cacheDir, scan, version, keys, pkgs, perPkg, tf, supp)
	}
	if opts.WriteAPIBaseline {
		if err := WriteAPIBaseline(scan.root, tf); err != nil {
			return Result{}, err
		}
	}
	var findings []Finding
	for _, pr := range perPkg {
		findings = append(findings, pr.findings...)
	}
	findings = append(findings, merged...)
	return attach(finish(findings, supp, nil)), nil
}

// replayWarm reconstructs the Result from cached records: pass findings
// and suppressions verbatim, merge phase recomputed over cached facts.
func replayWarm(targets []string, analyzers []*Analyzer, records map[string]*cacheRecord, stats *RunStats, rootDir string) (Result, []*TargetFacts) {
	supp := newSuppressionIndex()
	var findings []Finding
	tf := make([]*TargetFacts, 0, len(targets))
	for _, t := range targets {
		rec := records[t]
		findings = append(findings, rec.Findings...)
		supp.malformed = append(supp.malformed, rec.Malformed...)
		for _, e := range rec.Suppressions {
			supp.add(e)
		}
		facts := rec.Facts
		if facts == nil {
			facts = &PackageFacts{}
		}
		tf = append(tf, &TargetFacts{Path: t, Facts: facts})
	}
	durations := make([]int64, len(analyzers))
	merged := runMerges(analyzers, tf, durations, rootDir)
	findings = append(findings, merged...)

	counts := make(map[string]int)
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	for ai, a := range analyzers {
		stats.Analyzers = append(stats.Analyzers, AnalyzerStat{
			Name:     a.Name,
			MS:       durations[ai] / int64(time.Millisecond),
			Findings: counts[a.Name],
		})
	}
	return finish(findings, supp, nil), tf
}

// readCacheRecords loads the valid records: version and key must match and
// the stored path must agree. Paths are absolutized against the module
// root on the way in so cached and fresh findings compare equal.
func readCacheRecords(cacheDir string, scan *moduleScan, targets []string, version string, keys map[string]string) map[string]*cacheRecord {
	records := make(map[string]*cacheRecord)
	for _, t := range targets {
		data, err := os.ReadFile(filepath.Join(cacheDir, recordFileName(t)))
		if err != nil {
			continue
		}
		var rec cacheRecord
		if json.Unmarshal(data, &rec) != nil {
			continue
		}
		if rec.Version != version || rec.Key != keys[t] || rec.Path != t {
			continue
		}
		for i := range rec.Findings {
			rec.Findings[i].File = scan.abs(rec.Findings[i].File)
		}
		for i := range rec.Malformed {
			rec.Malformed[i].File = scan.abs(rec.Malformed[i].File)
		}
		for i := range rec.Suppressions {
			rec.Suppressions[i].File = scan.abs(rec.Suppressions[i].File)
		}
		if rec.Facts != nil {
			for i := range rec.Facts.Metrics {
				rec.Facts.Metrics[i].File = scan.abs(rec.Facts.Metrics[i].File)
			}
			for i := range rec.Facts.Streams {
				rec.Facts.Streams[i].File = scan.abs(rec.Facts.Streams[i].File)
			}
			for i := range rec.Facts.Proto {
				rec.Facts.Proto[i].File = scan.abs(rec.Facts.Proto[i].File)
			}
			for i := range rec.Facts.LockEdges {
				rec.Facts.LockEdges[i].File = scan.abs(rec.Facts.LockEdges[i].File)
			}
			for i := range rec.Facts.API {
				rec.Facts.API[i].File = scan.abs(rec.Facts.API[i].File)
			}
			for i := range rec.Facts.APIChanges {
				rec.Facts.APIChanges[i].File = scan.abs(rec.Facts.APIChanges[i].File)
			}
			for i := range rec.Facts.FloatSums {
				rec.Facts.FloatSums[i].File = scan.abs(rec.Facts.FloatSums[i].File)
			}
			for i := range rec.Facts.Clocks {
				rec.Facts.Clocks[i].File = scan.abs(rec.Facts.Clocks[i].File)
			}
			for i := range rec.Facts.GoLife {
				rec.Facts.GoLife[i].File = scan.abs(rec.Facts.GoLife[i].File)
			}
		}
		records[t] = &rec
	}
	return records
}

// writeCacheRecords persists one record per analyzed target. Suppression
// entries and malformed markers are sliced per target by file ownership;
// pass findings land in the record of the package whose pass produced
// them, wherever they are positioned.
func writeCacheRecords(cacheDir string, scan *moduleScan, version string, keys map[string]string, pkgs []*Package, perPkg []passResult, tf []*TargetFacts, supp *suppressionIndex) {
	if os.MkdirAll(cacheDir, 0o755) != nil {
		return // caching is best-effort; the run already has its findings
	}
	fileOwner := make(map[string]string)
	for _, pkg := range pkgs {
		if sp := scan.pkgs[pkg.Path]; sp != nil {
			for _, f := range sp.files {
				fileOwner[f] = pkg.Path
			}
		}
	}
	suppByPkg := make(map[string][]SuppressionEntry)
	for _, e := range supp.entries {
		if owner, ok := fileOwner[e.File]; ok {
			e.File = scan.rel(e.File)
			suppByPkg[owner] = append(suppByPkg[owner], e)
		}
	}
	malByPkg := make(map[string][]Finding)
	for _, f := range supp.malformed {
		if owner, ok := fileOwner[f.File]; ok {
			f.File = scan.rel(f.File)
			malByPkg[owner] = append(malByPkg[owner], f)
		}
	}
	for i, pkg := range pkgs {
		rec := cacheRecord{
			Version:      version,
			Key:          keys[pkg.Path],
			Path:         pkg.Path,
			Malformed:    malByPkg[pkg.Path],
			Suppressions: suppByPkg[pkg.Path],
			Facts:        relFacts(scan, tf[i].Facts),
		}
		for _, f := range perPkg[i].findings {
			f.File = scan.rel(f.File)
			rec.Findings = append(rec.Findings, f)
		}
		data, err := json.Marshal(&rec)
		if err != nil {
			continue
		}
		//cmfl:lint-ignore errcheck caching is best-effort; a failed write only costs the next run a cold start
		_ = os.WriteFile(filepath.Join(cacheDir, recordFileName(pkg.Path)), data, 0o644)
	}
}

// relFacts returns a copy of facts with module-root-relative file paths.
func relFacts(scan *moduleScan, facts *PackageFacts) *PackageFacts {
	out := &PackageFacts{}
	for _, m := range facts.Metrics {
		m.File = scan.rel(m.File)
		out.Metrics = append(out.Metrics, m)
	}
	for _, s := range facts.Streams {
		s.File = scan.rel(s.File)
		out.Streams = append(out.Streams, s)
	}
	for _, p := range facts.Proto {
		p.File = scan.rel(p.File)
		out.Proto = append(out.Proto, p)
	}
	for _, e := range facts.LockEdges {
		e.File = scan.rel(e.File)
		out.LockEdges = append(out.LockEdges, e)
	}
	for _, a := range facts.API {
		a.File = scan.rel(a.File)
		out.API = append(out.API, a)
	}
	for _, c := range facts.APIChanges {
		c.File = scan.rel(c.File)
		out.APIChanges = append(out.APIChanges, c)
	}
	for _, s := range facts.FloatSums {
		s.File = scan.rel(s.File)
		out.FloatSums = append(out.FloatSums, s)
	}
	for _, c := range facts.Clocks {
		c.File = scan.rel(c.File)
		out.Clocks = append(out.Clocks, c)
	}
	for _, g := range facts.GoLife {
		g.File = scan.rel(g.File)
		out.GoLife = append(out.GoLife, g)
	}
	return out
}

// recordFileName flattens an import path into one cache file name.
func recordFileName(importPath string) string {
	return strings.ReplaceAll(importPath, "/", "__") + ".json"
}

func analyzerNames(analyzers []*Analyzer) []string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return names
}

// scannedPkg is one package's pre-load view: just file names, contents
// hash, and in-module imports — enough to compute cache keys without
// type-checking anything.
type scannedPkg struct {
	path    string
	dir     string
	files   []string // absolute, sorted
	imports []string // in-module import paths, sorted, deduped
	hash    string   // content hash over own files
}

// moduleScan is the pre-load survey of the module: every buildable package
// (plus explicitly named targets such as testdata fixtures, and anything
// they transitively import) with content hashes and the import graph.
type moduleScan struct {
	root    string
	modPath string
	targets []string
	pkgs    map[string]*scannedPkg
}

// scanModule surveys the module with parser.ImportsOnly — a small fraction
// of full Load — resolving the same patterns Load would.
func scanModule(dir string, patterns []string) (*moduleScan, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ld := &loader{mod: &Module{RootDir: root, Path: modPath}, ctx: build.Default}
	targets, err := ld.expand(dir, patterns)
	if err != nil {
		return nil, err
	}
	all, err := ld.walkModule()
	if err != nil {
		return nil, err
	}
	scan := &moduleScan{root: root, modPath: modPath, targets: targets, pkgs: make(map[string]*scannedPkg)}
	fset := token.NewFileSet()
	queue := append(append([]string{}, all...), targets...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if _, ok := scan.pkgs[p]; ok {
			continue
		}
		d, err := ld.importPathToDir(p)
		if err != nil {
			return nil, err
		}
		names, err := ld.listGoFiles(d)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue // a target with no files fails in Load with a better error
		}
		sp := &scannedPkg{path: p, dir: d}
		h := sha256.New()
		imports := make(map[string]bool)
		for _, name := range names {
			full := filepath.Join(d, name)
			sp.files = append(sp.files, full)
			data, err := os.ReadFile(full)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(h, "%s %d\n", name, len(data))
			h.Write(data)
			f, err := parser.ParseFile(fset, full, data, parser.ImportsOnly)
			if err != nil {
				return nil, fmt.Errorf("lint: scanning %s: %w", full, err)
			}
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					if !imports[ip] {
						imports[ip] = true
						queue = append(queue, ip)
					}
				}
			}
		}
		sp.hash = hex.EncodeToString(h.Sum(nil))
		for ip := range imports {
			sp.imports = append(sp.imports, ip)
		}
		sort.Strings(sp.imports)
		scan.pkgs[p] = sp
	}
	return scan, nil
}

// keys computes one cache key per target: version, the target set, the
// target's own content hash, and the content hashes of its forward and
// reverse transitive closures over in-module imports.
func (s *moduleScan) keys(version string, targets []string) map[string]string {
	fwd := make(map[string][]string, len(s.pkgs))
	rev := make(map[string][]string, len(s.pkgs))
	for p, sp := range s.pkgs {
		for _, ip := range sp.imports {
			fwd[p] = append(fwd[p], ip)
			rev[ip] = append(rev[ip], p)
		}
	}
	sortedTargets := append([]string(nil), targets...)
	sort.Strings(sortedTargets)
	th := sha256.Sum256([]byte(strings.Join(sortedTargets, "\n")))
	targetsHash := hex.EncodeToString(th[:])

	keys := make(map[string]string, len(targets))
	for _, t := range targets {
		sp := s.pkgs[t]
		if sp == nil {
			keys[t] = "" // unscannable: never a cache hit
			continue
		}
		deps := make(map[string]bool)
		closure(fwd, t, deps)
		closure(rev, t, deps)
		delete(deps, t)
		sorted := make([]string, 0, len(deps))
		for d := range deps {
			sorted = append(sorted, d)
		}
		sort.Strings(sorted)

		h := sha256.New()
		fmt.Fprintf(h, "%s\n%s\n%s %s\n", version, targetsHash, t, sp.hash)
		for _, d := range sorted {
			dh := ""
			if dsp := s.pkgs[d]; dsp != nil {
				dh = dsp.hash
			}
			fmt.Fprintf(h, "%s %s\n", d, dh)
		}
		keys[t] = hex.EncodeToString(h.Sum(nil))
	}
	return keys
}

// closure accumulates the transitive reach of start over edges into out.
func closure(edges map[string][]string, start string, out map[string]bool) {
	stack := []string{start}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range edges[p] {
			if !out[q] {
				out[q] = true
				stack = append(stack, q)
			}
		}
	}
}

// rel maps an absolute path under the module root to a slash-relative one.
func (s *moduleScan) rel(path string) string {
	r, err := filepath.Rel(s.root, path)
	if err != nil || r == ".." || strings.HasPrefix(r, ".."+string(filepath.Separator)) {
		return path
	}
	return filepath.ToSlash(r)
}

// abs undoes rel.
func (s *moduleScan) abs(path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(s.root, filepath.FromSlash(path))
}
