package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeCacheTestModule lays out a two-package throwaway module where b
// imports a: the shape needed to prove both directions of invalidation.
func writeCacheTestModule(t testing.TB) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		full := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module cachetest\n\ngo 1.24\n")
	write("a/a.go", `package a

import "os"

func Touch(path string) {
	_ = os.Remove(path)
}

func Quiet(path string) {
	//cmfl:lint-ignore errcheck best-effort cleanup in fixture
	_ = os.Remove(path)
}
`)
	write("b/b.go", `package b

import "cachetest/a"

func Use() {
	a.Touch("x")
}
`)
	return dir
}

func appendToFile(t *testing.T, path, content string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(content); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheWarmReplayAndInvalidation drives the full cache lifecycle: cold
// populate, warm replay with identical results, invalidation when an
// importer changes (the reverse-dependency direction), and re-analysis
// picking up a newly introduced finding.
func TestCacheWarmReplayAndInvalidation(t *testing.T) {
	dir := writeCacheTestModule(t)
	analyzers := []*Analyzer{ErrCheck}
	opts := RunOptions{CacheDir: DefaultCacheDir, Stats: true}

	cold, err := RunModule(dir, []string{"./..."}, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheHits != 0 || cold.Stats.CacheMisses != 2 {
		t.Errorf("cold cache = %d hit / %d miss, want 0/2", cold.Stats.CacheHits, cold.Stats.CacheMisses)
	}
	if len(cold.Findings) != 1 || cold.Suppressed != 1 {
		t.Fatalf("cold run = %d finding(s), %d suppressed, want 1 and 1: %v", len(cold.Findings), cold.Suppressed, cold.Findings)
	}

	warm, err := RunModule(dir, []string{"./..."}, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits != 2 || warm.Stats.CacheMisses != 0 {
		t.Errorf("warm cache = %d hit / %d miss, want 2/0", warm.Stats.CacheHits, warm.Stats.CacheMisses)
	}
	if !reflect.DeepEqual(cold.Findings, warm.Findings) || cold.Suppressed != warm.Suppressed {
		t.Errorf("warm replay diverged:\n  cold: %v (%d suppressed)\n  warm: %v (%d suppressed)",
			cold.Findings, cold.Suppressed, warm.Findings, warm.Suppressed)
	}

	// Editing the IMPORTER must invalidate the imported package's record
	// too: reverse dependencies feed goroutine origins and field-write
	// evidence, so b's content is part of a's key.
	appendToFile(t, filepath.Join(dir, "b", "b.go"), "\nfunc Use2() {\n\ta.Touch(\"y\")\n}\n")
	edited, err := RunModule(dir, []string{"./..."}, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if edited.Stats.CacheMisses != 2 {
		t.Errorf("after editing the importer: %d miss(es), want 2 (reverse deps invalidate too)", edited.Stats.CacheMisses)
	}
	if !reflect.DeepEqual(cold.Findings, edited.Findings) {
		t.Errorf("findings changed after a neutral edit:\n  before: %v\n  after: %v", cold.Findings, edited.Findings)
	}

	// A new violation in a must surface on the next (invalidated) run.
	appendToFile(t, filepath.Join(dir, "a", "a.go"), "\nfunc Touch2(path string) {\n\t_ = os.Remove(path)\n}\n")
	after, err := RunModule(dir, []string{"./..."}, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Findings) != 2 {
		t.Errorf("after adding a violation: %d finding(s), want 2: %v", len(after.Findings), after.Findings)
	}
}

// TestRunModulePkgFilter: -pkg narrows the target set by substring.
func TestRunModulePkgFilter(t *testing.T) {
	dir := writeCacheTestModule(t)
	res, err := RunModule(dir, []string{"./..."}, []*Analyzer{ErrCheck}, RunOptions{CacheDir: DefaultCacheDir, PkgFilter: "cachetest/b", Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 || res.Suppressed != 0 {
		t.Errorf("filtered run over b = %d finding(s), %d suppressed, want 0 and 0: %v", len(res.Findings), res.Suppressed, res.Findings)
	}
	if res.Stats.CacheMisses != 1 {
		t.Errorf("filtered run analyzed %d target(s), want 1", res.Stats.CacheMisses)
	}
}

// TestRunModuleWarmMatchesCold runs the full suite over the real module
// twice and demands bit-identical results from the warm replay — the
// acceptance criterion behind the BenchmarkCmflVet pair.
func TestRunModuleWarmMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	opts := RunOptions{CacheDir: t.TempDir(), Stats: true}
	root := filepath.Join("..", "..")
	cold, err := RunModule(root, []string{"./..."}, All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunModule(root, []string{"./..."}, All(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheMisses != 0 || warm.Stats.CacheHits == 0 {
		t.Errorf("second run was not warm: %d hit / %d miss", warm.Stats.CacheHits, warm.Stats.CacheMisses)
	}
	if !reflect.DeepEqual(cold.Findings, warm.Findings) || cold.Suppressed != warm.Suppressed {
		t.Errorf("warm replay diverged from cold run:\n  cold: %v (%d suppressed)\n  warm: %v (%d suppressed)",
			cold.Findings, cold.Suppressed, warm.Findings, warm.Suppressed)
	}
}

// BenchmarkCmflVetCold measures a full scan + load + analyze of the module
// with caching disabled.
func BenchmarkCmflVetCold(b *testing.B) {
	root := filepath.Join("..", "..")
	for i := 0; i < b.N; i++ {
		if _, err := RunModule(root, []string{"./..."}, All(), RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCmflVetWarm measures the cache replay path: scan, key check,
// merge phase, suppression — no parsing or type checking.
func BenchmarkCmflVetWarm(b *testing.B) {
	root := filepath.Join("..", "..")
	opts := RunOptions{CacheDir: b.TempDir()}
	if _, err := RunModule(root, []string{"./..."}, All(), opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunModule(root, []string{"./..."}, All(), opts); err != nil {
			b.Fatal(err)
		}
	}
}
