package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The call graph is the whole-module substrate the v2 analyzers share:
// hotpathalloc walks it to prove allocation freedom through entire call
// chains, concsafety uses its goroutine origins to decide which struct
// fields are written from more than one goroutine, and goroleak follows it
// from every `go` statement into the spawned body.
//
// Resolution is static and deliberately conservative:
//
//   - direct calls and method calls resolve through the type checker's Uses
//     map (concrete receivers and interface methods alike — interface
//     callees simply have no body to follow);
//   - calls through function-typed values are recorded as dynamic sites
//     (counted, never followed);
//   - a module function whose value is taken outside call position
//     (assigned, passed, stored) is treated as reachable from anywhere: it
//     joins the main-origin roots, since the analysis can no longer see its
//     callers.

// CallSite is one call expression inside a module function body.
type CallSite struct {
	Caller *FuncNode
	Call   *ast.CallExpr
	// Callee is the statically resolved target (possibly outside the
	// module); nil for dynamic calls through function values or builtins.
	Callee *types.Func
	// Spawn marks the call of a `go` statement: the callee runs on a new
	// goroutine, so effect and reach propagation treat the edge specially.
	Spawn bool
}

// FuncNode is one module function (or method) with a body.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Sites are the body's call sites in source order. Calls inside
	// non-spawned function literals are attributed to the enclosing
	// function (the literal may run on the same goroutine at any time);
	// calls inside `go func(){…}` literals belong to that spawn's origin
	// instead and are not listed here.
	Sites []*CallSite
	// Dynamic counts call sites that could not be resolved statically.
	Dynamic int
	// AddressTaken reports that the function's value escapes call position
	// somewhere in the module.
	AddressTaken bool
}

// Origin is one goroutine creation context: the synthetic main origin
// (index 0) or one `go` statement.
type Origin struct {
	Index int
	// Pos is the `go` statement's position (token.NoPos for main).
	Pos token.Pos
	// Desc renders as "main" or "go at file:line".
	Desc string
	// Go is the statement itself (nil for main).
	Go *ast.GoStmt
	// Lit is the spawned function literal, when the spawn target is one.
	Lit *ast.FuncLit
	// Pkg is the package hosting the spawn site (nil for main).
	Pkg *Package
	// roots are the statically resolved module functions the origin starts
	// executing (the spawned callee, or the callees reached directly from a
	// spawned literal's body).
	roots []*types.Func
}

// CallGraph is the module-wide graph plus the per-origin reach relation.
type CallGraph struct {
	mod   *Module
	Nodes map[*types.Func]*FuncNode
	// Origins lists main first, then every `go` statement in deterministic
	// position order.
	Origins []*Origin

	// reach[fn] is the bitset of origin indices whose transitive call
	// closure contains fn.
	reach map[*types.Func]originSet
}

// originSet is a small bitset over origin indices.
type originSet []uint64

func newOriginSet(n int) originSet { return make(originSet, (n+63)/64) }

func (s originSet) has(i int) bool { return s[i/64]&(1<<uint(i%64)) != 0 }

func (s originSet) add(i int) { s[i/64] |= 1 << uint(i%64) }

func (s originSet) union(o originSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | o[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// intersect narrows s to the origins also present in o, reporting whether
// anything remains.
func (s originSet) intersect(o originSet) bool {
	any := false
	for i := range s {
		s[i] &= o[i]
		any = any || s[i] != 0
	}
	return any
}

func (s originSet) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s originSet) clone() originSet {
	c := make(originSet, len(s))
	copy(c, s)
	return c
}

// CallGraph returns the module's call graph, building it on first use. The
// graph is shared by analyzers running in parallel; the sync.Once on the
// Module makes the construction race-free.
func (m *Module) CallGraph() *CallGraph {
	m.cgOnce.Do(func() { m.cg = buildCallGraph(m) })
	return m.cg
}

func buildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{mod: mod, Nodes: make(map[*types.Func]*FuncNode)}

	// Pass 1: nodes for every declared module function with a body.
	paths := make([]string, 0, len(mod.Pkgs))
	for p := range mod.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		pkg := mod.Pkgs[p]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[fn] = &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
	}

	// Pass 2: edges, spawn origins, and address-taken marks.
	main := &Origin{Index: 0, Desc: "main"}
	g.Origins = []*Origin{main}
	for _, p := range paths {
		pkg := mod.Pkgs[p]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := pkg.Info.Defs[fd.Name].(*types.Func)
				node := g.Nodes[fn]
				g.scanBody(node, pkg, fd.Body)
			}
		}
	}

	// Main-origin roots: exported functions, methods of any kind reachable
	// through exported API surfaces are approximated by "exported or
	// address-taken"; init functions and main.main too. Everything they can
	// reach without crossing a `go` edge runs on the caller's goroutine.
	for fn, node := range g.Nodes {
		if fn.Exported() || node.AddressTaken || fn.Name() == "init" || fn.Name() == "main" {
			main.roots = append(main.roots, fn)
		}
	}

	sort.Slice(g.Origins[1:], func(i, j int) bool { return g.Origins[i+1].Pos < g.Origins[j+1].Pos })
	for i, o := range g.Origins {
		o.Index = i
	}
	g.computeReach()
	return g
}

// scanBody walks one function body collecting call sites, spawn origins and
// address-taken references. Non-spawned function literals are inlined into
// the enclosing node; spawned literals become origins of their own.
func (g *CallGraph) scanBody(node *FuncNode, pkg *Package, body *ast.BlockStmt) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			g.addSpawn(node, pkg, n)
			// Argument expressions still evaluate on the current goroutine,
			// but their calls are rare and never load-bearing for the
			// analyses built on the graph; skip the subtree wholesale.
			return false
		case *ast.CallExpr:
			g.addCall(node, pkg, n, false)
			// Recurse into arguments for nested calls/references, but not
			// through the Fun expression twice.
			for _, a := range n.Args {
				ast.Inspect(a, walk)
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				ast.Inspect(sel.X, walk)
			}
			return false
		case *ast.Ident:
			g.markAddressTaken(pkg, n)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// addCall records one call expression on node.
func (g *CallGraph) addCall(node *FuncNode, pkg *Package, call *ast.CallExpr, spawn bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		// Builtins and type conversions are not calls in the graph sense;
		// function values and unresolvable targets count as dynamic.
		if !isBuiltinOrConversion(pkg, call) {
			node.Dynamic++
			node.Sites = append(node.Sites, &CallSite{Caller: node, Call: call, Spawn: spawn})
		}
		return
	}
	node.Sites = append(node.Sites, &CallSite{Caller: node, Call: call, Callee: fn, Spawn: spawn})
}

// addSpawn records a `go` statement as a new origin.
func (g *CallGraph) addSpawn(node *FuncNode, pkg *Package, stmt *ast.GoStmt) {
	pos := g.mod.Fset.Position(stmt.Pos())
	o := &Origin{
		Pos:  stmt.Pos(),
		Desc: fmt.Sprintf("go at %s:%d", shortFile(pos.Filename), pos.Line),
		Go:   stmt,
		Pkg:  pkg,
	}
	if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
		o.Lit = lit
		// The literal body belongs to the spawned goroutine: collect the
		// module callees it reaches directly as the origin's roots. Nested
		// go statements inside the literal become origins of their own.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				g.addSpawn(node, pkg, n)
				return false
			case *ast.CallExpr:
				if fn := calleeFunc(pkg, n); fn != nil {
					if _, ok := g.Nodes[fn]; ok {
						o.roots = append(o.roots, fn)
					}
				}
			case *ast.Ident:
				g.markAddressTaken(pkg, n)
			}
			return true
		})
	} else if fn := calleeFunc(pkg, stmt.Call); fn != nil {
		if _, ok := g.Nodes[fn]; ok {
			o.roots = append(o.roots, fn)
		}
	} else {
		node.Dynamic++
	}
	g.Origins = append(g.Origins, o)
}

// markAddressTaken flags module functions referenced outside call position.
// The scan visits identifiers that survived the call-position pruning in
// scanBody, so any function-typed use landing here escaped as a value.
func (g *CallGraph) markAddressTaken(pkg *Package, id *ast.Ident) {
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if node, ok := g.Nodes[fn]; ok {
		node.AddressTaken = true
	}
}

// isBuiltinOrConversion reports whether call is a builtin invocation or a
// type conversion (neither is an edge).
func isBuiltinOrConversion(pkg *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			return true
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// computeReach propagates every origin through non-spawn edges until fixed
// point: reach(o) is the set of module functions that may execute on a
// goroutine created at o.
func (g *CallGraph) computeReach() {
	n := len(g.Origins)
	g.reach = make(map[*types.Func]originSet, len(g.Nodes))
	setFor := func(fn *types.Func) originSet {
		s, ok := g.reach[fn]
		if !ok {
			s = newOriginSet(n)
			g.reach[fn] = s
		}
		return s
	}
	var queue []*types.Func
	for _, o := range g.Origins {
		for _, root := range o.roots {
			s := setFor(root)
			if !s.has(o.Index) {
				s.add(o.Index)
				queue = append(queue, root)
			}
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].Pos() < queue[j].Pos() })
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		src := g.reach[fn]
		for _, site := range node.Sites {
			if site.Spawn || site.Callee == nil {
				continue
			}
			if _, ok := g.Nodes[site.Callee]; !ok {
				continue
			}
			if setFor(site.Callee).union(src) {
				queue = append(queue, site.Callee)
			}
		}
	}
}

// Contexts returns the set of goroutine origins fn may execute on (empty
// when fn is unreachable by the static analysis).
func (g *CallGraph) Contexts(fn *types.Func) originSet {
	if s, ok := g.reach[fn]; ok {
		return s
	}
	return newOriginSet(len(g.Origins))
}

// OriginDescs renders the origins in an originSet, for finding messages.
func (g *CallGraph) OriginDescs(s originSet) []string {
	var out []string
	for _, o := range g.Origins {
		if s.has(o.Index) {
			out = append(out, o.Desc)
		}
	}
	return out
}

// Node returns the graph node for fn, or nil when fn has no loaded body.
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.Nodes[fn] }

// shortFile trims a path to its last two segments, keeping messages
// readable while staying unambiguous within the module.
func shortFile(path string) string {
	slash := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			slash++
			if slash == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}
