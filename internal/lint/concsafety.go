package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ConcSafety guards the concurrent core of the repository — the emulator's
// accept/read/admit goroutines and the telemetry registry — with two
// whole-module checks built on the call graph and effect summaries:
//
//  1. Shared-field writes. A struct field is shared when no single
//     goroutine origin covers all of its write sites (the intersection of
//     the writers' origin sets is empty); every write to a shared field
//     must then hold a write-locked mutex rooted at the same receiver
//     (inferred by the must-hold lock tracker), or the field must be a
//     sync/atomic type. Origins are the synthetic main context plus one
//     per `go` statement; a function reachable from several origins
//     carries them all.
//
//  2. Locks across blocking operations. A mutex provably held at a
//     statement must not span channel sends/receives, defaultless selects,
//     time.Sleep, interface-typed net/io reads and writes, or calls to
//     module functions that transitively block — a parked goroutine that
//     owns the emulator's round lock stalls every connection.
//
// Both checks are scoped to ConcurrencyPackages; findings elsewhere would
// mostly restate Go folklore, here they break the chaos suite.
var ConcSafety = &Analyzer{
	Name: "concsafety",
	Doc:  "shared fields need a guarding mutex or atomic; held mutexes must not span blocking operations",
	Run:  runConcSafety,
}

// ConcurrencyPackages are the module packages whose goroutine discipline is
// enforced. (Var, not const: the fixture tests extend it.)
var ConcurrencyPackages = map[string]bool{
	"cmfl/internal/emu":       true,
	"cmfl/internal/emu/shard": true,
	"cmfl/internal/telemetry": true,
}

func runConcSafety(pass *Pass) {
	if !ConcurrencyPackages[pass.Pkg.Path] {
		return
	}
	checkSharedFields(pass)
	checkLockAcrossBlocking(pass)
}

// fieldWrite is one assignment/increment of a struct field somewhere in the
// module.
type fieldWrite struct {
	field   *types.Var
	pos     token.Pos
	ctx     originSet
	guarded bool
}

// checkSharedFields implements check 1 for fields declared in pass.Pkg,
// collecting write sites module-wide (an importer may mutate our structs).
func checkSharedFields(pass *Pass) {
	g := pass.Mod.CallGraph()
	writes := make(map[*types.Var][]fieldWrite)

	var pkgPaths []string
	for p := range pass.Mod.Pkgs {
		pkgPaths = append(pkgPaths, p)
	}
	sort.Strings(pkgPaths)
	for _, p := range pkgPaths {
		pkg := pass.Mod.Pkgs[p]
		for _, f := range pkg.Files {
			if isGenerated(f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				collectFieldWrites(pass, g, pkg, fn, fd, writes)
			}
		}
	}

	var fields []*types.Var
	for field := range writes {
		fields = append(fields, field)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })

	for _, field := range fields {
		ws := writes[field]
		// Shared iff no single origin covers every write site.
		common := ws[0].ctx.clone()
		union := ws[0].ctx.clone()
		for _, w := range ws[1:] {
			common.intersect(w.ctx)
			union.union(w.ctx)
		}
		if !common.empty() {
			continue
		}
		descs := strings.Join(g.OriginDescs(union), ", ")
		for _, w := range ws {
			if w.guarded {
				continue
			}
			pass.Reportf(w.pos, "field %s is written from multiple goroutines (%s) without a guarding mutex: lock it, make it atomic, or justify with //cmfl:lint-ignore concsafety",
				fieldDisplayName(pass.Pkg, field), descs)
		}
	}
}

// collectFieldWrites runs the lock tracker over fd's body and each function
// literal inside it, recording every write to a field declared in pass.Pkg.
func collectFieldWrites(pass *Pass, g *CallGraph, pkg *Package, fn *types.Func, fd *ast.FuncDecl, writes map[*types.Var][]fieldWrite) {
	declCtx := g.Contexts(fn)
	if declCtx.empty() {
		// Unreachable by the static analysis (e.g. only called through an
		// interface): attribute to main, the conservative single context.
		declCtx = newOriginSet(len(g.Origins))
		declCtx.add(0)
	}

	record := func(stmt ast.Stmt, held lockState, ctx originSet) {
		for _, wr := range stmtFieldWrites(pkg, stmt) {
			field := wr.field
			if field.Pkg() == nil || field.Pkg().Path() != pass.Pkg.Path {
				continue
			}
			if t := named(field.Type()); strings.HasPrefix(t, "sync/atomic.") || strings.HasPrefix(t, "sync.") {
				continue // atomics guard themselves; sync primitives are set up once
			}
			writes[field] = append(writes[field], fieldWrite{
				field:   field,
				pos:     wr.pos,
				ctx:     ctx,
				guarded: writeGuarded(held, wr.base),
			})
		}
	}

	trackLocks(pkg, fd.Body, func(stmt ast.Stmt, held lockState) {
		record(stmt, held, declCtx)
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ctx := declCtx
		if o := spawnOriginOf(g, pkg, lit); o != nil {
			ctx = newOriginSet(len(g.Origins))
			ctx.add(o.Index)
		}
		trackLocks(pkg, lit.Body, func(stmt ast.Stmt, held lockState) {
			record(stmt, held, ctx)
		})
		return true
	})
}

// spawnOriginOf returns the goroutine origin whose spawned literal is lit.
func spawnOriginOf(g *CallGraph, pkg *Package, lit *ast.FuncLit) *Origin {
	for _, o := range g.Origins {
		if o.Pkg == pkg && o.Lit == lit {
			return o
		}
	}
	return nil
}

// rawWrite is a field write before context/guard classification.
type rawWrite struct {
	field *types.Var
	pos   token.Pos
	base  types.Object
}

// stmtFieldWrites extracts the struct-field writes performed directly by
// stmt (assignments and increments; nested statements report themselves).
func stmtFieldWrites(pkg *Package, stmt ast.Stmt) []rawWrite {
	var out []rawWrite
	add := func(lhs ast.Expr) {
		field, base := writtenField(pkg, lhs)
		if field != nil {
			out = append(out, rawWrite{field: field, pos: lhs.Pos(), base: base})
		}
	}
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			add(lhs)
		}
	case *ast.IncDecStmt:
		add(s.X)
	}
	return out
}

// writtenField resolves an assignment LHS to the struct field it mutates:
// `x.f = v`, `x.f[k] = v`, `x.f += v`, `x.f++`, `*x.f = v` all count —
// element and map writes race exactly like direct stores. Returns the field
// and the root object of the receiver chain.
func writtenField(pkg *Package, lhs ast.Expr) (*types.Var, types.Object) {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil, nil
	}
	return v, rootObject(pkg, sel.X)
}

// writeGuarded reports whether the held set licenses a write rooted at
// base: a write-locked mutex on the same receiver, or a bare (package- or
// function-level) mutex, which guards whatever its critical section spans.
func writeGuarded(held lockState, base types.Object) bool {
	for key, l := range held {
		if !l.write {
			continue
		}
		if !strings.Contains(key, ".") {
			return true
		}
		if l.base != nil && l.base == base {
			return true
		}
	}
	return false
}

// fieldDisplayName renders "Server.conns" by locating the named type whose
// struct carries the field.
func fieldDisplayName(pkg *Package, field *types.Var) string {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn.Name() + "." + field.Name()
			}
		}
	}
	return field.Name()
}

// checkLockAcrossBlocking implements check 2 over the bodies of pass.Pkg.
func checkLockAcrossBlocking(pass *Pass) {
	sums := pass.Mod.Summaries()
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBodyBlocking(pass, sums, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBodyBlocking(pass, sums, lit.Body)
				}
				return true
			})
		}
	}
}

func checkBodyBlocking(pass *Pass, sums map[*types.Func]*EffectSummary, body *ast.BlockStmt) {
	trackLocks(pass.Pkg, body, func(stmt ast.Stmt, held lockState) {
		if len(held) == 0 {
			return
		}
		pos, what := stmtBlocks(pass, sums, stmt)
		if what == "" {
			return
		}
		pass.Reportf(pos, "%s held across %s: shrink the critical section or justify with //cmfl:lint-ignore concsafety",
			heldNames(held), what)
	})
}

// stmtBlocks classifies the blocking behavior of stmt's own work (nested
// statements report themselves through their own callbacks).
func stmtBlocks(pass *Pass, sums map[*types.Func]*EffectSummary, stmt ast.Stmt) (token.Pos, string) {
	switch s := stmt.(type) {
	case *ast.SendStmt:
		return s.Pos(), "channel send"
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			return s.Pos(), "select without default"
		}
		return token.NoPos, ""
	case *ast.RangeStmt:
		if t := pass.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return s.Pos(), "range over channel"
			}
		}
		return token.NoPos, ""
	}
	var pos token.Pos
	var what string
	for _, e := range stmtExprs(stmt) {
		ast.Inspect(e, func(n ast.Node) bool {
			if what != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pos, what = n.Pos(), "channel receive"
					return false
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Pkg, n)
				if fn == nil {
					return true
				}
				if w := blockingCall(fn); w != "" {
					pos, what = n.Pos(), w
					return false
				}
				if s, ok := sums[fn]; ok {
					if b := s.Blocks(); b != nil {
						position := pass.Fset().Position(b.W.Pos)
						pos = n.Pos()
						what = fmt.Sprintf("call to %s, which blocks (%s at %s:%d)", fn.Name(), b.W.What, shortFile(position.Filename), position.Line)
						return false
					}
				}
			}
			return true
		})
		if what != "" {
			break
		}
	}
	return pos, what
}

// stmtExprs returns the expressions stmt evaluates directly (sub-statements
// excluded: they get their own tracker callbacks).
func stmtExprs(stmt ast.Stmt) []ast.Expr {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
	case *ast.ReturnStmt:
		return s.Results
	case *ast.IfStmt:
		return []ast.Expr{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Expr{s.Cond}
		}
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Expr{s.Tag}
		}
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			var out []ast.Expr
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
			return out
		}
	}
	return nil
}

// heldNames renders the held mutex set deterministically ("s.mu", or
// "a.mu, b.mu" when several are held).
func heldNames(held lockState) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
