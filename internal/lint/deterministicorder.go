package lint

import (
	"go/ast"
	"go/types"
)

// DeterministicOrder guards bit-reproducible aggregation. The paper's
// uplink-savings comparisons (and the emulator's wire-byte equality tests)
// assume that re-running a seed reproduces every float bit; iteration
// order is part of that contract because float addition does not commute
// in rounding.
//
// Two rules:
//
//  1. Functions annotated //cmfl:deterministic (engine round loops,
//     aggregation) must not range over maps, call time.Now, or draw from
//     the global math/rand source.
//  2. In the engine packages (EnginePackages), the global math/rand source
//     is banned everywhere, annotated or not: per-run reproducibility
//     requires every random draw to come from a seeded stream
//     (internal/xrand or an explicit rand.New).
var DeterministicOrder = &Analyzer{
	Name: "deterministicorder",
	Doc:  "no map iteration, wall-clock reads, or unseeded randomness where float accumulation order matters",
	Run:  runDeterministicOrder,
}

// EnginePackages are the module packages whose round loops and aggregation
// accumulate floats; rule 2 applies package-wide there. (Var, not const:
// the fixture tests extend it.)
var EnginePackages = map[string]bool{
	"cmfl/internal/fl":   true,
	"cmfl/internal/mtl":  true,
	"cmfl/internal/emu":  true,
	"cmfl/internal/core": true,
	"cmfl/internal/sim":  true,
}

func runDeterministicOrder(pass *Pass) {
	enginePkg := EnginePackages[pass.Pkg.Path]
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			annotated := funcHasMarker(fd, markerDeterministic)
			if !annotated && !enginePkg {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if annotated {
						if _, isMap := pass.TypeOf(n.X).Underlying().(*types.Map); isMap {
							pass.Reportf(n.Pos(), "map iteration in deterministic function %s: order is random and perturbs float accumulation", fd.Name.Name)
						}
					}
				case *ast.CallExpr:
					if fn := calleeFunc(pass.Pkg, n); fn != nil {
						if annotated && fn.FullName() == "time.Now" {
							pass.Reportf(n.Pos(), "time.Now in deterministic function %s: wall-clock reads are not reproducible", fd.Name.Name)
						}
						if isGlobalRand(fn) {
							pass.Reportf(n.Pos(), "global math/rand source (%s) in %s: use a seeded stream (internal/xrand)", fn.Name(), fd.Name.Name)
						}
					}
				}
				return true
			})
		}
	}
}

// isGlobalRand reports whether fn is a package-level math/rand (or
// math/rand/v2) function drawing from the process-global source.
// Constructors of explicit, seedable sources are fine.
func isGlobalRand(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // method on an explicit *rand.Rand
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}
