package lint

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// -diff mode: resolve the files that differ from a git ref into the set of
// packages whose analysis could have changed, and run only those. The
// affected set is the changed packages plus their forward AND reverse
// transitive import closures — the same two directions the cache key
// hashes, and for the same reason: an emu edit changes concsafety's
// verdict on a telemetry field even though telemetry imports nothing from
// emu. Within that closure the findings of a diff run are identical to a
// full run's (asserted by TestDiffMatchesFullRun); outside it nothing
// could have changed.
//
// A go.mod change falls back to the full target set: it can redefine the
// module path every package key depends on.

// gitChangedFiles lists the files (module-root-relative, slash-separated)
// that differ from ref, plus untracked files. It shells out to git — the
// only external tool cmfl-vet invokes, and only in -diff mode.
func gitChangedFiles(root, ref string) ([]string, error) {
	diff := exec.Command("git", "-C", root, "diff", "--name-only", ref, "--")
	out, err := diff.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: git diff --name-only %s: %w (is %s a valid ref?)", ref, err, ref)
	}
	untracked := exec.Command("git", "-C", root, "ls-files", "--others", "--exclude-standard")
	uout, err := untracked.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: git ls-files --others: %w", err)
	}
	seen := make(map[string]bool)
	var files []string
	for _, line := range strings.Split(string(out)+"\n"+string(uout), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || seen[line] {
			continue
		}
		seen[line] = true
		files = append(files, line)
	}
	sort.Strings(files)
	return files, nil
}

// affectedTargets narrows targets to those whose analysis can depend on
// the changed files. Changed files map to packages by directory; a change
// to go.mod (or any file no scanned package owns inside a package dir —
// conservatively, any .go file we cannot attribute) keeps the full set.
func affectedTargets(scan *moduleScan, targets, changedFiles []string) []string {
	if len(changedFiles) == 0 {
		return nil
	}
	dirToPkg := make(map[string]string, len(scan.pkgs))
	for p, sp := range scan.pkgs {
		dirToPkg[sp.dir] = p
	}
	changed := make(map[string]bool)
	for _, f := range changedFiles {
		if f == "go.mod" {
			return targets
		}
		if !strings.HasSuffix(f, ".go") {
			continue
		}
		abs := filepath.Join(scan.root, filepath.FromSlash(f))
		if p, ok := dirToPkg[filepath.Dir(abs)]; ok {
			changed[p] = true
		}
		// A .go file outside every scanned package (testdata, a deleted
		// package's leftovers) cannot alter any scanned package's analysis:
		// the scan already hashed what the targets can reach.
	}
	if len(changed) == 0 {
		return nil
	}

	fwd := make(map[string][]string, len(scan.pkgs))
	rev := make(map[string][]string, len(scan.pkgs))
	for p, sp := range scan.pkgs {
		for _, ip := range sp.imports {
			fwd[p] = append(fwd[p], ip)
			rev[ip] = append(rev[ip], p)
		}
	}
	affected := make(map[string]bool)
	for p := range changed {
		affected[p] = true
		closure(fwd, p, affected)
		closure(rev, p, affected)
	}

	var kept []string
	for _, t := range targets {
		if affected[t] {
			kept = append(kept, t)
		}
	}
	return kept
}
