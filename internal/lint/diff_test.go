package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
)

// writeDiffTestModule lays out a three-package module: b imports a (so an
// edit to a must pull b in through the reverse closure), c is independent.
// a and c each carry one errcheck violation.
func writeDiffTestModule(t testing.TB) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		full := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module difftest\n\ngo 1.24\n")
	write("a/a.go", `package a

import "os"

func Touch(path string) {
	_ = os.Remove(path)
}
`)
	write("b/b.go", `package b

import "difftest/a"

func Use() {
	a.Touch("x")
}
`)
	write("c/c.go", `package c

import "os"

func Drop(path string) {
	_ = os.Remove(path)
}
`)
	return dir
}

// gitify turns dir into a single-commit git repository, skipping the test
// when git is unavailable.
func gitify(t testing.TB, dir string) {
	t.Helper()
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not on PATH")
	}
	run := func(args ...string) {
		cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
		cmd.Env = append(os.Environ(),
			"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@t",
			"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@t",
			"GIT_CONFIG_GLOBAL=/dev/null", "GIT_CONFIG_SYSTEM=/dev/null")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	run("init", "-q")
	run("add", ".")
	run("-c", "commit.gpgsign=false", "commit", "-q", "-m", "seed")
}

// TestAffectedTargets exercises the file→package→closure mapping without
// any git involvement.
func TestAffectedTargets(t *testing.T) {
	dir := writeDiffTestModule(t)
	scan, err := scanModule(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		changed []string
		want    []string
	}{
		{"edit a pulls importer b", []string{"a/a.go"}, []string{"difftest/a", "difftest/b"}},
		{"edit b stays b plus its import a", []string{"b/b.go"}, []string{"difftest/a", "difftest/b"}},
		{"edit c stays c", []string{"c/c.go"}, []string{"difftest/c"}},
		{"go.mod keeps everything", []string{"go.mod"}, scan.targets},
		{"non-go file keeps nothing", []string{"README.md"}, nil},
		{"unattributable go file keeps nothing", []string{"docs/x.go"}, nil},
		{"no changes keeps nothing", nil, nil},
	}
	for _, tc := range cases {
		got := affectedTargets(scan, scan.targets, tc.changed)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: affected = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDiffMatchesFullRun is the acceptance gate for -diff: after a
// one-package edit plus one untracked package, the diff run analyzes only
// the affected closure and reports exactly the full run's findings for
// that closure.
func TestDiffMatchesFullRun(t *testing.T) {
	dir := writeDiffTestModule(t)
	gitify(t, dir)

	// One tracked edit (a second violation in c) and one untracked new
	// package with a violation of its own: both git discovery paths.
	appendToFile(t, filepath.Join(dir, "c", "c.go"), "\nfunc Drop2(path string) {\n\t_ = os.Remove(path)\n}\n")
	if err := os.MkdirAll(filepath.Join(dir, "d"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "d", "d.go"),
		[]byte("package d\n\nimport \"os\"\n\nfunc Wipe(path string) {\n\t_ = os.Remove(path)\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	full, err := RunModule(dir, []string{"./..."}, []*Analyzer{ErrCheck}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Findings) != 4 {
		t.Fatalf("full run = %d findings, want 4 (a:1, c:2, d:1): %v", len(full.Findings), full.Findings)
	}

	diff, err := RunModule(dir, []string{"./..."}, []*Analyzer{ErrCheck},
		RunOptions{DiffRef: "HEAD", CacheDir: t.TempDir(), Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff.Stats.CacheMisses != 2 {
		t.Errorf("diff run analyzed %d targets, want 2 (c and d only)", diff.Stats.CacheMisses)
	}

	var wantFindings []string
	for _, f := range full.Findings {
		rel, _ := filepath.Rel(dir, f.File)
		if filepath.Dir(rel) == "c" || filepath.Dir(rel) == "d" {
			wantFindings = append(wantFindings, f.String())
		}
	}
	var gotFindings []string
	for _, f := range diff.Findings {
		gotFindings = append(gotFindings, f.String())
	}
	if !reflect.DeepEqual(gotFindings, wantFindings) {
		t.Errorf("diff findings diverge from the full run's for the affected closure:\n  diff: %v\n  full: %v",
			gotFindings, wantFindings)
	}
}

// TestDiffNoChanges: a clean tree diffs to an empty target set and an
// empty result.
func TestDiffNoChanges(t *testing.T) {
	dir := writeDiffTestModule(t)
	gitify(t, dir)
	res, err := RunModule(dir, []string{"./..."}, []*Analyzer{ErrCheck}, RunOptions{DiffRef: "HEAD", Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 || res.Suppressed != 0 {
		t.Errorf("clean-tree diff run = %d findings, %d suppressed, want 0 and 0", len(res.Findings), res.Suppressed)
	}
}

// TestDiffBadRef surfaces the git error instead of silently running the
// full set.
func TestDiffBadRef(t *testing.T) {
	dir := writeDiffTestModule(t)
	gitify(t, dir)
	if _, err := RunModule(dir, []string{"./..."}, []*Analyzer{ErrCheck}, RunOptions{DiffRef: "no-such-ref"}); err == nil {
		t.Error("diff against a bogus ref succeeded, want an error naming the ref")
	}
}

// BenchmarkCmflVetDiff measures a cold partial run after a one-file edit:
// scan, git diff, closure narrowing, then load + analysis of the affected
// packages only.
func BenchmarkCmflVetDiff(b *testing.B) {
	dir := writeDiffTestModule(b)
	gitify(b, dir)
	appendToFile2(b, filepath.Join(dir, "c", "c.go"), "\nfunc Drop2(path string) {\n\t_ = os.Remove(path)\n}\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunModule(dir, []string{"./..."}, All(), RunOptions{DiffRef: "HEAD"}); err != nil {
			b.Fatal(err)
		}
	}
}

// appendToFile2 is appendToFile for benchmarks (testing.TB).
func appendToFile2(t testing.TB, path, content string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, content...), 0o644); err != nil {
		t.Fatal(err)
	}
}
