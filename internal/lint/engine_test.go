package lint

import (
	"strings"
	"testing"
)

// TestHotPathTransitiveFixture is the acceptance case for the call-graph
// rewrite: the allocation sits two calls below the annotation and the
// finding carries the rendered call path.
func TestHotPathTransitiveFixture(t *testing.T) {
	res := checkFixture(t, "hotpathtrans", []*Analyzer{HotPathAlloc})
	// The callee-side justification pre-empts the finding inside the walk,
	// so it does not count as a suppression of a surfaced finding.
	if res.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0", res.Suppressed)
	}
	found := false
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "level1 → level2") {
			found = true
		}
	}
	if !found {
		t.Errorf("no finding rendered the two-hop call path; findings: %v", res.Findings)
	}
}

func TestConcSafetyFixture(t *testing.T) {
	checkScopedFixture(t, "concsafety", []*Analyzer{ConcSafety}, ConcurrencyPackages)
}

// TestConcSafetyScopeGate: outside ConcurrencyPackages the same fixture
// must stay silent — the analyzer is scoped, not global.
func TestConcSafetyScopeGate(t *testing.T) {
	pkg, mod := loadFixture(t, "concsafety")
	res := Run(mod, []*Package{pkg}, []*Analyzer{ConcSafety})
	if len(res.Findings) != 0 {
		t.Errorf("concsafety fired outside its package scope: %v", res.Findings)
	}
}

func TestGoroLeakFixture(t *testing.T) {
	checkScopedFixture(t, "goroleak", []*Analyzer{GoroLeak}, ConcurrencyPackages)
}

func TestSeedTaintFixture(t *testing.T) {
	checkScopedFixture(t, "seedtaint", []*Analyzer{SeedTaint}, SeedTaintPackages)
}

// TestSeedTaintScopeGate mirrors TestConcSafetyScopeGate.
func TestSeedTaintScopeGate(t *testing.T) {
	pkg, mod := loadFixture(t, "seedtaint")
	res := Run(mod, []*Package{pkg}, []*Analyzer{SeedTaint})
	if len(res.Findings) != 0 {
		t.Errorf("seedtaint fired outside its package scope: %v", res.Findings)
	}
}
