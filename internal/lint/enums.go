package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// Enum-family recovery shared by the exhaustive and protostate analyzers.
// The repo's protocol and state-machine code encodes its alphabets as two
// kinds of constant families, and both are recovered here:
//
//   - named families: package-level constants sharing a named integer type
//     (FaultKind, frameVerdict, injectorMode). The family is keyed on the
//     type, so a switch whose tag has that static type binds the family
//     even when no case mentions a member.
//   - prefix families: one `const` block whose ≥3 integer members share a
//     common name prefix (msg*, dir*, spec*). These are the untyped wire
//     alphabets; a switch binds the family through its case expressions.
//
// String-valued blocks (annotation markers, metric names) are never
// families: exhaustiveness over strings is not a protocol property.

// constFamily is one enum-like constant family of a package.
type constFamily struct {
	// name is the display handle: the named type's name, or the shared
	// prefix for untyped blocks.
	name string
	// typ is the keying named type (nil for prefix families).
	typ *types.TypeName
	// members in declaration order.
	members []*types.Const
	byObj   map[types.Object]bool
}

func (f *constFamily) member(obj types.Object) bool { return f.byObj[obj] }

// missing returns the member names absent from covered, in declaration
// order.
func (f *constFamily) missing(covered map[types.Object]bool) []string {
	var out []string
	for _, m := range f.members {
		if !covered[m] {
			out = append(out, m.Name())
		}
	}
	return out
}

// constFamilies recovers the enum families declared in pkg.
func constFamilies(pkg *Package) []*constFamily {
	var fams []*constFamily
	byType := make(map[*types.TypeName]*constFamily)

	// Named families: every package-level integer constant whose type is a
	// named type declared in this package.
	scope := pkg.Types.Scope()
	names := scope.Names()
	for _, name := range names {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.Int {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok {
			continue
		}
		tn := named.Obj()
		if tn.Pkg() != pkg.Types {
			continue
		}
		fam := byType[tn]
		if fam == nil {
			fam = &constFamily{name: tn.Name(), typ: tn, byObj: make(map[types.Object]bool)}
			byType[tn] = fam
		}
		fam.members = append(fam.members, c)
		fam.byObj[c] = true
	}
	for _, fam := range byType {
		if len(fam.members) >= 2 {
			sortConstsByPos(fam.members)
			fams = append(fams, fam)
		}
	}

	// Prefix families: one const block, ≥3 integer members, shared prefix of
	// at least two characters. Blocks whose members already form a named
	// family are skipped — the type is the better key.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			if fam := prefixFamily(pkg, gd, byType); fam != nil {
				fams = append(fams, fam)
			}
		}
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// prefixFamily builds a family from one const block, or nil when the block
// does not qualify.
func prefixFamily(pkg *Package, gd *ast.GenDecl, byType map[*types.TypeName]*constFamily) *constFamily {
	var members []*types.Const
	allNamed := true
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, id := range vs.Names {
			if id.Name == "_" {
				continue
			}
			c, ok := pkg.Info.Defs[id].(*types.Const)
			if !ok || c.Val().Kind() != constant.Int {
				return nil
			}
			if named, ok := c.Type().(*types.Named); !ok || byType[named.Obj()] == nil {
				allNamed = false
			}
			members = append(members, c)
		}
	}
	if len(members) < 3 || allNamed {
		return nil
	}
	prefix := members[0].Name()
	for _, m := range members[1:] {
		prefix = commonPrefix(prefix, m.Name())
	}
	if len(prefix) < 2 {
		return nil
	}
	fam := &constFamily{name: prefix + "*", byObj: make(map[types.Object]bool)}
	fam.members = members
	for _, m := range members {
		fam.byObj[m] = true
	}
	return fam
}

func commonPrefix(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

func sortConstsByPos(cs []*types.Const) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Pos() < cs[j].Pos() })
}

// scopeFamily recovers the named family of a type declared in another
// loaded package (a switch here over an imported enum type), enumerating
// the defining package's scope.
func scopeFamily(tn *types.TypeName) *constFamily {
	if tn.Pkg() == nil {
		return nil
	}
	fam := &constFamily{name: tn.Name(), typ: tn, byObj: make(map[types.Object]bool)}
	scope := tn.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.Int {
			continue
		}
		if named, ok := c.Type().(*types.Named); ok && named.Obj() == tn {
			fam.members = append(fam.members, c)
			fam.byObj[c] = true
		}
	}
	if len(fam.members) < 2 {
		return nil
	}
	sortConstsByPos(fam.members)
	return fam
}

// caseConst resolves one case expression to its constant object (ident or
// pkg-qualified selector), or nil.
func caseConst(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c, ok := pkg.Info.Uses[e].(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := pkg.Info.Uses[e.Sel].(*types.Const); ok {
			return c
		}
	}
	return nil
}

// loudDefault reports whether a default clause body fails loudly: it
// panics, exits, returns an error, or constructs one (fmt.Errorf /
// errors.New assigned to a result that a later return carries). Function
// literals are opaque — they may never run.
func loudDefault(pkg *Package, body []ast.Stmt) bool {
	loud := false
	for _, s := range body {
		ast.Inspect(s, func(n ast.Node) bool {
			if loud {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if isErrorExpr(pkg, r) {
						loud = true
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
						loud = true
						return false
					}
				}
				if fn := calleeFunc(pkg, n); fn != nil && fn.FullName() == "os.Exit" {
					loud = true
					return false
				}
				if isErrorExpr(pkg, n) {
					loud = true
					return false
				}
			}
			return true
		})
		if loud {
			return true
		}
	}
	return false
}

// isErrorExpr reports whether e's static type is (or yields) a non-nil
// error value.
func isErrorExpr(pkg *Package, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if implementsError(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return implementsError(t)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
