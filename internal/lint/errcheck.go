package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags discarded error results outside tests: calls used as bare
// statements (including defer/go), and assignments of an error to the
// blank identifier — `_ = conn.Close()` silences the compiler but still
// swallows an I/O failure on the emulator's protocol path.
//
// Excluded by policy (documented in DESIGN.md §9):
//   - package fmt printers — a failed write to stderr is not actionable;
//   - methods on strings.Builder, bytes.Buffer and hash.Hash*, whose
//     error results are documented to always be nil.
//
// Anything else needs handling, propagation, or an auditable
// //cmfl:lint-ignore errcheck <reason>.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "no discarded error results outside tests, including `_ =` assignments",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, n.X, "")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkDiscardedCall(pass, n.Call, "spawned ")
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			}
			return true
		})
	}
}

// checkDiscardedCall reports a call statement whose result set contains an
// error that nobody reads.
func checkDiscardedCall(pass *Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !callReturnsError(pass, call) || isExcludedCallee(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%scall discards its error result: handle it, propagate it, or justify with //cmfl:lint-ignore", how)
}

// checkBlankErrAssign reports `_ = <error expr>` and `v, _ := f()` where
// the blanked component is an error.
func checkBlankErrAssign(pass *Pass, n *ast.AssignStmt) {
	blankAt := func(i int) bool {
		id, ok := n.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Multi-value call: v, _ := f().
		call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok || isExcludedCallee(pass, call) {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i := 0; i < tuple.Len() && i < len(n.Lhs); i++ {
			if blankAt(i) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(n.Lhs[i].Pos(), "error result assigned to _: handle it, propagate it, or justify with //cmfl:lint-ignore")
			}
		}
		return
	}
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) || !blankAt(i) {
			continue
		}
		if !isErrorType(pass.TypeOf(rhs)) {
			continue
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isExcludedCallee(pass, call) {
			continue
		}
		pass.Reportf(n.Lhs[i].Pos(), "error assigned to _: handle it, propagate it, or justify with //cmfl:lint-ignore")
	}
}

// callReturnsError reports whether any component of the call's result type
// is error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// excludedRecvTypes are receiver types whose methods' error results are
// documented to always be nil.
var excludedRecvTypes = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

// isExcludedCallee implements the documented exclusion list. The receiver
// is judged by its static type at the call site (the Selections map), so a
// hash.Hash64-typed variable is excluded regardless of the concrete digest
// behind it.
func isExcludedCallee(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && (sig == nil || sig.Recv() == nil) {
		return true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := pass.Pkg.Info.Selections[sel]; s != nil && excludedRecvTypes[named(s.Recv())] {
			return true
		}
	}
	if sig != nil && sig.Recv() != nil && excludedRecvTypes[named(sig.Recv().Type())] {
		return true
	}
	return false
}

// named renders a (possibly pointer) receiver type as "pkgpath.Name".
func named(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
