package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Exhaustive enforces total dispatch over the repo's enum-like constant
// families (frame kinds, shard directives, codec spec tags, quorum
// verdicts, fault kinds, injector modes): a switch over a family must
// either name every member or carry a default clause that fails loudly.
// A silent default on a protocol alphabet is how an unknown frame kind or
// directive gets routed to the wrong handler instead of severing the
// connection — the exact bug class the wire-v2 retirement of kind 6 was
// designed to surface.
//
// A switch is "over" a family when its tag's static type is the family's
// named type, or when at least two of its case expressions resolve to
// members of one prefix family (msg*, dir*, spec*). Type switches and
// tagless switches are out of scope, as are string-valued const blocks.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over enum-like const families cover every member or reject the rest through an error-returning default",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) {
	fams := constFamilies(pass.Pkg)
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkExhaustiveSwitch(pass, fams, sw)
			return true
		})
	}
}

func checkExhaustiveSwitch(pass *Pass, fams []*constFamily, sw *ast.SwitchStmt) {
	covered := make(map[types.Object]bool)
	var defaultBody []ast.Stmt
	hasDefault := false
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			defaultBody = cc.Body
			continue
		}
		for _, e := range cc.List {
			if obj := caseConst(pass.Pkg, e); obj != nil {
				covered[obj] = true
			}
		}
	}

	fam := switchFamily(pass, fams, sw, covered)
	if fam == nil {
		return
	}
	missing := fam.missing(covered)
	if len(missing) == 0 {
		return
	}
	if hasDefault && loudDefault(pass.Pkg, defaultBody) {
		return
	}
	what := "and there is no default clause"
	if hasDefault {
		what = "and the default handles them silently"
	}
	pass.Reportf(sw.Tag.Pos(), "switch over %s misses %s %s: add the cases or a default that returns an error",
		fam.name, strings.Join(missing, ", "), what)
}

// switchFamily binds the switch to a family: by the tag's named type
// first (including enum types imported from other loaded packages), then
// by prefix-family membership of its case constants.
func switchFamily(pass *Pass, fams []*constFamily, sw *ast.SwitchStmt, covered map[types.Object]bool) *constFamily {
	if t := pass.TypeOf(sw.Tag); t != nil {
		if named, ok := t.(*types.Named); ok {
			tn := named.Obj()
			for _, fam := range fams {
				if fam.typ == tn {
					return fam
				}
			}
			if tn.Pkg() != nil && tn.Pkg() != pass.Pkg.Types {
				return scopeFamily(tn)
			}
			return nil
		}
	}
	var best *constFamily
	bestHits := 0
	for _, fam := range fams {
		if fam.typ != nil {
			continue // named families bind through the tag type alone
		}
		hits := 0
		for obj := range covered {
			if fam.member(obj) {
				hits++
			}
		}
		if hits > bestHits {
			best, bestHits = fam, hits
		}
	}
	if bestHits >= 2 {
		return best
	}
	return nil
}
