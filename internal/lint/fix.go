package lint

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// The fix engine turns findings' byte-offset TextEdits into applied source
// rewrites. Three properties make `cmfl-vet -fix` safe to run blind:
//
//   - edits are validated before any write: out-of-bounds or overlapping
//     edits abort the whole run with no file touched;
//   - every rewritten file goes through go/format, so a fix can never
//     introduce a gofmt diff;
//   - after applying, the suite re-runs and applies again, up to
//     maxFixIterations, until a pass produces no fixable findings — the
//     convergence proof. A fixed point that still carries fixable findings
//     after the iteration cap is reported as an error instead of looping.
//
// Analyzers only attach edits they can prove semantics-preserving given
// the package's declared hooks (see wallclock's now()/sleep() gating), so
// "fixable" is deliberately a small subset of "reported".

// maxFixIterations bounds the apply/re-run loop. Two passes suffice for
// every analyzer today (fixes do not create new fixable sites); the
// headroom is for future rewrites that cascade.
const maxFixIterations = 5

// FixSummary reports what a RunFix pass did.
type FixSummary struct {
	// Iterations is the number of apply+re-run cycles, 0 when the first
	// run was already free of fixable findings.
	Iterations int
	// FilesChanged lists every file rewritten, deduplicated across
	// iterations, in path order.
	FilesChanged []string
}

// PreviewFixes renders the post-fix contents of every file with fixable
// findings, keyed by file path, without writing anything. The returned
// bytes are gofmt-formatted. An invalid edit set (overlap, out of bounds,
// unreadable file) fails the whole preview.
func PreviewFixes(findings []Finding) (map[string][]byte, error) {
	perFile := make(map[string][]TextEdit)
	for _, f := range findings {
		perFile[f.File] = append(perFile[f.File], f.Edits...)
	}
	out := make(map[string][]byte)
	for path, edits := range perFile {
		if len(edits) == 0 {
			continue
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: fix %s: %w", path, err)
		}
		patched, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("lint: fix %s: %w", path, err)
		}
		formatted, err := format.Source(patched)
		if err != nil {
			return nil, fmt.Errorf("lint: fix %s: result does not parse: %w", path, err)
		}
		out[path] = formatted
	}
	return out, nil
}

// applyEdits splices edits into src, rejecting overlap and out-of-bounds
// offsets before touching anything.
func applyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sorted := append([]TextEdit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	prevEnd := 0
	for _, e := range sorted {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of bounds (len %d)", e.Start, e.End, len(src))
		}
		if e.Start < prevEnd {
			return nil, fmt.Errorf("edit [%d,%d) overlaps a preceding edit ending at %d", e.Start, e.End, prevEnd)
		}
		prevEnd = e.End
	}
	var out []byte
	last := 0
	for _, e := range sorted {
		out = append(out, src[last:e.Start]...)
		out = append(out, e.NewText...)
		last = e.End
	}
	return append(out, src[last:]...), nil
}

// WriteFixes writes previewed contents back to disk.
func WriteFixes(files map[string][]byte) error {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := os.WriteFile(p, files[p], 0o644); err != nil {
			return fmt.Errorf("lint: fix %s: %w", p, err)
		}
	}
	return nil
}

// RunFix runs the suite, applies every fixable finding, and repeats until
// a run reports none — the final clean-of-fixables Result is returned
// together with what changed. Caching is disabled internally: every
// iteration must re-analyze the files it just rewrote.
func RunFix(dir string, patterns []string, analyzers []*Analyzer, opts RunOptions) (Result, FixSummary, error) {
	opts.CacheDir = ""
	var sum FixSummary
	changed := make(map[string]bool)
	for {
		res, err := RunModule(dir, patterns, analyzers, opts)
		if err != nil {
			return Result{}, sum, err
		}
		files, err := PreviewFixes(res.Findings)
		if err != nil {
			return Result{}, sum, err
		}
		if len(files) == 0 {
			for p := range changed {
				sum.FilesChanged = append(sum.FilesChanged, p)
			}
			sort.Strings(sum.FilesChanged)
			return res, sum, nil
		}
		if sum.Iterations == maxFixIterations {
			return Result{}, sum, fmt.Errorf("lint: fixes did not converge after %d iterations; %d file(s) still carry fixable findings", maxFixIterations, len(files))
		}
		if err := WriteFixes(files); err != nil {
			return Result{}, sum, err
		}
		for p := range files {
			changed[p] = true
		}
		sum.Iterations++
	}
}
