package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands (and switch
// statements over a float tag, which compare the same way) outside test
// files. Exact float equality is almost always a latent bug around
// accumulated rounding; compare with core.ApproxEqual and an explicit
// tolerance instead. The rare intentional bit-exact comparison (an
// all-zeros "no feedback yet" sentinel, an IEEE special case) is annotated
// //cmfl:lint-ignore floateq <reason> so the intent is auditable.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on float operands; use core.ApproxEqual with an explicit tolerance",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloatExpr(pass, n.X) && !isFloatExpr(pass, n.Y) {
					return true
				}
				if isConst(pass, n.X) && isConst(pass, n.Y) {
					return true // folded at compile time; no runtime comparison
				}
				pass.Reportf(n.Pos(), "float %s comparison: use core.ApproxEqual (or justify bit-exact intent with //cmfl:lint-ignore)", n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloatExpr(pass, n.Tag) {
					pass.Reportf(n.Pos(), "switch on float value compares with ==: use explicit epsilon comparisons")
				}
			}
			return true
		})
	}
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
