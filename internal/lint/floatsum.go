package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatSum proves the grouping-invariance contract for float accumulation.
// The headline guarantee — bit-identical results across reruns, shard
// counts, and the sim/emu engine pair — requires every float reduction to
// be either order-invariant (the Shewchuk exact accumulators in
// internal/emu/shard) or pinned to an order that is provably part of the
// algorithm's definition. In the packages that make that promise
// (FloatSumPackages), an order-sensitive accumulation inside a loop —
// `sum += x`, `sum = sum + x`, or a tensor.Axpy folding into a
// loop-invariant destination — is a finding unless
//
//   - it routes through shard.Accumulator (Add/Merge/Round are recorded as
//     "accumulator" facts, the proof surface the repo-facts guard checks), or
//   - it carries //cmfl:order-pinned <reason> (on the statement, the line
//     above it, or any enclosing loop) AND the analyzer can prove every
//     enclosing loop drains in deterministic order: ranging over a slice,
//     array or integer is deterministic; ranging over a map or channel is
//     not, and neither is any loop whose body receives from a channel or
//     selects — there the accumulation order is arrival order.
//
// Element-wise writes (`delta[j] += x` under `for j := range`) address a
// different slot each iteration and are exempt: they are not reductions.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc:  "order-sensitive float accumulation in grouping-invariance packages must use shard.Accumulator or a proven //cmfl:order-pinned annotation",
	Run:  runFloatSum,
}

// FloatSumPackages are the packages whose float reductions are part of the
// bit-reproducibility contract. (Var, not const: fixture tests extend it.)
var FloatSumPackages = map[string]bool{
	"cmfl/internal/emu":       true,
	"cmfl/internal/emu/shard": true,
	"cmfl/internal/sim":       true,
	"cmfl/internal/fl":        true,
}

// accumulatorPath is the exact-summation package; calls to its fold
// methods are the sanctioned order-invariant reduction.
const accumulatorPath = "cmfl/internal/emu/shard"

func runFloatSum(pass *Pass) {
	if !FloatSumPackages[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.SourceFiles() {
		pins := collectOrderPins(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			v := &floatSumVisitor{pass: pass, pins: pins}
			ast.Walk(v, fd.Body)
		}
		recordAccumulatorFacts(pass, f)
	}
}

// orderPin is one parsed //cmfl:order-pinned marker.
type orderPin struct {
	reason string
}

// collectOrderPins indexes a file's order-pinned markers by line, reporting
// reasonless markers (the reason is the audit trail; without one the
// marker is a bare suppression in disguise).
func collectOrderPins(pass *Pass, f *ast.File) map[int]*orderPin {
	pins := make(map[int]*orderPin)
	for _, group := range f.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, markerOrderPinned)
			if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
				continue
			}
			reason := strings.TrimSpace(rest)
			if reason == "" {
				pass.Reportf(c.Pos(), "malformed //cmfl:order-pinned: want `//cmfl:order-pinned <reason>`")
				continue
			}
			pins[pass.Fset().Position(c.Pos()).Line] = &orderPin{reason: reason}
		}
	}
	return pins
}

// loopFrame is one enclosing loop during the walk, with the set of
// variables that take a fresh value each iteration (loop variables plus
// everything declared in the body so far).
type loopFrame struct {
	stmt ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	vars map[types.Object]bool
}

// floatSumVisitor walks one function body maintaining the loop stack.
type floatSumVisitor struct {
	pass  *Pass
	pins  map[int]*orderPin
	loops []loopFrame
	stack []ast.Node
}

func (v *floatSumVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		top := v.stack[len(v.stack)-1]
		v.stack = v.stack[:len(v.stack)-1]
		switch top.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			v.loops = v.loops[:len(v.loops)-1]
		}
		return nil
	}
	v.stack = append(v.stack, n)
	switch n := n.(type) {
	case *ast.ForStmt:
		frame := loopFrame{stmt: n, vars: make(map[types.Object]bool)}
		if init, ok := n.Init.(*ast.AssignStmt); ok {
			v.defineAssigned(frame.vars, init)
		}
		v.loops = append(v.loops, frame)
	case *ast.RangeStmt:
		frame := loopFrame{stmt: n, vars: make(map[types.Object]bool)}
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := v.pass.ObjectOf(id); obj != nil {
					frame.vars[obj] = true
				}
			}
		}
		v.loops = append(v.loops, frame)
	case *ast.AssignStmt:
		if n.Tok == token.DEFINE && len(v.loops) > 0 {
			v.defineAssigned(v.loops[len(v.loops)-1].vars, n)
		}
		v.checkAssign(n)
	case *ast.ValueSpec:
		if len(v.loops) > 0 {
			frame := &v.loops[len(v.loops)-1]
			for _, id := range n.Names {
				if obj := v.pass.ObjectOf(id); obj != nil {
					frame.vars[obj] = true
				}
			}
		}
	case *ast.FuncLit:
		// A closure's parameters rebind per invocation; treat them as
		// per-iteration state of the innermost loop so worker-fanout
		// bodies (`go func(lo, hi int) {...}(...)`) are not misread as
		// loop-invariant accumulation targets.
		if len(v.loops) > 0 {
			frame := &v.loops[len(v.loops)-1]
			for _, field := range n.Type.Params.List {
				for _, id := range field.Names {
					if obj := v.pass.ObjectOf(id); obj != nil {
						frame.vars[obj] = true
					}
				}
			}
		}
	case *ast.CallExpr:
		v.checkAxpy(n)
	}
	return v
}

func (v *floatSumVisitor) defineAssigned(vars map[types.Object]bool, assign *ast.AssignStmt) {
	if assign.Tok != token.DEFINE {
		return
	}
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := v.pass.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
}

// checkAssign flags `sum += x`, `sum -= x`, and `sum = sum ± x` on float
// lvalues that are invariant across every enclosing loop.
func (v *floatSumVisitor) checkAssign(n *ast.AssignStmt) {
	if len(v.loops) == 0 || len(n.Lhs) != 1 {
		return
	}
	lhs := n.Lhs[0]
	if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
		// The spelled-out recurrence `sum = sum + x` / `sum = sum - x`.
		if n.Tok != token.ASSIGN {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok || len(n.Rhs) != 1 {
			return
		}
		bin, ok := ast.Unparen(n.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return
		}
		obj := v.pass.ObjectOf(id)
		if obj == nil || !(v.sameObject(bin.X, obj) || (bin.Op == token.ADD && v.sameObject(bin.Y, obj))) {
			return
		}
	}
	if !isFloatType(v.pass.TypeOf(lhs)) {
		return
	}
	v.flag(n.Pos(), lhs, "float accumulation "+renderLHS(lhs))
}

// checkAxpy flags tensor.Axpy folds into a loop-invariant destination —
// the vectorized form of `sum += x`.
func (v *floatSumVisitor) checkAxpy(call *ast.CallExpr) {
	if len(v.loops) == 0 || len(call.Args) != 3 {
		return
	}
	fn := calleeFunc(v.pass.Pkg, call)
	if fn == nil || fn.FullName() != "cmfl/internal/tensor.Axpy" {
		return
	}
	v.flag(call.Pos(), call.Args[2], "tensor.Axpy into "+renderLHS(call.Args[2]))
}

// flag reports one order-sensitive accumulation, honoring a proven
// //cmfl:order-pinned marker. The hazard loops are the frames across which
// the target is invariant: frames deeper than the one holding the target's
// own per-iteration state. A target that is per-iteration state of the
// innermost loop (delta[j] under `for j`, a body-local accumulator) has no
// hazard frames and is exempt — it is not a cross-iteration reduction.
func (v *floatSumVisitor) flag(pos token.Pos, target ast.Expr, what string) {
	hazard := v.loops[v.innermostVarFrame(target)+1:]
	if len(hazard) == 0 {
		return
	}
	if pin := v.pinAt(pos); pin != nil {
		if bad, why := nonDeterministicLoop(v.pass, hazard); bad != nil {
			loopPos := v.pass.Fset().Position(bad.Pos())
			v.pass.Reportf(pos, "%s is //cmfl:order-pinned, but the enclosing loop at %s:%d %s: the drain order is not reproducible — use shard.Accumulator",
				what, shortFile(loopPos.Filename), loopPos.Line, why)
			return
		}
		v.pass.Facts.FloatSums = append(v.pass.Facts.FloatSums, v.fact("pinned", pin.reason, pos))
		return
	}
	v.pass.Reportf(pos, "%s depends on iteration order, which perturbs float rounding across groupings: route it through shard.Accumulator or annotate //cmfl:order-pinned <reason> on a provably deterministic loop", what)
}

// pinAt finds an order-pinned marker covering pos: on the statement's
// line, the line above it, or on (or above) any enclosing loop.
func (v *floatSumVisitor) pinAt(pos token.Pos) *orderPin {
	lines := []int{v.pass.Fset().Position(pos).Line}
	for _, frame := range v.loops {
		lines = append(lines, v.pass.Fset().Position(frame.stmt.Pos()).Line)
	}
	for _, line := range lines {
		if pin := v.pins[line]; pin != nil {
			return pin
		}
		if pin := v.pins[line-1]; pin != nil {
			return pin
		}
	}
	return nil
}

// innermostVarFrame returns the index of the deepest loop frame whose
// per-iteration variables appear in e, or -1 when e is invariant across
// every enclosing loop.
func (v *floatSumVisitor) innermostVarFrame(e ast.Expr) int {
	deepest := -1
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := v.pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		for i := len(v.loops) - 1; i > deepest; i-- {
			if v.loops[i].vars[obj] {
				deepest = i
				break
			}
		}
		return true
	})
	return deepest
}

// nonDeterministicLoop returns the first hazard loop whose drain order the
// analyzer cannot prove deterministic, with the reason.
func nonDeterministicLoop(pass *Pass, hazard []loopFrame) (ast.Stmt, string) {
	for _, frame := range hazard {
		if rng, ok := frame.stmt.(*ast.RangeStmt); ok {
			switch pass.TypeOf(rng.X).Underlying().(type) {
			case *types.Map:
				return frame.stmt, "ranges over a map"
			case *types.Chan:
				return frame.stmt, "ranges over a channel"
			}
		}
		if why := loopBodyReceives(loopBody(frame.stmt)); why != "" {
			return frame.stmt, why
		}
	}
	return nil, ""
}

func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch s := s.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return nil
}

// loopBodyReceives reports whether the loop body (function literals
// excluded) receives from a channel or selects — either makes the
// iteration-to-value mapping arrival-ordered.
func loopBodyReceives(body *ast.BlockStmt) string {
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			why = "selects over channels"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				why = "receives from a channel"
				return false
			}
		}
		return true
	})
	return why
}

func (v *floatSumVisitor) sameObject(e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && v.pass.ObjectOf(id) == obj
}

func (v *floatSumVisitor) fact(kind, detail string, pos token.Pos) FloatSumFact {
	position := v.pass.Fset().Position(pos)
	return FloatSumFact{Kind: kind, Detail: detail, File: position.Filename, Line: position.Line, Column: position.Column}
}

// renderLHS renders a small expression for finding messages.
func renderLHS(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderLHS(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return renderLHS(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + renderLHS(e.X)
	}
	return "expression"
}

// recordAccumulatorFacts records every shard.Accumulator fold call — the
// order-invariant reduction sites the non-vacuousness guard asserts exist.
func recordAccumulatorFacts(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Pkg, call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		if named := namedRecvType(sig.Recv().Type()); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == accumulatorPath && (obj.Name() == "Accumulator" || obj.Name() == "Scalar") {
				switch fn.Name() {
				case "Add", "Merge", "Round":
					position := pass.Fset().Position(call.Pos())
					pass.Facts.FloatSums = append(pass.Facts.FloatSums, FloatSumFact{
						Kind: "accumulator", Detail: fn.Name(),
						File: position.Filename, Line: position.Line, Column: position.Column,
					})
				}
			}
		}
		return true
	})
}

// namedRecvType unwraps a receiver type to its named type.
func namedRecvType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
