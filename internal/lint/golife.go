package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLife proves that every goroutine the runtime packages spawn has a
// join: some path in the spawned body that a waiter can observe, so
// Shutdown/Close can actually wait for the goroutine instead of leaking
// it past teardown (where it races the next test, holds sockets open, or
// trips the race detector long after its parent returned).
//
// A spawn is joined when the spawned body (followed transitively through
// module callees, but not into nested spawns — their joins are their own
// obligation) contains at least one of:
//
//   - waitgroup: a (*sync.WaitGroup).Done call — the classic wg.Wait join;
//   - done-channel: a send on, or close of, a channel the module receives
//     from somewhere — a completion signal with a waiter;
//   - stop-channel: a receive or select on a channel that is closed in a
//     function reachable from a Close/Shutdown/Stop method — teardown can
//     force the goroutine to observe the close and exit;
//   - context: a receive from (context.Context).Done — cancellation joins.
//
// Spawns whose target cannot be resolved statically (function values,
// out-of-module callees) are findings: an unprovable join is treated as
// no join. goroleak complements this with its infinite-loop heuristic;
// golife is the lifecycle side — not "does it loop" but "can anyone wait
// for it".
var GoLife = &Analyzer{
	Name: "golife",
	Doc:  "every goroutine spawned in the runtime packages must have a provable join reachable from teardown",
	Run:  runGoLife,
}

// GoLifePackages are the packages whose goroutines must be joinable.
// (Var, not const: fixture tests extend it.)
var GoLifePackages = map[string]bool{
	"cmfl/internal/emu":       true,
	"cmfl/internal/emu/shard": true,
	"cmfl/internal/sim":       true,
	"cmfl/internal/telemetry": true,
}

// teardownNames are the method names whose transitive call closure counts
// as "reachable from teardown" for stop-channel classification.
var teardownNames = map[string]bool{"Close": true, "Shutdown": true, "Stop": true}

func runGoLife(pass *Pass) {
	if !GoLifePackages[pass.Pkg.Path] {
		return
	}
	idx := pass.Mod.golife()
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, idx, fd, g)
				return true
			})
		}
	}
}

// checkGoStmt classifies one spawn's join or reports its absence.
func checkGoStmt(pass *Pass, idx *golifeIndex, fd *ast.FuncDecl, g *ast.GoStmt) {
	var body *ast.BlockStmt
	var bodyPkg *Package
	target := "function literal"
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		body, bodyPkg = lit.Body, pass.Pkg
	} else {
		fn := calleeFunc(pass.Pkg, g.Call)
		if fn == nil {
			pass.Reportf(g.Pos(), "%s spawns a goroutine through a function value: the join cannot be proven — spawn a named function or a literal with a visible join", fd.Name.Name)
			return
		}
		target = fn.Name()
		decl, declPkg := pass.Mod.FuncDecl(fn)
		if decl == nil || decl.Body == nil {
			pass.Reportf(g.Pos(), "%s spawns %s, which is outside the module: the join cannot be proven — wrap it in a literal with a visible join", fd.Name.Name, fn.FullName())
			return
		}
		body, bodyPkg = decl.Body, declPkg
	}
	search := &joinSearch{pass: pass, idx: idx, visited: make(map[*types.Func]bool)}
	if kind := search.scan(body, bodyPkg); kind != "" {
		pos := pass.Fset().Position(g.Pos())
		pass.Facts.GoLife = append(pass.Facts.GoLife, GoLifeFact{
			Join: kind, Func: fd.Name.Name,
			File: pos.Filename, Line: pos.Line, Column: pos.Column,
		})
		return
	}
	pass.Reportf(g.Pos(), "%s spawns %s with no provable join: no WaitGroup.Done, no send/close on a channel anyone receives, no receive on a teardown-closed stop channel, no context cancellation — Shutdown/Close cannot wait for this goroutine", fd.Name.Name, target)
}

// joinSearch walks a spawned body (and its module callees) for join
// evidence.
type joinSearch struct {
	pass    *Pass
	idx     *golifeIndex
	visited map[*types.Func]bool
}

// scan returns the first join kind found in body, or "".
func (s *joinSearch) scan(body *ast.BlockStmt, pkg *Package) string {
	kind := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// A nested spawn's join evidence joins the nested goroutine,
			// not this one.
			return false
		case *ast.SendStmt:
			if obj := chanObjOf(pkg, n.Chan); obj != nil && s.idx.received[obj] {
				kind = "done-channel"
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if k := s.classifyReceive(pkg, n.X); k != "" {
					kind = k
					return false
				}
			}
		case *ast.RangeStmt:
			if _, ok := pkg.Info.TypeOf(n.X).Underlying().(*types.Chan); ok {
				if k := s.classifyReceive(pkg, n.X); k != "" {
					kind = k
					return false
				}
			}
		case *ast.CallExpr:
			if k := s.classifyCall(pkg, n); k != "" {
				kind = k
				return false
			}
		}
		return true
	})
	return kind
}

// classifyReceive classifies the channel expression of a receive or range.
func (s *joinSearch) classifyReceive(pkg *Package, ch ast.Expr) string {
	ch = ast.Unparen(ch)
	if call, ok := ch.(*ast.CallExpr); ok {
		if fn := calleeFunc(pkg, call); fn != nil && fn.FullName() == "(context.Context).Done" {
			return "context"
		}
		return ""
	}
	if obj := chanObjOf(pkg, ch); obj != nil && s.idx.teardownClosed[obj] {
		return "stop-channel"
	}
	return ""
}

// classifyCall classifies a call as join evidence, descending into module
// callees.
func (s *joinSearch) classifyCall(pkg *Package, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.ObjectOf(id).(*types.Builtin); ok {
			if b.Name() == "close" && len(call.Args) == 1 {
				if obj := chanObjOf(pkg, call.Args[0]); obj != nil && s.idx.received[obj] {
					return "done-channel"
				}
			}
			return ""
		}
	}
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return ""
	}
	if fn.FullName() == "(*sync.WaitGroup).Done" {
		return "waitgroup"
	}
	if s.visited[fn] {
		return ""
	}
	s.visited[fn] = true
	if decl, declPkg := s.pass.Mod.FuncDecl(fn); decl != nil && decl.Body != nil {
		return s.scan(decl.Body, declPkg)
	}
	return ""
}

// golifeIndex is the module-wide channel-flow index the analyzer shares
// across packages: which channel objects anyone receives from, and which
// are closed on a teardown path.
type golifeIndex struct {
	received       map[types.Object]bool
	teardownClosed map[types.Object]bool
}

// golife builds the index once per module (concurrent passes share it).
func (m *Module) golife() *golifeIndex {
	m.golOnce.Do(func() {
		idx := &golifeIndex{
			received:       make(map[types.Object]bool),
			teardownClosed: make(map[types.Object]bool),
		}
		for _, pkg := range m.Pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.UnaryExpr:
						if n.Op == token.ARROW {
							if obj := chanObjOf(pkg, n.X); obj != nil {
								idx.received[obj] = true
							}
						}
					case *ast.RangeStmt:
						if t := pkg.Info.TypeOf(n.X); t != nil {
							if _, ok := t.Underlying().(*types.Chan); ok {
								if obj := chanObjOf(pkg, n.X); obj != nil {
									idx.received[obj] = true
								}
							}
						}
					}
					return true
				})
			}
		}
		m.indexTeardownCloses(idx)
		m.gol = idx
	})
	return m.gol
}

// indexTeardownCloses records every channel closed in the transitive
// (non-spawn) call closure of the module's Close/Shutdown/Stop functions.
func (m *Module) indexTeardownCloses(idx *golifeIndex) {
	cg := m.CallGraph()
	var work []*types.Func
	seen := make(map[*types.Func]bool)
	for fn := range m.funcDecls {
		if teardownNames[fn.Name()] {
			work = append(work, fn)
			seen[fn] = true
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		ref, ok := m.funcDecls[fn]
		if !ok || ref.Decl.Body == nil {
			continue
		}
		ast.Inspect(ref.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := ref.Pkg.Info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "close" && len(call.Args) == 1 {
					if obj := chanObjOf(ref.Pkg, call.Args[0]); obj != nil {
						idx.teardownClosed[obj] = true
					}
					return true
				}
			}
			return true
		})
		if node := cg.Nodes[fn]; node != nil {
			for _, site := range node.Sites {
				if site.Spawn || site.Callee == nil || seen[site.Callee] {
					continue
				}
				if _, inModule := m.funcDecls[site.Callee]; inModule {
					seen[site.Callee] = true
					work = append(work, site.Callee)
				}
			}
		}
	}
}

// chanObjOf resolves a channel expression to the variable or field object
// it names, when it names one directly.
func chanObjOf(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		return pkg.Info.ObjectOf(e.Sel)
	}
	return nil
}
