package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags leak candidates in the concurrency-scoped packages: a `go`
// statement whose spawned body — followed transitively through in-module
// callees — executes an infinite loop (`for {}` / `for true {}`) that
// contains no return and no break. Such a goroutine has no reachable exit
// signal: no stop-channel case that returns, no error path out of the
// accept loop, nothing the server's Close can unblock. The heuristic is
// deliberately syntactic (a loop that CAN exit has a return or break
// somewhere in it); goroutines that block forever on a channel nobody
// closes are out of scope — the race and chaos suites own liveness.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "spawned goroutines in concurrency-scoped packages must have a reachable exit (no infinite loop without return/break)",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	if !ConcurrencyPackages[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkSpawn(pass, stmt)
			return true
		})
	}
}

// checkSpawn inspects one `go` statement's transitive body for an
// inescapable loop.
func checkSpawn(pass *Pass, stmt *ast.GoStmt) {
	visited := make(map[*types.Func]bool)
	var loopAt *ast.ForStmt

	var scanBody func(pkg *Package, body *ast.BlockStmt)
	scanBody = func(pkg *Package, body *ast.BlockStmt) {
		if loopAt != nil {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if loopAt != nil {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // runs on its own schedule; not this goroutine's loop
			case *ast.GoStmt:
				return false // nested spawns are their own findings
			case *ast.ForStmt:
				if isInfiniteLoop(pkg, n) && !loopHasExit(n) {
					loopAt = n
					return false
				}
			case *ast.CallExpr:
				fn := calleeFunc(pkg, n)
				if fn == nil || visited[fn] {
					return true
				}
				visited[fn] = true
				if decl, declPkg := pass.Mod.FuncDecl(fn); decl != nil && decl.Body != nil {
					scanBody(declPkg, decl.Body)
				}
			}
			return true
		})
	}

	if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
		scanBody(pass.Pkg, lit.Body)
	} else if fn := calleeFunc(pass.Pkg, stmt.Call); fn != nil {
		visited[fn] = true
		if decl, declPkg := pass.Mod.FuncDecl(fn); decl != nil && decl.Body != nil {
			scanBody(declPkg, decl.Body)
		}
	}
	if loopAt != nil {
		position := pass.Fset().Position(loopAt.Pos())
		pass.Reportf(stmt.Pos(), "goroutine has no reachable exit: infinite loop at %s:%d contains no return or break (add a stop signal or justify with //cmfl:lint-ignore goroleak)",
			shortFile(position.Filename), position.Line)
	}
}

// isInfiniteLoop reports `for { ... }` and `for true { ... }`.
func isInfiniteLoop(pkg *Package, loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	tv, ok := pkg.Info.Types[loop.Cond]
	return ok && tv.Value != nil && tv.Value.String() == "true"
}

// loopHasExit reports whether the loop body contains a return or break at
// any depth (function literals excluded — their control flow is separate).
// A break bound to an inner loop still exits that iteration chain
// eventually, so any break counts; the heuristic errs toward silence.
func loopHasExit(loop *ast.ForStmt) bool {
	exit := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if exit {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exit = true
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				exit = true
				return false
			}
		}
		return true
	})
	return exit
}
