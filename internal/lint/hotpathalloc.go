package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc enforces the PR-1 contract: functions annotated
// //cmfl:hotpath are on the per-batch/per-coordinate training or
// aggregation path and must not allocate. The analyzer flags the Go
// constructs that heap-allocate —
//
//   - make, new, append (except the sanctioned reuse idiom
//     `append(buf[:0], ...)`, whose amortized cost is zero),
//   - slice and map composite literals, and &T{...} (value struct
//     literals stay on the stack and are allowed),
//   - string concatenation that is not constant-folded,
//   - string<->[]byte/[]rune conversions,
//   - func literals (closures),
//
// — directly in the annotated body and transitively through the entire
// in-module call chain (via the module call graph), so a hot function
// cannot launder an append through any depth of helpers. Findings against
// callees report the call path from the annotation to the allocation.
// Callees that are themselves annotated are barriers: they are checked in
// their own right, not re-reported at callers. Lines inside a callee marked
// //cmfl:lint-ignore hotpathalloc (e.g. amortized grow-only resizes) do not
// propagate to callers.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//cmfl:hotpath functions must be allocation-free through their entire in-module call chain",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	sums := pass.Mod.Summaries()
	graph := pass.Mod.CallGraph()
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasMarker(fd, markerHotPath) {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if s := sums[fn]; s != nil {
				for _, w := range s.Direct[EffAlloc] {
					pass.Reportf(w.Pos, "%s in hot path %s", w.What, fd.Name.Name)
				}
			}
			scanHotCallees(pass, graph, sums, fd, fn)
		}
	}
}

// scanHotCallees walks the call graph from every call site of the annotated
// function, breadth-first through non-spawn in-module edges, and reports the
// first justification-free allocation reachable from each site together
// with the call path that reaches it.
func scanHotCallees(pass *Pass, graph *CallGraph, sums map[*types.Func]*EffectSummary, fd *ast.FuncDecl, fn *types.Func) {
	node := graph.Node(fn)
	if node == nil {
		return
	}
	type item struct {
		fn   *types.Func
		path []*types.Func // call chain from fd to fn, inclusive
	}
	for _, site := range node.Sites {
		if site.Spawn || site.Callee == nil || !pass.InModule(site.Callee) {
			continue
		}
		if isHotPathBarrier(pass.Mod, site.Callee) {
			continue
		}
		visited := map[*types.Func]bool{fn: true}
		queue := []item{{site.Callee, []*types.Func{site.Callee}}}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			if visited[it.fn] {
				continue
			}
			visited[it.fn] = true
			s := sums[it.fn]
			if s == nil {
				continue // no loaded body to vouch for; dynamic conservatism stops here
			}
			if w, ok := firstUnsuppressedAlloc(pass, s); ok {
				position := pass.Fset().Position(w.Pos)
				pass.Reportf(site.Call.Pos(), "hot path %s calls %s, which allocates (%s at %s:%d)",
					fd.Name.Name, renderCallPath(it.path), w.What, position.Filename, position.Line)
				break // one finding per call site; deeper paths add noise, not signal
			}
			next := graph.Node(it.fn)
			if next == nil {
				continue
			}
			for _, cs := range next.Sites {
				if cs.Spawn || cs.Callee == nil || visited[cs.Callee] || !pass.InModule(cs.Callee) {
					continue
				}
				if isHotPathBarrier(pass.Mod, cs.Callee) {
					continue
				}
				path := make([]*types.Func, len(it.path), len(it.path)+1)
				copy(path, it.path)
				queue = append(queue, item{cs.Callee, append(path, cs.Callee)})
			}
		}
	}
}

// isHotPathBarrier reports whether callee is itself annotated //cmfl:hotpath
// (checked in its own right, so callers need not re-scan it).
func isHotPathBarrier(mod *Module, callee *types.Func) bool {
	decl, _ := mod.FuncDecl(callee)
	return decl != nil && funcHasMarker(decl, markerHotPath)
}

// firstUnsuppressedAlloc returns the summary's first direct allocation not
// covered by a callee-side //cmfl:lint-ignore hotpathalloc marker — an
// amortized allocation justified inside a helper does not re-surface at
// every annotated caller.
func firstUnsuppressedAlloc(pass *Pass, s *EffectSummary) (Witness, bool) {
	supp := pass.Mod.Suppressions()
	for _, w := range s.Direct[EffAlloc] {
		position := pass.Fset().Position(w.Pos)
		if supp.matches(Finding{Analyzer: pass.Analyzer.Name, File: position.Filename, Line: position.Line}) {
			continue
		}
		return w, true
	}
	return Witness{}, false
}

// renderCallPath renders "g" or "g → h → k" for finding messages.
func renderCallPath(path []*types.Func) string {
	names := make([]string, len(path))
	for i, fn := range path {
		names[i] = fn.Name()
	}
	return strings.Join(names, " → ")
}

// calleeFunc resolves a call expression to its static *types.Func, or nil
// for builtins, conversions, function-typed variables and interface
// methods (dynamic dispatch cannot be scanned).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// scanAllocs walks a function body and invokes report for every allocating
// construct. info supplies the type information governing body (callers may
// cross packages).
func scanAllocs(info *types.Info, body *ast.BlockStmt, report func(pos token.Pos, what string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if what := allocatingCall(info, n); what != "" {
				report(n.Pos(), what)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address-of composite literal")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal")
			case *types.Map:
				report(n.Pos(), "map literal")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				report(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation")
			}
		case *ast.FuncLit:
			report(n.Pos(), "func literal (closure)")
			return false // the closure body is the closure's problem
		}
		return true
	})
}

// allocatingCall classifies a call as an allocation: the make/new/append
// builtins and string conversions. It returns "" for harmless calls.
func allocatingCall(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				return "make"
			case "new":
				return "new"
			case "append":
				if !isReuseAppend(call) {
					return "append"
				}
			}
			return ""
		}
	}
	// Type conversion string([]byte), []byte(string), string([]rune), ...
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := info.TypeOf(call.Fun)
		src := info.TypeOf(call.Args[0])
		if dst != nil && src != nil {
			dstStr, srcStr := isStringType(dst), isStringType(src)
			if dstStr != srcStr && (dstStr || srcStr) && !isNumeric(dst) && !isNumeric(src) {
				return "string conversion"
			}
		}
	}
	return ""
}

// isReuseAppend recognizes `append(buf[:0], ...)` — the repo's sanctioned
// buffer-reuse idiom whose amortized allocation cost is zero.
func isReuseAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	slice, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || slice.Low != nil || slice.High == nil {
		return false
	}
	lit, ok := slice.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return false // constant-folded at compile time
	}
	return isStringType(info.TypeOf(e.X)) || isStringType(info.TypeOf(e.Y))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
