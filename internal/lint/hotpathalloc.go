package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the PR-1 contract: functions annotated
// //cmfl:hotpath are on the per-batch/per-coordinate training or
// aggregation path and must not allocate. The analyzer flags the Go
// constructs that heap-allocate —
//
//   - make, new, append (except the sanctioned reuse idiom
//     `append(buf[:0], ...)`, whose amortized cost is zero),
//   - slice and map composite literals, and &T{...} (value struct
//     literals stay on the stack and are allowed),
//   - string concatenation that is not constant-folded,
//   - string<->[]byte/[]rune conversions,
//   - func literals (closures),
//
// — both directly in the annotated body and inside module callees one
// level deep, so a hot function cannot launder an append through a helper.
// Callees that are themselves annotated are skipped here (they are checked
// in their own right); lines inside a callee marked
// //cmfl:lint-ignore hotpathalloc (e.g. amortized grow-only resizes) do
// not propagate to callers.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//cmfl:hotpath functions must not allocate, including module callees one level deep",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasMarker(fd, markerHotPath) {
				continue
			}
			scanAllocs(pass, pass.Pkg, fd.Body, func(pos token.Pos, what string) {
				pass.Reportf(pos, "%s in hot path %s", what, fd.Name.Name)
			})
			scanHotCallees(pass, fd)
		}
	}
}

// scanHotCallees checks every resolvable module callee of the annotated
// function for direct allocations and reports them at the call site.
func scanHotCallees(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Pkg, call)
		if fn == nil || !pass.InModule(fn) {
			return true
		}
		decl, declPkg := pass.Mod.FuncDecl(fn)
		if decl == nil || decl.Body == nil || funcHasMarker(decl, markerHotPath) {
			return true
		}
		reported := false
		scanAllocs(pass, declPkg, decl.Body, func(pos token.Pos, what string) {
			if reported || suppressedAt(pass, pos) {
				return
			}
			reported = true
			position := pass.Fset().Position(pos)
			pass.Reportf(call.Pos(), "hot path %s calls %s, which allocates (%s at %s:%d)",
				fd.Name.Name, fn.Name(), what, position.Filename, position.Line)
		})
		return true
	})
}

// suppressedAt reports whether a hotpathalloc lint-ignore marker covers pos
// in the callee's file — used so an amortized allocation justified inside a
// helper does not re-surface at every annotated caller.
func suppressedAt(pass *Pass, pos token.Pos) bool {
	position := pass.Fset().Position(pos)
	for _, pkg := range pass.Mod.Pkgs {
		for _, f := range pkg.Files {
			ff := pass.Fset().File(f.Pos())
			if ff == nil || ff.Name() != position.Filename {
				continue
			}
			idx := newSuppressionIndex()
			var scratch []Finding
			idx.addFile(pass.Fset(), f, &scratch)
			return idx.matches(Finding{Analyzer: pass.Analyzer.Name, File: position.Filename, Line: position.Line})
		}
	}
	return false
}

// calleeFunc resolves a call expression to its static *types.Func, or nil
// for builtins, conversions, function-typed variables and interface
// methods (dynamic dispatch cannot be scanned).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// scanAllocs walks a function body and invokes report for every
// allocating construct. pkg supplies the type info governing body (the
// callee scan crosses packages).
func scanAllocs(pass *Pass, pkg *Package, body *ast.BlockStmt, report func(pos token.Pos, what string)) {
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if what := allocatingCall(info, n); what != "" {
				report(n.Pos(), what)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address-of composite literal")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal")
			case *types.Map:
				report(n.Pos(), "map literal")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				report(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation")
			}
		case *ast.FuncLit:
			report(n.Pos(), "func literal (closure)")
			return false // the closure body is the closure's problem
		}
		return true
	})
}

// allocatingCall classifies a call as an allocation: the make/new/append
// builtins and string conversions. It returns "" for harmless calls.
func allocatingCall(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				return "make"
			case "new":
				return "new"
			case "append":
				if !isReuseAppend(call) {
					return "append"
				}
			}
			return ""
		}
	}
	// Type conversion string([]byte), []byte(string), string([]rune), ...
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := info.TypeOf(call.Fun)
		src := info.TypeOf(call.Args[0])
		if dst != nil && src != nil {
			dstStr, srcStr := isStringType(dst), isStringType(src)
			if dstStr != srcStr && (dstStr || srcStr) && !isNumeric(dst) && !isNumeric(src) {
				return "string conversion"
			}
		}
	}
	return ""
}

// isReuseAppend recognizes `append(buf[:0], ...)` — the repo's sanctioned
// buffer-reuse idiom whose amortized allocation cost is zero.
func isReuseAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	slice, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || slice.Low != nil || slice.High == nil {
		return false
	}
	lit, ok := slice.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return false // constant-folded at compile time
	}
	return isStringType(info.TypeOf(e.X)) || isStringType(info.TypeOf(e.Y))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
