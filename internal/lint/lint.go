package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Analyzer is one named check over a type-checked package. Analyzers are
// repo-specific: they enforce invariants of this codebase (hot-path
// allocation freedom, deterministic aggregation order, goroutine and mutex
// discipline, seed provenance, the cmfl_* metric schema) rather than
// general Go style.
//
// Run executes per package and may record cross-package facts on
// pass.Facts; the optional Merge phase then runs once over every target's
// facts — in package-path order, with no type information — which is what
// lets merge-only conclusions (duplicate metric families, stream-purpose
// collisions) be recomputed from the cache without reloading the module.
type Analyzer struct {
	Name  string
	Doc   string
	Run   func(*Pass)
	Merge func(*MergePass)
}

// Finding is one reported violation, positioned for editors and CI logs.
// Findings may carry machine-applicable Edits; `cmfl-vet -fix` applies them
// (see fix.go) and re-runs the suite to prove convergence.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	// Edits, when non-empty, rewrite File so the finding no longer fires.
	Edits []TextEdit `json:"edits,omitempty"`
}

// TextEdit is one byte-range replacement inside a finding's file: replace
// [Start, End) with NewText. Offsets are 0-based byte positions into the
// file contents the analysis saw.
type TextEdit struct {
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// Result is the machine-readable outcome of a run: every surviving finding
// plus how many were silenced by //cmfl:lint-ignore comments. It is the
// JSON document cmfl-vet emits with -json. Stats is present only when the
// caller asked for it (-stats).
type Result struct {
	Findings   []Finding `json:"findings"`
	Suppressed int       `json:"suppressed"`
	Stats      *RunStats `json:"stats,omitempty"`
}

// RunStats reports where a run spent its time and how the cache behaved.
type RunStats struct {
	Analyzers   []AnalyzerStat `json:"analyzers"`
	CacheHits   int            `json:"cache_hits"`
	CacheMisses int            `json:"cache_misses"`
	LoadMS      int64          `json:"load_ms"`
	WallMS      int64          `json:"wall_ms"`
}

// AnalyzerStat is one analyzer's accumulated wall time across all packages
// (passes run in parallel, so these can sum to more than WallMS).
type AnalyzerStat struct {
	Name     string `json:"name"`
	MS       int64  `json:"ms"`
	Findings int    `json:"findings"`
}

// PackageFacts is the serializable cross-package state one package
// contributes to the merge phase. Each analyzer owns exactly one field
// (metricschema → Metrics, seedtaint → Streams), which is what makes
// concurrent passes over the same package race-free.
type PackageFacts struct {
	Metrics    []MetricFact    `json:"metrics,omitempty"`
	Streams    []StreamFact    `json:"streams,omitempty"`
	Proto      []ProtoFact     `json:"proto,omitempty"`
	LockEdges  []LockEdgeFact  `json:"lock_edges,omitempty"`
	API        []APISymbolFact `json:"api,omitempty"`
	APIChanges []APIChangeFact `json:"api_changes,omitempty"`
	FloatSums  []FloatSumFact  `json:"float_sums,omitempty"`
	Clocks     []ClockFact     `json:"clocks,omitempty"`
	GoLife     []GoLifeFact    `json:"golife,omitempty"`
}

// MetricFact is one telemetry metric-family registration site.
type MetricFact struct {
	Family string `json:"family"`
	Kind   string `json:"kind"`
	Help   string `json:"help"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// StreamFact is one xrand.Derive call site with its constant purpose.
type StreamFact struct {
	Purpose string `json:"purpose"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
}

// ProtoFact is one wire-protocol event site recorded by protostate: a
// frame kind written or read, or a shard directive sent or dispatched.
// Side is the peer attribution ("client", "server", "both", or "" when
// the function is reachable from neither entry point).
type ProtoFact struct {
	Kind   string `json:"kind"`
	Op     string `json:"op"` // frame-write | frame-read | dir-send | dir-case
	Side   string `json:"side,omitempty"`
	Func   string `json:"func"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// LockEdgeFact is one observed lock-order edge: To was acquired at the
// recorded site while From was provably held.
type LockEdgeFact struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Func   string `json:"func"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// APISymbolFact is one exported-surface entry of a public package.
type APISymbolFact struct {
	Sym    string `json:"sym"`
	Decl   string `json:"decl"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// APIChangeFact is one //cmfl:api-change marker, waiving the package's
// API baseline for this run.
type APIChangeFact struct {
	Reason string `json:"reason"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// FloatSumFact is floatsum's proof surface in a grouping-invariance
// package: Kind "accumulator" records one exact-summation fold site
// (shard.Accumulator Add/Merge/Round), Kind "pinned" records one
// order-sensitive accumulation whose //cmfl:order-pinned annotation the
// analyzer proved against its enclosing loops. Detail carries the
// accumulator method or the pin reason.
type FloatSumFact struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// ClockFact is wallclock's proof surface: Kind "hook-read" records one
// call into internal/vclock (the sanctioned time source), Kind "scope"
// records, once per package, how many function bodies were scanned (Count)
// — the non-vacuousness guard asserts the scan saw real code.
type ClockFact struct {
	Kind   string `json:"kind"`
	Func   string `json:"func,omitempty"`
	Count  int    `json:"count,omitempty"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// GoLifeFact is one proven goroutine join: a `go` statement in a
// lifecycle-scoped package whose spawned body golife tied to a WaitGroup,
// a done channel the module receives from, a stop channel closed on the
// Shutdown/Close path, or a context cancellation.
type GoLifeFact struct {
	Join   string `json:"join"` // waitgroup | done-channel | stop-channel | context
	Func   string `json:"func,omitempty"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	Analyzer *Analyzer
	Mod      *Module
	Pkg      *Package

	// Facts collects this package's contribution to the analyzer's merge
	// phase. Shared by all analyzers running over the package; each writes
	// only its own field.
	Facts *PackageFacts

	findings *[]Finding
}

// Fset returns the run's file set.
func (p *Pass) Fset() *token.FileSet { return p.Mod.Fset }

// TypeOf returns the type of an expression in this package, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier in this package.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// InModule reports whether obj is declared inside the module under
// analysis (as opposed to the standard library).
func (p *Pass) InModule(obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == p.Mod.Path || hasPathPrefix(path, p.Mod.Path)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportEdits(pos, nil, format, args...)
}

// ReportEdits records a finding at pos carrying machine-applicable edits.
func (p *Pass) ReportEdits(pos token.Pos, edits []TextEdit, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
		Edits:    edits,
	})
}

// EditFor builds a TextEdit replacing node's source range with newText.
// The offsets are byte positions in the node's file.
func (p *Pass) EditFor(n ast.Node, newText string) TextEdit {
	f := p.Mod.Fset.File(n.Pos())
	return TextEdit{Start: f.Offset(n.Pos()), End: f.Offset(n.End()), NewText: newText}
}

// SourceFiles yields the package files an analyzer should inspect:
// generated files are skipped wholesale (test files never reach the loader).
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// TargetFacts pairs a package path with the facts its passes produced.
type TargetFacts struct {
	Path  string        `json:"path"`
	Facts *PackageFacts `json:"facts"`
}

// MergePass is the cross-package phase context: every target's facts in
// package-path order, and nothing else — no syntax, no types — so merges
// replay identically from cached facts.
type MergePass struct {
	Analyzer *Analyzer
	Targets  []*TargetFacts
	// RootDir is the module root, for merges that consult committed
	// artifacts (the apicompat baseline).
	RootDir string

	findings *[]Finding
}

// Reportf records a merge finding at an explicit position (facts carry
// file/line/column; there is no token.Pos on the warm path).
func (mp *MergePass) Reportf(file string, line, col int, format string, args ...any) {
	*mp.findings = append(*mp.findings, Finding{
		Analyzer: mp.Analyzer.Name,
		File:     file,
		Line:     line,
		Column:   col,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer of the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		DeterministicOrder,
		FloatSum,
		WallClock,
		MetricSchema,
		ErrCheck,
		FloatEq,
		ConcSafety,
		GoroLeak,
		GoLife,
		SeedTaint,
		ProtoState,
		LockOrder,
		Exhaustive,
		APICompat,
	}
}

// passResult is the output of one (analyzer, package) pass.
type passResult struct {
	findings []Finding
}

// Run executes the analyzers over the target packages, applies
// //cmfl:lint-ignore suppressions, and returns the surviving findings
// sorted by position. Malformed suppression comments (missing analyzer
// name or justification) are themselves findings: the whole point of the
// marker is an auditable reason.
//
// Passes run in parallel across (analyzer, package) pairs; the Module's
// lazily built shared structures (call graph, summaries, suppressions) are
// protected by sync.Once.
func Run(mod *Module, targets []*Package, analyzers []*Analyzer) Result {
	perPkg, merged, _ := runPasses(mod, targets, analyzers, nil)
	var findings []Finding
	for _, pr := range perPkg {
		findings = append(findings, pr.findings...)
	}
	findings = append(findings, merged...)
	return finish(findings, mod.Suppressions(), nil)
}

// runPasses executes every (analyzer, target) pass concurrently, then the
// merge phase sequentially. It returns per-target pass findings (indexed
// like targets; merge findings separate so the cache can store pass-level
// findings only) and the per-target facts.
func runPasses(mod *Module, targets []*Package, analyzers []*Analyzer, stats *RunStats) ([]passResult, []Finding, []*TargetFacts) {
	facts := make([]*PackageFacts, len(targets))
	for i := range facts {
		facts[i] = &PackageFacts{}
	}
	buffers := make([][]Finding, len(analyzers)*len(targets))
	durations := make([]int64, len(analyzers))

	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for ai, a := range analyzers {
		for ti, pkg := range targets {
			wg.Add(1)
			go func(ai, ti int, a *Analyzer, pkg *Package) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				start := time.Now()
				var local []Finding
				a.Run(&Pass{Analyzer: a, Mod: mod, Pkg: pkg, Facts: facts[ti], findings: &local})
				buffers[ai*len(targets)+ti] = local
				atomic.AddInt64(&durations[ai], int64(time.Since(start)))
			}(ai, ti, a, pkg)
		}
	}
	wg.Wait()

	perPkg := make([]passResult, len(targets))
	for ai := range analyzers {
		for ti := range targets {
			perPkg[ti].findings = append(perPkg[ti].findings, buffers[ai*len(targets)+ti]...)
		}
	}

	tf := make([]*TargetFacts, len(targets))
	for i, pkg := range targets {
		tf[i] = &TargetFacts{Path: pkg.Path, Facts: facts[i]}
	}
	merged := runMerges(analyzers, tf, durations, mod.RootDir)

	if stats != nil {
		fillAnalyzerStats(stats, analyzers, durations, buffers, merged)
	}
	return perPkg, merged, tf
}

// runMerges executes the merge phase over target facts in package-path
// order. durations, when non-nil, accumulates merge wall time per analyzer
// index.
func runMerges(analyzers []*Analyzer, tf []*TargetFacts, durations []int64, rootDir string) []Finding {
	ordered := make([]*TargetFacts, len(tf))
	copy(ordered, tf)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Path < ordered[j].Path })

	var merged []Finding
	for ai, a := range analyzers {
		if a.Merge == nil {
			continue
		}
		start := time.Now()
		a.Merge(&MergePass{Analyzer: a, Targets: ordered, RootDir: rootDir, findings: &merged})
		if durations != nil {
			durations[ai] += int64(time.Since(start))
		}
	}
	return merged
}

// finish applies suppressions (including reporting malformed markers) and
// sorts. supp may carry malformed-marker findings discovered at scan time.
func finish(findings []Finding, supp *suppressionIndex, stats *RunStats) Result {
	findings = append(findings, supp.malformed...)
	kept := make([]Finding, 0, len(findings))
	suppressed := 0
	for _, f := range findings {
		if supp.matches(f) {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Message < b.Message
	})
	return Result{Findings: kept, Suppressed: suppressed, Stats: stats}
}

// fillAnalyzerStats aggregates per-analyzer durations and finding counts.
func fillAnalyzerStats(stats *RunStats, analyzers []*Analyzer, durations []int64, buffers [][]Finding, merged []Finding) {
	mergeCounts := make(map[string]int)
	for _, f := range merged {
		mergeCounts[f.Analyzer]++
	}
	nTargets := 0
	if len(analyzers) > 0 {
		nTargets = len(buffers) / len(analyzers)
	}
	for ai, a := range analyzers {
		count := mergeCounts[a.Name]
		for ti := 0; ti < nTargets; ti++ {
			count += len(buffers[ai*nTargets+ti])
		}
		stats.Analyzers = append(stats.Analyzers, AnalyzerStat{
			Name:     a.Name,
			MS:       durations[ai] / int64(time.Millisecond),
			Findings: count,
		})
	}
}

func hasPathPrefix(path, prefix string) bool {
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}
