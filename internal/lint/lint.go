package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a type-checked package. Analyzers are
// repo-specific: they enforce invariants of this codebase (hot-path
// allocation freedom, deterministic aggregation order, the cmfl_* metric
// schema) rather than general Go style.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Finding is one reported violation, positioned for editors and CI logs.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// Result is the machine-readable outcome of a run: every surviving finding
// plus how many were silenced by //cmfl:lint-ignore comments. It is the
// JSON document cmfl-vet emits with -json.
type Result struct {
	Findings   []Finding `json:"findings"`
	Suppressed int       `json:"suppressed"`
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	Analyzer *Analyzer
	Mod      *Module
	Pkg      *Package

	// Shared is runner-wide scratch state keyed by analyzer name, for
	// checks that span packages (metric family uniqueness).
	Shared map[string]any

	findings *[]Finding
}

// Fset returns the run's file set.
func (p *Pass) Fset() *token.FileSet { return p.Mod.Fset }

// TypeOf returns the type of an expression in this package, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier in this package.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// InModule reports whether obj is declared inside the module under
// analysis (as opposed to the standard library).
func (p *Pass) InModule(obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == p.Mod.Path || hasPathPrefix(path, p.Mod.Path)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SourceFiles yields the package files an analyzer should inspect:
// generated files are skipped wholesale (test files never reach the loader).
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Pkg.Files {
		if isGenerated(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// All returns every analyzer of the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		DeterministicOrder,
		MetricSchema,
		ErrCheck,
		FloatEq,
	}
}

// Run executes the analyzers over the target packages, applies
// //cmfl:lint-ignore suppressions, and returns the surviving findings
// sorted by position. Malformed suppression comments (missing analyzer
// name or justification) are themselves findings: the whole point of the
// marker is an auditable reason.
func Run(mod *Module, targets []*Package, analyzers []*Analyzer) Result {
	var findings []Finding
	shared := make(map[string]any)
	for _, a := range analyzers {
		for _, pkg := range targets {
			pass := &Pass{Analyzer: a, Mod: mod, Pkg: pkg, Shared: shared, findings: &findings}
			a.Run(pass)
		}
	}

	// Collect suppressions from the target packages and any module package
	// hosting a finding (the callee scan can report against other files).
	supp := newSuppressionIndex()
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			supp.addFile(mod.Fset, f, &findings)
		}
	}

	kept := findings[:0]
	suppressed := 0
	for _, f := range findings {
		if supp.matches(f) {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Message < b.Message
	})
	return Result{Findings: kept, Suppressed: suppressed}
}

func hasPathPrefix(path, prefix string) bool {
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}
