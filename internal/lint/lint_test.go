package lint

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks one package under testdata/src. Fixtures are
// loaded per test (not shared) so suppression markers and metric-family
// state in one fixture cannot leak into another's run.
func loadFixture(t *testing.T, name string) (*Package, *Module) {
	t.Helper()
	targets, mod, err := Load(filepath.Join("testdata", "src", name), []string{"."})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(targets) != 1 {
		t.Fatalf("fixture %s: got %d target packages, want 1", name, len(targets))
	}
	return targets[0], mod
}

// wantRe matches the expectation comments fixtures carry:
// `// want "regexp"` (multiple quoted patterns allowed on one line).
var wantRe = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	pattern *regexp.Regexp
	met     bool
}

// collectWants indexes every `// want` comment by (file base name, line).
func collectWants(t *testing.T, mod *Module, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := mod.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				ms := wantRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment without quoted pattern: %s", key, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &expectation{pattern: re})
				}
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over one fixture package and matches the
// findings against its want comments, one-to-one.
func checkFixture(t *testing.T, name string, analyzers []*Analyzer) Result {
	t.Helper()
	pkg, mod := loadFixture(t, name)
	wants := collectWants(t, mod, pkg)
	res := Run(mod, []*Package{pkg}, analyzers)
	matchWants(t, wants, res)
	return res
}

// matchWants pairs findings against want expectations one-to-one.
func matchWants(t *testing.T, wants map[string][]*expectation, res Result) {
	t.Helper()
	for _, f := range res.Findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.File), f.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.met && w.pattern.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: [%s] %s", key, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.met {
				t.Errorf("missing finding at %s: no message matched %q", key, w.pattern)
			}
		}
	}
}

// checkScopedFixture is checkFixture for analyzers gated on a package-scope
// set (ConcurrencyPackages, SeedTaintPackages): the fixture package is
// promoted into the scope for the duration of the run.
func checkScopedFixture(t *testing.T, name string, analyzers []*Analyzer, scope map[string]bool) Result {
	t.Helper()
	pkg, mod := loadFixture(t, name)
	if scope[pkg.Path] {
		t.Fatalf("fixture %s unexpectedly already in scope", pkg.Path)
	}
	scope[pkg.Path] = true
	defer delete(scope, pkg.Path)
	wants := collectWants(t, mod, pkg)
	res := Run(mod, []*Package{pkg}, analyzers)
	matchWants(t, wants, res)
	return res
}

func TestHotPathAllocFixture(t *testing.T) {
	res := checkFixture(t, "hotpathalloc", []*Analyzer{HotPathAlloc})
	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the justified direct append)", res.Suppressed)
	}
}

func TestDeterministicOrderFixture(t *testing.T) {
	res := checkFixture(t, "deterministicorder", []*Analyzer{DeterministicOrder})
	// Rule 2 is scoped to EnginePackages: the unannotated packageRand must
	// stay silent while the fixture is outside that set.
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "packageRand") {
			t.Errorf("rule 2 fired outside EnginePackages: %s", f)
		}
	}
}

func TestDeterministicOrderEnginePackageRule(t *testing.T) {
	pkg, mod := loadFixture(t, "deterministicorder")
	if EnginePackages[pkg.Path] {
		t.Fatalf("fixture %s unexpectedly already an engine package", pkg.Path)
	}
	EnginePackages[pkg.Path] = true
	defer delete(EnginePackages, pkg.Path)

	res := Run(mod, []*Package{pkg}, []*Analyzer{DeterministicOrder})
	found := false
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "global math/rand source (Intn) in packageRand") {
			found = true
		}
	}
	if !found {
		t.Errorf("promoting the fixture into EnginePackages did not flag packageRand's global rand draw; findings: %v", res.Findings)
	}
}

func TestMetricSchemaFixture(t *testing.T) {
	checkFixture(t, "metricschema", []*Analyzer{MetricSchema})
}

func TestErrCheckFixture(t *testing.T) {
	res := checkFixture(t, "errcheck", []*Analyzer{ErrCheck})
	if res.Suppressed != 0 {
		t.Errorf("suppressed = %d, want 0", res.Suppressed)
	}
}

func TestFloatEqFixture(t *testing.T) {
	checkFixture(t, "floateq", []*Analyzer{FloatEq})
}

// TestSuppressionContract asserts the lint-ignore edge cases explicitly:
// the malformed-marker line cannot carry a want comment (the comment text
// would make the marker well-formed).
func TestSuppressionContract(t *testing.T) {
	pkg, mod := loadFixture(t, "suppress")
	res := Run(mod, []*Package{pkg}, []*Analyzer{ErrCheck})

	if res.Suppressed != 2 {
		t.Errorf("suppressed = %d, want 2 (same-line and line-above markers)", res.Suppressed)
	}
	var malformed, errcheck int
	for _, f := range res.Findings {
		switch {
		case f.Analyzer == "lint" && strings.Contains(f.Message, "malformed //cmfl:lint-ignore"):
			malformed++
		case f.Analyzer == "errcheck":
			errcheck++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if malformed != 1 {
		t.Errorf("malformed-marker findings = %d, want 1", malformed)
	}
	// missingReason (marker without reason does not silence) and
	// wrongAnalyzer (floateq marker does not silence errcheck).
	if errcheck != 2 {
		t.Errorf("surviving errcheck findings = %d, want 2", errcheck)
	}
}

// TestGeneratedAndTestFilesSkipped: gen.go (generated header) and
// skipped_test.go are full of violations; only plain.go may report.
func TestGeneratedAndTestFilesSkipped(t *testing.T) {
	pkg, mod := loadFixture(t, "generated")
	for _, f := range pkg.Files {
		name := filepath.Base(mod.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader parsed test file %s", name)
		}
	}
	res := Run(mod, []*Package{pkg}, All())
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %v, want exactly the one in plain.go", res.Findings)
	}
	f := res.Findings[0]
	if filepath.Base(f.File) != "plain.go" || f.Analyzer != "errcheck" {
		t.Errorf("finding = %s, want the errcheck finding in plain.go", f)
	}
}

// TestResultJSONRoundTrip: the -json document must survive a decode/encode
// cycle bit-for-bit, so CI tooling can post-process it.
func TestResultJSONRoundTrip(t *testing.T) {
	pkg, mod := loadFixture(t, "floateq")
	res := Run(mod, []*Package{pkg}, []*Analyzer{FloatEq})
	if len(res.Findings) == 0 {
		t.Fatal("fixture produced no findings to round-trip")
	}
	for _, orig := range []Result{res, {}} {
		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Result
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(orig, back) {
			t.Errorf("round trip changed the result:\n  orig: %+v\n  back: %+v", orig, back)
		}
	}
}

// TestRepoClean is the acceptance gate: the repository itself must carry no
// findings (every true positive was fixed or audited in place), and `./...`
// expansion must never descend into testdata.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	targets, mod, err := Load(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, pkg := range targets {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("./... expansion descended into %s", pkg.Path)
		}
	}
	res := Run(mod, targets, All())
	for _, f := range res.Findings {
		t.Errorf("repo finding: %s", f)
	}
	if res.Suppressed == 0 {
		t.Error("suppressed = 0: the audited //cmfl:lint-ignore markers went unseen")
	}
}
