package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader turns a module checkout into type-checked syntax without
// golang.org/x/tools: it walks the module for package directories, filters
// files through the stdlib build-constraint matcher, parses them with
// comments, and type-checks in dependency order. Imports inside the module
// resolve to our own loaded packages; everything else (the standard
// library) resolves through the stdlib source importer, so the whole
// pipeline stays dependency-free.

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. cmfl/internal/fl
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// funcRef locates a function declaration for the cross-package callee scan:
// the syntax plus the package whose type info and suppressions govern it.
type funcRef struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Module is the loaded view of the repository: every package reachable from
// the requested patterns, plus a module-wide index from function objects to
// their declarations (the one-level-deep callee scan needs bodies from
// other packages).
type Module struct {
	RootDir string
	Path    string // module path from go.mod
	Fset    *token.FileSet
	Pkgs    map[string]*Package

	funcDecls map[*types.Func]funcRef

	cgOnce sync.Once
	cg     *CallGraph

	sumOnce sync.Once
	sums    map[*types.Func]*EffectSummary

	suppOnce sync.Once
	supp     *suppressionIndex

	golOnce sync.Once
	gol     *golifeIndex
}

// Suppressions returns the module-wide //cmfl:lint-ignore index, built once
// and shared by concurrent passes. Malformed markers are reported by the
// driver, not here.
func (m *Module) Suppressions() *suppressionIndex {
	m.suppOnce.Do(func() {
		m.supp = newSuppressionIndex()
		paths := make([]string, 0, len(m.Pkgs))
		for p := range m.Pkgs {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			for _, f := range m.Pkgs[p].Files {
				m.supp.addFile(m.Fset, f)
			}
		}
	})
	return m.supp
}

// FuncDecl returns the declaration of a module function (nil when fn is
// from outside the module, has no body, or was not loaded).
func (m *Module) FuncDecl(fn *types.Func) (*ast.FuncDecl, *Package) {
	ref, ok := m.funcDecls[fn]
	if !ok {
		return nil, nil
	}
	return ref.Decl, ref.Pkg
}

// loader carries the state of one Load call.
type loader struct {
	mod     *Module
	ctx     build.Context
	std     types.Importer
	loading map[string]bool // import cycle detection
}

// Load type-checks the packages matching patterns, which may be `./...`,
// directory paths (absolute or relative to dir), or import paths within the
// module. It returns the matched target packages in deterministic order;
// dependencies inside the module are loaded too (reachable via Module) but
// not returned as targets. testdata directories are skipped by `...`
// expansion yet loadable when named explicitly — that is how the analyzer
// fixtures are exercised.
func Load(dir string, patterns []string) ([]*Package, *Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		mod: &Module{
			RootDir:   root,
			Path:      modPath,
			Fset:      fset,
			Pkgs:      make(map[string]*Package),
			funcDecls: make(map[*types.Func]funcRef),
		},
		ctx:     build.Default,
		std:     importer.ForCompiler(fset, "source", nil),
		loading: make(map[string]bool),
	}

	paths, err := ld.expand(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	var targets []*Package
	for _, p := range paths {
		pkg, err := ld.load(p)
		if err != nil {
			return nil, nil, err
		}
		targets = append(targets, pkg)
	}
	return targets, ld.mod, nil
}

// findModule walks up from dir to the enclosing go.mod and reads the module
// path from its `module` directive.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					mp := strings.TrimSpace(rest)
					if mp == "" {
						break
					}
					return d, strings.Trim(mp, `"`), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module directive in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expand resolves CLI patterns into module import paths.
func (ld *loader) expand(dir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := ld.walkModule()
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			base, err := ld.dirToImportPath(dir, strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			paths, err := ld.walkModule()
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				if p == base || strings.HasPrefix(p, base+"/") {
					add(p)
				}
			}
		default:
			p, err := ld.dirToImportPath(dir, pat)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return out, nil
}

// dirToImportPath maps a directory argument (or an in-module import path)
// to the module import path.
func (ld *loader) dirToImportPath(dir, arg string) (string, error) {
	mod := ld.mod
	if arg == mod.Path || strings.HasPrefix(arg, mod.Path+"/") {
		return arg, nil
	}
	abs := arg
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(dir, arg)
	}
	abs = filepath.Clean(abs)
	rel, err := filepath.Rel(mod.RootDir, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("lint: %s is outside module %s", arg, mod.RootDir)
	}
	if rel == "." {
		return mod.Path, nil
	}
	return mod.Path + "/" + filepath.ToSlash(rel), nil
}

// walkModule lists the import paths of every buildable package in the
// module, skipping testdata, vendor and hidden directories like the go
// tool's `./...` expansion.
func (ld *loader) walkModule() ([]string, error) {
	var paths []string
	root := ld.mod.RootDir
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := ld.hasBuildableGo(path)
		if err != nil {
			return err
		}
		if ok {
			p, err := ld.dirToImportPath(root, path)
			if err != nil {
				return err
			}
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// hasBuildableGo reports whether dir contains at least one non-test Go file
// that passes the build constraints of the current platform.
func (ld *loader) hasBuildableGo(dir string) (bool, error) {
	files, err := ld.listGoFiles(dir)
	if err != nil {
		return false, err
	}
	return len(files) > 0, nil
}

// listGoFiles returns the buildable non-test Go files of dir, sorted.
func (ld *loader) listGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		match, err := ld.ctx.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("lint: %s/%s: %w", dir, name, err)
		}
		if match {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	return files, nil
}

// load parses and type-checks one module package (and, recursively, its
// module-internal dependencies), caching results on the Module.
func (ld *loader) load(importPath string) (*Package, error) {
	if pkg, ok := ld.mod.Pkgs[importPath]; ok {
		return pkg, nil
	}
	if ld.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	ld.loading[importPath] = true
	defer delete(ld.loading, importPath)

	dir, err := ld.importPathToDir(importPath)
	if err != nil {
		return nil, err
	}
	names, err := ld.listGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.mod.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Load module-internal imports first so type checking below can resolve
	// them from the cache.
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == ld.mod.Path || strings.HasPrefix(p, ld.mod.Path+"/") {
				if _, err := ld.load(p); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(ld.importFor)}
	tpkg, err := conf.Check(importPath, ld.mod.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}

	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.mod.Pkgs[importPath] = pkg

	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				ld.mod.funcDecls[fn] = funcRef{Decl: fd, Pkg: pkg}
			}
		}
	}
	return pkg, nil
}

// importPathToDir maps a module import path to its directory.
func (ld *loader) importPathToDir(importPath string) (string, error) {
	mod := ld.mod
	if importPath == mod.Path {
		return mod.RootDir, nil
	}
	rel, ok := strings.CutPrefix(importPath, mod.Path+"/")
	if !ok {
		return "", fmt.Errorf("lint: %s is not in module %s", importPath, mod.Path)
	}
	return filepath.Join(mod.RootDir, filepath.FromSlash(rel)), nil
}

// importFor is the types.Importer bridging module-internal imports to our
// own loader and everything else to the stdlib source importer.
func (ld *loader) importFor(path string) (*types.Package, error) {
	if path == ld.mod.Path || strings.HasPrefix(path, ld.mod.Path+"/") {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
