package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition order graph and flags
// cycles. An edge A → B means some statement provably holds A (by the
// must-hold tracker) while acquiring B — directly, or transitively through
// a module call. Two goroutines traversing a cycle from different entry
// points can each hold the lock the other wants: the classic deadlock the
// chaos suite can only catch probabilistically, and only for interleavings
// it happens to schedule.
//
// Locks are named by their canonical owner, not their local spelling:
// a struct-field mutex is "pkgpath.Type.field" (every instance of the
// type shares the node — conservative, but instance-disambiguation is
// exactly what humans also cannot do when auditing order), a package-level
// mutex is "pkgpath.name", and a local mutex is "pkgpath.Func.name".
// Self-edges are dropped: re-acquiring the same field on two instances is
// a different bug class (and a common false positive for tree walks).
//
// Scoped to ConcurrencyPackages, like the rest of the goroutine
// discipline suite.
var LockOrder = &Analyzer{
	Name:  "lockorder",
	Doc:   "the module-wide lock-acquisition order graph must be acyclic",
	Run:   runLockOrder,
	Merge: mergeLockOrder,
}

func runLockOrder(pass *Pass) {
	if !ConcurrencyPackages[pass.Pkg.Path] {
		return
	}
	lo := &lockOrderScan{pass: pass, trans: make(map[*types.Func][]string)}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lo.scanBody(fd.Name.Name, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lo.scanBody(fd.Name.Name, lit.Body)
				}
				return true
			})
		}
	}
	sort.Slice(pass.Facts.LockEdges, func(i, j int) bool {
		a, b := pass.Facts.LockEdges[i], pass.Facts.LockEdges[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

type lockOrderScan struct {
	pass *Pass
	// trans memoizes the canonical lock set a module function transitively
	// acquires.
	trans map[*types.Func][]string
	seen  map[string]bool // "From\x00To" dedup within the package
}

// scanBody walks one function-like body: it canonicalizes every mutex the
// body touches, then replays the must-hold tracker recording an edge for
// each acquisition made while something else is held.
func (lo *lockOrderScan) scanBody(funcName string, body *ast.BlockStmt) {
	pass := lo.pass
	// Map the tracker's rendered keys ("s.mu") to canonical lock IDs.
	canonOf := make(map[string]string)
	ast.Inspect(body, func(n ast.Node) bool {
		if sel := mutexOpSelector(pass.Pkg, n); sel != nil {
			key := types.ExprString(sel.X)
			if _, ok := canonOf[key]; !ok {
				canonOf[key] = canonMutex(pass.Pkg, funcName, sel.X)
			}
		}
		return true
	})

	trackLocks(pass.Pkg, body, func(stmt ast.Stmt, held lockState) {
		if len(held) == 0 {
			return
		}
		for _, e := range stmtExprs(stmt) {
			ast.Inspect(e, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false // scanned as its own root with empty entry state
				case *ast.CallExpr:
					var acquired []string
					if sel := mutexOpSelector(pass.Pkg, n); sel != nil {
						if c := canonMutex(pass.Pkg, funcName, sel.X); c != "" {
							acquired = []string{c}
						}
					} else if fn := calleeFunc(pass.Pkg, n); fn != nil && pass.InModule(fn) {
						acquired = lo.transAcquires(fn, make(map[*types.Func]bool))
					}
					for _, to := range acquired {
						for key := range held {
							from := canonOf[key]
							if from == "" || from == to {
								continue
							}
							lo.edge(from, to, funcName, n.Pos())
						}
					}
				}
				return true
			})
		}
	})
}

func (lo *lockOrderScan) edge(from, to, funcName string, pos token.Pos) {
	if lo.seen == nil {
		lo.seen = make(map[string]bool)
	}
	k := from + "\x00" + to
	if lo.seen[k] {
		return
	}
	lo.seen[k] = true
	position := lo.pass.Fset().Position(pos)
	lo.pass.Facts.LockEdges = append(lo.pass.Facts.LockEdges, LockEdgeFact{
		From: from, To: to, Func: funcName,
		File: position.Filename, Line: position.Line, Column: position.Column,
	})
}

// transAcquires returns the canonical locks fn acquires, following module
// calls but not goroutines or function literals (they run on their own
// schedule and hold nothing of ours).
func (lo *lockOrderScan) transAcquires(fn *types.Func, visiting map[*types.Func]bool) []string {
	if got, ok := lo.trans[fn]; ok {
		return got
	}
	if visiting[fn] {
		return nil
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	decl, dpkg := lo.pass.Mod.FuncDecl(fn)
	if decl == nil || decl.Body == nil {
		lo.trans[fn] = nil
		return nil
	}
	var out []string
	seen := make(map[string]bool)
	add := func(ids []string) {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if sel := mutexOpSelector(dpkg, n); sel != nil {
				if c := canonMutex(dpkg, decl.Name.Name, sel.X); c != "" {
					add([]string{c})
				}
			} else if callee := calleeFunc(dpkg, n); callee != nil && lo.pass.InModule(callee) {
				add(lo.transAcquires(callee, visiting))
			}
		}
		return true
	})
	lo.trans[fn] = out
	return out
}

// mutexOpSelector returns the selector of a sync.Mutex/RWMutex
// Lock/RLock call ("s.mu" in s.mu.Lock()), or nil for any other node.
// Unlocks are not acquisitions.
func mutexOpSelector(pkg *Package, n ast.Node) *ast.SelectorExpr {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || (fn.Name() != "Lock" && fn.Name() != "RLock") {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	if recv := named(sig.Recv().Type()); recv != "sync.Mutex" && recv != "sync.RWMutex" {
		return nil
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return sel
}

// canonMutex names a mutex expression canonically: struct field →
// "pkgpath.Type.field", package-level var → "pkgpath.name", local →
// "pkgpath.Func.name". "" when the expression has no stable name.
func canonMutex(pkg *Package, funcName string, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[x]; s != nil {
			if recv := named(s.Recv()); recv != "" {
				return recv + "." + s.Obj().Name()
			}
			return ""
		}
		// Package-qualified: other.Mu
		if obj := pkg.Info.Uses[x.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Pkg().Path() + "." + funcName + "." + obj.Name()
	case *ast.IndexExpr:
		return canonMutex(pkg, funcName, x.X)
	}
	return ""
}

// mergeLockOrder assembles the global graph and reports one finding per
// strongly connected component of size ≥ 2, positioned at the first edge
// leaving the component's lexicographically smallest lock.
func mergeLockOrder(mp *MergePass) {
	var edges []LockEdgeFact
	seen := make(map[string]bool)
	for _, t := range mp.Targets {
		for _, e := range t.Facts.LockEdges {
			k := e.From + "\x00" + e.To
			if seen[k] {
				continue
			}
			seen[k] = true
			edges = append(edges, e)
		}
	}

	adj := make(map[string][]string)
	nodeSet := make(map[string]bool)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		nodeSet[e.From], nodeSet[e.To] = true, true
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	for _, scc := range tarjanSCC(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		var best *LockEdgeFact
		for i := range edges {
			e := &edges[i]
			if !inSCC[e.From] || !inSCC[e.To] {
				continue
			}
			if best == nil || e.From < best.From || (e.From == best.From && e.To < best.To) {
				best = e
			}
		}
		if best == nil {
			continue
		}
		mp.Reportf(best.File, best.Line, best.Column,
			"lock-acquisition cycle %s: goroutines entering from different points can each hold the lock the other wants — fix the order or split the critical sections",
			strings.Join(scc, " ⇄ "))
	}
}

// tarjanSCC computes strongly connected components over the (sorted) node
// list; iteration order is deterministic because nodes and adjacency are
// pre-sorted.
func tarjanSCC(nodes []string, adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return sccs
}
