package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The lock tracker is a small must-hold abstract interpretation: for every
// statement of a function body it computes the set of mutexes that are
// provably held when the statement executes. "Provably" is the must sense —
// at control-flow joins the held sets of the merging branches are
// intersected, and a branch that cannot fall through (return/break/
// continue/goto) is excluded from the merge. That branch-awareness matters
// in this repo: the emulator's admit() unlocks-and-returns early inside an
// `if s.closed` guard, and a linear scan would wrongly conclude the mutex
// was released on the fall-through path too.
//
// defer mu.Unlock() is modeled as held-to-function-end: the deferred call
// runs only after every statement of the body.
//
// The tracker never descends into function literals — a literal's body runs
// at an unknown time on an unknown goroutine, so it gets its own analysis
// with an empty entry state.

// heldLock is one provably held mutex.
type heldLock struct {
	// base is the root object of the mutex selector ("s" in s.mu.Lock()),
	// used to match guards against field writes on the same receiver. Nil
	// when the root expression is not a plain identifier chain.
	base types.Object
	// write distinguishes Lock (true) from RLock (false): a read lock does
	// not license writes.
	write bool
}

// lockState maps a rendered mutex expression ("s.mu", "mu") to its hold.
type lockState map[string]heldLock

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// intersect keeps only mutexes held in both states; a Lock in one branch
// and an RLock in the other degrades to RLock.
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			continue
		}
		out[k] = heldLock{base: va.base, write: va.write && vb.write}
	}
	return out
}

// lockTracker runs the analysis over one function-like body.
type lockTracker struct {
	pkg *Package
	// onStmt is invoked for every statement with the state holding before
	// it executes. Nested statements get their own callbacks; the callback
	// must not recurse into sub-statements.
	onStmt func(stmt ast.Stmt, held lockState)
}

// trackLocks analyzes body (a FuncDecl or FuncLit body) starting from an
// empty held set.
func trackLocks(pkg *Package, body *ast.BlockStmt, onStmt func(ast.Stmt, lockState)) {
	t := &lockTracker{pkg: pkg, onStmt: onStmt}
	t.stmts(body.List, make(lockState))
}

// stmts runs the statement list sequentially, returning the exit state and
// whether control provably does not fall through.
func (t *lockTracker) stmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range list {
		var term bool
		st, term = t.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (t *lockTracker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	t.onStmt(s, st)
	switch s := s.(type) {
	case *ast.ExprStmt:
		return t.applyMutexOp(s.X, st), false
	case *ast.DeferStmt:
		// defer mu.Unlock(): the mutex stays held for the rest of the body,
		// so the state is unchanged. A (pathological) defer mu.Lock() is
		// ignored rather than modeled.
		return st, false
	case *ast.BlockStmt:
		return t.stmts(s.List, st.clone())
	case *ast.LabeledStmt:
		return t.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = t.stmt(s.Init, st)
		}
		thenSt, thenTerm := t.stmts(s.Body.List, st.clone())
		elseSt, elseTerm := st.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = t.stmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, s.Else != nil // no else: cond-false path falls through
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return intersect(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = t.stmt(s.Init, st)
		}
		bodySt, _ := t.stmts(s.Body.List, st.clone())
		if s.Cond == nil {
			// `for { ... }` exits only via break/return; keep the entry
			// state (any lock juggling inside stays inside).
			return st, false
		}
		return intersect(st, bodySt), false
	case *ast.RangeStmt:
		bodySt, _ := t.stmts(s.Body.List, st.clone())
		return intersect(st, bodySt), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return t.branches(s, st)
	case *ast.ReturnStmt:
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; for merge purposes
		// that is termination. fallthrough continues into the next case.
		return st, s.Tok != token.FALLTHROUGH
	}
	return st, false
}

// branches handles switch/type-switch/select: each clause starts from the
// entry state; the exit is the intersection over clauses that fall through,
// plus the entry state when a switch has no default (no clause may match).
func (t *lockTracker) branches(s ast.Stmt, st lockState) (lockState, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = t.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = t.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var exits []lockState
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			list = c.Body
			hasDefault = hasDefault || c.List == nil
		case *ast.CommClause:
			list = c.Body
			hasDefault = hasDefault || c.Comm == nil
		}
		t.onStmt(c.(ast.Stmt), st)
		exit, term := t.stmts(list, st.clone())
		if !term {
			exits = append(exits, exit)
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); !hasDefault && !isSelect {
		exits = append(exits, st) // no case may match a valueless switch
	}
	if len(exits) == 0 {
		return st, len(body.List) > 0
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersect(out, e)
	}
	return out, false
}

// applyMutexOp updates the state for mu.Lock/Unlock/RLock/RUnlock calls.
func (t *lockTracker) applyMutexOp(e ast.Expr, st lockState) lockState {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return st
	}
	fn := calleeFunc(t.pkg, call)
	if fn == nil {
		return st
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return st
	}
	recv := named(sig.Recv().Type())
	if recv != "sync.Mutex" && recv != "sync.RWMutex" {
		return st
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return st
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		st = st.clone()
		st[key] = heldLock{base: rootObject(t.pkg, sel.X), write: true}
	case "RLock":
		st = st.clone()
		if !st[key].write {
			st[key] = heldLock{base: rootObject(t.pkg, sel.X), write: false}
		}
	case "Unlock", "RUnlock":
		st = st.clone()
		delete(st, key)
	}
	return st
}

// rootObject resolves the leftmost identifier of a selector/index/deref
// chain ("s" in s.peers[i].mu), or nil when the root is not an identifier.
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
