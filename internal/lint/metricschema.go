package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// MetricSchema pins the telemetry registry's wire contract. Every metric
// id handed to (*telemetry.Registry).Counter/Gauge/Histogram must be
// statically analyzable:
//
//   - the family name (everything before an optional {label} set) is a
//     compile-time string constant matching ^cmfl_[a-z0-9_]+$, so a typo
//     can never mint a rogue family at runtime;
//   - label KEYS are constants drawn from LabelAllowlist — label VALUES
//     may be dynamic (that is the per-engine cardinality we signed up
//     for), but a dynamic key could explode series cardinality;
//   - each family is registered from exactly one call site with one help
//     string, so exposition metadata cannot drift between packages.
//
// The analyzer folds constant concatenations and follows single-assignment
// locals, which is exactly how the Collector builds
// `"cmfl_rounds_total" + label` — that idiom type-checks as dynamic but is
// still fully verifiable.
var MetricSchema = &Analyzer{
	Name:  "metricschema",
	Doc:   "telemetry metric names are cmfl_-prefixed constants with allowlisted label keys, one registration site per family",
	Run:   runMetricSchema,
	Merge: mergeMetricSchema,
}

// LabelAllowlist is the closed set of label keys a metric may carry.
// Extend deliberately: every key multiplies series cardinality.
var LabelAllowlist = map[string]bool{
	"engine": true,
	"task":   true,
	"code":   true,
	"shard":  true,
}

var metricNameRe = regexp.MustCompile(`^cmfl_[a-z0-9_]+$`)

// registryMethods are the registration entry points on telemetry.Registry.
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func runMetricSchema(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind := registryMethodName(pass, call)
				if kind == "" || len(call.Args) < 1 {
					return true
				}
				checkMetricID(pass, fd, call, kind)
				return true
			})
		}
	}
}

// mergeMetricSchema enforces one registration site per family across every
// analyzed package: the first site in (file, line) order owns the family;
// later sites are findings.
func mergeMetricSchema(mp *MergePass) {
	var all []MetricFact
	for _, t := range mp.Targets {
		all = append(all, t.Facts.Metrics...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	first := make(map[string]MetricFact)
	for _, m := range all {
		prev, seen := first[m.Family]
		if !seen {
			first[m.Family] = m
			continue
		}
		if prev.File == m.File && prev.Line == m.Line && prev.Column == m.Column {
			continue // same site revisited (overlapping targets)
		}
		mp.Reportf(m.File, m.Line, m.Column,
			"metric family %q already registered at %s:%d (%s, help %q): one registration site per family",
			m.Family, prev.File, prev.Line, prev.Kind, prev.Help)
	}
}

// registryMethodName returns "Counter"/"Gauge"/"Histogram" when call is a
// registration on telemetry.Registry, else "".
func registryMethodName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return ""
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if named(sig.Recv().Type()) != "cmfl/internal/telemetry.Registry" {
		return ""
	}
	return sel.Sel.Name
}

// dynamicHole marks a non-constant fragment in a flattened template. It
// can never occur in Go source string constants.
const dynamicHole = "\x00"

// checkMetricID validates one registration call and records the family
// fact for the merge phase.
func checkMetricID(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, kind string) {
	tmpl, ok := flattenString(pass, fd, call.Args[0], 0)
	if !ok {
		pass.Reportf(call.Args[0].Pos(), "metric id is not statically analyzable: build it from string constants (label values may be dynamic)")
		return
	}

	base, labels := tmpl, ""
	if i := strings.IndexByte(tmpl, '{'); i >= 0 {
		base, labels = tmpl[:i], tmpl[i:]
	}
	if strings.Contains(base, dynamicHole) {
		pass.Reportf(call.Args[0].Pos(), "metric family name must be a compile-time constant (only label values may be dynamic)")
		return
	}
	if !metricNameRe.MatchString(base) {
		pass.Reportf(call.Args[0].Pos(), "metric family %q must match ^cmfl_[a-z0-9_]+$", base)
		return
	}
	if labels != "" {
		checkLabels(pass, call.Args[0].Pos(), base, labels)
	} else if strings.Contains(tmpl, "}") {
		pass.Reportf(call.Args[0].Pos(), "malformed metric id %q: '}' without '{'", base)
	}

	help := ""
	if len(call.Args) >= 2 {
		if v := constValue(pass, call.Args[1]); v != "" {
			help = v
		}
	}
	pos := pass.Fset().Position(call.Pos())
	pass.Facts.Metrics = append(pass.Facts.Metrics, MetricFact{
		Family: base,
		Kind:   kind,
		Help:   help,
		File:   pos.Filename,
		Line:   pos.Line,
		Column: pos.Column,
	})
}

// checkLabels parses `{key="value",...}` with dynamicHole-opaque values.
func checkLabels(pass *Pass, pos token.Pos, base, s string) {
	bad := func(why string) {
		pass.Reportf(pos, "malformed label set on %q: %s (want {key=\"value\",...})", base, why)
	}
	if !strings.HasSuffix(s, "}") {
		bad("missing closing '}'")
		return
	}
	body := s[1 : len(s)-1]
	for _, kv := range splitLabels(body) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			bad("label without '='")
			return
		}
		key, val := kv[:eq], kv[eq+1:]
		if strings.Contains(key, dynamicHole) {
			pass.Reportf(pos, "label key on %q must be a compile-time constant: dynamic keys are unbounded cardinality", base)
			return
		}
		if !labelKeyRe.MatchString(key) {
			bad("label key " + key + " is not an identifier")
			return
		}
		if !LabelAllowlist[key] {
			pass.Reportf(pos, "label key %q on %q is not in the allowlist %v", key, base, allowlistKeys())
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			bad("label value must be double-quoted")
			return
		}
	}
}

var labelKeyRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// splitLabels splits a label body on commas that sit outside quotes.
func splitLabels(body string) []string {
	var out []string
	inQuote := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

// flattenString statically evaluates a string expression into a template
// where non-constant fragments become dynamicHole. It folds constants,
// follows `+` concatenations, and resolves identifiers assigned exactly
// once in the enclosing function. depth bounds indirection.
func flattenString(pass *Pass, fd *ast.FuncDecl, e ast.Expr, depth int) (string, bool) {
	if depth > 4 {
		return dynamicHole, true
	}
	e = ast.Unparen(e)
	if v := constValue(pass, e); v != "" || isConst(pass, e) {
		return v, true
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return dynamicHole, true
		}
		l, okL := flattenString(pass, fd, e.X, depth+1)
		r, okR := flattenString(pass, fd, e.Y, depth+1)
		return l + r, okL && okR
	case *ast.Ident:
		obj := pass.ObjectOf(e)
		if obj == nil {
			return dynamicHole, true
		}
		if rhs := soleAssignment(pass, fd, obj); rhs != nil {
			return flattenString(pass, fd, rhs, depth+1)
		}
		return dynamicHole, true
	}
	// Calls, index expressions, conversions, ...: not modeled — the id is
	// not statically analyzable at all (distinct from a dynamic fragment in
	// an otherwise constant template).
	return dynamicHole, false
}

// soleAssignment returns the RHS of obj's single assignment within fd, or
// nil when obj is assigned zero or multiple times (then its value is not
// statically known).
func soleAssignment(pass *Pass, fd *ast.FuncDecl, obj types.Object) ast.Expr {
	var rhs ast.Expr
	count := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.ObjectOf(id) != obj {
				continue
			}
			count++
			rhs = assign.Rhs[i]
		}
		return true
	})
	if count != 1 {
		return nil
	}
	return rhs
}

// constValue returns the compile-time string value of e, or "".
func constValue(pass *Pass, e ast.Expr) string {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

func allowlistKeys() []string {
	keys := make([]string, 0, len(LabelAllowlist))
	for k := range LabelAllowlist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
