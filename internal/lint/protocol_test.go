package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExhaustiveFixture(t *testing.T) {
	checkFixture(t, "exhaustive", []*Analyzer{Exhaustive})
}

func TestProtoStateFixture(t *testing.T) {
	res := checkFixture(t, "protostate", []*Analyzer{ProtoState})
	// The acceptance shape: deleting the one server-side reader of a
	// written kind yields exactly one duality finding (msgPing), not one
	// per write site or per round of merging.
	duality := 0
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "-side reader") {
			duality++
		}
	}
	if duality != 1 {
		t.Errorf("duality findings = %d, want exactly 1 (msgPing): %v", duality, res.Findings)
	}
}

func TestLockOrderFixture(t *testing.T) {
	res := checkScopedFixture(t, "lockorder", []*Analyzer{LockOrder}, ConcurrencyPackages)
	// One cycle, one finding — not one per edge or per participating lock.
	if len(res.Findings) != 1 {
		t.Errorf("findings = %d, want exactly 1 for the two-lock cycle: %v", len(res.Findings), res.Findings)
	}
}

// writeTestBaseline marshals a baseline for pkgPath into a temp file and
// points APIBaselinePath at it (with APIPackages extended) for the test's
// duration.
func writeTestBaseline(t *testing.T, pkgPath string, symbols map[string]string) {
	t.Helper()
	base := apiBaseline{Comment: apiBaselineComment, Packages: map[string]map[string]string{pkgPath: symbols}}
	data, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "api_baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	oldPath := APIBaselinePath
	APIBaselinePath = path
	APIPackages[pkgPath] = true
	t.Cleanup(func() {
		APIBaselinePath = oldPath
		delete(APIPackages, pkgPath)
	})
}

func TestAPICompatBaselineDiff(t *testing.T) {
	pkg, mod := loadFixture(t, "apicompat")
	writeTestBaseline(t, pkg.Path, map[string]string{
		"Old":       "func Old(int) string", // fixture returns int: changed
		"Removed":   "func Removed()",       // absent from the fixture: removed
		"Cfg":       "type Cfg struct",      // matches
		"Cfg.Limit": "Limit int",            // matches
	})

	res := Run(mod, []*Package{pkg}, []*Analyzer{APICompat})
	var removed, changed, reasonless int
	for _, f := range res.Findings {
		switch {
		case strings.Contains(f.Message, "was removed"):
			removed++
			if f.File != APIBaselinePath {
				t.Errorf("removal finding at %s, want the baseline file %s", f.File, APIBaselinePath)
			}
		case strings.Contains(f.Message, "changed from"):
			changed++
			if filepath.Base(f.File) != "apicompat.go" {
				t.Errorf("change finding at %s, want the fixture source file", f.File)
			}
		case strings.Contains(f.Message, "without a reason"):
			reasonless++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if removed != 1 || changed != 1 || reasonless != 1 {
		t.Errorf("removed/changed/reasonless = %d/%d/%d, want 1/1/1: %v", removed, changed, reasonless, res.Findings)
	}
}

func TestAPICompatMarkerWaivesBreak(t *testing.T) {
	pkg, mod := loadFixture(t, "apicompatok")
	writeTestBaseline(t, pkg.Path, map[string]string{
		"Old":     "func Old(int) string",
		"Removed": "func Removed()",
	})

	res := Run(mod, []*Package{pkg}, []*Analyzer{APICompat})
	if len(res.Findings) != 0 {
		t.Errorf("findings = %v, want none: the reasoned marker waives the package", res.Findings)
	}
}

func TestAPICompatAdditionsAreFree(t *testing.T) {
	pkg, mod := loadFixture(t, "apicompat")
	// Baseline records a strict subset of the surface (and the fixture's
	// reasonless marker is removed from consideration by matching only
	// baseline symbols): no diff findings, only the reasonless marker.
	writeTestBaseline(t, pkg.Path, map[string]string{
		"Cfg":       "type Cfg struct",
		"Cfg.Limit": "Limit int",
	})

	res := Run(mod, []*Package{pkg}, []*Analyzer{APICompat})
	for _, f := range res.Findings {
		if !strings.Contains(f.Message, "without a reason") {
			t.Errorf("unexpected finding for a pure addition: %s", f)
		}
	}
}

// TestProtoStateRepoFactsNonVacuous guards the analyzer against silently
// matching nothing on the real module: internal/emu must yield
// client-side writes, server-side writes, and directive traffic, or the
// zero-findings acceptance run proves nothing.
func TestProtoStateRepoFactsNonVacuous(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks internal/emu")
	}
	targets, mod, err := Load(filepath.Join("..", ".."), []string{"./internal/emu", "./internal/emu/shard"})
	if err != nil {
		t.Fatalf("loading internal/emu: %v", err)
	}
	_, _, tf := runPasses(mod, targets, []*Analyzer{ProtoState, APICompat}, &RunStats{})
	ops := make(map[string]int)
	var apiSyms int
	for _, target := range tf {
		for _, f := range target.Facts.Proto {
			ops[f.Op+"/"+f.Side]++
		}
		apiSyms += len(target.Facts.API)
	}
	for _, want := range []string{"frame-write/client", "frame-write/server", "frame-read/client", "frame-read/server", "dir-send/", "dir-case/"} {
		found := false
		for k := range ops {
			if strings.HasPrefix(k, want) || k == strings.TrimSuffix(want, "/") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q facts recovered from internal/emu: the automaton recovery went vacuous (got %v)", want, ops)
		}
	}
	if apiSyms == 0 {
		t.Error("no API surface facts recovered from internal/emu")
	}
}
