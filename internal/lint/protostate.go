package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ProtoState recovers the wire-protocol automaton from the code of both
// peers and checks that the two sides are duals. The emulator's protocol is
// hand-rolled twice — the client writes what the server parses and vice
// versa — and nothing but convention keeps the two state machines aligned.
// This analyzer turns the convention into facts:
//
//	frame kinds     the msg* constant family (byte-valued wire alphabet)
//	writes          msg* constants passed as call arguments (writeFrame,
//	                stage, …), attributed to the client or server side by
//	                call-graph reachability from the side's entry points
//	reads           msg* constants consumed in switch cases or ==/!=
//	                comparisons
//	directives      the dir* family: shardDirective composite literals the
//	                root sends versus the aggregator's dispatch cases
//
// and checks, in the merge phase over every package's facts:
//
//	D1  every frame kind one side writes has a reader on the other side;
//	D2  every directive kind the root sends has an aggregator case, and
//	    every handled directive is actually sent (mirror-image sequences);
//
// plus two per-package rules with full type information:
//
//	D3  a switch dispatching on frame kinds rejects unknown kinds loudly
//	    (a default clause that returns an error — silent fall-through is
//	    how a stale peer gets misparsed instead of severed);
//	D4  on a freshly dialed connection the first frame written is the
//	    hello: no kind is writable before version/codec negotiation
//	    completes.
//
// Kinds that are read but never written are NOT findings: retired wire
// kinds (msgUpdateCRetired) deliberately keep a loud reader.
var ProtoState = &Analyzer{
	Name:  "protostate",
	Doc:   "client/server wire-protocol duality: every written frame kind has an opposite-side reader, unknown kinds are rejected loudly, nothing precedes the hello, directive send/handle sets mirror",
	Run:   runProtoState,
	Merge: mergeProtoState,
}

// Protocol roles are declared by name so fixture packages bind the same
// rules as internal/emu. (Vars, not consts: tests may extend them.)
var (
	// protoFramePrefix / protoDirPrefix name the constant families.
	protoFramePrefix = "msg*"
	protoDirPrefix   = "dir*"
	// protoClientFuncs are the client side's entry points.
	protoClientFuncs = map[string]bool{"RunClient": true}
	// protoServerTypes are the receiver types whose methods form the
	// server side.
	protoServerTypes = map[string]bool{"Server": true, "shardAgg": true}
)

const (
	sideClient = 1 << iota
	sideServer
)

func sideName(mask int) string {
	switch mask {
	case sideClient:
		return "client"
	case sideServer:
		return "server"
	case sideClient | sideServer:
		return "both"
	}
	return ""
}

func runProtoState(pass *Pass) {
	var frameFam, dirFam *constFamily
	for _, fam := range constFamilies(pass.Pkg) {
		switch fam.name {
		case protoFramePrefix:
			frameFam = fam
		case protoDirPrefix:
			dirFam = fam
		}
	}
	if frameFam == nil && dirFam == nil {
		return
	}

	ps := &protoScan{pass: pass, frames: frameFam, dirs: dirFam, firstKind: make(map[*types.Func]string)}
	ps.classifySides()
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ps.scanFunc(fd)
		}
	}
}

// protoScan is the per-package protocol fact collector.
type protoScan struct {
	pass   *Pass
	frames *constFamily
	dirs   *constFamily
	// side maps each package function to the side(s) whose entry points
	// reach it (bitmask of sideClient/sideServer).
	side map[*types.Func]int
	// firstKind memoizes the name of the first frame-kind constant a
	// function writes, in source order, descending into module callees
	// ("" = none resolvable).
	firstKind map[*types.Func]string
}

// classifySides computes intra-package reachability from the declared
// client and server entry points.
func (ps *protoScan) classifySides() {
	pkg := ps.pass.Pkg
	ps.side = make(map[*types.Func]int)
	type rootFn struct {
		fn   *types.Func
		mask int
	}
	var roots []rootFn
	callees := make(map[*types.Func][]*types.Func)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			callees[fn] = packageCallees(pkg, fd.Body)
			if fd.Recv == nil && protoClientFuncs[fd.Name.Name] {
				roots = append(roots, rootFn{fn, sideClient})
			}
			if fd.Recv != nil && protoServerTypes[recvTypeName(fd)] {
				roots = append(roots, rootFn{fn, sideServer})
			}
		}
	}
	var visit func(fn *types.Func, mask int)
	visit = func(fn *types.Func, mask int) {
		if ps.side[fn]&mask == mask {
			return
		}
		ps.side[fn] |= mask
		for _, c := range callees[fn] {
			visit(c, mask)
		}
	}
	for _, r := range roots {
		visit(r.fn, r.mask)
	}
}

// packageCallees lists the same-package functions a body calls, including
// inside function literals and go statements (either runs on some side's
// behalf).
func packageCallees(pkg *Package, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn != nil && fn.Pkg() == pkg.Types && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// scanFunc collects one function's protocol facts and runs the in-package
// rules (D3 loud rejection, D4 hello-first).
func (ps *protoScan) scanFunc(fd *ast.FuncDecl) {
	pass := ps.pass
	pkg := pass.Pkg
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	side := sideName(ps.side[fn])
	var dialPos []token.Pos

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if obj := ps.frameConst(arg); obj != nil {
					ps.record("frame-write", obj.Name(), side, fd.Name.Name, arg.Pos())
				}
			}
			if isDialCall(pkg, n) {
				dialPos = append(dialPos, n.Pos())
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				for _, e := range []ast.Expr{n.X, n.Y} {
					if obj := ps.frameConst(e); obj != nil {
						ps.record("frame-read", obj.Name(), side, fd.Name.Name, e.Pos())
					}
					if obj := ps.dirConst(e); obj != nil {
						ps.record("dir-case", obj.Name(), side, fd.Name.Name, e.Pos())
					}
				}
			}
		case *ast.SwitchStmt:
			ps.scanSwitch(n, side, fd.Name.Name)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj := ps.dirConst(v); obj != nil {
					ps.record("dir-send", obj.Name(), side, fd.Name.Name, v.Pos())
				}
			}
		}
		return true
	})

	// D4: the first frame written after a dial must be the hello.
	if len(dialPos) > 0 && ps.frames != nil {
		hello := ps.helloKind()
		if hello != "" {
			for _, dp := range dialPos {
				if pos, kind := ps.firstKindAfter(fd, dp); kind != "" && kind != hello {
					pass.Reportf(pos, "frame kind %s written on a freshly dialed connection before the %s handshake: negotiation must complete first", kind, hello)
				}
			}
		}
	}
}

// scanSwitch records read facts for family members in case clauses and
// enforces D3 on frame-kind dispatch switches.
func (ps *protoScan) scanSwitch(sw *ast.SwitchStmt, side, fname string) {
	if sw.Tag == nil {
		return
	}
	frameCases := 0
	hasDefault := false
	var defaultBody []ast.Stmt
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			defaultBody = cc.Body
			continue
		}
		for _, e := range cc.List {
			if obj := ps.frameConst(e); obj != nil {
				frameCases++
				ps.record("frame-read", obj.Name(), side, fname, e.Pos())
			}
			if obj := ps.dirConst(e); obj != nil {
				ps.record("dir-case", obj.Name(), side, fname, e.Pos())
			}
		}
	}
	if frameCases > 0 {
		if !hasDefault {
			ps.pass.Reportf(sw.Tag.Pos(), "frame-kind dispatch in %s silently ignores unknown kinds: add a default that returns an error", fname)
		} else if !loudDefault(ps.pass.Pkg, defaultBody) {
			ps.pass.Reportf(sw.Tag.Pos(), "frame-kind dispatch in %s swallows unknown kinds in its default: reject them with an error", fname)
		}
	}
}

func (ps *protoScan) frameConst(e ast.Expr) types.Object {
	if ps.frames == nil {
		return nil
	}
	if obj := caseConst(ps.pass.Pkg, e); obj != nil && ps.frames.member(obj) {
		return obj
	}
	return nil
}

func (ps *protoScan) dirConst(e ast.Expr) types.Object {
	if ps.dirs == nil {
		return nil
	}
	if obj := caseConst(ps.pass.Pkg, e); obj != nil && ps.dirs.member(obj) {
		return obj
	}
	return nil
}

func (ps *protoScan) record(op, kind, side, fname string, pos token.Pos) {
	position := ps.pass.Fset().Position(pos)
	ps.pass.Facts.Proto = append(ps.pass.Facts.Proto, ProtoFact{
		Kind: kind, Op: op, Side: side, Func: fname,
		File: position.Filename, Line: position.Line, Column: position.Column,
	})
}

// helloKind names the negotiation frame: the family member whose name
// contains "Hello".
func (ps *protoScan) helloKind() string {
	for _, m := range ps.frames.members {
		if strings.Contains(m.Name(), "Hello") {
			return m.Name()
		}
	}
	return ""
}

// firstKindAfter finds the first frame kind fd's body provably writes
// after pos in source order, descending one level at a time into module
// callees via firstKindOf.
func (ps *protoScan) firstKindAfter(fd *ast.FuncDecl, pos token.Pos) (token.Pos, string) {
	type event struct {
		pos  token.Pos
		kind string
	}
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if k := ps.callKind(call, make(map[*types.Func]bool)); k != "" {
			events = append(events, event{call.Pos(), k})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for _, ev := range events {
		if ev.pos > pos {
			return ev.pos, ev.kind
		}
	}
	return token.NoPos, ""
}

// callKind resolves the frame kind one call writes: a direct frame-kind
// constant argument wins; otherwise the module callee's own first written
// kind.
func (ps *protoScan) callKind(call *ast.CallExpr, visiting map[*types.Func]bool) string {
	for _, arg := range call.Args {
		if obj := ps.frameConst(arg); obj != nil {
			return obj.Name()
		}
	}
	fn := calleeFunc(ps.pass.Pkg, call)
	if fn == nil || !ps.pass.InModule(fn) {
		return ""
	}
	return ps.firstKindOf(fn, visiting)
}

func (ps *protoScan) firstKindOf(fn *types.Func, visiting map[*types.Func]bool) string {
	if k, ok := ps.firstKind[fn]; ok {
		return k
	}
	if visiting[fn] {
		return ""
	}
	visiting[fn] = true
	defer delete(visiting, fn)
	decl, dpkg := ps.pass.Mod.FuncDecl(fn)
	if decl == nil || decl.Body == nil || dpkg != ps.pass.Pkg {
		// Cross-package bodies have no access to this package's unexported
		// kind constants; nothing to resolve.
		ps.firstKind[fn] = ""
		return ""
	}
	type event struct {
		pos  token.Pos
		call *ast.CallExpr
	}
	var events []event
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			events = append(events, event{call.Pos(), call})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	kind := ""
	for _, ev := range events {
		if k := ps.callKind(ev.call, visiting); k != "" {
			kind = k
			break
		}
	}
	ps.firstKind[fn] = kind
	return kind
}

// isDialCall recognizes fresh-connection constructors: net.Dial and
// net.DialTimeout (or a fixture package whose path ends in /net).
func isDialCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Name(), "Dial") {
		return false
	}
	p := fn.Pkg().Path()
	return p == "net" || hasSuffixSegment(p, "net")
}

// mergeProtoState checks D1 (frame duality) and D2 (directive mirroring)
// over every package's facts.
func mergeProtoState(mp *MergePass) {
	var all []ProtoFact
	for _, t := range mp.Targets {
		all = append(all, t.Facts.Proto...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	// readers[kind] accumulates the side mask of every read site; "" and
	// "both" satisfy either side.
	readers := make(map[string]int)
	dirSent := make(map[string]bool)
	dirHandled := make(map[string]bool)
	for _, f := range all {
		switch f.Op {
		case "frame-read":
			readers[f.Kind] |= sideMask(f.Side)
		case "dir-send":
			dirSent[f.Kind] = true
		case "dir-case":
			dirHandled[f.Kind] = true
		}
	}

	reported := make(map[string]bool)
	for _, f := range all {
		if reported[f.Op+"\x00"+f.Kind] {
			continue
		}
		switch f.Op {
		case "frame-write":
			var need int
			switch f.Side {
			case "client":
				need = sideServer
			case "server":
				need = sideClient
			default:
				continue // unattributed writes cannot demand a dual
			}
			if readers[f.Kind]&need == 0 {
				reported[f.Op+"\x00"+f.Kind] = true
				mp.Reportf(f.File, f.Line, f.Column,
					"frame kind %s is written on the %s side but has no %s-side reader: the peer cannot consume it",
					f.Kind, f.Side, sideName(need))
			}
		case "dir-send":
			if !dirHandled[f.Kind] {
				reported[f.Op+"\x00"+f.Kind] = true
				mp.Reportf(f.File, f.Line, f.Column,
					"directive kind %s is sent but no dispatch case handles it: the aggregator cannot mirror the root's sequence", f.Kind)
			}
		case "dir-case":
			if !dirSent[f.Kind] {
				reported[f.Op+"\x00"+f.Kind] = true
				mp.Reportf(f.File, f.Line, f.Column,
					"directive kind %s is handled but never sent: dead protocol state or a missing root phase", f.Kind)
			}
		}
	}
}

func sideMask(s string) int {
	switch s {
	case "client":
		return sideClient
	case "server":
		return sideServer
	case "both":
		return sideClient | sideServer
	}
	// Unattributed reads satisfy either side: a helper outside both
	// closures (shared parser) is still a reader.
	return sideClient | sideServer
}
