package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning (and
// most IDE problem panes) ingest. The emitter is deliberately minimal:
// one run, one rule per analyzer (plus the "lint" pseudo-rule that owns
// malformed-marker findings), one result per finding, with file paths
// relative to a ROOT uriBase so the log is machine-independent.

// sarifLog is the document root.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool              `json:"tool"`
	OriginalURIBaseIDs map[string]sarifArtLoc `json:"originalUriBaseIds,omitempty"`
	Results            []sarifResult          `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtLoc `json:"artifactLocation"`
	Region           sarifRegion `json:"region"`
}

type sarifArtLoc struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders a run's findings as a SARIF 2.1.0 log. rootDir is
// the module root; finding paths beneath it are emitted relative to the
// ROOT uriBase, others fall back to absolute file URIs.
func WriteSARIF(w io.Writer, rootDir string, analyzers []*Analyzer, res Result) error {
	driver := sarifDriver{Name: "cmfl-vet"}
	ruleIndex := make(map[string]int)
	addRule := func(id, doc string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	// The pseudo-analyzer that owns malformed //cmfl: markers.
	addRule("lint", "well-formed //cmfl: markers")

	results := make([]sarifResult, 0, len(res.Findings))
	for _, f := range res.Findings {
		addRule(f.Analyzer, f.Analyzer) // unknown analyzers still index validly
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact(rootDir, f.File),
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:               sarifTool{Driver: driver},
			OriginalURIBaseIDs: map[string]sarifArtLoc{"ROOT": {URI: fileURI(rootDir) + "/"}},
			Results:            results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifArtifact renders one finding path: ROOT-relative with forward
// slashes when possible, absolute file URI otherwise.
func sarifArtifact(rootDir, file string) sarifArtLoc {
	if rel, err := filepath.Rel(rootDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return sarifArtLoc{URI: filepath.ToSlash(rel), URIBaseID: "ROOT"}
	}
	return sarifArtLoc{URI: fileURI(file)}
}

func fileURI(path string) string {
	return "file://" + filepath.ToSlash(path)
}
