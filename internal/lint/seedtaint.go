package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// SeedTaint enforces the stream-derivation discipline that keeps every
// random draw in the engines reproducible AND independent: all randomness
// in the seed-scoped packages must derive, transitively, from
// xrand.Derive(seed, purpose, id) with a distinct compile-time purpose
// string per derivation site.
//
// Four rules:
//
//	R1  Raw sources are banned: math/rand.New/NewSource (and the v2
//	    constructors), and xrand.New outside package xrand itself. A raw
//	    source keyed on an arbitrary integer collides silently with every
//	    other stream keyed near it.
//	R2  The purpose argument of xrand.Derive must be a compile-time
//	    constant string — a dynamic purpose defeats static collision
//	    checking and run-to-run auditability.
//	R3  Purpose strings must be unique across derivation sites
//	    module-wide (checked in the merge phase over per-package facts):
//	    two sites sharing a purpose produce correlated streams for equal
//	    ids — the subtlest way to break the paper's independence
//	    assumptions.
//	R4  Seeds stay whole: seed arithmetic feeding Derive's seed parameter
//	    is flagged (vary purpose/id instead), and a raw seed crossing an
//	    in-module package boundary as a plain integer argument is flagged
//	    unless the callee parameter provably flows only into blessed
//	    derivation positions (xrand.Derive/New seed slots, Seed config
//	    fields, or further blessed parameters). Composite-literal Seed
//	    fields are exempt: config structs are how seeds legitimately
//	    travel.
var SeedTaint = &Analyzer{
	Name:  "seedtaint",
	Doc:   "randomness in seed-scoped packages derives from xrand.Derive with unique constant purpose strings; raw seeds do not leak across packages",
	Run:   runSeedTaint,
	Merge: mergeSeedTaint,
}

// SeedTaintPackages are the packages under the stream-derivation contract.
// (Var, not const: the fixture tests extend it.)
var SeedTaintPackages = map[string]bool{
	"cmfl/internal/fl":    true,
	"cmfl/internal/mtl":   true,
	"cmfl/internal/emu":   true,
	"cmfl/internal/sim":   true,
	"cmfl/internal/xrand": true,
}

const xrandPkgPath = "cmfl/internal/xrand"

// rawRandConstructors are the banned source constructors (R1).
var rawRandConstructors = map[string]bool{
	"math/rand.New":           true,
	"math/rand.NewSource":     true,
	"math/rand/v2.New":        true,
	"math/rand/v2.NewPCG":     true,
	"math/rand/v2.NewChaCha8": true,
}

func runSeedTaint(pass *Pass) {
	if !SeedTaintPackages[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkSeedCall(pass, fd, call)
				return true
			})
		}
	}
}

func checkSeedCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	fn := calleeFunc(pass.Pkg, call)
	if fn == nil {
		return
	}
	full := fn.FullName()

	// R1: raw math/rand sources.
	if rawRandConstructors[full] && !isXrandPackage(pass.Pkg.Path) {
		pass.Reportf(call.Pos(), "raw %s in %s: derive a stream with xrand.Derive(seed, purpose, id) instead", full, fd.Name.Name)
		return
	}
	// R1: xrand.New bypasses purpose-keyed derivation outside xrand itself.
	if isXrandFunc(fn, "New") && !isXrandPackage(pass.Pkg.Path) {
		pass.Reportf(call.Pos(), "xrand.New bypasses stream derivation in %s: use xrand.Derive(seed, purpose, id) so the stream is purpose-keyed", fd.Name.Name)
		return
	}

	if isXrandDerive(fn) && len(call.Args) >= 2 {
		// R2: constant purpose.
		purpose, ok := constStringValue(pass.Pkg, call.Args[1])
		if !ok {
			pass.Reportf(call.Args[1].Pos(), "xrand.Derive purpose must be a compile-time constant string (dynamic purposes defeat collision checking)")
		} else {
			position := pass.Fset().Position(call.Pos())
			pass.Facts.Streams = append(pass.Facts.Streams, StreamFact{
				Purpose: purpose,
				File:    position.Filename,
				Line:    position.Line,
				Column:  position.Column,
			})
		}
		// R4: no seed arithmetic into the seed slot.
		if seedTaint(pass.Pkg, call.Args[0]) == TaintSeedArith {
			pass.Reportf(call.Args[0].Pos(), "seed arithmetic feeding xrand.Derive defeats stream independence: pass the root seed and vary purpose or id")
		}
		return
	}

	// R4: raw seed crossing an in-module package boundary.
	if !pass.InModule(fn) || fn.Pkg() == nil || fn.Pkg().Path() == pass.Pkg.Path {
		return
	}
	for i, arg := range call.Args {
		if seedTaint(pass.Pkg, arg) == TaintNone || !isIntegerExpr(pass.Pkg, arg) {
			continue
		}
		if !blessedSeedParam(pass.Mod, fn, i, make(map[*types.Func]bool)) {
			pass.Reportf(arg.Pos(), "raw seed crosses the package boundary into %s.%s: derive the stream at the source or route it through a blessed deriver", fn.Pkg().Name(), fn.Name())
		}
	}
}

// isXrandDerive matches the purpose-keyed derivers: Derive and its
// compact-state sibling DeriveCompact share R2/R3/R4 and one purpose pool.
func isXrandDerive(fn *types.Func) bool {
	return isXrandFunc(fn, "Derive") || isXrandFunc(fn, "DeriveCompact")
}

// isXrandFunc matches the module's xrand package by path suffix so fixture
// copies of the package (testdata/src/.../xrand) bind the same rules.
func isXrandFunc(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return isXrandPackage(fn.Pkg().Path())
}

// isXrandPackage matches the real xrand package or a fixture copy of it.
func isXrandPackage(p string) bool {
	return p == xrandPkgPath || p == "xrand" || hasSuffixSegment(p, "xrand")
}

func hasSuffixSegment(path, seg string) bool {
	return len(path) > len(seg)+1 && path[len(path)-len(seg)-1] == '/' && path[len(path)-len(seg):] == seg
}

// blessedSeedParam reports whether every use of fn's i-th parameter flows
// only into derivation-blessed positions: xrand.Derive/New seed slots,
// composite-literal or assigned fields named like a seed, or the blessed
// parameter of a further call. Any other use (arithmetic, raw storage,
// rand constructors) taints the callee.
func blessedSeedParam(mod *Module, fn *types.Func, i int, visiting map[*types.Func]bool) bool {
	if visiting[fn] {
		return true // cycle: optimistic, the first frame judges the real uses
	}
	visiting[fn] = true
	decl, pkg := mod.FuncDecl(fn)
	if decl == nil || decl.Body == nil || decl.Type.Params == nil {
		return false // no body to vouch for the parameter's fate
	}
	param := paramIdentAt(decl, i)
	if param == nil {
		return false
	}
	obj := pkg.Info.Defs[param]
	if obj == nil {
		return false
	}

	ok := true
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || pkg.Info.Uses[id] != obj {
			return true
		}
		if !blessedUse(mod, pkg, decl, id, visiting) {
			ok = false
		}
		return true
	})
	return ok
}

// paramIdentAt returns the identifier of the i-th (flattened) parameter.
func paramIdentAt(decl *ast.FuncDecl, i int) *ast.Ident {
	idx := 0
	for _, field := range decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++ // unnamed parameter cannot be used; skip the slot
			continue
		}
		for _, name := range names {
			if idx == i {
				return name
			}
			idx++
		}
	}
	return nil
}

// blessedUse judges one occurrence of a seed parameter inside its function.
func blessedUse(mod *Module, pkg *Package, decl *ast.FuncDecl, id *ast.Ident, visiting map[*types.Func]bool) bool {
	path := enclosingPath(decl.Body, id.Pos())
	for k := len(path) - 1; k >= 0; k-- {
		switch parent := path[k].(type) {
		case *ast.CallExpr:
			argIdx := -1
			for j, a := range parent.Args {
				if containsPos(a, id.Pos()) {
					argIdx = j
					break
				}
			}
			if argIdx < 0 {
				return true // inside the Fun expression: a method call on something else
			}
			if tv, okT := pkg.Info.Types[parent.Fun]; okT && tv.IsType() {
				continue // conversion is transparent; keep climbing
			}
			callee := calleeFunc(pkg, parent)
			if callee == nil {
				return false
			}
			if isXrandDerive(callee) || isXrandFunc(callee, "New") {
				return argIdx == 0
			}
			return blessedSeedParam(mod, callee, argIdx, visiting)
		case *ast.KeyValueExpr:
			if key, okK := parent.Key.(*ast.Ident); okK && isSeedName(key.Name) {
				return true // config plumbing: Seed: seed
			}
			return false
		case *ast.AssignStmt:
			for j, rhs := range parent.Rhs {
				if containsPos(rhs, id.Pos()) && j < len(parent.Lhs) {
					if field, _ := writtenField(pkg, parent.Lhs[j]); field != nil && isSeedName(field.Name()) {
						return true // cfg.Seed = seed
					}
				}
			}
			return false
		case *ast.BinaryExpr, *ast.UnaryExpr, *ast.IndexExpr:
			return false // arithmetic or indexing: the seed is no longer whole
		}
	}
	return false
}

// enclosingPath returns the innermost-to-outermost chain of nodes strictly
// containing pos (excluding the identifier itself), innermost last.
func enclosingPath(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	// Drop the identifier itself if it landed at the end.
	if len(path) > 0 {
		if id, ok := path[len(path)-1].(*ast.Ident); ok && id.Pos() == pos {
			path = path[:len(path)-1]
		}
	}
	return path
}

func containsPos(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

func constStringValue(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// mergeSeedTaint is R3: purpose-string uniqueness across every analyzed
// package's derivation sites. The first site (in file:line order) owns the
// purpose; later sites are findings.
func mergeSeedTaint(mp *MergePass) {
	var all []StreamFact
	for _, t := range mp.Targets {
		all = append(all, t.Facts.Streams...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	first := make(map[string]StreamFact)
	for _, s := range all {
		prev, seen := first[s.Purpose]
		if !seen {
			first[s.Purpose] = s
			continue
		}
		if prev.File == s.File && prev.Line == s.Line && prev.Column == s.Column {
			continue // same site revisited (overlapping targets)
		}
		mp.Reportf(s.File, s.Line, s.Column,
			"stream purpose %q already used at %s:%d: purposes must be unique per derivation site or the streams collide",
			s.Purpose, shortFile(prev.File), prev.Line)
	}
}
