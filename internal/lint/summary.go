package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Effect summaries answer "what can calling this function do?" for every
// module function with a body, so analyzers can reason transitively instead
// of re-walking callee syntax at every call site. Each summary records the
// function's *direct* effects with positioned witnesses; the blocking
// effect — the one concsafety needs across whole call chains — is also
// closed transitively over non-spawn call edges with the call chain kept
// for the finding message.

// Effect enumerates the tracked behaviors.
type Effect uint8

const (
	EffAlloc Effect = iota // heap allocation (hotpathalloc's construct set)
	EffBlock               // may park the calling goroutine
	EffLock                // acquires a sync.(RW)Mutex
	EffSpawn               // starts a goroutine
	EffClock               // reads the wall clock
	EffRand                // draws randomness
	numEffects
)

var effectNames = [numEffects]string{"allocates", "blocks", "locks", "spawns", "reads-clock", "draws-rand"}

func (e Effect) String() string { return effectNames[e] }

// Witness is one positioned occurrence of an effect.
type Witness struct {
	Pos  token.Pos
	What string
}

// TransWitness is a transitive witness: the occurrence plus the in-module
// call chain (fn → Via[0] → … → the witness's owner) that reaches it.
type TransWitness struct {
	W   Witness
	Via []*types.Func
}

// EffectSummary is the per-function effect record.
type EffectSummary struct {
	Fn     *types.Func
	Direct [numEffects][]Witness

	// blocks is set when the function may block the calling goroutine,
	// directly or through in-module callees.
	blocks *TransWitness
}

// Has reports a direct occurrence of e.
func (s *EffectSummary) Has(e Effect) bool { return len(s.Direct[e]) > 0 }

// Blocks returns the transitive blocking witness, or nil when the function
// provably (up to the usual dynamic-call conservatism) never blocks.
func (s *EffectSummary) Blocks() *TransWitness { return s.blocks }

// Summaries returns the module's effect summaries, computing them on first
// use. Safe for concurrent analyzers.
func (m *Module) Summaries() map[*types.Func]*EffectSummary {
	m.sumOnce.Do(func() { m.sums = buildSummaries(m) })
	return m.sums
}

func buildSummaries(mod *Module) map[*types.Func]*EffectSummary {
	g := mod.CallGraph()
	sums := make(map[*types.Func]*EffectSummary, len(g.Nodes))

	var fns []*types.Func
	for fn := range g.Nodes {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	for _, fn := range fns {
		node := g.Nodes[fn]
		s := &EffectSummary{Fn: fn}
		scanDirectEffects(node.Pkg, node.Decl.Body, s)
		if len(s.Direct[EffBlock]) > 0 {
			w := s.Direct[EffBlock][0]
			s.blocks = &TransWitness{W: w}
		}
		sums[fn] = s
	}

	// Transitive blocking: fixed point over non-spawn in-module edges. A
	// witness, once chosen, is never replaced, so with the sorted outer
	// iteration the result is deterministic.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			s := sums[fn]
			if s.blocks != nil {
				continue
			}
			for _, site := range g.Nodes[fn].Sites {
				if site.Spawn || site.Callee == nil {
					continue
				}
				cs, ok := sums[site.Callee]
				if !ok || cs.blocks == nil {
					continue
				}
				via := make([]*types.Func, 0, len(cs.blocks.Via)+1)
				via = append(via, site.Callee)
				via = append(via, cs.blocks.Via...)
				s.blocks = &TransWitness{W: cs.blocks.W, Via: via}
				changed = true
				break
			}
		}
	}
	return sums
}

// scanDirectEffects records the body's own effects. Spawned function-literal
// bodies are excluded from Block/Lock/Clock/Rand (they run on another
// goroutine) but the `go` statement itself is a Spawn and an Alloc.
func scanDirectEffects(pkg *Package, body *ast.BlockStmt, s *EffectSummary) {
	info := pkg.Info
	add := func(e Effect, pos token.Pos, what string) {
		s.Direct[e] = append(s.Direct[e], Witness{Pos: pos, What: what})
	}
	scanAllocs(info, body, func(pos token.Pos, what string) { add(EffAlloc, pos, what) })
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			add(EffSpawn, n.Pos(), "go statement")
			return false
		case *ast.SendStmt:
			add(EffBlock, n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(EffBlock, n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				add(EffBlock, n.Pos(), "select without default")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					add(EffBlock, n.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pkg, n)
			if fn == nil {
				return true
			}
			if what := blockingCall(fn); what != "" {
				add(EffBlock, n.Pos(), what)
			}
			if what := lockingCall(fn); what != "" {
				add(EffLock, n.Pos(), what)
			}
			if fn.FullName() == "time.Now" {
				add(EffClock, n.Pos(), "time.Now")
			}
			if drawsRand(fn) {
				add(EffRand, n.Pos(), fn.FullName())
			}
		}
		return true
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingRecvMethods maps "recvType.Method" of calls that park the caller.
// Receivers are judged by static type, so an interface-typed net.Conn.Read
// counts even when the concrete conn would not.
var blockingRecvMethods = map[string]bool{
	"net.Conn.Read":         true,
	"net.Conn.Write":        true,
	"net.Listener.Accept":   true,
	"io.Reader.Read":        true,
	"io.Writer.Write":       true,
	"io.ReadWriter.Read":    true,
	"io.ReadWriter.Write":   true,
	"sync.WaitGroup.Wait":   true,
	"sync.Cond.Wait":        true,
	"net/http.Server.Serve": true,
}

// blockingCall classifies a statically resolved callee as blocking, returning
// a short description or "".
func blockingCall(fn *types.Func) string {
	switch fn.FullName() {
	case "time.Sleep":
		return "time.Sleep"
	case "io.ReadFull", "io.Copy", "io.ReadAll":
		return fn.FullName()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	key := named(sig.Recv().Type()) + "." + fn.Name()
	if blockingRecvMethods[key] {
		return key
	}
	return ""
}

// lockingCall classifies mutex acquisitions.
func lockingCall(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := named(sig.Recv().Type())
	if (recv == "sync.Mutex" || recv == "sync.RWMutex") && (fn.Name() == "Lock" || fn.Name() == "RLock") {
		return recv + "." + fn.Name()
	}
	return ""
}

// drawsRand reports whether fn draws randomness: the global math/rand
// source, methods on an explicit *rand.Rand, or the module's xrand streams.
func drawsRand(fn *types.Func) bool {
	if isGlobalRand(fn) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch named(sig.Recv().Type()) {
	case "math/rand.Rand", "math/rand/v2.Rand", "cmfl/internal/xrand.Stream":
		return true
	}
	return false
}
