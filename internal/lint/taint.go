package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// A three-point forward taint lattice over seed values:
//
//	TaintNone < TaintSeed < TaintSeedArith
//
// TaintSeed marks an expression that IS a root experiment seed — an
// integer identifier, selector, parameter or field whose name is `seed` or
// ends in `Seed` (cfg.Seed, rootSeed). TaintSeedArith marks a value
// computed FROM a seed (seed+1, seed*int64(id), -seed): still
// seed-derived, but no longer the root — feeding it to xrand.Derive
// silently forks the stream universe, which is exactly the bug class the
// purpose-string discipline exists to prevent. Conversions are transparent
// (int64(seed) keeps the taint); any other operator escalates to Arith.
type Taint uint8

const (
	TaintNone Taint = iota
	TaintSeed
	TaintSeedArith
)

// seedTaint classifies e. The analysis is purely syntactic plus types: no
// assignments are followed — a copied seed keeps its seed-like name in this
// codebase, and the conservative miss (laundering through an innocuously
// named local) is accepted and documented.
func seedTaint(pkg *Package, e ast.Expr) Taint {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if isSeedName(x.Name) && isIntegerExpr(pkg, e) {
			return TaintSeed
		}
	case *ast.SelectorExpr:
		if isSeedName(x.Sel.Name) && isIntegerExpr(pkg, e) {
			return TaintSeed
		}
	case *ast.BinaryExpr:
		if seedTaint(pkg, x.X) != TaintNone || seedTaint(pkg, x.Y) != TaintNone {
			return TaintSeedArith
		}
	case *ast.UnaryExpr:
		if seedTaint(pkg, x.X) != TaintNone {
			return TaintSeedArith
		}
	case *ast.CallExpr:
		// Conversions are transparent: int64(seed) is still the seed.
		if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return seedTaint(pkg, x.Args[0])
		}
	}
	return TaintNone
}

// isSeedName matches the repo's seed naming convention: `seed` itself or a
// CamelCase `...Seed` suffix.
func isSeedName(name string) bool {
	return name == "seed" || name == "Seed" || strings.HasSuffix(name, "Seed")
}

func isIntegerExpr(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
