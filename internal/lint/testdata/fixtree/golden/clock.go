// Package fixtree is the `cmfl-vet -fix` golden tree: wall.go carries
// every fixable wallclock shape, this file declares the hooks the
// rewrites retarget to. The test copies the tree into a temp module, runs
// RunFix, and compares byte-for-byte against ../golden.
package fixtree

import "time"

func now() time.Time { return time.Unix(0, 0) }

func sleep(d time.Duration) { _ = d }
