package fixtree

import "time"

func elapsed() time.Duration {
	start := now()
	pause()
	return now().Sub(start)
}

func pause() {
	sleep(5 * time.Millisecond)
}

func stamped() (int64, time.Duration) {
	t0 := now()
	return t0.UnixNano(), now().Sub(t0)
}
