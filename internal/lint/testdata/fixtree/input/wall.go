package fixtree

import "time"

func elapsed() time.Duration {
	start := time.Now()
	pause()
	return time.Since(start)
}

func pause() {
	time.Sleep(5 * time.Millisecond)
}

func stamped() (int64, time.Duration) {
	t0 := time.Now()
	return t0.UnixNano(), time.Since(t0)
}
