// Package apicompat is the surface the baseline-diff tests snapshot: the
// test writes a baseline that disagrees with Old's result type and
// records a Removed symbol that no longer exists, then asserts exactly
// one finding for each. The reasonless marker below is the third
// expected finding — a waiver that carries no migration story is itself
// a defect.
package apicompat

//cmfl:api-change

// Old's baseline entry (written by the test) claims it returns string.
func Old(n int) int { return n }

// Cfg matches its baseline entries exactly.
type Cfg struct {
	Limit int
}

// Grown is absent from the baseline: additions are never findings.
func Grown() {}
