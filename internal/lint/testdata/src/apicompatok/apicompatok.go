// Package apicompatok carries the same baseline mismatches as the
// apicompat fixture plus a reasoned //cmfl:api-change marker: the marker
// waives the whole package, so the run must stay clean.
package apicompatok

//cmfl:api-change Old now returns int; callers drop the string conversion

// Old's baseline entry (written by the test) claims it returns string.
func Old(n int) int { return n }
