// Package concsafety exercises both concurrency-safety checks: shared
// struct fields written from more than one goroutine origin without a
// guarding mutex, and mutexes provably held across blocking operations.
// The silent cases matter as much as the findings — guarded writes, the
// emulator's early-unlock-and-return branch shape, and sends after the
// critical section must not fire.
package concsafety

import "sync"

type Server struct {
	mu      sync.Mutex
	guarded int
	naked   int
	done    chan struct{}
	queue   chan int
}

// Run writes guarded and naked from both the main context and a spawned
// goroutine: only the unguarded field is shared-and-unprotected.
func (s *Server) Run() {
	go func() {
		for i := 0; i < 10; i++ {
			s.mu.Lock()
			s.guarded++
			s.mu.Unlock()
			s.naked++ // want "field Server.naked is written from multiple goroutines"
		}
	}()
	s.mu.Lock()
	s.guarded++
	s.mu.Unlock()
	s.naked++ // want "field Server.naked is written from multiple goroutines"
}

// flush holds the mutex across a channel send: the classic way to stall
// every other connection on one slow receiver.
func (s *Server) flush(v int) {
	s.mu.Lock()
	s.queue <- v // want "s.mu held across channel send"
	s.mu.Unlock()
}

func (s *Server) wait() {
	<-s.done
}

// drain blocks transitively: wait's channel receive surfaces through its
// effect summary with the witness position.
func (s *Server) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wait() // want "s.mu held across call to wait, which blocks \(channel receive"
}

// admit is the early-unlock-and-return shape from the emulator: after the
// terminated branch the lock is still held for the guarded write, and the
// send happens after Unlock — all silent.
func (s *Server) admit(v int) bool {
	s.mu.Lock()
	if v < 0 {
		s.mu.Unlock()
		return false
	}
	s.guarded++
	s.mu.Unlock()
	s.queue <- v
	return true
}
