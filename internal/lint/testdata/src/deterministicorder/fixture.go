// Package deterministicorder is a lint fixture for the determinism rules.
package deterministicorder

import (
	"math/rand"
	"time"
)

//cmfl:deterministic
func aggregate(ws map[int][]float64, acc []float64) {
	for _, w := range ws { // want "map iteration in deterministic function aggregate"
		for i := range acc {
			acc[i] += w[i]
		}
	}
	_ = time.Now()           // want "time.Now in deterministic function aggregate"
	acc[0] += rand.Float64() // want "global math/rand source .Float64. in aggregate"
}

//cmfl:deterministic
func seededIsFine(acc []float64) {
	r := rand.New(rand.NewSource(7)) // ok: explicit seedable source
	for i := range acc {             // ok: slice iteration is ordered
		acc[i] += r.Float64() // ok: method on an explicit *rand.Rand
	}
}

// packageRand is NOT annotated: its global-rand draw only fires when the
// test promotes this fixture into EnginePackages (rule 2 is package-wide).
func packageRand() int {
	return rand.Intn(10)
}
