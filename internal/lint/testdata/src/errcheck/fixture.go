// Package errcheck is a lint fixture for discarded-error detection.
package errcheck

import (
	"fmt"
	"os"
	"strings"
)

func bare(f *os.File) {
	f.Close() // want "call discards its error result"
}

func deferred(f *os.File) {
	defer f.Close() // want "deferred call discards its error result"
}

func spawned(f *os.File) {
	go f.Close() // want "spawned call discards its error result"
}

func blank(f *os.File) {
	_ = f.Close() // want "error assigned to _"
}

func tupleBlank() *os.File {
	f, _ := os.Open("x") // want "error result assigned to _"
	return f
}

func excluded(sb *strings.Builder) {
	fmt.Println("ok")    // ok: fmt printers are excluded by policy
	sb.WriteString("ok") // ok: strings.Builder errors are documented nil
}

func handled(f *os.File) error {
	if err := f.Close(); err != nil { // ok: error is read
		return err
	}
	return nil
}
