// Package exhaustive exercises enum-family switch coverage: named integer
// families bind through the tag type, prefix families (op*) through case
// membership, and a default only helps when it fails loudly.
package exhaustive

import (
	"errors"
	"fmt"
)

// Kind is a named enum family.
type Kind int

const (
	KindAlpha Kind = iota
	KindBeta
	KindGamma
)

// op* is a prefix family: one const block, untyped integers, shared prefix.
const (
	opStart = iota
	opStop
	opFlush
)

// covered names every member: no default needed.
func covered(k Kind) int {
	switch k {
	case KindAlpha:
		return 1
	case KindBeta:
		return 2
	case KindGamma:
		return 3
	}
	return 0
}

// loudMiss misses KindGamma but rejects it with an error: fine.
func loudMiss(k Kind) (int, error) {
	switch k {
	case KindAlpha:
		return 1, nil
	case KindBeta:
		return 2, nil
	default:
		return 0, fmt.Errorf("unknown kind %d", k)
	}
}

// panicMiss misses KindGamma but panics: also loud.
func panicMiss(k Kind) int {
	switch k {
	case KindAlpha:
		return 1
	case KindBeta:
		return 2
	default:
		panic("unknown kind")
	}
}

// noDefault misses KindGamma with nowhere for it to go.
func noDefault(k Kind) int {
	switch k { // want "switch over Kind misses KindGamma and there is no default clause"
	case KindAlpha:
		return 1
	case KindBeta:
		return 2
	}
	return 0
}

// silentDefault misses KindGamma and the default swallows it.
func silentDefault(k Kind) int {
	switch k { // want "switch over Kind misses KindGamma and the default handles them silently"
	case KindAlpha:
		return 1
	case KindBeta:
		return 2
	default:
		return 0
	}
}

// prefixMiss binds the op* family through its two case members and misses
// opFlush.
func prefixMiss(op int) error {
	switch op { // want "switch over op. misses opFlush and there is no default clause"
	case opStart:
		return nil
	case opStop:
		return errors.New("stopped")
	}
	return nil
}

// oneHit mentions a single op* member: not enough evidence to bind an
// untyped family, so no finding.
func oneHit(op int) int {
	switch op {
	case opStart:
		return 1
	}
	return 0
}
