// Package floateq is a lint fixture for float equality detection.
package floateq

func bad(a, b float64) bool {
	if a == b { // want "float == comparison"
		return true
	}
	return a != b // want "float != comparison"
}

func bad32(f, g float32) bool {
	return f == g // want "float == comparison"
}

func badSwitch(x float64) int {
	switch x { // want "switch on float value"
	case 0:
		return 0
	}
	return 1
}

func ok(a, b float64, n, m int) bool {
	if n == m { // ok: integer comparison
		return true
	}
	const folded = 1.5 == 1.5 // ok: both operands are constants
	d := a - b
	return folded && d < 1e-9 && d > -1e-9 // ok: epsilon comparison
}
