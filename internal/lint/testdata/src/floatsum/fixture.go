// Package floatsum is a lint fixture for the order-sensitive float
// accumulation prover.
package floatsum

var sink float64

func plainSums(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x // want "float accumulation sum depends on iteration order"
	}
	var spelled float64
	for _, x := range xs {
		spelled = spelled + x // want "float accumulation spelled depends on iteration order"
	}
	var sub float64
	for _, x := range xs {
		sub -= x // want "float accumulation sub depends on iteration order"
	}
	return sum + spelled + sub
}

// nestedHazard: declared in the outer loop's body, folded across the inner
// loop — invariant for the inner drain, so still a reduction.
func nestedHazard(rounds [][]float64) {
	for _, xs := range rounds {
		var roundSum float64
		for _, x := range xs {
			roundSum += x // want "float accumulation roundSum depends on iteration order"
		}
		sink = roundSum
	}
}

// elementWise addresses a distinct slot each iteration: not a reduction.
func elementWise(dst, src []float64) {
	for j := range dst {
		dst[j] += src[j]
	}
}

// bodyLocal folds only into per-iteration state of the innermost loop.
func bodyLocal(xs []float64) {
	for _, x := range xs {
		y := x * 2
		y += 1
		sink = y
	}
}

// intSums: integer addition is associative; order cannot matter.
func intSums(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// pinnedSlice: slice drains are provably deterministic, the pin is honored.
func pinnedSlice(xs []float64) float64 {
	var sum float64
	//cmfl:order-pinned the slice order is the algorithm's canonical fold order
	for _, x := range xs {
		sum += x
	}
	return sum
}

// pinnedStmt: the marker may also sit directly above the accumulation.
func pinnedStmt(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		//cmfl:order-pinned canonical fold order, pinned at the statement
		sum += x
	}
	return sum
}

// pinnedMap: no pin can rescue a map drain — iteration order is randomized.
func pinnedMap(m map[string]float64) float64 {
	var sum float64
	//cmfl:order-pinned maps are fine, surely
	for _, v := range m {
		sum += v // want "ranges over a map"
	}
	return sum
}

// pinnedDrain: a channel-receive loop folds in arrival order; pin refused.
func pinnedDrain(ch chan float64) float64 {
	var sum float64
	for {
		v, ok := <-ch
		if !ok {
			break
		}
		//cmfl:order-pinned arrival order is fine, surely
		sum += v // want "receives from a channel"
	}
	return sum
}

// unpinnedChanRange: the generic finding fires without any marker too.
func unpinnedChanRange(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		sum += v // want "float accumulation sum depends on iteration order"
	}
	return sum
}
