package floatsum

// reasonless: a bare marker is itself reported (counted out-of-band by the
// test — the marker line cannot carry an expectation comment without the
// comment text becoming the reason), and it silences nothing.
func reasonless(xs []float64) float64 {
	var sum float64
	//cmfl:order-pinned
	for _, x := range xs {
		sum += x // want "float accumulation sum depends on iteration order"
	}
	return sum
}
