// Package generated proves generated and test files are skipped: gen.go
// (generated header) and skipped_test.go are full of violations, yet only
// the single finding below may surface.
package generated

import "os"

func handwritten(f *os.File) {
	f.Close() // want "call discards its error result"
}
