package generated

import "os"

// Test files never reach the loader; none of these may surface.
func testOnlyViolations(f *os.File) bool {
	_ = f.Close()
	var a, b float64
	return a == b
}
