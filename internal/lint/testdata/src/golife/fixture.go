// Package golife is a lint fixture for the goroutine-lifecycle prover.
package golife

import (
	"context"
	"sync"
)

type server struct {
	stop chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// run drains until the stop channel closes — joined because Close closes
// it (stop-channel evidence).
func (s *server) run() {
	for {
		select {
		case <-s.stop:
			return
		}
	}
}

// serve signals completion on done — joined because Close receives from it
// (done-channel evidence).
func (s *server) serve() {
	defer close(s.done)
}

func (s *server) start() {
	s.wg.Add(1)
	go func() { // waitgroup join
		defer s.wg.Done()
	}()
	go s.run()   // stop-channel join
	go s.serve() // done-channel join
	go orphan()  // want "spawns orphan with no provable join"
	fn := orphan
	go fn() // want "spawns a goroutine through a function value"
}

// viaHelper proves the join transitively: the literal's only statement is
// a call whose body holds the Done.
func (s *server) viaHelper() {
	s.wg.Add(1)
	go func() {
		s.finish()
	}()
}

func (s *server) finish() {
	s.wg.Done()
}

func (s *server) Close() {
	close(s.stop)
	s.wg.Wait()
	<-s.done
}

func orphan() {
	for {
	}
}

// watch joins through context cancellation.
func watch(ctx context.Context) {
	go func() { // context join
		<-ctx.Done()
	}()
}

// nested: the inner spawn's Done must not join the outer goroutine.
func nested(wg *sync.WaitGroup) {
	go func() { // want "spawns function literal with no provable join"
		go func() {
			wg.Done()
		}()
	}()
}
