// Package goroleak exercises the goroutine-leak heuristic: spawned bodies
// whose transitive execution reaches an infinite loop with no return and no
// break have no exit signal.
package goroleak

func spawnAll(stop chan struct{}, work chan int) {
	go func() { // want "goroutine has no reachable exit: infinite loop at"
		for {
			select {
			case v := <-work:
				_ = v
			}
		}
	}()
	go func() { // silent: the stop case returns
		for {
			select {
			case <-stop:
				return
			case v := <-work:
				_ = v
			}
		}
	}()
	go deep() // want "goroutine has no reachable exit: infinite loop at"
}

// deep hides the loop one call below the spawned function.
func deep() {
	helper()
}

func helper() {
	n := 0
	for {
		n++
	}
}
