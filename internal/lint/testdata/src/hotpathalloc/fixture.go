// Package hotpathalloc is a lint fixture. Every `want` expectation comment
// marks an expected hotpathalloc finding on its line; unmarked lines must
// stay silent.
package hotpathalloc

type pair struct{ a, b float64 }

//cmfl:hotpath
func injectedAppend(dst []float64, x float64) []float64 {
	dst = append(dst, x) // want "append in hot path injectedAppend"
	return dst
}

//cmfl:hotpath
func directAllocs(n int, s string) string {
	buf := make([]float64, n) // want "make in hot path directAllocs"
	_ = buf
	p := new(int) // want "new in hot path directAllocs"
	_ = p
	pp := &pair{} // want "address-of composite literal in hot path directAllocs"
	_ = pp
	ids := []int{1, 2} // want "slice literal in hot path directAllocs"
	_ = ids
	m := map[string]int{} // want "map literal in hot path directAllocs"
	_ = m
	cb := func() {} // want "func literal .closure. in hot path directAllocs"
	cb()
	b := []byte(s) // want "string conversion in hot path directAllocs"
	_ = b
	return s + "!" // want "string concatenation in hot path directAllocs"
}

//cmfl:hotpath
func sanctioned(dst, src []float64) []float64 {
	v := pair{a: 1}               // ok: value struct literal stays on the stack
	const greeting = "a" + "b"    // ok: constant-folded concatenation
	dst = append(dst[:0], src...) // ok: sanctioned reuse idiom
	_, _ = v, greeting
	return dst
}

// helperGrow is NOT annotated; its append must surface at annotated callers.
func helperGrow(dst []float64) []float64 {
	return append(dst, 1)
}

//cmfl:hotpath
func viaHelper(dst []float64) []float64 {
	return helperGrow(dst) // want "hot path viaHelper calls helperGrow, which allocates"
}

// helperJustified carries its own suppression, so annotated callers stay
// quiet — the amortized cost was audited where the allocation lives.
func helperJustified(dst []float64, n int) []float64 {
	if cap(dst) < n {
		//cmfl:lint-ignore hotpathalloc fixture: amortized grow audited here
		dst = make([]float64, n)
	}
	return dst[:n]
}

//cmfl:hotpath
func viaJustifiedHelper(dst []float64) []float64 {
	return helperJustified(dst, 8) // ok: callee-internal suppression honored
}

//cmfl:hotpath
func suppressedDirect(dst []float64) []float64 {
	//cmfl:lint-ignore hotpathalloc fixture: direct suppression must count toward Result.Suppressed
	return append(dst, 0)
}
