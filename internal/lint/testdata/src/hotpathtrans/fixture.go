// Package hotpathtrans exercises the transitive hot-path allocation rule:
// the allocation sits two calls below the //cmfl:hotpath annotation and the
// finding names the full call path from the annotation to the allocator.
package hotpathtrans

//cmfl:hotpath
func hot(dst, src []float64) float64 {
	s := level1(dst, src) // want "hot path hot calls level1 → level2, which allocates \(append"
	s += barrier(dst)
	s += viaJustified(dst)
	s += float64(spin(3))
	return s
}

// level1 is clean itself; the allocation is one more hop down.
func level1(dst, src []float64) float64 {
	return level2(dst, src)
}

func level2(dst, src []float64) float64 {
	dst = append(dst, src...)
	return dst[0]
}

// barrier is annotated in its own right: hot must not re-report through it,
// and its own direct allocation is its own finding.
//
//cmfl:hotpath
func barrier(dst []float64) float64 {
	dst = append(dst, 1) // want "append in hot path barrier"
	return dst[0]
}

// viaJustified reaches an allocation whose helper carries an audited
// callee-side marker: nothing may surface at hot's call site.
func viaJustified(dst []float64) float64 {
	return justifiedGrow(dst)
}

func justifiedGrow(dst []float64) float64 {
	//cmfl:lint-ignore hotpathalloc amortized grow-only resize, measured free
	dst = append(dst, 2)
	return dst[0]
}

// spin and spin2 form a call cycle with no allocation: the breadth-first
// walk must terminate and stay silent.
func spin(n int) int {
	if n == 0 {
		return 0
	}
	return spin2(n - 1)
}

func spin2(n int) int {
	return spin(n)
}
