// Package lockorder exercises the lock-acquisition order graph: lockA
// holds S.mu while transitively taking peer.T.Mu (through peer.WithLock),
// lockB acquires the same two locks in the opposite order. The two edges
// form a cross-package cycle; the finding lands on the edge leaving the
// lexicographically smallest lock.
package lockorder

import (
	"sync"

	"cmfl/internal/lint/testdata/src/lockorder/peer"
)

// S owns the first lock of the cycle.
type S struct {
	mu sync.Mutex
	n  int
}

// lockA holds s.mu across the call that takes peer's lock.
func lockA(s *S) {
	s.mu.Lock()
	peer.WithLock() // want "lock-acquisition cycle"
	s.n++
	s.mu.Unlock()
}

// lockB takes the locks in the opposite order.
func lockB(s *S) {
	peer.P.Mu.Lock()
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	peer.P.Mu.Unlock()
}

// reLock re-acquires the same canonical lock on another instance: a
// self-edge, deliberately not part of the order graph.
func reLock(a, b *S) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
