// Package peer owns the second lock of the two-package cycle fixture.
package peer

import "sync"

// T guards a shared counter.
type T struct {
	Mu sync.Mutex
	n  int
}

// P is the shared instance.
var P T

// WithLock bumps the counter under P.Mu.
func WithLock() {
	P.Mu.Lock()
	P.n++
	P.Mu.Unlock()
}
