// Package metricschema is a lint fixture for the telemetry naming contract.
package metricschema

import "cmfl/internal/telemetry"

const rounds = "cmfl_fixture_rounds_total"

func register(r *telemetry.Registry, engine, dynamic string) {
	r.Counter(rounds, "rounds served") // ok: constant, cmfl_-prefixed
	r.Gauge("cmfl_fixture_loss", "train loss")
	label := `{engine="` + engine + `"}`
	r.Counter("cmfl_fixture_uploads_total"+label, "uploads") // ok: dynamic label VALUE

	r.Counter("fixture_bad_prefix_total", "x")    // want "must match"
	r.Gauge("cmfl_fixture_g"+dynamic, "x")        // want "metric family name must be a compile-time constant"
	r.Counter(dynamic, "x")                       // want "metric family name must be a compile-time constant"
	r.Counter(buildName(), "x")                   // want "not statically analyzable"
	r.Counter(`cmfl_fixture_s{region="eu"}`, "x") // want "not in the allowlist"
	key := `{` + dynamic + `="x"}`
	r.Counter("cmfl_fixture_k_total"+key, "x") // want "label key on .cmfl_fixture_k_total. must be a compile-time constant"
}

func buildName() string { return "cmfl_fixture_built" }

func duplicate(r *telemetry.Registry) {
	r.Counter("cmfl_fixture_dup_total", "first site")  // ok: first registration wins
	r.Counter("cmfl_fixture_dup_total", "second site") // want "already registered"
}
