// Package net is a fixture stand-in for the standard net package: its
// import path ends in /net, so protostate treats Dial as a
// fresh-connection constructor.
package net

// Conn is a throwaway connection.
type Conn struct{}

// Write pretends to write.
func (Conn) Write(b []byte) (int, error) { return len(b), nil }

// Dial opens a fresh (fake) connection.
func Dial(addr string) Conn { return Conn{} }
