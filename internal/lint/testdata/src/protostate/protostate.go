// Package protostate exercises the wire-protocol duality rules: a frame
// kind written by one side with no opposite-side reader (D1), directive
// send/handle sets that fail to mirror (D2), a frame-kind dispatch switch
// with a silent default (D3), and a write on a freshly dialed connection
// before the hello (D4). RunClient and the Server methods anchor the two
// call-graph sides by name, exactly as in internal/emu.
package protostate

import (
	"errors"

	"cmfl/internal/lint/testdata/src/protostate/net"
)

// msg* is the frame-kind wire alphabet.
const (
	msgHello byte = iota + 1
	msgData
	msgAck
	msgPing
)

// dir* is the root→aggregator directive alphabet.
const (
	dirStart = iota
	dirStop
	dirFlush
)

type frame struct {
	kind    byte
	payload []byte
}

type directive struct {
	kind  int
	round int
}

func writeFrame(c net.Conn, kind byte, payload []byte) error {
	_, err := c.Write(append([]byte{kind}, payload...))
	return err
}

// RunClient is the client side's entry point: everything it reaches is
// client-side.
func RunClient() error {
	c, err := connect()
	if err != nil {
		return err
	}
	if err := writeFrame(c, msgData, nil); err != nil {
		return err
	}
	var f frame
	switch f.kind {
	case msgAck:
		return nil
	default:
		return errors.New("unexpected reply kind")
	}
}

// connect dials and immediately negotiates: the first kind after the Dial
// is the hello, so D4 stays quiet.
func connect() (net.Conn, error) {
	c := net.Dial("emu")
	if err := hello(c); err != nil {
		return net.Conn{}, err
	}
	return c, nil
}

func hello(c net.Conn) error {
	return writeFrame(c, msgHello, nil)
}

// Server anchors the server side.
type Server struct{}

// serve is the server's frame dispatch: it reads what the client writes
// and rejects unknown kinds loudly.
func (s *Server) serve(c net.Conn, f frame) error {
	switch f.kind {
	case msgHello:
		return nil
	case msgData:
		return writeFrame(c, msgAck, nil)
	default:
		return errors.New("unknown frame kind")
	}
}

// ping writes a kind no client-side code ever reads: D1 fires at the
// write site.
func (s *Server) ping(c net.Conn) error {
	return writeFrame(c, msgPing, nil) // want "frame kind msgPing is written on the server side but has no client-side reader"
}

// preNegotiate writes a data frame on a connection it just dialed,
// before any hello: D4 fires at the write.
func preNegotiate() {
	c := net.Dial("emu")
	_ = writeFrame(c, msgData, nil) // want "frame kind msgData written on a freshly dialed connection before the msgHello handshake"
}

// classify dispatches on frame kinds but swallows unknown ones: D3.
func classify(f frame) int {
	switch f.kind { // want "frame-kind dispatch in classify swallows unknown kinds in its default"
	case msgData:
		return 1
	case msgAck:
		return 2
	default:
		return 0
	}
}

// runRoot sends dirStart and dirStop; the handler below answers dirStart
// and dirFlush. The mismatch in both directions is D2.
func runRoot(ds chan<- directive) {
	ds <- directive{kind: dirStart, round: 1}
	ds <- directive{kind: dirStop, round: 1} // want "directive kind dirStop is sent but no dispatch case handles it"
}

func handleDirective(d directive) error {
	switch d.kind {
	case dirStart:
		return nil
	case dirFlush: // want "directive kind dirFlush is handled but never sent"
		return nil
	default:
		return errors.New("unknown directive")
	}
}
