// Package deriver holds the cross-package helpers the taint rules judge:
// blessed derivers whose seed parameter flows only into derivation slots,
// and a tainted one that hashes the seed on the way through.
package deriver

import "cmfl/internal/lint/testdata/src/seedtaint/xrand"

type Config struct {
	Seed int64
}

// ClientStream is blessed: its seed parameter reaches only Derive's seed
// slot, so callers may hand it a raw seed across the package boundary.
func ClientStream(seed int64, id int) *xrand.Stream {
	return xrand.Derive(seed, "deriver-client", id)
}

// Chain is blessed transitively, through ClientStream.
func Chain(seed int64, id int) *xrand.Stream {
	return ClientStream(seed, id)
}

// Mix is tainted: the seed is folded with the id before derivation.
func Mix(seed int64, id int) *xrand.Stream {
	return xrand.Derive(seed^int64(id), "deriver-mix", 0)
}

// Store is blessed: assigning to a Seed-named field is config plumbing.
func Store(cfg *Config, seed int64) {
	cfg.Seed = seed
}
