// Package seedtaint exercises the seed-provenance rules: banned raw
// sources, constant and unique derivation purposes, whole seeds, and the
// blessed-deriver escape hatch for raw seeds crossing package boundaries.
package seedtaint

import (
	mrand "math/rand"

	"cmfl/internal/lint/testdata/src/seedtaint/deriver"
	"cmfl/internal/lint/testdata/src/seedtaint/xrand"
)

func rawSource(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed)) // want "raw math/rand.New in rawSource" "raw math/rand.NewSource in rawSource"
}

func bypass(seed int64) *xrand.Stream {
	return xrand.New(seed) // want "xrand.New bypasses stream derivation in bypass"
}

func dynamic(seed int64, purpose string) *xrand.Stream {
	return xrand.Derive(seed, purpose, 1) // want "purpose must be a compile-time constant"
}

func arith(seed int64, id int) *xrand.Stream {
	return xrand.Derive(seed+int64(id), "arith-stream", 0) // want "seed arithmetic feeding xrand.Derive"
}

func collide(seed int64) (*xrand.Stream, *xrand.Stream) {
	a := xrand.Derive(seed, "dup-purpose", 0)
	b := xrand.Derive(seed, "dup-purpose", 1) // want "stream purpose .dup-purpose. already used"
	return a, b
}

func blessedHop(seed int64) *xrand.Stream {
	return deriver.ClientStream(seed, 1) // silent: blessed deriver
}

func blessedChain(seed int64) *xrand.Stream {
	return deriver.Chain(seed, 2) // silent: blessed transitively
}

func blessedConversion(seed int, id int) *xrand.Stream {
	return deriver.ClientStream(int64(seed), id) // silent: conversions are transparent
}

func taintedHop(seed int64) *xrand.Stream {
	return deriver.Mix(seed, 3) // want "raw seed crosses the package boundary into deriver.Mix"
}

func configPlumb(seed int64) *deriver.Config {
	cfg := &deriver.Config{Seed: seed}
	deriver.Store(cfg, seed) // silent: Store assigns a Seed-named field
	return cfg
}
