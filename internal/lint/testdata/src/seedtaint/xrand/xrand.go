// Package xrand mirrors the real stream-derivation surface so the
// seed-provenance fixture can exercise the rules without importing the
// module's own xrand. The analyzer matches it by path suffix.
package xrand

import "math/rand"

type Stream struct{ r *rand.Rand }

// New is the raw constructor: banned everywhere except inside this package.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// Derive keys a stream on (seed, purpose, id).
func Derive(seed int64, purpose string, id int) *Stream {
	h := seed
	for _, c := range purpose {
		h = h*1099511628211 + int64(c)
	}
	return New(h + int64(id)*2654435761)
}

func (s *Stream) Float64() float64 { return s.r.Float64() }
