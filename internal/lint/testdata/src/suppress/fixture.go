// Package suppress is a lint fixture for the //cmfl:lint-ignore contract:
// valid markers silence and are counted, malformed markers are findings
// themselves, and markers never silence a different analyzer. Expectations
// are asserted explicitly in lint_test.go (no want comments here — the
// malformed-marker line cannot carry one without becoming well-formed).
package suppress

import "os"

func valid(f *os.File) {
	_ = f.Close() //cmfl:lint-ignore errcheck fixture: same-line marker silences and is counted
}

func lineAbove(f *os.File) {
	//cmfl:lint-ignore errcheck fixture: marker on the line above also silences
	_ = f.Close()
}

func missingReason(f *os.File) {
	//cmfl:lint-ignore errcheck
	_ = f.Close()
}

func wrongAnalyzer(f *os.File) {
	//cmfl:lint-ignore floateq fixture: misdirected marker must not silence errcheck
	_ = f.Close()
}
