// Package wallclock is a lint fixture for the virtual-clock prover.
package wallclock

import (
	"time"

	"cmfl/internal/lint/testdata/src/wallclock/inner"
)

// now is the package clock hook; declaring it makes time.Now and
// time.Since findings carry mechanical rewrites.
func now() time.Time { return time.Unix(0, 0) }

func direct() time.Duration {
	start := time.Now()          // want "direct calls time.Now directly"
	time.Sleep(time.Millisecond) // want "direct calls time.Sleep directly"
	return time.Since(start)     // want "direct calls time.Since directly"
}

func inLiteral() {
	f := func() {
		_ = time.Now() // want "inLiteral calls time.Now directly"
	}
	f()
}

func throughHelper() int64 {
	return inner.Stamp() // want "reaches time.Now"
}

// typeUsesAreFine: time's types and constants are not clock reads.
func typeUsesAreFine(d time.Duration) bool {
	return d > time.Millisecond
}
