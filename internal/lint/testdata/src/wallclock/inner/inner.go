// Package inner is the out-of-scope module helper the wallclock fixture
// reaches the wall clock through — two hops deep, to exercise the
// transitive proof.
package inner

import "time"

// Stamp reads the wall clock via hidden.
func Stamp() int64 { return hidden() }

func hidden() int64 { return time.Now().UnixNano() }
