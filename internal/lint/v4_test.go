package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFloatSumFixture runs the order-sensitive accumulation prover over its
// fixture. Like the suppression contract, the reasonless marker needs
// special handling: its finding sits on the marker line, which cannot carry
// a want comment (the comment text would become the reason and make the
// marker well-formed), so it is counted out-of-band.
func TestFloatSumFixture(t *testing.T) {
	pkg, mod := loadFixture(t, "floatsum")
	if FloatSumPackages[pkg.Path] {
		t.Fatalf("fixture %s unexpectedly already in scope", pkg.Path)
	}
	FloatSumPackages[pkg.Path] = true
	defer delete(FloatSumPackages, pkg.Path)

	wants := collectWants(t, mod, pkg)
	res := Run(mod, []*Package{pkg}, []*Analyzer{FloatSum})

	var malformed int
	rest := res
	rest.Findings = nil
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "malformed //cmfl:order-pinned") {
			malformed++
			continue
		}
		rest.Findings = append(rest.Findings, f)
	}
	if malformed != 1 {
		t.Errorf("malformed order-pinned findings = %d, want 1 (the reasonless marker)", malformed)
	}
	matchWants(t, wants, rest)

	_, _, tf := runPasses(mod, []*Package{pkg}, []*Analyzer{FloatSum}, &RunStats{})
	var pinned int
	for _, target := range tf {
		for _, f := range target.Facts.FloatSums {
			if f.Kind == "pinned" {
				pinned++
			}
		}
	}
	// pinnedSlice and pinnedStmt are the two honored pins; the map, channel,
	// and reasonless pins must all be refused.
	if pinned != 2 {
		t.Errorf("pinned facts = %d, want 2 (pinnedSlice, pinnedStmt)", pinned)
	}
}

// TestWallClockFixture checks the virtual-clock prover's findings and that
// the rewrite gating follows the declared hooks: the fixture declares now()
// but not sleep(), so time.Now/time.Since findings carry edits while the
// time.Sleep finding must not.
func TestWallClockFixture(t *testing.T) {
	res := checkScopedFixture(t, "wallclock", []*Analyzer{WallClock}, WallClockPackages)

	for _, f := range res.Findings {
		switch {
		case strings.Contains(f.Message, "calls time.Now directly"):
			if len(f.Edits) != 1 || f.Edits[0].NewText != "now()" {
				t.Errorf("time.Now finding at %s:%d: edits = %v, want one now() rewrite", f.File, f.Line, f.Edits)
			}
		case strings.Contains(f.Message, "calls time.Since directly"):
			if len(f.Edits) != 1 || f.Edits[0].NewText != "now().Sub(start)" {
				t.Errorf("time.Since finding at %s:%d: edits = %v, want one now().Sub(start) rewrite", f.File, f.Line, f.Edits)
			}
		case strings.Contains(f.Message, "calls time.Sleep directly"):
			if len(f.Edits) != 0 {
				t.Errorf("time.Sleep finding carries edits %v, but the fixture declares no sleep hook", f.Edits)
			}
			if strings.Contains(f.Message, "fixable") {
				t.Errorf("time.Sleep finding advertises a fix without a hook: %s", f.Message)
			}
		case strings.Contains(f.Message, "reaches time.Now"):
			// The transitive witness must name the two-hop chain through inner.
			if !strings.Contains(f.Message, "Stamp -> hidden") {
				t.Errorf("transitive finding does not carry the call chain: %s", f.Message)
			}
		}
	}
}

// TestGoLifeFixture checks the goroutine-lifecycle prover's findings and
// that every join kind the analyzer claims to prove is actually exercised
// by the fixture's clean spawns.
func TestGoLifeFixture(t *testing.T) {
	pkg, mod := loadFixture(t, "golife")
	if GoLifePackages[pkg.Path] {
		t.Fatalf("fixture %s unexpectedly already in scope", pkg.Path)
	}
	GoLifePackages[pkg.Path] = true
	defer delete(GoLifePackages, pkg.Path)

	wants := collectWants(t, mod, pkg)
	res := Run(mod, []*Package{pkg}, []*Analyzer{GoLife})
	matchWants(t, wants, res)

	_, _, tf := runPasses(mod, []*Package{pkg}, []*Analyzer{GoLife}, &RunStats{})
	joins := make(map[string]int)
	for _, target := range tf {
		for _, f := range target.Facts.GoLife {
			joins[f.Join]++
		}
	}
	for _, kind := range []string{"waitgroup", "done-channel", "stop-channel", "context"} {
		if joins[kind] == 0 {
			t.Errorf("no %q join proven in the fixture: the evidence path went vacuous (got %v)", kind, joins)
		}
	}
}

// TestFixGoldenTree is the end-to-end -fix proof: the input tree is copied
// into a temp module, RunFix rewrites it, and the result must match the
// golden tree byte-for-byte, converge in one pass, and be idempotent.
func TestFixGoldenTree(t *testing.T) {
	dir := t.TempDir()
	copyFixtureTree(t, filepath.Join("testdata", "fixtree", "input"), dir)
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixtree\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if WallClockPackages["fixtree"] {
		t.Fatal("fixtree unexpectedly already in scope")
	}
	WallClockPackages["fixtree"] = true
	defer delete(WallClockPackages, "fixtree")

	res, sum, err := RunFix(dir, []string{"."}, []*Analyzer{WallClock}, RunOptions{})
	if err != nil {
		t.Fatalf("RunFix: %v", err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("post-fix findings remain: %v", res.Findings)
	}
	if sum.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 (all fixes apply in one pass)", sum.Iterations)
	}
	wantChanged := []string{filepath.Join(dir, "wall.go")}
	if len(sum.FilesChanged) != 1 || sum.FilesChanged[0] != wantChanged[0] {
		t.Errorf("files changed = %v, want %v", sum.FilesChanged, wantChanged)
	}

	goldenDir := filepath.Join("testdata", "fixtree", "golden")
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverges from golden after fix:\n--- got ---\n%s\n--- want ---\n%s", e.Name(), got, want)
		}
	}

	// Idempotence: a second run must find nothing to do.
	_, sum2, err := RunFix(dir, []string{"."}, []*Analyzer{WallClock}, RunOptions{})
	if err != nil {
		t.Fatalf("second RunFix: %v", err)
	}
	if sum2.Iterations != 0 || len(sum2.FilesChanged) != 0 {
		t.Errorf("second RunFix not idempotent: iterations=%d changed=%v", sum2.Iterations, sum2.FilesChanged)
	}
}

// copyFixtureTree copies every regular file in src into dst (flat trees
// only — the fixtree fixture has no subdirectories).
func copyFixtureTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("fixture tree %s unexpectedly has subdirectory %s", src, e.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestApplyEdits pins the splice validator: overlap and out-of-bounds edits
// must abort before anything is written.
func TestApplyEdits(t *testing.T) {
	src := []byte("abcdef")
	got, err := applyEdits(src, []TextEdit{
		{Start: 4, End: 5, NewText: "E"},
		{Start: 1, End: 2, NewText: "B"},
	})
	if err != nil || string(got) != "aBcdEf" {
		t.Errorf("applyEdits = %q, %v; want aBcdEf", got, err)
	}
	if _, err := applyEdits(src, []TextEdit{{Start: 1, End: 3}, {Start: 2, End: 4}}); err == nil {
		t.Error("overlapping edits not rejected")
	}
	if _, err := applyEdits(src, []TextEdit{{Start: 4, End: 9}}); err == nil {
		t.Error("out-of-bounds edit not rejected")
	}
	if _, err := applyEdits(src, []TextEdit{{Start: -1, End: 2}}); err == nil {
		t.Error("negative offset not rejected")
	}
}

// TestSARIFOutput validates the emitted document structurally against the
// SARIF 2.1.0 shape code scanning requires: version/schema, one run, a
// rule table every result indexes consistently, and ROOT-relative URIs.
func TestSARIFOutput(t *testing.T) {
	pkg, mod := loadFixture(t, "floateq")
	res := Run(mod, []*Package{pkg}, []*Analyzer{FloatEq})
	if len(res.Findings) == 0 {
		t.Fatal("fixture produced no findings to emit")
	}
	rootDir := filepath.Dir(res.Findings[0].File)

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, rootDir, All(), res); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log sarifLog
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&log); err != nil {
		t.Fatalf("emitted SARIF does not decode against the expected shape: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0.json") {
		t.Errorf("$schema = %q does not pin 2.1.0", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "cmfl-vet" {
		t.Errorf("driver name = %q, want cmfl-vet", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) < len(All()) {
		t.Errorf("rules = %d, want at least one per analyzer (%d)", len(run.Tool.Driver.Rules), len(All()))
	}
	root, ok := run.OriginalURIBaseIDs["ROOT"]
	if !ok || !strings.HasPrefix(root.URI, "file://") || !strings.HasSuffix(root.URI, "/") {
		t.Errorf("originalUriBaseIds.ROOT = %+v, want a file:// URI ending in /", root)
	}
	if len(run.Results) != len(res.Findings) {
		t.Errorf("results = %d, want %d (one per finding)", len(run.Results), len(res.Findings))
	}
	for i, r := range run.Results {
		if r.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, r.Level)
		}
		if r.Message.Text == "" {
			t.Errorf("result %d has an empty message", i)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("result %d ruleIndex %d out of range", i, r.RuleIndex)
		}
		if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d: ruleIndex %d resolves to %q, ruleId says %q",
				i, r.RuleIndex, run.Tool.Driver.Rules[r.RuleIndex].ID, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d: locations = %d, want 1", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.Region.StartLine < 1 {
			t.Errorf("result %d: startLine = %d, want >= 1", i, loc.Region.StartLine)
		}
		if loc.ArtifactLocation.URIBaseID != "ROOT" {
			t.Errorf("result %d: uriBaseId = %q, want ROOT (file is under rootDir)", i, loc.ArtifactLocation.URIBaseID)
		}
		if uri := loc.ArtifactLocation.URI; uri == "" || strings.Contains(uri, "\\") || strings.HasPrefix(uri, "/") {
			t.Errorf("result %d: uri = %q, want a relative slash-separated path", i, uri)
		}
	}

	// A root that does not contain the findings forces the absolute-URI
	// fallback: no baseId, file:// scheme.
	buf.Reset()
	if err := WriteSARIF(&buf, t.TempDir(), All(), res); err != nil {
		t.Fatalf("WriteSARIF (foreign root): %v", err)
	}
	var foreign sarifLog
	if err := json.Unmarshal(buf.Bytes(), &foreign); err != nil {
		t.Fatal(err)
	}
	for i, r := range foreign.Runs[0].Results {
		loc := r.Locations[0].PhysicalLocation.ArtifactLocation
		if loc.URIBaseID != "" || !strings.HasPrefix(loc.URI, "file://") {
			t.Errorf("foreign-root result %d: artifact = %+v, want absolute file:// URI with no baseId", i, loc)
		}
	}
}

// TestV4RepoFactsNonVacuous guards the three v4 provers against silently
// matching nothing on the real module: the runtime packages must yield
// accumulator routings, honored pins, vclock hook reads, scanned scopes,
// and proven goroutine joins, or TestRepoClean's zero findings for these
// analyzers proves nothing.
func TestV4RepoFactsNonVacuous(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the runtime packages")
	}
	targets, mod, err := Load(filepath.Join("..", ".."), []string{
		"./internal/emu", "./internal/emu/shard", "./internal/sim",
		"./internal/fl", "./internal/telemetry",
	})
	if err != nil {
		t.Fatalf("loading runtime packages: %v", err)
	}
	_, _, tf := runPasses(mod, targets, []*Analyzer{FloatSum, WallClock, GoLife}, &RunStats{})

	floatKinds := make(map[string]int)
	clockKinds := make(map[string]int)
	joinKinds := make(map[string]int)
	for _, target := range tf {
		for _, f := range target.Facts.FloatSums {
			floatKinds[f.Kind]++
		}
		for _, f := range target.Facts.Clocks {
			clockKinds[f.Kind]++
		}
		for _, f := range target.Facts.GoLife {
			joinKinds[f.Join]++
		}
	}
	for _, want := range []string{"accumulator", "pinned"} {
		if floatKinds[want] == 0 {
			t.Errorf("no %q floatsum facts recovered: the prover went vacuous (got %v)", want, floatKinds)
		}
	}
	for _, want := range []string{"hook-read", "scope"} {
		if clockKinds[want] == 0 {
			t.Errorf("no %q wallclock facts recovered: the prover went vacuous (got %v)", want, clockKinds)
		}
	}
	if joinKinds["waitgroup"] == 0 || len(joinKinds) == 0 {
		t.Errorf("no waitgroup joins recovered from the runtime packages: the prover went vacuous (got %v)", joinKinds)
	}
}
